// Layout-entropy study: how much diversity does per-allocation
// randomization actually buy (paper §IV-A-3's dummy variables "increase
// the randomness entropy"), and what do dedup and dummy policy do to it?
//
// Build & run:  ./build/examples/layout_entropy
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "core/session.h"

using namespace polar;

namespace {

double shannon_bits(const std::map<std::uint64_t, int>& histogram, int total) {
  double bits = 0;
  for (const auto& [hash, count] : histogram) {
    const double p = static_cast<double>(count) / total;
    bits -= p * std::log2(p);
  }
  return bits;
}

void study(const TypeRegistry& registry, TypeId type, const char* label,
           LayoutPolicy policy) {
  constexpr int kSamples = 20000;
  Rng rng(1234);
  std::map<std::uint64_t, int> histogram;
  std::uint64_t total_size = 0;
  for (int i = 0; i < kSamples; ++i) {
    const Layout layout = randomize_layout(registry.info(type), policy, rng);
    ++histogram[layout.hash];
    total_size += layout.size;
  }
  std::printf("  %-34s %8zu distinct  %6.2f bits  avg size %5.1fB"
              "  (natural %uB)\n",
              label, histogram.size(), shannon_bits(histogram, kSamples),
              static_cast<double>(total_size) / kSamples,
              registry.info(type).natural_size);
}

}  // namespace

int main() {
  TypeRegistry registry;
  const TypeId small = TypeBuilder(registry, "SmallObj")
                           .fn_ptr("vtable")
                           .field<int>("age")
                           .field<int>("height")
                           .build();
  const TypeId big = TypeBuilder(registry, "BigObj")
                         .fn_ptr("handler")
                         .field<std::uint64_t>("a")
                         .field<std::uint64_t>("b")
                         .ptr("next")
                         .field<std::uint32_t>("len")
                         .field<std::uint32_t>("flags")
                         .field<std::uint16_t>("tag")
                         .bytes("name", 24)
                         .build();

  std::printf("permutation space: SmallObj (3 fields) = %llu orderings, "
              "BigObj (8 fields) = %llu orderings\n\n",
              static_cast<unsigned long long>(
                  permutation_space(registry.info(small), LayoutPolicy{})),
              static_cast<unsigned long long>(
                  permutation_space(registry.info(big), LayoutPolicy{})));

  LayoutPolicy none;
  none.min_dummies = 0;
  none.max_dummies = 0;
  none.booby_traps = false;
  LayoutPolicy defaults;  // 1-3 dummies + traps
  LayoutPolicy heavy;
  heavy.min_dummies = 4;
  heavy.max_dummies = 8;

  std::printf("SmallObj (20000 draws):\n");
  study(registry, small, "permutation only", none);
  study(registry, small, "default (traps + 1-3 dummies)", defaults);
  study(registry, small, "heavy dummies (4-8)", heavy);

  std::printf("BigObj (20000 draws):\n");
  study(registry, big, "permutation only", none);
  study(registry, big, "default (traps + 1-3 dummies)", defaults);
  study(registry, big, "heavy dummies (4-8)", heavy);

  // Dedup economics: how many layout records do N live objects need?
  std::printf("\nlayout dedup (10000 live SmallObj instances):\n");
  for (const bool dedup : {true, false}) {
    RuntimeConfig cfg;
    cfg.dedup_layouts = dedup;
    cfg.seed = 5;
    Runtime rt(registry, cfg);
    Session session(rt);
    std::vector<ObjRef> objs;
    for (int i = 0; i < 10000; ++i) {
      objs.push_back(session.create(small).value());
    }
    std::printf("  dedup %-3s -> %5zu layout records for 10000 objects\n",
                dedup ? "on" : "off", rt.live_layouts());
    for (const ObjRef& r : objs) (void)session.destroy(r);
  }
  std::printf(
      "\ntakeaway: permutations alone give log2(n!) bits; dummy insertion\n"
      "multiplies the space (entropy rises with the dummy budget) at the\n"
      "cost of per-object bytes; dedup collapses identical draws so the\n"
      "metadata footprint tracks the entropy actually realized, not the\n"
      "object count.\n");
  return 0;
}
