// Instrumentation-pass walkthrough (paper §IV-A-2, Fig. 4): shows a
// function before and after run_polar_pass — the alloc / getelementptr /
// memcpy / free rewriting the paper's LLVM pass performs — then executes
// both versions to show identical behaviour with different machinery.
//
// Build & run:  ./build/examples/pass_demo
#include <cstdio>

#include "ir/builder.h"
#include "ir/interp.h"
#include "ir/polar_pass.h"
#include "ir/verifier.h"

using namespace polar;

int main() {
  TypeRegistry registry;
  const TypeId people = TypeBuilder(registry, "People")
                            .fn_ptr("vtable")
                            .field<int>("age")
                            .field<int>("height")
                            .build();

  // People *A = new People; A->height = 17; People *B = clone(A);
  // int h = B->height; delete A; delete B; return h;
  ir::FunctionBuilder b("demo", 0);
  const ir::Reg a = b.alloc(people);
  b.store(b.gep(a, people, 2), b.const64(17), ir::Width::kW32);
  const ir::Reg bb = b.clone(a, people);
  const ir::Reg h = b.load(b.gep(bb, people, 2), ir::Width::kW32);
  b.free_obj(a, people);
  b.free_obj(bb, people);
  b.ret(h);

  ir::Module module;
  module.functions.push_back(std::move(b).build());

  std::printf("=== before the pass (what clang emits) ===\n%s\n",
              ir::to_string(module.functions[0]).c_str());

  ir::Module hardened = module;
  const ir::PassReport report = ir::run_polar_pass(hardened, registry);
  std::printf("=== after run_polar_pass ===\n%s\n",
              ir::to_string(hardened.functions[0]).c_str());
  std::printf("pass report: %llu allocs, %llu geps, %llu frees, %llu copies "
              "rewritten\n\n",
              static_cast<unsigned long long>(report.allocs_rewritten),
              static_cast<unsigned long long>(report.geps_rewritten),
              static_cast<unsigned long long>(report.frees_rewritten),
              static_cast<unsigned long long>(report.copies_rewritten));

  // Run both.
  ir::Interpreter direct(module, registry);
  const auto plain = direct.run("demo", {});
  std::printf("uninstrumented result: %llu (status ok=%d)\n",
              static_cast<unsigned long long>(plain.value),
              plain.status == ir::InterpResult::Status::kOk);

  Runtime rt(registry, RuntimeConfig{.seed = entropy_seed()});
  ir::Interpreter polar_interp(hardened, registry, &rt);
  const auto hard = polar_interp.run("demo", {});
  std::printf("POLaR-hardened result: %llu (status ok=%d); runtime saw "
              "%llu allocs, %llu member accesses, %llu object copies\n",
              static_cast<unsigned long long>(hard.value),
              hard.status == ir::InterpResult::Status::kOk,
              static_cast<unsigned long long>(rt.stats().allocations),
              static_cast<unsigned long long>(rt.stats().member_accesses),
              static_cast<unsigned long long>(rt.stats().memcpys));
  return plain.value == hard.value ? 0 : 1;
}
