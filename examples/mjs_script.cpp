// Runs an mjs (JavaScript-subset) script on the POLaR-hardened engine —
// the ChakraCore scenario of the paper's §V: every engine-internal object
// the script creates gets a per-allocation randomized layout, and the
// script cannot tell.
//
// Usage:  ./build/examples/mjs_script [path/to/script.js]
// Without an argument it runs a built-in demo script.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "workloads/mjs/engine.h"

using namespace polar;
using namespace polar::mjs;

namespace {

constexpr const char* kDemo = R"JS(
// splay-ish tree of objects, exercised under POLaR
function insert(tree, key) {
  if (tree == null) { return {key: key, l: null, r: null}; }
  if (key < tree.key) { tree.l = insert(tree.l, key); }
  else { tree.r = insert(tree.r, key); }
  return tree;
}
function size(tree) {
  if (tree == null) { return 0; }
  return 1 + size(tree.l) + size(tree.r);
}
var root = null;
var seed = 7;
for (var i = 0; i < 200; i = i + 1) {
  seed = (seed * 1103515245 + 12345) % 2147483648;
  root = insert(root, seed % 1000);
}
result = size(root);
)JS";

}  // namespace

int main(int argc, char** argv) {
  std::string source = kDemo;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buf;
    buf << file.rdbuf();
    source = buf.str();
  }

  TypeRegistry registry;
  const MjsTypes types = register_types(registry);
  RuntimeConfig cfg;
  cfg.seed = entropy_seed();
  Runtime rt(registry, cfg);
  PolarSpace space(rt);

  try {
    Engine<PolarSpace> engine(space, types);
    const Value result = engine.run(source);
    std::printf("result = %s\n", engine.to_display(result).c_str());
  } catch (const EngineError& e) {
    std::fprintf(stderr, "mjs error: %s\n", e.what());
    return 1;
  }

  const RuntimeStats& s = rt.stats();
  std::printf("engine objects under POLaR: %llu allocated, %llu member "
              "accesses (%.0f%% offset-cache hits), %llu layouts created, "
              "%llu deduped\n",
              static_cast<unsigned long long>(s.allocations),
              static_cast<unsigned long long>(s.member_accesses),
              s.cache_hit_rate() * 100,
              static_cast<unsigned long long>(s.layouts_created),
              static_cast<unsigned long long>(s.layouts_deduped));
  return 0;
}
