// TaintClass walkthrough (paper §IV-B, Fig. 5): fuzz the minipng decoder
// under DFSan-style taint tracking and watch the framework discover which
// object types untrusted input can influence — the list POLaR's
// instrumentation pass then selects for randomization.
//
// Build & run:  ./build/examples/taint_discovery
#include <cstdio>

#include "fuzz/fuzzer.h"
#include "workloads/minipng.h"

using namespace polar;
using namespace polar::minipng;

int main() {
  TypeRegistry registry;
  const PngTypes types = register_types(registry);

  TaintDomain domain;
  TaintClassMonitor monitor(registry);
  TaintClassSpace space(registry, domain, monitor);

  // Step 1: one honest input — the decoder only touches the happy path.
  {
    auto file = encode_test_image(16, 8, 1);
    domain.taint_input(file.data(), file.size(), "sample.mpng");
    taint_decode(space, types, file);
  }
  std::printf("after ONE valid input, TaintClass reports %zu tainted types\n",
              monitor.tainted_type_count());

  // Step 2: coverage-guided fuzzing (the paper couples DFSan with
  // libFuzzer's guidance module precisely because one input cannot reach
  // every chunk handler).
  Fuzzer fuzzer(
      [&](std::span<const std::uint8_t> in) {
        domain.reset_shadow();
        std::vector<std::uint8_t> buf(in.begin(), in.end());
        if (buf.empty()) return;
        domain.taint_input(buf.data(), buf.size(), "fuzz.mpng");
        taint_decode(space, types, buf);
      },
      Fuzzer::Options{.seed = 5, .max_input_size = 192});
  fuzzer.add_seed(encode_test_image(16, 8, 1));
  for (auto& token : dictionary()) fuzzer.add_dictionary_token(token);
  fuzzer.run(8000);

  std::printf("after %llu fuzzed executions (%zu corpus entries, %llu "
              "coverage features):\n",
              static_cast<unsigned long long>(fuzzer.stats().executions),
              fuzzer.corpus().size(),
              static_cast<unsigned long long>(fuzzer.stats().features));

  for (const TypeTaintReport& report : monitor.report()) {
    std::printf("  %-26s %s%s%s events=%llu fields:[",
                report.type_name.c_str(),
                report.content_tainted ? "content " : "",
                report.alloc_tainted ? "alloc " : "",
                report.dealloc_tainted ? "dealloc " : "",
                static_cast<unsigned long long>(report.events));
    for (std::size_t i = 0; i < report.tainted_fields.size(); ++i) {
      std::printf("%s%s%s", i == 0 ? "" : ", ",
                  report.tainted_fields[i].name.c_str(),
                  report.tainted_fields[i].pointer ? "*" : "");
    }
    std::printf("]\n");
  }

  std::printf("\nrandomization list fed back to the POLaR pass (%zu types):\n ",
              monitor.randomization_list().size());
  for (const std::string& name : monitor.randomization_list()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n");
  return 0;
}
