// Quickstart: the POLaR public API in one file.
//
//   1. Describe a class (what the paper's CIE extracts from source).
//   2. Allocate instances through a Session: each gets its OWN layout.
//   3. Access members through checked ObjRef handles (what the LLVM pass
//      would emit, upgraded from the legacy olr_* raw-pointer surface).
//   4. See the detection features: use-after-free and booby traps —
//      delivered as Result<T> error values, not hidden global state.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/session.h"

using namespace polar;

int main() {
  // --- 1. describe the type (paper Fig. 1's People class) ------------------
  TypeRegistry registry;
  const TypeId people = TypeBuilder(registry, "People")
                            .fn_ptr("vtable")
                            .field<int>("age")
                            .field<int>("height")
                            .build();

  RuntimeConfig config;
  config.seed = entropy_seed();              // per-run randomness
  config.on_violation = ErrorAction::kReport;  // report instead of abort
  Runtime rt(registry, config);
  Session polar(rt);  // cheap view over the engine; one per subsystem

  // --- 2. per-allocation randomization -------------------------------------
  std::printf("Three instances of the same type, three layouts:\n");
  ObjRef objs[3];
  for (int i = 0; i < 3; ++i) {
    objs[i] = polar.create(people).value();
    const ObjectRecord rec = polar.describe(objs[i]).value();
    std::printf("  obj%d: size=%2u  offsets{vtable=%2u age=%2u height=%2u}"
                "  traps=%zu\n",
                i, rec.layout->size, rec.layout->offsets[0],
                rec.layout->offsets[1], rec.layout->offsets[2],
                rec.layout->traps.size());
  }

  // --- 3. member access is position-independent ----------------------------
  (void)polar.write<int>(objs[0], 1, 44);   // age
  (void)polar.write<int>(objs[0], 2, 177);  // height
  std::printf("obj0: age=%d height=%d (read back through Session::read)\n",
              polar.read<int>(objs[0], 1).value_or(0),
              polar.read<int>(objs[0], 2).value_or(0));

  // --- 4a. use-after-free detection ----------------------------------------
  // The handle carries the allocation id, so the stale access is refused
  // even if the address were already reused by a new object.
  (void)polar.destroy(objs[0]);
  if (const Result<int> r = polar.read<int>(objs[0], 1); !r.ok()) {
    std::printf("dangling access detected: %s\n", to_string(r.error()));
  }

  // --- 4b. booby-trap detection ---------------------------------------------
  // Simulate a linear overwrite clobbering the start of obj1.
  std::memset(objs[1].base, 0x41, 12);
  if (const Result<void> r = polar.verify_traps(objs[1]); !r.ok()) {
    std::printf("overflow detected by booby trap: %s\n", to_string(r.error()));
  }

  (void)polar.destroy(objs[1]);
  (void)polar.destroy(objs[2]);

  const RuntimeStats s = polar.stats();
  std::printf("stats: %llu allocs, %llu frees, %llu member accesses "
              "(%.0f%% cache hits), %llu UAF detections, %llu trap hits\n",
              static_cast<unsigned long long>(s.allocations),
              static_cast<unsigned long long>(s.frees),
              static_cast<unsigned long long>(s.member_accesses),
              s.cache_hit_rate() * 100,
              static_cast<unsigned long long>(s.uaf_detected),
              static_cast<unsigned long long>(s.traps_triggered));
  return 0;
}
