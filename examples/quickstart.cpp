// Quickstart: the POLaR public API in one file.
//
//   1. Describe a class (what the paper's CIE extracts from source).
//   2. Allocate instances through the runtime: each gets its OWN layout.
//   3. Access members through olr_getptr (what the LLVM pass would emit).
//   4. See the detection features: use-after-free and booby traps.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/runtime.h"

using namespace polar;

int main() {
  // --- 1. describe the type (paper Fig. 1's People class) ------------------
  TypeRegistry registry;
  const TypeId people = TypeBuilder(registry, "People")
                            .fn_ptr("vtable")
                            .field<int>("age")
                            .field<int>("height")
                            .build();

  RuntimeConfig config;
  config.seed = entropy_seed();              // per-run randomness
  config.on_violation = ErrorAction::kReport;  // report instead of abort
  Runtime rt(registry, config);

  // --- 2. per-allocation randomization -------------------------------------
  std::printf("Three instances of the same type, three layouts:\n");
  void* objs[3];
  for (int i = 0; i < 3; ++i) {
    objs[i] = rt.olr_malloc(people);
    const ObjectRecord* rec = rt.inspect(objs[i]);
    std::printf("  obj%d: size=%2u  offsets{vtable=%2u age=%2u height=%2u}"
                "  traps=%zu\n",
                i, rec->layout->size, rec->layout->offsets[0],
                rec->layout->offsets[1], rec->layout->offsets[2],
                rec->layout->traps.size());
  }

  // --- 3. member access is position-independent ----------------------------
  rt.store<int>(objs[0], 1, 44);   // age
  rt.store<int>(objs[0], 2, 177);  // height
  std::printf("obj0: age=%d height=%d (read back through olr_getptr)\n",
              rt.load<int>(objs[0], 1), rt.load<int>(objs[0], 2));

  // --- 4a. use-after-free detection ----------------------------------------
  rt.olr_free(objs[0]);
  if (rt.olr_getptr(objs[0], 1) == nullptr) {
    std::printf("dangling access detected: %s\n",
                to_string(rt.last_violation()));
  }

  // --- 4b. booby-trap detection ---------------------------------------------
  // Simulate a linear overwrite clobbering the start of obj1.
  rt.clear_violation();
  std::memset(objs[1], 0x41, 12);
  if (!rt.check_traps(objs[1])) {
    std::printf("overflow detected by booby trap: %s\n",
                to_string(rt.last_violation()));
  }

  rt.olr_free(objs[1]);
  rt.olr_free(objs[2]);
  rt.clear_violation();

  const RuntimeStats& s = rt.stats();
  std::printf("stats: %llu allocs, %llu frees, %llu member accesses "
              "(%.0f%% cache hits), %llu UAF detections, %llu trap hits\n",
              static_cast<unsigned long long>(s.allocations),
              static_cast<unsigned long long>(s.frees),
              static_cast<unsigned long long>(s.member_accesses),
              s.cache_hit_rate() * 100,
              static_cast<unsigned long long>(s.uaf_detected),
              static_cast<unsigned long long>(s.traps_triggered));
  return 0;
}
