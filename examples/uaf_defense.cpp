// Use-after-free case study (paper §III-A-2 and §V-C): the same exploit
// mounted against an undefended heap, static OLR (randstruct-style), and
// POLaR — demonstrating the two properties POLaR claims: binary exposure
// doesn't matter, and retries are non-deterministic.
//
// Build & run:  ./build/examples/uaf_defense
#include <cstdio>

#include "attack/attack.h"

using namespace polar;

namespace {

void report(const char* label, const AttackOutcome& out) {
  std::printf("  %-36s success %6.1f%%  detected %6.1f%%  distinct outcomes "
              "%llu%s\n",
              label, out.success_rate() * 100, out.detection_rate() * 100,
              static_cast<unsigned long long>(out.distinct_outcomes),
              out.distinct_outcomes == 1 ? "  (deterministic!)" : "");
}

}  // namespace

int main() {
  TypeRegistry registry;
  const AttackTypes types = register_attack_types(registry);

  AttackConfig cfg;
  cfg.trials = 1000;
  cfg.seed = 7;

  std::printf("The exploit: free a Victim object (fn-ptr + refcount + len),\n"
              "reclaim its chunk with attacker data, wait for the program to\n"
              "use the dangling pointer. Success = the program 'calls' the\n"
              "attacker's payload pointer after its own sanity checks pass.\n\n");

  std::printf("Raw-buffer spray (attacker controls every byte):\n");
  cfg.defense = DefenseKind::kNone;
  report("no defense", run_uaf_fake_object(registry, types, cfg));
  cfg.defense = DefenseKind::kStaticOlr;
  report("static OLR, binary hidden", run_uaf_fake_object(registry, types, cfg));
  cfg.attacker_knows_binary = true;
  report("static OLR, binary reverse-engineered",
         run_uaf_fake_object(registry, types, cfg));
  cfg.attacker_knows_binary = false;
  cfg.defense = DefenseKind::kPolar;
  cfg.strict_typed_access = true;
  report("POLaR", run_uaf_fake_object(registry, types, cfg));

  std::printf("\nManaged-object spray (reclaim with another tracked type):\n");
  cfg.defense = DefenseKind::kNone;
  report("no defense", run_uaf_reclaim(registry, types, cfg, false));
  cfg.defense = DefenseKind::kStaticOlr;
  cfg.attacker_knows_binary = true;
  report("static OLR, binary reverse-engineered",
         run_uaf_reclaim(registry, types, cfg, false));
  cfg.attacker_knows_binary = false;
  cfg.defense = DefenseKind::kPolar;
  report("POLaR (class-hash check)", run_uaf_reclaim(registry, types, cfg, false));
  cfg.strict_typed_access = false;
  report("POLaR (index lookup only)", run_uaf_reclaim(registry, types, cfg, false));

  std::printf(
      "\nTakeaways: static OLR collapses once the binary leaks (its layouts\n"
      "are compile-time constants) and every retry behaves identically;\n"
      "POLaR's randomization is drawn per allocation at runtime, so the\n"
      "binary contains nothing to leak, the metadata check catches the\n"
      "dangling access, and repeated attempts never behave the same way.\n");
  return 0;
}
