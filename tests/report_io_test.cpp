#include <gtest/gtest.h>

#include "taintclass/report_io.h"
#include "taintclass/taint_space.h"

namespace polar {
namespace {

std::vector<TypeTaintReport> sample_reports() {
  TypeTaintReport a;
  a.type_name = "png.png_struct_def";
  a.content_tainted = true;
  a.alloc_tainted = false;
  a.dealloc_tainted = true;
  a.events = 42;
  a.tainted_fields.push_back({"rowbytes", false, 40});
  a.tainted_fields.push_back({"row_buf", false, 2});
  TypeTaintReport b;
  b.type_name = "png.png_text";
  b.content_tainted = true;
  b.events = 7;
  b.tainted_fields.push_back({"free_fn", true, 7});
  return {a, b};
}

TEST(ReportIo, RoundTripPreservesEverything) {
  const auto original = sample_reports();
  const std::string text = serialize_reports(original);
  std::vector<TypeTaintReport> parsed;
  std::string error;
  ASSERT_TRUE(parse_reports(text, parsed, error)) << error;
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(parsed[i].type_name, original[i].type_name);
    EXPECT_EQ(parsed[i].content_tainted, original[i].content_tainted);
    EXPECT_EQ(parsed[i].alloc_tainted, original[i].alloc_tainted);
    EXPECT_EQ(parsed[i].dealloc_tainted, original[i].dealloc_tainted);
    EXPECT_EQ(parsed[i].events, original[i].events);
    ASSERT_EQ(parsed[i].tainted_fields.size(),
              original[i].tainted_fields.size());
    for (std::size_t f = 0; f < original[i].tainted_fields.size(); ++f) {
      EXPECT_EQ(parsed[i].tainted_fields[f].name,
                original[i].tainted_fields[f].name);
      EXPECT_EQ(parsed[i].tainted_fields[f].pointer,
                original[i].tainted_fields[f].pointer);
      EXPECT_EQ(parsed[i].tainted_fields[f].tainted_stores,
                original[i].tainted_fields[f].tainted_stores);
    }
  }
}

TEST(ReportIo, SelectionContainsOnlyTaintedTypes) {
  auto reports = sample_reports();
  TypeTaintReport clean;
  clean.type_name = "ui_widget";  // nothing tainted
  reports.push_back(clean);
  const auto selected = selection_from_reports(reports);
  EXPECT_EQ(selected, (std::set<std::string>{"png.png_struct_def",
                                             "png.png_text"}));
}

TEST(ReportIo, CommentsAndUnknownKeysTolerated) {
  const std::string text =
      "# a comment\n"
      "type T content=1 alloc=0 dealloc=0 events=3 future_key=9\n"
      "\n"
      "field T f pointer=1 stores=2 другое=x\n";
  std::vector<TypeTaintReport> parsed;
  std::string error;
  ASSERT_TRUE(parse_reports(text, parsed, error)) << error;
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].events, 3u);
  ASSERT_EQ(parsed[0].tainted_fields.size(), 1u);
  EXPECT_TRUE(parsed[0].tainted_fields[0].pointer);
}

TEST(ReportIo, MalformedInputsRejectedWithLineNumbers) {
  std::vector<TypeTaintReport> parsed;
  std::string error;
  EXPECT_FALSE(parse_reports("bogus record\n", parsed, error));
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_FALSE(parse_reports("type\n", parsed, error));
  EXPECT_FALSE(parse_reports("field Orphan f pointer=0\n", parsed, error));
  EXPECT_NE(error.find("before its type"), std::string::npos);
  EXPECT_FALSE(
      parse_reports("type T events=1\ntype T events=2\n", parsed, error));
  EXPECT_NE(error.find("duplicate"), std::string::npos);
}

TEST(ReportIo, EndToEndMonitorToSelection) {
  // Monitor -> serialize -> parse -> pass selection, as a build would.
  TypeRegistry reg;
  const TypeId req = TypeBuilder(reg, "Request")
                         .field<std::uint32_t>("op")
                         .field<std::uint64_t>("body")
                         .build();
  TypeBuilder(reg, "Internal").field<std::uint32_t>("x").build();
  TaintDomain domain;
  TaintClassMonitor monitor(reg);
  TaintClassSpace space(reg, domain, monitor);
  TaintScope scope(domain);
  std::uint8_t wire[4] = {9, 9, 9, 9};
  domain.taint_input(wire, 4, "net");
  void* r = space.alloc(req);
  space.store_t(r, req, 0, load_tainted<std::uint32_t>(domain, wire));
  space.free_object(r, req);

  std::vector<TypeTaintReport> parsed;
  std::string error;
  ASSERT_TRUE(parse_reports(serialize_reports(monitor.report()), parsed,
                            error));
  const auto selected = selection_from_reports(parsed);
  EXPECT_TRUE(selected.contains("Request"));
  EXPECT_FALSE(selected.contains("Internal"));
}

}  // namespace
}  // namespace polar
