#include <gtest/gtest.h>

#include "workloads/mjs/engine.h"
#include "workloads/mjs/suites.h"

namespace polar::mjs {
namespace {

class MjsTest : public ::testing::Test {
 protected:
  MjsTest() : types_(register_types(reg_)), direct_(reg_) {}

  double run_direct(const std::string& script) {
    Engine<DirectSpace> engine(direct_, types_);
    const Value v = engine.run(script);
    return engine.as_number(v);
  }

  TypeRegistry reg_;
  MjsTypes types_;
  DirectSpace direct_;
};

// ---------------------------------------------------------------- language

TEST_F(MjsTest, ArithmeticAndPrecedence) {
  EXPECT_DOUBLE_EQ(run_direct("result = 2 + 3 * 4;"), 14);
  EXPECT_DOUBLE_EQ(run_direct("result = (2 + 3) * 4;"), 20);
  EXPECT_DOUBLE_EQ(run_direct("result = 10 / 4;"), 2.5);
  EXPECT_DOUBLE_EQ(run_direct("result = 10 % 3;"), 1);
  EXPECT_DOUBLE_EQ(run_direct("result = -5 + 2;"), -3);
  EXPECT_DOUBLE_EQ(run_direct("result = 1 << 4;"), 16);
  EXPECT_DOUBLE_EQ(run_direct("result = 255 & 15;"), 15);
  EXPECT_DOUBLE_EQ(run_direct("result = 8 | 1;"), 9);
  EXPECT_DOUBLE_EQ(run_direct("result = 5 ^ 3;"), 6);
}

TEST_F(MjsTest, ComparisonAndLogic) {
  EXPECT_DOUBLE_EQ(run_direct("result = 1 < 2;"), 1);
  EXPECT_DOUBLE_EQ(run_direct("result = 2 <= 1;"), 0);
  EXPECT_DOUBLE_EQ(run_direct("result = 3 == 3;"), 1);
  EXPECT_DOUBLE_EQ(run_direct("result = 3 != 3;"), 0);
  EXPECT_DOUBLE_EQ(run_direct("result = true && false;"), 0);
  EXPECT_DOUBLE_EQ(run_direct("result = false || true;"), 1);
  EXPECT_DOUBLE_EQ(run_direct("result = !false;"), 1);
  // Short-circuit: rhs must not run.
  EXPECT_DOUBLE_EQ(run_direct("var x = 1; "
                              "function boom() { x = 99; return true; } "
                              "var y = false && boom(); result = x;"),
                   1);
}

TEST_F(MjsTest, ControlFlow) {
  EXPECT_DOUBLE_EQ(run_direct("var x = 0; if (1 < 2) { x = 7; } result = x;"),
                   7);
  EXPECT_DOUBLE_EQ(
      run_direct("var x = 0; if (1 > 2) { x = 7; } else { x = 8; } result = x;"),
      8);
  EXPECT_DOUBLE_EQ(
      run_direct("var s = 0; for (var i = 1; i <= 10; i = i + 1) { s = s + i; }"
                 "result = s;"),
      55);
  EXPECT_DOUBLE_EQ(
      run_direct("var s = 0; var i = 0; while (i < 5) { s = s + i; i = i + 1; }"
                 "result = s;"),
      10);
  EXPECT_DOUBLE_EQ(
      run_direct("var s = 0; for (var i = 0; i < 100; i = i + 1) {"
                 "  if (i == 5) { break; } s = s + 1; } result = s;"),
      5);
}

TEST_F(MjsTest, FunctionsAndRecursion) {
  EXPECT_DOUBLE_EQ(run_direct("function add(a, b) { return a + b; }"
                              "result = add(2, 3);"),
                   5);
  EXPECT_DOUBLE_EQ(run_direct("function f(n) { if (n < 2) { return n; }"
                              "  return f(n - 1) + f(n - 2); }"
                              "result = f(10);"),
                   55);
  // Locals shadow globals.
  EXPECT_DOUBLE_EQ(run_direct("var x = 1;"
                              "function g() { var x = 5; return x; }"
                              "result = g() + x;"),
                   6);
}

TEST_F(MjsTest, ObjectsAndArrays) {
  EXPECT_DOUBLE_EQ(run_direct("var o = {a: 1, b: 2}; o.c = o.a + o.b;"
                              "result = o.c;"),
                   3);
  EXPECT_DOUBLE_EQ(run_direct("var a = [10, 20, 30]; a[1] = 21;"
                              "result = a[0] + a[1] + a[2];"),
                   61);
  EXPECT_DOUBLE_EQ(run_direct("var a = []; push(a, 4); push(a, 5);"
                              "result = len(a) * 100 + a.length;"),
                   202);
  EXPECT_DOUBLE_EQ(run_direct("var a = [1]; a[5] = 9; result = len(a);"), 6);
  EXPECT_DOUBLE_EQ(run_direct("var o = {x: 1}; result = o.missing == null;"),
                   1);
}

TEST_F(MjsTest, Strings) {
  Engine<DirectSpace> engine(direct_, types_);
  const Value v = engine.run("result = 'foo' + 'bar' + 1;");
  EXPECT_EQ(engine.to_display(v), "foobar1");
  EXPECT_DOUBLE_EQ(run_direct("result = len('hello');"), 5);
  EXPECT_DOUBLE_EQ(run_direct("result = charCodeAt('A', 0);"), 65);
  EXPECT_DOUBLE_EQ(run_direct("result = 'ab' == 'ab';"), 1);
  EXPECT_DOUBLE_EQ(run_direct("result = 'ab' == 'ac';"), 0);
  EXPECT_DOUBLE_EQ(run_direct("result = len(str(1234));"), 4);
}

TEST_F(MjsTest, Builtins) {
  EXPECT_DOUBLE_EQ(run_direct("result = sqrt(81);"), 9);
  EXPECT_DOUBLE_EQ(run_direct("result = floor(3.9);"), 3);
  EXPECT_DOUBLE_EQ(run_direct("result = abs(-4);"), 4);
  EXPECT_DOUBLE_EQ(run_direct("result = pow(2, 10);"), 1024);
  EXPECT_DOUBLE_EQ(run_direct("result = max(min(5, 3), 1);"), 3);
}

TEST_F(MjsTest, ErrorsAreEngineErrors) {
  EXPECT_THROW(run_direct("result = undefined_var;"), EngineError);
  EXPECT_THROW(run_direct("result = nosuchfn(1);"), EngineError);
  EXPECT_THROW(run_direct("var x = 1; result = x.prop;"), EngineError);
  EXPECT_THROW(run_direct("result = ;"), EngineError);  // parse error
  // Fuel limit stops runaway scripts.
  Engine<DirectSpace> engine(direct_, types_);
  EXPECT_THROW(engine.run("while (true) { var x = 1; }", 10'000), EngineError);
}

TEST_F(MjsTest, ParserRejectsGarbage) {
  const char* bad[] = {
      "var = 3;",       "function () {}",      "if (1 {",
      "result = (1;",   "var a = [1, 2;",      "var o = {a 1};",
      "x.3 = 1;",       "result = 'unclosed;",
  };
  for (const char* script : bad) {
    EXPECT_THROW(run_direct(script), EngineError) << script;
  }
}

TEST_F(MjsTest, EngineObjectsAreManaged) {
  RuntimeConfig cfg;
  cfg.on_violation = ErrorAction::kAbort;
  Runtime rt(reg_, cfg);
  PolarSpace space(rt);
  {
    Engine<PolarSpace> engine(space, types_);
    engine.run("var o = {a: 1}; var arr = [1, 2, 3]; var s = 'x' + 'y';"
               "function f() { return 1; } result = f() + o.a + arr[2];");
    EXPECT_GT(rt.stats().allocations, 4u);       // object, array, strings, fn
    EXPECT_GT(rt.stats().member_accesses, 4u);   // slot/length traffic
  }
  EXPECT_EQ(rt.live_objects(), 0u);  // engine teardown released everything
}

// -------------------------------------------------------------- the suites

class MjsSuiteTest : public ::testing::TestWithParam<int> {};

TEST_P(MjsSuiteTest, BenchmarkAgreesAcrossBuilds) {
  const MjsBench& bench =
      benchmark_suites()[static_cast<std::size_t>(GetParam())];

  TypeRegistry reg;
  const MjsTypes types = register_types(reg);
  DirectSpace direct(reg);
  Engine<DirectSpace> direct_engine(direct, types);
  const Value dv = direct_engine.run(bench.script);
  const double direct_result = direct_engine.as_number(dv);

  if (bench.expected >= 0) {
    EXPECT_DOUBLE_EQ(direct_result, bench.expected) << bench.name;
  }

  RuntimeConfig cfg;
  cfg.on_violation = ErrorAction::kAbort;
  Runtime rt(reg, cfg);
  PolarSpace polar_space(rt);
  Engine<PolarSpace> polar_engine(polar_space, types);
  const Value pv = polar_engine.run(bench.script);
  EXPECT_DOUBLE_EQ(polar_engine.as_number(pv), direct_result) << bench.name;
  EXPECT_EQ(rt.stats().traps_triggered, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, MjsSuiteTest,
    ::testing::Range(0, static_cast<int>(benchmark_suites().size())),
    [](const auto& pi) {
      const MjsBench& b = benchmark_suites()[static_cast<std::size_t>(pi.param)];
      std::string n = b.suite + "_" + b.name;
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

TEST(MjsSuites, FourSuitesPresent) {
  std::set<std::string> suites;
  for (const MjsBench& b : benchmark_suites()) suites.insert(b.suite);
  EXPECT_EQ(suites, (std::set<std::string>{"sunspider", "kraken", "octane",
                                           "jetstream"}));
  EXPECT_TRUE(suite_is_score("octane"));
  EXPECT_TRUE(suite_is_score("jetstream"));
  EXPECT_FALSE(suite_is_score("sunspider"));
  EXPECT_FALSE(suite_is_score("kraken"));
  EXPECT_GE(benchmark_suites().size(), 24u);
}

}  // namespace
}  // namespace polar::mjs
