#include <gtest/gtest.h>

#include "attack/attack.h"

namespace polar {
namespace {

class AttackTest : public ::testing::Test {
 protected:
  AttackTest() : types_(register_attack_types(reg_)) {}

  AttackConfig config(DefenseKind d) {
    AttackConfig cfg;
    cfg.defense = d;
    cfg.trials = 300;
    cfg.seed = 11;
    return cfg;
  }

  TypeRegistry reg_;
  AttackTypes types_;
};

// ------------------------------------------------------------ UAF (fake)

TEST_F(AttackTest, UafFakeObjectSucceedsWithoutDefense) {
  const AttackOutcome out =
      run_uaf_fake_object(reg_, types_, config(DefenseKind::kNone));
  EXPECT_EQ(out.successes, out.attempts);  // textbook exploit
  EXPECT_EQ(out.detected, 0u);
  EXPECT_EQ(out.distinct_outcomes, 1u);  // fully deterministic
}

TEST_F(AttackTest, UafFakeObjectStaticOlrBreaksOnBinaryExposure) {
  // Hidden binary: the attacker guesses the natural layout and loses.
  AttackConfig hidden = config(DefenseKind::kStaticOlr);
  const AttackOutcome blind = run_uaf_fake_object(reg_, types_, hidden);
  // Exposed binary (§III-B-1): same binary, attack works every time.
  hidden.attacker_knows_binary = true;
  const AttackOutcome informed = run_uaf_fake_object(reg_, types_, hidden);
  EXPECT_EQ(informed.successes, informed.attempts);
  EXPECT_LT(blind.successes, blind.attempts);
  // Both are deterministic across retries — the Reproduction Problem.
  EXPECT_EQ(blind.distinct_outcomes, 1u);
  EXPECT_EQ(informed.distinct_outcomes, 1u);
}

TEST_F(AttackTest, UafFakeObjectPolarDetectsUntrackedFake) {
  const AttackOutcome out =
      run_uaf_fake_object(reg_, types_, config(DefenseKind::kPolar));
  EXPECT_EQ(out.detected, out.attempts);  // no metadata record -> caught
  EXPECT_EQ(out.successes, 0u);
}

// --------------------------------------------------------- UAF (tracked)

TEST_F(AttackTest, UafReclaimNoDefenseSucceeds) {
  const AttackOutcome out = run_uaf_reclaim(reg_, types_,
                                            config(DefenseKind::kNone),
                                            /*small_spray=*/false);
  EXPECT_EQ(out.successes, out.attempts);
}

TEST_F(AttackTest, UafReclaimPolarStrictDetectsTypeMismatch) {
  AttackConfig cfg = config(DefenseKind::kPolar);
  cfg.strict_typed_access = true;
  const AttackOutcome out =
      run_uaf_reclaim(reg_, types_, cfg, /*small_spray=*/false);
  EXPECT_EQ(out.successes, 0u);
  EXPECT_GT(out.detected, 0u);  // every reclaimed trial is caught
  EXPECT_EQ(out.detected + out.failed, out.attempts);
}

TEST_F(AttackTest, UafReclaimPolarSmallSprayHitsBadField) {
  // SpraySmall has 3 fields; Victim code reads field index 3 -> kBadField
  // even without the class-hash check.
  AttackConfig cfg = config(DefenseKind::kPolar);
  cfg.strict_typed_access = false;
  const AttackOutcome out =
      run_uaf_reclaim(reg_, types_, cfg, /*small_spray=*/true);
  EXPECT_EQ(out.successes, 0u);
  EXPECT_GT(out.detected, 0u);
}

TEST_F(AttackTest, UafReclaimPolarOutcomesVaryAcrossRetries) {
  // Claim (ii) of the paper: repeating the attack under POLaR does not
  // produce a deterministic result.
  AttackConfig cfg = config(DefenseKind::kPolar);
  cfg.strict_typed_access = false;
  const AttackOutcome out =
      run_uaf_reclaim(reg_, types_, cfg, /*small_spray=*/false);
  EXPECT_GT(out.distinct_outcomes, 1u);
}

// ---------------------------------------------------------- type confusion

TEST_F(AttackTest, TypeConfusionNoDefenseSucceeds) {
  const AttackOutcome out =
      run_type_confusion(reg_, types_, config(DefenseKind::kNone));
  EXPECT_EQ(out.successes, out.attempts);
  EXPECT_EQ(out.distinct_outcomes, 1u);
}

TEST_F(AttackTest, TypeConfusionStaticOlrBlindMostlyFails) {
  const AttackOutcome out =
      run_type_confusion(reg_, types_, config(DefenseKind::kStaticOlr));
  // One binary, one outcome; overwhelmingly a failure for this seed space.
  EXPECT_EQ(out.distinct_outcomes, 1u);
  EXPECT_LT(out.success_rate(), 1.0);
}

TEST_F(AttackTest, TypeConfusionPolarStrictDetects) {
  AttackConfig cfg = config(DefenseKind::kPolar);
  cfg.strict_typed_access = true;
  const AttackOutcome out = run_type_confusion(reg_, types_, cfg);
  EXPECT_EQ(out.detected, out.attempts);
  EXPECT_EQ(out.successes, 0u);
}

// ---------------------------------------------------------- linear overflow

TEST_F(AttackTest, OverflowNoDefenseSucceedsSilently) {
  const AttackOutcome out =
      run_linear_overflow(reg_, types_, config(DefenseKind::kNone));
  EXPECT_EQ(out.successes, out.attempts);
  EXPECT_EQ(out.detected, 0u);
}

TEST_F(AttackTest, OverflowStaticOlrInformedAttackerAdapts) {
  AttackConfig cfg = config(DefenseKind::kStaticOlr);
  cfg.attacker_knows_binary = true;
  const AttackOutcome out = run_linear_overflow(reg_, types_, cfg);
  // With the binary in hand the attacker either wins outright (handler
  // after buffer) or knows it is unexploitable — never "detected".
  EXPECT_EQ(out.detected, 0u);
  EXPECT_EQ(out.successes + out.failed, out.attempts);
  EXPECT_EQ(out.distinct_outcomes, 1u);
}

TEST_F(AttackTest, OverflowPolarBoobyTrapsDetect) {
  const AttackOutcome out =
      run_linear_overflow(reg_, types_, config(DefenseKind::kPolar));
  // The handler field is guarded by a prepended trap; a linear overwrite
  // that reaches it must cross the trap. Short overflows that never reach
  // the handler land in padding (failed, not detected), so detection is
  // high but not total — and success is essentially gone.
  EXPECT_GT(out.detection_rate(), 0.5);
  EXPECT_LT(out.success_rate(), 0.05);
  EXPECT_GT(out.distinct_outcomes, 1u);  // retries are non-deterministic
}

TEST_F(AttackTest, OverflowPolarMetadataLeakBypasses) {
  // §VI-A: POLaR's metadata is hidden, not hardware-protected. An attacker
  // who can read it reconstructs the layout and writes the canaries back.
  AttackConfig cfg = config(DefenseKind::kPolar);
  cfg.attacker_knows_metadata = true;
  const AttackOutcome out = run_linear_overflow(reg_, types_, cfg);
  // The leak wins whenever the drawn layout is forward-exploitable
  // (handler placed after the buffer, ~half of all permutations) and is
  // never detected: the attacker rewrites the canaries it read.
  EXPECT_GT(out.success_rate(), 0.3);
  EXPECT_LT(out.detection_rate(), 0.05);
}

TEST_F(AttackTest, OverflowSealedMetadataNeutralizesLeak) {
  // §VI-A's planned hardening: with metadata in a protected region, the
  // leak yields nothing and the attack degrades to the blind case.
  AttackConfig cfg = config(DefenseKind::kPolar);
  cfg.attacker_knows_metadata = true;
  cfg.metadata_sealed = true;
  const AttackOutcome out = run_linear_overflow(reg_, types_, cfg);
  EXPECT_LT(out.success_rate(), 0.05);
  EXPECT_GT(out.detection_rate(), 0.5);
}

// --------------------------------------------------------- use-before-init

TEST_F(AttackTest, UseBeforeInitNoDefenseReadsGroomedPayload) {
  const AttackOutcome out =
      run_use_before_init(reg_, types_, config(DefenseKind::kNone));
  EXPECT_EQ(out.successes, out.attempts);
  EXPECT_EQ(out.distinct_outcomes, 1u);
}

TEST_F(AttackTest, UseBeforeInitStaticOlrDeterministicPerBinary) {
  AttackConfig cfg = config(DefenseKind::kStaticOlr);
  const AttackOutcome blind = run_use_before_init(reg_, types_, cfg);
  cfg.attacker_knows_binary = true;
  const AttackOutcome informed = run_use_before_init(reg_, types_, cfg);
  EXPECT_EQ(informed.successes, informed.attempts);  // groom at true offsets
  EXPECT_EQ(blind.distinct_outcomes, 1u);            // rehearsable either way
}

TEST_F(AttackTest, UseBeforeInitPolarZeroFillKills) {
  const AttackOutcome out =
      run_use_before_init(reg_, types_, config(DefenseKind::kPolar));
  EXPECT_EQ(out.successes, 0u);
}

// --------------------------------------------------------------- invariants

class AttackMatrix
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AttackMatrix, CountsAlwaysConsistent) {
  TypeRegistry reg;
  const AttackTypes types = register_attack_types(reg);
  AttackConfig cfg;
  cfg.defense = static_cast<DefenseKind>(std::get<0>(GetParam()));
  cfg.trials = 60;
  cfg.seed = 5 + static_cast<std::uint64_t>(std::get<1>(GetParam()));
  cfg.attacker_knows_binary = (std::get<1>(GetParam()) % 2) == 0;
  cfg.strict_typed_access = (std::get<1>(GetParam()) % 3) == 0;

  for (const AttackOutcome& out :
       {run_uaf_fake_object(reg, types, cfg),
        run_uaf_reclaim(reg, types, cfg, false),
        run_uaf_reclaim(reg, types, cfg, true),
        run_type_confusion(reg, types, cfg),
        run_linear_overflow(reg, types, cfg),
        run_use_before_init(reg, types, cfg)}) {
    EXPECT_EQ(out.attempts, cfg.trials);
    EXPECT_EQ(out.successes + out.detected + out.failed, out.attempts);
    EXPECT_GE(out.distinct_outcomes, 1u);
    EXPECT_LE(out.distinct_outcomes, out.attempts);
  }
}

INSTANTIATE_TEST_SUITE_P(AllDefenses, AttackMatrix,
                         ::testing::Combine(::testing::Range(0, 3),
                                            ::testing::Range(0, 4)));

TEST(AttackTypes, ShapesMatchScenarioAssumptions) {
  TypeRegistry reg;
  const AttackTypes t = register_attack_types(reg);
  // Victim and both sprays share a natural size class (32 bytes).
  EXPECT_EQ(reg.info(t.victim).natural_size, 32u);
  EXPECT_EQ(reg.info(t.spray_full).natural_size, 32u);
  EXPECT_EQ(reg.info(t.spray_small).natural_size, 32u);
  EXPECT_EQ(reg.info(t.spray_small).field_count(), 3u);  // < index 3
  // Confused.user_id naturally overlaps Victim.handler (both offset 0).
  EXPECT_EQ(reg.info(t.confused).natural_offsets[0], 0u);
  EXPECT_EQ(reg.info(t.victim).natural_offsets[0], 0u);
}

}  // namespace
}  // namespace polar
