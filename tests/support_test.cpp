#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <numeric>
#include <set>
#include <vector>

#include "support/hash.h"
#include "support/rng.h"

namespace polar {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 5);
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 2000; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto sorted = v;
  rng.shuffle(std::span<int>(v));
  auto copy = v;
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, sorted);
}

TEST(Rng, ShuffleCoversManyPermutations) {
  // 4 elements -> 24 permutations; 2000 shuffles should see nearly all.
  Rng rng(19);
  std::set<std::array<int, 4>> seen;
  for (int i = 0; i < 2000; ++i) {
    std::array<int, 4> a{0, 1, 2, 3};
    rng.shuffle(std::span<int>(a));
    seen.insert(a);
  }
  EXPECT_GE(seen.size(), 23u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(23);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kN = 100000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kN; ++i) ++counts[rng.below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kN / kBuckets, kN / kBuckets * 0.1);
  }
}

TEST(Rng, ForkIsIndependent) {
  Rng parent(29);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (parent.next() == child.next());
  EXPECT_LT(equal, 5);
}

TEST(EntropySeed, ChangesBetweenCalls) {
  EXPECT_NE(entropy_seed(), entropy_seed());
}

TEST(Hash, Fnv1aStableKnownValue) {
  // FNV-1a reference: empty string hashes to the offset basis.
  EXPECT_EQ(fnv1a(std::string_view{}), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
}

TEST(Hash, Fnv1aDiffersByContent) {
  EXPECT_NE(fnv1a("People"), fnv1a("Person"));
  EXPECT_NE(fnv1a("ab"), fnv1a("ba"));
}

TEST(Hash, Mix64IsBijectiveish) {
  // No collisions among a small dense range (mix64 is invertible, so none
  // can exist; this guards against edits breaking that).
  std::set<std::uint64_t> out;
  for (std::uint64_t i = 0; i < 10000; ++i) out.insert(mix64(i));
  EXPECT_EQ(out.size(), 10000u);
}

TEST(Hash, CombineIsOrderDependent) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

}  // namespace
}  // namespace polar
