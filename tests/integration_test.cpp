// End-to-end pipeline tests: the full POLaR workflow of paper Fig. 3 —
// TaintClass discovers input-dependent types, that feedback drives the
// instrumentation pass selectively, and the hardened program keeps its
// semantics while gaining detection.
#include <gtest/gtest.h>

#include <set>

#include "alloc/heap.h"
#include "fuzz/fuzzer.h"
#include "ir/builder.h"
#include "ir/interp.h"
#include "ir/polar_pass.h"
#include "ir/verifier.h"
#include "taintclass/taint_space.h"
#include "workloads/minipng.h"

namespace polar {
namespace {

// A little "message server" scenario: Request objects are filled from
// untrusted input, Config objects are internal. The IR program processes a
// request; TaintClass should select Request (not Config), the pass should
// instrument only Request sites, and the instrumented program must behave
// identically.
struct Scenario {
  TypeRegistry reg;
  TypeId request;
  TypeId config;

  Scenario() {
    request = TypeBuilder(reg, "Request")
                  .field<std::uint32_t>("opcode")
                  .field<std::uint64_t>("payload")
                  .ptr("next")
                  .build();
    config = TypeBuilder(reg, "Config")
                 .field<std::uint32_t>("verbosity")
                 .field<std::uint64_t>("limits")
                 .build();
  }

  /// process(opcode, payload) -> opcode * 1000 + payload, via objects.
  ir::Module build_program() const {
    ir::FunctionBuilder b("process", 2);
    const ir::Reg req = b.alloc(request);
    const ir::Reg cfg = b.gep(b.alloc(config), config, 0);
    b.store(cfg, b.const64(1), ir::Width::kW32);
    b.store(b.gep(req, request, 0), b.param(0), ir::Width::kW32);
    b.store(b.gep(req, request, 1), b.param(1));
    const ir::Reg opcode = b.load(b.gep(req, request, 0), ir::Width::kW32);
    const ir::Reg payload = b.load(b.gep(req, request, 1));
    const ir::Reg out = b.add(b.mul(opcode, b.const64(1000)), payload);
    b.free_obj(req, request);
    b.ret(out);
    ir::Module m;
    m.functions.push_back(std::move(b).build());
    return m;
  }
};

TEST(Pipeline, TaintFeedbackDrivesSelectivePass) {
  Scenario sc;

  // --- stage 1: TaintClass run over the input-handling code ---------------
  TaintDomain domain;
  TaintClassMonitor monitor(sc.reg);
  TaintClassSpace tspace(sc.reg, domain, monitor);
  {
    TaintScope scope(domain);
    std::uint8_t wire[12] = {7, 0, 0, 0, 42, 0, 0, 0, 0, 0, 0, 0};
    domain.taint_input(wire, sizeof(wire), "socket");
    void* req = tspace.alloc(sc.request);
    tspace.store_t(req, sc.request, 0, load_tainted<std::uint32_t>(domain, wire));
    tspace.store_t(req, sc.request, 1,
                   load_tainted<std::uint64_t>(domain, wire + 4));
    void* cfg = tspace.alloc(sc.config);
    tspace.store(cfg, sc.config, 0, std::uint32_t{3});  // internal constant
    tspace.free_object(req, sc.request);
    tspace.free_object(cfg, sc.config);
  }
  EXPECT_TRUE(monitor.is_tainted(sc.request));
  EXPECT_FALSE(monitor.is_tainted(sc.config));
  const auto selected_list = monitor.randomization_list();
  const std::set<std::string> selected(selected_list.begin(),
                                       selected_list.end());

  // --- stage 2: instrument only what TaintClass selected ------------------
  ir::Module hardened = sc.build_program();
  const ir::PassReport report =
      ir::run_polar_pass(hardened, sc.reg, selected);
  EXPECT_EQ(report.allocs_rewritten, 1u);  // Request only
  EXPECT_GT(report.sites_skipped, 0u);     // Config left direct
  ASSERT_EQ(ir::verify(hardened, sc.reg), "");

  // --- stage 3: identical semantics, hardened execution -------------------
  ir::Module plain = sc.build_program();
  ir::Interpreter direct(plain, sc.reg);
  const auto base = direct.run("process", {7, 42});
  ASSERT_EQ(base.status, ir::InterpResult::Status::kOk);
  EXPECT_EQ(base.value, 7042u);

  Runtime rt(sc.reg, RuntimeConfig{});
  ir::Interpreter polar_interp(hardened, sc.reg, &rt);
  const auto hard = polar_interp.run("process", {7, 42});
  EXPECT_EQ(hard.status, ir::InterpResult::Status::kOk);
  EXPECT_EQ(hard.value, base.value);
  EXPECT_EQ(rt.stats().allocations, 1u);  // only Request went through POLaR
  EXPECT_EQ(rt.live_objects(), 0u);
}

TEST(Pipeline, HardenedProgramsDifferInLayoutNotBehaviour) {
  // Run the same instrumented program many times: behaviour is constant,
  // the drawn layouts are not (the two POLaR primitives of the abstract).
  Scenario sc;
  ir::Module m = sc.build_program();
  ir::run_polar_pass(m, sc.reg);
  ASSERT_EQ(ir::verify(m, sc.reg), "");

  std::set<std::vector<std::uint32_t>> layouts_seen;
  for (std::uint64_t run = 0; run < 24; ++run) {
    RuntimeConfig cfg;
    cfg.seed = 1000 + run;  // fresh process
    Runtime rt(sc.reg, cfg);
    // Peek at one allocation's layout before running the program.
    void* probe = rt.olr_malloc(sc.request);
    layouts_seen.insert(rt.inspect(probe)->layout->offsets);
    rt.olr_free(probe);

    ir::Interpreter interp(m, sc.reg, &rt);
    const auto r = interp.run("process", {3, 9});
    ASSERT_EQ(r.status, ir::InterpResult::Status::kOk);
    EXPECT_EQ(r.value, 3009u);
  }
  EXPECT_GT(layouts_seen.size(), 4u);
}

TEST(Pipeline, PolarOverDeterministicHeapStillDetectsIrUaf) {
  // The runtime composed with the exploit-friendly allocator and driven
  // from IR: UAF detection must survive address reuse.
  Scenario sc;
  ir::FunctionBuilder b("uaf", 0);
  const ir::Reg a = b.alloc(sc.request);
  b.free_obj(a, sc.request);
  const ir::Reg reclaim = b.alloc(sc.request);  // likely same address
  const ir::Reg addr = b.gep(a, sc.request, 1);  // via the dangling pointer
  const ir::Reg v = b.load(addr);
  b.free_obj(reclaim, sc.request);
  b.ret(v);
  ir::Module m;
  m.functions.push_back(std::move(b).build());
  ir::run_polar_pass(m, sc.reg);

  SizeClassHeap heap;
  RuntimeConfig cfg;
  cfg.alloc_fn = SizeClassHeap::alloc_hook;
  cfg.free_fn = SizeClassHeap::free_hook;
  cfg.alloc_ctx = &heap;
  Runtime rt(sc.reg, cfg);
  ir::Interpreter interp(m, sc.reg, &rt);
  const auto r = interp.run("uaf", {});
  // Note: if the reclaiming allocation lands on the same base, the access
  // is type-consistent and succeeds (address identity); if it lands
  // elsewhere, the dangling access is detected. Either way nothing
  // corrupts silently and the runtime stays consistent.
  if (r.status == ir::InterpResult::Status::kViolation) {
    EXPECT_EQ(r.violation, Violation::kUseAfterFree);
  } else {
    EXPECT_EQ(r.status, ir::InterpResult::Status::kOk);
  }
  rt.free_all();
  EXPECT_EQ(rt.live_objects(), 0u);
}

TEST(Pipeline, MiniPngTaintFeedsIrPassSelection) {
  // Cross-module: TaintClass census from fuzzing minipng selects the png
  // types; the pass applied to an unrelated module instruments nothing.
  TypeRegistry reg;
  const auto png = minipng::register_types(reg);
  const TypeId innocent =
      TypeBuilder(reg, "InternalCounter").field<std::uint64_t>("n").build();

  TaintDomain domain;
  TaintClassMonitor monitor(reg);
  TaintClassSpace space(reg, domain, monitor);
  Fuzzer fuzzer(
      [&](std::span<const std::uint8_t> in) {
        domain.reset_shadow();
        std::vector<std::uint8_t> buf(in.begin(), in.end());
        if (buf.empty()) return;
        domain.taint_input(buf.data(), buf.size(), "png");
        minipng::taint_decode(space, png, buf);
      },
      Fuzzer::Options{.seed = 3, .max_input_size = 128});
  fuzzer.add_seed(minipng::encode_test_image(16, 4, 1));
  for (auto& token : minipng::dictionary()) fuzzer.add_dictionary_token(token);
  fuzzer.run(3000);

  const auto list = monitor.randomization_list();
  const std::set<std::string> selected(list.begin(), list.end());
  EXPECT_TRUE(selected.contains("png.png_struct_def"));
  EXPECT_FALSE(selected.contains("InternalCounter"));

  ir::FunctionBuilder b("internal", 0);
  const ir::Reg c = b.alloc(innocent);
  b.store(b.gep(c, innocent, 0), b.const64(5));
  b.free_obj(c, innocent);
  b.ret();
  ir::Module m;
  m.functions.push_back(std::move(b).build());
  const ir::PassReport report = ir::run_polar_pass(m, reg, selected);
  EXPECT_EQ(report.total(), 0u);
  EXPECT_EQ(report.sites_skipped, 3u);
}

}  // namespace
}  // namespace polar
