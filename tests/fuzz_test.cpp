#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "fuzz/coverage.h"
#include "fuzz/fuzzer.h"
#include "fuzz/mutator.h"

namespace polar {
namespace {

TEST(CoverageMap, BucketingMatchesAfl) {
  EXPECT_EQ(CoverageMap::bucket(0), 0);
  EXPECT_EQ(CoverageMap::bucket(1), 1);
  EXPECT_EQ(CoverageMap::bucket(2), 2);
  EXPECT_EQ(CoverageMap::bucket(3), 3);
  EXPECT_EQ(CoverageMap::bucket(5), 4);
  EXPECT_EQ(CoverageMap::bucket(12), 5);
  EXPECT_EQ(CoverageMap::bucket(20), 6);
  EXPECT_EQ(CoverageMap::bucket(100), 7);
  EXPECT_EQ(CoverageMap::bucket(255), 8);
}

TEST(CoverageMap, MergeReportsOnlyNewFeatures) {
  CoverageMap map;
  map.hit_edge(5);
  std::array<std::uint16_t, CoverageMap::kMapSize> global{};
  EXPECT_EQ(map.merge_new_features(global), 1u);
  EXPECT_EQ(map.merge_new_features(global), 0u);  // same features again
  map.hit_edge(5);  // now count 2 -> new bucket
  EXPECT_EQ(map.merge_new_features(global), 1u);
}

TEST(CoverageMap, EdgeIdentityDependsOnPath) {
  // Visiting A then B covers a different edge than B then A.
  CoverageMap ab, ba;
  {
    CoverageScope scope(ab);
    cov_site(100);
    cov_site(200);
  }
  {
    CoverageScope scope(ba);
    cov_site(200);
    cov_site(100);
  }
  std::array<std::uint16_t, CoverageMap::kMapSize> global{};
  ab.merge_new_features(global);
  EXPECT_GT(ba.merge_new_features(global), 0u);  // ba found something new
}

TEST(CoverageMap, NoScopeNoCrash) {
  cov_site(42);  // must be a no-op outside a scope
  POLAR_COV_SITE();
}

TEST(Mutator, ProducesVariedOutputsWithinCap) {
  Mutator m(5);
  std::set<std::vector<std::uint8_t>> variants;
  for (int i = 0; i < 200; ++i) {
    std::vector<std::uint8_t> data{'h', 'e', 'l', 'l', 'o'};
    m.mutate(data, {}, 64);
    EXPECT_LE(data.size(), 64u);
    EXPECT_FALSE(data.empty());
    variants.insert(data);
  }
  EXPECT_GT(variants.size(), 100u);
}

TEST(Mutator, RespectsMaxSizeOnGrowth) {
  Mutator m(6);
  for (int i = 0; i < 500; ++i) {
    std::vector<std::uint8_t> data(16, 0xaa);
    m.mutate(data, {}, 16);
    EXPECT_LE(data.size(), 16u);
  }
}

TEST(Mutator, DictionaryTokensAppear) {
  Mutator m(7);
  const std::vector<std::uint8_t> token{'M', 'A', 'G', 'C'};
  m.add_dictionary_token(token);
  int appearances = 0;
  for (int i = 0; i < 500; ++i) {
    std::vector<std::uint8_t> data(12, 0);
    m.mutate(data, {}, 64);
    for (std::size_t j = 0; j + token.size() <= data.size(); ++j) {
      if (std::memcmp(&data[j], token.data(), token.size()) == 0) {
        ++appearances;
        break;
      }
    }
  }
  EXPECT_GT(appearances, 10);
}

TEST(Mutator, SpliceDrawsFromOtherInput) {
  Mutator m(8);
  const std::vector<std::uint8_t> other(32, 0x77);
  int borrowed = 0;
  for (int i = 0; i < 500; ++i) {
    std::vector<std::uint8_t> data(8, 0x11);
    m.mutate(data, other, 64);
    borrowed += std::count(data.begin(), data.end(), 0x77) > 4;
  }
  EXPECT_GT(borrowed, 5);
}

// A toy target with nested input-dependent branches: reaching "deep" needs
// the right magic bytes, which pure random search essentially never finds
// but coverage guidance does.
void toy_target(std::span<const std::uint8_t> in, bool* reached_deep) {
  POLAR_COV_SITE();
  if (in.size() < 4) return;
  if (in[0] == 'P') {
    POLAR_COV_SITE();
    if (in[1] == 'O') {
      POLAR_COV_SITE();
      if (in[2] == 'L') {
        POLAR_COV_SITE();
        if (in[3] == 'R') {
          POLAR_COV_SITE();
          if (reached_deep != nullptr) *reached_deep = true;
        }
      }
    }
  }
}

TEST(Fuzzer, CoverageGuidanceReachesDeepBranch) {
  bool reached = false;
  Fuzzer fuzzer([&](std::span<const std::uint8_t> in) {
    toy_target(in, &reached);
  }, Fuzzer::Options{.seed = 1234, .max_input_size = 16});
  fuzzer.add_seed({'P', 'x', 'x', 'x'});
  fuzzer.run(60000);
  EXPECT_TRUE(reached);
  EXPECT_GE(fuzzer.corpus().size(), 4u);  // one entry per peeled layer
}

TEST(Fuzzer, StatsAreConsistent) {
  Fuzzer fuzzer([](std::span<const std::uint8_t> in) {
    POLAR_COV_SITE();
    if (!in.empty() && in[0] == 'A') POLAR_COV_SITE();
  }, Fuzzer::Options{.seed = 5});
  const FuzzStats& s = fuzzer.run(2000);
  EXPECT_EQ(s.executions, 2001u);  // bootstrap + iterations
  EXPECT_GE(s.corpus_additions, 1u);
  EXPECT_EQ(fuzzer.corpus().size(), s.corpus_additions);
  EXPECT_GT(s.features, 0u);
}

TEST(Fuzzer, StallLimitStopsEarly) {
  Fuzzer fuzzer([](std::span<const std::uint8_t>) { POLAR_COV_SITE(); },
                Fuzzer::Options{.seed = 6, .stall_limit = 100});
  const FuzzStats& s = fuzzer.run(100000);
  EXPECT_LT(s.executions, 1000u);
}

TEST(Fuzzer, TargetWithoutCoverageStillRuns) {
  std::uint64_t calls = 0;
  Fuzzer fuzzer([&](std::span<const std::uint8_t>) { ++calls; },
                Fuzzer::Options{.seed = 7});
  fuzzer.run(50);
  EXPECT_GE(calls, 51u);
}

TEST(Fuzzer, DeterministicForSeed) {
  auto run_once = [](std::uint64_t seed) {
    Fuzzer fuzzer([](std::span<const std::uint8_t> in) {
      POLAR_COV_SITE();
      if (in.size() > 3 && in[0] == 'Z') POLAR_COV_SITE();
      if (in.size() > 8) POLAR_COV_SITE();
    }, Fuzzer::Options{.seed = seed});
    fuzzer.run(500);
    return fuzzer.stats().features;
  };
  EXPECT_EQ(run_once(42), run_once(42));
}

}  // namespace
}  // namespace polar
