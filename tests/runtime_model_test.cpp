// Model-based randomized testing of the POLaR runtime: long random
// sequences of alloc / free / store / load / clone / memcpy / trap-check
// operations are executed simultaneously against the real runtime and a
// trivial reference model (a map of field values). Any divergence —
// wrong value read back, spurious violation, missed violation, trap
// false-positive — fails. This is the "many meaningful inputs" coverage
// that single-scenario unit tests cannot give.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "alloc/heap.h"
#include "core/runtime.h"
#include "support/rng.h"

namespace polar {
namespace {

struct ModelObject {
  TypeId type;
  std::vector<std::uint64_t> fields;
};

class ModelChecker {
 public:
  ModelChecker(Runtime& rt, TypeRegistry& reg, std::uint64_t seed)
      : rt_(rt), reg_(reg), rng_(seed) {}

  void run(int steps) {
    for (int i = 0; i < steps; ++i) step();
    // Tear down: every remaining object must free cleanly, traps intact.
    for (auto& [base, obj] : model_) {
      EXPECT_TRUE(rt_.check_traps(base));
      EXPECT_TRUE(rt_.olr_free(base));
    }
    model_.clear();
    EXPECT_EQ(rt_.live_objects(), 0u);
  }

 private:
  void* random_live() {
    if (model_.empty()) return nullptr;
    auto it = model_.begin();
    std::advance(it, static_cast<std::ptrdiff_t>(rng_.below(model_.size())));
    return it->first;
  }

  void verify_object(void* base, const ModelObject& obj) {
    const TypeInfo& info = reg_.info(obj.type);
    for (std::uint32_t f = 0; f < info.field_count(); ++f) {
      std::uint64_t actual = 0;
      void* p = rt_.olr_getptr(base, f);
      ASSERT_NE(p, nullptr);
      std::memcpy(&actual, p, info.fields[f].size);
      const std::uint64_t mask =
          info.fields[f].size >= 8
              ? ~0ULL
              : ((1ULL << (8 * info.fields[f].size)) - 1);
      EXPECT_EQ(actual, obj.fields[f] & mask);
    }
  }

  void step() {
    const std::uint64_t op = rng_.below(100);
    if (op < 25 || model_.empty()) {  // alloc
      const TypeId type = types_[rng_.below(types_.size())];
      void* base = rt_.olr_malloc(type);
      ASSERT_NE(base, nullptr);
      ASSERT_FALSE(model_.contains(base)) << "address reused while live";
      model_[base] = {type, std::vector<std::uint64_t>(
                                reg_.info(type).field_count(), 0)};
      return;
    }
    if (op < 40) {  // free
      void* base = random_live();
      EXPECT_TRUE(rt_.check_traps(base));
      EXPECT_TRUE(rt_.olr_free(base));
      model_.erase(base);
      return;
    }
    if (op < 70) {  // store a random field
      void* base = random_live();
      ModelObject& obj = model_[base];
      const TypeInfo& info = reg_.info(obj.type);
      const auto f = static_cast<std::uint32_t>(rng_.below(info.field_count()));
      const std::uint64_t v = rng_.next();
      void* p = rt_.olr_getptr(base, f);
      ASSERT_NE(p, nullptr);
      std::memcpy(p, &v, info.fields[f].size);
      obj.fields[f] = v;
      return;
    }
    if (op < 85) {  // verify a whole object
      void* base = random_live();
      verify_object(base, model_[base]);
      return;
    }
    if (op < 93) {  // clone
      void* src = random_live();
      void* dst = rt_.olr_clone(src);
      ASSERT_NE(dst, nullptr);
      ASSERT_FALSE(model_.contains(dst));
      model_[dst] = model_[src];
      verify_object(dst, model_[dst]);
      return;
    }
    // memcpy between two live objects of the same type (if possible)
    void* a = random_live();
    const TypeId type = model_[a].type;
    for (auto& [base, obj] : model_) {
      if (base != a && obj.type == type) {
        EXPECT_TRUE(rt_.olr_memcpy(base, a));
        obj.fields = model_[a].fields;
        verify_object(base, obj);
        return;
      }
    }
  }

 public:
  void add_type(TypeId t) { types_.push_back(t); }

 private:
  Runtime& rt_;
  TypeRegistry& reg_;
  Rng rng_;
  std::map<void*, ModelObject> model_;
  std::vector<TypeId> types_;
};

void register_model_types(TypeRegistry& reg, ModelChecker& checker) {
  checker.add_type(TypeBuilder(reg, "M1")
                       .fn_ptr("vt")
                       .field<std::uint32_t>("a")
                       .field<std::uint64_t>("b")
                       .build());
  checker.add_type(TypeBuilder(reg, "M2")
                       .field<std::uint8_t>("x")
                       .field<std::uint16_t>("y")
                       .field<std::uint32_t>("z")
                       .ptr("p")
                       .field<std::uint64_t>("w")
                       .build());
  checker.add_type(TypeBuilder(reg, "M3").field<std::uint64_t>("only").build());
}

class RuntimeModel : public ::testing::TestWithParam<
                         std::tuple<std::uint64_t, bool, bool, bool>> {};

TEST_P(RuntimeModel, RandomOpsMatchReferenceModel) {
  const auto [seed, cache, dedup, custom_heap] = GetParam();
  TypeRegistry reg;
  SizeClassHeap heap;
  RuntimeConfig cfg;
  cfg.seed = seed;
  cfg.enable_cache = cache;
  cfg.dedup_layouts = dedup;
  cfg.on_violation = ErrorAction::kReport;
  if (custom_heap) {
    cfg.alloc_fn = SizeClassHeap::alloc_hook;
    cfg.free_fn = SizeClassHeap::free_hook;
    cfg.alloc_ctx = &heap;
  }
  Runtime rt(reg, cfg);
  ModelChecker checker(rt, reg, seed * 31 + 7);
  register_model_types(reg, checker);
  checker.run(8000);
  EXPECT_EQ(rt.last_violation(), Violation::kNone);
  EXPECT_EQ(rt.stats().uaf_detected, 0u);
  EXPECT_EQ(rt.stats().traps_triggered, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, RuntimeModel,
    ::testing::Combine(::testing::Values(1u, 2u, 3u), ::testing::Bool(),
                       ::testing::Bool(), ::testing::Bool()),
    [](const auto& pi) {
      return "seed" + std::to_string(std::get<0>(pi.param)) + "_cache" +
             (std::get<1>(pi.param) ? "1" : "0") + "_dedup" +
             (std::get<2>(pi.param) ? "1" : "0") + "_heap" +
             (std::get<3>(pi.param) ? "1" : "0");
    });

}  // namespace
}  // namespace polar
