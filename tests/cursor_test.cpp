// FieldCursor / obj_fields_multi — the batched member-access surface
// (DESIGN.md §15): batched addresses must be bit-identical to the scalar
// path on every backend, a cursor held across the object's free must fall
// back to the checked path and raise the same violation a scalar access
// would, and the lazy-revalidation machinery (seq moved -> re-snapshot)
// must re-arm on benign re-publishes and refuse on real ones.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/backend.h"
#include "core/field_cursor.h"
#include "core/runtime.h"
#include "core/type_registry.h"

namespace polar {
namespace {

TypeId make_widget(TypeRegistry& reg) {
  return TypeBuilder(reg, "Widget")
      .fn_ptr("vtable")
      .field<std::uint64_t>("value")
      .ptr("next")
      .field<std::uint32_t>("len")
      .field<std::uint32_t>("cap")
      .build();
}

/// Wider than CursorSnap::kMaxFields — cursor_snapshot must refuse and the
/// cursor must degrade to the scalar path without losing correctness.
TypeId make_wide(TypeRegistry& reg) {
  TypeBuilder b(reg, "Wide");
  for (std::uint32_t f = 0; f < Runtime::CursorSnap::kMaxFields + 2; ++f) {
    b.field<std::uint64_t>("f" + std::to_string(f));
  }
  return b.build();
}

struct BackendCase {
  const char* name;
  BackendConfig config;
};

RuntimeConfig case_config(const BackendCase& c) {
  RuntimeConfig cfg;
  cfg.on_violation = ErrorAction::kReport;
  cfg.backend = c.config;
  return cfg;
}

class CursorBackends : public ::testing::TestWithParam<BackendCase> {};

INSTANTIATE_TEST_SUITE_P(
    AllBackends, CursorBackends,
    ::testing::Values(BackendCase{"stored", BackendConfig::stored()},
                      BackendCase{"stateless", BackendConfig::stateless()},
                      BackendCase{"hybrid", BackendConfig::hybrid()}),
    [](const auto& info) { return std::string(info.param.name); });

// --- scalar equivalence ------------------------------------------------------

TEST_P(CursorBackends, CursorAddressesMatchScalarPath) {
  TypeRegistry reg;
  const TypeId t = make_widget(reg);
  Runtime rt(reg, case_config(GetParam()));
  const ObjRef r = rt.obj_alloc(t).value();

  FieldCursor cur(rt, r);
  EXPECT_TRUE(cur.batched());
  for (std::uint32_t f = 0; f < 5; ++f) {
    EXPECT_EQ(cur.field(f), rt.obj_field(r, f).value()) << "field " << f;
  }
  // Typed loads/stores round-trip through the batched addresses.
  cur.store<std::uint64_t>(1, 0xdecafbadULL);
  EXPECT_EQ(cur.load<std::uint64_t>(1), 0xdecafbadULL);
  EXPECT_EQ(rt.obj_field(r, 1).ok() ? *static_cast<std::uint64_t*>(
                                          rt.obj_field(r, 1).value())
                                    : 0,
            0xdecafbadULL);
  EXPECT_TRUE(rt.obj_free(r).ok());
}

TEST_P(CursorBackends, MultiMatchesScalarAndLegacyWrapperCounts) {
  TypeRegistry reg;
  const TypeId t = make_widget(reg);
  Runtime rt(reg, case_config(GetParam()));
  const ObjRef r = rt.obj_alloc(t).value();

  const std::uint32_t fields[5] = {4, 0, 2, 1, 3};  // order is caller's
  void* out[5] = {};
  ASSERT_TRUE(rt.obj_fields_multi(r, fields, out, 5).ok());
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(out[i], rt.obj_field(r, fields[i]).value()) << "slot " << i;
  }

  // The legacy wrapper takes an untyped base and reports how many slots
  // resolved.
  void* legacy_out[3] = {};
  const std::uint32_t legacy_fields[3] = {0, 1, 2};
  EXPECT_EQ(rt.olr_getptr_multi(r.base, legacy_fields, legacy_out, 3), 3u);
  EXPECT_TRUE(rt.obj_free(r).ok());
}

TEST_P(CursorBackends, MultiRefusesOutOfRangeFieldAndNullsTheSlot) {
  TypeRegistry reg;
  const TypeId t = make_widget(reg);
  Runtime rt(reg, case_config(GetParam()));
  const ObjRef r = rt.obj_alloc(t).value();

  const std::uint32_t fields[3] = {0, 99, 1};
  void* out[3] = {};
  const Result<void> res = rt.obj_fields_multi(r, fields, out, 3);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.error(), Violation::kBadField);
  EXPECT_NE(out[0], nullptr);
  EXPECT_EQ(out[1], nullptr);
  EXPECT_TRUE(rt.obj_free(r).ok());
}

TEST_P(CursorBackends, WideTypeDegradesToScalarButStaysCorrect) {
  TypeRegistry reg;
  const TypeId t = make_wide(reg);
  Runtime rt(reg, case_config(GetParam()));
  const ObjRef r = rt.obj_alloc(t).value();

  FieldCursor cur(rt, r);
  EXPECT_FALSE(cur.batched());  // snapshot refused: too many fields
  for (std::uint32_t f = 0; f < Runtime::CursorSnap::kMaxFields + 2; ++f) {
    EXPECT_EQ(cur.field(f), rt.obj_field(r, f).value()) << "field " << f;
  }
  // obj_fields_multi still fills every slot through the per-field path.
  std::vector<std::uint32_t> fields;
  for (std::uint32_t f = 0; f < Runtime::CursorSnap::kMaxFields + 2; ++f) {
    fields.push_back(f);
  }
  std::vector<void*> out(fields.size(), nullptr);
  ASSERT_TRUE(
      rt.obj_fields_multi(r, fields.data(), out.data(), out.size()).ok());
  for (std::size_t i = 0; i < fields.size(); ++i) {
    EXPECT_EQ(out[i], rt.obj_field(r, fields[i]).value());
  }
  EXPECT_TRUE(rt.obj_free(r).ok());
}

// --- invalidation: cursor held across free ----------------------------------

TEST_P(CursorBackends, CursorHeldAcrossFreeFallsBackToCheckedPath) {
  TypeRegistry reg;
  const TypeId t = make_widget(reg);
  Runtime rt(reg, case_config(GetParam()));
  const ObjRef r = rt.obj_alloc(t).value();

  FieldCursor cur(rt, r);
  ASSERT_NE(cur.field(1), nullptr);
  ASSERT_TRUE(rt.obj_free(r).ok());

  if (GetParam().config.kind == BackendKind::kStateless) {
    // The stateless backend keeps no liveness metadata; its scalar path
    // cannot detect UAF and the cursor inherits exactly that caveat. The
    // address is still pure arithmetic (never dereferenced here).
    EXPECT_NE(cur.field(1), nullptr);
    return;
  }
  // Stored/hybrid: the free moved the cell's sequence word, so the cursor
  // may not serve the batched address; the re-snapshot fails and the
  // scalar checked path classifies the access.
  rt.clear_violation();
  EXPECT_EQ(cur.field(1), nullptr);
  EXPECT_EQ(rt.last_violation(), Violation::kUseAfterFree);
  EXPECT_FALSE(cur.batched());
}

TEST_P(CursorBackends, MultiOnFreedObjectRaisesUafOnCheckedBackends) {
  TypeRegistry reg;
  const TypeId t = make_widget(reg);
  Runtime rt(reg, case_config(GetParam()));
  const ObjRef r = rt.obj_alloc(t).value();
  ASSERT_TRUE(rt.obj_free(r).ok());

  const std::uint32_t fields[2] = {0, 1};
  void* out[2] = {};
  const Result<void> res = rt.obj_fields_multi(r, fields, out, 2);
  if (GetParam().config.kind == BackendKind::kStateless) return;
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.error(), Violation::kUseAfterFree);
  EXPECT_EQ(out[0], nullptr);
  EXPECT_EQ(out[1], nullptr);
}

TEST_P(CursorBackends, StaleCursorAfterReallocationStillRaisesUaf) {
  // The freed slot may be recycled for a new object; the old cursor's
  // checked handle (nonzero id) must not resolve through the newcomer.
  TypeRegistry reg;
  const TypeId t = make_widget(reg);
  Runtime rt(reg, case_config(GetParam()));
  if (GetParam().config.kind == BackendKind::kStateless) return;

  const ObjRef old = rt.obj_alloc(t).value();
  FieldCursor cur(rt, old);
  ASSERT_TRUE(cur.batched());
  ASSERT_TRUE(rt.obj_free(old).ok());
  const ObjRef fresh = rt.obj_alloc(t).value();

  rt.clear_violation();
  EXPECT_EQ(cur.field(1), nullptr);
  EXPECT_EQ(rt.last_violation(), Violation::kUseAfterFree);
  EXPECT_TRUE(rt.obj_free(fresh).ok());
}

// --- re-arming on benign sequence moves -------------------------------------

TEST(CursorStored, MirrorHealReArmsTheCursor) {
  TypeRegistry reg;
  const TypeId t = make_widget(reg);
  RuntimeConfig cfg;
  cfg.on_violation = ErrorAction::kReport;
  cfg.backend = BackendConfig::stored();
  cfg.enable_cache = false;
  Runtime rt(reg, cfg);
  const ObjRef r = rt.obj_alloc(t).value();

  FieldCursor cur(rt, r);
  ASSERT_TRUE(cur.batched());
  void* before = cur.field(1);

  // Flip a mirror word without moving the sequence counter: the cursor's
  // snapshot predates the damage, so its batched addresses stay valid and
  // keep being served.
  ASSERT_TRUE(rt.debug_corrupt_mirror(r.base, 0x40u));
  EXPECT_EQ(cur.field(1), before);

  // A scalar access detects the damage and heals the mirror, which bumps
  // the sequence word...
  EXPECT_FALSE(rt.obj_field(r, 0).ok());
  EXPECT_EQ(rt.last_violation(), Violation::kMetadataDamaged);
  rt.clear_violation();
  ASSERT_TRUE(rt.obj_field(r, 0).ok());

  // ...and the cursor's next access notices, re-snapshots (a benign
  // re-publish: same base, same id, same layout) and re-arms.
  EXPECT_EQ(cur.field(1), before);
  EXPECT_TRUE(cur.batched());
  EXPECT_EQ(rt.last_violation(), Violation::kNone);
  EXPECT_TRUE(rt.obj_free(r).ok());
}

TEST(CursorStored, SnapshotIsOneMetadataConsultation) {
  // The perf contract behind the whole feature: N batched accesses cost
  // one member-access resolution, not N.
  TypeRegistry reg;
  const TypeId t = make_widget(reg);
  RuntimeConfig cfg;
  cfg.on_violation = ErrorAction::kReport;
  cfg.backend = BackendConfig::stored();
  cfg.enable_cache = false;
  Runtime rt(reg, cfg);
  const ObjRef r = rt.obj_alloc(t).value();

  const std::uint64_t before = rt.stats().member_accesses;
  FieldCursor cur(rt, r);
  volatile void* sink = nullptr;
  for (int i = 0; i < 100; ++i) sink = cur.field(static_cast<std::uint32_t>(i % 5));
  (void)sink;
  const std::uint64_t after = rt.stats().member_accesses;
  EXPECT_EQ(after - before, 1u);  // the snapshot itself
  EXPECT_TRUE(rt.obj_free(r).ok());
}

TEST(CursorStateless, SnapshotTouchesNoMetadata) {
  TypeRegistry reg;
  const TypeId t = make_widget(reg);
  RuntimeConfig cfg;
  cfg.on_violation = ErrorAction::kReport;
  cfg.backend = BackendConfig::stateless();
  Runtime rt(reg, cfg);
  const ObjRef r = rt.obj_alloc(t).value();

  FieldCursor cur(rt, r);
  EXPECT_TRUE(cur.batched());
  const std::uint64_t fast_before = rt.stats().fastpath_hits;
  volatile void* sink = nullptr;
  for (int i = 0; i < 64; ++i) sink = cur.field(static_cast<std::uint32_t>(i % 5));
  (void)sink;
  EXPECT_EQ(rt.stats().fastpath_hits, fast_before);  // no seqlock reads
  EXPECT_GE(rt.stats().stateless_accesses, 1u);      // the snapshot row read
  EXPECT_TRUE(rt.obj_free(r).ok());
}

TEST(CursorRefresh, ExplicitRefreshRearmsAfterInvalidation) {
  TypeRegistry reg;
  const TypeId t = make_widget(reg);
  RuntimeConfig cfg;
  cfg.on_violation = ErrorAction::kReport;
  cfg.backend = BackendConfig::stored();
  Runtime rt(reg, cfg);
  const ObjRef r = rt.obj_alloc(t).value();
  FieldCursor cur(rt, r);
  ASSERT_TRUE(cur.refresh());  // refresh on a live object re-arms
  EXPECT_EQ(cur.field(2), rt.obj_field(r, 2).value());
  ASSERT_TRUE(rt.obj_free(r).ok());
  EXPECT_FALSE(cur.refresh());  // and on a dead one it reports the miss
  EXPECT_FALSE(cur.batched());
}

}  // namespace
}  // namespace polar
