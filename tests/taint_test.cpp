#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "taint/domain.h"
#include "taint/label.h"
#include "taint/shadow.h"
#include "taint/tainted.h"

namespace polar {
namespace {

TEST(LabelTable, FreshLabelsAreDistinctBases) {
  LabelTable t;
  const Label a = t.fresh("input-a");
  const Label b = t.fresh("input-b");
  EXPECT_NE(a, kNoLabel);
  EXPECT_NE(a, b);
  EXPECT_EQ(t.description(a), "input-a");
  EXPECT_EQ(t.description(b), "input-b");
}

TEST(LabelTable, UnionIdentities) {
  LabelTable t;
  const Label a = t.fresh("a");
  EXPECT_EQ(t.unite(a, kNoLabel), a);
  EXPECT_EQ(t.unite(kNoLabel, a), a);
  EXPECT_EQ(t.unite(a, a), a);
}

TEST(LabelTable, UnionIsMemoized) {
  LabelTable t;
  const Label a = t.fresh("a");
  const Label b = t.fresh("b");
  const Label u1 = t.unite(a, b);
  const Label u2 = t.unite(b, a);  // symmetric
  EXPECT_EQ(u1, u2);
  EXPECT_EQ(t.label_count(), 4u);  // 0, a, b, a|b
}

TEST(LabelTable, IncludesTracksClosure) {
  LabelTable t;
  const Label a = t.fresh("a");
  const Label b = t.fresh("b");
  const Label c = t.fresh("c");
  const Label ab = t.unite(a, b);
  const Label abc = t.unite(ab, c);
  EXPECT_TRUE(t.includes(ab, a));
  EXPECT_TRUE(t.includes(ab, b));
  EXPECT_FALSE(t.includes(ab, c));
  EXPECT_TRUE(t.includes(abc, a));
  EXPECT_TRUE(t.includes(abc, c));
  EXPECT_FALSE(t.includes(a, b));
}

TEST(LabelTable, SubsumptionAvoidsNewLabels) {
  LabelTable t;
  const Label a = t.fresh("a");
  const Label b = t.fresh("b");
  const Label ab = t.unite(a, b);
  // a|b already includes a: union must return ab itself.
  EXPECT_EQ(t.unite(ab, a), ab);
  EXPECT_EQ(t.unite(b, ab), ab);
}

TEST(LabelTable, BasesOfFlattensDag) {
  LabelTable t;
  const Label a = t.fresh("a");
  const Label b = t.fresh("b");
  const Label c = t.fresh("c");
  const Label abc = t.unite(t.unite(a, b), c);
  EXPECT_EQ(t.bases_of(abc), (std::vector<Label>{a, b, c}));
  EXPECT_EQ(t.bases_of(kNoLabel), std::vector<Label>{});
  EXPECT_EQ(t.bases_of(a), std::vector<Label>{a});
}

TEST(ShadowMemory, SetAndGetByteGranularity) {
  ShadowMemory shadow;
  std::uint8_t buf[16] = {};
  shadow.set(&buf[4], 4, 7);
  EXPECT_EQ(shadow.get(&buf[3]), kNoLabel);
  EXPECT_EQ(shadow.get(&buf[4]), 7);
  EXPECT_EQ(shadow.get(&buf[7]), 7);
  EXPECT_EQ(shadow.get(&buf[8]), kNoLabel);
}

TEST(ShadowMemory, ReadUnionCombinesLabels) {
  LabelTable t;
  const Label a = t.fresh("a");
  const Label b = t.fresh("b");
  ShadowMemory shadow;
  std::uint8_t buf[8] = {};
  shadow.set(&buf[0], 2, a);
  shadow.set(&buf[6], 2, b);
  const Label u = shadow.read_union(buf, 8, t);
  EXPECT_TRUE(t.includes(u, a));
  EXPECT_TRUE(t.includes(u, b));
  EXPECT_EQ(shadow.read_union(&buf[2], 4, t), kNoLabel);
}

TEST(ShadowMemory, CopyMovesLabels) {
  ShadowMemory shadow;
  std::uint8_t src[8] = {}, dst[8] = {};
  shadow.set(&src[2], 3, 5);
  shadow.copy(dst, src, 8);
  EXPECT_EQ(shadow.get(&dst[1]), kNoLabel);
  EXPECT_EQ(shadow.get(&dst[2]), 5);
  EXPECT_EQ(shadow.get(&dst[4]), 5);
  EXPECT_EQ(shadow.get(&dst[5]), kNoLabel);
}

TEST(ShadowMemory, OverlappingCopyBehavesLikeMemmove) {
  ShadowMemory shadow;
  std::uint8_t buf[16] = {};
  shadow.set(&buf[0], 4, 9);
  shadow.copy(&buf[2], &buf[0], 4);  // overlap
  EXPECT_EQ(shadow.get(&buf[2]), 9);
  EXPECT_EQ(shadow.get(&buf[5]), 9);
}

TEST(ShadowMemory, ClearAndTaintedBytes) {
  ShadowMemory shadow;
  std::uint8_t buf[64] = {};
  shadow.set(buf, 64, 3);
  EXPECT_EQ(shadow.tainted_bytes(), 64u);
  shadow.clear(&buf[0], 32);
  EXPECT_EQ(shadow.tainted_bytes(), 32u);
  shadow.reset();
  EXPECT_EQ(shadow.tainted_bytes(), 0u);
}

TEST(ShadowMemory, CrossPageRanges) {
  ShadowMemory shadow;
  std::vector<std::uint8_t> big(10000);
  shadow.set(big.data(), big.size(), 2);
  EXPECT_EQ(shadow.get(&big[0]), 2);
  EXPECT_EQ(shadow.get(&big[4096]), 2);
  EXPECT_EQ(shadow.get(&big[9999]), 2);
  EXPECT_EQ(shadow.tainted_bytes(), big.size());
}

TEST(TaintDomain, TaintInputLabelsBuffer) {
  TaintDomain domain;
  std::uint8_t input[32] = {};
  const Label l = domain.taint_input(input, 32, "bmp file");
  EXPECT_EQ(domain.shadow().get(&input[31]), l);
  EXPECT_EQ(domain.labels().description(l), "bmp file");
}

TEST(TaintDomain, MemcpyAbiPropagates) {
  TaintDomain domain;
  std::uint8_t input[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  std::uint8_t copy[8] = {};
  const Label l = domain.taint_input(input, 8, "file");
  domain.t_memcpy(copy, input, 8);
  EXPECT_EQ(0, std::memcmp(copy, input, 8));
  EXPECT_EQ(domain.load_label(copy, 8), l);
}

TEST(TaintDomain, MemsetClearsTaint) {
  TaintDomain domain;
  std::uint8_t buf[8] = {};
  domain.taint_input(buf, 8, "x");
  domain.t_memset(buf, 0, 8);
  EXPECT_EQ(domain.load_label(buf, 8), kNoLabel);
}

TEST(Tainted, ArithmeticPropagatesLabels) {
  TaintDomain domain;
  TaintScope scope(domain);
  const Label la = domain.labels().fresh("a");
  const Label lb = domain.labels().fresh("b");
  const Tainted<int> a(10, la);
  const Tainted<int> b(4, lb);
  const Tainted<int> sum = a + b;
  EXPECT_EQ(sum.value(), 14);
  EXPECT_TRUE(domain.labels().includes(sum.label(), la));
  EXPECT_TRUE(domain.labels().includes(sum.label(), lb));
  const Tainted<int> shifted = a << Tainted<int>(2);
  EXPECT_EQ(shifted.value(), 40);
  EXPECT_EQ(shifted.label(), la);  // untainted shift amount adds nothing
}

TEST(Tainted, UntaintedStaysUntainted) {
  const Tainted<int> a(3);
  const Tainted<int> b(4);
  // No TaintScope active: fine, both operands untainted.
  EXPECT_EQ((a * b).value(), 12);
  EXPECT_FALSE((a * b).tainted());
}

TEST(Tainted, MixedOpsKeepValueSemantics) {
  TaintDomain domain;
  TaintScope scope(domain);
  const Label l = domain.labels().fresh("in");
  Tainted<std::uint32_t> x(0x1234, l);
  x = (x & Tainted<std::uint32_t>(0xff00)) >> Tainted<std::uint32_t>(8);
  EXPECT_EQ(x.value(), 0x12u);
  EXPECT_EQ(x.label(), l);
  const Tainted<std::uint32_t> mod = x % Tainted<std::uint32_t>(7);
  EXPECT_EQ(mod.value(), 0x12u % 7u);
  EXPECT_TRUE(mod.tainted());
}

TEST(Tainted, CastPreservesLabel) {
  TaintDomain domain;
  TaintScope scope(domain);
  const Label l = domain.labels().fresh("in");
  const Tainted<std::uint32_t> big(0x1ffff, l);
  const auto small = big.cast<std::uint16_t>();
  EXPECT_EQ(small.value(), 0xffffu);
  EXPECT_EQ(small.label(), l);
}

TEST(Tainted, ComparisonsDropTaint) {
  TaintDomain domain;
  TaintScope scope(domain);
  const Label l = domain.labels().fresh("in");
  const Tainted<int> a(5, l);
  EXPECT_TRUE(a == Tainted<int>(5));
  EXPECT_TRUE(a < Tainted<int>(9));
}

TEST(Tainted, LoadStoreRoundTripsShadow) {
  TaintDomain domain;
  TaintScope scope(domain);
  const Label l = domain.labels().fresh("in");
  std::uint64_t slot = 0;
  store_tainted(domain, &slot, Tainted<std::uint64_t>(0xabcdULL, l));
  EXPECT_EQ(slot, 0xabcdULL);
  const auto back = load_tainted<std::uint64_t>(domain, &slot);
  EXPECT_EQ(back.value(), 0xabcdULL);
  EXPECT_EQ(back.label(), l);
}

TEST(Tainted, PartialOverwriteSplitsLabels) {
  // Byte granularity: overwriting half a tainted word with clean data
  // leaves the other half tainted — the DFSan behaviour TaintClass needs.
  TaintDomain domain;
  TaintScope scope(domain);
  const Label l = domain.labels().fresh("in");
  std::uint64_t slot = 0;
  store_tainted(domain, &slot, Tainted<std::uint64_t>(~0ULL, l));
  store_tainted(domain, &slot, Tainted<std::uint32_t>(0u));  // clean low half
  EXPECT_EQ(domain.load_label(&slot, 4), kNoLabel);
  EXPECT_EQ(domain.load_label(&slot, 8), l);
}

}  // namespace
}  // namespace polar
