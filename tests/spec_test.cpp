// The spec minis' correctness contract: each workload produces the same
// checksum under the default build (DirectSpace) and the POLaR build
// (PolarSpace) — the compatibility experiment of paper §V-A — and its
// taint_parse entry discovers input-dependent objects under fuzzing
// (Table I).
#include <gtest/gtest.h>

#include "fuzz/fuzzer.h"
#include "workloads/spec_suite.h"

namespace polar::spec {
namespace {

class SpecSuiteTest : public ::testing::TestWithParam<int> {
 protected:
  static const std::vector<SpecEntry>& suite() {
    static TypeRegistry* reg = new TypeRegistry();
    static const auto* s = new std::vector<SpecEntry>(build_spec_suite(*reg));
    return *s;
  }
  static TypeRegistry& registry() {
    static TypeRegistry reg;
    static const auto suite_once = build_spec_suite(reg);
    return reg;
  }
};

TEST_P(SpecSuiteTest, DirectAndPolarAgree) {
  TypeRegistry reg;
  const auto suite = build_spec_suite(reg);
  const SpecEntry& entry = suite[static_cast<std::size_t>(GetParam())];

  DirectSpace direct(reg);
  const std::uint64_t direct_sum = entry.run_direct(direct, 1, 42);

  RuntimeConfig cfg;
  cfg.seed = 7;
  cfg.on_violation = ErrorAction::kAbort;  // any misuse must blow up loudly
  Runtime rt(reg, cfg);
  PolarSpace polar_space(rt);
  const std::uint64_t polar_sum = entry.run_polar(polar_space, 1, 42);

  EXPECT_EQ(direct_sum, polar_sum) << entry.name;
  EXPECT_EQ(rt.live_objects(), 0u) << entry.name << " leaked objects";
  EXPECT_EQ(rt.stats().traps_triggered, 0u) << entry.name;
}

TEST_P(SpecSuiteTest, ChecksumDeterministicPerSeed) {
  TypeRegistry reg;
  const auto suite = build_spec_suite(reg);
  const SpecEntry& entry = suite[static_cast<std::size_t>(GetParam())];
  DirectSpace direct(reg);
  EXPECT_EQ(entry.run_direct(direct, 1, 5), entry.run_direct(direct, 1, 5));
  if (entry.name != "462.libquantum") {  // input-independent by design
    EXPECT_NE(entry.run_direct(direct, 1, 5), entry.run_direct(direct, 1, 6));
  }
}

TEST_P(SpecSuiteTest, PolarRunsUnderReportModeWithoutViolations) {
  TypeRegistry reg;
  const auto suite = build_spec_suite(reg);
  const SpecEntry& entry = suite[static_cast<std::size_t>(GetParam())];
  RuntimeConfig cfg;
  cfg.on_violation = ErrorAction::kReport;
  Runtime rt(reg, cfg);
  PolarSpace space(rt);
  entry.run_polar(space, 1, 9);
  EXPECT_EQ(rt.last_violation(), Violation::kNone) << entry.name;
  EXPECT_EQ(rt.stats().uaf_detected, 0u) << entry.name;
}

TEST_P(SpecSuiteTest, TaintParseSampleInputIsSafe) {
  TypeRegistry reg;
  const auto suite = build_spec_suite(reg);
  const SpecEntry& entry = suite[static_cast<std::size_t>(GetParam())];
  TaintDomain domain;
  TaintClassMonitor monitor(reg);
  TaintClassSpace space(reg, domain, monitor);
  const auto input = entry.sample_input(3);
  std::vector<std::uint8_t> buf = input;
  domain.taint_input(buf.data(), buf.size(), entry.name);
  entry.taint_parse(space, buf);
  // Sample inputs exercise the happy path; except libquantum every
  // workload should already show at least one tainted type.
  if (entry.name == "462.libquantum") {
    EXPECT_EQ(monitor.tainted_type_count(), 0u);
  } else {
    EXPECT_GE(monitor.tainted_type_count(), 1u) << entry.name;
  }
}

TEST_P(SpecSuiteTest, FuzzingWidensTaintCoverage) {
  TypeRegistry reg;
  const auto suite = build_spec_suite(reg);
  const SpecEntry& entry = suite[static_cast<std::size_t>(GetParam())];
  if (entry.name == "462.libquantum") GTEST_SKIP();

  TaintDomain domain;
  TaintClassMonitor monitor(reg);
  TaintClassSpace space(reg, domain, monitor);

  // Single sample input baseline.
  {
    auto buf = entry.sample_input(1);
    domain.taint_input(buf.data(), buf.size(), entry.name);
    entry.taint_parse(space, buf);
  }
  const std::size_t baseline = monitor.tainted_type_count();

  Fuzzer fuzzer(
      [&](std::span<const std::uint8_t> in) {
        domain.reset_shadow();
        std::vector<std::uint8_t> buf(in.begin(), in.end());
        if (buf.empty()) return;
        domain.taint_input(buf.data(), buf.size(), entry.name);
        entry.taint_parse(space, buf);
      },
      Fuzzer::Options{.seed = 77, .max_input_size = 64});
  for (std::uint64_t s = 0; s < 4; ++s) fuzzer.add_seed(entry.sample_input(s));
  for (const auto& token : entry.dictionary) {
    fuzzer.add_dictionary_token(token);
  }
  fuzzer.run(4000);

  EXPECT_GE(monitor.tainted_type_count(), baseline) << entry.name;
  EXPECT_GE(monitor.tainted_type_count(), 2u) << entry.name;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, SpecSuiteTest, ::testing::Range(0, 12),
                         [](const auto& pi) {
                           TypeRegistry reg;
                           auto suite = build_spec_suite(reg);
                           std::string name =
                               suite[static_cast<std::size_t>(pi.param)].name;
                           for (char& c : name) {
                             if (c == '.') c = '_';
                           }
                           return name;
                         });

TEST(SpecSuite, TwelveWorkloadsRegistered) {
  TypeRegistry reg;
  const auto suite = build_spec_suite(reg);
  EXPECT_EQ(suite.size(), 12u);
  EXPECT_GT(reg.size(), 60u);  // the census of registered types
}

TEST(SpecSuite, PaperTable1OrderingPreserved) {
  // Table I's relative ordering: xalancbmk reports the most tainted
  // objects, libquantum none. The suite encodes the paper's counts.
  TypeRegistry reg;
  const auto suite = build_spec_suite(reg);
  std::size_t xalan = 0, libq = 1;
  for (const auto& e : suite) {
    if (e.name == "483.xalancbmk") xalan = e.paper_tainted_objects;
    if (e.name == "462.libquantum") libq = e.paper_tainted_objects;
  }
  EXPECT_EQ(xalan, 59u);
  EXPECT_EQ(libq, 0u);
}

}  // namespace
}  // namespace polar::spec
