#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "core/cache.h"
#include "core/layout.h"
#include "core/metadata.h"
#include "core/runtime.h"
#include "core/space.h"
#include "core/type_registry.h"

namespace polar {
namespace {

// ----------------------------------------------------------- type registry

TypeId make_people(TypeRegistry& reg) {
  return TypeBuilder(reg, "People")
      .fn_ptr("vtable")
      .field<int>("age")
      .field<int>("height")
      .build();
}

TEST(TypeRegistry, NaturalLayoutMatchesCompilerRules) {
  TypeRegistry reg;
  const TypeId id = make_people(reg);
  const TypeInfo& info = reg.info(id);
  // vtable at 0, age at 8, height at 12 — the paper's Fig. 1 example.
  ASSERT_EQ(info.natural_offsets.size(), 3u);
  EXPECT_EQ(info.natural_offsets[0], 0u);
  EXPECT_EQ(info.natural_offsets[1], 8u);
  EXPECT_EQ(info.natural_offsets[2], 12u);
  EXPECT_EQ(info.natural_size, 16u);
  EXPECT_EQ(info.natural_align, 8u);
}

TEST(TypeRegistry, PaddingInsertedForAlignment) {
  TypeRegistry reg;
  const TypeId id = TypeBuilder(reg, "Padded")
                        .field<char>("tag")
                        .field<double>("value")
                        .field<char>("tail")
                        .build();
  const TypeInfo& info = reg.info(id);
  EXPECT_EQ(info.natural_offsets[0], 0u);
  EXPECT_EQ(info.natural_offsets[1], 8u);
  EXPECT_EQ(info.natural_offsets[2], 16u);
  EXPECT_EQ(info.natural_size, 24u);
}

TEST(TypeRegistry, FindByNameAndHash) {
  TypeRegistry reg;
  const TypeId id = make_people(reg);
  EXPECT_EQ(reg.find("People")->value, id.value);
  EXPECT_FALSE(reg.find("NoSuch").has_value());
  const std::uint64_t h = reg.info(id).class_hash;
  EXPECT_EQ(reg.find_by_hash(h)->value, id.value);
}

TEST(TypeRegistry, ClassHashStableAcrossRegistries) {
  TypeRegistry a, b;
  const TypeId ia = make_people(a);
  TypeBuilder(b, "Other").field<int>("x").build();
  const TypeId ib = make_people(b);
  EXPECT_EQ(a.info(ia).class_hash, b.info(ib).class_hash);
}

TEST(TypeRegistry, ClassHashSensitiveToFieldKind) {
  TypeRegistry a, b;
  const TypeId ia =
      TypeBuilder(a, "T").field<std::uint64_t>("x").build();
  const TypeId ib = TypeBuilder(b, "T").ptr("x").build();
  EXPECT_NE(a.info(ia).class_hash, b.info(ib).class_hash);
}

// ------------------------------------------------------- layout properties

struct LayoutCase {
  const char* name;
  std::vector<FieldInfo> fields;
};

const std::vector<LayoutCase>& layout_cases() {
  static const std::vector<LayoutCase> kCases{
      {"people",
       {{"vtable", 8, 8, FieldKind::kFunctionPointer},
        {"age", 4, 4, FieldKind::kScalar},
        {"height", 4, 4, FieldKind::kScalar}}},
      {"single", {{"only", 8, 8, FieldKind::kScalar}}},
      {"mixed",
       {{"a", 1, 1, FieldKind::kScalar},
        {"b", 8, 8, FieldKind::kPointer},
        {"c", 2, 2, FieldKind::kScalar},
        {"d", 4, 4, FieldKind::kScalar},
        {"e", 8, 8, FieldKind::kFunctionPointer},
        {"f", 16, 1, FieldKind::kBytes}}},
      {"many_small",
       {{"f0", 1, 1, FieldKind::kScalar},
        {"f1", 1, 1, FieldKind::kScalar},
        {"f2", 1, 1, FieldKind::kScalar},
        {"f3", 1, 1, FieldKind::kScalar},
        {"f4", 1, 1, FieldKind::kScalar},
        {"f5", 1, 1, FieldKind::kScalar},
        {"f6", 1, 1, FieldKind::kScalar},
        {"f7", 1, 1, FieldKind::kScalar}}},
      {"big_blob",
       {{"hdr", 8, 8, FieldKind::kPointer},
        {"payload", 256, 8, FieldKind::kBytes},
        {"len", 4, 4, FieldKind::kScalar}}},
  };
  return kCases;
}

class LayoutProperty
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {
 protected:
  TypeInfo make_type() {
    const LayoutCase& c = layout_cases()[static_cast<std::size_t>(
        std::get<0>(GetParam()))];
    TypeInfo info;
    info.name = c.name;
    info.fields = c.fields;
    compute_natural_layout(info);
    return info;
  }
};

bool regions_disjoint(
    std::vector<std::pair<std::uint32_t, std::uint32_t>> regions) {
  std::sort(regions.begin(), regions.end());
  for (std::size_t i = 1; i < regions.size(); ++i) {
    if (regions[i - 1].first + regions[i - 1].second > regions[i].first) {
      return false;
    }
  }
  return true;
}

TEST_P(LayoutProperty, RandomizedLayoutIsWellFormed) {
  const TypeInfo info = make_type();
  Rng rng(std::get<1>(GetParam()));
  LayoutPolicy policy;  // defaults: traps on, 1-3 dummies
  for (int iter = 0; iter < 50; ++iter) {
    const Layout layout = randomize_layout(info, policy, rng);

    ASSERT_EQ(layout.offsets.size(), info.fields.size());
    std::vector<std::pair<std::uint32_t, std::uint32_t>> regions;
    for (std::size_t f = 0; f < info.fields.size(); ++f) {
      // Alignment respected.
      EXPECT_EQ(layout.offsets[f] % info.fields[f].align, 0u)
          << info.name << " field " << f;
      // Field inside the object.
      EXPECT_LE(layout.offsets[f] + info.fields[f].size, layout.size);
      regions.emplace_back(layout.offsets[f], info.fields[f].size);
    }
    for (const TrapRegion& t : layout.traps) {
      EXPECT_LE(t.offset + t.size, layout.size);
      regions.emplace_back(t.offset, t.size);
    }
    // No overlaps among fields and traps.
    EXPECT_TRUE(regions_disjoint(regions)) << info.name;
    // Object at least as large as the natural representation.
    EXPECT_GE(layout.size, info.natural_size);
    EXPECT_EQ(layout.size % info.natural_align, 0u);
    EXPECT_EQ(layout.hash, layout.compute_hash());
  }
}

TEST_P(LayoutProperty, TrapsGuardEverySensitiveField) {
  const TypeInfo info = make_type();
  Rng rng(std::get<1>(GetParam()) ^ 0xbeef);
  LayoutPolicy policy;
  const Layout layout = randomize_layout(info, policy, rng);
  for (std::size_t f = 0; f < info.fields.size(); ++f) {
    if (!is_pointer_kind(info.fields[f].kind)) continue;
    // Some trap must end at or before this field and be the closest
    // preceding region (the "prepended booby trap" of §IV-A-3). We check
    // the weaker, stable property: a guarding trap exists strictly below
    // the field with no other *field* between them.
    bool guarded = false;
    for (const TrapRegion& t : layout.traps) {
      if (!t.guards_sensitive || t.offset >= layout.offsets[f]) continue;
      bool field_between = false;
      for (std::size_t g = 0; g < info.fields.size(); ++g) {
        if (g == f) continue;
        if (layout.offsets[g] >= t.offset + t.size &&
            layout.offsets[g] < layout.offsets[f]) {
          field_between = true;
          break;
        }
      }
      if (!field_between) {
        guarded = true;
        break;
      }
    }
    EXPECT_TRUE(guarded) << info.name << " field " << info.fields[f].name;
  }
}

TEST_P(LayoutProperty, NoPermuteNoTrapKeepsDeclaredOrder) {
  const TypeInfo info = make_type();
  Rng rng(std::get<1>(GetParam()));
  LayoutPolicy policy;
  policy.permute = false;
  policy.booby_traps = false;
  policy.min_dummies = 0;
  policy.max_dummies = 0;
  const Layout layout = randomize_layout(info, policy, rng);
  EXPECT_EQ(layout.offsets, info.natural_offsets);
  EXPECT_EQ(layout.size, info.natural_size);
  EXPECT_TRUE(layout.traps.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LayoutProperty,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Values(1u, 99u, 0xdeadu)),
    [](const auto& pi) {
      return std::string(layout_cases()[static_cast<std::size_t>(
                             std::get<0>(pi.param))]
                             .name) +
             "_seed" + std::to_string(std::get<1>(pi.param));
    });

TEST(Layout, PermutationSpaceFactorial) {
  TypeRegistry reg;
  const TypeId id = make_people(reg);
  LayoutPolicy policy;
  EXPECT_EQ(permutation_space(reg.info(id), policy), 6u);  // 3!
  policy.permute = false;
  EXPECT_EQ(permutation_space(reg.info(id), policy), 1u);
}

TEST(Layout, PermutationSpaceSaturates) {
  TypeRegistry reg;
  TypeBuilder b(reg, "Wide");
  for (int i = 0; i < 30; ++i) b.field<int>("f" + std::to_string(i));
  const TypeId id = b.build();
  EXPECT_EQ(permutation_space(reg.info(id), LayoutPolicy{}),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(Layout, DistinctAllocationsGetDistinctLayouts) {
  // The core claim: per-allocation diversity for one type. With 6 perms x
  // dummy variation, 64 draws should produce many distinct layouts.
  TypeRegistry reg;
  const TypeId id = make_people(reg);
  Rng rng(123);
  std::set<std::uint64_t> hashes;
  for (int i = 0; i < 64; ++i) {
    hashes.insert(randomize_layout(reg.info(id), LayoutPolicy{}, rng).hash);
  }
  EXPECT_GE(hashes.size(), 20u);
}

TEST(Layout, AllPermutationsReachable) {
  TypeRegistry reg;
  const TypeId id = make_people(reg);
  LayoutPolicy policy;
  policy.min_dummies = 0;
  policy.max_dummies = 0;
  policy.booby_traps = false;
  Rng rng(7);
  std::set<std::vector<std::uint32_t>> orders;
  for (int i = 0; i < 500; ++i) {
    orders.insert(randomize_layout(reg.info(id), policy, rng).offsets);
  }
  EXPECT_EQ(orders.size(), 6u);  // all 3! orderings observed
}

// ---------------------------------------------------------------- interner

TEST(LayoutInterner, DedupSharesIdenticalLayouts) {
  TypeRegistry reg;
  const TypeId id = make_people(reg);
  LayoutPolicy policy;
  policy.permute = false;
  policy.booby_traps = false;
  policy.min_dummies = 0;
  policy.max_dummies = 0;
  Rng rng(1);
  LayoutInterner interner(/*dedup_enabled=*/true);
  bool reused = false;
  const Layout* a = interner.intern(randomize_layout(reg.info(id), policy, rng),
                                    reused);
  EXPECT_FALSE(reused);
  const Layout* b = interner.intern(randomize_layout(reg.info(id), policy, rng),
                                    reused);
  EXPECT_TRUE(reused);
  EXPECT_EQ(a, b);
  EXPECT_EQ(interner.live_layouts(), 1u);
  interner.release(a);
  EXPECT_EQ(interner.live_layouts(), 1u);  // still referenced by b
  interner.release(b);
  EXPECT_EQ(interner.live_layouts(), 0u);
}

TEST(LayoutInterner, NoDedupKeepsSeparateRecords) {
  TypeRegistry reg;
  const TypeId id = make_people(reg);
  LayoutPolicy policy;
  policy.permute = false;
  policy.booby_traps = false;
  policy.min_dummies = 0;
  policy.max_dummies = 0;
  Rng rng(1);
  LayoutInterner interner(/*dedup_enabled=*/false);
  bool reused = false;
  const Layout* a = interner.intern(randomize_layout(reg.info(id), policy, rng),
                                    reused);
  const Layout* b = interner.intern(randomize_layout(reg.info(id), policy, rng),
                                    reused);
  EXPECT_FALSE(reused);
  EXPECT_NE(a, b);
  interner.release(a);
  interner.release(b);
}

// ----------------------------------------------------------- metadata table

TEST(MetadataTable, InsertFindRemove) {
  MetadataTable table(16);
  std::vector<std::uint64_t> storage(100);
  for (std::size_t i = 0; i < storage.size(); ++i) {
    { ObjectRecord rec{}; rec.base = &storage[i]; rec.object_id = i; table.insert(rec); }
  }
  EXPECT_EQ(table.size(), 100u);
  for (std::size_t i = 0; i < storage.size(); ++i) {
    const ObjectRecord* rec = table.find(&storage[i]);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->object_id, i);
  }
  // Remove every other entry; the rest must stay findable (backward-shift
  // deletion correctness).
  for (std::size_t i = 0; i < storage.size(); i += 2) {
    EXPECT_TRUE(table.remove(&storage[i]));
  }
  EXPECT_EQ(table.size(), 50u);
  for (std::size_t i = 0; i < storage.size(); ++i) {
    const ObjectRecord* rec = table.find(&storage[i]);
    if (i % 2 == 0) {
      EXPECT_EQ(rec, nullptr);
    } else {
      ASSERT_NE(rec, nullptr);
      EXPECT_EQ(rec->object_id, i);
    }
  }
}

TEST(MetadataTable, RemoveAbsentReturnsFalse) {
  MetadataTable table;
  int x = 0;
  EXPECT_FALSE(table.remove(&x));
}

TEST(MetadataTable, GrowsUnderLoad) {
  MetadataTable table(16);
  std::vector<std::uint64_t> storage(5000);
  for (std::size_t i = 0; i < storage.size(); ++i) {
    { ObjectRecord rec{}; rec.base = &storage[i]; rec.object_id = i; table.insert(rec); }
  }
  for (std::size_t i = 0; i < storage.size(); ++i) {
    ASSERT_NE(table.find(&storage[i]), nullptr);
  }
}

TEST(MetadataTable, ChurnStressKeepsConsistency) {
  // Randomized insert/remove churn cross-checked against a std::map.
  MetadataTable table(16);
  std::map<void*, std::uint64_t> model;
  std::vector<std::uint64_t> storage(512);
  Rng rng(31);
  std::uint64_t next_id = 1;
  for (int step = 0; step < 20000; ++step) {
    void* addr = &storage[rng.below(storage.size())];
    if (model.contains(addr)) {
      EXPECT_TRUE(table.remove(addr));
      model.erase(addr);
    } else {
      { ObjectRecord rec{}; rec.base = addr; rec.object_id = next_id; table.insert(rec); }
      model[addr] = next_id;
      ++next_id;
    }
    if (step % 1000 == 0) {
      EXPECT_EQ(table.size(), model.size());
      for (const auto& [a, id] : model) {
        const ObjectRecord* rec = table.find(a);
        ASSERT_NE(rec, nullptr);
        EXPECT_EQ(rec->object_id, id);
      }
    }
  }
}

// ------------------------------------------------------------ offset cache

TEST(OffsetCache, HitAfterStore) {
  OffsetCache cache(8);
  int obj = 0;
  cache.store(&obj, 3, 24);
  std::uint32_t off = 0;
  EXPECT_TRUE(cache.lookup(&obj, 3, off));
  EXPECT_EQ(off, 24u);
  EXPECT_FALSE(cache.lookup(&obj, 4, off));
}

TEST(OffsetCache, InvalidateObjectDropsAllFields) {
  OffsetCache cache(8);
  int obj = 0;
  for (std::uint32_t f = 0; f < 10; ++f) cache.store(&obj, f, f * 8);
  cache.invalidate_object(&obj, 10);
  std::uint32_t off = 0;
  for (std::uint32_t f = 0; f < 10; ++f) {
    EXPECT_FALSE(cache.lookup(&obj, f, off));
  }
}

TEST(OffsetCache, ClearDropsEverything) {
  OffsetCache cache(4);
  int a = 0, b = 0;
  cache.store(&a, 0, 8);
  cache.store(&b, 1, 16);
  cache.clear();
  std::uint32_t off = 0;
  EXPECT_FALSE(cache.lookup(&a, 0, off));
  EXPECT_FALSE(cache.lookup(&b, 1, off));
}

// ---------------------------------------------------------------- runtime

class RuntimeTest : public ::testing::Test {
 protected:
  RuntimeTest() {
    people_ = make_people(reg_);
    RuntimeConfig cfg;
    cfg.seed = 2026;
    cfg.on_violation = ErrorAction::kReport;
    rt_ = std::make_unique<Runtime>(reg_, cfg);
  }

  TypeRegistry reg_;
  TypeId people_;
  std::unique_ptr<Runtime> rt_;
};

TEST_F(RuntimeTest, LoadStoreRoundTrip) {
  void* p = rt_->olr_malloc(people_);
  ASSERT_NE(p, nullptr);
  rt_->store<std::uint64_t>(p, 0, 0xf00dULL);
  rt_->store<int>(p, 1, 44);
  rt_->store<int>(p, 2, 177);
  EXPECT_EQ(rt_->load<std::uint64_t>(p, 0), 0xf00dULL);
  EXPECT_EQ(rt_->load<int>(p, 1), 44);
  EXPECT_EQ(rt_->load<int>(p, 2), 177);
  EXPECT_TRUE(rt_->olr_free(p));
}

TEST_F(RuntimeTest, SameTypeInstancesGetDifferentLayouts) {
  // The titular property: two live objects of one type rarely share the
  // in-object layout.
  std::set<const Layout*> layouts;
  std::vector<void*> objs;
  for (int i = 0; i < 32; ++i) {
    void* p = rt_->olr_malloc(people_);
    objs.push_back(p);
    layouts.insert(rt_->inspect(p)->layout);
  }
  EXPECT_GE(layouts.size(), 8u);
  for (void* p : objs) rt_->olr_free(p);
}

TEST_F(RuntimeTest, UseAfterFreeDetected) {
  void* p = rt_->olr_malloc(people_);
  rt_->olr_free(p);
  EXPECT_EQ(rt_->olr_getptr(p, 1), nullptr);
  EXPECT_EQ(rt_->last_violation(), Violation::kUseAfterFree);
  EXPECT_EQ(rt_->stats().uaf_detected, 1u);
}

TEST_F(RuntimeTest, DoubleFreeDetected) {
  void* p = rt_->olr_malloc(people_);
  EXPECT_TRUE(rt_->olr_free(p));
  EXPECT_FALSE(rt_->olr_free(p));
  EXPECT_EQ(rt_->last_violation(), Violation::kDoubleFree);
}

TEST_F(RuntimeTest, BadFieldIndexDetected) {
  void* p = rt_->olr_malloc(people_);
  EXPECT_EQ(rt_->olr_getptr(p, 17), nullptr);
  EXPECT_EQ(rt_->last_violation(), Violation::kBadField);
  rt_->olr_free(p);
}

TEST_F(RuntimeTest, CacheDoesNotMaskUseAfterFree) {
  void* p = rt_->olr_malloc(people_);
  // Warm the cache.
  EXPECT_NE(rt_->olr_getptr(p, 1), nullptr);
  EXPECT_NE(rt_->olr_getptr(p, 1), nullptr);
  EXPECT_GE(rt_->stats().cache_hits, 1u);
  rt_->olr_free(p);
  EXPECT_EQ(rt_->olr_getptr(p, 1), nullptr);
  EXPECT_EQ(rt_->last_violation(), Violation::kUseAfterFree);
}

TEST_F(RuntimeTest, TrapDamageDetectedOnFreeAndCheck) {
  void* p = rt_->olr_malloc(people_);
  const ObjectRecord* rec = rt_->inspect(p);
  ASSERT_NE(rec, nullptr);
  ASSERT_FALSE(rec->layout->traps.empty());
  // Simulate a linear overwrite clobbering the first trap region.
  const TrapRegion& trap = rec->layout->traps.front();
  std::memset(static_cast<unsigned char*>(p) + trap.offset, 0x41, trap.size);
  EXPECT_FALSE(rt_->check_traps(p));
  EXPECT_EQ(rt_->last_violation(), Violation::kTrapDamaged);
  rt_->clear_violation();
  EXPECT_TRUE(rt_->olr_free(p));  // frees, but records the damage
  EXPECT_EQ(rt_->last_violation(), Violation::kTrapDamaged);
  EXPECT_GE(rt_->stats().traps_triggered, 2u);
}

TEST_F(RuntimeTest, TrapsIntactForNormalUse) {
  void* p = rt_->olr_malloc(people_);
  rt_->store<std::uint64_t>(p, 0, ~0ULL);
  rt_->store<int>(p, 1, -1);
  rt_->store<int>(p, 2, -1);
  EXPECT_TRUE(rt_->check_traps(p));
  rt_->olr_free(p);
  EXPECT_EQ(rt_->stats().traps_triggered, 0u);
}

TEST_F(RuntimeTest, CloneCopiesValuesWithFreshLayout) {
  void* a = rt_->olr_malloc(people_);
  rt_->store<std::uint64_t>(a, 0, 0x1122334455667788ULL);
  rt_->store<int>(a, 1, 7);
  rt_->store<int>(a, 2, 9);
  void* b = rt_->olr_clone(a);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(rt_->load<std::uint64_t>(b, 0), 0x1122334455667788ULL);
  EXPECT_EQ(rt_->load<int>(b, 1), 7);
  EXPECT_EQ(rt_->load<int>(b, 2), 9);
  EXPECT_EQ(rt_->stats().memcpys, 1u);
  rt_->olr_free(a);
  rt_->olr_free(b);
}

TEST_F(RuntimeTest, MemcpyBetweenTrackedObjects) {
  void* a = rt_->olr_malloc(people_);
  void* b = rt_->olr_malloc(people_);
  rt_->store<int>(a, 2, 1234);
  EXPECT_TRUE(rt_->olr_memcpy(b, a));
  EXPECT_EQ(rt_->load<int>(b, 2), 1234);
  rt_->olr_free(a);
  rt_->olr_free(b);
}

TEST_F(RuntimeTest, MemcpyTypeMismatchRejected) {
  const TypeId other = TypeBuilder(reg_, "Other").field<int>("x").build();
  void* a = rt_->olr_malloc(people_);
  void* b = rt_->olr_malloc(other);
  EXPECT_FALSE(rt_->olr_memcpy(b, a));
  EXPECT_EQ(rt_->last_violation(), Violation::kBadField);
  rt_->olr_free(a);
  rt_->olr_free(b);
}

TEST_F(RuntimeTest, StatsCountSites) {
  void* a = rt_->olr_malloc(people_);
  void* b = rt_->olr_clone(a);
  rt_->load<int>(a, 1);
  rt_->load<int>(a, 1);
  rt_->olr_free(a);
  rt_->olr_free(b);
  const RuntimeStats& s = rt_->stats();
  EXPECT_EQ(s.allocations, 1u);  // clone counts as memcpy, not allocation
  EXPECT_EQ(s.memcpys, 1u);
  EXPECT_EQ(s.frees, 2u);
  EXPECT_GE(s.member_accesses, 2u);
  EXPECT_GE(s.cache_hits, 1u);
  EXPECT_GT(s.bytes_allocated, s.bytes_requested);
}

TEST_F(RuntimeTest, FreeAllReleasesEverything) {
  for (int i = 0; i < 10; ++i) rt_->olr_malloc(people_);
  EXPECT_EQ(rt_->live_objects(), 10u);
  rt_->free_all();
  EXPECT_EQ(rt_->live_objects(), 0u);
  EXPECT_EQ(rt_->live_layouts(), 0u);
}

TEST(RuntimeConfigured, CacheDisabledStillCorrect) {
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  RuntimeConfig cfg;
  cfg.enable_cache = false;
  Runtime rt(reg, cfg);
  void* p = rt.olr_malloc(people);
  rt.store<int>(p, 2, 5);
  EXPECT_EQ(rt.load<int>(p, 2), 5);
  EXPECT_EQ(rt.stats().cache_hits, 0u);
  rt.olr_free(p);
}

TEST(RuntimeConfigured, DedupDisabledCreatesLayoutPerObject) {
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  RuntimeConfig cfg;
  // dedup_layouts shapes the stored per-allocation pool; the stateless
  // schedule reuses its fixed layout set by design, so pin the backend.
  cfg.backend = BackendConfig::stored();
  cfg.dedup_layouts = false;
  Runtime rt(reg, cfg);
  std::vector<void*> objs;
  for (int i = 0; i < 20; ++i) objs.push_back(rt.olr_malloc(people));
  EXPECT_EQ(rt.stats().layouts_created, 20u);
  EXPECT_EQ(rt.stats().layouts_deduped, 0u);
  for (void* p : objs) rt.olr_free(p);
}

TEST(RuntimeConfigured, DedupKicksInForNarrowPolicy) {
  TypeRegistry reg;
  const TypeId id = TypeBuilder(reg, "Two")
                        .field<std::uint64_t>("a")
                        .field<std::uint64_t>("b")
                        .build();
  RuntimeConfig cfg;
  cfg.policy.min_dummies = 0;
  cfg.policy.max_dummies = 0;
  cfg.policy.booby_traps = false;
  Runtime rt(reg, cfg);
  // Only 2 layouts possible -> heavy dedup among 50 allocations.
  std::vector<void*> objs;
  for (int i = 0; i < 50; ++i) objs.push_back(rt.olr_malloc(id));
  EXPECT_LE(rt.stats().layouts_created, 2u);
  EXPECT_GE(rt.stats().layouts_deduped, 48u);
  EXPECT_LE(rt.live_layouts(), 2u);
  for (void* p : objs) rt.olr_free(p);
}

TEST(RuntimeConfigured, NoRerandomizeCloneSharesLayout) {
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  RuntimeConfig cfg;
  cfg.rerandomize_on_copy = false;
  // Layout sharing is a stored-backend notion: a derived clone's layout is
  // a function of its own address, so only stored records can alias one.
  cfg.backend = BackendConfig::stored();
  Runtime rt(reg, cfg);
  void* a = rt.olr_malloc(people);
  rt.store<int>(a, 1, 21);
  void* b = rt.olr_clone(a);
  EXPECT_EQ(rt.inspect(a)->layout, rt.inspect(b)->layout);
  EXPECT_EQ(rt.load<int>(b, 1), 21);
  rt.olr_free(a);
  rt.olr_free(b);
}

TEST(RuntimeConfigured, CustomAllocatorHooksUsed) {
  struct Counter {
    std::size_t allocs = 0;
    std::size_t frees = 0;
  } counter;
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  RuntimeConfig cfg;
  cfg.alloc_fn = [](std::size_t size, void* ctx) {
    ++static_cast<Counter*>(ctx)->allocs;
    return ::operator new(size);
  };
  cfg.free_fn = [](void* p, std::size_t, void* ctx) {
    ++static_cast<Counter*>(ctx)->frees;
    ::operator delete(p);
  };
  cfg.alloc_ctx = &counter;
  Runtime rt(reg, cfg);
  void* p = rt.olr_malloc(people);
  rt.olr_free(p);
  EXPECT_EQ(counter.allocs, 1u);
  EXPECT_EQ(counter.frees, 1u);
}

// Property sweep: load/store round trips hold for every policy variation.
class RuntimePolicyProperty
    : public ::testing::TestWithParam<std::tuple<bool, bool, bool, int>> {};

TEST_P(RuntimePolicyProperty, RoundTripUnderAnyPolicy) {
  const auto [cache, dedup, traps, dummies] = GetParam();
  TypeRegistry reg;
  const TypeId id = TypeBuilder(reg, "Rec")
                        .ptr("next")
                        .field<double>("weight")
                        .field<std::uint16_t>("tag")
                        .field<std::uint8_t>("flag")
                        .bytes("name", 24)
                        .build();
  RuntimeConfig cfg;
  cfg.enable_cache = cache;
  cfg.dedup_layouts = dedup;
  cfg.policy.booby_traps = traps;
  cfg.policy.min_dummies = 0;
  cfg.policy.max_dummies = static_cast<std::uint32_t>(dummies);
  cfg.seed = 555;
  Runtime rt(reg, cfg);

  Rng data(99);
  std::vector<void*> objs;
  std::vector<std::tuple<std::uint64_t, double, std::uint16_t, std::uint8_t>>
      expect;
  for (int i = 0; i < 100; ++i) {
    void* p = rt.olr_malloc(id);
    const std::uint64_t next = data.next();
    const double weight = data.uniform();
    const auto tag = static_cast<std::uint16_t>(data.next());
    const auto flag = static_cast<std::uint8_t>(data.next());
    rt.store(p, 0, next);
    rt.store(p, 1, weight);
    rt.store(p, 2, tag);
    rt.store(p, 3, flag);
    objs.push_back(p);
    expect.emplace_back(next, weight, tag, flag);
  }
  for (std::size_t i = 0; i < objs.size(); ++i) {
    const auto& [next, weight, tag, flag] = expect[i];
    EXPECT_EQ(rt.load<std::uint64_t>(objs[i], 0), next);
    EXPECT_EQ(rt.load<double>(objs[i], 1), weight);
    EXPECT_EQ(rt.load<std::uint16_t>(objs[i], 2), tag);
    EXPECT_EQ(rt.load<std::uint8_t>(objs[i], 3), flag);
    EXPECT_TRUE(rt.check_traps(objs[i]));
  }
  for (void* p : objs) EXPECT_TRUE(rt.olr_free(p));
  EXPECT_EQ(rt.stats().traps_triggered, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, RuntimePolicyProperty,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(), ::testing::Bool(),
                       ::testing::Values(0, 3)),
    [](const auto& pi) {
      return std::string("cache") + (std::get<0>(pi.param) ? "1" : "0") +
             "_dedup" + (std::get<1>(pi.param) ? "1" : "0") + "_traps" +
             (std::get<2>(pi.param) ? "1" : "0") + "_dum" +
             std::to_string(std::get<3>(pi.param));
    });

// ------------------------------------------------------------------ spaces

template <class MakeSpace>
void exercise_space(MakeSpace make) {
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  auto space_holder = make(reg);
  auto& space = *space_holder.space;

  void* p = space.alloc(people);
  space.template store<int>(p, people, 2, 17);
  EXPECT_EQ((space.template load<int>(p, people, 2)), 17);
  void* q = space.clone_object(p, people);
  EXPECT_EQ((space.template load<int>(q, people, 2)), 17);
  space.template store<int>(q, people, 2, 18);
  space.copy_object(p, q, people);
  EXPECT_EQ((space.template load<int>(p, people, 2)), 18);
  space.free_object(p, people);
  space.free_object(q, people);
}

TEST(Spaces, DirectSpaceSemantics) {
  struct Holder {
    std::unique_ptr<DirectSpace> space;
  };
  exercise_space([](TypeRegistry& reg) {
    return Holder{std::make_unique<DirectSpace>(reg)};
  });
}

TEST(Spaces, PolarSpaceSemantics) {
  struct Holder {
    std::unique_ptr<Runtime> rt;
    std::unique_ptr<PolarSpace> space;
  };
  exercise_space([](TypeRegistry& reg) {
    Holder h;
    h.rt = std::make_unique<Runtime>(reg, RuntimeConfig{});
    h.space = std::make_unique<PolarSpace>(*h.rt);
    return h;
  });
}

}  // namespace
}  // namespace polar
