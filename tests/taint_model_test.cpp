// Model-based testing of the DFSan-style label algebra and shadow memory:
// random sequences of label creation/union and shadow writes/copies are
// cross-checked against trivial reference models (std::set of base labels
// per label; a plain byte->set map for shadow).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "support/rng.h"
#include "taint/domain.h"

namespace polar {
namespace {

class LabelModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LabelModel, UnionAlgebraMatchesSetSemantics) {
  LabelTable table;
  Rng rng(GetParam());
  std::vector<Label> labels{kNoLabel};
  std::map<Label, std::set<Label>> bases;  // label -> base closure
  bases[kNoLabel] = {};

  for (int step = 0; step < 3000; ++step) {
    if (labels.size() < 4 || rng.chance(0.15)) {
      const Label fresh = table.fresh("b" + std::to_string(labels.size()));
      bases[fresh] = {fresh};
      labels.push_back(fresh);
      continue;
    }
    const Label a = labels[rng.below(labels.size())];
    const Label b = labels[rng.below(labels.size())];
    const Label u = table.unite(a, b);
    std::set<Label> expect = bases[a];
    expect.insert(bases[b].begin(), bases[b].end());
    if (bases.contains(u)) {
      ASSERT_EQ(bases[u], expect) << "union closure mismatch";
    } else {
      bases[u] = expect;
      labels.push_back(u);
    }
    // Spot-check includes() against the model.
    for (int probe = 0; probe < 3; ++probe) {
      const Label base = labels[rng.below(labels.size())];
      if (bases[base].size() == 1) {  // base labels only
        EXPECT_EQ(table.includes(u, base), expect.contains(base));
      }
    }
    // bases_of must equal the closure exactly.
    const auto flat = table.bases_of(u);
    ASSERT_EQ(std::set<Label>(flat.begin(), flat.end()), expect);
  }
}

TEST_P(LabelModel, ShadowMemoryMatchesByteMap) {
  TaintDomain domain;
  Rng rng(GetParam() ^ 0x511ad0);
  std::vector<std::uint8_t> arena(512);
  std::map<std::size_t, Label> model;  // offset -> label (absent = clean)

  std::vector<Label> labels;
  for (int i = 0; i < 6; ++i) {
    labels.push_back(domain.labels().fresh("src" + std::to_string(i)));
  }

  for (int step = 0; step < 4000; ++step) {
    const std::uint64_t op = rng.below(10);
    const std::size_t at = rng.below(arena.size());
    const std::size_t n =
        1 + rng.below(std::min<std::size_t>(32, arena.size() - at));
    if (op < 4) {  // set
      const Label l = labels[rng.below(labels.size())];
      domain.shadow().set(&arena[at], n, l);
      for (std::size_t i = 0; i < n; ++i) model[at + i] = l;
    } else if (op < 6) {  // clear
      domain.shadow().clear(&arena[at], n);
      for (std::size_t i = 0; i < n; ++i) model.erase(at + i);
    } else if (op < 8) {  // copy (possibly overlapping)
      const std::size_t to =
          rng.below(arena.size() - n + 1);
      domain.shadow().copy(&arena[to], &arena[at], n);
      std::vector<Label> snapshot(n, kNoLabel);
      for (std::size_t i = 0; i < n; ++i) {
        const auto it = model.find(at + i);
        if (it != model.end()) snapshot[i] = it->second;
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (snapshot[i] == kNoLabel) {
          model.erase(to + i);
        } else {
          model[to + i] = snapshot[i];
        }
      }
    } else {  // verify a random window byte-by-byte
      for (std::size_t i = 0; i < n; ++i) {
        const auto it = model.find(at + i);
        const Label want = it == model.end() ? kNoLabel : it->second;
        ASSERT_EQ(domain.shadow().get(&arena[at + i]), want)
            << "offset " << at + i;
      }
    }
  }
  // Global invariant: tainted byte count matches the model (only bytes
  // within our arena were ever labeled).
  EXPECT_EQ(domain.shadow().tainted_bytes(), model.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LabelModel,
                         ::testing::Values(1u, 7u, 42u, 1234u));

}  // namespace
}  // namespace polar
