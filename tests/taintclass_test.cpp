#include <gtest/gtest.h>

#include <vector>

#include "fuzz/fuzzer.h"
#include "taintclass/monitor.h"
#include "taintclass/taint_space.h"

namespace polar {
namespace {

struct Fixture {
  TypeRegistry reg;
  TypeId bmp_header;
  TypeId pixel_row;
  TypeId ui_widget;  // never touched by input
  TaintDomain domain;
  TaintClassMonitor monitor{reg};

  Fixture() {
    bmp_header = TypeBuilder(reg, "bmp_header")
                     .field<std::uint32_t>("size")
                     .field<std::uint32_t>("width")
                     .field<std::uint32_t>("height")
                     .ptr("pixels")
                     .build();
    pixel_row = TypeBuilder(reg, "pixel_row")
                    .field<std::uint32_t>("len")
                    .bytes("data", 64)
                    .build();
    ui_widget = TypeBuilder(reg, "ui_widget")
                    .fn_ptr("on_click")
                    .field<int>("x")
                    .field<int>("y")
                    .build();
  }
};

TEST(TaintClass, ContentTaintDetected) {
  Fixture fx;
  TaintScope scope(fx.domain);
  TaintClassSpace space(fx.reg, fx.domain, fx.monitor);

  std::uint8_t file[12] = {64, 0, 0, 0, 8, 0, 0, 0, 4, 0, 0, 0};
  fx.domain.taint_input(file, sizeof(file), "bmp file");

  void* hdr = space.alloc(fx.bmp_header);
  const auto size = load_tainted<std::uint32_t>(fx.domain, &file[0]);
  const auto width = load_tainted<std::uint32_t>(fx.domain, &file[4]);
  space.store_t(hdr, fx.bmp_header, 0, size);
  space.store_t(hdr, fx.bmp_header, 1, width);

  void* widget = space.alloc(fx.ui_widget);
  space.store(widget, fx.ui_widget, 1, 100);  // constant, untainted

  EXPECT_TRUE(fx.monitor.is_tainted(fx.bmp_header));
  EXPECT_FALSE(fx.monitor.is_tainted(fx.ui_widget));
  EXPECT_EQ(fx.monitor.tainted_type_count(), 1u);

  const auto reports = fx.monitor.report();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].type_name, "bmp_header");
  EXPECT_TRUE(reports[0].content_tainted);
  ASSERT_EQ(reports[0].tainted_fields.size(), 2u);

  space.free_object(hdr, fx.bmp_header);
  space.free_object(widget, fx.ui_widget);
}

TEST(TaintClass, DerivedValuesStayTainted) {
  // width*height -> allocation size: the propagation chain of Fig. 5.
  Fixture fx;
  TaintScope scope(fx.domain);
  TaintClassSpace space(fx.reg, fx.domain, fx.monitor);

  std::uint8_t file[8] = {8, 0, 0, 0, 4, 0, 0, 0};
  fx.domain.taint_input(file, sizeof(file), "bmp");
  const auto width = load_tainted<std::uint32_t>(fx.domain, &file[0]);
  const auto height = load_tainted<std::uint32_t>(fx.domain, &file[4]);
  const auto npixels = width * height;
  EXPECT_TRUE(npixels.tainted());

  // Allocation count decided by tainted data -> alloc_tainted.
  void* row = space.alloc(fx.pixel_row, npixels.label());
  space.store_t(row, fx.pixel_row, 0, npixels);
  EXPECT_TRUE(fx.monitor.is_tainted(fx.pixel_row));
  const auto reports = fx.monitor.report();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].alloc_tainted);
  EXPECT_TRUE(reports[0].content_tainted);
  space.free_object(row, fx.pixel_row);
}

TEST(TaintClass, DeallocUnderTaintedControl) {
  Fixture fx;
  TaintScope scope(fx.domain);
  TaintClassSpace space(fx.reg, fx.domain, fx.monitor);
  std::uint8_t file[4] = {1, 0, 0, 0};
  fx.domain.taint_input(file, 4, "cmd");
  const auto cmd = load_tainted<std::uint32_t>(fx.domain, &file[0]);

  void* w = space.alloc(fx.ui_widget);  // untainted alloc
  if (cmd.value() == 1) {
    space.free_object(w, fx.ui_widget, cmd.label());  // input decided this
  }
  EXPECT_TRUE(fx.monitor.is_tainted(fx.ui_widget));
  const auto reports = fx.monitor.report();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].dealloc_tainted);
  EXPECT_FALSE(reports[0].content_tainted);
}

TEST(TaintClass, CopyPropagatesIntoDestinationType) {
  Fixture fx;
  TaintScope scope(fx.domain);
  TaintClassSpace space(fx.reg, fx.domain, fx.monitor);
  std::uint8_t file[4] = {9, 0, 0, 0};
  fx.domain.taint_input(file, 4, "f");
  void* a = space.alloc(fx.bmp_header);
  space.store_t(a, fx.bmp_header, 2,
                load_tainted<std::uint32_t>(fx.domain, &file[0]));
  fx.monitor.reset();  // forget the original store; copy must re-detect

  void* b = space.clone_object(a, fx.bmp_header);
  EXPECT_TRUE(fx.monitor.is_tainted(fx.bmp_header));
  EXPECT_EQ(space.load<std::uint32_t>(b, fx.bmp_header, 2), 9u);
  space.free_object(a, fx.bmp_header);
  space.free_object(b, fx.bmp_header);
}

TEST(TaintClass, UntaintedStoreClearsStaleShadow) {
  Fixture fx;
  TaintScope scope(fx.domain);
  TaintClassSpace space(fx.reg, fx.domain, fx.monitor);
  std::uint8_t file[4] = {5, 0, 0, 0};
  fx.domain.taint_input(file, 4, "f");
  void* a = space.alloc(fx.bmp_header);
  space.store_t(a, fx.bmp_header, 0,
                load_tainted<std::uint32_t>(fx.domain, &file[0]));
  // Program overwrites the field with a constant: taint must not linger.
  space.store<std::uint32_t>(a, fx.bmp_header, 0, 0);
  EXPECT_FALSE(space.load_t<std::uint32_t>(a, fx.bmp_header, 0).tainted());
  space.free_object(a, fx.bmp_header);
}

TEST(TaintClass, FreeClearsShadowForAddressReuse) {
  Fixture fx;
  TaintScope scope(fx.domain);
  TaintClassSpace space(fx.reg, fx.domain, fx.monitor);
  std::uint8_t file[4] = {5, 0, 0, 0};
  fx.domain.taint_input(file, 4, "f");
  void* a = space.alloc(fx.bmp_header);
  space.store_t(a, fx.bmp_header, 1,
                load_tainted<std::uint32_t>(fx.domain, &file[0]));
  const auto addr = reinterpret_cast<std::uintptr_t>(a);
  space.free_object(a, fx.bmp_header);
  // Whatever reuses this address must start shadow-clean. (The shadow map
  // is keyed by address value; no object is dereferenced here.)
  EXPECT_EQ(fx.domain.shadow().read_union(reinterpret_cast<const void*>(addr),
                                          8, fx.domain.labels()),
            kNoLabel);
}

TEST(TaintClass, StoreBytesReportsBufferTaint) {
  Fixture fx;
  TaintScope scope(fx.domain);
  TaintClassSpace space(fx.reg, fx.domain, fx.monitor);
  std::uint8_t file[16] = {};
  fx.domain.taint_input(file, 16, "f");
  void* row = space.alloc(fx.pixel_row);
  space.store_bytes(row, fx.pixel_row, 1, 0, file, 16);
  const auto reports = fx.monitor.report();
  ASSERT_EQ(reports.size(), 1u);
  ASSERT_EQ(reports[0].tainted_fields.size(), 1u);
  EXPECT_EQ(reports[0].tainted_fields[0].name, "data");
  space.free_object(row, fx.pixel_row);
}

TEST(TaintClass, RandomizationListOrderedByEvidence) {
  Fixture fx;
  TaintScope scope(fx.domain);
  TaintClassSpace space(fx.reg, fx.domain, fx.monitor);
  std::uint8_t file[8] = {};
  fx.domain.taint_input(file, 8, "f");
  void* hdr = space.alloc(fx.bmp_header);
  void* row = space.alloc(fx.pixel_row);
  const auto v = load_tainted<std::uint32_t>(fx.domain, &file[0]);
  for (int i = 0; i < 5; ++i) space.store_t(row, fx.pixel_row, 0, v);
  space.store_t(hdr, fx.bmp_header, 0, v);
  const auto list = fx.monitor.randomization_list();
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0], "pixel_row");  // more events first
  EXPECT_EQ(list[1], "bmp_header");
  space.free_object(hdr, fx.bmp_header);
  space.free_object(row, fx.pixel_row);
}

// End-to-end: fuzzing raises taint coverage on a branchy parser — the
// §IV-B-2 claim that coverage guidance discovers more tainted objects than
// a single input.
TEST(TaintClass, FuzzingDiscoversMoreTaintedTypes) {
  Fixture fx;
  TaintClassSpace space(fx.reg, fx.domain, fx.monitor);

  // Parser: only input starting with 'R' builds a pixel_row; only 'H'
  // builds a bmp_header.
  auto parse = [&](std::span<const std::uint8_t> in) {
    POLAR_COV_SITE();
    if (in.size() < 5) return;
    TaintScope scope(fx.domain);
    fx.domain.reset_shadow();
    std::vector<std::uint8_t> buf(in.begin(), in.end());
    fx.domain.taint_input(buf.data(), buf.size(), "fuzz input");
    const auto tag = load_tainted<std::uint8_t>(fx.domain, &buf[0]);
    if (tag.value() == 'R') {
      POLAR_COV_SITE();
      void* row = space.alloc(fx.pixel_row);
      space.store_t(row, fx.pixel_row, 0,
                    load_tainted<std::uint32_t>(fx.domain, &buf[1]));
      space.free_object(row, fx.pixel_row);
    } else if (tag.value() == 'H') {
      POLAR_COV_SITE();
      void* hdr = space.alloc(fx.bmp_header);
      space.store_t(hdr, fx.bmp_header, 0,
                    load_tainted<std::uint32_t>(fx.domain, &buf[1]));
      space.free_object(hdr, fx.bmp_header);
    }
  };

  // Single fixed input: sees at most one type.
  const std::vector<std::uint8_t> seed{'x', 1, 2, 3, 4};
  parse(seed);
  const std::size_t without_fuzzing = fx.monitor.tainted_type_count();

  Fuzzer fuzzer(parse, Fuzzer::Options{.seed = 99, .max_input_size = 16});
  fuzzer.add_seed(seed);
  fuzzer.run(20000);
  EXPECT_GT(fx.monitor.tainted_type_count(), without_fuzzing);
  EXPECT_EQ(fx.monitor.tainted_type_count(), 2u);
}

}  // namespace
}  // namespace polar
