// The fault-injection harness's own contract: fault-free control runs are
// perfectly clean, every injected fault is detected as exactly its
// expected class on every workload under every non-abort policy, the
// runs are deterministic, and detection never costs the workload its
// correct output.
#include <gtest/gtest.h>

#include "faultinject/fault.h"

namespace polar::faultinject {
namespace {

constexpr WorkloadKind kAllWorkloads[] = {
    WorkloadKind::kMinipng, WorkloadKind::kMinijpg, WorkloadKind::kMjs,
    WorkloadKind::kSpec};

TEST(FaultNames, EveryKindAndWorkloadIsNamed) {
  for (std::size_t i = 0; i < kFaultKindCount; ++i) {
    EXPECT_STRNE(to_string(static_cast<FaultKind>(i)), "?");
  }
  for (std::size_t i = 0; i < kWorkloadKindCount; ++i) {
    EXPECT_STRNE(to_string(static_cast<WorkloadKind>(i)), "?");
  }
}

TEST(FaultGroundTruth, EveryInjectedKindMapsToARealViolation) {
  EXPECT_EQ(expected_violation(FaultKind::kNone), Violation::kNone);
  for (std::size_t i = 1; i < kFaultKindCount; ++i) {
    EXPECT_NE(expected_violation(static_cast<FaultKind>(i)), Violation::kNone);
  }
}

TEST(FaultHarness, FaultFreeControlRunsAreClean) {
  HarnessConfig cfg;
  for (const WorkloadKind w : kAllWorkloads) {
    const FaultOutcome out = run_one(w, FaultPlan{}, cfg);
    EXPECT_FALSE(out.injected) << to_string(w);
    EXPECT_TRUE(out.clean()) << to_string(w);
    EXPECT_EQ(out.leaked_objects, 0u) << to_string(w);
    EXPECT_EQ(out.stats.allocations, out.stats.frees) << to_string(w);
  }
}

TEST(FaultHarness, MatrixPassesUnderReportPolicy) {
  const HarnessConfig cfg;  // default: report-and-refuse everything
  const auto rows = run_matrix(cfg);
  ASSERT_EQ(rows.size(), kWorkloadKindCount * kFaultKindCount);
  for (const FaultOutcome& row : rows) {
    EXPECT_TRUE(row.passed())
        << to_string(row.workload) << " / " << to_string(row.plan.kind)
        << ": injected=" << row.injected << " ok=" << row.workload_ok
        << " expected=" << row.expected_reports
        << " unexpected=" << row.unexpected_reports;
  }
  EXPECT_TRUE(matrix_passes(rows));
}

TEST(FaultHarness, MatrixPassesUnderQuarantinePolicyWithHeapBacking) {
  HarnessConfig cfg;
  cfg.policy.set(Violation::kTrapDamaged, ViolationAction::kQuarantine);
  cfg.use_heap = true;
  cfg.heap_quarantine_bytes = 1024;
  const auto rows = run_matrix(cfg);
  EXPECT_TRUE(matrix_passes(rows));
  // The quarantine action actually parked the trap-damaged blocks.
  for (const FaultOutcome& row : rows) {
    if (row.plan.kind == FaultKind::kTrapSmash ||
        row.plan.kind == FaultKind::kLinearOverflow) {
      EXPECT_EQ(row.quarantined_blocks, 1u) << to_string(row.workload);
      EXPECT_EQ(row.stats.quarantined_objects, 1u) << to_string(row.workload);
    } else {
      EXPECT_EQ(row.quarantined_blocks, 0u)
          << to_string(row.workload) << "/" << to_string(row.plan.kind);
    }
  }
}

TEST(FaultHarness, ChecksumAblationSkipsMetadataFlipRowsOnly) {
  HarnessConfig cfg;
  cfg.backend.options.checksum = false;
  const auto rows = run_matrix(cfg);
  for (const FaultOutcome& row : rows) {
    if (row.plan.kind == FaultKind::kMetadataFlip) {
      // The documented blind spot: never injected, reported as a skip,
      // and the fault-free run must be collateral-free.
      EXPECT_TRUE(row.skipped) << to_string(row.workload);
      EXPECT_FALSE(row.injected) << to_string(row.workload);
      EXPECT_TRUE(row.clean()) << to_string(row.workload);
    } else {
      EXPECT_FALSE(row.skipped)
          << to_string(row.workload) << "/" << to_string(row.plan.kind);
    }
    EXPECT_TRUE(row.passed())
        << to_string(row.workload) << "/" << to_string(row.plan.kind);
  }
  EXPECT_TRUE(matrix_passes(rows));
}

TEST(FaultCapabilities, TableMatchesBackendSemantics) {
  const BackendConfig stored = BackendConfig::stored();
  const BackendConfig stateless = BackendConfig::stateless();
  const BackendConfig hybrid = BackendConfig::hybrid();
  for (std::size_t i = 0; i < kFaultKindCount; ++i) {
    // The default stored backend (checksums on) detects everything.
    EXPECT_TRUE(fault_detectable(static_cast<FaultKind>(i), stored));
  }
  // Stateless never consults liveness metadata on the access path, and no
  // derived backend carries record checksums.
  EXPECT_FALSE(fault_detectable(FaultKind::kUafRead, stateless));
  EXPECT_FALSE(fault_detectable(FaultKind::kUafWrite, stateless));
  EXPECT_FALSE(fault_detectable(FaultKind::kMetadataFlip, stateless));
  EXPECT_FALSE(fault_detectable(FaultKind::kMetadataFlip, hybrid));
  // Hybrid's seqlock gate restores stale-handle detection.
  EXPECT_TRUE(fault_detectable(FaultKind::kUafRead, hybrid));
  EXPECT_TRUE(fault_detectable(FaultKind::kUafWrite, hybrid));
  // Lifecycle detectors are backend-independent.
  for (const BackendConfig* b : {&stateless, &hybrid}) {
    EXPECT_TRUE(fault_detectable(FaultKind::kTrapSmash, *b));
    EXPECT_TRUE(fault_detectable(FaultKind::kLinearOverflow, *b));
    EXPECT_TRUE(fault_detectable(FaultKind::kDoubleFree, *b));
    EXPECT_TRUE(fault_detectable(FaultKind::kAllocFail, *b));
  }
}

TEST(FaultHarness, StatelessBackendSkipsUndetectableRowsAndPassesTheRest) {
  HarnessConfig cfg;
  cfg.backend = BackendConfig::stateless();
  const auto rows = run_matrix(cfg);
  ASSERT_EQ(rows.size(), kWorkloadKindCount * kFaultKindCount);
  for (const FaultOutcome& row : rows) {
    const bool expect_skip = row.plan.kind == FaultKind::kUafRead ||
                             row.plan.kind == FaultKind::kUafWrite ||
                             row.plan.kind == FaultKind::kMetadataFlip;
    EXPECT_EQ(row.skipped, expect_skip)
        << to_string(row.workload) << "/" << to_string(row.plan.kind);
    EXPECT_TRUE(row.passed())
        << to_string(row.workload) << " / " << to_string(row.plan.kind)
        << ": injected=" << row.injected << " skipped=" << row.skipped
        << " ok=" << row.workload_ok
        << " expected=" << row.expected_reports
        << " unexpected=" << row.unexpected_reports;
  }
  EXPECT_TRUE(matrix_passes(rows));
}

TEST(FaultHarness, HybridBackendStillDetectsStaleHandles) {
  HarnessConfig cfg;
  cfg.backend = BackendConfig::hybrid();
  FaultPlan plan;
  plan.kind = FaultKind::kUafRead;
  plan.at_alloc = 4;
  const FaultOutcome out = run_one(WorkloadKind::kMinipng, plan, cfg);
  EXPECT_FALSE(out.skipped);
  EXPECT_TRUE(out.injected);
  EXPECT_TRUE(out.passed())
      << "expected=" << out.expected_reports
      << " unexpected=" << out.unexpected_reports;
}

TEST(FaultHarness, RunsAreDeterministicPerSeed) {
  HarnessConfig cfg;
  FaultPlan plan;
  plan.kind = FaultKind::kUafWrite;
  plan.at_alloc = 4;
  plan.seed = 77;
  const FaultOutcome a = run_one(WorkloadKind::kMinipng, plan, cfg);
  const FaultOutcome b = run_one(WorkloadKind::kMinipng, plan, cfg);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.expected_reports, b.expected_reports);
  EXPECT_EQ(a.stats.allocations, b.stats.allocations);
  EXPECT_EQ(a.stats.layouts_created, b.stats.layouts_created);
}

TEST(FaultHarness, LateTriggerNeverFiresAndStaysClean) {
  HarnessConfig cfg;
  FaultPlan plan;
  plan.kind = FaultKind::kDoubleFree;
  plan.at_alloc = 1u << 30;  // far past any workload's allocation count
  const FaultOutcome out = run_one(WorkloadKind::kMinijpg, plan, cfg);
  EXPECT_FALSE(out.injected);
  EXPECT_TRUE(out.workload_ok);
  EXPECT_EQ(out.expected_reports + out.unexpected_reports, 0u);
}

}  // namespace
}  // namespace polar::faultinject
