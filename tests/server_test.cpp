// Tests for the KV/HTTP server workload: deterministic request/arrival
// generation, the Server<S> engine's cache/session/connection churn,
// open-loop load-generator accounting, latency bookkeeping, cross-backend
// response parity, and TaintClass discovery of the server's object graph
// (DESIGN.md §16).
#include <gtest/gtest.h>

#include <vector>

#include "core/runtime.h"
#include "core/session.h"
#include "core/space.h"
#include "taintclass/monitor.h"
#include "taintclass/taint_space.h"
#include "workloads/server/loadgen.h"
#include "workloads/server/request_gen.h"
#include "workloads/server/server.h"
#include "workloads/server/types.h"

namespace {

using namespace polar;
using namespace polar::server;

// --- request generator -------------------------------------------------------

TEST(RequestGen, DeterministicInSeed) {
  WorkloadConfig cfg;
  cfg.requests = 500;
  const RequestWorkload a = build_workload(cfg);
  const RequestWorkload b = build_workload(cfg);
  ASSERT_EQ(a.count(), 500u);
  ASSERT_EQ(a.count(), b.count());
  ASSERT_EQ(a.total_bytes(), b.total_bytes());
  for (std::uint64_t i = 0; i < a.count(); ++i) {
    const auto ra = a.request(i);
    const auto rb = b.request(i);
    ASSERT_EQ(ra.size(), rb.size());
    ASSERT_TRUE(std::equal(ra.begin(), ra.end(), rb.begin())) << "request " << i;
  }
}

TEST(RequestGen, SeedChangesStream) {
  WorkloadConfig cfg;
  cfg.requests = 200;
  const RequestWorkload a = build_workload(cfg);
  cfg.seed ^= 1;
  const RequestWorkload b = build_workload(cfg);
  bool any_diff = a.total_bytes() != b.total_bytes();
  for (std::uint64_t i = 0; !any_diff && i < a.count(); ++i) {
    const auto ra = a.request(i);
    const auto rb = b.request(i);
    any_diff = ra.size() != rb.size() ||
               !std::equal(ra.begin(), ra.end(), rb.begin());
  }
  EXPECT_TRUE(any_diff);
}

TEST(RequestGen, WireFormatParses) {
  WorkloadConfig cfg;
  cfg.requests = 300;
  const RequestWorkload wl = build_workload(cfg);
  for (std::uint64_t i = 0; i < wl.count(); ++i) {
    const auto req = wl.request(i);
    ASSERT_GE(req.size(), 24u) << "request " << i << " lacks its header";
    EXPECT_LT(req[0], kMethodCount) << "bad method in request " << i;
    EXPECT_LE(req[1], cfg.max_headers);
  }
}

// --- arrival schedule --------------------------------------------------------

TEST(ArrivalSchedule, FixedRateIsExactSpacing) {
  const auto s = build_arrival_schedule(7, 100, 1e6, /*poisson=*/false);
  ASSERT_EQ(s.size(), 100u);
  EXPECT_EQ(s[0], 0u);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(s[i], 1000u * i);  // 1e6 rps = 1000 ns apart
  }
}

TEST(ArrivalSchedule, PoissonDeterministicAndMonotone) {
  const auto a = build_arrival_schedule(42, 1000, 5e5, /*poisson=*/true);
  const auto b = build_arrival_schedule(42, 1000, 5e5, /*poisson=*/true);
  EXPECT_EQ(a, b);
  const auto c = build_arrival_schedule(43, 1000, 5e5, /*poisson=*/true);
  EXPECT_NE(a, c);
  for (std::size_t i = 1; i < a.size(); ++i) {
    ASSERT_GE(a[i], a[i - 1]) << "schedule must be nondecreasing";
  }
  // Mean gap should be within 20% of 1/rate over 1000 draws.
  const double mean = static_cast<double>(a.back()) / (a.size() - 1);
  EXPECT_GT(mean, 2000.0 * 0.8);
  EXPECT_LT(mean, 2000.0 * 1.2);
}

TEST(ArrivalSchedule, ZeroRateMeansImmediateArrivals) {
  const auto s = build_arrival_schedule(1, 10, 0.0, true);
  for (const auto v : s) EXPECT_EQ(v, 0u);
}

// --- server engine -----------------------------------------------------------

RequestWorkload small_workload(std::uint64_t n = 2000) {
  WorkloadConfig cfg;
  cfg.requests = n;
  return build_workload(cfg);
}

TEST(Server, ClosedLoopServesEverything) {
  TypeRegistry reg;
  const ServerTypes t = register_types(reg);
  const RequestWorkload wl = small_workload();
  DirectSpace space(reg);
  Server<DirectSpace> server(space, t);
  const LoadGenReport r = run_load(server, wl, LoadGenConfig{});
  EXPECT_EQ(r.offered, wl.count());
  EXPECT_EQ(r.served, wl.count());
  EXPECT_EQ(r.dropped, 0u);
  EXPECT_EQ(r.latency_ns.count, r.served);
  EXPECT_EQ(r.response_bytes, wl.count() * kResponseBytes);
  EXPECT_TRUE(r.exact_percentiles);
  const ServerStats& st = server.stats();
  EXPECT_EQ(st.requests, wl.count());
  EXPECT_EQ(st.responses, wl.count());
  EXPECT_EQ(st.parse_errors, 0u);
  EXPECT_GT(st.cache_hits, 0u);
  EXPECT_GT(st.cache_inserts, 0u);
  EXPECT_GT(st.sessions_created, 0u);
  EXPECT_GT(st.conns_reused, 0u);
  EXPECT_GT(st.headers_parsed, 0u);
}

TEST(Server, LruEvictionBoundsCache) {
  TypeRegistry reg;
  const ServerTypes t = register_types(reg);
  WorkloadConfig wcfg;
  wcfg.requests = 3000;
  wcfg.put_pm = 900;  // PUT-heavy: force inserts past capacity
  wcfg.get_pm = 50;
  wcfg.del_pm = 0;
  const RequestWorkload wl = build_workload(wcfg);
  DirectSpace space(reg);
  ServerConfig scfg;
  scfg.cache_capacity = 64;
  Server<DirectSpace> server(space, t, scfg);
  std::vector<std::uint8_t> out;
  for (std::uint64_t i = 0; i < wl.count(); ++i) server.serve(wl.request(i), out);
  EXPECT_LE(server.cache_size(), 64u);
  EXPECT_GT(server.stats().evictions, 0u);
  EXPECT_EQ(server.stats().cache_inserts,
            server.stats().evictions + server.stats().cache_deletes +
                server.cache_size());
}

TEST(Server, SessionExpiryReclaims) {
  TypeRegistry reg;
  const ServerTypes t = register_types(reg);
  WorkloadConfig wcfg;
  wcfg.requests = 4000;
  wcfg.max_sessions = 64;
  const RequestWorkload wl = build_workload(wcfg);
  DirectSpace space(reg);
  ServerConfig scfg;
  scfg.session_ttl = 32;  // well below the token revisit interval
  Server<DirectSpace> server(space, t, scfg);
  std::vector<std::uint8_t> out;
  for (std::uint64_t i = 0; i < wl.count(); ++i) server.serve(wl.request(i), out);
  EXPECT_GT(server.stats().sessions_expired, 0u);
  EXPECT_EQ(server.session_count(), server.stats().sessions_created -
                                        server.stats().sessions_expired);
}

TEST(Server, MalformedRequestGets400) {
  TypeRegistry reg;
  const ServerTypes t = register_types(reg);
  DirectSpace space(reg);
  Server<DirectSpace> server(space, t);
  std::vector<std::uint8_t> out;
  const std::uint8_t short_buf[] = {0, 1, 2};
  EXPECT_EQ(server.serve({short_buf, sizeof(short_buf)}, out), kResponseBytes);
  std::uint8_t bad_method[24] = {};
  bad_method[0] = 200;  // method out of range
  EXPECT_EQ(server.serve({bad_method, sizeof(bad_method)}, out),
            kResponseBytes);
  EXPECT_EQ(server.stats().parse_errors, 2u);
  // Both responses carry status 400 (little-endian u16 at record start).
  ASSERT_EQ(out.size(), 2 * kResponseBytes);
  for (std::size_t rec = 0; rec < 2; ++rec) {
    const std::uint16_t status = static_cast<std::uint16_t>(
        out[rec * kResponseBytes] | (out[rec * kResponseBytes + 1] << 8));
    EXPECT_EQ(status, kStatusBadRequest);
  }
}

TEST(Server, ResetFreesPopulation) {
  TypeRegistry reg;
  const ServerTypes t = register_types(reg);
  const RequestWorkload wl = small_workload(500);
  RuntimeConfig rc;
  rc.on_violation = ErrorAction::kReport;
  Runtime rt(reg, rc);
  {
    SessionSpace space(rt);
    Server<SessionSpace> server(space, t);
    std::vector<std::uint8_t> out;
    for (std::uint64_t i = 0; i < wl.count(); ++i) {
      server.serve(wl.request(i), out);
    }
    EXPECT_GT(rt.stats().allocations, rt.stats().frees)
        << "population must be live mid-run";
    server.reset();
    EXPECT_EQ(server.cache_size(), 0u);
    EXPECT_EQ(server.session_count(), 0u);
  }
  // Everything the server allocated came back (no clones in this engine).
  EXPECT_EQ(rt.stats().allocations, rt.stats().frees);
  EXPECT_EQ(rt.stats().uaf_detected, 0u);
}

// --- open-loop load generator ------------------------------------------------

TEST(LoadGen, OverloadBackpressureAccounting) {
  TypeRegistry reg;
  const ServerTypes t = register_types(reg);
  const RequestWorkload wl = small_workload();
  DirectSpace space(reg);
  Server<DirectSpace> server(space, t);
  LoadGenConfig lg;
  lg.rate_rps = 50e6;  // arrivals far beyond service capacity
  lg.queue_capacity = 4;
  const LoadGenReport r = run_load(server, wl, lg);
  EXPECT_EQ(r.offered, r.served + r.dropped);
  EXPECT_GT(r.dropped, 0u) << "a 4-deep queue at 50M rps must tail-drop";
  EXPECT_GT(r.served, 0u);
  EXPECT_EQ(r.latency_ns.count, r.served);
  // Every served request produced exactly one ring push.
  const auto rs = r.ring.stats();
  EXPECT_EQ(rs.recorded, r.served);
  EXPECT_EQ(rs.recorded, rs.stored + rs.dropped);
  EXPECT_EQ(rs.by_kind[static_cast<std::size_t>(
                observe::TraceEventKind::kServerRequest)],
            r.served);
}

TEST(LoadGen, HistogramAgreesWithRing) {
  TypeRegistry reg;
  const ServerTypes t = register_types(reg);
  const RequestWorkload wl = small_workload(1000);
  DirectSpace space(reg);
  Server<DirectSpace> server(space, t);
  LoadGenConfig lg;
  lg.rate_rps = 2e6;
  lg.ring_capacity = 1024;  // >= served, so the ring kept everything
  const LoadGenReport r = run_load(server, wl, lg);
  std::vector<observe::TraceEvent> events;
  r.ring.snapshot(events);
  ASSERT_EQ(events.size(), r.served);
  // Rebuild the histogram from the ring's durations: same counts.
  observe::Log2Histogram rebuilt;
  for (const auto& e : events) rebuilt.record(e.duration);
  EXPECT_EQ(rebuilt.count, r.latency_ns.count);
  EXPECT_EQ(rebuilt.buckets, r.latency_ns.buckets);
  // Exact percentiles must lie within their histogram bucket bounds.
  EXPECT_TRUE(r.exact_percentiles);
  EXPECT_LE(r.p50_ns, observe::percentile_upper_bound(r.latency_ns, 0.50));
  EXPECT_LE(r.p99_ns, observe::percentile_upper_bound(r.latency_ns, 0.99));
  EXPECT_LE(r.p999_ns, observe::percentile_upper_bound(r.latency_ns, 0.999));
  EXPECT_LE(r.p50_ns, r.p99_ns);
  EXPECT_LE(r.p99_ns, r.p999_ns);
}

TEST(LoadGen, PercentileUpperBoundBuckets) {
  observe::Log2Histogram h;
  EXPECT_EQ(observe::percentile_upper_bound(h, 0.99), 0u);
  for (int i = 0; i < 99; ++i) h.record(3);   // bucket 2: (2, 4]
  h.record(1000);                             // bucket 10: (512, 1024]
  EXPECT_EQ(observe::percentile_upper_bound(h, 0.50), 3u);
  EXPECT_EQ(observe::percentile_upper_bound(h, 0.99), 3u);
  EXPECT_EQ(observe::percentile_upper_bound(h, 1.0), 1023u);
}

// --- cross-backend parity ----------------------------------------------------

std::uint64_t closed_loop_hash(BackendConfig backend, const ServerTypes& t,
                               TypeRegistry& reg, const RequestWorkload& wl,
                               ServerConfig scfg = {}) {
  RuntimeConfig rc;
  rc.on_violation = ErrorAction::kAbort;  // any violation fails the test
  rc.backend = backend;
  Runtime rt(reg, rc);
  SessionSpace space(rt);
  Server<SessionSpace> server(space, t, scfg);
  const LoadGenReport r = run_load(server, wl, LoadGenConfig{});
  EXPECT_EQ(r.served, wl.count());
  return r.response_hash;
}

TEST(Parity, AllBackendsMatchDirect) {
  TypeRegistry reg;
  const ServerTypes t = register_types(reg);
  const RequestWorkload wl = small_workload();
  DirectSpace direct(reg);
  Server<DirectSpace> reference(direct, t);
  const LoadGenReport want = run_load(reference, wl, LoadGenConfig{});
  EXPECT_EQ(closed_loop_hash(BackendConfig::stored(), t, reg, wl),
            want.response_hash);
  EXPECT_EQ(closed_loop_hash(BackendConfig::stateless(), t, reg, wl),
            want.response_hash);
  EXPECT_EQ(closed_loop_hash(BackendConfig::hybrid(), t, reg, wl),
            want.response_hash);
}

TEST(Parity, CursorAndPrefetchAblationsMatch) {
  TypeRegistry reg;
  const ServerTypes t = register_types(reg);
  const RequestWorkload wl = small_workload(1000);
  DirectSpace direct(reg);
  Server<DirectSpace> reference(direct, t);
  const LoadGenReport want = run_load(reference, wl, LoadGenConfig{});
  ServerConfig scalar;
  scalar.use_cursor = false;
  scalar.use_prefetch = false;
  EXPECT_EQ(closed_loop_hash(BackendConfig::stored(), t, reg, wl, scalar),
            want.response_hash);
  ServerConfig cursor_only;
  cursor_only.use_prefetch = false;
  EXPECT_EQ(closed_loop_hash(BackendConfig::stored(), t, reg, wl, cursor_only),
            want.response_hash);
}

// --- TaintClass discovery ----------------------------------------------------

TEST(Taint, DiscoversServerTypesFromRequestBytes) {
  TypeRegistry reg;
  const ServerTypes t = register_types(reg);
  const RequestWorkload wl = small_workload(512);
  TaintDomain domain;
  TaintClassMonitor monitor(reg);
  TaintClassSpace space(reg, domain, monitor);
  for (std::uint64_t i = 0; i < wl.count(); ++i) {
    domain.reset_shadow();
    const auto req = wl.request(i);
    std::vector<std::uint8_t> buf(req.begin(), req.end());
    domain.taint_input(buf.data(), buf.size(), "server-request");
    taint_serve(space, t, buf);
  }
  const auto list = monitor.randomization_list();
  const auto has = [&list](const char* name) {
    for (const auto& n : list) {
      if (n == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("srv.request"));
  EXPECT_TRUE(has("srv.header"));
  EXPECT_TRUE(has("srv.session"));
  EXPECT_TRUE(has("srv.connection"));
  EXPECT_TRUE(has("srv.cache_entry"));
  EXPECT_TRUE(has("srv.response"));
  // The evidence is structural, not just "something was tainted": header
  // allocation counts come from the n_headers byte.
  for (const auto& rep : monitor.report()) {
    if (rep.type_name == "srv.header") {
      EXPECT_TRUE(rep.alloc_tainted);
      EXPECT_TRUE(rep.content_tainted);
    }
    if (rep.type_name == "srv.cache_entry") EXPECT_TRUE(rep.alloc_tainted);
  }
}

TEST(Taint, UntaintedRunDiscoversNothing) {
  TypeRegistry reg;
  const ServerTypes t = register_types(reg);
  const RequestWorkload wl = small_workload(64);
  TaintDomain domain;
  TaintClassMonitor monitor(reg);
  TaintClassSpace space(reg, domain, monitor);
  for (std::uint64_t i = 0; i < wl.count(); ++i) {
    domain.reset_shadow();
    const auto req = wl.request(i);
    std::vector<std::uint8_t> buf(req.begin(), req.end());
    // No taint_input: the same parse over unlabeled bytes.
    taint_serve(space, t, buf);
  }
  EXPECT_EQ(monitor.tainted_type_count(), 0u);
}

}  // namespace
