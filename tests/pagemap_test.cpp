// Tests for the O(1) member-access fast path: the address pagemap, the
// seqlock metadata cells, RuntimeConfig validation, and the batched
// layout-generation pool (DESIGN.md §10).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "alloc/heap.h"
#include "core/pagemap.h"
#include "core/runtime.h"
#include "core/session.h"
#include "core/type_registry.h"

namespace polar {
namespace {

TypeId make_node(TypeRegistry& reg) {
  return TypeBuilder(reg, "Node")
      .fn_ptr("vtable")
      .field<std::uint64_t>("key")
      .ptr("next")
      .field<int>("flags")
      .build();
}

RuntimeConfig reporting_config() {
  RuntimeConfig cfg;
  cfg.on_violation = ErrorAction::kReport;
  // This suite exercises the stored machinery (pagemap, seqlock mirror,
  // layout pool); pin the backend so a POLAR_BACKEND env default cannot
  // reroute it.
  cfg.backend = BackendConfig::stored();
  return cfg;
}

/// Lock-free fast-path configuration with checksums off: the mirror is
/// consulted without the digest verification the default adds.
RuntimeConfig lockfree_config() {
  RuntimeConfig cfg = reporting_config();
  cfg.backend = BackendConfig::stored();
  cfg.backend.options.checksum = false;
  return cfg;
}

// ----------------------------------------------------- pagemap unit tests

TEST(AddressPagemap, PublishLookupUnpublishRoundTrip) {
  AddressPagemap map(16);
  MetaCellArena arena;
  MetaCell* cell = arena.acquire();
  alignas(16) unsigned char block[64];
  map.publish(block, cell);
  EXPECT_EQ(map.lookup(block), cell);
  map.unpublish(block);
  EXPECT_EQ(map.lookup(block), nullptr);
  arena.release(cell);
}

TEST(AddressPagemap, OnlyTheBaseGranuleIsMapped) {
  // A spanning object maps one entry: its base granule. Interior
  // addresses — even inside the object — resolve to nothing, exactly like
  // the hash table keyed by base address that the pagemap replaces.
  AddressPagemap map(16);
  MetaCellArena arena;
  MetaCell* cell = arena.acquire();
  alignas(16) unsigned char block[256];  // spans 16 granules
  map.publish(block, cell);
  EXPECT_EQ(map.lookup(block), cell);
  EXPECT_EQ(map.lookup(block + 16), nullptr);
  EXPECT_EQ(map.lookup(block + 240), nullptr);
  // Addresses within the base granule but past the base also miss only at
  // the cell-identity check (same granule -> same cell); the runtime
  // compares rec.base so an interior hit can never be mistaken for the
  // object.
  EXPECT_EQ(map.lookup(block + 8), cell);
  map.unpublish(block);
  arena.release(cell);
}

TEST(AddressPagemap, NeverMappedAddressLooksUpNull) {
  AddressPagemap map(16);
  int local = 0;
  EXPECT_EQ(map.lookup(&local), nullptr);
  EXPECT_EQ(map.lookup(nullptr), nullptr);
  // Beyond the 48-bit covered range: politely null, never an OOB index.
  EXPECT_EQ(map.lookup(reinterpret_cast<const void*>(~std::uintptr_t{0})),
            nullptr);
}

TEST(AddressPagemap, DistantAddressesCommitSeparateLeaves) {
  AddressPagemap map(16);
  MetaCellArena arena;
  MetaCell* c1 = arena.acquire();
  MetaCell* c2 = arena.acquire();
  alignas(16) static unsigned char near_block[16];
  auto* heap_block = new unsigned char[16];
  map.publish(near_block, c1);
  map.publish(heap_block, c2);
  EXPECT_GE(map.committed_leaves(), 1u);
  EXPECT_EQ(map.lookup(near_block), c1);
  EXPECT_EQ(map.lookup(heap_block), c2);
  map.unpublish(near_block);
  map.unpublish(heap_block);
  delete[] heap_block;
}

TEST(MetaCellArena, RecyclesCellsAndKeepsSequencesMonotonic) {
  MetaCellArena arena;
  MetaCell* a = arena.acquire();
  const std::uint64_t seq_before = a->seq.load();
  ObjectRecord rec{};
  rec.base = &rec;
  rec.object_id = 7;
  a->publish(rec, nullptr, 0);
  a->invalidate();
  const std::uint64_t seq_after = a->seq.load();
  EXPECT_GT(seq_after, seq_before);  // never reset, even across recycling
  arena.release(a);
  MetaCell* b = arena.acquire();
  EXPECT_EQ(a, b);  // LIFO free list hands the cell back
  EXPECT_GE(b->seq.load(), seq_after);
  arena.release(b);
}

TEST(MetaCell, ReaderDiscardsTornSnapshot) {
  MetaCell cell;
  ObjectRecord rec{};
  rec.base = &cell;
  rec.object_id = 42;
  cell.publish(rec, nullptr, 3);
  MetaCell::FastView view;
  const std::uint64_t s1 = cell.read_begin(view);
  ASSERT_EQ(s1 & 1, 0u);
  EXPECT_TRUE(cell.read_validate(s1));
  cell.invalidate();  // writer intervenes after the snapshot
  EXPECT_FALSE(cell.read_validate(s1));
}

// ------------------------------------------------- runtime integration

TEST(PagemapRuntime, GranuleSpanningAllocationAccessesEveryField) {
  // Node's randomized layout always exceeds one 16-byte granule (4 fields
  // + traps), so every allocation spans granules; all fields must resolve.
  TypeRegistry reg;
  const TypeId node = make_node(reg);
  Runtime rt(reg, lockfree_config());
  void* base = rt.olr_malloc(node);
  ASSERT_NE(base, nullptr);
  const ObjectRecord* rec = rt.inspect(base);
  ASSERT_NE(rec, nullptr);
  ASSERT_GT(rec->layout->size, rt.config().pagemap_granule);
  for (std::uint32_t f = 0; f < 4; ++f) {
    void* p = rt.olr_getptr(base, f);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p, static_cast<unsigned char*>(base) + rec->layout->offsets[f]);
  }
  EXPECT_TRUE(rt.olr_free(base));
}

TEST(PagemapRuntime, HugeObjectOverOneMiB) {
  TypeRegistry reg;
  const TypeId big = TypeBuilder(reg, "Big")
                         .ptr("head")
                         .bytes("payload", 2u << 20, 8)  // 2 MiB
                         .field<std::uint64_t>("tail")
                         .build();
  Runtime rt(reg, lockfree_config());
  void* base = rt.olr_malloc(big);
  ASSERT_NE(base, nullptr);
  for (std::uint32_t f = 0; f < 3; ++f) {
    ASSERT_NE(rt.olr_getptr(base, f), nullptr);
  }
  // The payload is writable end to end.
  auto* payload = static_cast<unsigned char*>(rt.olr_getptr(base, 1));
  payload[0] = 0x11;
  payload[(2u << 20) - 1] = 0x22;
  EXPECT_TRUE(rt.olr_free(base));
  EXPECT_EQ(rt.live_objects(), 0u);
}

TEST(PagemapRuntime, AddressReusePublishesTheNewRecord) {
  // Deterministic LIFO heap: free then alloc of the same class returns the
  // same base. The pagemap entry must describe the new tenant, and a stale
  // handle carrying the old allocation id must be refused.
  TypeRegistry reg;
  const TypeId node = make_node(reg);
  SizeClassHeap heap;
  RuntimeConfig cfg = lockfree_config();
  cfg.alloc_fn = SizeClassHeap::alloc_hook;
  cfg.free_fn = SizeClassHeap::free_hook;
  cfg.alloc_ctx = &heap;
  cfg.dedup_layouts = false;  // distinct layouts make the swap observable
  Runtime rt(reg, cfg);

  Session session(rt);
  auto first = session.create(node);
  ASSERT_TRUE(first.ok());
  const ObjRef stale = first.value();
  ASSERT_TRUE(session.destroy(stale).ok());
  auto second = session.create(node);
  ASSERT_TRUE(second.ok());
  const ObjRef fresh = second.value();
  ASSERT_EQ(fresh.base, stale.base);  // LIFO reuse hit the same address
  ASSERT_NE(fresh.id, stale.id);

  // The published record is the new tenant's...
  auto described = rt.describe(fresh);
  ASSERT_TRUE(described.ok());
  EXPECT_EQ(described.value().object_id, fresh.id);
  EXPECT_TRUE(rt.obj_field(fresh, 1).ok());
  // ...and the stale handle is detected, fast path or not.
  auto refused = rt.obj_field(stale, 1);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.error(), Violation::kUseAfterFree);
  ASSERT_TRUE(session.destroy(fresh).ok());
}

TEST(PagemapRuntime, NeverMappedAddressReportsUntracked) {
  TypeRegistry reg;
  make_node(reg);
  Runtime rt(reg, lockfree_config());
  int local = 0;
  auto r = rt.obj_field(ObjRef{&local, 0, TypeId{}}, 0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Violation::kUseAfterFree);
  EXPECT_EQ(rt.last_violation(), Violation::kUseAfterFree);
}

TEST(PagemapRuntime, LockfreeReadsHitTheFastPath) {
  TypeRegistry reg;
  const TypeId node = make_node(reg);
  RuntimeConfig cfg = lockfree_config();
  cfg.enable_cache = false;  // force every access through the fast path
  Runtime rt(reg, cfg);
  void* base = rt.olr_malloc(node);
  ASSERT_NE(base, nullptr);
  const ObjectRecord* rec = rt.inspect(base);
  ASSERT_NE(rec, nullptr);
  const std::vector<std::uint32_t> offsets = rec->layout->offsets;
  for (int i = 0; i < 100; ++i) {
    for (std::uint32_t f = 0; f < 4; ++f) {
      EXPECT_EQ(rt.olr_getptr(base, f),
                static_cast<unsigned char*>(base) + offsets[f]);
    }
  }
  EXPECT_GE(rt.stats().fastpath_hits, 400u);
  EXPECT_TRUE(rt.olr_free(base));
}

TEST(PagemapRuntime, TypedAccessUsesFastPathAndStillChecksTypes) {
  TypeRegistry reg;
  const TypeId node = make_node(reg);
  const TypeId other = TypeBuilder(reg, "Other").field<int>("x").build();
  RuntimeConfig cfg = lockfree_config();
  cfg.enable_cache = false;
  Runtime rt(reg, cfg);
  void* base = rt.olr_malloc(node);
  ASSERT_NE(base, nullptr);
  EXPECT_NE(rt.olr_getptr_typed(base, node, 1), nullptr);
  EXPECT_GE(rt.stats().fastpath_hits, 1u);
  // Type confusion is never serviced by the mirror: it falls back to the
  // locked path, which classifies it.
  EXPECT_EQ(rt.olr_getptr_typed(base, other, 0), nullptr);
  EXPECT_EQ(rt.last_violation(), Violation::kTypeMismatch);
  EXPECT_TRUE(rt.olr_free(base));
}

TEST(PagemapRuntime, ChecksumModeStillUsesTheLockfreePath) {
  // Record verification used to force every read onto the locked path;
  // the digest folded into the seqlock sequence word restored the fast
  // path under checksum mode.
  TypeRegistry reg;
  const TypeId node = make_node(reg);
  RuntimeConfig cfg = reporting_config();
  cfg.backend.options.checksum = true;  // default; stated for emphasis
  cfg.enable_cache = false;
  Runtime rt(reg, cfg);
  void* base = rt.olr_malloc(node);
  for (int i = 0; i < 32; ++i) EXPECT_NE(rt.olr_getptr(base, 1), nullptr);
  EXPECT_GE(rt.stats().fastpath_hits, 32u);
  EXPECT_TRUE(rt.olr_free(base));
}

TEST(PagemapRuntime, MirrorDigestCatchesStrayWriteAndHeals) {
  TypeRegistry reg;
  const TypeId node = make_node(reg);
  RuntimeConfig cfg = reporting_config();
  cfg.enable_cache = false;
  Runtime rt(reg, cfg);
  void* base = rt.olr_malloc(node);
  ASSERT_NE(rt.olr_getptr(base, 1), nullptr);  // fast path established
  // Flip a mirror offset word without moving the sequence counter — the
  // misdirection only the digest can catch.
  ASSERT_TRUE(rt.debug_corrupt_mirror(base, 0x40u));
  EXPECT_EQ(rt.olr_getptr(base, 0), nullptr);
  EXPECT_EQ(rt.last_violation(), Violation::kMetadataDamaged);
  // The record itself was intact, so the mirror was re-published from it:
  // subsequent accesses are clean and lock-free again.
  rt.clear_violation();
  EXPECT_NE(rt.olr_getptr(base, 0), nullptr);
  EXPECT_EQ(rt.last_violation(), Violation::kNone);
  EXPECT_TRUE(rt.olr_free(base));
}

TEST(PagemapRuntime, ChecksumStillCatchesMetadataDamage) {
  TypeRegistry reg;
  const TypeId node = make_node(reg);
  Runtime rt(reg, reporting_config());
  void* base = rt.olr_malloc(node);
  ASSERT_TRUE(rt.debug_corrupt_metadata(base, 0xdeadULL));
  EXPECT_EQ(rt.olr_getptr(base, 1), nullptr);
  EXPECT_EQ(rt.last_violation(), Violation::kMetadataDamaged);
  // The damaged record was evicted: the address is untracked now.
  EXPECT_EQ(rt.inspect(base), nullptr);
  EXPECT_EQ(rt.live_objects(), 0u);
}

TEST(PagemapRuntime, LegacyHashBackendStillWorks) {
  TypeRegistry reg;
  const TypeId node = make_node(reg);
  RuntimeConfig cfg = reporting_config();
  cfg.backend = BackendConfig::stored_hash();
  Runtime rt(reg, cfg);
  void* base = rt.olr_malloc(node);
  ASSERT_NE(base, nullptr);
  EXPECT_EQ(rt.live_objects(), 1u);
  EXPECT_NE(rt.olr_getptr(base, 2), nullptr);
  EXPECT_EQ(rt.stats().fastpath_hits, 0u);
  EXPECT_TRUE(rt.olr_free(base));
  EXPECT_EQ(rt.live_objects(), 0u);
}

TEST(PagemapRuntime, BackendsProduceIdenticalLayoutsForSameSeed) {
  TypeRegistry reg;
  const TypeId node = make_node(reg);
  RuntimeConfig with_map = reporting_config();
  RuntimeConfig without_map = reporting_config();
  without_map.backend = BackendConfig::stored_hash();
  Runtime a(reg, with_map);
  Runtime b(reg, without_map);
  for (int i = 0; i < 16; ++i) {
    void* pa = a.olr_malloc(node);
    void* pb = b.olr_malloc(node);
    const ObjectRecord* ra = a.inspect(pa);
    const ObjectRecord* rb = b.inspect(pb);
    ASSERT_NE(ra, nullptr);
    ASSERT_NE(rb, nullptr);
    EXPECT_EQ(ra->layout->offsets, rb->layout->offsets);
    EXPECT_EQ(ra->layout->size, rb->layout->size);
  }
}

// -------------------------------------------------- config validation

TEST(RuntimeConfigValidate, AcceptsDefaults) {
  EXPECT_TRUE(RuntimeConfig{}.validate().ok());
}

TEST(RuntimeConfigValidate, RejectsNonPowerOfTwoGranule) {
  RuntimeConfig cfg;
  cfg.pagemap_granule = 24;
  const auto r = cfg.validate();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Violation::kBadConfig);
}

TEST(RuntimeConfigValidate, RejectsGranuleOutOfRange) {
  RuntimeConfig small;
  small.pagemap_granule = 4;
  EXPECT_EQ(small.validate().error(), Violation::kBadConfig);
  RuntimeConfig large;
  large.pagemap_granule = 8192;
  EXPECT_EQ(large.validate().error(), Violation::kBadConfig);
}

TEST(RuntimeConfigValidate, RejectsOversizedShardBits) {
  RuntimeConfig cfg;
  cfg.shard_bits = 11;  // 2^11 shards: past the supported range
  EXPECT_EQ(cfg.validate().error(), Violation::kBadConfig);
  cfg.shard_bits = 10;
  EXPECT_TRUE(cfg.validate().ok());
  cfg.shard_bits = 0;  // single global shard remains legal
  EXPECT_TRUE(cfg.validate().ok());
}

TEST(RuntimeConfigValidate, RejectsOversizedCacheBits) {
  RuntimeConfig cfg;
  cfg.cache_bits = 25;
  EXPECT_EQ(cfg.validate().error(), Violation::kBadConfig);
}

TEST(RuntimeConfigValidate, RejectsBadLayoutPoolChunk) {
  RuntimeConfig zero;
  zero.backend.options.layout_pool_chunk = 0;
  EXPECT_EQ(zero.validate().error(), Violation::kBadConfig);
  RuntimeConfig huge;
  huge.backend.options.layout_pool_chunk = 4096;
  EXPECT_EQ(huge.validate().error(), Violation::kBadConfig);
}

TEST(RuntimeConfigValidate, RejectsDegenerateDummyPolicy) {
  RuntimeConfig cfg;
  cfg.policy.max_dummies = 0;
  cfg.policy.min_dummies = 2;
  EXPECT_EQ(cfg.validate().error(), Violation::kBadConfig);
}

TEST(RuntimeConfigDeathTest, ConstructorRefusesInvalidConfig) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  TypeRegistry reg;
  make_node(reg);
  RuntimeConfig cfg;
  cfg.pagemap_granule = 100;  // not a power of two
  EXPECT_DEATH({ Runtime rt(reg, cfg); }, "bad-config");
}

// ------------------------------------------------------ layout pooling

TEST(LayoutPool, SameConfigRuntimesDrawIdenticalSequences) {
  TypeRegistry reg;
  const TypeId node = make_node(reg);
  RuntimeConfig cfg = reporting_config();
  cfg.backend.options.layout_pool_chunk = 8;
  cfg.dedup_layouts = false;
  Runtime a(reg, cfg);
  Runtime b(reg, cfg);
  for (int i = 0; i < 40; ++i) {  // crosses several refill boundaries
    void* pa = a.olr_malloc(node);
    void* pb = b.olr_malloc(node);
    EXPECT_EQ(a.inspect(pa)->layout->offsets, b.inspect(pb)->layout->offsets);
  }
}

TEST(LayoutPool, RefillsAreCountedAndChunked) {
  TypeRegistry reg;
  const TypeId node = make_node(reg);
  RuntimeConfig cfg = reporting_config();
  cfg.backend.options.layout_pool_chunk = 8;
  Runtime rt(reg, cfg);
  std::vector<void*> objs;
  for (int i = 0; i < 17; ++i) objs.push_back(rt.olr_malloc(node));
  // 17 allocations at chunk 8 -> exactly 3 refills (8 + 8 + 8 generated).
  EXPECT_EQ(rt.stats().layout_pool_refills, 3u);
  for (void* p : objs) rt.olr_free(p);
}

TEST(LayoutPool, ChunkOneDisablesPooling) {
  TypeRegistry reg;
  const TypeId node = make_node(reg);
  RuntimeConfig cfg = reporting_config();
  cfg.backend.options.layout_pool_chunk = 1;
  Runtime rt(reg, cfg);
  void* p = rt.olr_malloc(node);
  EXPECT_EQ(rt.stats().layout_pool_refills, 0u);
  rt.olr_free(p);
}

TEST(LayoutPool, PooledLayoutsStillRandomizeAcrossAllocations) {
  // Pooling batches the RNG work; it must not batch the *results* — two
  // consecutive allocations still draw from the per-allocation layout
  // distribution (distinct with overwhelming probability for this type).
  TypeRegistry reg;
  const TypeId node = make_node(reg);
  RuntimeConfig cfg = reporting_config();
  cfg.dedup_layouts = false;
  Runtime rt(reg, cfg);
  std::vector<std::vector<std::uint32_t>> seen;
  for (int i = 0; i < 16; ++i) {
    void* p = rt.olr_malloc(node);
    seen.push_back(rt.inspect(p)->layout->offsets);
  }
  bool any_different = false;
  for (std::size_t i = 1; i < seen.size(); ++i) {
    if (seen[i] != seen[0]) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

}  // namespace
}  // namespace polar
