#include <gtest/gtest.h>

#include <set>

#include "baseline/static_olr.h"

namespace polar {
namespace {

TypeId make_people(TypeRegistry& reg) {
  return TypeBuilder(reg, "People")
      .fn_ptr("vtable")
      .field<int>("age")
      .field<int>("height")
      .build();
}

TEST(StaticOlr, SameSeedSameLayoutAcrossExecutions) {
  // The reproduction problem (§III-B-2): rebuilding the same "binary"
  // yields identical layouts, and so does re-running it.
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  LayoutPolicy policy;
  StaticOlr run1(reg, policy, /*binary_seed=*/77);
  StaticOlr run2(reg, policy, /*binary_seed=*/77);
  EXPECT_EQ(run1.layout_of(people).offsets, run2.layout_of(people).offsets);
  EXPECT_EQ(run1.layout_of(people).size, run2.layout_of(people).size);
}

TEST(StaticOlr, DifferentBinarySeedsDiversify) {
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  LayoutPolicy policy;
  std::set<std::vector<std::uint32_t>> layouts;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    layouts.insert(StaticOlr(reg, policy, seed).layout_of(people).offsets);
  }
  EXPECT_GE(layouts.size(), 4u);
}

TEST(StaticOlr, AllInstancesShareTheBinaryLayout) {
  // The weakness POLaR fixes: every allocation of a type has one layout.
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  StaticOlr olr(reg, LayoutPolicy{}, 5);
  void* a = olr.alloc(people);
  void* b = olr.alloc(people);
  for (std::uint32_t f = 0; f < 3; ++f) {
    const auto off_a = static_cast<unsigned char*>(olr.field_ptr(a, people, f)) -
                       static_cast<unsigned char*>(a);
    const auto off_b = static_cast<unsigned char*>(olr.field_ptr(b, people, f)) -
                       static_cast<unsigned char*>(b);
    EXPECT_EQ(off_a, off_b);
  }
  olr.free_object(a, people);
  olr.free_object(b, people);
}

TEST(StaticOlr, LoadStoreRoundTrip) {
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  StaticOlr olr(reg, LayoutPolicy{}, 9);
  void* p = olr.alloc(people);
  olr.store<int>(p, people, 1, 30);
  olr.store<int>(p, people, 2, 180);
  EXPECT_EQ((olr.load<int>(p, people, 1)), 30);
  EXPECT_EQ((olr.load<int>(p, people, 2)), 180);
  void* q = olr.clone_object(p, people);
  EXPECT_EQ((olr.load<int>(q, people, 2)), 180);
  olr.free_object(p, people);
  olr.free_object(q, people);
}

TEST(StaticOlr, LayoutDiffersFromNaturalUsually) {
  TypeRegistry reg;
  TypeBuilder b(reg, "Wide");
  for (int i = 0; i < 8; ++i) b.field<std::uint64_t>("f" + std::to_string(i));
  const TypeId id = b.build();
  int same = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    StaticOlr olr(reg, LayoutPolicy{}, seed);
    same += (olr.layout_of(id).offsets == reg.info(id).natural_offsets);
  }
  EXPECT_LE(same, 1);
}

TEST(StaticOlr, MultiTypeRegistryEachTypeRandomized) {
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  const TypeId other = TypeBuilder(reg, "Other")
                           .field<int>("a")
                           .field<int>("b")
                           .ptr("c")
                           .build();
  StaticOlr olr(reg, LayoutPolicy{}, 3);
  EXPECT_EQ(olr.layout_of(people).offsets.size(), 3u);
  EXPECT_EQ(olr.layout_of(other).offsets.size(), 3u);
}

}  // namespace
}  // namespace polar
