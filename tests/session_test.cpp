// The redesigned Session/ObjRef/Result surface: error values instead of
// sentinel returns, and handles that stay honest after the address is
// reused. Also proves a whole workload template runs unchanged on top of
// the new API via SessionSpace.
#include <gtest/gtest.h>

#include "core/session.h"
#include "workloads/minipng.h"

namespace polar {
namespace {

RuntimeConfig reporting_config() {
  RuntimeConfig cfg;
  cfg.on_violation = ErrorAction::kReport;
  // This suite documents the checked-handle contract (stale handles are
  // refused on the plain field path), which the stateless backend
  // deliberately waives — pin the backend so a POLAR_BACKEND override
  // can't change what is being asserted.
  cfg.backend = BackendConfig::stored();
  return cfg;
}

class SessionTest : public ::testing::Test {
 protected:
  SessionTest()
      : type_(TypeBuilder(reg_, "Node")
                  .fn_ptr("vtable")
                  .field<std::uint64_t>("value")
                  .ptr("next")
                  .build()),
        rt_(reg_, reporting_config()),
        session_(rt_) {}

  TypeRegistry reg_;
  TypeId type_;
  Runtime rt_;
  Session session_;
};

TEST_F(SessionTest, CreateReadWriteDestroyRoundTrip) {
  const Result<ObjRef> r = session_.create(type_);
  ASSERT_TRUE(r.ok());
  const ObjRef obj = r.value();
  EXPECT_NE(obj.base, nullptr);
  EXPECT_NE(obj.id, 0u);
  EXPECT_EQ(obj.type, type_);

  ASSERT_TRUE(session_.write<std::uint64_t>(obj, 1, 0xfeedULL).ok());
  const Result<std::uint64_t> back = session_.read<std::uint64_t>(obj, 1);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), 0xfeedULL);

  EXPECT_TRUE(session_.destroy(obj).ok());
  EXPECT_EQ(rt_.live_objects(), 0u);
}

TEST_F(SessionTest, ErrorsTravelWithTheResult) {
  const ObjRef obj = session_.create(type_).value();
  ASSERT_TRUE(session_.destroy(obj).ok());

  // The failure reason arrives with the call; no last_violation() polling.
  const Result<void*> p = session_.field(obj, 1);
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.error(), Violation::kUseAfterFree);
  EXPECT_EQ(p.value_or(nullptr), nullptr);

  const Result<void> d = session_.destroy(obj);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.error(), Violation::kDoubleFree);
}

TEST_F(SessionTest, StaleHandleDetectedEvenAfterAddressReuse) {
  // Deterministic-reuse is not guaranteed by operator new, so loop until
  // the allocator hands the same base back (it nearly always recycles
  // immediately for same-size blocks).
  ObjRef stale = session_.create(type_).value();
  ASSERT_TRUE(session_.destroy(stale).ok());

  ObjRef tenant{};
  for (int i = 0; i < 64 && tenant.base != stale.base; ++i) {
    if (tenant.base != nullptr) {
      ASSERT_TRUE(session_.destroy(tenant).ok());
    }
    tenant = session_.create(type_).value();
  }
  if (tenant.base == stale.base) {
    // Same address, different allocation id: the legacy API would happily
    // hand out the NEW tenant's field here. The checked handle refuses.
    EXPECT_NE(tenant.id, stale.id);
    const Result<void*> p = session_.field(stale, 1);
    ASSERT_FALSE(p.ok());
    EXPECT_EQ(p.error(), Violation::kUseAfterFree);
    // The live tenant is untouched and still valid.
    EXPECT_TRUE(session_.field(tenant, 1).ok());
  }
  if (tenant.base != nullptr) {
    ASSERT_TRUE(session_.destroy(tenant).ok());
  }
}

TEST_F(SessionTest, TypedAccessDetectsTypeConfusion) {
  const TypeId other =
      TypeBuilder(reg_, "Other").field<std::uint64_t>("x").build();
  const ObjRef obj = session_.create(type_).value();

  EXPECT_TRUE(session_.field_typed(obj, type_, 1).ok());
  const Result<void*> confused = session_.field_typed(obj, other, 0);
  ASSERT_FALSE(confused.ok());
  EXPECT_EQ(confused.error(), Violation::kTypeMismatch);

  ASSERT_TRUE(session_.destroy(obj).ok());
}

TEST_F(SessionTest, CloneAndCopyPreserveFieldValues) {
  const ObjRef a = session_.create(type_).value();
  ASSERT_TRUE(session_.write<std::uint64_t>(a, 1, 77u).ok());

  const Result<ObjRef> b = session_.clone(a);
  ASSERT_TRUE(b.ok());
  EXPECT_NE(b.value().base, a.base);
  EXPECT_EQ(session_.read<std::uint64_t>(b.value(), 1).value_or(0), 77u);

  const ObjRef c = session_.create(type_).value();
  ASSERT_TRUE(session_.copy(c, a).ok());
  EXPECT_EQ(session_.read<std::uint64_t>(c, 1).value_or(0), 77u);

  for (const ObjRef o : {a, b.value(), c}) {
    ASSERT_TRUE(session_.destroy(o).ok());
  }
}

TEST_F(SessionTest, TrapDamageReportedAsValueAndObjectStillReleased) {
  const ObjRef obj = session_.create(type_).value();
  const ObjectRecord rec = session_.describe(obj).value();
  ASSERT_FALSE(rec.layout->traps.empty());
  std::memset(static_cast<unsigned char*>(obj.base) + rec.layout->traps[0].offset,
              0xcc, 1);

  const Result<void> verdict = session_.verify_traps(obj);
  ASSERT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.error(), Violation::kTrapDamaged);

  const Result<void> freed = session_.destroy(obj);
  ASSERT_FALSE(freed.ok());
  EXPECT_EQ(freed.error(), Violation::kTrapDamaged);
  EXPECT_EQ(rt_.live_objects(), 0u);  // released despite the report
}

TEST_F(SessionTest, DescribeSnapshotsTheRecord) {
  const ObjRef obj = session_.create(type_).value();
  const Result<ObjectRecord> rec = session_.describe(obj);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value().base, obj.base);
  EXPECT_EQ(rec.value().object_id, obj.id);
  EXPECT_EQ(rec.value().type, type_);
  ASSERT_TRUE(session_.destroy(obj).ok());
  EXPECT_EQ(session_.describe(obj).error(), Violation::kUseAfterFree);
}

TEST_F(SessionTest, LegacyOlrSurfaceDelegatesToTheSameEngine) {
  // Mixed use during migration: an object allocated through the legacy
  // call is visible to Session introspection and vice versa.
  void* base = rt_.olr_malloc(type_);
  ASSERT_NE(base, nullptr);
  EXPECT_EQ(rt_.live_objects(), 1u);
  EXPECT_EQ(rt_.stats().allocations, 1u);
  EXPECT_TRUE(rt_.olr_free(base));
  EXPECT_EQ(session_.stats().frees, 1u);
}

// --- a full workload through the redesigned API ----------------------------

class SessionSpaceTest : public ::testing::Test {
 protected:
  SessionSpaceTest() : types_(minipng::register_types(reg_)) {}
  TypeRegistry reg_;
  minipng::PngTypes types_;
};

TEST_F(SessionSpaceTest, MiniPngDecodesIdenticallyToDirect) {
  const auto file = minipng::encode_test_image(64, 24, 9);
  DirectSpace direct(reg_);
  const minipng::DecodeResult a = minipng::decode(direct, types_, file);

  RuntimeConfig cfg;
  cfg.on_violation = ErrorAction::kAbort;
  Runtime rt(reg_, cfg);
  SessionSpace space(rt);
  const minipng::DecodeResult b = minipng::decode(space, types_, file);

  EXPECT_TRUE(a.ok);
  EXPECT_TRUE(b.ok) << b.error;
  EXPECT_EQ(a.pixel_hash, b.pixel_hash);
  EXPECT_EQ(a.width, b.width);
  EXPECT_EQ(a.height, b.height);
  EXPECT_EQ(rt.live_objects(), 0u);
  EXPECT_EQ(rt.stats().traps_triggered, 0u);
}

TEST_F(SessionSpaceTest, MiniPngRejectsMalformedInputsCleanly) {
  RuntimeConfig cfg;
  cfg.on_violation = ErrorAction::kAbort;
  Runtime rt(reg_, cfg);
  SessionSpace space(rt);
  const std::vector<std::vector<std::uint8_t>> bad = {
      {},
      {'m', 'P', 'N', 'G'},
      {'x', 'y', 'z', 'w', 1, 2},
  };
  for (const auto& input : bad) {
    const minipng::DecodeResult r = minipng::decode(space, types_, input);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(rt.live_objects(), 0u);
  }
}

}  // namespace
}  // namespace polar
