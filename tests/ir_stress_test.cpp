// Differential stress-testing of the pass + interpreter: randomly
// generated (but well-formed) object-manipulating programs must behave
// identically uninstrumented and after run_polar_pass, across many seeds.
// This is the IR-level analogue of the paper's §V-A compatibility claim:
// instrumentation must never change program semantics.
#include <gtest/gtest.h>

#include <vector>

#include "ir/builder.h"
#include "ir/interp.h"
#include "ir/polar_pass.h"
#include "ir/verifier.h"
#include "support/rng.h"

namespace polar::ir {
namespace {

struct GenTypes {
  std::vector<TypeId> all;
  std::vector<std::vector<Width>> widths;  // per type, per field
};

GenTypes make_types(TypeRegistry& reg) {
  GenTypes g;
  g.all.push_back(TypeBuilder(reg, "G1")
                      .fn_ptr("vt")
                      .field<std::uint32_t>("a")
                      .field<std::uint32_t>("b")
                      .build());
  g.widths.push_back({Width::kW64, Width::kW32, Width::kW32});
  g.all.push_back(TypeBuilder(reg, "G2")
                      .field<std::uint8_t>("x")
                      .field<std::uint64_t>("y")
                      .field<std::uint16_t>("z")
                      .build());
  g.widths.push_back({Width::kW8, Width::kW64, Width::kW16});
  g.all.push_back(TypeBuilder(reg, "G3")
                      .ptr("p")
                      .field<std::uint64_t>("q")
                      .build());
  g.widths.push_back({Width::kW64, Width::kW64});
  return g;
}

/// Generates a straight-line program over live objects: alloc, store
/// constant, load-and-accumulate, clone, objcopy, free — always legal.
Function generate(const GenTypes& g, Rng& rng, int ops) {
  FunctionBuilder b("gen", 0);
  const Reg acc = b.const64(0);

  struct Live {
    Reg reg;
    std::size_t type_index;
  };
  std::vector<Live> live;

  for (int i = 0; i < ops; ++i) {
    const std::uint64_t op = rng.below(10);
    if (op < 3 || live.empty()) {  // alloc
      const std::size_t ti = rng.below(g.all.size());
      live.push_back({b.alloc(g.all[ti]), ti});
    } else if (op < 6) {  // store constant into random field
      const Live& obj = live[rng.below(live.size())];
      const auto f = static_cast<std::uint32_t>(
          rng.below(g.widths[obj.type_index].size()));
      b.store(b.gep(obj.reg, g.all[obj.type_index], f),
              b.const64(rng.next() & 0xffff),
              g.widths[obj.type_index][f]);
    } else if (op < 8) {  // load-and-accumulate
      const Live& obj = live[rng.below(live.size())];
      const auto f = static_cast<std::uint32_t>(
          rng.below(g.widths[obj.type_index].size()));
      const Reg v = b.load(b.gep(obj.reg, g.all[obj.type_index], f),
                           g.widths[obj.type_index][f]);
      b.move_into(acc, b.bin(Bin::kXor, b.bin(Bin::kMul, acc, b.const64(31)),
                             v));
    } else if (op < 9) {  // clone
      const Live& obj = live[rng.below(live.size())];
      live.push_back({b.clone(obj.reg, g.all[obj.type_index]),
                      obj.type_index});
    } else {  // objcopy between two same-type objects if available
      const Live& src = live[rng.below(live.size())];
      for (const Live& dst : live) {
        if (dst.reg != src.reg && dst.type_index == src.type_index) {
          b.obj_copy(dst.reg, src.reg, g.all[src.type_index]);
          break;
        }
      }
    }
    if (live.size() > 12) {  // free oldest to bound liveness
      b.free_obj(live.front().reg, g.all[live.front().type_index]);
      live.erase(live.begin());
    }
  }
  for (const Live& obj : live) b.free_obj(obj.reg, g.all[obj.type_index]);
  b.ret(acc);
  return std::move(b).build();
}

class IrDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IrDifferential, GeneratedProgramsAgreeAfterInstrumentation) {
  TypeRegistry reg;
  const GenTypes g = make_types(reg);
  Rng rng(GetParam());

  for (int round = 0; round < 20; ++round) {
    Module m;
    m.functions.push_back(generate(g, rng, 120));
    ASSERT_EQ(verify(m, reg), "") << "seed " << GetParam();

    Interpreter direct(m, reg);
    const InterpResult base = direct.run("gen", {});
    ASSERT_EQ(base.status, InterpResult::Status::kOk);
    EXPECT_EQ(direct.live_direct_objects(), 0u);

    Module hardened = m;
    const PassReport report = run_polar_pass(hardened, reg);
    EXPECT_GT(report.total(), 0u);
    ASSERT_EQ(verify(hardened, reg), "");

    Runtime rt(reg, RuntimeConfig{.seed = GetParam() * 97 + round});
    Interpreter polar_interp(hardened, reg, &rt);
    const InterpResult hard = polar_interp.run("gen", {});
    ASSERT_EQ(hard.status, InterpResult::Status::kOk)
        << hard.error << " (" << to_string(hard.violation) << ")";
    EXPECT_EQ(hard.value, base.value) << "seed " << GetParam() << " round "
                                      << round;
    EXPECT_EQ(rt.live_objects(), 0u);
    EXPECT_EQ(rt.stats().traps_triggered, 0u);
    // Same dynamic op counts either way.
    EXPECT_EQ(hard.stats.allocs, base.stats.allocs);
    EXPECT_EQ(hard.stats.frees, base.stats.frees);
    EXPECT_EQ(hard.stats.geps, base.stats.geps);

    // Third leg: the same program with gep coalescing on. kPolarGepMulti
    // must be invisible to the program — same value, same dynamic op
    // counts (the interpreter charges one gep per batched pair).
    Module batched = m;
    const PassReport breport = run_polar_pass(
        batched, reg, PassOptions{.selected = {}, .coalesce_geps = true});
    EXPECT_EQ(breport.total(), report.total());
    ASSERT_EQ(verify(batched, reg), "") << "seed " << GetParam();

    Runtime rt_b(reg, RuntimeConfig{.seed = GetParam() * 97 + round});
    Interpreter batched_interp(batched, reg, &rt_b);
    const InterpResult co = batched_interp.run("gen", {});
    ASSERT_EQ(co.status, InterpResult::Status::kOk)
        << co.error << " (" << to_string(co.violation) << ")";
    EXPECT_EQ(co.value, base.value) << "seed " << GetParam() << " round "
                                    << round;
    EXPECT_EQ(co.stats.allocs, base.stats.allocs);
    EXPECT_EQ(co.stats.frees, base.stats.frees);
    EXPECT_EQ(co.stats.geps, base.stats.geps);
    EXPECT_EQ(rt_b.live_objects(), 0u);
    EXPECT_EQ(rt_b.stats().traps_triggered, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IrDifferential,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

}  // namespace
}  // namespace polar::ir
