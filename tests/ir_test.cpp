#include <gtest/gtest.h>

#include <set>

#include "ir/builder.h"
#include "ir/interp.h"
#include "ir/ir.h"
#include "ir/polar_pass.h"
#include "ir/verifier.h"

namespace polar::ir {
namespace {

TypeId make_people(TypeRegistry& reg) {
  return TypeBuilder(reg, "People")
      .fn_ptr("vtable")
      .field<int>("age")
      .field<int>("height")
      .build();
}

/// sum(n) = 0 + 1 + ... + (n-1), via a loop.
Function build_sum_loop() {
  FunctionBuilder b("sum", 1);
  const Reg n = b.param(0);
  const Reg acc = b.const64(0);
  const Reg i = b.const64(0);
  const std::uint32_t head = b.new_block();
  const std::uint32_t body = b.new_block();
  const std::uint32_t done = b.new_block();
  b.jump(head);
  b.set_block(head);
  const Reg cond = b.bin(Bin::kULt, i, n);
  b.br(cond, body, done);
  b.set_block(body);
  b.move_into(acc, b.add(acc, i));
  b.move_into(i, b.add(i, b.const64(1)));
  b.jump(head);
  b.set_block(done);
  b.ret(acc);
  return std::move(b).build();
}

/// Allocates a People, stores age/height, returns age*1000+height, frees.
Function build_people_roundtrip(TypeId people) {
  FunctionBuilder b("roundtrip", 2);  // (age, height)
  const Reg obj = b.alloc(people);
  b.store(b.gep(obj, people, 1), b.param(0), Width::kW32);
  b.store(b.gep(obj, people, 2), b.param(1), Width::kW32);
  const Reg age = b.load(b.gep(obj, people, 1), Width::kW32);
  const Reg height = b.load(b.gep(obj, people, 2), Width::kW32);
  const Reg result = b.add(b.mul(age, b.const64(1000)), height);
  b.free_obj(obj, people);
  b.ret(result);
  return std::move(b).build();
}

TEST(IrInterp, ArithmeticLoop) {
  Module m;
  m.functions.push_back(build_sum_loop());
  TypeRegistry reg;
  EXPECT_EQ(verify(m, reg), "");
  Interpreter interp(m, reg);
  const InterpResult r = interp.run("sum", {100});
  EXPECT_EQ(r.status, InterpResult::Status::kOk);
  EXPECT_EQ(r.value, 4950u);
}

TEST(IrInterp, FloatOps) {
  FunctionBuilder b("favg", 0);
  const Reg x = b.constf(3.0);
  const Reg y = b.constf(5.0);
  const Reg sum = b.bin(Bin::kFAdd, x, y);
  const Reg avg = b.bin(Bin::kFDiv, sum, b.constf(2.0));
  b.ret(avg);
  Module m;
  m.functions.push_back(std::move(b).build());
  TypeRegistry reg;
  Interpreter interp(m, reg);
  const InterpResult r = interp.run("favg", {});
  EXPECT_EQ(r.status, InterpResult::Status::kOk);
  EXPECT_DOUBLE_EQ(as_f64(r.value), 4.0);
}

TEST(IrInterp, ObjectRoundTripUninstrumented) {
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  Module m;
  m.functions.push_back(build_people_roundtrip(people));
  ASSERT_EQ(verify(m, reg), "");
  Interpreter interp(m, reg);
  const InterpResult r = interp.run("roundtrip", {44, 177});
  EXPECT_EQ(r.status, InterpResult::Status::kOk);
  EXPECT_EQ(r.value, 44177u);
  EXPECT_EQ(interp.live_direct_objects(), 0u);
  EXPECT_EQ(r.stats.allocs, 1u);
  EXPECT_EQ(r.stats.geps, 4u);
  EXPECT_EQ(r.stats.frees, 1u);
}

TEST(IrInterp, ObjectRoundTripInstrumented) {
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  Module m;
  m.functions.push_back(build_people_roundtrip(people));
  const PassReport report = run_polar_pass(m, reg);
  EXPECT_EQ(report.allocs_rewritten, 1u);
  EXPECT_EQ(report.geps_rewritten, 4u);
  EXPECT_EQ(report.frees_rewritten, 1u);
  ASSERT_EQ(verify(m, reg), "");

  Runtime rt(reg, RuntimeConfig{});
  Interpreter interp(m, reg, &rt);
  const InterpResult r = interp.run("roundtrip", {44, 177});
  EXPECT_EQ(r.status, InterpResult::Status::kOk);
  EXPECT_EQ(r.value, 44177u);  // same observable behaviour
  EXPECT_EQ(rt.stats().allocations, 1u);
  // Four scalar lookups — or one batched consultation when the suite runs
  // in the POLAR_IR_COALESCE configuration (CI's coalesce-on variant).
  EXPECT_EQ(rt.stats().member_accesses, coalesce_env_default() ? 1u : 4u);
  EXPECT_EQ(rt.stats().frees, 1u);
  EXPECT_EQ(rt.live_objects(), 0u);
}

TEST(IrInterp, InstrumentedCatchesUseAfterFree) {
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  FunctionBuilder b("uaf", 0);
  const Reg obj = b.alloc(people);
  b.free_obj(obj, people);
  const Reg addr = b.gep(obj, people, 1);  // dangling access
  b.ret(b.load(addr, Width::kW32));
  Module m;
  m.functions.push_back(std::move(b).build());
  run_polar_pass(m, reg);

  Runtime rt(reg, RuntimeConfig{});
  Interpreter interp(m, reg, &rt);
  const InterpResult r = interp.run("uaf", {});
  EXPECT_EQ(r.status, InterpResult::Status::kViolation);
  EXPECT_EQ(r.violation, Violation::kUseAfterFree);
}

TEST(IrInterp, UninstrumentedDoubleFreeIsAnError) {
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  FunctionBuilder b("df", 0);
  const Reg obj = b.alloc(people);
  b.free_obj(obj, people);
  b.free_obj(obj, people);
  b.ret();
  Module m;
  m.functions.push_back(std::move(b).build());
  Interpreter interp(m, reg);
  EXPECT_EQ(interp.run("df", {}).status, InterpResult::Status::kError);
}

TEST(IrInterp, InstrumentedDoubleFreeIsAViolation) {
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  FunctionBuilder b("df", 0);
  const Reg obj = b.alloc(people);
  b.free_obj(obj, people);
  b.free_obj(obj, people);
  b.ret();
  Module m;
  m.functions.push_back(std::move(b).build());
  run_polar_pass(m, reg);
  Runtime rt(reg, RuntimeConfig{});
  Interpreter interp(m, reg, &rt);
  const InterpResult r = interp.run("df", {});
  EXPECT_EQ(r.status, InterpResult::Status::kViolation);
  EXPECT_EQ(r.violation, Violation::kDoubleFree);
}

TEST(IrInterp, CloneAndObjCopy) {
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  FunctionBuilder b("copies", 0);
  const Reg a = b.alloc(people);
  b.store(b.gep(a, people, 2), b.const64(55), Width::kW32);
  const Reg c = b.clone(a, people);
  const Reg d = b.alloc(people);
  b.obj_copy(d, c, people);
  const Reg out = b.load(b.gep(d, people, 2), Width::kW32);
  b.free_obj(a, people);
  b.free_obj(c, people);
  b.free_obj(d, people);
  b.ret(out);
  Module m;
  m.functions.push_back(std::move(b).build());
  ASSERT_EQ(verify(m, reg), "");

  // Uninstrumented.
  {
    Interpreter interp(m, reg);
    const InterpResult r = interp.run("copies", {});
    EXPECT_EQ(r.status, InterpResult::Status::kOk);
    EXPECT_EQ(r.value, 55u);
  }
  // Instrumented: same observable value, distinct layouts along the way.
  {
    Module pm = m;
    run_polar_pass(pm, reg);
    Runtime rt(reg, RuntimeConfig{});
    Interpreter interp(pm, reg, &rt);
    const InterpResult r = interp.run("copies", {});
    EXPECT_EQ(r.status, InterpResult::Status::kOk);
    EXPECT_EQ(r.value, 55u);
    EXPECT_EQ(rt.stats().memcpys, 2u);  // clone + objcopy
  }
}

TEST(IrInterp, CallsAndRecursion) {
  TypeRegistry reg;
  // fib(n) = n < 2 ? n : fib(n-1) + fib(n-2)
  FunctionBuilder b("fib", 1);
  const Reg n = b.param(0);
  const std::uint32_t base = b.new_block();
  const std::uint32_t rec = b.new_block();
  b.br(b.bin(Bin::kULt, n, b.const64(2)), base, rec);
  b.set_block(base);
  b.ret(n);
  b.set_block(rec);
  const Reg f1 = b.call(0, {b.sub(n, b.const64(1))});
  const Reg f2 = b.call(0, {b.sub(n, b.const64(2))});
  b.ret(b.add(f1, f2));
  Module m;
  m.functions.push_back(std::move(b).build());
  ASSERT_EQ(verify(m, reg), "");
  Interpreter interp(m, reg);
  const InterpResult r = interp.run("fib", {15});
  EXPECT_EQ(r.status, InterpResult::Status::kOk);
  EXPECT_EQ(r.value, 610u);
  EXPECT_GT(r.stats.calls, 100u);
}

TEST(IrInterp, FuelBoundsExecution) {
  FunctionBuilder b("spin", 0);
  const std::uint32_t loop = b.new_block();
  b.jump(loop);
  b.set_block(loop);
  b.jump(loop);
  Module m;
  m.functions.push_back(std::move(b).build());
  TypeRegistry reg;
  Interpreter interp(m, reg);
  const InterpResult r = interp.run("spin", {}, /*fuel=*/1000);
  EXPECT_EQ(r.status, InterpResult::Status::kFuelExhausted);
  EXPECT_EQ(r.stats.instrs, 1000u);
}

TEST(IrInterp, InfiniteRecursionOverflowsCleanly) {
  FunctionBuilder b("rec", 0);
  b.ret(b.call(0, {}));
  Module m;
  m.functions.push_back(std::move(b).build());
  TypeRegistry reg;
  Interpreter interp(m, reg);
  const InterpResult r = interp.run("rec", {});
  EXPECT_EQ(r.status, InterpResult::Status::kError);
}

TEST(IrInterp, DivisionByZeroFaults) {
  FunctionBuilder b("div", 2);
  b.ret(b.bin(Bin::kUDiv, b.param(0), b.param(1)));
  Module m;
  m.functions.push_back(std::move(b).build());
  TypeRegistry reg;
  Interpreter interp(m, reg);
  EXPECT_EQ(interp.run("div", {10, 0}).status, InterpResult::Status::kError);
  EXPECT_EQ(interp.run("div", {10, 2}).value, 5u);
}

TEST(IrInterp, MissingFunctionAndArityErrors) {
  Module m;
  m.functions.push_back(build_sum_loop());
  TypeRegistry reg;
  Interpreter interp(m, reg);
  EXPECT_EQ(interp.run("nope", {}).status, InterpResult::Status::kError);
  EXPECT_EQ(interp.run("sum", {}).status, InterpResult::Status::kError);
}

// ------------------------------------------------------------------- pass

TEST(PolarPass, SelectiveInstrumentationSkipsUnselectedTypes) {
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  const TypeId other =
      TypeBuilder(reg, "Other").field<std::uint64_t>("x").build();

  FunctionBuilder b("two_types", 0);
  const Reg p = b.alloc(people);
  const Reg o = b.alloc(other);
  b.store(b.gep(p, people, 1), b.const64(1), Width::kW32);
  b.store(b.gep(o, other, 0), b.const64(2));
  b.free_obj(p, people);
  b.free_obj(o, other);
  b.ret();
  Module m;
  m.functions.push_back(std::move(b).build());

  const PassReport report = run_polar_pass(m, reg, {"People"});
  EXPECT_EQ(report.allocs_rewritten, 1u);
  EXPECT_EQ(report.geps_rewritten, 1u);
  EXPECT_EQ(report.frees_rewritten, 1u);
  EXPECT_EQ(report.sites_skipped, 3u);
  ASSERT_EQ(verify(m, reg), "");

  // Mixed module still runs: People via the runtime, Other directly.
  Runtime rt(reg, RuntimeConfig{});
  Interpreter interp(m, reg, &rt);
  EXPECT_EQ(interp.run("two_types", {}).status, InterpResult::Status::kOk);
  EXPECT_EQ(rt.stats().allocations, 1u);
  EXPECT_EQ(interp.live_direct_objects(), 0u);
}

TEST(PolarPass, IdempotentOnInstrumentedModule) {
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  Module m;
  m.functions.push_back(build_people_roundtrip(people));
  run_polar_pass(m, reg);
  const PassReport second = run_polar_pass(m, reg);
  EXPECT_EQ(second.total(), 0u);
}

// ---------------------------------------------------------- gep coalescing

TypeId make_quad(TypeRegistry& reg) {
  return TypeBuilder(reg, "Quad")
      .field<std::uint64_t>("a")
      .field<std::uint64_t>("b")
      .field<std::uint64_t>("c")
      .field<std::uint64_t>("d")
      .build();
}

/// alloc Quad, resolve all four fields back-to-back, store/load, free.
Function build_gep_burst(TypeId quad) {
  FunctionBuilder b("burst", 0);
  const Reg obj = b.alloc(quad);
  const Reg p0 = b.gep(obj, quad, 0);
  const Reg p1 = b.gep(obj, quad, 1);
  const Reg p2 = b.gep(obj, quad, 2);
  const Reg p3 = b.gep(obj, quad, 3);
  b.store(p0, b.const64(10));
  b.store(p1, b.const64(20));
  b.store(p2, b.const64(30));
  b.store(p3, b.const64(40));
  const Reg sum = b.add(b.add(b.load(p0), b.load(p1)),
                        b.add(b.load(p2), b.load(p3)));
  b.free_obj(obj, quad);
  b.ret(sum);
  return std::move(b).build();
}

std::size_t count_ops(const Module& m, Op op) {
  std::size_t n = 0;
  for (const Function& fn : m.functions) {
    for (const Block& blk : fn.blocks) {
      for (const Instr& instr : blk.instrs) n += instr.op == op;
    }
  }
  return n;
}

TEST(PolarPass, CoalescesSameBaseGepRunIntoOneBatch) {
  TypeRegistry reg;
  const TypeId quad = make_quad(reg);
  Module m;
  m.functions.push_back(build_gep_burst(quad));
  Module scalar = m;

  const PassReport sr = run_polar_pass(
      scalar, reg, PassOptions{.selected = {}, .coalesce_geps = false});
  EXPECT_EQ(sr.geps_rewritten, 4u);
  EXPECT_EQ(sr.geps_coalesced, 0u);
  EXPECT_EQ(sr.gep_batches, 0u);

  const PassReport cr = run_polar_pass(
      m, reg, PassOptions{.selected = {}, .coalesce_geps = true});
  EXPECT_EQ(cr.geps_rewritten, 4u);
  EXPECT_EQ(cr.geps_coalesced, 4u);
  EXPECT_EQ(cr.gep_batches, 1u);
  EXPECT_EQ(count_ops(m, Op::kPolarGep), 0u);
  EXPECT_EQ(count_ops(m, Op::kPolarGepMulti), 1u);
  ASSERT_EQ(verify(m, reg), "");
  EXPECT_NE(to_string(m.functions[0]).find("polar.gep.multi"),
            std::string::npos);

  // Bit-identical execution: same value, same interp op counts, same
  // runtime-side member accesses as the scalar instrumentation.
  Runtime rt_scalar(reg, RuntimeConfig{.seed = 7});
  Interpreter si(scalar, reg, &rt_scalar);
  const InterpResult sres = si.run("burst", {});
  ASSERT_EQ(sres.status, InterpResult::Status::kOk);
  EXPECT_EQ(sres.value, 100u);

  Runtime rt_multi(reg, RuntimeConfig{.seed = 7});
  Interpreter mi(m, reg, &rt_multi);
  const InterpResult mres = mi.run("burst", {});
  ASSERT_EQ(mres.status, InterpResult::Status::kOk);
  EXPECT_EQ(mres.value, sres.value);
  EXPECT_EQ(mres.stats.geps, sres.stats.geps);
  // The batch is the whole point: fewer runtime-side metadata
  // consultations than four scalar lookups.
  EXPECT_LT(rt_multi.stats().member_accesses,
            rt_scalar.stats().member_accesses);
  EXPECT_EQ(rt_multi.live_objects(), 0u);
}

TEST(PolarPass, CoalescingStopsAtBarriersAndLeavesShortRunsScalar) {
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  FunctionBuilder b("mix", 0);
  const Reg obj = b.alloc(people);
  const Reg other = b.alloc(people);
  const Reg p1 = b.gep(obj, people, 1);
  const Reg p2 = b.gep(obj, people, 2);
  b.store(p1, b.const64(1), Width::kW32);
  b.store(p2, b.const64(2), Width::kW32);
  b.free_obj(other, people);               // barrier: could recycle memory
  const Reg q1 = b.gep(obj, people, 1);    // lone gep: below min_run
  const Reg v = b.load(q1, Width::kW32);
  b.free_obj(obj, people);
  b.ret(v);
  Module m;
  m.functions.push_back(std::move(b).build());

  const PassReport report = run_polar_pass(
      m, reg, PassOptions{.selected = {}, .coalesce_geps = true});
  EXPECT_EQ(report.geps_rewritten, 3u);
  EXPECT_EQ(report.geps_coalesced, 2u);
  EXPECT_EQ(report.gep_batches, 1u);
  EXPECT_EQ(count_ops(m, Op::kPolarGep), 1u);
  EXPECT_EQ(count_ops(m, Op::kPolarGepMulti), 1u);
  ASSERT_EQ(verify(m, reg), "");

  Runtime rt(reg, RuntimeConfig{});
  Interpreter interp(m, reg, &rt);
  const InterpResult r = interp.run("mix", {});
  ASSERT_EQ(r.status, InterpResult::Status::kOk);
  EXPECT_EQ(r.value, 1u);
  EXPECT_EQ(rt.live_objects(), 0u);
}

TEST(PolarPass, MinRunBelowThresholdStaysScalar) {
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  FunctionBuilder b("pair", 0);
  const Reg obj = b.alloc(people);
  const Reg p1 = b.gep(obj, people, 1);   // run of exactly 2
  const Reg p2 = b.gep(obj, people, 2);
  b.store(p1, b.const64(3), Width::kW32);
  b.store(p2, b.const64(4), Width::kW32);
  const Reg v = b.add(b.load(p1, Width::kW32), b.load(p2, Width::kW32));
  b.free_obj(obj, people);
  b.ret(v);
  Module m;
  m.functions.push_back(std::move(b).build());

  const PassReport report = run_polar_pass(
      m, reg,
      PassOptions{.selected = {}, .coalesce_geps = true, .min_run = 3});
  EXPECT_EQ(report.geps_rewritten, 2u);
  EXPECT_EQ(report.geps_coalesced, 0u);
  EXPECT_EQ(report.gep_batches, 0u);
  EXPECT_EQ(count_ops(m, Op::kPolarGepMulti), 0u);
  EXPECT_EQ(count_ops(m, Op::kPolarGep), 2u);
  ASSERT_EQ(verify(m, reg), "");

  Runtime rt(reg, RuntimeConfig{});
  Interpreter interp(m, reg, &rt);
  const InterpResult r = interp.run("pair", {});
  ASSERT_EQ(r.status, InterpResult::Status::kOk);
  EXPECT_EQ(r.value, 7u);
  EXPECT_EQ(rt.live_objects(), 0u);
}

TEST(PolarPass, CoalescedUseAfterFreeFaultsLikeScalar) {
  TypeRegistry reg;
  const TypeId quad = make_quad(reg);
  FunctionBuilder b("uaf", 0);
  const Reg obj = b.alloc(quad);
  b.free_obj(obj, quad);
  const Reg p0 = b.gep(obj, quad, 0);  // dangling: both geps coalesce
  const Reg p1 = b.gep(obj, quad, 1);
  b.ret(b.add(b.load(p0), b.load(p1)));
  Module m;
  m.functions.push_back(std::move(b).build());
  Module scalar = m;

  run_polar_pass(scalar, reg,
                 PassOptions{.selected = {}, .coalesce_geps = false});
  const PassReport cr = run_polar_pass(
      m, reg, PassOptions{.selected = {}, .coalesce_geps = true});
  EXPECT_EQ(cr.gep_batches, 1u);
  ASSERT_EQ(verify(m, reg), "");

  RuntimeConfig cfg;
  cfg.on_violation = ErrorAction::kReport;
  Runtime rt_scalar(reg, cfg);
  const InterpResult sres =
      Interpreter(scalar, reg, &rt_scalar).run("uaf", {});
  Runtime rt_multi(reg, cfg);
  const InterpResult mres = Interpreter(m, reg, &rt_multi).run("uaf", {});
  EXPECT_EQ(sres.status, InterpResult::Status::kViolation);
  EXPECT_EQ(mres.status, sres.status);
  EXPECT_EQ(mres.violation, sres.violation);
  EXPECT_EQ(mres.violation, Violation::kUseAfterFree);
}

// --------------------------------------------------------------- verifier

TEST(Verifier, RejectsEmptyModuleAndEmptyBlock) {
  TypeRegistry reg;
  Module m;
  EXPECT_NE(verify(m, reg), "");
  Function f;
  f.name = "f";
  f.blocks.emplace_back();
  m.functions.push_back(f);
  EXPECT_NE(verify(m, reg), "");
}

TEST(Verifier, RejectsMissingTerminator) {
  TypeRegistry reg;
  Function f;
  f.name = "f";
  f.num_regs = 1;
  Block blk;
  blk.instrs.push_back({.op = Op::kConst, .dst = 0, .imm = 1});
  f.blocks.push_back(blk);
  Module m;
  m.functions.push_back(f);
  EXPECT_NE(verify(m, reg), "");
}

TEST(Verifier, RejectsInteriorTerminator) {
  TypeRegistry reg;
  Function f;
  f.name = "f";
  f.num_regs = 1;
  Block blk;
  blk.instrs.push_back({.op = Op::kRet});
  blk.instrs.push_back({.op = Op::kRet});
  f.blocks.push_back(blk);
  Module m;
  m.functions.push_back(f);
  EXPECT_NE(verify(m, reg), "");
}

TEST(Verifier, RejectsBadRegisterAndBranchTarget) {
  TypeRegistry reg;
  {
    Function f;
    f.name = "f";
    f.num_regs = 1;
    Block blk;
    blk.instrs.push_back({.op = Op::kMove, .dst = 0, .a = 9});
    blk.instrs.push_back({.op = Op::kRet});
    f.blocks.push_back(blk);
    Module m;
    m.functions.push_back(f);
    EXPECT_NE(verify(m, reg), "");
  }
  {
    Function f;
    f.name = "f";
    Block blk;
    blk.instrs.push_back({.op = Op::kBr, .a = kNoReg, .target_a = 7});
    f.blocks.push_back(blk);
    Module m;
    m.functions.push_back(f);
    EXPECT_NE(verify(m, reg), "");
  }
}

TEST(Verifier, RejectsBadGepFieldAndUnknownType) {
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  {
    FunctionBuilder b("f", 0);
    const Reg p = b.alloc(people);
    b.gep(p, people, 99);  // out-of-range field
    b.ret();
    Module m;
    m.functions.push_back(std::move(b).build());
    EXPECT_NE(verify(m, reg), "");
  }
  {
    Function f;
    f.name = "f";
    f.num_regs = 1;
    Block blk;
    blk.instrs.push_back({.op = Op::kAlloc, .dst = 0, .imm = 42});  // bad type
    blk.instrs.push_back({.op = Op::kRet});
    f.blocks.push_back(blk);
    Module m;
    m.functions.push_back(f);
    EXPECT_NE(verify(m, reg), "");
  }
}

TEST(Verifier, GepMultiAcceptsWellFormedRejectsMalformed) {
  TypeRegistry reg;
  const TypeId people = make_people(reg);  // 3 fields
  const auto with_multi = [&](Reg base, std::uint64_t type,
                              std::vector<Reg> args) {
    Function f;
    f.name = "f";
    f.num_regs = 4;
    Block blk;
    blk.instrs.push_back({.op = Op::kAlloc, .dst = 0, .imm = people.value});
    blk.instrs.push_back(
        {.op = Op::kPolarGepMulti, .a = base, .imm = type, .args = std::move(args)});
    blk.instrs.push_back({.op = Op::kFree, .a = 0, .imm = people.value});
    blk.instrs.push_back({.op = Op::kRet});
    f.blocks.push_back(blk);
    Module m;
    m.functions.push_back(f);
    return m;
  };

  // Well-formed: base r0, two (dst, field) pairs.
  {
    Module m = with_multi(0, people.value, {1, 1, 2, 2});
    EXPECT_EQ(verify(m, reg), "");
  }
  // Odd-sized pair list.
  {
    Module m = with_multi(0, people.value, {1, 1, 2});
    EXPECT_NE(verify(m, reg), "");
  }
  // No pairs at all.
  {
    Module m = with_multi(0, people.value, {});
    EXPECT_NE(verify(m, reg), "");
  }
  // Field out of range for the type.
  {
    Module m = with_multi(0, people.value, {1, 9});
    EXPECT_NE(verify(m, reg), "");
  }
  // Destination register out of range / missing.
  {
    Module m = with_multi(0, people.value, {42, 1});
    EXPECT_NE(verify(m, reg), "");
  }
  {
    Module m = with_multi(0, people.value, {kNoReg, 1});
    EXPECT_NE(verify(m, reg), "");
  }
  // Missing base register.
  {
    Module m = with_multi(kNoReg, people.value, {1, 1});
    EXPECT_NE(verify(m, reg), "");
  }
  // Unknown type id.
  {
    Module m = with_multi(0, 42, {1, 1});
    EXPECT_NE(verify(m, reg), "");
  }
}

TEST(Verifier, RejectsCallArityMismatch) {
  TypeRegistry reg;
  Module m;
  m.functions.push_back(build_sum_loop());  // wants 1 arg
  FunctionBuilder b("caller", 0);
  b.call(0, {});  // zero args
  b.ret();
  m.functions.push_back(std::move(b).build());
  EXPECT_NE(verify(m, reg), "");
}

TEST(IrPrinting, DisassemblyMentionsKeyPieces) {
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  Module m;
  m.functions.push_back(build_people_roundtrip(people));
  const std::string text = to_string(m.functions[0]);
  EXPECT_NE(text.find("alloc"), std::string::npos);
  EXPECT_NE(text.find("gep"), std::string::npos);
  EXPECT_NE(text.find("free"), std::string::npos);
  run_polar_pass(m, reg);
  const std::string inst = to_string(m.functions[0]);
  EXPECT_NE(inst.find("polar.alloc"), std::string::npos);
  EXPECT_NE(inst.find("polar.gep"), std::string::npos);
}

}  // namespace
}  // namespace polar::ir
