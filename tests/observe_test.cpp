// Tests for the observability layer (DESIGN.md §11): the trace ring and
// histogram primitives, the runtime's sampled instrumentation, the metrics
// registry's exporters (including the JSON round-trip the --selfcheck gate
// relies on), the consistency invariants, and the live-set introspection.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "core/runtime.h"
#include "core/type_registry.h"
#include "observe/introspect.h"
#include "observe/metrics.h"
#include "observe/trace_ring.h"

namespace polar {
namespace {

using observe::Log2Histogram;
using observe::TraceEvent;
using observe::TraceEventKind;
using observe::TraceRing;

TypeId make_people(TypeRegistry& reg) {
  return TypeBuilder(reg, "People")
      .field<std::uint64_t>("id")
      .field<int>("age")
      .field<int>("score")
      .build();
}

// ------------------------------------------------------------- primitives

TEST(Log2Histogram, BucketBoundaries) {
  Log2Histogram h;
  EXPECT_EQ(h.bucket_of(0), 0u);
  EXPECT_EQ(h.bucket_of(1), 1u);
  EXPECT_EQ(h.bucket_of(2), 2u);
  EXPECT_EQ(h.bucket_of(3), 2u);
  EXPECT_EQ(h.bucket_of(4), 3u);
  EXPECT_EQ(h.bucket_of(255), 8u);
  EXPECT_EQ(h.bucket_of(256), 9u);
  EXPECT_EQ(h.bucket_of(~0ULL), 63u);
}

TEST(Log2Histogram, RecordAccumulatesCountAndSum) {
  Log2Histogram h;
  h.record(0);
  h.record(5);
  h.record(5);
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.sum, 10u);
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[3], 2u);  // 5 -> bucket 3 ([4, 8))
  std::uint64_t bucket_sum = 0;
  for (const std::uint64_t b : h.buckets) bucket_sum += b;
  EXPECT_EQ(bucket_sum, h.count);
}

TEST(Log2Histogram, AddMergesAndEqualityIsFieldWise) {
  Log2Histogram a;
  Log2Histogram b;
  a.record(7);
  b.record(7);
  EXPECT_TRUE(a == b);
  b.record(100);
  EXPECT_FALSE(a == b);
  a.add(b);
  EXPECT_EQ(a.count, 3u);
  EXPECT_EQ(a.sum, 114u);
}

TEST(TraceRing, CapacityZeroCountsWithoutStoring) {
  TraceRing ring(0, TraceRing::Mode::kKeepLatest);
  TraceEvent e{};
  e.kind = TraceEventKind::kAlloc;
  for (int i = 0; i < 5; ++i) ring.push(e);
  const observe::TraceRingStats s = ring.stats();
  EXPECT_EQ(s.recorded, 5u);
  EXPECT_EQ(s.stored, 0u);
  EXPECT_EQ(s.dropped, 5u);
  EXPECT_EQ(s.by_kind[static_cast<std::size_t>(TraceEventKind::kAlloc)], 5u);
  std::vector<TraceEvent> out;
  ring.snapshot(out);
  EXPECT_TRUE(out.empty());
}

TEST(TraceRing, KeepLatestOverwritesOldest) {
  TraceRing ring(16, TraceRing::Mode::kKeepLatest);
  for (std::uint64_t i = 0; i < 40; ++i) {
    TraceEvent e{};
    e.kind = TraceEventKind::kFree;
    e.object_id = i;
    ring.push(e);
  }
  const observe::TraceRingStats s = ring.stats();
  EXPECT_EQ(s.recorded, 40u);
  EXPECT_EQ(s.stored, 16u);
  EXPECT_EQ(s.dropped, 24u);
  EXPECT_EQ(s.recorded, s.stored + s.dropped);
  std::vector<TraceEvent> out;
  ring.snapshot(out);
  ASSERT_EQ(out.size(), 16u);
  // Oldest-first snapshot of the 16 NEWEST events: ids 24..39.
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].object_id, 24u + i);
  }
}

TEST(TraceRing, KeepOldestDropsNew) {
  TraceRing ring(16, TraceRing::Mode::kKeepOldest);
  for (std::uint64_t i = 0; i < 40; ++i) {
    TraceEvent e{};
    e.kind = TraceEventKind::kViolation;
    e.object_id = i;
    ring.push(e);
  }
  const observe::TraceRingStats s = ring.stats();
  EXPECT_EQ(s.recorded, 40u);
  EXPECT_EQ(s.stored, 16u);
  EXPECT_EQ(s.dropped, 24u);
  std::vector<TraceEvent> out;
  ring.snapshot(out);
  ASSERT_EQ(out.size(), 16u);
  // The FIRST 16 events survive: ids 0..15.
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].object_id, i);
  }
}

TEST(TraceRing, EventKindNamesRoundTrip) {
  for (std::size_t k = 0; k < observe::kTraceEventKindCount; ++k) {
    const char* name = observe::to_string(static_cast<TraceEventKind>(k));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string(name).size(), 0u);
  }
}

// ---------------------------------------------------------- RuntimeStats

TEST(RuntimeStats, AddAggregatesEveryField) {
  // One distinct prime per field so a missed field breaks the sum.
  RuntimeStats a;
  a.allocations = 2;
  a.frees = 3;
  a.memcpys = 5;
  a.clones = 7;
  a.member_accesses = 11;
  a.cache_hits = 13;
  a.fastpath_hits = 17;
  a.layouts_created = 19;
  a.layouts_deduped = 23;
  a.layout_pool_refills = 29;
  a.uaf_detected = 31;
  a.traps_triggered = 37;
  a.metadata_faults = 41;
  a.oom_refusals = 43;
  a.quarantined_objects = 47;
  a.bytes_requested = 53;
  a.bytes_allocated = 59;
  RuntimeStats b = a;
  b.add(a);
  RuntimeStats doubled = a;
  doubled.allocations *= 2;
  doubled.frees *= 2;
  doubled.memcpys *= 2;
  doubled.clones *= 2;
  doubled.member_accesses *= 2;
  doubled.cache_hits *= 2;
  doubled.fastpath_hits *= 2;
  doubled.layouts_created *= 2;
  doubled.layouts_deduped *= 2;
  doubled.layout_pool_refills *= 2;
  doubled.uaf_detected *= 2;
  doubled.traps_triggered *= 2;
  doubled.metadata_faults *= 2;
  doubled.oom_refusals *= 2;
  doubled.quarantined_objects *= 2;
  doubled.bytes_requested *= 2;
  doubled.bytes_allocated *= 2;
  EXPECT_TRUE(b == doubled);
}

TEST(RuntimeStats, ResetZeroesEveryField) {
  RuntimeStats a;
  a.allocations = 1;
  a.clones = 2;
  a.bytes_allocated = 3;
  a.reset();
  EXPECT_TRUE(a == RuntimeStats{});
}

// ------------------------------------------------------- runtime tracing

RuntimeConfig traced_config(std::uint32_t interval) {
  RuntimeConfig cfg;
  cfg.seed = 2026;
  cfg.on_violation = ErrorAction::kReport;
  cfg.trace_sample_interval = interval;
  return cfg;
}

TEST(RuntimeTracing, ConfigRejectsBadRingCapacity) {
  RuntimeConfig cfg = traced_config(8);
  cfg.trace_ring_capacity = 48;  // not a power of two
  EXPECT_FALSE(cfg.validate().ok());
  cfg.trace_ring_capacity = 8;  // below the floor
  EXPECT_FALSE(cfg.validate().ok());
  cfg.trace_ring_capacity = 1u << 21;  // above the ceiling
  EXPECT_FALSE(cfg.validate().ok());
  cfg.trace_ring_capacity = 4096;
  EXPECT_TRUE(cfg.validate().ok());
}

TEST(RuntimeTracing, IntervalZeroRecordsNothing) {
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  Runtime rt(reg, traced_config(0));
  void* p = rt.olr_malloc(people);
  (void)rt.olr_getptr(p, 1);
  rt.olr_free(p);
  EXPECT_TRUE(rt.trace_events().empty());
  EXPECT_EQ(rt.trace_ring_stats().recorded, 0u);
  EXPECT_EQ(rt.latency_histograms().getptr_ns.count, 0u);
}

TEST(RuntimeTracing, IntervalOneRecordsEveryOpKind) {
  if (!Runtime::trace_compiled_in()) GTEST_SKIP() << "POLAR_TRACE=OFF build";
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  RuntimeConfig cfg = traced_config(1);
  // kLayoutRefill only fires on the stored per-allocation pool (the
  // stateless schedule is built once up front) — pin the op-kind census.
  cfg.backend = BackendConfig::stored();
  Runtime rt(reg, cfg);
  void* p = rt.olr_malloc(people);
  for (int i = 0; i < 4; ++i) (void)rt.olr_getptr(p, 1);
  rt.olr_free(p);
  const std::vector<observe::TraceEvent> events = rt.trace_events();
  std::set<TraceEventKind> kinds;
  for (const observe::TraceEvent& e : events) kinds.insert(e.kind);
  EXPECT_TRUE(kinds.count(TraceEventKind::kAlloc));
  EXPECT_TRUE(kinds.count(TraceEventKind::kFree));
  // The getptr twin classifies each access as fast or slow; either way at
  // least one member-access event must be present.
  EXPECT_TRUE(kinds.count(TraceEventKind::kGetptrFast) ||
              kinds.count(TraceEventKind::kGetptrSlow));
  EXPECT_TRUE(kinds.count(TraceEventKind::kLayoutRefill));
  const observe::LatencyHistograms lat = rt.latency_histograms();
  EXPECT_EQ(lat.getptr_ns.count, 4u);
  EXPECT_EQ(lat.alloc_ns.count, 1u);
  // Events carry a timestamp and one consistent producer thread tag.
  ASSERT_FALSE(events.empty());
  for (const observe::TraceEvent& e : events) {
    EXPECT_GT(e.timestamp, 0u);
    EXPECT_EQ(e.thread, events.front().thread);
  }
}

TEST(RuntimeTracing, SamplingRecordsRoughlyOneInN) {
  if (!Runtime::trace_compiled_in()) GTEST_SKIP() << "POLAR_TRACE=OFF build";
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  Runtime rt(reg, traced_config(4));
  void* p = rt.olr_malloc(people);
  const int kAccesses = 400;
  for (int i = 0; i < kAccesses; ++i) (void)rt.olr_getptr(p, 1);
  rt.olr_free(p);
  const std::uint64_t sampled = rt.latency_histograms().getptr_ns.count;
  // The countdown is shared across op kinds, so allow slack around N/4.
  EXPECT_GE(sampled, static_cast<std::uint64_t>(kAccesses / 4 - 3));
  EXPECT_LE(sampled, static_cast<std::uint64_t>(kAccesses / 4 + 3));
}

TEST(RuntimeTracing, ViolationsRecordedRegardlessOfSamplingPhase) {
  if (!Runtime::trace_compiled_in()) GTEST_SKIP() << "POLAR_TRACE=OFF build";
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  // Interval so large the countdown never fires during this test; the
  // violation sink must still land its event in the ring.
  Runtime rt(reg, traced_config(1000000));
  void* p = rt.olr_malloc(people);
  rt.olr_free(p);
  EXPECT_EQ(rt.olr_getptr(p, 1), nullptr);  // use-after-free
  const std::vector<observe::TraceEvent> events = rt.trace_events();
  const auto it = std::find_if(
      events.begin(), events.end(), [](const observe::TraceEvent& e) {
        return e.kind == TraceEventKind::kViolation;
      });
  ASSERT_NE(it, events.end());
  EXPECT_EQ(static_cast<Violation>(it->detail), Violation::kUseAfterFree);
}

TEST(RuntimeTracing, RingStatsBalance) {
  if (!Runtime::trace_compiled_in()) GTEST_SKIP() << "POLAR_TRACE=OFF build";
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  RuntimeConfig cfg = traced_config(1);
  cfg.trace_ring_capacity = 16;  // force overflow
  Runtime rt(reg, cfg);
  std::vector<void*> objs;
  for (int i = 0; i < 64; ++i) objs.push_back(rt.olr_malloc(people));
  for (void* p : objs) rt.olr_free(p);
  const observe::TraceRingStats s = rt.trace_ring_stats();
  EXPECT_GE(s.recorded, 128u);  // 64 allocs + 64 frees at least
  EXPECT_EQ(s.recorded, s.stored + s.dropped);
  EXPECT_GT(s.dropped, 0u);
  EXPECT_EQ(rt.trace_events().size(), s.stored);
}

// ------------------------------------------------------ metrics exporters

TEST(Metrics, JsonRoundTripIsExact) {
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  Runtime rt(reg, traced_config(Runtime::trace_compiled_in() ? 2 : 0));
  std::vector<void*> objs;
  for (int i = 0; i < 32; ++i) objs.push_back(rt.olr_malloc(people));
  for (void* p : objs) {
    for (int f = 0; f < 3; ++f) (void)rt.olr_getptr(p, f);
  }
  rt.olr_free(objs.back());
  objs.pop_back();
  (void)rt.olr_getptr(nullptr, 0);  // one violation for the report table

  const observe::MetricsSnapshot m = observe::collect_metrics(rt);
  observe::MetricsSnapshot round;
  ASSERT_TRUE(observe::from_json(observe::to_json(m), round));
  EXPECT_TRUE(round == m);
  EXPECT_TRUE(round.stats == m.stats);

  for (void* p : objs) rt.olr_free(p);
}

TEST(Metrics, HeapSectionTracksSubstrate) {
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  Runtime rt(reg, traced_config(0));
  const observe::MetricsSnapshot before = observe::collect_metrics(rt);
  ASSERT_TRUE(before.heap_attached);  // default config routes raw
                                      // allocation through the process heap
  void* p = rt.olr_malloc(people);
  rt.olr_free(p);
  rt.free_all();
  const observe::MetricsSnapshot after = observe::collect_metrics(rt);
  EXPECT_GT(after.heap.allocations, before.heap.allocations);
  EXPECT_GE(after.heap.frees, before.heap.frees);
  EXPECT_TRUE(observe::consistency_violations(after).empty());
  EXPECT_NE(
      observe::to_prometheus(after).find("polar_heap_allocations_total"),
      std::string::npos);

  // Substrate off: the section detaches and stays all-zero (the
  // consistency gate pins that too), and the Prometheus page drops the
  // constant-zero family instead of exporting it.
  RuntimeConfig cfg = traced_config(0);
  cfg.scalable_heap = false;
  Runtime plain(reg, cfg);
  const observe::MetricsSnapshot off = observe::collect_metrics(plain);
  EXPECT_FALSE(off.heap_attached);
  EXPECT_TRUE(off.heap == ScalableHeapStats{});
  EXPECT_TRUE(observe::consistency_violations(off).empty());
  EXPECT_EQ(observe::to_prometheus(off).find("polar_heap_"),
            std::string::npos);
}

TEST(Metrics, FromJsonRejectsGarbage) {
  observe::MetricsSnapshot out;
  EXPECT_FALSE(observe::from_json("", out));
  EXPECT_FALSE(observe::from_json("{", out));
  EXPECT_FALSE(observe::from_json("[1,2,3]", out));
  EXPECT_FALSE(observe::from_json("{\"polar_metrics_version\": 99}", out));
  EXPECT_FALSE(observe::from_json("{\"polar_metrics_version\": 1} trailing",
                                  out));
}

TEST(Metrics, PrometheusExportNamesEveryCounterFamily) {
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  Runtime rt(reg, traced_config(0));
  void* p = rt.olr_malloc(people);
  rt.olr_free(p);
  const std::string text =
      observe::to_prometheus(observe::collect_metrics(rt));
  EXPECT_NE(text.find("polar_allocations_total 1"), std::string::npos);
  EXPECT_NE(text.find("polar_frees_total 1"), std::string::npos);
  EXPECT_NE(text.find("polar_violation_reports_total{class="),
            std::string::npos);
  EXPECT_NE(text.find("polar_trace_events_total{kind=\"alloc\"}"),
            std::string::npos);
  EXPECT_NE(text.find("polar_metadata_shards "), std::string::npos);
  EXPECT_NE(text.find("polar_getptr_latency_ns_count"), std::string::npos);
  EXPECT_NE(text.find("polar_alloc_latency_ns_sum"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
}

TEST(Metrics, ConsistencyCleanOnRealSnapshotDirtyOnCorrupted) {
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  Runtime rt(reg, traced_config(Runtime::trace_compiled_in() ? 1 : 0));
  std::vector<void*> objs;
  for (int i = 0; i < 8; ++i) objs.push_back(rt.olr_malloc(people));
  for (void* p : objs) (void)rt.olr_getptr(p, 0);
  for (void* p : objs) rt.olr_free(p);
  observe::MetricsSnapshot m = observe::collect_metrics(rt);
  EXPECT_TRUE(observe::consistency_violations(m).empty());

  m.stats.frees = m.stats.allocations + m.stats.clones + 1;
  m.stats.cache_hits = m.stats.member_accesses + 1;
  const std::vector<std::string> bad = observe::consistency_violations(m);
  EXPECT_GE(bad.size(), 2u);
}

TEST(Metrics, ShardLockStatsCountUncontendedAcquisitions) {
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  Runtime rt(reg, traced_config(0));
  void* p = rt.olr_malloc(people);
  rt.olr_free(p);
  const ShardedMetadataTable::LockStats ls = rt.lock_stats();
  EXPECT_GT(ls.acquisitions, 0u);
  EXPECT_EQ(ls.contended, 0u);  // single thread never waits
  EXPECT_GT(rt.shard_count(), 0u);
}

// ---------------------------------------------------------- introspection

TEST(Introspect, CensusCountsLiveObjectsPerType) {
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  const TypeId other = TypeBuilder(reg, "Other").field<int>("x").build();
  Runtime rt(reg, traced_config(0));
  std::vector<void*> objs;
  for (int i = 0; i < 12; ++i) objs.push_back(rt.olr_malloc(people));
  void* o = rt.olr_malloc(other);

  const observe::IntrospectionReport r = observe::introspect(rt);
  ASSERT_EQ(r.census.size(), 2u);
  EXPECT_EQ(r.census[people.value].type_name, "People");
  EXPECT_EQ(r.census[people.value].live_objects, 12u);
  EXPECT_GT(r.census[people.value].live_bytes, 0u);
  EXPECT_GE(r.census[people.value].distinct_layouts, 2u);
  EXPECT_EQ(r.census[other.value].live_objects, 1u);
  EXPECT_EQ(r.live_objects, 13u);
  EXPECT_EQ(r.live_objects, rt.live_objects());
  EXPECT_GT(r.census[people.value].entropy_bits, 0.0);

  // Every registered type lands in exactly one entropy band.
  std::uint64_t banded = 0;
  for (const std::uint64_t b : r.entropy_histogram) banded += b;
  EXPECT_EQ(banded, 2u);

  const std::string json = observe::to_json(r);
  EXPECT_NE(json.find("\"People\""), std::string::npos);
  const std::string table = observe::to_table(r);
  EXPECT_NE(table.find("People"), std::string::npos);

  rt.olr_free(o);
  for (void* p : objs) rt.olr_free(p);
}

TEST(Introspect, CensusReportsBackendAndCapsDerivedEntropy) {
  TypeRegistry reg;
  const TypeId wide = TypeBuilder(reg, "Wide")
                          .fn_ptr("vtable")
                          .field<std::uint64_t>("a")
                          .field<std::uint64_t>("b")
                          .ptr("next")
                          .field<std::uint32_t>("len")
                          .field<std::uint32_t>("cap")
                          .field<std::uint16_t>("tag")
                          .build();
  const TypeId twin = TypeBuilder(reg, "Twin")
                          .fn_ptr("vtable")
                          .field<std::uint64_t>("a")
                          .field<std::uint64_t>("b")
                          .ptr("next")
                          .field<std::uint32_t>("len")
                          .field<std::uint32_t>("cap")
                          .field<std::uint16_t>("tag")
                          .build();
  RuntimeConfig cfg;
  cfg.seed = 11;
  cfg.backend = BackendConfig::stored();
  cfg.type_backends.emplace_back("Wide", BackendConfig::stateless(4));
  Runtime rt(reg, cfg);

  const observe::IntrospectionReport r = observe::introspect(rt);
  ASSERT_EQ(r.census.size(), 2u);
  EXPECT_EQ(r.census[wide.value].backend, BackendKind::kStateless);
  EXPECT_EQ(r.census[twin.value].backend, BackendKind::kStored);
  // A 2^4-entry schedule cannot realize more than 4 bits of diversity,
  // while the identical stored twin keeps the full permutation space.
  EXPECT_LE(r.census[wide.value].entropy_bits, 4.0);
  EXPECT_GT(r.census[twin.value].entropy_bits,
            r.census[wide.value].entropy_bits);

  const std::string json = observe::to_json(r);
  EXPECT_NE(json.find("\"backend\": \"stateless\""), std::string::npos);
  const std::string table = observe::to_table(r);
  EXPECT_NE(table.find("stateless"), std::string::npos);
}

TEST(Introspect, ForEachLiveMatchesLiveObjects) {
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  Runtime rt(reg, traced_config(0));
  std::vector<void*> objs;
  for (int i = 0; i < 9; ++i) objs.push_back(rt.olr_malloc(people));
  std::size_t n = 0;
  rt.for_each_live([&](const ObjectRecord& rec) {
    EXPECT_EQ(rec.type.value, people.value);
    ++n;
  });
  EXPECT_EQ(n, rt.live_objects());
  for (void* p : objs) rt.olr_free(p);
}

}  // namespace
}  // namespace polar
