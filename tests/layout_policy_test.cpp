// Tests for the two randstruct-compatibility features (paper §II-C):
// cache-line-aware partial randomization and __no_randomize_layout.
#include <gtest/gtest.h>

#include <set>

#include "core/runtime.h"
#include "ir/builder.h"
#include "ir/polar_pass.h"

namespace polar {
namespace {

TypeId make_wide(TypeRegistry& reg) {
  // 8 x u64 = 64 bytes natural; with 32-byte groups, fields 0-3 must stay
  // in the first half and 4-7 in the second.
  TypeBuilder b(reg, "Wide8");
  for (int i = 0; i < 8; ++i) b.field<std::uint64_t>("f" + std::to_string(i));
  return b.build();
}

TEST(CacheLineGrouping, FieldsStayWithinTheirGroup) {
  TypeRegistry reg;
  const TypeId wide = make_wide(reg);
  LayoutPolicy policy;
  policy.cache_line_group = 32;
  policy.min_dummies = 0;
  policy.max_dummies = 0;
  policy.booby_traps = false;
  Rng rng(3);
  for (int iter = 0; iter < 200; ++iter) {
    const Layout layout = randomize_layout(reg.info(wide), policy, rng);
    for (std::uint32_t f = 0; f < 8; ++f) {
      if (f < 4) {
        EXPECT_LT(layout.offsets[f], 32u) << "field " << f;
      } else {
        EXPECT_GE(layout.offsets[f], 32u) << "field " << f;
      }
    }
  }
}

TEST(CacheLineGrouping, StillRandomizesWithinGroups) {
  TypeRegistry reg;
  const TypeId wide = make_wide(reg);
  LayoutPolicy policy;
  policy.cache_line_group = 32;
  policy.min_dummies = 0;
  policy.max_dummies = 0;
  policy.booby_traps = false;
  Rng rng(5);
  std::set<std::vector<std::uint32_t>> layouts;
  for (int iter = 0; iter < 200; ++iter) {
    layouts.insert(randomize_layout(reg.info(wide), policy, rng).offsets);
  }
  // 4! * 4! = 576 possible; 200 draws should find plenty.
  EXPECT_GT(layouts.size(), 50u);
}

TEST(CacheLineGrouping, GroupLargerThanTypeEqualsFullShuffle) {
  TypeRegistry reg;
  const TypeId wide = make_wide(reg);
  LayoutPolicy policy;
  policy.cache_line_group = 1024;
  policy.min_dummies = 0;
  policy.max_dummies = 0;
  policy.booby_traps = false;
  Rng rng(7);
  bool crossed = false;
  for (int iter = 0; iter < 100 && !crossed; ++iter) {
    const Layout layout = randomize_layout(reg.info(wide), policy, rng);
    crossed = layout.offsets[0] >= 32;  // f0 escaped the first half
  }
  EXPECT_TRUE(crossed);
}

TEST(NoRandomize, TypeKeepsNaturalLayoutEverywhere) {
  TypeRegistry reg;
  const TypeId packet = TypeBuilder(reg, "WirePacket")
                            .field<std::uint32_t>("magic")
                            .field<std::uint16_t>("version")
                            .field<std::uint16_t>("flags")
                            .field<std::uint64_t>("session")
                            .no_randomize()
                            .build();
  EXPECT_TRUE(reg.info(packet).no_randomize);
  Rng rng(1);
  for (int iter = 0; iter < 20; ++iter) {
    const Layout layout = randomize_layout(reg.info(packet), LayoutPolicy{}, rng);
    EXPECT_EQ(layout.offsets, reg.info(packet).natural_offsets);
    EXPECT_TRUE(layout.traps.empty());
    EXPECT_EQ(layout.size, reg.info(packet).natural_size);
  }
  EXPECT_EQ(permutation_space(reg.info(packet), LayoutPolicy{}), 1u);
}

TEST(NoRandomize, RuntimeStillTracksButDoesNotShuffle) {
  TypeRegistry reg;
  const TypeId packet = TypeBuilder(reg, "WirePacket")
                            .field<std::uint32_t>("magic")
                            .field<std::uint64_t>("session")
                            .no_randomize()
                            .build();
  Runtime rt(reg, RuntimeConfig{});
  void* p = rt.olr_malloc(packet);
  // Offsets are the natural ones -> the wire format is intact.
  EXPECT_EQ(rt.olr_getptr(p, 0), p);
  EXPECT_EQ(static_cast<unsigned char*>(rt.olr_getptr(p, 1)) -
                static_cast<unsigned char*>(p),
            8);
  // But UAF detection still applies: tracking is orthogonal to shuffling.
  rt.olr_free(p);
  EXPECT_EQ(rt.olr_getptr(p, 0), nullptr);
  EXPECT_EQ(rt.last_violation(), Violation::kUseAfterFree);
}

TEST(NoRandomize, PassSkipsAnnotatedTypes) {
  TypeRegistry reg;
  const TypeId packet = TypeBuilder(reg, "WirePacket")
                            .field<std::uint32_t>("magic")
                            .no_randomize()
                            .build();
  const TypeId normal =
      TypeBuilder(reg, "Normal").field<std::uint32_t>("x").build();
  ir::FunctionBuilder b("f", 0);
  const ir::Reg pk = b.alloc(packet);
  b.store(b.gep(pk, packet, 0), b.const64(1), ir::Width::kW32);
  b.free_obj(pk, packet);
  const ir::Reg nm = b.alloc(normal);
  b.free_obj(nm, normal);
  b.ret();
  ir::Module m;
  m.functions.push_back(std::move(b).build());
  const ir::PassReport report = ir::run_polar_pass(m, reg);
  EXPECT_EQ(report.sites_skipped, 3u);  // all WirePacket sites
  EXPECT_EQ(report.allocs_rewritten, 1u);  // Normal only
}

TEST(NoRandomize, AffectsClassHash) {
  TypeRegistry a, b;
  const TypeId ta = TypeBuilder(a, "T").field<int>("x").build();
  const TypeId tb = TypeBuilder(b, "T").field<int>("x").no_randomize().build();
  EXPECT_NE(a.info(ta).class_hash, b.info(tb).class_hash);
}

}  // namespace
}  // namespace polar
