// Tests for the adaptive red-team campaign harness (attack/campaign.h):
// convergence behaviour of the probing oracle per defense/backend, trap
// monotonicity, the zero-false-positive control contract, the determinism
// contract attack_surface.json relies on, and config validation.
#include "attack/campaign.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "attack/attack.h"
#include "core/backend.h"
#include "core/type_registry.h"

namespace polar {
namespace {

struct CampaignFixture : ::testing::Test {
  TypeRegistry registry;
  AttackTypes types;

  void SetUp() override { types = register_attack_types(registry); }

  CampaignConfig base(CampaignKind kind, DefenseKind defense,
                      BackendKind backend) const {
    CampaignConfig cfg;
    cfg.kind = kind;
    cfg.defense = defense;
    cfg.backend = BackendConfig::of(backend);
    cfg.rounds = 12;
    cfg.trials_per_round = 16;
    cfg.converge_streak = 3;
    cfg.seed = 0xc0ffee;
    return cfg;
  }
};

// Against no defense the oracle learns the (fixed, natural) layout in the
// first probe, the belief never moves, and the surgical strike lands —
// convergence in exactly converge_streak rounds of the bounded budget.
TEST_F(CampaignFixture, ProbeOracleConvergesOnNoDefense) {
  const CampaignConfig cfg =
      base(CampaignKind::kProbeOracle, DefenseKind::kNone, BackendKind::kStored);
  const CampaignOutcome out = run_campaign(registry, types, cfg);
  EXPECT_TRUE(out.converged);
  EXPECT_GE(out.converged_round, cfg.converge_streak);
  EXPECT_LE(out.converged_round, cfg.converge_streak + 1);
  EXPECT_LE(out.rounds_run, cfg.converge_streak + 1);
  EXPECT_GT(out.totals.success_rate(), 0.9);
  EXPECT_GT(out.probes, 0u);
}

// Static OLR's layout is fixed per binary (the Reproduction Problem): one
// probe recovers it and the campaign converges just like kNone.
TEST_F(CampaignFixture, ProbeOracleConvergesOnStaticOlr) {
  const CampaignConfig cfg = base(CampaignKind::kProbeOracle,
                                  DefenseKind::kStaticOlr, BackendKind::kStored);
  const CampaignOutcome out = run_campaign(registry, types, cfg);
  EXPECT_TRUE(out.converged);
  EXPECT_GT(out.totals.success_rate(), 0.9);
}

// Per-allocation randomization with a wide victim (>= 16 bits of layout
// entropy): every probe's knowledge is stale by the next allocation, the
// belief never stabilizes, and the campaign burns its whole round budget.
TEST_F(CampaignFixture, ProbeOracleNeverConvergesUnderPolarHighEntropy) {
  TypeBuilder wide(registry, "WideVictim");
  wide.fn_ptr("handler").field<std::uint64_t>("refcount").ptr("name").field<
      std::uint32_t>("len");
  for (int i = 0; i < 6; ++i) {
    wide.field<std::uint64_t>("pad" + std::to_string(i));
  }
  AttackTypes wide_types = types;
  wide_types.victim = wide.build();

  const CampaignConfig cfg =
      base(CampaignKind::kProbeOracle, DefenseKind::kPolar, BackendKind::kStored);
  const CampaignOutcome out = run_campaign(registry, wide_types, cfg);
  // 10 permutable fields alone give log2(10!) ~ 21.8 bits.
  EXPECT_GE(out.entropy_bits, 16.0);
  EXPECT_FALSE(out.converged);
  EXPECT_EQ(out.converged_round, 0u);
  EXPECT_EQ(out.rounds_run, cfg.rounds);
  EXPECT_LT(out.totals.success_rate(), 0.5);
}

// Booby traps are the partial-overwrite detector: with traps disarmed the
// defense observes nothing; arming them turns blind 2-byte pokes into
// detections, and detection never decreases when traps come on.
TEST_F(CampaignFixture, TrapDensityMonotonicity) {
  CampaignConfig cfg = base(CampaignKind::kPartialOverwrite, DefenseKind::kPolar,
                            BackendKind::kStored);
  cfg.policy.booby_traps = false;
  cfg.policy.min_dummies = 0;
  cfg.policy.max_dummies = 0;
  const double det_off =
      run_campaign(registry, types, cfg).totals.detection_rate();

  cfg.policy.booby_traps = true;
  cfg.policy.min_dummies = 1;
  cfg.policy.max_dummies = 3;
  const double det_default =
      run_campaign(registry, types, cfg).totals.detection_rate();

  cfg.policy.min_dummies = 4;
  cfg.policy.max_dummies = 6;
  const double det_dense =
      run_campaign(registry, types, cfg).totals.detection_rate();

  EXPECT_EQ(det_off, 0.0);  // no traps -> nothing to trip
  EXPECT_GT(det_default, 0.05);
  EXPECT_GE(det_default, det_off);
  EXPECT_GE(det_dense, det_off);
  EXPECT_GT(det_dense, 0.05);
}

// Attack-free control rows: the program allocates, initializes, uses and
// frees its object with no attacker in the loop. Any detection is a false
// positive; any "success" a classifier bug. Required zero across the whole
// defense x backend grid — this is polar_redteam's control gate.
TEST_F(CampaignFixture, ZeroFalsePositiveControls) {
  for (const DefenseKind d :
       {DefenseKind::kNone, DefenseKind::kStaticOlr, DefenseKind::kPolar}) {
    for (const BackendKind b : {BackendKind::kStored, BackendKind::kStateless,
                                BackendKind::kHybrid}) {
      CampaignConfig cfg = base(CampaignKind::kProbeOracle, d, b);
      cfg.control = true;
      cfg.rounds = 4;
      const CampaignOutcome out = run_campaign(registry, types, cfg);
      EXPECT_EQ(out.control_violations, 0u)
          << to_string(d) << "/" << to_string(b);
      EXPECT_EQ(out.totals.successes, 0u) << to_string(d) << "/" << to_string(b);
      EXPECT_GT(out.totals.attempts, 0u);
    }
  }
}

// The determinism contract attack_surface.json's CI diffing relies on:
// identical config -> bit-identical counts, signatures and probe totals.
TEST_F(CampaignFixture, DeterminismBitIdentical) {
  for (const CampaignKind kind :
       {CampaignKind::kHeapSpray, CampaignKind::kPartialOverwrite,
        CampaignKind::kOverflowMarch, CampaignKind::kProbeOracle}) {
    for (const BackendKind b : {BackendKind::kStored, BackendKind::kStateless,
                                BackendKind::kHybrid}) {
      CampaignConfig cfg = base(kind, DefenseKind::kPolar, b);
      cfg.rounds = 6;
      const CampaignOutcome a = run_campaign(registry, types, cfg);
      const CampaignOutcome c = run_campaign(registry, types, cfg);
      EXPECT_EQ(a.totals.attempts, c.totals.attempts);
      EXPECT_EQ(a.totals.successes, c.totals.successes);
      EXPECT_EQ(a.totals.detected, c.totals.detected);
      EXPECT_EQ(a.totals.failed, c.totals.failed);
      EXPECT_EQ(a.totals.distinct_outcomes, c.totals.distinct_outcomes);
      EXPECT_EQ(a.rounds_run, c.rounds_run);
      EXPECT_EQ(a.converged, c.converged);
      EXPECT_EQ(a.converged_round, c.converged_round);
      EXPECT_EQ(a.probes, c.probes);
      EXPECT_EQ(a.entropy_bits, c.entropy_bits);
    }
  }
}

// The measured UAF-replay hole: the pure stateless backend derives offsets
// from the (reused) address alone, so a probed-then-sprayed stale handle
// replays perfectly; stored and hybrid refuse the stale access outright.
TEST_F(CampaignFixture, StatelessReplayMeasuredStoredBlocks) {
  const CampaignConfig stateless = base(CampaignKind::kHeapSpray,
                                        DefenseKind::kPolar,
                                        BackendKind::kStateless);
  const CampaignOutcome replay = run_campaign(registry, types, stateless);
  EXPECT_GT(replay.totals.success_rate(), 0.9);

  for (const BackendKind b : {BackendKind::kStored, BackendKind::kHybrid}) {
    const CampaignConfig cfg =
        base(CampaignKind::kHeapSpray, DefenseKind::kPolar, b);
    const CampaignOutcome out = run_campaign(registry, types, cfg);
    EXPECT_EQ(out.totals.successes, 0u) << to_string(b);
    EXPECT_GT(out.totals.detection_rate(), 0.9) << to_string(b);
  }
}

// Campaigns report the entropy axis only where layouts actually vary per
// allocation; fixed-layout defenses sit at zero by definition.
TEST_F(CampaignFixture, EntropyAxisPerDefense) {
  CampaignConfig cfg =
      base(CampaignKind::kProbeOracle, DefenseKind::kPolar, BackendKind::kStored);
  cfg.rounds = 3;
  cfg.converge_streak = 2;
  EXPECT_GT(run_campaign(registry, types, cfg).entropy_bits, 0.0);
  cfg.defense = DefenseKind::kNone;
  EXPECT_EQ(run_campaign(registry, types, cfg).entropy_bits, 0.0);
  cfg.defense = DefenseKind::kStaticOlr;
  EXPECT_EQ(run_campaign(registry, types, cfg).entropy_bits, 0.0);
}

using CampaignDeathTest = CampaignFixture;

// Sweep drivers validate configs at parse time; reaching run_campaign with
// an invalid one is a harness bug and must abort loudly, not produce rows.
TEST_F(CampaignDeathTest, InvalidSweepConfigAborts) {
  CampaignConfig cfg = base(CampaignKind::kProbeOracle, DefenseKind::kPolar,
                            BackendKind::kStored);
  cfg.rounds = 0;
  EXPECT_FALSE(cfg.validate().ok());
  EXPECT_DEATH((void)run_campaign(registry, types, cfg),
               "invalid CampaignConfig");

  cfg = base(CampaignKind::kProbeOracle, DefenseKind::kPolar,
             BackendKind::kStored);
  cfg.converge_streak = cfg.rounds + 1;
  EXPECT_FALSE(cfg.validate().ok());
  EXPECT_DEATH((void)run_campaign(registry, types, cfg),
               "invalid CampaignConfig");

  cfg = base(CampaignKind::kProbeOracle, DefenseKind::kPolar,
             BackendKind::kStored);
  cfg.kind = static_cast<CampaignKind>(200);
  EXPECT_FALSE(cfg.validate().ok());
  EXPECT_DEATH((void)run_campaign(registry, types, cfg),
               "invalid CampaignConfig");
}

}  // namespace
}  // namespace polar
