// ScalableHeap contract tests: Sattolo carve determinism/coverage, the
// sized-delete decoupling, the thread-exit/orphan protocol, and the
// producer/consumer remote-free stress that CI promotes to the full-suite
// TSan job (cross-thread frees + mid-life retires are exactly the traffic
// the MPSC remote stacks and the orphan pool exist to survive).
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstring>
#include <iterator>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "alloc/scalable_heap.h"
#include "support/rng.h"

namespace polar {
namespace {

// Walks a carved free list, returning each block's index within the slab.
std::vector<std::size_t> walk(void* head, const std::byte* begin,
                              std::size_t block_size, std::size_t limit) {
  std::vector<std::size_t> order;
  for (void* p = head; p != nullptr && order.size() <= limit;
       p = *static_cast<void**>(p)) {
    order.push_back(
        static_cast<std::size_t>(static_cast<std::byte*>(p) - begin) /
        block_size);
  }
  return order;
}

TEST(ScalableClasses, RoundingMatchesModelHeap) {
  // The bench sweeps identical classes on both heaps; keep them in lockstep.
  EXPECT_EQ(ScalableHeap::class_size(1), 16u);
  EXPECT_EQ(ScalableHeap::class_size(16), 16u);
  EXPECT_EQ(ScalableHeap::class_size(17), 32u);
  EXPECT_EQ(ScalableHeap::class_size(256), 256u);
  EXPECT_EQ(ScalableHeap::class_size(257), 320u);
  EXPECT_EQ(ScalableHeap::class_size(1024), 1024u);
  EXPECT_EQ(ScalableHeap::class_size(1025), 1280u);
  EXPECT_EQ(ScalableHeap::class_size(4096), 4096u);
  EXPECT_EQ(ScalableHeap::class_size(4097), 0u);  // large path
}

TEST(Sattolo, SameSeedSamePermutation) {
  constexpr std::size_t kBlock = 64, kCount = 64;
  std::vector<std::byte> buf_a(kBlock * kCount), buf_b(kBlock * kCount);
  Rng rng_a(7), rng_b(7);
  void* head_a =
      ScalableHeap::carve_randomized(buf_a.data(), kBlock, kCount, rng_a);
  void* head_b =
      ScalableHeap::carve_randomized(buf_b.data(), kBlock, kCount, rng_b);
  const auto order_a = walk(head_a, buf_a.data(), kBlock, kCount);
  const auto order_b = walk(head_b, buf_b.data(), kBlock, kCount);
  EXPECT_EQ(order_a, order_b);

  // A different seed permutes differently (the whole point of the carve).
  std::vector<std::byte> buf_c(kBlock * kCount);
  Rng rng_c(8);
  void* head_c =
      ScalableHeap::carve_randomized(buf_c.data(), kBlock, kCount, rng_c);
  EXPECT_NE(order_a, walk(head_c, buf_c.data(), kBlock, kCount));
}

TEST(Sattolo, CycleCoversEveryBlockExactlyOnce) {
  constexpr std::size_t kBlock = 16;
  for (std::size_t count : {1u, 2u, 3u, 7u, 64u, 1024u}) {
    std::vector<std::byte> buf(kBlock * count);
    Rng rng(1234 + count);
    void* head = ScalableHeap::carve_randomized(buf.data(), kBlock, count, rng);
    const auto order = walk(head, buf.data(), kBlock, count);
    // Null-terminated after exactly `count` nodes, every block visited once.
    ASSERT_EQ(order.size(), count) << "count=" << count;
    EXPECT_EQ(std::set<std::size_t>(order.begin(), order.end()).size(), count)
        << "count=" << count;
  }
}

TEST(Sattolo, ConsumesExactlyCountDraws) {
  // The documented draw budget: below(i) for i in [1, count) plus one
  // below(count) to break the cycle. Per-slab RNG cost is what keeps the
  // randomized carve within the allocator's perf budget, so a drift here
  // is a perf (and reproducibility) regression.
  constexpr std::size_t kBlock = 32, kCount = 97;
  std::vector<std::byte> buf(kBlock * kCount);
  Rng used(99);
  (void)ScalableHeap::carve_randomized(buf.data(), kBlock, kCount, used);
  Rng ref(99);
  for (std::size_t i = 1; i < kCount; ++i) (void)ref.below(i);
  (void)ref.below(kCount);
  EXPECT_EQ(used.next(), ref.next());
}

TEST(Sattolo, SequentialCarveIsAddressOrder) {
  constexpr std::size_t kBlock = 32, kCount = 16;
  std::vector<std::byte> buf(kBlock * kCount);
  void* head = ScalableHeap::carve_sequential(buf.data(), kBlock, kCount);
  EXPECT_EQ(head, buf.data());
  const auto order = walk(head, buf.data(), kBlock, kCount);
  ASSERT_EQ(order.size(), kCount);
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(order[i], i);
}

TEST(ScalableHeapTest, AllocFreeReuseRoundTrip) {
  ScalableHeap heap;
  std::vector<void*> ps;
  for (int i = 0; i < 100; ++i) ps.push_back(heap.allocate(48));
  for (void* p : ps) heap.deallocate(p);
  for (int i = 0; i < 100; ++i) heap.deallocate(heap.allocate(48));
  const ScalableHeapStats s = heap.stats();
  EXPECT_EQ(s.allocations, 200u);
  EXPECT_EQ(s.frees, 200u);
  EXPECT_GT(s.reuse_hits, 0u);
  EXPECT_EQ(s.slab_carves, 1u);
  EXPECT_EQ(s.live_chunks, 1u);
}

TEST(ScalableHeapTest, SizedDeleteMismatchCountedMetadataWins) {
  ScalableHeap heap;
  void* p = heap.allocate(40);  // class 48
  EXPECT_EQ(heap.lookup_block_size(p), 48u);
  // Caller lies about the size: the slab metadata wins — the block goes
  // back to class 48, not class 1024 — and the lie is counted.
  heap.deallocate(p, 1000);
  EXPECT_EQ(heap.stats().size_mismatches, 1u);
  EXPECT_EQ(heap.stats().frees, 1u);
  // The block really rejoined its home class: same-class alloc reuses it.
  EXPECT_EQ(heap.allocate(40), p);
  // A truthful hint (any size rounding to the same class) is not a
  // mismatch; neither is the "size unknown" sentinel 0.
  heap.deallocate(p, 33);
  void* q = heap.allocate(48);
  heap.deallocate(q, 0);
  EXPECT_EQ(heap.stats().size_mismatches, 1u);
  EXPECT_EQ(heap.stats().frees, 3u);
}

TEST(ScalableHeapTest, LargeAllocationsBypassChunks) {
  ScalableHeap heap;
  void* p = heap.allocate(8192);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(heap.lookup_block_size(p), 0u);  // not a chunk block
  heap.deallocate(p, 8192);
  const ScalableHeapStats s = heap.stats();
  EXPECT_EQ(s.large_allocs, 1u);
  EXPECT_EQ(s.large_frees, 1u);
  EXPECT_EQ(s.allocations, 0u);  // small-path counters untouched
  EXPECT_EQ(s.live_chunks, 0u);
}

TEST(ScalableHeapTest, LookupRejectsForeignPointers) {
  ScalableHeap heap;
  int on_stack = 0;
  EXPECT_EQ(heap.lookup_block_size(&on_stack), 0u);
}

TEST(ScalableHeapTest, QuarantineDelaysReuseAndDetectsDamage) {
  ScalableHeap heap(ScalableHeapConfig{.quarantine_bytes = 256});
  auto* p = static_cast<unsigned char*>(heap.allocate(64));
  heap.deallocate(p);
  // Parked, poisoned, not yet reusable: the next allocation is a
  // different block.
  EXPECT_NE(heap.allocate(64), p);
  EXPECT_EQ(heap.stats().quarantined_bytes, 64u);
  EXPECT_EQ(p[13], ScalableHeap::kQuarantinePoison);
  // Write-after-free into the parked block: detected when it drains.
  p[13] = 0xAA;
  std::vector<void*> churn;
  for (int i = 0; i < 8; ++i) churn.push_back(heap.allocate(64));
  for (void* q : churn) heap.deallocate(q);
  const ScalableHeapStats s = heap.stats();
  EXPECT_EQ(s.quarantine_poison_damage, 1u);
  EXPECT_LE(s.quarantined_bytes, 256u);
}

TEST(ScalableHeapTest, RemoteFreeMessagePassingRoundTrip) {
  // Directed remote-free protocol check with one full 4096-byte slab (16
  // blocks per chunk): the worker drains exactly the blocks the main
  // thread message-passed back, and no second chunk is ever carved.
  ScalableHeap heap;
  constexpr int kBlocks = 16;
  std::vector<void*> blocks;
  std::set<void*> first_round;

  std::mutex mu;
  std::condition_variable cv;
  int stage = 0;  // 0: worker filling, 1: main freeing, 2: worker refilling

  std::thread worker([&] {
    {
      std::unique_lock<std::mutex> lock(mu);
      for (int i = 0; i < kBlocks; ++i) blocks.push_back(heap.allocate(4096));
      stage = 1;
      cv.notify_all();
      cv.wait(lock, [&] { return stage == 2; });
    }
    // The free list ran dry (the slab holds exactly kBlocks), so these
    // allocations are served by draining the remote stack.
    for (int i = 0; i < kBlocks; ++i) {
      void* p = heap.allocate(4096);
      EXPECT_EQ(first_round.count(p), 1u);
      heap.deallocate(p);
    }
  });

  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return stage == 1; });
    first_round.insert(blocks.begin(), blocks.end());
    for (void* p : blocks) heap.deallocate(p);  // all remote: worker owns them
    stage = 2;
    cv.notify_all();
  }
  worker.join();

  const ScalableHeapStats s = heap.stats();
  EXPECT_EQ(s.remote_frees, static_cast<std::uint64_t>(kBlocks));
  EXPECT_GE(s.remote_drains, 1u);
  EXPECT_EQ(s.remote_drained_blocks, static_cast<std::uint64_t>(kBlocks));
  EXPECT_EQ(s.live_chunks, 1u);
  EXPECT_EQ(s.allocations, static_cast<std::uint64_t>(2 * kBlocks));
}

TEST(ScalableHeapTest, ThreadExitOrphansAndMainAdopts) {
  // The thread-exit regression: a worker dies holding carved chunks and a
  // populated free list; late frees against the dead owner must neither
  // crash nor leak, and the next thread that runs dry adopts the orphans
  // instead of carving fresh memory.
  ScalableHeap heap;
  std::vector<void*> live;
  std::thread worker([&] {
    std::vector<void*> mine;
    for (int i = 0; i < 200; ++i) mine.push_back(heap.allocate(64));
    for (int i = 0; i < 100; ++i) {  // half freed locally -> donated list
      heap.deallocate(mine.back());
      mine.pop_back();
    }
    live = mine;  // half still live when the thread exits
  });
  worker.join();  // thread_local destructor retired the worker's LocalHeap

  ScalableHeapStats s = heap.stats();
  EXPECT_EQ(s.thread_retires, 1u);
  const std::uint64_t carved_by_worker = s.live_chunks;
  EXPECT_GE(carved_by_worker, 1u);

  // Late frees against the dead owner: routed to the orphaned chunks'
  // remote stacks (owner id 0 matches no live thread).
  for (void* p : live) heap.deallocate(p);
  s = heap.stats();
  EXPECT_EQ(s.frees, 200u);
  EXPECT_GE(s.remote_frees, static_cast<std::uint64_t>(live.size()));

  // Main runs the class dry -> adopts the donated lists and orphan chunks
  // (including the parked late frees) without carving a single new chunk.
  std::vector<void*> adopted;
  for (int i = 0; i < 200; ++i) adopted.push_back(heap.allocate(64));
  s = heap.stats();
  EXPECT_GE(s.orphan_adoptions, 1u);
  EXPECT_EQ(s.live_chunks, carved_by_worker);
  for (void* p : adopted) heap.deallocate(p);
}

TEST(ScalableHeapTest, RetireCurrentThreadYieldsFreshLocalHeap) {
  ScalableHeap heap;
  void* p = heap.allocate(64);
  heap.deallocate(p);
  heap.retire_current_thread();
  EXPECT_EQ(heap.stats().thread_retires, 1u);
  // Allocation keeps working on a fresh LocalHeap, which adopts the
  // retired one's donations rather than carving anew.
  void* q = heap.allocate(64);
  ASSERT_NE(q, nullptr);
  heap.deallocate(q);
  const ScalableHeapStats s = heap.stats();
  EXPECT_GE(s.orphan_adoptions, 1u);
  EXPECT_EQ(s.live_chunks, 1u);
  EXPECT_EQ(s.allocations, 2u);
  EXPECT_EQ(s.frees, 2u);
}

// ---------------------------------------------------------------- stress

// Producer/consumer churn: producers allocate mixed classes and either
// free locally or hand the pointer to a consumer, which frees it remotely
// (every consumer free crosses threads). Runs under the full-suite TSan
// CI job, which is the real assertion: the MPSC remote stacks, the
// quarantine, and the orphan protocol are data-race-free under fire.
void churn(const ScalableHeapConfig& cfg, int producers, int iters,
           bool midlife_retires) {
  ScalableHeap heap(cfg);
  struct Mailbox {
    std::mutex mu;
    std::vector<void*> q;
    bool done = false;
  };
  const int consumers = 2;
  std::vector<Mailbox> boxes(consumers);

  std::vector<std::thread> threads;
  for (int c = 0; c < consumers; ++c) {
    threads.emplace_back([&, c] {
      Mailbox& box = boxes[c];
      std::vector<void*> batch;
      for (;;) {
        {
          std::lock_guard<std::mutex> lock(box.mu);
          batch.swap(box.q);
          if (batch.empty() && box.done) return;
        }
        // Alternate between "size unknown" and a truthful hint — neither
        // may count as a mismatch.
        for (std::size_t i = 0; i < batch.size(); ++i) {
          const std::size_t hint =
              i % 2 == 0 ? 0 : heap.lookup_block_size(batch[i]);
          heap.deallocate(batch[i], hint);
        }
        batch.clear();
      }
    });
  }
  // Concurrent stats reader: ScalableHeapStats promises to be safe to
  // aggregate while every other thread allocates (it is what lets
  // polar_stats export the heap section live). TSan arbitrates the
  // promise; no cross-counter assertions here because counters read
  // mid-operation may be transiently skewed relative to each other.
  std::atomic<bool> stop_reader{false};
  std::thread reader([&] {
    while (!stop_reader.load(std::memory_order_relaxed)) {
      (void)heap.stats();
    }
  });

  std::atomic<int> producers_left{producers};
  for (int t = 0; t < producers; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      const std::size_t sizes[] = {16, 48, 64, 129, 256, 1024};
      for (int i = 0; i < iters; ++i) {
        void* p = heap.allocate(sizes[rng.below(std::size(sizes))]);
        std::memset(p, 0xab, 8);  // touch it like a real caller would
        if (rng.below(4) == 0) {
          heap.deallocate(p);  // same-thread fast path
        } else {
          Mailbox& box = boxes[rng.below(consumers)];
          std::lock_guard<std::mutex> lock(box.mu);
          box.q.push_back(p);
        }
        if (midlife_retires && i > 0 && i % (iters / 4) == 0) {
          // Die mid-flight: chunks orphan while consumers are still
          // freeing into them; the next allocation adopts or carves.
          heap.retire_current_thread();
        }
      }
      if (producers_left.fetch_sub(1) == 1) {
        for (Mailbox& box : boxes) {
          std::lock_guard<std::mutex> lock(box.mu);
          box.done = true;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  stop_reader.store(true, std::memory_order_relaxed);
  reader.join();

  const ScalableHeapStats s = heap.stats();
  const auto expected =
      static_cast<std::uint64_t>(producers) * static_cast<std::uint64_t>(iters);
  EXPECT_EQ(s.allocations, expected);
  EXPECT_EQ(s.frees, expected);
  EXPECT_GT(s.remote_frees, 0u);
  EXPECT_EQ(s.size_mismatches, 0u);
  EXPECT_EQ(s.quarantine_poison_damage, 0u);
  // Structural invariants (the same ones polar_stats --selfcheck enforces
  // on the exported heap section).
  EXPECT_LE(s.frees, s.allocations);
  EXPECT_LE(s.reuse_hits, s.allocations);
  EXPECT_LE(s.remote_drained_blocks, s.remote_frees);
  EXPECT_LE(s.large_frees, s.large_allocs);
}

TEST(ScalableStress, ProducerConsumerChurn) {
  churn(ScalableHeapConfig{}, 4, 4000, /*midlife_retires=*/false);
}

TEST(ScalableStress, ProducerConsumerChurnWithQuarantine) {
  churn(ScalableHeapConfig{.quarantine_bytes = 16 * 1024}, 4, 4000,
        /*midlife_retires=*/false);
}

TEST(ScalableStress, ChurnSurvivesMidLifeThreadRetires) {
  churn(ScalableHeapConfig{.quarantine_bytes = 4 * 1024}, 4, 4000,
        /*midlife_retires=*/true);
}

}  // namespace
}  // namespace polar
