// The violation-policy engine and the self-checking metadata layer:
// per-class actions, structured reports, rate-limited escalation, checksum
// verification of the runtime's own records, graceful OOM, and the
// last_violation() contract of every legacy olr_* wrapper.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/runtime.h"
#include "core/session.h"

namespace polar {
namespace {

TypeId make_people(TypeRegistry& reg) {
  return TypeBuilder(reg, "People")
      .fn_ptr("vtable")
      .field<int>("age")
      .field<int>("height")
      .build();
}

// ------------------------------------------------------------- to_string

TEST(ViolationToString, CoversEveryEnumerator) {
  std::vector<std::string> seen;
  for (std::size_t i = 0; i < kViolationClassCount; ++i) {
    const std::string s = to_string(static_cast<Violation>(i));
    EXPECT_FALSE(s.empty());
    EXPECT_EQ(s.find('?'), std::string::npos) << "unnamed enumerator " << i;
    EXPECT_EQ(std::count(seen.begin(), seen.end(), s), 0) << s << " repeats";
    seen.push_back(s);
  }
  EXPECT_STREQ(to_string(Violation::kMetadataDamaged), "metadata-damaged");
  EXPECT_STREQ(to_string(Violation::kOom), "out-of-memory");
}

TEST(ViolationToString, ActionAndOpNames) {
  EXPECT_STREQ(to_string(ViolationAction::kAbort), "abort");
  EXPECT_STREQ(to_string(ViolationAction::kReport), "report");
  EXPECT_STREQ(to_string(ViolationAction::kQuarantine), "quarantine");
  EXPECT_STREQ(to_string(ViolationAction::kHook), "hook");
  EXPECT_STREQ(to_string(RuntimeOp::kAlloc), "alloc");
  EXPECT_STREQ(to_string(RuntimeOp::kFree), "free");
  EXPECT_STREQ(to_string(RuntimeOp::kFieldAccess), "field-access");
  EXPECT_STREQ(to_string(RuntimeOp::kTypedAccess), "typed-access");
  EXPECT_STREQ(to_string(RuntimeOp::kClone), "clone");
  EXPECT_STREQ(to_string(RuntimeOp::kCopy), "copy");
  EXPECT_STREQ(to_string(RuntimeOp::kCheckTraps), "check-traps");
}

// ------------------------------------------------------ policy value type

TEST(ViolationPolicyValue, DefaultsReportEverything) {
  const ViolationPolicy p;
  for (std::size_t i = 0; i < kViolationClassCount; ++i) {
    EXPECT_EQ(p.action_for(static_cast<Violation>(i)),
              ViolationAction::kReport);
  }
  EXPECT_EQ(p.escalate_after, 0u);
  EXPECT_EQ(p.hook, nullptr);
}

TEST(ViolationPolicyValue, FactoriesAndBuilder) {
  EXPECT_EQ(ViolationPolicy::uniform(ViolationAction::kAbort)
                .action_for(Violation::kOom),
            ViolationAction::kAbort);
  EXPECT_EQ(ViolationPolicy::from_legacy(true),
            ViolationPolicy::uniform(ViolationAction::kAbort));
  EXPECT_EQ(ViolationPolicy::from_legacy(false), ViolationPolicy{});

  ViolationPolicy p;
  p.set(Violation::kTrapDamaged, ViolationAction::kQuarantine)
      .set(Violation::kOom, ViolationAction::kAbort);
  EXPECT_EQ(p.action_for(Violation::kTrapDamaged),
            ViolationAction::kQuarantine);
  EXPECT_EQ(p.action_for(Violation::kOom), ViolationAction::kAbort);
  EXPECT_EQ(p.action_for(Violation::kUseAfterFree), ViolationAction::kReport);
  EXPECT_NE(p, ViolationPolicy{});
}

// ----------------------------------------------------------- PolicyEngine

TEST(PolicyEngine, CountsPerClassAndReturnsConfiguredAction) {
  ViolationPolicy p;
  p.set(Violation::kDoubleFree, ViolationAction::kQuarantine);
  PolicyEngine engine(p);
  ViolationReport r;
  r.violation = Violation::kUseAfterFree;
  EXPECT_EQ(engine.apply(r), ViolationAction::kReport);
  EXPECT_EQ(engine.apply(r), ViolationAction::kReport);
  r.violation = Violation::kDoubleFree;
  EXPECT_EQ(engine.apply(r), ViolationAction::kQuarantine);
  EXPECT_EQ(engine.reports(Violation::kUseAfterFree), 2u);
  EXPECT_EQ(engine.reports(Violation::kDoubleFree), 1u);
  EXPECT_EQ(engine.reports(Violation::kOom), 0u);
  EXPECT_EQ(engine.total_reports(), 3u);
  EXPECT_EQ(engine.escalations(), 0u);
}

TEST(PolicyEngine, EscalatesNthReportOfOneClassToAbort) {
  ViolationPolicy p;
  p.escalate_after = 3;
  PolicyEngine engine(p);
  ViolationReport uaf;
  uaf.violation = Violation::kUseAfterFree;
  ViolationReport df;
  df.violation = Violation::kDoubleFree;
  EXPECT_EQ(engine.apply(uaf), ViolationAction::kReport);
  EXPECT_EQ(engine.apply(uaf), ViolationAction::kReport);
  EXPECT_EQ(engine.apply(df), ViolationAction::kReport);  // other class
  EXPECT_EQ(engine.apply(uaf), ViolationAction::kAbort);  // 3rd of one class
  EXPECT_EQ(engine.escalations(), 1u);
}

TEST(PolicyEngine, HookReceivesTheStructuredReport) {
  struct Seen {
    std::vector<ViolationReport> reports;
  } seen;
  ViolationPolicy p = ViolationPolicy::uniform(ViolationAction::kHook);
  p.on_report(
      [](const ViolationReport& r, void* ctx) {
        static_cast<Seen*>(ctx)->reports.push_back(r);
      },
      &seen);
  PolicyEngine engine(p);
  ViolationReport r;
  r.violation = Violation::kTrapDamaged;
  r.address = &seen;
  r.object_id = 42;
  r.op = RuntimeOp::kFree;
  EXPECT_EQ(engine.apply(r), ViolationAction::kHook);
  ASSERT_EQ(seen.reports.size(), 1u);
  EXPECT_EQ(seen.reports[0].violation, Violation::kTrapDamaged);
  EXPECT_EQ(seen.reports[0].address, &seen);
  EXPECT_EQ(seen.reports[0].object_id, 42u);
  EXPECT_EQ(seen.reports[0].op, RuntimeOp::kFree);
}

// ------------------------------------------------- runtime policy wiring

void* failing_alloc(std::size_t, void*) { return nullptr; }
void nop_free(void*, std::size_t, void*) {}

TEST(RuntimePolicy, OomTravelsAsAValueNotACrash) {
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  RuntimeConfig cfg;
  cfg.alloc_fn = &failing_alloc;
  cfg.free_fn = &nop_free;
  Runtime rt(reg, cfg);

  const Result<ObjRef> r = rt.obj_alloc(people);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Violation::kOom);
  EXPECT_EQ(rt.last_violation(), Violation::kOom);
  EXPECT_EQ(rt.policy_engine().reports(Violation::kOom), 1u);
  EXPECT_EQ(rt.stats().oom_refusals, 1u);
  EXPECT_EQ(rt.live_objects(), 0u);
  EXPECT_EQ(rt.live_layouts(), 0u);  // the drawn layout was released

  rt.clear_violation();
  EXPECT_EQ(rt.olr_malloc(people), nullptr);
  EXPECT_EQ(rt.last_violation(), Violation::kOom);
}

TEST(RuntimePolicy, CloneReportsOomToo) {
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  RuntimeConfig ok_cfg;
  Runtime rt(reg, ok_cfg);
  const Result<ObjRef> obj = rt.obj_alloc(people);
  ASSERT_TRUE(obj.ok());
  // No way to flip the hook mid-run on this runtime, so use a second
  // runtime for the failing clone source — instead verify the olr path on
  // a fresh runtime whose allocator dies after the first allocation.
  struct OneShot {
    int budget = 1;
    static void* alloc(std::size_t size, void* ctx) {
      auto* self = static_cast<OneShot*>(ctx);
      if (self->budget-- <= 0) return nullptr;
      return ::operator new(size);
    }
    static void free(void* p, std::size_t, void*) { ::operator delete(p); }
  } one_shot;
  RuntimeConfig cfg;
  cfg.alloc_fn = &OneShot::alloc;
  cfg.free_fn = &OneShot::free;
  cfg.alloc_ctx = &one_shot;
  Runtime rt2(reg, cfg);
  const Result<ObjRef> first = rt2.obj_alloc(people);
  ASSERT_TRUE(first.ok());
  const Result<ObjRef> clone = rt2.obj_clone(first.value());
  ASSERT_FALSE(clone.ok());
  EXPECT_EQ(clone.error(), Violation::kOom);
  EXPECT_EQ(rt2.policy_engine().reports(Violation::kOom), 1u);
}

TEST(RuntimePolicy, MetadataDamageDetectedAndRecordEvicted) {
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  RuntimeConfig cfg;
  // Metadata-damage detection on the plain field path is a stored-backend
  // contract (stateless never consults the record there) — pin it so a
  // POLAR_BACKEND override can't change what is being asserted.
  cfg.backend = BackendConfig::stored();
  Runtime rt(reg, cfg);
  const Result<ObjRef> obj = rt.obj_alloc(people);
  ASSERT_TRUE(obj.ok());
  ASSERT_TRUE(rt.debug_corrupt_metadata(obj.value().base, 0xffULL));

  const Result<void*> access = rt.obj_field(obj.value(), 1);
  ASSERT_FALSE(access.ok());
  EXPECT_EQ(access.error(), Violation::kMetadataDamaged);
  EXPECT_EQ(rt.last_violation(), Violation::kMetadataDamaged);
  EXPECT_EQ(rt.policy_engine().reports(Violation::kMetadataDamaged), 1u);
  EXPECT_EQ(rt.stats().metadata_faults, 1u);
  // The record is gone: nothing in it could be trusted.
  EXPECT_EQ(rt.inspect(obj.value().base), nullptr);
  EXPECT_EQ(rt.live_objects(), 0u);
}

TEST(RuntimePolicy, MetadataDamageSurfacesOnFreeToo) {
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  RuntimeConfig cfg;
  cfg.backend = BackendConfig::stored();  // checksum verification on free
  Runtime rt(reg, cfg);
  const Result<ObjRef> obj = rt.obj_alloc(people);
  ASSERT_TRUE(obj.ok());
  ASSERT_TRUE(rt.debug_corrupt_metadata(obj.value().base, 0x10ULL));
  const Result<void> freed = rt.obj_free(obj.value());
  ASSERT_FALSE(freed.ok());
  EXPECT_EQ(freed.error(), Violation::kMetadataDamaged);
}

TEST(RuntimePolicy, ChecksumAblationTrustsTheTable) {
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  RuntimeConfig cfg;
  cfg.backend = BackendConfig::stored();
  cfg.backend.options.checksum = false;
  Runtime rt(reg, cfg);
  const Result<ObjRef> obj = rt.obj_alloc(people);
  ASSERT_TRUE(obj.ok());
  // Corrupt a benign mirror field: with verification off the access goes
  // through — the ablation's documented blind spot.
  ASSERT_TRUE(rt.debug_corrupt_metadata(obj.value().base, 0x10ULL));
  EXPECT_TRUE(rt.obj_field(obj.value(), 1).ok());
  EXPECT_EQ(rt.policy_engine().reports(Violation::kMetadataDamaged), 0u);
  // Undo (XOR is involutive) so teardown's trap check stays quiet.
  ASSERT_TRUE(rt.debug_corrupt_metadata(obj.value().base, 0x10ULL));
  EXPECT_TRUE(rt.obj_free(obj.value()).ok());
}

TEST(RuntimePolicy, HealthyRecordsVerifyOnEveryLookupWithoutNoise) {
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  Runtime rt(reg, RuntimeConfig{});
  for (int i = 0; i < 64; ++i) {
    const Result<ObjRef> obj = rt.obj_alloc(people);
    ASSERT_TRUE(obj.ok());
    ASSERT_TRUE(rt.obj_field(obj.value(), 1).ok());
    const Result<ObjRef> dup = rt.obj_clone(obj.value());
    ASSERT_TRUE(dup.ok());
    ASSERT_TRUE(rt.obj_copy(dup.value(), obj.value()).ok());
    ASSERT_TRUE(rt.obj_free(dup.value()).ok());
    ASSERT_TRUE(rt.obj_free(obj.value()).ok());
  }
  EXPECT_EQ(rt.policy_engine().total_reports(), 0u);
}

TEST(RuntimePolicy, QuarantineActionParksTrapDamagedBlocks) {
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  RuntimeConfig cfg;
  // The "stale touch of a parked address is a detected UAF" assertion below
  // is a checked plain-path contract the stateless backend waives.
  cfg.backend = BackendConfig::stored();
  cfg.violation_policy.set(Violation::kTrapDamaged,
                           ViolationAction::kQuarantine);
  Runtime rt(reg, cfg);
  const Result<ObjRef> obj = rt.obj_alloc(people);
  ASSERT_TRUE(obj.ok());
  const ObjectRecord* rec = rt.inspect(obj.value().base);
  ASSERT_NE(rec, nullptr);
  ASSERT_FALSE(rec->layout->traps.empty());
  const TrapRegion& trap = rec->layout->traps.front();
  std::memset(static_cast<unsigned char*>(obj.value().base) + trap.offset,
              0x41, trap.size);

  const Result<void> freed = rt.obj_free(obj.value());
  ASSERT_FALSE(freed.ok());
  EXPECT_EQ(freed.error(), Violation::kTrapDamaged);
  EXPECT_EQ(rt.live_objects(), 0u);  // released from the table...
  EXPECT_EQ(rt.quarantined_blocks(), 1u);  // ...but the memory is parked
  EXPECT_EQ(rt.stats().quarantined_objects, 1u);
  // A stale touch of the parked address is still a detected UAF.
  EXPECT_FALSE(rt.obj_field(obj.value(), 1).ok());

  rt.free_all();
  EXPECT_EQ(rt.quarantined_blocks(), 0u);
}

TEST(RuntimePolicy, CustomPolicyOverridesLegacyKnob) {
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  RuntimeConfig cfg;
  cfg.on_violation = ErrorAction::kAbort;  // would die...
  cfg.violation_policy.set(Violation::kUseAfterFree,
                           ViolationAction::kQuarantine);  // ...but customized
  Runtime rt(reg, cfg);
  void* p = rt.olr_malloc(people);
  rt.olr_free(p);
  EXPECT_EQ(rt.olr_getptr(p, 1), nullptr);  // survives: refused, not abort
  EXPECT_EQ(rt.last_violation(), Violation::kUseAfterFree);
  // Caveat of the deferral rule: a policy "customized" back to all-report
  // equals the default-constructed value, so it still defers to the legacy
  // knob. Callers wanting report-everything set on_violation = kReport.
  EXPECT_EQ(ViolationPolicy{}.set(Violation::kUseAfterFree,
                                  ViolationAction::kReport),
            ViolationPolicy{});
}

TEST(RuntimePolicy, HookPolicyDeliversRuntimeContext) {
  struct Seen {
    std::vector<ViolationReport> reports;
  } seen;
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  RuntimeConfig cfg;
  // Relies on the plain field path refusing a stale handle (stored-only).
  cfg.backend = BackendConfig::stored();
  cfg.violation_policy = ViolationPolicy::uniform(ViolationAction::kHook)
                             .on_report(
                                 [](const ViolationReport& r, void* ctx) {
                                   static_cast<Seen*>(ctx)->reports.push_back(r);
                                 },
                                 &seen);
  Runtime rt(reg, cfg);
  const Result<ObjRef> obj = rt.obj_alloc(people);
  ASSERT_TRUE(obj.ok());
  ASSERT_TRUE(rt.obj_free(obj.value()).ok());
  EXPECT_FALSE(rt.obj_field(obj.value(), 1).ok());
  ASSERT_EQ(seen.reports.size(), 1u);
  EXPECT_EQ(seen.reports[0].violation, Violation::kUseAfterFree);
  EXPECT_EQ(seen.reports[0].address, obj.value().base);
  EXPECT_EQ(seen.reports[0].op, RuntimeOp::kFieldAccess);
}

// ------------------------------------------------ olr_* wrapper contract

class OlrViolationAudit : public ::testing::Test {
 protected:
  OlrViolationAudit() : people_(make_people(reg_)) {
    other_ = TypeBuilder(reg_, "Other").field<int>("x").build();
    rt_ = std::make_unique<Runtime>(reg_, RuntimeConfig{});
  }
  TypeRegistry reg_;
  TypeId people_;
  TypeId other_;
  std::unique_ptr<Runtime> rt_;
};

TEST_F(OlrViolationAudit, EveryFailurePathSetsLastViolation) {
  void* p = rt_->olr_malloc(people_);
  ASSERT_NE(p, nullptr);

  rt_->clear_violation();
  EXPECT_EQ(rt_->olr_getptr(p, 99), nullptr);
  EXPECT_EQ(rt_->last_violation(), Violation::kBadField);

  rt_->clear_violation();
  EXPECT_EQ(rt_->olr_getptr_typed(p, other_, 0), nullptr);
  EXPECT_EQ(rt_->last_violation(), Violation::kTypeMismatch);

  void* q = rt_->olr_malloc(other_);
  rt_->clear_violation();
  EXPECT_FALSE(rt_->olr_memcpy(p, q));  // historic contract: kBadField
  EXPECT_EQ(rt_->last_violation(), Violation::kBadField);
  rt_->olr_free(q);

  rt_->olr_free(p);
  rt_->clear_violation();
  EXPECT_EQ(rt_->olr_getptr(p, 1), nullptr);
  EXPECT_EQ(rt_->last_violation(), Violation::kUseAfterFree);

  rt_->clear_violation();
  EXPECT_EQ(rt_->olr_clone(p), nullptr);
  EXPECT_EQ(rt_->last_violation(), Violation::kUseAfterFree);

  rt_->clear_violation();
  EXPECT_FALSE(rt_->check_traps(p));
  EXPECT_EQ(rt_->last_violation(), Violation::kUseAfterFree);

  rt_->clear_violation();
  EXPECT_FALSE(rt_->olr_free(p));
  EXPECT_EQ(rt_->last_violation(), Violation::kDoubleFree);

  int local = 0;
  rt_->clear_violation();
  EXPECT_FALSE(rt_->olr_free(&local));  // foreign pointer
  EXPECT_EQ(rt_->last_violation(), Violation::kDoubleFree);
}

// --------------------------------------------------------- session facade

TEST(SessionPolicy, ExposesEngineCountersAndPolicy) {
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  RuntimeConfig cfg;
  cfg.violation_policy.set(Violation::kTrapDamaged,
                           ViolationAction::kQuarantine);
  Runtime rt(reg, cfg);
  Session session(rt);
  EXPECT_EQ(session.violation_policy().action_for(Violation::kTrapDamaged),
            ViolationAction::kQuarantine);
  const Result<ObjRef> obj = session.create(people);
  ASSERT_TRUE(obj.ok());
  ASSERT_TRUE(session.destroy(obj.value()).ok());
  EXPECT_FALSE(session.destroy(obj.value()).ok());
  EXPECT_EQ(session.violation_reports(Violation::kDoubleFree), 1u);
  EXPECT_EQ(session.violation_reports(Violation::kUseAfterFree), 0u);
}

// ------------------------------------------------------------ death tests

TEST(ViolationPolicyDeath, AbortActionKillsWithViolationName) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  RuntimeConfig cfg;
  cfg.violation_policy = ViolationPolicy::uniform(ViolationAction::kAbort);
  Runtime rt(reg, cfg);
  void* p = rt.olr_malloc(people);
  rt.olr_free(p);
  EXPECT_DEATH((void)rt.olr_getptr(p, 1), "use-after-free");
}

TEST(ViolationPolicyDeath, LegacyAbortKnobStillAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  RuntimeConfig cfg;
  cfg.on_violation = ErrorAction::kAbort;
  Runtime rt(reg, cfg);
  void* p = rt.olr_malloc(people);
  rt.olr_free(p);
  EXPECT_DEATH((void)rt.olr_free(p), "double-free");
}

TEST(ViolationPolicyDeath, EscalationAbortsAfterNReports) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  RuntimeConfig cfg;
  cfg.violation_policy.escalate_after = 3;
  Runtime rt(reg, cfg);
  void* p = rt.olr_malloc(people);
  rt.olr_free(p);
  EXPECT_EQ(rt.olr_getptr(p, 1), nullptr);  // 1st: reported, survives
  EXPECT_EQ(rt.olr_getptr(p, 1), nullptr);  // 2nd: reported, survives
  EXPECT_DEATH((void)rt.olr_getptr(p, 1), "use-after-free");  // 3rd: dies
}

TEST(ViolationPolicyDeath, OomUnderAbortPolicyDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  TypeRegistry reg;
  const TypeId people = make_people(reg);
  RuntimeConfig cfg;
  cfg.alloc_fn = &failing_alloc;
  cfg.free_fn = &nop_free;
  cfg.violation_policy = ViolationPolicy::uniform(ViolationAction::kAbort);
  Runtime rt(reg, cfg);
  EXPECT_DEATH((void)rt.olr_malloc(people), "out-of-memory");
}

}  // namespace
}  // namespace polar
