#include <gtest/gtest.h>

#include "fuzz/fuzzer.h"
#include "workloads/minijpg.h"

namespace polar::minijpg {
namespace {

class MiniJpgTest : public ::testing::Test {
 protected:
  MiniJpgTest() : types_(register_types(reg_)) {}
  TypeRegistry reg_;
  JpgTypes types_;
};

TEST_F(MiniJpgTest, DecodesValidImage) {
  DirectSpace space(reg_);
  const auto file = encode_test_image(32, 24, 5);
  const DecodeResult r = decode(space, types_, file);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.width, 32u);
  EXPECT_EQ(r.height, 24u);
  EXPECT_EQ(r.components, 3u);
  EXPECT_NE(r.sample_hash, 0u);
}

TEST_F(MiniJpgTest, DirectAndPolarAgree) {
  const auto file = encode_test_image(48, 32, 11);
  DirectSpace direct(reg_);
  const DecodeResult a = decode(direct, types_, file);

  RuntimeConfig cfg;
  cfg.on_violation = ErrorAction::kAbort;
  Runtime rt(reg_, cfg);
  PolarSpace polar_space(rt);
  const DecodeResult b = decode(polar_space, types_, file);

  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok) << b.error;
  EXPECT_EQ(a.sample_hash, b.sample_hash);
  EXPECT_EQ(rt.live_objects(), 0u);
}

TEST_F(MiniJpgTest, RejectsMalformedInput) {
  DirectSpace space(reg_);
  EXPECT_FALSE(decode(space, types_, {}).ok);
  const std::vector<std::uint8_t> no_soi{0x00, 0x11};
  EXPECT_FALSE(decode(space, types_, no_soi).ok);
  const std::vector<std::uint8_t> soi_only{0xff, 0xd8};
  EXPECT_FALSE(decode(space, types_, soi_only).ok);
  // Scan before frame header.
  std::vector<std::uint8_t> early_scan{0xff, 0xd8, 0xff, 0xda, 0x00, 0x02};
  EXPECT_FALSE(decode(space, types_, early_scan).ok);
  // Zero components.
  std::vector<std::uint8_t> zero_comp{0xff, 0xd8, 0xff, 0xc0, 0x00, 0x08,
                                      8,    0,    16,   0,    16,  0};
  EXPECT_FALSE(decode(space, types_, zero_comp).ok);
}

TEST_F(MiniJpgTest, FuzzDecoderUnderAbortingPolarRuntime) {
  RuntimeConfig cfg;
  cfg.on_violation = ErrorAction::kAbort;
  Runtime rt(reg_, cfg);
  PolarSpace space(rt);
  Fuzzer fuzzer(
      [&](std::span<const std::uint8_t> in) {
        decode(space, types_, in);
        ASSERT_EQ(rt.live_objects(), 0u);
      },
      Fuzzer::Options{.seed = 29, .max_input_size = 256});
  fuzzer.add_seed(encode_test_image(16, 16, 1));
  for (auto& token : dictionary()) fuzzer.add_dictionary_token(token);
  fuzzer.run(3000);
  EXPECT_GE(fuzzer.stats().features, 10u);
}

TEST_F(MiniJpgTest, TaintClassMatchesPaperCensusMagnitude) {
  // Table I reports 8 tainted object types for libjpeg-turbo.
  TaintDomain domain;
  TaintClassMonitor monitor(reg_);
  TaintClassSpace space(reg_, domain, monitor);
  Fuzzer fuzzer(
      [&](std::span<const std::uint8_t> in) {
        domain.reset_shadow();
        std::vector<std::uint8_t> buf(in.begin(), in.end());
        if (buf.empty()) return;
        domain.taint_input(buf.data(), buf.size(), "jpg file");
        taint_decode(space, types_, buf);
      },
      Fuzzer::Options{.seed = 13, .max_input_size = 192});
  fuzzer.add_seed(encode_test_image(16, 16, 2));
  for (auto& token : dictionary()) fuzzer.add_dictionary_token(token);
  fuzzer.run(8000);
  EXPECT_GE(monitor.tainted_type_count(), 6u);
  EXPECT_LE(monitor.tainted_type_count(), 8u);
}

}  // namespace
}  // namespace polar::minijpg
