#include <gtest/gtest.h>

#include <deque>
#include <set>
#include <vector>

#include "alloc/heap.h"
#include "core/runtime.h"

namespace polar {
namespace {

TEST(SizeClassHeap, ClassRounding) {
  EXPECT_EQ(SizeClassHeap::class_size(1), 16u);
  EXPECT_EQ(SizeClassHeap::class_size(16), 16u);
  EXPECT_EQ(SizeClassHeap::class_size(17), 32u);
  EXPECT_EQ(SizeClassHeap::class_size(256), 256u);
  EXPECT_EQ(SizeClassHeap::class_size(257), 320u);
  EXPECT_EQ(SizeClassHeap::class_size(1024), 1024u);
  EXPECT_EQ(SizeClassHeap::class_size(1025), 1280u);
  EXPECT_EQ(SizeClassHeap::class_size(4096), 4096u);
  EXPECT_EQ(SizeClassHeap::class_size(4097), 0u);  // large path
}

TEST(SizeClassHeap, LifoReuseReturnsLastFreed) {
  // The exploit-friendly behaviour UAF attacks rely on.
  SizeClassHeap heap;
  void* a = heap.allocate(48);
  void* b = heap.allocate(48);
  heap.deallocate(a, 48);
  heap.deallocate(b, 48);
  EXPECT_EQ(heap.peek_next(48), b);
  EXPECT_EQ(heap.allocate(48), b);
  EXPECT_EQ(heap.allocate(48), a);
}

TEST(SizeClassHeap, FifoReuseReturnsFirstFreed) {
  SizeClassHeap heap(HeapConfig{.lifo_reuse = false});
  void* a = heap.allocate(48);
  void* b = heap.allocate(48);
  heap.deallocate(a, 48);
  heap.deallocate(b, 48);
  EXPECT_EQ(heap.allocate(48), a);
  EXPECT_EQ(heap.allocate(48), b);
}

TEST(SizeClassHeap, DifferentClassesDontShareBlocks) {
  SizeClassHeap heap;
  void* a = heap.allocate(16);
  heap.deallocate(a, 16);
  // A 32-byte request must not reuse the 16-byte block.
  EXPECT_NE(heap.allocate(32), a);
}

TEST(SizeClassHeap, QuarantineDelaysReuse) {
  SizeClassHeap heap(HeapConfig{.quarantine_bytes = 1024});
  void* a = heap.allocate(64);
  heap.deallocate(a, 64);
  // Still quarantined: next allocation is fresh memory.
  EXPECT_NE(heap.allocate(64), a);
  // Push enough frees through to evict `a` from quarantine.
  std::vector<void*> blocks;
  for (int i = 0; i < 32; ++i) blocks.push_back(heap.allocate(64));
  for (void* p : blocks) heap.deallocate(p, 64);
  bool reused_a = false;
  for (int i = 0; i < 64 && !reused_a; ++i) reused_a = (heap.allocate(64) == a);
  EXPECT_TRUE(reused_a);
}

TEST(SizeClassHeap, QuarantineDrainKeepsExactByteAccounting) {
  // Regression: the drain loop used to run against the observable stat
  // instead of a dedicated running counter. Mixed-size churn must leave
  // the reported quarantined_bytes exactly equal to the bytes actually
  // parked, never exceed the budget after a drain, and drain oldest-first.
  constexpr std::size_t kBudget = 512;
  SizeClassHeap heap(HeapConfig{.quarantine_bytes = kBudget});
  const std::size_t sizes[] = {16, 48, 64, 128, 256, 48, 16, 320};
  std::size_t expected_held = 0;
  std::deque<std::size_t> parked;  // class-rounded sizes, oldest first
  for (int round = 0; round < 10; ++round) {
    for (std::size_t sz : sizes) {
      void* p = heap.allocate(sz);
      heap.deallocate(p, sz);
      const std::size_t bytes = SizeClassHeap::class_size(sz);
      parked.push_back(bytes);
      expected_held += bytes;
      while (expected_held > kBudget && !parked.empty()) {
        expected_held -= parked.front();  // oldest-first, pop-front only
        parked.pop_front();
      }
      ASSERT_EQ(heap.stats().quarantined_bytes, expected_held);
    }
  }
  // Post-drain the counter respects the budget (the loop stops at <=).
  EXPECT_LE(heap.stats().quarantined_bytes, kBudget);
}

TEST(SizeClassHeap, QuarantineDrainReleasesOldestFirst) {
  // FIFO reuse makes drain order observable: blocks must leave quarantine
  // in the order they entered, regardless of which free triggered a drain.
  SizeClassHeap heap(
      HeapConfig{.lifo_reuse = false, .quarantine_bytes = 128});
  void* a = heap.allocate(64);
  void* b = heap.allocate(64);
  void* c = heap.allocate(64);
  void* d = heap.allocate(64);
  heap.deallocate(a, 64);  // held: a (64)
  heap.deallocate(b, 64);  // held: a b (128)
  heap.deallocate(c, 64);  // 192 > 128 -> a drains
  heap.deallocate(d, 64);  // 192 > 128 -> b drains
  EXPECT_EQ(heap.allocate(64), a);
  EXPECT_EQ(heap.allocate(64), b);
  EXPECT_EQ(heap.stats().quarantined_bytes, 128u);  // c and d still parked
}

TEST(SizeClassHeap, QuarantinePoisonDetectsWriteAfterFree) {
  SizeClassHeap heap(HeapConfig{.quarantine_bytes = 128});
  void* a = heap.allocate(64);
  heap.deallocate(a, 64);
  // The parked block carries the poison fill.
  EXPECT_EQ(static_cast<unsigned char*>(a)[0], SizeClassHeap::kQuarantinePoison);
  // A dangling write lands in quarantined memory...
  static_cast<unsigned char*>(a)[5] = 0x42;
  // ...and is counted the moment the block drains.
  std::vector<void*> blocks;
  for (int i = 0; i < 8; ++i) blocks.push_back(heap.allocate(64));
  for (void* p : blocks) heap.deallocate(p, 64);
  EXPECT_EQ(heap.stats().quarantine_poison_damage, 1u);
}

TEST(SizeClassHeap, QuarantinePoisonSilentWhenUntouched) {
  SizeClassHeap heap(HeapConfig{.quarantine_bytes = 64});
  for (int i = 0; i < 64; ++i) {
    void* p = heap.allocate(48);
    heap.deallocate(p, 48);  // churn through quarantine, never touch parked
  }
  EXPECT_EQ(heap.stats().quarantine_poison_damage, 0u);
}

TEST(SizeClassHeap, QuarantinePoisonCanBeDisabled) {
  SizeClassHeap heap(
      HeapConfig{.quarantine_bytes = 128, .poison_quarantine = false});
  void* a = heap.allocate(64);
  static_cast<unsigned char*>(a)[0] = 0x7a;
  heap.deallocate(a, 64);
  EXPECT_EQ(static_cast<unsigned char*>(a)[0], 0x7a);  // contents untouched
  static_cast<unsigned char*>(a)[1] = 0x42;
  std::vector<void*> blocks;
  for (int i = 0; i < 8; ++i) blocks.push_back(heap.allocate(64));
  for (void* p : blocks) heap.deallocate(p, 64);
  EXPECT_EQ(heap.stats().quarantine_poison_damage, 0u);
}

TEST(SizeClassHeap, RandomizedReuseIsUnpredictable) {
  SizeClassHeap heap(HeapConfig{.randomize_reuse = true, .seed = 7});
  EXPECT_EQ(heap.peek_next(48), nullptr);  // oracle refuses
  std::vector<void*> blocks;
  for (int i = 0; i < 64; ++i) blocks.push_back(heap.allocate(48));
  for (void* p : blocks) heap.deallocate(p, 48);
  // LIFO would return blocks in exact reverse order; randomized must not.
  int lifo_matches = 0;
  for (int i = 0; i < 64; ++i) {
    if (heap.allocate(48) == blocks[63 - i]) ++lifo_matches;
  }
  EXPECT_LT(lifo_matches, 32);
}

TEST(SizeClassHeap, LargeAllocationsBypassClasses) {
  SizeClassHeap heap;
  void* p = heap.allocate(100000);
  ASSERT_NE(p, nullptr);
  heap.deallocate(p, 100000);
  EXPECT_EQ(heap.stats().reuse_hits, 0u);
}

TEST(SizeClassHeap, StatsTrackReuse) {
  SizeClassHeap heap;
  void* a = heap.allocate(32);
  heap.deallocate(a, 32);
  heap.allocate(32);
  EXPECT_EQ(heap.stats().allocations, 2u);
  EXPECT_EQ(heap.stats().frees, 1u);
  EXPECT_EQ(heap.stats().reuse_hits, 1u);
  EXPECT_GE(heap.stats().slab_refills, 1u);
}

TEST(SizeClassHeap, ManySizesStress) {
  SizeClassHeap heap;
  Rng rng(3);
  std::vector<std::pair<void*, std::size_t>> live;
  for (int step = 0; step < 20000; ++step) {
    if (live.empty() || rng.chance(0.55)) {
      const std::size_t size = 1 + rng.below(6000);
      void* p = heap.allocate(size);
      ASSERT_NE(p, nullptr);
      // Write to the whole block to catch overlap bugs under ASan-less
      // builds via later value checks.
      std::memset(p, 0xcd, size);
      live.emplace_back(p, size);
    } else {
      const std::size_t i = rng.below(live.size());
      heap.deallocate(live[i].first, live[i].second);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }
  for (auto& [p, size] : live) heap.deallocate(p, size);
}

TEST(SizeClassHeap, BlocksDoNotOverlap) {
  SizeClassHeap heap;
  std::vector<void*> blocks;
  for (int i = 0; i < 1000; ++i) blocks.push_back(heap.allocate(40));
  std::set<void*> unique(blocks.begin(), blocks.end());
  EXPECT_EQ(unique.size(), blocks.size());
  // Fill each with a distinct pattern and verify nothing bleeds.
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    std::memset(blocks[i], static_cast<int>(i & 0xff), 40);
  }
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const auto* b = static_cast<unsigned char*>(blocks[i]);
    for (int j = 0; j < 40; ++j) ASSERT_EQ(b[j], static_cast<unsigned char>(i));
  }
}

TEST(HeapRuntimeIntegration, PolarRuntimeOnSizeClassHeap) {
  // The attack-sim wiring: POLaR tracking over deterministic-reuse memory.
  SizeClassHeap heap;
  TypeRegistry reg;
  const TypeId id = TypeBuilder(reg, "Victim")
                        .fn_ptr("handler")
                        .field<std::uint64_t>("user_data")
                        .build();
  RuntimeConfig cfg;
  cfg.alloc_fn = SizeClassHeap::alloc_hook;
  cfg.free_fn = SizeClassHeap::free_hook;
  cfg.alloc_ctx = &heap;
  Runtime rt(reg, cfg);
  void* a = rt.olr_malloc(id);
  rt.store<std::uint64_t>(a, 1, 42);
  EXPECT_EQ(rt.load<std::uint64_t>(a, 1), 42u);
  const std::size_t size_a = rt.inspect(a)->layout->size;
  rt.olr_free(a);
  // Heap reuse gives the same base back, but POLaR re-randomizes: the new
  // object is tracked with a fresh record.
  void* b = rt.olr_malloc(id);
  if (SizeClassHeap::class_size(size_a) ==
      SizeClassHeap::class_size(rt.inspect(b)->layout->size)) {
    EXPECT_EQ(b, a);  // deterministic LIFO reclaim
  }
  EXPECT_NE(rt.inspect(b), nullptr);
  rt.olr_free(b);
  EXPECT_GE(heap.stats().allocations, 2u);
}

}  // namespace
}  // namespace polar
