// The randomization-backend API: BackendConfig validation, the
// stored/stateless/hybrid parity contract (same lifecycle and access
// semantics through the Session surface), stateless determinism (the
// permutation is a pure function of (base, type_seed)), and per-type-class
// backend overrides.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <vector>

#include "core/backend.h"
#include "core/session.h"
#include "core/type_registry.h"

namespace polar {
namespace {

TypeId make_widget(TypeRegistry& reg) {
  return TypeBuilder(reg, "Widget")
      .fn_ptr("vtable")
      .field<std::uint64_t>("value")
      .ptr("next")
      .field<std::uint32_t>("len")
      .field<std::uint32_t>("cap")
      .build();
}

// --- BackendConfig validation ----------------------------------------------

TEST(BackendValidate, StatelessPlusChecksumIsIncoherent) {
  BackendConfig c = BackendConfig::stateless();
  EXPECT_TRUE(c.validate().ok());
  c.options.checksum = true;  // nothing to checksum on the access path
  EXPECT_FALSE(c.validate().ok());
  BackendConfig h = BackendConfig::hybrid();
  EXPECT_TRUE(h.validate().ok());
  h.options.checksum = true;
  EXPECT_FALSE(h.validate().ok());
}

TEST(BackendValidate, ScheduleBitsMustBeInRange) {
  EXPECT_FALSE(BackendConfig::stateless(0).validate().ok());
  EXPECT_TRUE(BackendConfig::stateless(1).validate().ok());
  EXPECT_TRUE(BackendConfig::stateless(16).validate().ok());
  EXPECT_FALSE(BackendConfig::stateless(17).validate().ok());
}

TEST(BackendValidate, DerivedKindsRequireThePagemap) {
  BackendConfig c = BackendConfig::hybrid();
  c.options.pagemap = false;  // liveness mirror lives in the pagemap
  EXPECT_FALSE(c.validate().ok());
}

TEST(BackendValidate, RuntimeConfigRejectsBadTypeOverrides) {
  RuntimeConfig cfg;
  cfg.backend = BackendConfig::stored();
  BackendConfig bad = BackendConfig::stateless();
  bad.options.checksum = true;
  cfg.type_backends.emplace_back("Widget", bad);
  EXPECT_FALSE(cfg.validate().ok());

  cfg.type_backends.clear();
  cfg.type_backends.emplace_back("", BackendConfig::stateless());
  EXPECT_FALSE(cfg.validate().ok());

  // A derived override needs the default backend's pagemap for its
  // liveness registration.
  cfg.type_backends.clear();
  cfg.backend = BackendConfig::stored_hash();
  cfg.type_backends.emplace_back("Widget", BackendConfig::stateless());
  EXPECT_FALSE(cfg.validate().ok());
}

TEST(BackendNames, ParseRoundTripsEveryKind) {
  for (const BackendKind k : {BackendKind::kStored, BackendKind::kStateless,
                              BackendKind::kHybrid}) {
    BackendKind parsed{};
    ASSERT_TRUE(parse_backend(to_string(k), parsed));
    EXPECT_EQ(parsed, k);
  }
  BackendKind parsed{};
  EXPECT_FALSE(parse_backend("quantum", parsed));
  EXPECT_FALSE(parse_backend("", parsed));
}

// --- cross-backend parity ---------------------------------------------------

struct BackendCase {
  const char* name;
  BackendConfig config;
};

class BackendParity : public ::testing::TestWithParam<BackendCase> {};

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BackendParity,
    ::testing::Values(BackendCase{"stored", BackendConfig::stored()},
                      BackendCase{"stateless", BackendConfig::stateless()},
                      BackendCase{"hybrid", BackendConfig::hybrid()}),
    [](const ::testing::TestParamInfo<BackendCase>& info) {
      return info.param.name;
    });

RuntimeConfig parity_config(const BackendCase& c) {
  RuntimeConfig cfg;
  cfg.seed = 0xb4c3ULL;
  cfg.on_violation = ErrorAction::kReport;
  cfg.backend = c.config;
  return cfg;
}

TEST_P(BackendParity, AllocAccessFreeRoundTrips) {
  TypeRegistry reg;
  const TypeId t = make_widget(reg);
  Runtime rt(reg, parity_config(GetParam()));
  Session s(rt);

  std::vector<ObjRef> objs;
  for (int i = 0; i < 64; ++i) {
    const Result<ObjRef> r = s.create(t);
    ASSERT_TRUE(r.ok()) << i;
    objs.push_back(r.value());
    ASSERT_TRUE(s.write<std::uint64_t>(objs.back(), 1, 1000u + i).ok());
    ASSERT_TRUE(
        s.write<std::uint32_t>(objs.back(), 3, static_cast<std::uint32_t>(i))
            .ok());
  }
  EXPECT_EQ(rt.live_objects(), 64u);
  for (int i = 0; i < 64; ++i) {
    const Result<std::uint64_t> v = s.read<std::uint64_t>(objs[i], 1);
    ASSERT_TRUE(v.ok()) << i;
    EXPECT_EQ(v.value(), 1000u + static_cast<std::uint64_t>(i));
    const Result<std::uint32_t> len = s.read<std::uint32_t>(objs[i], 3);
    ASSERT_TRUE(len.ok()) << i;
    EXPECT_EQ(len.value(), static_cast<std::uint32_t>(i));
  }
  // Distinct fields resolve to distinct, in-bounds addresses.
  for (const ObjRef& r : objs) {
    std::set<void*> seen;
    for (std::uint32_t f = 0; f < 5; ++f) {
      const Result<void*> p = s.field(r, f);
      ASSERT_TRUE(p.ok()) << f;
      EXPECT_TRUE(seen.insert(p.value()).second) << f;
      EXPECT_GE(p.value(), r.base);
    }
  }
  for (const ObjRef& r : objs) EXPECT_TRUE(s.destroy(r).ok());
  EXPECT_EQ(rt.live_objects(), 0u);
  const RuntimeStats st = rt.stats();
  EXPECT_EQ(st.allocations, st.frees);
  EXPECT_EQ(rt.policy_engine().total_reports(), 0u);
}

TEST_P(BackendParity, OutOfRangeFieldIsRefused) {
  TypeRegistry reg;
  const TypeId t = make_widget(reg);
  Runtime rt(reg, parity_config(GetParam()));
  Session s(rt);
  const ObjRef r = s.create(t).value();
  const Result<void*> p = s.field(r, 99);
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.error(), Violation::kBadField);
  EXPECT_TRUE(s.destroy(r).ok());
}

TEST_P(BackendParity, DoubleFreeIsDetected) {
  TypeRegistry reg;
  const TypeId t = make_widget(reg);
  Runtime rt(reg, parity_config(GetParam()));
  Session s(rt);
  const ObjRef r = s.create(t).value();
  ASSERT_TRUE(s.destroy(r).ok());
  const Result<void> second = s.destroy(r);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(rt.policy_engine().reports(Violation::kDoubleFree) +
                rt.policy_engine().reports(Violation::kUseAfterFree),
            1u);
}

TEST_P(BackendParity, TrapDamageIsDetectedAtRelease) {
  TypeRegistry reg;
  const TypeId t = make_widget(reg);
  Runtime rt(reg, parity_config(GetParam()));
  Session s(rt);
  const ObjRef r = s.create(t).value();
  const ObjectRecord rec = s.describe(r).value();
  ASSERT_FALSE(rec.layout->traps.empty());
  static_cast<unsigned char*>(r.base)[rec.layout->traps.front().offset] ^= 0xff;
  const Result<void> freed = s.destroy(r);
  EXPECT_FALSE(freed.ok());
  EXPECT_EQ(rt.policy_engine().reports(Violation::kTrapDamaged), 1u);
  EXPECT_EQ(rt.live_objects(), 0u);  // still released
}

TEST_P(BackendParity, TypedAccessDetectsStaleHandles) {
  // obj_field_typed opts back into metadata consultation even under the
  // stateless backend — strictness is the caller's choice, and the
  // liveness gate comes with it.
  TypeRegistry reg;
  const TypeId t = make_widget(reg);
  Runtime rt(reg, parity_config(GetParam()));
  Session s(rt);
  const ObjRef r = s.create(t).value();
  ASSERT_TRUE(s.field_typed(r, t, 1).ok());
  ASSERT_TRUE(s.destroy(r).ok());
  const Result<void*> stale = s.field_typed(r, t, 1);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.error(), Violation::kUseAfterFree);
}

TEST_P(BackendParity, CloneAndCopyPreserveFieldValues) {
  TypeRegistry reg;
  const TypeId t = make_widget(reg);
  Runtime rt(reg, parity_config(GetParam()));
  Session s(rt);
  const ObjRef a = s.create(t).value();
  ASSERT_TRUE(s.write<std::uint64_t>(a, 1, 0xfeedULL).ok());
  ASSERT_TRUE(s.write<std::uint32_t>(a, 4, 77u).ok());

  const Result<ObjRef> b = s.clone(a);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(s.read<std::uint64_t>(b.value(), 1).value(), 0xfeedULL);
  EXPECT_EQ(s.read<std::uint32_t>(b.value(), 4).value(), 77u);

  const ObjRef c = s.create(t).value();
  ASSERT_TRUE(s.copy(c, a).ok());
  EXPECT_EQ(s.read<std::uint64_t>(c, 1).value(), 0xfeedULL);

  for (const ObjRef& r : {a, b.value(), c}) EXPECT_TRUE(s.destroy(r).ok());
  EXPECT_EQ(rt.policy_engine().total_reports(), 0u);
}

// --- stateless determinism --------------------------------------------------

TEST(StatelessDeterminism, SameBaseAndSeedGiveTheSamePermutation) {
  TypeRegistry reg;
  const TypeId t = make_widget(reg);
  const TypeInfo& info = reg.info(t);
  const std::uint64_t seed = derive_type_seed(42, info.class_hash);

  const StatelessSchedule a(info, LayoutPolicy{}, seed, 8);
  const StatelessSchedule b(info, LayoutPolicy{}, seed, 8);
  ASSERT_EQ(a.entries(), b.entries());
  ASSERT_EQ(a.alloc_size(), b.alloc_size());
  // Probe synthetic addresses: never dereferenced, only hashed.
  for (std::uintptr_t base = 0x1000; base < 0x1000 + 4096; base += 64) {
    const void* p = reinterpret_cast<const void*>(base);
    ASSERT_EQ(a.index_of(p), b.index_of(p));
    for (std::uint32_t f = 0; f < a.field_count(); ++f) {
      ASSERT_EQ(a.offset_of(p, f), b.offset_of(p, f)) << base << "/" << f;
    }
  }
}

TEST(StatelessDeterminism, DifferentSeedsGiveDifferentAddressMaps) {
  TypeRegistry reg;
  const TypeId t = make_widget(reg);
  const TypeInfo& info = reg.info(t);
  const StatelessSchedule a(info, LayoutPolicy{}, 0x1111, 8);
  const StatelessSchedule b(info, LayoutPolicy{}, 0x2222, 8);
  std::size_t differing = 0;
  for (std::uintptr_t base = 0x1000; base < 0x1000 + 8192; base += 64) {
    const void* p = reinterpret_cast<const void*>(base);
    differing += a.index_of(p) != b.index_of(p) ? 1 : 0;
  }
  // The keyed hash should disagree on nearly every address.
  EXPECT_GT(differing, 100u);
}

TEST(StatelessDeterminism, TwoSameSeedRuntimesLayOutTheSameAddressesAlike) {
  // End-to-end: two runtimes with the same seed and a shared deterministic
  // arena produce byte-identical field placement for identical bases.
  struct Arena {
    alignas(64) unsigned char bytes[1 << 16];
    std::size_t used = 0;
    static void* alloc(std::size_t size, void* ctx) {
      auto* a = static_cast<Arena*>(ctx);
      const std::size_t at = (a->used + 63) & ~std::size_t{63};
      if (at + size > sizeof(a->bytes)) return nullptr;
      a->used = at + size;
      return a->bytes + at;
    }
    static void free(void*, std::size_t, void*) {}
  };

  const auto offsets_of = [](Arena& arena) {
    TypeRegistry reg;
    const TypeId t = make_widget(reg);
    RuntimeConfig cfg;
    cfg.seed = 99;
    cfg.backend = BackendConfig::stateless();
    cfg.alloc_fn = &Arena::alloc;
    cfg.free_fn = &Arena::free;
    cfg.alloc_ctx = &arena;
    Runtime rt(reg, cfg);
    Session s(rt);
    std::vector<std::uintptr_t> out;
    std::vector<ObjRef> objs;
    for (int i = 0; i < 16; ++i) {
      objs.push_back(s.create(t).value());
      for (std::uint32_t f = 0; f < 5; ++f) {
        out.push_back(reinterpret_cast<std::uintptr_t>(
                          s.field(objs.back(), f).value()) -
                      reinterpret_cast<std::uintptr_t>(objs.back().base));
      }
    }
    for (const ObjRef& r : objs) (void)s.destroy(r);
    return out;
  };

  auto arena1 = std::make_unique<Arena>();
  auto arena2 = std::make_unique<Arena>();
  const std::vector<std::uintptr_t> first = offsets_of(*arena1);
  std::vector<std::uintptr_t> second = offsets_of(*arena2);
  // Identical bases only if both arenas start at the same address — they
  // don't, so compare via schedule determinism instead: same arena reused
  // from scratch gives identical bases and must give identical offsets.
  arena1->used = 0;
  second = offsets_of(*arena1);
  EXPECT_EQ(first, second);
}

TEST(StatelessSchedules, EntriesArePaddedToACommonSize) {
  TypeRegistry reg;
  const TypeId t = make_widget(reg);
  const TypeInfo& info = reg.info(t);
  const StatelessSchedule sch(info, LayoutPolicy{}, 0xabc, 6);
  EXPECT_EQ(sch.entries(), std::size_t{1} << 6);
  EXPECT_GT(sch.distinct_layouts(), 1u);
  EXPECT_GE(sch.alloc_size(), info.natural_size);
  for (std::uintptr_t base = 0x40; base < 0x40 + (1 << 12); base += 8) {
    const void* p = reinterpret_cast<const void*>(base);
    const Layout& l = sch.layout_for(p);
    EXPECT_EQ(l.size, sch.alloc_size());
    for (std::uint32_t f = 0; f < sch.field_count(); ++f) {
      EXPECT_LT(sch.offset_of(p, f), sch.alloc_size());
    }
  }
}

// --- per-type-class overrides ----------------------------------------------

TEST(TypeBackends, PerTypeOverrideSelectsTheBackendPerClass) {
  TypeRegistry reg;
  const TypeId widget = make_widget(reg);
  const TypeId plain = TypeBuilder(reg, "Plain")
                           .field<std::uint64_t>("x")
                           .field<std::uint64_t>("y")
                           .build();
  RuntimeConfig cfg;
  cfg.seed = 7;
  cfg.backend = BackendConfig::stored();
  cfg.type_backends.emplace_back("Widget", BackendConfig::stateless());
  ASSERT_TRUE(cfg.validate().ok());
  Runtime rt(reg, cfg);

  EXPECT_EQ(rt.backend_kind(widget), BackendKind::kStateless);
  EXPECT_EQ(rt.backend_kind(plain), BackendKind::kStored);
  EXPECT_NE(rt.schedule(widget), nullptr);
  EXPECT_EQ(rt.schedule(plain), nullptr);

  Session s(rt);
  const ObjRef w = s.create(widget).value();
  const ObjRef p = s.create(plain).value();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(s.field(w, 1).ok());
    ASSERT_TRUE(s.field(p, 1).ok());
  }
  const RuntimeStats st = rt.stats();
  EXPECT_GE(st.stateless_accesses, 8u);  // widget accesses took the schedule
  (void)s.destroy(w);
  (void)s.destroy(p);
}

TEST(TypeBackends, HybridAccessesAreCountedSeparately) {
  TypeRegistry reg;
  const TypeId t = make_widget(reg);
  RuntimeConfig cfg;
  cfg.backend = BackendConfig::hybrid();
  Runtime rt(reg, cfg);
  Session s(rt);
  const ObjRef r = s.create(t).value();
  for (int i = 0; i < 16; ++i) ASSERT_TRUE(s.field(r, 2).ok());
  EXPECT_GE(rt.stats().hybrid_accesses, 16u);
  EXPECT_EQ(rt.stats().stateless_accesses, 0u);
  (void)s.destroy(r);
}

TEST(TypeBackends, HybridRefusesStaleUntypedAccess) {
  // The hybrid liveness gate works even through the plain (untyped-check)
  // obj_field path: a destroyed handle must not yield a pointer.
  TypeRegistry reg;
  const TypeId t = make_widget(reg);
  RuntimeConfig cfg;
  cfg.backend = BackendConfig::hybrid();
  Runtime rt(reg, cfg);
  Session s(rt);
  const ObjRef r = s.create(t).value();
  ASSERT_TRUE(s.field(r, 1).ok());
  ASSERT_TRUE(s.destroy(r).ok());
  const Result<void*> stale = s.field(r, 1);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.error(), Violation::kUseAfterFree);
}

}  // namespace
}  // namespace polar
