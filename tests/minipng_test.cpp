#include <gtest/gtest.h>

#include <algorithm>

#include "fuzz/fuzzer.h"
#include "workloads/minipng.h"

namespace polar::minipng {
namespace {

class MiniPngTest : public ::testing::Test {
 protected:
  MiniPngTest() : types_(register_types(reg_)) {}
  TypeRegistry reg_;
  PngTypes types_;
};

TEST_F(MiniPngTest, DecodesValidImageDirect) {
  DirectSpace space(reg_);
  const auto file = encode_test_image(48, 16, 3);
  const DecodeResult r = decode(space, types_, file);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.width, 48u);
  EXPECT_EQ(r.height, 16u);
  EXPECT_NE(r.pixel_hash, 0u);
  EXPECT_EQ(r.corrupt_writes, 0u);
}

TEST_F(MiniPngTest, DirectAndPolarProduceIdenticalResults) {
  // The paper's §V-A compatibility claim, for this decoder.
  const auto file = encode_test_image(64, 24, 9);
  DirectSpace direct(reg_);
  const DecodeResult a = decode(direct, types_, file);

  RuntimeConfig cfg;
  cfg.on_violation = ErrorAction::kAbort;
  Runtime rt(reg_, cfg);
  PolarSpace polar_space(rt);
  const DecodeResult b = decode(polar_space, types_, file);

  EXPECT_TRUE(a.ok);
  EXPECT_TRUE(b.ok) << b.error;
  EXPECT_EQ(a.pixel_hash, b.pixel_hash);
  EXPECT_EQ(a.width, b.width);
  EXPECT_EQ(rt.live_objects(), 0u);
  EXPECT_EQ(rt.stats().traps_triggered, 0u);
}

TEST_F(MiniPngTest, RejectsMalformedInputsCleanly) {
  DirectSpace space(reg_);
  const std::vector<std::vector<std::uint8_t>> bad = {
      {},                          // empty
      {'m', 'P', 'N', 'G'},        // magic only
      {'x', 'y', 'z', 'w', 1, 2},  // wrong magic
  };
  for (const auto& input : bad) {
    const DecodeResult r = decode(space, types_, input);
    EXPECT_FALSE(r.ok);
    EXPECT_FALSE(r.error.empty());
  }
  // Oversized dimensions rejected.
  auto file = encode_test_image(8, 8, 1);
  file[8 + 0] = 0xff;  // width -> huge (little-endian u32 at IHDR payload)
  file[8 + 1] = 0xff;
  EXPECT_FALSE(decode(space, types_, file).ok);
}

TEST_F(MiniPngTest, FuzzDecoderNeverCrashesOrLeaks) {
  // 3000 mutated inputs through the full decoder under the strict
  // (aborting) POLaR runtime: any layout bug would die loudly here.
  RuntimeConfig cfg;
  cfg.on_violation = ErrorAction::kAbort;
  Runtime rt(reg_, cfg);
  PolarSpace space(rt);
  Fuzzer fuzzer(
      [&](std::span<const std::uint8_t> in) {
        decode(space, types_, in);
        ASSERT_EQ(rt.live_objects(), 0u);
      },
      Fuzzer::Options{.seed = 31, .max_input_size = 256});
  fuzzer.add_seed(encode_test_image(16, 4, 1));
  for (auto& tokens : dictionary()) fuzzer.add_dictionary_token(tokens);
  fuzzer.run(3000);
  EXPECT_GE(fuzzer.stats().features, 10u);
}

TEST_F(MiniPngTest, PaletteOverflowBugCorruptsUnderDirectDetectedUnderPolar) {
  // Craft a PLTE chunk with 40 entries (120 bytes > the 48-byte palette
  // field) and enable the CVE-2015-8126 analog.
  std::vector<std::uint8_t> file = encode_test_image(8, 4, 2);
  // Find the PLTE chunk and rewrite it bigger: easier to build fresh.
  std::vector<std::uint8_t> big{'m', 'P', 'N', 'G'};
  const auto put32 = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      big.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  put32(10);
  big.insert(big.end(), {'I', 'H', 'D', 'R'});
  put32(8);
  put32(4);
  big.push_back(8);
  big.push_back(3);
  put32(120);
  big.insert(big.end(), {'P', 'L', 'T', 'E'});
  for (int i = 0; i < 120; ++i) big.push_back(0x41);
  put32(0);
  big.insert(big.end(), {'I', 'E', 'N', 'D'});

  // Direct build: silent in-object corruption.
  DirectSpace direct(reg_);
  const DecodeResult a =
      decode(direct, types_, big, bug(Bug::kPaletteOverflow2015_8126));
  EXPECT_TRUE(a.ok) << a.error;
  EXPECT_GT(a.corrupt_writes, 0u);

  // POLaR build: booby traps catch the spill. Whether a given layout puts
  // a trap inside the spilled window is probabilistic, so aggregate over
  // several runtime seeds.
  std::uint64_t traps = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    RuntimeConfig cfg;
    cfg.on_violation = ErrorAction::kReport;
    cfg.seed = seed;
    Runtime rt(reg_, cfg);
    PolarSpace polar_space(rt);
    decode(polar_space, types_, big, bug(Bug::kPaletteOverflow2015_8126));
    traps += rt.stats().traps_triggered;
  }
  EXPECT_GT(traps, 0u);

  // Without the bug the same input is rejected.
  EXPECT_FALSE(decode(direct, types_, big).ok);
}

TEST_F(MiniPngTest, TextOverflowBugDetectedUnderPolar) {
  std::vector<std::uint8_t> file{'m', 'P', 'N', 'G'};
  const auto put32 = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      file.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  put32(10);
  file.insert(file.end(), {'I', 'H', 'D', 'R'});
  put32(8);
  put32(4);
  file.push_back(8);
  file.push_back(0);
  put32(40);  // 40-byte keyword, no NUL -> overflows the 16-byte key field
  file.insert(file.end(), {'t', 'E', 'X', 't'});
  for (int i = 0; i < 40; ++i) file.push_back('K');
  put32(0);
  file.insert(file.end(), {'I', 'E', 'N', 'D'});

  // png_text.free_fn is pointer-kind, so a booby trap guards it; whether
  // the 40-byte keyword spill crosses that trap depends on the drawn
  // layout, so aggregate over seeds.
  std::uint64_t traps = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    RuntimeConfig cfg;
    cfg.on_violation = ErrorAction::kReport;
    cfg.seed = seed;
    Runtime rt(reg_, cfg);
    PolarSpace space(rt);
    decode(space, types_, file, bug(Bug::kTextOverflow2011_3048));
    traps += rt.stats().traps_triggered;
  }
  EXPECT_GT(traps, 0u);
  // Clean build rejects the file instead.
  DirectSpace direct(reg_);
  EXPECT_FALSE(decode(direct, types_, file).ok);
}

TEST_F(MiniPngTest, IntOverflowBugTruncatesRecordedSize) {
  std::vector<std::uint8_t> file{'m', 'P', 'N', 'G'};
  const auto put32 = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      file.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  put32(10);
  file.insert(file.end(), {'I', 'H', 'D', 'R'});
  put32(8);
  put32(4);
  file.push_back(8);
  file.push_back(0);
  put32(65536 + 3);  // declared; payload shorter (cursor zero-fills)
  file.insert(file.end(), {'n', 'O', 'T', 'E'});
  file.insert(file.end(), {1, 2, 3});
  put32(0);
  file.insert(file.end(), {'I', 'E', 'N', 'D'});

  DirectSpace direct(reg_);
  const DecodeResult buggy =
      decode(direct, types_, file, bug(Bug::kIntOverflow2013_7353));
  const DecodeResult clean = decode(direct, types_, file);
  // The truncated size changes the observable result.
  EXPECT_NE(buggy.pixel_hash, clean.pixel_hash);
}

TEST_F(MiniPngTest, TaintClassFindsTableIvObjects) {
  // The §V-C evaluation: fuzz the decoder under TaintClass and verify the
  // report covers every exploit-related object of every CVE case.
  TaintDomain domain;
  TaintClassMonitor monitor(reg_);
  TaintClassSpace space(reg_, domain, monitor);

  Fuzzer fuzzer(
      [&](std::span<const std::uint8_t> in) {
        domain.reset_shadow();
        std::vector<std::uint8_t> buf(in.begin(), in.end());
        if (buf.empty()) return;
        domain.taint_input(buf.data(), buf.size(), "png file");
        taint_decode(space, types_, buf);
      },
      Fuzzer::Options{.seed = 17, .max_input_size = 192});
  fuzzer.add_seed(encode_test_image(16, 4, 1));
  fuzzer.add_seed(encode_test_image(32, 8, 2));
  for (auto& token : dictionary()) fuzzer.add_dictionary_token(token);
  fuzzer.run(8000);

  const auto discovered = monitor.randomization_list();
  for (const CveCase& cve : cve_cases()) {
    for (const std::string& obj : cve.exploit_objects) {
      EXPECT_NE(std::find(discovered.begin(), discovered.end(), obj),
                discovered.end())
          << cve.id << " needs " << obj;
    }
  }
  // And the census magnitude matches the paper's libpng row (8 types).
  EXPECT_GE(monitor.tainted_type_count(), 8u);
}

}  // namespace
}  // namespace polar::minipng
