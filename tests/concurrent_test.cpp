// Concurrency contract of the sharded runtime (DESIGN.md §8): any number
// of threads may share one Runtime; races on the SAME object resolve to
// exactly one winner plus detected violations — never a crash, never a
// corrupted metadata table. Run under ThreadSanitizer via
// scripts/check.sh (cmake -DPOLAR_SANITIZE=thread).
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/field_cursor.h"
#include "core/session.h"

namespace polar {
namespace {

TypeId make_node(TypeRegistry& reg, const char* name = "Node") {
  return TypeBuilder(reg, name)
      .fn_ptr("vtable")
      .field<std::uint64_t>("value")
      .ptr("next")
      .build();
}

RuntimeConfig reporting_config(std::uint32_t shard_bits = 6) {
  RuntimeConfig cfg;
  cfg.shard_bits = shard_bits;
  cfg.on_violation = ErrorAction::kReport;
  // This suite asserts the stored backend's concurrency machinery (shard
  // locks, seqlock mirrors, cross-thread UAF detection on the plain field
  // path) — pin it so a POLAR_BACKEND override can't reroute the
  // assertions onto the stateless path, which waives liveness checks.
  cfg.backend = BackendConfig::stored();
  return cfg;
}

/// N threads, each churning its own objects through one shared Runtime.
void churn(Runtime& rt, TypeId type, unsigned threads, unsigned iters) {
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&rt, type, iters, t] {
      Session s(rt);
      std::vector<ObjRef> slots(8);
      for (unsigned i = 0; i < iters; ++i) {
        ObjRef& slot = slots[i % slots.size()];
        if (slot) {
          ASSERT_TRUE(s.write<std::uint64_t>(slot, 1, t * 1000ull + i).ok());
          ASSERT_EQ(s.read<std::uint64_t>(slot, 1).value_or(0),
                    t * 1000ull + i);
          ASSERT_TRUE(s.destroy(slot).ok());
        }
        slot = s.create(type).value();
      }
      for (ObjRef& slot : slots) {
        if (slot) ASSERT_TRUE(s.destroy(slot).ok());
      }
    });
  }
  for (std::thread& w : workers) w.join();
}

TEST(ConcurrentTest, SharedRuntimeChurnBalancesAcrossThreads) {
  TypeRegistry reg;
  const TypeId node = make_node(reg);
  Runtime rt(reg, reporting_config());

  constexpr unsigned kThreads = 4;
  constexpr unsigned kIters = 600;
  churn(rt, node, kThreads, kIters);

  const RuntimeStats s = rt.stats();
  EXPECT_EQ(rt.live_objects(), 0u);
  EXPECT_EQ(s.allocations, std::uint64_t{kThreads} * kIters);
  EXPECT_EQ(s.allocations, s.frees);
  EXPECT_EQ(s.uaf_detected, 0u);
  EXPECT_EQ(s.traps_triggered, 0u);
}

TEST(ConcurrentTest, SingleShardConfigStillSafe) {
  // shard_bits = 0 degenerates to one global lock; correctness must not
  // depend on the shard count.
  TypeRegistry reg;
  const TypeId node = make_node(reg);
  Runtime rt(reg, reporting_config(/*shard_bits=*/0));
  churn(rt, node, /*threads=*/2, /*iters=*/300);
  EXPECT_EQ(rt.live_objects(), 0u);
  EXPECT_EQ(rt.stats().uaf_detected, 0u);
}

TEST(ConcurrentTest, HandlesCrossThreadHandoff) {
  // Objects allocated on one thread are freed on another (join provides
  // the happens-before edge): the metadata shards are global, not
  // per-thread, so this must balance exactly.
  TypeRegistry reg;
  const TypeId node = make_node(reg);
  Runtime rt(reg, reporting_config());
  Session s(rt);

  std::vector<ObjRef> handoff;
  std::thread producer([&] {
    Session mine(rt);
    for (int i = 0; i < 256; ++i) {
      const ObjRef r = mine.create(node).value();
      (void)mine.write<std::uint64_t>(r, 1, static_cast<std::uint64_t>(i));
      handoff.push_back(r);
    }
  });
  producer.join();

  std::thread consumer([&] {
    Session mine(rt);
    for (std::size_t i = 0; i < handoff.size(); ++i) {
      ASSERT_EQ(mine.read<std::uint64_t>(handoff[i], 1).value_or(~0ull), i);
      ASSERT_TRUE(mine.destroy(handoff[i]).ok());
    }
  });
  consumer.join();

  EXPECT_EQ(rt.live_objects(), 0u);
  EXPECT_EQ(rt.stats().allocations, 256u);
  EXPECT_EQ(rt.stats().frees, 256u);
}

TEST(ConcurrentTest, FreeThenAccessDetectsExactlyOneViolation) {
  // The sequenced form of the ISSUE's race: free completes, then one
  // access from another thread -> exactly one detected violation.
  TypeRegistry reg;
  const TypeId node = make_node(reg);
  Runtime rt(reg, reporting_config());
  Session s(rt);

  const ObjRef obj = s.create(node).value();
  std::thread freer([&] { ASSERT_TRUE(Session(rt).destroy(obj).ok()); });
  freer.join();

  std::thread accessor([&] {
    Session mine(rt);
    const Result<void*> p = mine.field(obj, 1);
    ASSERT_FALSE(p.ok());
    EXPECT_EQ(p.error(), Violation::kUseAfterFree);
  });
  accessor.join();

  EXPECT_EQ(rt.stats().uaf_detected, 1u);
  EXPECT_EQ(rt.live_objects(), 0u);
}

TEST(ConcurrentTest, RacingFreeAndAccessNeverCrashes) {
  // The truly-racing form: outcome depends on interleaving, but the
  // invariant holds every round — the free succeeds, the access either
  // wins (valid pointer, no violation) or loses (exactly one detected
  // use-after-free), and the runtime survives.
  TypeRegistry reg;
  const TypeId node = make_node(reg);
  Runtime rt(reg, reporting_config());
  Session s(rt);

  constexpr int kRounds = 100;
  std::uint64_t expected_uaf = 0;
  for (int round = 0; round < kRounds; ++round) {
    const ObjRef obj = s.create(node).value();
    std::barrier<> start(2);
    bool access_won = false;

    std::thread freer([&] {
      start.arrive_and_wait();
      ASSERT_TRUE(Session(rt).destroy(obj).ok());
    });
    std::thread accessor([&] {
      Session mine(rt);
      start.arrive_and_wait();
      const Result<void*> p = mine.field(obj, 1);
      // Do NOT dereference on success: the object may already be freed by
      // the time we could use the pointer — that app-level race is exactly
      // what the checked API reports, not what this test performs.
      if (p.ok()) {
        access_won = true;
      } else {
        EXPECT_EQ(p.error(), Violation::kUseAfterFree);
      }
    });
    freer.join();
    accessor.join();

    if (!access_won) ++expected_uaf;
    ASSERT_EQ(rt.live_objects(), 0u);
    ASSERT_EQ(rt.stats().uaf_detected, expected_uaf)
        << "round " << round << ": a race must produce zero or one detected "
        << "violation, never more";
  }
  EXPECT_EQ(rt.stats().allocations, static_cast<std::uint64_t>(kRounds));
  EXPECT_EQ(rt.stats().frees, static_cast<std::uint64_t>(kRounds));
}

TEST(ConcurrentTest, RacingDoubleFreeExactlyOneWinner) {
  TypeRegistry reg;
  const TypeId node = make_node(reg);
  Runtime rt(reg, reporting_config());
  Session s(rt);

  constexpr int kRounds = 100;
  for (int round = 0; round < kRounds; ++round) {
    const ObjRef obj = s.create(node).value();
    std::barrier<> start(2);
    std::atomic<int> successes{0};
    std::atomic<int> double_frees{0};

    auto contender = [&] {
      Session mine(rt);
      start.arrive_and_wait();
      const Result<void> r = mine.destroy(obj);
      if (r.ok()) {
        successes.fetch_add(1);
      } else {
        EXPECT_EQ(r.error(), Violation::kDoubleFree);
        double_frees.fetch_add(1);
      }
    };
    std::thread a(contender);
    std::thread b(contender);
    a.join();
    b.join();

    EXPECT_EQ(successes.load(), 1) << "round " << round;
    EXPECT_EQ(double_frees.load(), 1) << "round " << round;
    ASSERT_EQ(rt.live_objects(), 0u);
  }
  // Every round: one real free, one detected double free.
  EXPECT_EQ(rt.stats().frees, static_cast<std::uint64_t>(kRounds));
  EXPECT_EQ(rt.stats().uaf_detected, static_cast<std::uint64_t>(kRounds));
}

TEST(ConcurrentTest, LastViolationIsPerThread) {
  TypeRegistry reg;
  const TypeId node = make_node(reg);
  Runtime rt(reg, reporting_config());
  Session s(rt);

  // This thread records a double free...
  const ObjRef obj = s.create(node).value();
  ASSERT_TRUE(s.destroy(obj).ok());
  ASSERT_FALSE(s.destroy(obj).ok());
  EXPECT_EQ(rt.last_violation(), Violation::kDoubleFree);

  // ...a second thread starts clean, records its own violation, and never
  // sees (or clobbers) ours.
  std::thread other([&] {
    EXPECT_EQ(rt.last_violation(), Violation::kNone);
    int dummy = 0;
    EXPECT_EQ(rt.olr_getptr(&dummy, 0), nullptr);
    EXPECT_EQ(rt.last_violation(), Violation::kUseAfterFree);
  });
  other.join();

  EXPECT_EQ(rt.last_violation(), Violation::kDoubleFree);
}

TEST(ConcurrentTest, ThreadLocalCacheInvalidatedByOtherThreadsFree) {
  // Thread A caches an offset; thread B frees the object (bumping the
  // shard epoch); A's next access must miss the stale cache entry and
  // report use-after-free instead of returning a dangling offset.
  TypeRegistry reg;
  const TypeId node = make_node(reg);
  Runtime rt(reg, reporting_config());
  Session s(rt);

  const ObjRef obj = s.create(node).value();
  ASSERT_TRUE(s.field(obj, 1).ok());  // primes this thread's cache

  std::thread freer([&] { ASSERT_TRUE(Session(rt).destroy(obj).ok()); });
  freer.join();

  const Result<void*> stale = s.field(obj, 1);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.error(), Violation::kUseAfterFree);
}

TEST(ConcurrentTest, SeededDeterminismPreservedSingleThread) {
  // The first RNG stream is exactly the pre-concurrency stream: two
  // runtimes with the same seed draw identical layout sequences.
  TypeRegistry reg;
  const TypeId node = make_node(reg);
  RuntimeConfig cfg = reporting_config();
  cfg.seed = 0xabcdef;
  Runtime rt1(reg, cfg);
  Runtime rt2(reg, cfg);
  Session s1(rt1);
  Session s2(rt2);

  for (int i = 0; i < 16; ++i) {
    const ObjectRecord a = s1.describe(s1.create(node).value()).value();
    const ObjectRecord b = s2.describe(s2.create(node).value()).value();
    EXPECT_EQ(a.layout->size, b.layout->size);
    EXPECT_EQ(a.layout->offsets, b.layout->offsets);
    EXPECT_EQ(a.object_id, b.object_id);
  }
}

TEST(ConcurrentTest, LockfreeReadersRaceFreesWithoutTornResults) {
  // The seqlock fast path under fire: reader threads hammer obj_field on a
  // rotating set of objects while a churn thread frees and reallocates
  // them. Every successful read must return the offset the object's live
  // layout prescribes (validated post-hoc against describe()); every
  // failure must be a classified violation, never a crash or torn offset.
  // Run under TSan via scripts/check.sh to prove the recipe is race-free.
  TypeRegistry reg;
  const TypeId node = make_node(reg);
  RuntimeConfig cfg = reporting_config();
  cfg.backend = BackendConfig::stored();
  cfg.backend.options.checksum = false;  // bare seqlock path, no digest
  cfg.enable_cache = false;       // every access exercises the seqlock
  Runtime rt(reg, cfg);
  Session owner(rt);

  constexpr int kSlots = 8;
  constexpr int kChurnRounds = 400;
  std::vector<std::atomic<std::uint64_t>> ids(kSlots);
  std::vector<std::atomic<void*>> bases(kSlots);
  for (int i = 0; i < kSlots; ++i) {
    const ObjRef r = owner.create(node).value();
    bases[i].store(r.base);
    ids[i].store(r.id);
  }
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      Session mine(rt);
      std::uint64_t reads = 0;
      // The floor keeps the test meaningful on a starved single-core box:
      // the slots outlive `stop`, so post-churn reads still exercise (and
      // are guaranteed to hit) the fast path.
      while (!stop.load(std::memory_order_acquire) || reads < 256) {
        const int slot = static_cast<int>(reads++ % kSlots);
        // base and id may be torn across a churn (old base, new id): the
        // runtime must classify that as stale, same as any dead handle.
        const ObjRef handle{bases[slot].load(), ids[slot].load(), node};
        const Result<void*> p = mine.field(handle, 1);
        if (!p.ok()) {
          EXPECT_EQ(p.error(), Violation::kUseAfterFree);
        }
        // On success the pointer belonged to the layout current at some
        // instant between read_begin and read_validate; dereferencing is
        // an app-level race (see RacingFreeAndAccessNeverCrashes), so we
        // only require classification, not content.
      }
    });
  }

  Session churner(rt);
  for (int round = 0; round < kChurnRounds; ++round) {
    const int slot = round % kSlots;
    const ObjRef victim{bases[slot].load(), ids[slot].load(), node};
    ASSERT_TRUE(churner.destroy(victim).ok());
    const ObjRef fresh = churner.create(node).value();
    bases[slot].store(fresh.base);
    ids[slot].store(fresh.id);
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& r : readers) r.join();

  for (int i = 0; i < kSlots; ++i) {
    ASSERT_TRUE(
        churner.destroy(ObjRef{bases[i].load(), ids[i].load(), node}).ok());
  }
  EXPECT_EQ(rt.live_objects(), 0u);
  EXPECT_GT(rt.stats().fastpath_hits, 0u);
}

TEST(ConcurrentTest, CursorSeesFreeFromAnotherThread) {
  // A cursor armed here, with the free issued on a different thread: the
  // invalidation's seq bump must be visible to this thread's next batched
  // access, which falls back to the checked path and raises UAF.
  TypeRegistry reg;
  const TypeId node = make_node(reg);
  Runtime rt(reg, reporting_config());
  Session owner(rt);
  const ObjRef r = owner.create(node).value();

  FieldCursor cur(rt, r);
  ASSERT_TRUE(cur.batched());
  ASSERT_NE(cur.field(1), nullptr);

  std::thread freer([&] {
    Session s(rt);
    ASSERT_TRUE(s.destroy(r).ok());
  });
  freer.join();

  rt.clear_violation();
  EXPECT_EQ(cur.field(1), nullptr);
  EXPECT_EQ(rt.last_violation(), Violation::kUseAfterFree);
  EXPECT_FALSE(cur.batched());
}

TEST(ConcurrentTest, CursorsRaceFreesAndFallBackWithoutTearing) {
  // FieldCursor's lazy revalidation under fire: readers arm cursors over a
  // rotating slot set and replay batched accesses while a churn thread
  // frees and reallocates the same slots. A cursor whose object dies
  // mid-use must degrade to the checked scalar path (a classified
  // kUseAfterFree), never serve a torn offset or crash. Run under TSan via
  // scripts/check.sh to prove the snapshot recipe is race-free.
  TypeRegistry reg;
  const TypeId node = make_node(reg);
  RuntimeConfig cfg = reporting_config();
  cfg.enable_cache = false;  // every fallback exercises the seqlock
  Runtime rt(reg, cfg);
  Session owner(rt);

  constexpr int kSlots = 8;
  constexpr int kChurnRounds = 400;
  std::vector<std::atomic<std::uint64_t>> ids(kSlots);
  std::vector<std::atomic<void*>> bases(kSlots);
  for (int i = 0; i < kSlots; ++i) {
    const ObjRef r = owner.create(node).value();
    bases[i].store(r.base);
    ids[i].store(r.id);
  }
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      std::uint64_t rounds = 0;
      while (!stop.load(std::memory_order_acquire) || rounds < 128) {
        const int slot = static_cast<int>(rounds++ % kSlots);
        const ObjRef handle{bases[slot].load(), ids[slot].load(), node};
        FieldCursor cur(rt, handle);
        for (std::uint32_t f = 0; f < 3; ++f) {
          if (cur.field(f) == nullptr) {
            // The object died before or during this burst; the fallback
            // path must have classified it.
            EXPECT_EQ(rt.last_violation(), Violation::kUseAfterFree);
            rt.clear_violation();
          }
        }
      }
    });
  }

  Session churner(rt);
  for (int round = 0; round < kChurnRounds; ++round) {
    const int slot = round % kSlots;
    const ObjRef victim{bases[slot].load(), ids[slot].load(), node};
    ASSERT_TRUE(churner.destroy(victim).ok());
    const ObjRef fresh = churner.create(node).value();
    bases[slot].store(fresh.base);
    ids[slot].store(fresh.id);
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& r : readers) r.join();

  for (int i = 0; i < kSlots; ++i) {
    ASSERT_TRUE(
        churner.destroy(ObjRef{bases[i].load(), ids[i].load(), node}).ok());
  }
  EXPECT_EQ(rt.live_objects(), 0u);
}

TEST(ConcurrentTest, StatsAggregateAcrossThreads) {
  TypeRegistry reg;
  const TypeId node = make_node(reg);
  Runtime rt(reg, reporting_config());

  constexpr unsigned kThreads = 3;
  constexpr unsigned kPerThread = 64;
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      Session s(rt);
      for (unsigned i = 0; i < kPerThread; ++i) {
        const ObjRef r = s.create(node).value();
        (void)s.field(r, 1);
        ASSERT_TRUE(s.destroy(r).ok());
      }
    });
  }
  for (std::thread& w : workers) w.join();

  const RuntimeStats s = rt.stats();
  EXPECT_EQ(s.allocations, std::uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(s.frees, std::uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(s.member_accesses, std::uint64_t{kThreads} * kPerThread);
}

}  // namespace
}  // namespace polar
