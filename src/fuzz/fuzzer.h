// Coverage-guided fuzzing driver — the libFuzzer-equivalent loop that
// TaintClass runs targets under (paper §IV-B-2).
//
// Classic feedback loop: pick a corpus input (weighted toward rare
// features), mutate it, execute the target under a fresh CoverageMap, and
// keep the input if it exercised any (edge, hit-bucket) feature not seen
// globally. The target is any callable over a byte span; TaintClass wraps
// the real parser entry points.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "fuzz/coverage.h"
#include "fuzz/mutator.h"

namespace polar {

struct FuzzStats {
  std::uint64_t executions = 0;
  std::uint64_t corpus_additions = 0;
  std::uint64_t features = 0;       ///< global (edge,bucket) features seen
  std::uint64_t last_new_at = 0;    ///< execution index of last discovery
};

class Fuzzer {
 public:
  using Target = std::function<void(std::span<const std::uint8_t>)>;

  struct Options {
    std::uint64_t seed = 0xf022;
    std::size_t max_input_size = 4096;
    /// Stop early if no new feature for this many executions (0 = never).
    std::uint64_t stall_limit = 0;
  };

  Fuzzer(Target target, Options options);

  /// Seeds the corpus (run once each so their coverage is counted).
  void add_seed(std::vector<std::uint8_t> input);
  void add_dictionary_token(std::vector<std::uint8_t> token) {
    mutator_.add_dictionary_token(std::move(token));
  }

  /// Runs up to `iterations` mutation-execute cycles; returns stats.
  const FuzzStats& run(std::uint64_t iterations);

  [[nodiscard]] const FuzzStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::vector<std::vector<std::uint8_t>>& corpus() const
      noexcept {
    return corpus_;
  }

 private:
  /// Executes one input under coverage; adds to corpus if novel.
  void execute(std::vector<std::uint8_t> input);
  [[nodiscard]] std::size_t pick_corpus_index();

  Target target_;
  Options options_;
  Mutator mutator_;
  std::vector<std::vector<std::uint8_t>> corpus_;
  std::vector<std::uint64_t> corpus_energy_;  ///< features discovered by entry
  std::array<std::uint16_t, CoverageMap::kMapSize> global_features_{};
  FuzzStats stats_;
};

}  // namespace polar
