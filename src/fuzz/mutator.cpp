#include "fuzz/mutator.h"

#include <algorithm>
#include <cstring>

namespace polar {

namespace {
constexpr std::int64_t kInteresting[] = {
    0,   1,    -1,   16,   32,    64,    100,   127,        -128,  255,
    256, 1024, 4096, 32767, -32768, 65535, 65536, 2147483647, -2147483648LL};
}  // namespace

void Mutator::mutate(std::vector<std::uint8_t>& data,
                     std::span<const std::uint8_t> other,
                     std::size_t max_size) {
  if (data.empty()) data.push_back(0);
  const int rounds = 1 + static_cast<int>(rng_.below(4));
  for (int r = 0; r < rounds; ++r) {
    switch (rng_.below(10)) {
      case 0: bit_flip(data); break;
      case 1: byte_set(data); break;
      case 2: arith(data); break;
      case 3: interesting(data); break;
      case 4: insert_bytes(data, max_size); break;
      case 5: erase_bytes(data); break;
      case 6: duplicate_block(data, max_size); break;
      case 7: splice(data, other, max_size); break;
      case 8: dictionary(data, max_size); break;
      case 9: shuffle_block(data); break;
    }
    if (data.empty()) data.push_back(0);
  }
  if (data.size() > max_size) data.resize(max_size);
}

void Mutator::bit_flip(std::vector<std::uint8_t>& d) {
  const std::size_t i = rng_.below(d.size());
  d[i] ^= static_cast<std::uint8_t>(1u << rng_.below(8));
}

void Mutator::byte_set(std::vector<std::uint8_t>& d) {
  d[rng_.below(d.size())] = static_cast<std::uint8_t>(rng_.next());
}

void Mutator::arith(std::vector<std::uint8_t>& d) {
  // +-delta on a 1/2/4-byte little-endian window.
  const std::size_t width = std::size_t{1} << rng_.below(3);
  if (d.size() < width) return;
  const std::size_t i = rng_.below(d.size() - width + 1);
  std::uint32_t v = 0;
  std::memcpy(&v, &d[i], width);
  const auto delta = static_cast<std::uint32_t>(rng_.range(-35, 35));
  v += delta;
  std::memcpy(&d[i], &v, width);
}

void Mutator::interesting(std::vector<std::uint8_t>& d) {
  const std::size_t width = std::size_t{1} << rng_.below(3);
  if (d.size() < width) return;
  const std::size_t i = rng_.below(d.size() - width + 1);
  const std::int64_t v =
      kInteresting[rng_.below(std::size(kInteresting))];
  std::memcpy(&d[i], &v, width);
}

void Mutator::insert_bytes(std::vector<std::uint8_t>& d, std::size_t max_size) {
  if (d.size() >= max_size) return;
  const std::size_t n =
      1 + rng_.below(std::min<std::size_t>(8, max_size - d.size()));
  const std::size_t at = rng_.below(d.size() + 1);
  std::vector<std::uint8_t> bytes(n);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng_.next());
  d.insert(d.begin() + static_cast<std::ptrdiff_t>(at), bytes.begin(),
           bytes.end());
}

void Mutator::erase_bytes(std::vector<std::uint8_t>& d) {
  if (d.size() <= 1) return;
  const std::size_t n = 1 + rng_.below(std::min<std::size_t>(8, d.size() - 1));
  const std::size_t at = rng_.below(d.size() - n + 1);
  d.erase(d.begin() + static_cast<std::ptrdiff_t>(at),
          d.begin() + static_cast<std::ptrdiff_t>(at + n));
}

void Mutator::duplicate_block(std::vector<std::uint8_t>& d,
                              std::size_t max_size) {
  if (d.size() >= max_size || d.empty()) return;
  const std::size_t n =
      1 + rng_.below(std::min<std::size_t>({16, d.size(), max_size - d.size()}));
  const std::size_t from = rng_.below(d.size() - n + 1);
  const std::size_t to = rng_.below(d.size() + 1);
  const std::vector<std::uint8_t> block(d.begin() + static_cast<std::ptrdiff_t>(from),
                                        d.begin() + static_cast<std::ptrdiff_t>(from + n));
  d.insert(d.begin() + static_cast<std::ptrdiff_t>(to), block.begin(),
           block.end());
}

void Mutator::splice(std::vector<std::uint8_t>& d,
                     std::span<const std::uint8_t> other,
                     std::size_t max_size) {
  if (other.empty()) return;
  // Keep a prefix of d, append a suffix of other.
  const std::size_t keep = rng_.below(d.size() + 1);
  const std::size_t from = rng_.below(other.size());
  d.resize(keep);
  for (std::size_t i = from; i < other.size() && d.size() < max_size; ++i) {
    d.push_back(other[i]);
  }
}

void Mutator::dictionary(std::vector<std::uint8_t>& d, std::size_t max_size) {
  if (dictionary_.empty()) return;
  const auto& token = dictionary_[rng_.below(dictionary_.size())];
  if (rng_.chance(0.5) && d.size() + token.size() <= max_size) {
    const std::size_t at = rng_.below(d.size() + 1);
    d.insert(d.begin() + static_cast<std::ptrdiff_t>(at), token.begin(),
             token.end());
  } else if (token.size() <= d.size()) {
    const std::size_t at = rng_.below(d.size() - token.size() + 1);
    std::copy(token.begin(), token.end(),
              d.begin() + static_cast<std::ptrdiff_t>(at));
  }
}

void Mutator::shuffle_block(std::vector<std::uint8_t>& d) {
  if (d.size() < 2) return;
  const std::size_t n = 2 + rng_.below(std::min<std::size_t>(8, d.size() - 1));
  if (n > d.size()) return;
  const std::size_t at = rng_.below(d.size() - n + 1);
  rng_.shuffle(std::span<std::uint8_t>(&d[at], n));
}

}  // namespace polar
