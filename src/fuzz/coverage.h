// Edge coverage instrumentation — the "coverage-guiding module" of
// libFuzzer that TaintClass borrows (paper §IV-B-2: "we use only the
// coverage-guiding module and combine its algorithm with the DFSan input
// case generation").
//
// Mirrors SanitizerCoverage + AFL-style hit-count bucketing: each
// instrumentation site reports a site id; an edge is hash(prev_site,
// site); per-edge 8-bit counters are bucketed into powers of two so that
// "loop ran 3 times" vs "4 times" is noise but "1 vs many" is signal.
// Workloads place POLAR_COV_SITE() calls where a compiler would place edge
// instrumentation (function entries and branch targets).
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <vector>

#include "support/hash.h"

namespace polar {

class CoverageMap {
 public:
  static constexpr std::size_t kMapSize = 1 << 16;

  void hit_edge(std::uint32_t edge) noexcept {
    std::uint8_t& c = counters_[edge & (kMapSize - 1)];
    if (c != 0xff) ++c;
  }

  void reset() noexcept { counters_.fill(0); }

  /// AFL bucketing: 0,1,2,3,4-7,8-15,16-31,32-127,128+ -> bit index.
  [[nodiscard]] static std::uint8_t bucket(std::uint8_t count) noexcept {
    if (count == 0) return 0;
    if (count == 1) return 1;
    if (count == 2) return 2;
    if (count == 3) return 3;
    if (count <= 7) return 4;
    if (count <= 15) return 5;
    if (count <= 31) return 6;
    if (count <= 127) return 7;
    return 8;
  }

  /// Merges this run's coverage into `global`, returning how many
  /// (edge, bucket) features were new. Nonzero means the input is
  /// interesting and enters the corpus.
  std::size_t merge_new_features(std::array<std::uint16_t, kMapSize>& global)
      const noexcept {
    std::size_t fresh = 0;
    for (std::size_t i = 0; i < kMapSize; ++i) {
      if (counters_[i] == 0) continue;
      const std::uint16_t bit =
          static_cast<std::uint16_t>(1u << bucket(counters_[i]));
      if ((global[i] & bit) == 0) {
        global[i] |= bit;
        ++fresh;
      }
    }
    return fresh;
  }

  [[nodiscard]] std::size_t edges_covered() const noexcept {
    std::size_t n = 0;
    for (std::uint8_t c : counters_) n += (c != 0);
    return n;
  }

 private:
  std::array<std::uint8_t, kMapSize> counters_{};
};

namespace detail {
inline thread_local CoverageMap* g_active_coverage = nullptr;
inline thread_local std::uint32_t g_prev_site = 0;
}  // namespace detail

/// RAII activation, analogous to linking a binary with -fsanitize=coverage.
class CoverageScope {
 public:
  explicit CoverageScope(CoverageMap& map) noexcept
      : prev_(detail::g_active_coverage) {
    detail::g_active_coverage = &map;
    detail::g_prev_site = 0;
  }
  ~CoverageScope() { detail::g_active_coverage = prev_; }
  CoverageScope(const CoverageScope&) = delete;
  CoverageScope& operator=(const CoverageScope&) = delete;

 private:
  CoverageMap* prev_;
};

/// Reports execution passing through `site` (a stable id; use
/// POLAR_COV_SITE() for an automatic file/line-derived one). Edge identity
/// follows AFL: hash of the (previous site, site) pair.
inline void cov_site(std::uint32_t site) noexcept {
  CoverageMap* map = detail::g_active_coverage;
  if (map == nullptr) return;
  map->hit_edge(static_cast<std::uint32_t>(
      mix64((static_cast<std::uint64_t>(detail::g_prev_site) << 32) | site)));
  detail::g_prev_site = site >> 1 ^ site << 15;
}

}  // namespace polar

/// Drop-in edge instrumentation point; unique per source location.
#define POLAR_COV_SITE()                                               \
  ::polar::cov_site(static_cast<std::uint32_t>(                        \
      ::polar::fnv1a(__FILE__) * 31 + static_cast<unsigned>(__LINE__)))
