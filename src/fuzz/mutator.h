// Input mutation engine — the generation half of libFuzzer that TaintClass
// pairs with DFSan (paper §IV-B-2).
//
// Implements the standard mutation portfolio: bit/byte flips, arithmetic
// nudges, interesting-value substitution, block insert/erase/duplicate,
// cross-input splicing, and dictionary token injection. Each call applies
// a small random stack of these, as libFuzzer does.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "support/rng.h"

namespace polar {

class Mutator {
 public:
  explicit Mutator(std::uint64_t seed) : rng_(seed) {}

  /// Tokens likely meaningful to the target (chunk tags, magic numbers);
  /// the fuzzer feeds these from workload dictionaries.
  void add_dictionary_token(std::vector<std::uint8_t> token) {
    if (!token.empty()) dictionary_.push_back(std::move(token));
  }

  /// Mutates `data` in place using 1-4 stacked strategies. `other` (may be
  /// empty) is a second corpus input used by the splice strategy.
  /// `max_size` caps growth.
  void mutate(std::vector<std::uint8_t>& data,
              std::span<const std::uint8_t> other, std::size_t max_size);

  [[nodiscard]] Rng& rng() noexcept { return rng_; }

 private:
  void bit_flip(std::vector<std::uint8_t>& d);
  void byte_set(std::vector<std::uint8_t>& d);
  void arith(std::vector<std::uint8_t>& d);
  void interesting(std::vector<std::uint8_t>& d);
  void insert_bytes(std::vector<std::uint8_t>& d, std::size_t max_size);
  void erase_bytes(std::vector<std::uint8_t>& d);
  void duplicate_block(std::vector<std::uint8_t>& d, std::size_t max_size);
  void splice(std::vector<std::uint8_t>& d, std::span<const std::uint8_t> other,
              std::size_t max_size);
  void dictionary(std::vector<std::uint8_t>& d, std::size_t max_size);
  void shuffle_block(std::vector<std::uint8_t>& d);

  Rng rng_;
  std::vector<std::vector<std::uint8_t>> dictionary_;
};

}  // namespace polar
