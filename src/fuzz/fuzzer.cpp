#include "fuzz/fuzzer.h"

#include <utility>

#include "support/assert.h"

namespace polar {

Fuzzer::Fuzzer(Target target, Options options)
    : target_(std::move(target)),
      options_(options),
      mutator_(options.seed) {
  POLAR_CHECK(target_ != nullptr, "fuzzer requires a target");
}

void Fuzzer::add_seed(std::vector<std::uint8_t> input) {
  execute(std::move(input));
}

void Fuzzer::execute(std::vector<std::uint8_t> input) {
  CoverageMap map;
  {
    CoverageScope scope(map);
    target_(input);
  }
  ++stats_.executions;
  const std::size_t fresh = map.merge_new_features(global_features_);
  if (fresh > 0) {
    stats_.features += fresh;
    stats_.last_new_at = stats_.executions;
    ++stats_.corpus_additions;
    corpus_.push_back(std::move(input));
    corpus_energy_.push_back(fresh);
  }
}

std::size_t Fuzzer::pick_corpus_index() {
  // Energy-weighted choice: inputs that discovered more features get
  // proportionally more mutation budget (libFuzzer's entry weighting).
  std::uint64_t total = 0;
  for (std::uint64_t e : corpus_energy_) total += e;
  std::uint64_t ticket = mutator_.rng().below(total);
  for (std::size_t i = 0; i < corpus_energy_.size(); ++i) {
    if (ticket < corpus_energy_[i]) return i;
    ticket -= corpus_energy_[i];
  }
  return corpus_energy_.size() - 1;
}

const FuzzStats& Fuzzer::run(std::uint64_t iterations) {
  if (corpus_.empty()) execute({});  // bootstrap from the empty input
  if (corpus_.empty()) {
    // Target exposes no coverage sites; still fuzz blind from one seed.
    corpus_.push_back({});
    corpus_energy_.push_back(1);
  }
  for (std::uint64_t i = 0; i < iterations; ++i) {
    if (options_.stall_limit != 0 &&
        stats_.executions - stats_.last_new_at > options_.stall_limit) {
      break;
    }
    std::vector<std::uint8_t> input = corpus_[pick_corpus_index()];
    const auto& other = corpus_[mutator_.rng().below(corpus_.size())];
    mutator_.mutate(input, other, options_.max_input_size);
    execute(std::move(input));
  }
  return stats_;
}

}  // namespace polar
