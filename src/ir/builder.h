// Convenience construction of IR functions, in the spirit of
// llvm::IRBuilder: tracks the current block, allocates registers, and
// keeps block indices symbolic until sealed.
#pragma once

#include <string>
#include <utility>

#include "ir/ir.h"
#include "support/assert.h"

namespace polar::ir {

class FunctionBuilder {
 public:
  FunctionBuilder(std::string name, std::uint32_t num_params) {
    fn_.name = std::move(name);
    fn_.num_params = num_params;
    fn_.num_regs = num_params;
    fn_.blocks.emplace_back();  // entry block
  }

  /// Fresh virtual register.
  Reg reg() { return fn_.num_regs++; }

  /// Parameter register i (r0..rN-1).
  [[nodiscard]] Reg param(std::uint32_t i) const {
    POLAR_CHECK(i < fn_.num_params, "parameter index out of range");
    return i;
  }

  /// Creates a new block and returns its index (does not switch to it).
  std::uint32_t new_block() {
    fn_.blocks.emplace_back();
    return static_cast<std::uint32_t>(fn_.blocks.size() - 1);
  }

  /// Switches the insertion point.
  void set_block(std::uint32_t block) {
    POLAR_CHECK(block < fn_.blocks.size(), "no such block");
    current_ = block;
  }
  [[nodiscard]] std::uint32_t current_block() const { return current_; }

  Reg const64(std::uint64_t v) {
    const Reg d = reg();
    emit({.op = Op::kConst, .dst = d, .imm = v});
    return d;
  }

  Reg constf(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    return const64(bits);
  }

  Reg move(Reg src) {
    const Reg d = reg();
    emit({.op = Op::kMove, .dst = d, .a = src});
    return d;
  }

  void move_into(Reg dst, Reg src) {
    emit({.op = Op::kMove, .dst = dst, .a = src});
  }

  Reg bin(Bin kind, Reg a, Reg b) {
    const Reg d = reg();
    emit({.op = Op::kBin, .bin = kind, .dst = d, .a = a, .b = b});
    return d;
  }

  Reg add(Reg a, Reg b) { return bin(Bin::kAdd, a, b); }
  Reg sub(Reg a, Reg b) { return bin(Bin::kSub, a, b); }
  Reg mul(Reg a, Reg b) { return bin(Bin::kMul, a, b); }

  Reg alloc(TypeId type) {
    const Reg d = reg();
    emit({.op = Op::kAlloc, .dst = d, .imm = type.value});
    return d;
  }

  void free_obj(Reg ptr, TypeId type) {
    emit({.op = Op::kFree, .a = ptr, .imm = type.value});
  }

  /// getelementptr: address of field `field` of the object in `base`.
  Reg gep(Reg base, TypeId type, std::uint32_t field) {
    const Reg d = reg();
    emit({.op = Op::kGep,
          .dst = d,
          .a = base,
          .imm = (static_cast<std::uint64_t>(type.value) << 32) | field});
    return d;
  }

  Reg load(Reg addr, Width width = Width::kW64) {
    const Reg d = reg();
    emit({.op = Op::kLoad, .width = width, .dst = d, .a = addr});
    return d;
  }

  void store(Reg addr, Reg value, Width width = Width::kW64) {
    emit({.op = Op::kStore, .width = width, .a = addr, .b = value});
  }

  void obj_copy(Reg dst, Reg src, TypeId type) {
    emit({.op = Op::kObjCopy, .a = src, .b = dst, .imm = type.value});
  }

  Reg clone(Reg src, TypeId type) {
    const Reg d = reg();
    emit({.op = Op::kClone, .dst = d, .a = src, .imm = type.value});
    return d;
  }

  Reg call(std::uint32_t callee, std::vector<Reg> args) {
    const Reg d = reg();
    emit({.op = Op::kCall, .dst = d, .imm = callee, .args = std::move(args)});
    return d;
  }

  void br(Reg cond, std::uint32_t if_true, std::uint32_t if_false) {
    emit({.op = Op::kBr, .a = cond, .target_a = if_true, .target_b = if_false});
  }

  void jump(std::uint32_t target) {
    emit({.op = Op::kBr, .a = kNoReg, .target_a = target, .target_b = target});
  }

  void ret(Reg value = kNoReg) { emit({.op = Op::kRet, .a = value}); }

  [[nodiscard]] Function build() && { return std::move(fn_); }

 private:
  void emit(Instr instr) {
    POLAR_CHECK(current_ < fn_.blocks.size(), "no current block");
    auto& instrs = fn_.blocks[current_].instrs;
    POLAR_CHECK(instrs.empty() || !is_terminator(instrs.back().op),
                "emitting past a terminator");
    instrs.push_back(std::move(instr));
  }

  Function fn_;
  std::uint32_t current_ = 0;
};

}  // namespace polar::ir
