// The POLaR instrumentation pass — the paper's LLVM pass (§IV-A-2)
// transplanted onto this repo's IR.
//
// Rewrites every instrumentable site into its runtime-routed counterpart:
//   kAlloc   -> kPolarAlloc    (olr_malloc: draw layout, record metadata)
//   kFree    -> kPolarFree     (olr_free: trap check, drop metadata)
//   kGep     -> kPolarGep      (olr_getptr: metadata/cached offset lookup)
//   kObjCopy -> kPolarObjCopy  (olr_memcpy: layout-aware field copy)
//   kClone   -> kPolarClone    (olr_clone: duplicate with fresh layout)
//
// Selectivity mirrors the TaintClass feedback loop: the pass takes the set
// of types to harden (empty set = harden everything, the paper's
// "applied POLaR to the entire set of objects" compatibility experiment);
// sites touching unselected types are left untouched and keep their
// zero-cost natural-layout behaviour.
//
// Gep coalescing (PassOptions::coalesce_geps) is the pass-level batching
// the paper leaves on the table: runs of kPolarGep on the same base within
// a block collapse into one kPolarGepMulti — a single olr_getptr_multi
// metadata consultation filling every destination register. The rewrite is
// conservative: only straight-line runs where no intervening instruction
// can free the object, move the base, or observe a hoisted destination are
// batched, so execution (values, faults, and per-access stats) is
// bit-identical to the uncoalesced program.
#pragma once

#include <set>
#include <string>

#include "core/type_registry.h"
#include "ir/ir.h"

namespace polar::ir {

struct PassReport {
  std::uint64_t allocs_rewritten = 0;
  std::uint64_t frees_rewritten = 0;
  std::uint64_t geps_rewritten = 0;
  std::uint64_t copies_rewritten = 0;
  std::uint64_t sites_skipped = 0;  ///< instrumentable but unselected type
  /// Gep coalescing: geps folded into batched lookups (each counted in
  /// geps_rewritten too) and the number of kPolarGepMulti emitted.
  std::uint64_t geps_coalesced = 0;
  std::uint64_t gep_batches = 0;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return allocs_rewritten + frees_rewritten + geps_rewritten +
           copies_rewritten;
  }
};

/// Process-wide default for PassOptions::coalesce_geps: true iff the
/// POLAR_IR_COALESCE environment variable is set to a nonempty value other
/// than "0" (read once, memoized). This is how CI flips the whole test
/// suite to the coalescing configuration without touching call sites.
[[nodiscard]] bool coalesce_env_default() noexcept;

struct PassOptions {
  /// TaintClass feedback: names of types to randomize; empty = all.
  std::set<std::string> selected{};
  /// Collapse same-base gep runs into kPolarGepMulti (see file comment).
  bool coalesce_geps = coalesce_env_default();
  /// Shortest run worth a batched op; runs below it stay scalar.
  std::uint32_t min_run = 2;
};

/// Instruments `module` in place.
PassReport run_polar_pass(Module& module, const TypeRegistry& registry,
                          const PassOptions& options);

/// Legacy signature: selection only, every other option defaulted (so the
/// POLAR_IR_COALESCE env default applies to all existing call sites).
PassReport run_polar_pass(Module& module, const TypeRegistry& registry,
                          const std::set<std::string>& selected = {});

}  // namespace polar::ir
