// The POLaR instrumentation pass — the paper's LLVM pass (§IV-A-2)
// transplanted onto this repo's IR.
//
// Rewrites every instrumentable site into its runtime-routed counterpart:
//   kAlloc   -> kPolarAlloc    (olr_malloc: draw layout, record metadata)
//   kFree    -> kPolarFree     (olr_free: trap check, drop metadata)
//   kGep     -> kPolarGep      (olr_getptr: metadata/cached offset lookup)
//   kObjCopy -> kPolarObjCopy  (olr_memcpy: layout-aware field copy)
//   kClone   -> kPolarClone    (olr_clone: duplicate with fresh layout)
//
// Selectivity mirrors the TaintClass feedback loop: the pass takes the set
// of types to harden (empty set = harden everything, the paper's
// "applied POLaR to the entire set of objects" compatibility experiment);
// sites touching unselected types are left untouched and keep their
// zero-cost natural-layout behaviour.
#pragma once

#include <set>
#include <string>

#include "core/type_registry.h"
#include "ir/ir.h"

namespace polar::ir {

struct PassReport {
  std::uint64_t allocs_rewritten = 0;
  std::uint64_t frees_rewritten = 0;
  std::uint64_t geps_rewritten = 0;
  std::uint64_t copies_rewritten = 0;
  std::uint64_t sites_skipped = 0;  ///< instrumentable but unselected type

  [[nodiscard]] std::uint64_t total() const noexcept {
    return allocs_rewritten + frees_rewritten + geps_rewritten +
           copies_rewritten;
  }
};

/// Instruments `module` in place. `selected` is the TaintClass feedback:
/// names of types to randomize; empty means all registered types.
PassReport run_polar_pass(Module& module, const TypeRegistry& registry,
                          const std::set<std::string>& selected = {});

}  // namespace polar::ir
