#include "ir/polar_pass.h"

namespace polar::ir {

namespace {

Op instrumented_op(Op op) {
  switch (op) {
    case Op::kAlloc: return Op::kPolarAlloc;
    case Op::kFree: return Op::kPolarFree;
    case Op::kGep: return Op::kPolarGep;
    case Op::kObjCopy: return Op::kPolarObjCopy;
    case Op::kClone: return Op::kPolarClone;
    default: return op;
  }
}

}  // namespace

PassReport run_polar_pass(Module& module, const TypeRegistry& registry,
                          const std::set<std::string>& selected) {
  PassReport report;
  const auto type_selected = [&](std::uint64_t raw_type) {
    const TypeInfo& info =
        registry.info(TypeId{static_cast<std::uint32_t>(raw_type)});
    if (info.no_randomize) return false;  // __no_randomize_layout
    return selected.empty() || selected.contains(info.name);
  };

  for (Function& fn : module.functions) {
    for (Block& block : fn.blocks) {
      for (Instr& instr : block.instrs) {
        if (!is_instrumentable(instr.op)) continue;
        // gep packs (type << 32 | field); everything else stores the type
        // directly in imm.
        const std::uint64_t raw_type =
            instr.op == Op::kGep ? (instr.imm >> 32) : instr.imm;
        if (!type_selected(raw_type)) {
          ++report.sites_skipped;
          continue;
        }
        switch (instr.op) {
          case Op::kAlloc: ++report.allocs_rewritten; break;
          case Op::kFree: ++report.frees_rewritten; break;
          case Op::kGep: ++report.geps_rewritten; break;
          case Op::kObjCopy:
          case Op::kClone: ++report.copies_rewritten; break;
          default: break;
        }
        instr.op = instrumented_op(instr.op);
      }
    }
  }
  return report;
}

}  // namespace polar::ir
