#include "ir/polar_pass.h"

#include <cstdlib>
#include <vector>

namespace polar::ir {

namespace {

Op instrumented_op(Op op) {
  switch (op) {
    case Op::kAlloc: return Op::kPolarAlloc;
    case Op::kFree: return Op::kPolarFree;
    case Op::kGep: return Op::kPolarGep;
    case Op::kObjCopy: return Op::kPolarObjCopy;
    case Op::kClone: return Op::kPolarClone;
    default: return op;
  }
}

/// Registers an instruction reads / writes, for the coalescer's safety
/// checks. Only the ops transparent() admits between group members are
/// modelled; everything else is a barrier and never consulted.
void reads_of(const Instr& instr, std::vector<Reg>& out) {
  out.clear();
  switch (instr.op) {
    case Op::kMove:
    case Op::kNot:
    case Op::kLoad:
      out.push_back(instr.a);
      break;
    case Op::kBin:
      out.push_back(instr.a);
      out.push_back(instr.b);
      break;
    case Op::kStore:
      out.push_back(instr.a);
      out.push_back(instr.b);
      break;
    default:
      break;
  }
}

[[nodiscard]] Reg write_of(const Instr& instr) {
  switch (instr.op) {
    case Op::kConst:
    case Op::kMove:
    case Op::kBin:
    case Op::kNot:
    case Op::kLoad:
      return instr.dst;
    default:
      return kNoReg;
  }
}

/// Ops a gep may be batched across. Anything that can free an object,
/// re-randomize a layout, or transfer control (kFree/kAlloc/kObjCopy/
/// kClone families, kCall, terminators) is a barrier: hoisting a gep over
/// it could compute an address under liveness/layout state the original
/// program resolved differently, changing fault behaviour.
[[nodiscard]] bool transparent(Op op) {
  switch (op) {
    case Op::kConst:
    case Op::kMove:
    case Op::kBin:
    case Op::kNot:
    case Op::kLoad:
    case Op::kStore:
      return true;
    default:
      return false;
  }
}

/// One straight-line gep group under construction.
struct GepGroup {
  std::size_t first_index = 0;  ///< position of the leading gep
  Reg base = kNoReg;
  std::uint64_t type = 0;
  std::vector<std::size_t> members;  ///< instr indices, in program order
  std::vector<Reg> dsts;
  /// Registers read or written by intervening (non-member) instructions
  /// since the group opened: a later gep whose dst is among them cannot be
  /// hoisted to the group head without changing what those instructions
  /// observed.
  std::vector<Reg> touched;

  [[nodiscard]] bool open() const { return !members.empty(); }
  [[nodiscard]] static bool contains(const std::vector<Reg>& v, Reg r) {
    for (Reg x : v) {
      if (x == r) return true;
    }
    return false;
  }
};

/// Rewrites one block's batchable gep runs into kPolarGepMulti. Returns
/// the number of geps folded (group members of emitted batches).
std::uint64_t coalesce_block(Block& block, std::uint32_t min_run,
                             PassReport& report) {
  std::vector<Instr> out;
  out.reserve(block.instrs.size());
  GepGroup group;
  std::uint64_t folded = 0;
  // Indices of group members held back from `out` until the group closes.
  std::vector<Instr> pending;

  const auto flush = [&]() {
    if (!group.open()) return;
    if (pending.size() >= min_run) {
      Instr multi;
      multi.op = Op::kPolarGepMulti;
      multi.a = group.base;
      multi.imm = group.type;
      multi.args.reserve(2 * pending.size());
      for (const Instr& g : pending) {
        multi.args.push_back(g.dst);
        multi.args.push_back(static_cast<Reg>(
            static_cast<std::uint32_t>(g.imm)));  // field index
      }
      // The batch sits where the leading gep stood; intervening
      // instructions already flowed into `out` in order.
      out.insert(out.begin() + static_cast<std::ptrdiff_t>(group.first_index),
                 multi);
      folded += pending.size();
      ++report.gep_batches;
    } else {
      // Not worth a batch: restore the scalar geps at the group head —
      // the slot the batch would have occupied. Intervening transparent
      // instructions may already read these dsts (e.g. a load through
      // the leading gep), so the geps must re-materialize before those
      // readers, exactly where a batch would have defined them.
      out.insert(out.begin() + static_cast<std::ptrdiff_t>(group.first_index),
                 pending.begin(), pending.end());
    }
    pending.clear();
    group = GepGroup{};
  };

  for (const Instr& instr : block.instrs) {
    if (instr.op == Op::kPolarGep) {
      const std::uint64_t type = instr.imm >> 32;
      if (group.open() && instr.a == group.base && type == group.type &&
          instr.dst != group.base &&
          !GepGroup::contains(group.dsts, instr.dst) &&
          !GepGroup::contains(group.touched, instr.dst)) {
        pending.push_back(instr);
        group.dsts.push_back(instr.dst);
        continue;
      }
      flush();
      if (instr.dst != instr.a) {  // dst==base can never lead a group
        group.first_index = out.size();
        group.base = instr.a;
        group.type = type;
        group.members.push_back(out.size());
        group.dsts.push_back(instr.dst);
        pending.push_back(instr);
        continue;
      }
      out.push_back(instr);
      continue;
    }
    if (group.open()) {
      bool keep = transparent(instr.op);
      if (keep) {
        // Writing the base or a captured dst invalidates the group.
        const Reg w = write_of(instr);
        if (w != kNoReg &&
            (w == group.base || GepGroup::contains(group.dsts, w))) {
          keep = false;
        }
      }
      if (!keep) {
        flush();
        out.push_back(instr);
        continue;
      }
      static thread_local std::vector<Reg> reads;
      reads_of(instr, reads);
      for (Reg r : reads) {
        if (r != kNoReg) group.touched.push_back(r);
      }
      const Reg w = write_of(instr);
      if (w != kNoReg) group.touched.push_back(w);
    }
    out.push_back(instr);
  }
  flush();
  block.instrs = std::move(out);
  return folded;
}

}  // namespace

bool coalesce_env_default() noexcept {
  static const bool value = [] {
    const char* env = std::getenv("POLAR_IR_COALESCE");
    return env != nullptr && env[0] != '\0' &&
           !(env[0] == '0' && env[1] == '\0');
  }();
  return value;
}

PassReport run_polar_pass(Module& module, const TypeRegistry& registry,
                          const PassOptions& options) {
  PassReport report;
  const auto type_selected = [&](std::uint64_t raw_type) {
    const TypeInfo& info =
        registry.info(TypeId{static_cast<std::uint32_t>(raw_type)});
    if (info.no_randomize) return false;  // __no_randomize_layout
    return options.selected.empty() || options.selected.contains(info.name);
  };

  for (Function& fn : module.functions) {
    for (Block& block : fn.blocks) {
      for (Instr& instr : block.instrs) {
        if (!is_instrumentable(instr.op)) continue;
        // gep packs (type << 32 | field); everything else stores the type
        // directly in imm.
        const std::uint64_t raw_type =
            instr.op == Op::kGep ? (instr.imm >> 32) : instr.imm;
        if (!type_selected(raw_type)) {
          ++report.sites_skipped;
          continue;
        }
        switch (instr.op) {
          case Op::kAlloc: ++report.allocs_rewritten; break;
          case Op::kFree: ++report.frees_rewritten; break;
          case Op::kGep: ++report.geps_rewritten; break;
          case Op::kObjCopy:
          case Op::kClone: ++report.copies_rewritten; break;
          default: break;
        }
        instr.op = instrumented_op(instr.op);
      }
      if (options.coalesce_geps) {
        report.geps_coalesced +=
            coalesce_block(block, options.min_run < 2 ? 2 : options.min_run,
                           report);
      }
    }
  }
  return report;
}

PassReport run_polar_pass(Module& module, const TypeRegistry& registry,
                          const std::set<std::string>& selected) {
  PassOptions options;
  options.selected = selected;
  return run_polar_pass(module, registry, options);
}

}  // namespace polar::ir
