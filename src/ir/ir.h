// A miniature LLVM-flavoured IR — the compiler substrate POLaR's
// instrumentation pass operates on (paper §IV-A-2).
//
// The paper's pass rewrites three families of LLVM constructs:
//   * allocation/deallocation (malloc/alloca/free),
//   * getelementptr-like member address computations,
//   * memcpy-like whole-object copies.
// This IR models exactly those constructs (plus enough arithmetic and
// control flow to write real programs against them): a register machine
// over typed words, functions of basic blocks, and explicit kAlloc /
// kGep / kFree / kObjCopy instructions referencing a TypeRegistry. The
// PolarPass in polar_pass.h performs the same rewrite the paper's LLVM
// pass does, producing kPolarAlloc / kPolarGep / ... instructions that the
// interpreter routes through the POLaR runtime.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/type_registry.h"

namespace polar::ir {

/// Virtual register index (function-local, mutable — a register machine
/// rather than SSA keeps phi nodes out of scope without losing anything
/// the pass cares about).
using Reg = std::uint32_t;

enum class Op : std::uint8_t {
  kConst,     // dst = imm
  kMove,      // dst = a
  kBin,       // dst = a <bin> b
  kNot,       // dst = ~a
  kAlloc,     // dst = new object of type imm          [instrumentable]
  kFree,      // free object at reg a                  [instrumentable]
  kGep,       // dst = &field imm of object at reg a   [instrumentable]
  kLoad,      // dst = *(a) of width(type)
  kStore,     // *(a) = b of width(type)
  kObjCopy,   // copy object a (type imm) into object b[instrumentable]
  kClone,     // dst = duplicate of object a (type imm)[instrumentable]
  kCall,      // dst = call function imm(args...)
  kBr,        // if (a != 0) goto target_a else target_b; unconditional if
              // a == kNoReg
  kRet,       // return a (or nothing if a == kNoReg)
  // Products of the PolarPass — never emitted by the builder directly:
  kPolarAlloc,
  kPolarFree,
  kPolarGep,
  kPolarObjCopy,
  kPolarClone,
  // Product of the pass's gep-coalescing: one batched lookup for several
  // geps on the same base within a block. `a` = base register, `imm` = raw
  // type id, `args` = (dst0, field0, dst1, field1, ...) pairs — dsts are
  // registers, fields are literal field indices riding in the args slots
  // (the verifier checks them per pair, not as call arguments). Executes
  // as one olr_getptr_multi: a single metadata consultation fills every
  // dst.
  kPolarGepMulti,
};

inline constexpr Reg kNoReg = 0xffffffff;

enum class Bin : std::uint8_t {
  kAdd, kSub, kMul, kUDiv, kURem,
  kAnd, kOr, kXor, kShl, kShr,
  kEq, kNe, kULt, kULe,
  kFAdd, kFSub, kFMul, kFDiv, kFLt,  // double ops on bit-cast registers
};

/// Load/store width.
enum class Width : std::uint8_t { kW8, kW16, kW32, kW64 };

[[nodiscard]] constexpr std::size_t width_bytes(Width w) noexcept {
  switch (w) {
    case Width::kW8: return 1;
    case Width::kW16: return 2;
    case Width::kW32: return 4;
    case Width::kW64: return 8;
  }
  return 8;
}

struct Instr {
  Op op = Op::kRet;
  Bin bin = Bin::kAdd;
  Width width = Width::kW64;
  Reg dst = kNoReg;
  Reg a = kNoReg;
  Reg b = kNoReg;
  std::uint64_t imm = 0;      ///< constant / TypeId / field index / callee
  std::uint32_t target_a = 0; ///< branch: taken block
  std::uint32_t target_b = 0; ///< branch: fall-through block
  std::vector<Reg> args{};    ///< call arguments
};

[[nodiscard]] constexpr bool is_terminator(Op op) noexcept {
  return op == Op::kBr || op == Op::kRet;
}

/// True for the four site families the paper instruments.
[[nodiscard]] constexpr bool is_instrumentable(Op op) noexcept {
  return op == Op::kAlloc || op == Op::kFree || op == Op::kGep ||
         op == Op::kObjCopy || op == Op::kClone;
}

[[nodiscard]] constexpr bool is_instrumented(Op op) noexcept {
  return op == Op::kPolarAlloc || op == Op::kPolarFree ||
         op == Op::kPolarGep || op == Op::kPolarObjCopy ||
         op == Op::kPolarClone || op == Op::kPolarGepMulti;
}

struct Block {
  std::vector<Instr> instrs;
};

struct Function {
  std::string name;
  std::uint32_t num_params = 0;  ///< parameters arrive in r0..rN-1
  std::uint32_t num_regs = 0;
  std::vector<Block> blocks;     ///< entry is block 0
};

struct Module {
  std::vector<Function> functions;

  [[nodiscard]] const Function* find(const std::string& name) const {
    for (const Function& f : functions) {
      if (f.name == name) return &f;
    }
    return nullptr;
  }
  [[nodiscard]] std::uint32_t index_of(const std::string& name) const;
};

/// Human-readable disassembly (tests, debugging, examples).
[[nodiscard]] std::string to_string(const Instr& instr);
[[nodiscard]] std::string to_string(const Function& fn);

}  // namespace polar::ir
