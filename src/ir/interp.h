// IR interpreter — executes modules either uninstrumented (natural
// layouts, constant member offsets: what a stock compiler emits) or after
// the PolarPass (kPolar* sites routed through a polar::Runtime).
//
// Running the same module both ways is this repo's equivalent of the
// paper's "default build vs POLaR build" comparison at the IR level, and
// the interpreter's per-site counters mirror Table III.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/runtime.h"
#include "core/type_registry.h"
#include "ir/ir.h"

namespace polar::ir {

struct InterpStats {
  std::uint64_t instrs = 0;
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t geps = 0;
  std::uint64_t obj_copies = 0;
  std::uint64_t calls = 0;
};

struct InterpResult {
  enum class Status {
    kOk,
    kFuelExhausted,
    kViolation,   ///< POLaR runtime refused an operation (UAF, bad field...)
    kError,       ///< structural problem (missing function, stack overflow)
  };
  Status status = Status::kOk;
  std::uint64_t value = 0;  ///< kRet operand when present
  Violation violation = Violation::kNone;
  std::string error;
  InterpStats stats;
};

class Interpreter {
 public:
  /// `runtime` may be null when the module contains no kPolar* sites
  /// (uninstrumented execution).
  Interpreter(const Module& module, const TypeRegistry& registry,
              Runtime* runtime = nullptr);
  ~Interpreter();

  Interpreter(const Interpreter&) = delete;
  Interpreter& operator=(const Interpreter&) = delete;

  /// Runs `function` with the given arguments. `fuel` bounds total
  /// instruction count across calls.
  InterpResult run(const std::string& function,
                   const std::vector<std::uint64_t>& args,
                   std::uint64_t fuel = 100'000'000);

  /// Objects allocated by uninstrumented kAlloc that were never freed
  /// (leak check for tests). Instrumented objects are tracked by the
  /// Runtime instead.
  [[nodiscard]] std::size_t live_direct_objects() const noexcept {
    return direct_live_.size();
  }

 private:
  struct ExecState;
  std::uint64_t call_function(std::uint32_t index,
                              const std::vector<std::uint64_t>& args,
                              ExecState& state, int depth);

  const Module& module_;
  const TypeRegistry& registry_;
  Runtime* runtime_;
  std::vector<void*> direct_live_;
  InterpStats stats_;
};

/// Bit-cast helpers for the kF* binops (registers hold raw words).
[[nodiscard]] inline double as_f64(std::uint64_t bits) noexcept {
  double d;
  __builtin_memcpy(&d, &bits, sizeof(d));
  return d;
}
[[nodiscard]] inline std::uint64_t from_f64(double d) noexcept {
  std::uint64_t bits;
  __builtin_memcpy(&bits, &d, sizeof(bits));
  return bits;
}

}  // namespace polar::ir
