#include "ir/verifier.h"

#include <sstream>

namespace polar::ir {

namespace {

std::string check_function(const Module& module, const TypeRegistry& registry,
                           const Function& fn) {
  const auto fail = [&](std::uint32_t block, std::size_t index,
                        const std::string& why) {
    std::ostringstream os;
    os << fn.name << " block " << block << " instr " << index << ": " << why;
    return os.str();
  };
  if (fn.blocks.empty()) return fn.name + ": function has no blocks";
  if (fn.num_params > fn.num_regs) {
    return fn.name + ": more params than registers";
  }

  const auto reg_ok = [&](Reg r) { return r == kNoReg || r < fn.num_regs; };
  const auto type_ok = [&](std::uint64_t raw) {
    return raw < registry.size();
  };

  for (std::uint32_t b = 0; b < fn.blocks.size(); ++b) {
    const Block& block = fn.blocks[b];
    if (block.instrs.empty()) return fail(b, 0, "empty block");
    for (std::size_t i = 0; i < block.instrs.size(); ++i) {
      const Instr& instr = block.instrs[i];
      const bool last = (i + 1 == block.instrs.size());
      if (is_terminator(instr.op) != last) {
        return fail(b, i, last ? "block does not end with a terminator"
                               : "terminator in the middle of a block");
      }
      if (!reg_ok(instr.dst) || !reg_ok(instr.a) || !reg_ok(instr.b)) {
        return fail(b, i, "register index out of range");
      }
      // kPolarGepMulti packs (dst, field) pairs into args — field values
      // are literals, not registers, so the call-argument check does not
      // apply; its own case below validates each pair.
      if (instr.op != Op::kPolarGepMulti) {
        for (Reg r : instr.args) {
          if (!reg_ok(r) || r == kNoReg) return fail(b, i, "bad call argument");
        }
      }
      switch (instr.op) {
        case Op::kConst:
        case Op::kMove:
        case Op::kBin:
        case Op::kNot:
        case Op::kLoad:
          if (instr.dst == kNoReg) return fail(b, i, "missing destination");
          break;
        case Op::kAlloc:
        case Op::kPolarAlloc:
          if (instr.dst == kNoReg) return fail(b, i, "missing destination");
          if (!type_ok(instr.imm)) return fail(b, i, "unknown type id");
          break;
        case Op::kFree:
        case Op::kPolarFree:
          if (instr.a == kNoReg) return fail(b, i, "free needs a pointer");
          if (!type_ok(instr.imm)) return fail(b, i, "unknown type id");
          break;
        case Op::kGep:
        case Op::kPolarGep: {
          if (instr.dst == kNoReg || instr.a == kNoReg) {
            return fail(b, i, "gep needs dst and base");
          }
          const std::uint64_t type_raw = instr.imm >> 32;
          const auto field = static_cast<std::uint32_t>(instr.imm);
          if (!type_ok(type_raw)) return fail(b, i, "unknown gep type");
          const TypeInfo& info =
              registry.info(TypeId{static_cast<std::uint32_t>(type_raw)});
          if (field >= info.field_count()) {
            return fail(b, i, "gep field out of range");
          }
          break;
        }
        case Op::kPolarGepMulti: {
          if (instr.a == kNoReg) return fail(b, i, "gep.multi needs a base");
          if (!type_ok(instr.imm)) return fail(b, i, "unknown gep type");
          if (instr.args.empty() || instr.args.size() % 2 != 0) {
            return fail(b, i, "gep.multi needs (dst, field) pairs");
          }
          const TypeInfo& info =
              registry.info(TypeId{static_cast<std::uint32_t>(instr.imm)});
          for (std::size_t k = 0; k < instr.args.size(); k += 2) {
            const Reg dst = instr.args[k];
            if (dst == kNoReg || dst >= fn.num_regs) {
              return fail(b, i, "gep.multi destination out of range");
            }
            if (instr.args[k + 1] >= info.field_count()) {
              return fail(b, i, "gep.multi field out of range");
            }
          }
          break;
        }
        case Op::kStore:
          if (instr.a == kNoReg || instr.b == kNoReg) {
            return fail(b, i, "store needs address and value");
          }
          break;
        case Op::kObjCopy:
        case Op::kPolarObjCopy:
          if (instr.a == kNoReg || instr.b == kNoReg) {
            return fail(b, i, "objcopy needs src and dst");
          }
          if (!type_ok(instr.imm)) return fail(b, i, "unknown type id");
          break;
        case Op::kClone:
        case Op::kPolarClone:
          if (instr.dst == kNoReg || instr.a == kNoReg) {
            return fail(b, i, "clone needs dst and src");
          }
          if (!type_ok(instr.imm)) return fail(b, i, "unknown type id");
          break;
        case Op::kCall: {
          if (instr.imm >= module.functions.size()) {
            return fail(b, i, "unknown callee");
          }
          const Function& callee = module.functions[instr.imm];
          if (instr.args.size() != callee.num_params) {
            return fail(b, i, "call arity mismatch");
          }
          break;
        }
        case Op::kBr:
          if (instr.target_a >= fn.blocks.size() ||
              instr.target_b >= fn.blocks.size()) {
            return fail(b, i, "branch target out of range");
          }
          break;
        case Op::kRet:
          break;
      }
    }
  }
  return {};
}

}  // namespace

std::string verify(const Module& module, const TypeRegistry& registry) {
  if (module.functions.empty()) return "module has no functions";
  for (const Function& fn : module.functions) {
    std::string err = check_function(module, registry, fn);
    if (!err.empty()) return err;
  }
  return {};
}

}  // namespace polar::ir
