// Structural verification of IR modules, run before interpretation or
// instrumentation — the moral equivalent of llvm::verifyModule.
#pragma once

#include <string>

#include "core/type_registry.h"
#include "ir/ir.h"

namespace polar::ir {

/// Returns an empty string if the module is well-formed, otherwise a
/// description of the first problem found. Checks: every block ends with
/// exactly one terminator (and contains no interior ones), register
/// indices are within the function's register count, branch targets and
/// callee indices exist, gep/alloc type ids and field indices resolve
/// against `registry`.
[[nodiscard]] std::string verify(const Module& module,
                                 const TypeRegistry& registry);

}  // namespace polar::ir
