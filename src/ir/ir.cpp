#include "ir/ir.h"

#include <sstream>

#include "support/assert.h"

namespace polar::ir {

std::uint32_t Module::index_of(const std::string& name) const {
  for (std::uint32_t i = 0; i < functions.size(); ++i) {
    if (functions[i].name == name) return i;
  }
  POLAR_CHECK(false, "no such function");
  return 0;
}

namespace {

const char* op_name(Op op) {
  switch (op) {
    case Op::kConst: return "const";
    case Op::kMove: return "mov";
    case Op::kBin: return "bin";
    case Op::kNot: return "not";
    case Op::kAlloc: return "alloc";
    case Op::kFree: return "free";
    case Op::kGep: return "gep";
    case Op::kLoad: return "load";
    case Op::kStore: return "store";
    case Op::kObjCopy: return "objcpy";
    case Op::kClone: return "clone";
    case Op::kCall: return "call";
    case Op::kBr: return "br";
    case Op::kRet: return "ret";
    case Op::kPolarAlloc: return "polar.alloc";
    case Op::kPolarFree: return "polar.free";
    case Op::kPolarGep: return "polar.gep";
    case Op::kPolarObjCopy: return "polar.objcpy";
    case Op::kPolarClone: return "polar.clone";
    case Op::kPolarGepMulti: return "polar.gep.multi";
  }
  return "?";
}

const char* bin_name(Bin b) {
  switch (b) {
    case Bin::kAdd: return "add";
    case Bin::kSub: return "sub";
    case Bin::kMul: return "mul";
    case Bin::kUDiv: return "udiv";
    case Bin::kURem: return "urem";
    case Bin::kAnd: return "and";
    case Bin::kOr: return "or";
    case Bin::kXor: return "xor";
    case Bin::kShl: return "shl";
    case Bin::kShr: return "shr";
    case Bin::kEq: return "eq";
    case Bin::kNe: return "ne";
    case Bin::kULt: return "ult";
    case Bin::kULe: return "ule";
    case Bin::kFAdd: return "fadd";
    case Bin::kFSub: return "fsub";
    case Bin::kFMul: return "fmul";
    case Bin::kFDiv: return "fdiv";
    case Bin::kFLt: return "flt";
  }
  return "?";
}

void append_reg(std::ostringstream& os, Reg r) {
  if (r == kNoReg) {
    os << "_";
  } else {
    os << "r" << r;
  }
}

}  // namespace

std::string to_string(const Instr& instr) {
  std::ostringstream os;
  if (instr.dst != kNoReg) {
    append_reg(os, instr.dst);
    os << " = ";
  }
  os << op_name(instr.op);
  if (instr.op == Op::kBin) os << "." << bin_name(instr.bin);
  if (instr.op == Op::kLoad || instr.op == Op::kStore) {
    os << ".w" << width_bytes(instr.width) * 8;
  }
  if (instr.a != kNoReg) {
    os << " ";
    append_reg(os, instr.a);
  }
  if (instr.b != kNoReg) {
    os << ", ";
    append_reg(os, instr.b);
  }
  switch (instr.op) {
    case Op::kConst:
    case Op::kAlloc:
    case Op::kPolarAlloc:
    case Op::kFree:
    case Op::kPolarFree:
    case Op::kObjCopy:
    case Op::kPolarObjCopy:
    case Op::kClone:
    case Op::kPolarClone:
    case Op::kCall:
      os << " #" << instr.imm;
      break;
    case Op::kGep:
    case Op::kPolarGep:
      os << " type#" << (instr.imm >> 32) << " field#"
         << static_cast<std::uint32_t>(instr.imm);
      break;
    case Op::kBr:
      os << " ->b" << instr.target_a << " / b" << instr.target_b;
      break;
    case Op::kPolarGepMulti: {
      // args carry (dst, field) pairs, not call arguments.
      os << " type#" << instr.imm << " (";
      for (std::size_t i = 0; i + 1 < instr.args.size(); i += 2) {
        if (i != 0) os << ", ";
        append_reg(os, instr.args[i]);
        os << ":f" << instr.args[i + 1];
      }
      os << ")";
      return os.str();
    }
    default:
      break;
  }
  if (!instr.args.empty()) {
    os << " (";
    for (std::size_t i = 0; i < instr.args.size(); ++i) {
      if (i != 0) os << ", ";
      append_reg(os, instr.args[i]);
    }
    os << ")";
  }
  return os.str();
}

std::string to_string(const Function& fn) {
  std::ostringstream os;
  os << "fn " << fn.name << "(" << fn.num_params << " params, " << fn.num_regs
     << " regs)\n";
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    os << " b" << b << ":\n";
    for (const Instr& instr : fn.blocks[b].instrs) {
      os << "   " << to_string(instr) << "\n";
    }
  }
  return os.str();
}

}  // namespace polar::ir
