#include "ir/interp.h"

#include <algorithm>
#include <cstring>
#include <new>
#include <sstream>

#include "support/assert.h"

namespace polar::ir {

namespace {
constexpr int kMaxCallDepth = 256;
}

/// Mutable execution context shared across the call tree. Faults unwind by
/// setting `result` and returning; call_function checks after each step.
struct Interpreter::ExecState {
  std::uint64_t fuel = 0;
  InterpResult result;
  bool faulted = false;

  void fault(InterpResult::Status status, std::string why,
             Violation v = Violation::kNone) {
    if (faulted) return;
    faulted = true;
    result.status = status;
    result.error = std::move(why);
    result.violation = v;
  }
};

Interpreter::Interpreter(const Module& module, const TypeRegistry& registry,
                         Runtime* runtime)
    : module_(module), registry_(registry), runtime_(runtime) {}

Interpreter::~Interpreter() {
  for (void* p : direct_live_) ::operator delete(p);
}

std::uint64_t Interpreter::call_function(std::uint32_t index,
                                         const std::vector<std::uint64_t>& args,
                                         ExecState& state, int depth) {
  if (depth > kMaxCallDepth) {
    state.fault(InterpResult::Status::kError, "call stack overflow");
    return 0;
  }
  const Function& fn = module_.functions[index];
  std::vector<std::uint64_t> regs(fn.num_regs, 0);
  std::copy(args.begin(), args.end(), regs.begin());

  const auto get = [&](Reg r) -> std::uint64_t {
    return r == kNoReg ? 0 : regs[r];
  };

  std::uint32_t block = 0;
  std::size_t pc = 0;
  while (!state.faulted) {
    if (state.fuel == 0) {
      state.fault(InterpResult::Status::kFuelExhausted, "out of fuel");
      return 0;
    }
    --state.fuel;
    ++stats_.instrs;

    const Instr& instr = fn.blocks[block].instrs[pc];
    ++pc;
    switch (instr.op) {
      case Op::kConst:
        regs[instr.dst] = instr.imm;
        break;
      case Op::kMove:
        regs[instr.dst] = get(instr.a);
        break;
      case Op::kNot:
        regs[instr.dst] = ~get(instr.a);
        break;
      case Op::kBin: {
        const std::uint64_t a = get(instr.a);
        const std::uint64_t b = get(instr.b);
        std::uint64_t r = 0;
        switch (instr.bin) {
          case Bin::kAdd: r = a + b; break;
          case Bin::kSub: r = a - b; break;
          case Bin::kMul: r = a * b; break;
          case Bin::kUDiv:
            if (b == 0) {
              state.fault(InterpResult::Status::kError, "division by zero");
              return 0;
            }
            r = a / b;
            break;
          case Bin::kURem:
            if (b == 0) {
              state.fault(InterpResult::Status::kError, "remainder by zero");
              return 0;
            }
            r = a % b;
            break;
          case Bin::kAnd: r = a & b; break;
          case Bin::kOr: r = a | b; break;
          case Bin::kXor: r = a ^ b; break;
          case Bin::kShl: r = a << (b & 63); break;
          case Bin::kShr: r = a >> (b & 63); break;
          case Bin::kEq: r = (a == b); break;
          case Bin::kNe: r = (a != b); break;
          case Bin::kULt: r = (a < b); break;
          case Bin::kULe: r = (a <= b); break;
          case Bin::kFAdd: r = from_f64(as_f64(a) + as_f64(b)); break;
          case Bin::kFSub: r = from_f64(as_f64(a) - as_f64(b)); break;
          case Bin::kFMul: r = from_f64(as_f64(a) * as_f64(b)); break;
          case Bin::kFDiv: r = from_f64(as_f64(a) / as_f64(b)); break;
          case Bin::kFLt: r = (as_f64(a) < as_f64(b)); break;
        }
        regs[instr.dst] = r;
        break;
      }
      case Op::kAlloc: {
        ++stats_.allocs;
        const TypeInfo& info =
            registry_.info(TypeId{static_cast<std::uint32_t>(instr.imm)});
        void* p = ::operator new(info.natural_size);
        std::memset(p, 0, info.natural_size);
        direct_live_.push_back(p);
        regs[instr.dst] = reinterpret_cast<std::uint64_t>(p);
        break;
      }
      case Op::kFree: {
        ++stats_.frees;
        void* p = reinterpret_cast<void*>(get(instr.a));
        auto it = std::find(direct_live_.begin(), direct_live_.end(), p);
        if (it == direct_live_.end()) {
          // Uninstrumented builds have no metadata: a double free here is
          // the silent corruption POLaR upgrades to a detection.
          state.fault(InterpResult::Status::kError,
                      "free of unknown direct object");
          return 0;
        }
        direct_live_.erase(it);
        ::operator delete(p);
        break;
      }
      case Op::kGep: {
        ++stats_.geps;
        const TypeInfo& info = registry_.info(
            TypeId{static_cast<std::uint32_t>(instr.imm >> 32)});
        const auto field = static_cast<std::uint32_t>(instr.imm);
        // What a compiler emits: base + fixed constant. No liveness check,
        // no randomization — by design.
        regs[instr.dst] = get(instr.a) + info.natural_offsets[field];
        break;
      }
      case Op::kLoad: {
        std::uint64_t v = 0;
        std::memcpy(&v, reinterpret_cast<const void*>(get(instr.a)),
                    width_bytes(instr.width));
        regs[instr.dst] = v;
        break;
      }
      case Op::kStore: {
        const std::uint64_t v = get(instr.b);
        std::memcpy(reinterpret_cast<void*>(get(instr.a)), &v,
                    width_bytes(instr.width));
        break;
      }
      case Op::kObjCopy: {
        ++stats_.obj_copies;
        const TypeInfo& info =
            registry_.info(TypeId{static_cast<std::uint32_t>(instr.imm)});
        std::memcpy(reinterpret_cast<void*>(get(instr.b)),
                    reinterpret_cast<const void*>(get(instr.a)),
                    info.natural_size);
        break;
      }
      case Op::kClone: {
        ++stats_.obj_copies;
        const TypeInfo& info =
            registry_.info(TypeId{static_cast<std::uint32_t>(instr.imm)});
        void* p = ::operator new(info.natural_size);
        std::memcpy(p, reinterpret_cast<const void*>(get(instr.a)),
                    info.natural_size);
        direct_live_.push_back(p);
        regs[instr.dst] = reinterpret_cast<std::uint64_t>(p);
        break;
      }
      // ---- instrumented sites: route through the POLaR runtime ----------
      case Op::kPolarAlloc: {
        ++stats_.allocs;
        POLAR_CHECK(runtime_ != nullptr,
                    "instrumented module requires a Runtime");
        void* p = runtime_->olr_malloc(
            TypeId{static_cast<std::uint32_t>(instr.imm)});
        regs[instr.dst] = reinterpret_cast<std::uint64_t>(p);
        break;
      }
      case Op::kPolarFree: {
        ++stats_.frees;
        if (!runtime_->olr_free(reinterpret_cast<void*>(get(instr.a)))) {
          state.fault(InterpResult::Status::kViolation, "olr_free refused",
                      runtime_->last_violation());
          return 0;
        }
        break;
      }
      case Op::kPolarGep: {
        ++stats_.geps;
        const auto field = static_cast<std::uint32_t>(instr.imm);
        void* p = runtime_->olr_getptr(
            reinterpret_cast<void*>(get(instr.a)), field);
        if (p == nullptr) {
          state.fault(InterpResult::Status::kViolation, "olr_getptr refused",
                      runtime_->last_violation());
          return 0;
        }
        regs[instr.dst] = reinterpret_cast<std::uint64_t>(p);
        break;
      }
      case Op::kPolarGepMulti: {
        // One metadata consultation for the whole (dst, field) pair list —
        // the executed form of the pass's gep coalescing. Counts one gep
        // per pair so stats are bit-identical to the uncoalesced program.
        const std::size_t pairs = instr.args.size() / 2;
        stats_.geps += pairs;
        void* base = reinterpret_cast<void*>(get(instr.a));
        constexpr std::size_t kChunk = 16;
        std::uint32_t fields[kChunk];
        void* out[kChunk];
        for (std::size_t done = 0; done < pairs; done += kChunk) {
          const std::size_t n = std::min(kChunk, pairs - done);
          for (std::size_t k = 0; k < n; ++k) {
            fields[k] = instr.args[2 * (done + k) + 1];
          }
          (void)runtime_->olr_getptr_multi(base, fields, out, n);
          for (std::size_t k = 0; k < n; ++k) {
            if (out[k] == nullptr) {
              state.fault(InterpResult::Status::kViolation,
                          "olr_getptr refused", runtime_->last_violation());
              return 0;
            }
            regs[instr.args[2 * (done + k)]] =
                reinterpret_cast<std::uint64_t>(out[k]);
          }
        }
        break;
      }
      case Op::kPolarObjCopy: {
        ++stats_.obj_copies;
        if (!runtime_->olr_memcpy(reinterpret_cast<void*>(get(instr.b)),
                                  reinterpret_cast<const void*>(get(instr.a)))) {
          state.fault(InterpResult::Status::kViolation, "olr_memcpy refused",
                      runtime_->last_violation());
          return 0;
        }
        break;
      }
      case Op::kPolarClone: {
        ++stats_.obj_copies;
        void* p =
            runtime_->olr_clone(reinterpret_cast<const void*>(get(instr.a)));
        if (p == nullptr) {
          state.fault(InterpResult::Status::kViolation, "olr_clone refused",
                      runtime_->last_violation());
          return 0;
        }
        regs[instr.dst] = reinterpret_cast<std::uint64_t>(p);
        break;
      }
      case Op::kCall: {
        ++stats_.calls;
        std::vector<std::uint64_t> call_args;
        call_args.reserve(instr.args.size());
        for (Reg r : instr.args) call_args.push_back(regs[r]);
        const std::uint64_t v = call_function(
            static_cast<std::uint32_t>(instr.imm), call_args, state, depth + 1);
        if (state.faulted) return 0;
        if (instr.dst != kNoReg) regs[instr.dst] = v;
        break;
      }
      case Op::kBr: {
        const bool taken = (instr.a == kNoReg) || get(instr.a) != 0;
        block = taken ? instr.target_a : instr.target_b;
        pc = 0;
        break;
      }
      case Op::kRet:
        return get(instr.a);
    }
  }
  return 0;
}

InterpResult Interpreter::run(const std::string& function,
                              const std::vector<std::uint64_t>& args,
                              std::uint64_t fuel) {
  stats_ = InterpStats{};
  ExecState state;
  state.fuel = fuel;

  const Function* fn = module_.find(function);
  if (fn == nullptr) {
    state.result.status = InterpResult::Status::kError;
    state.result.error = "no such function: " + function;
    state.result.stats = stats_;
    return state.result;
  }
  if (args.size() != fn->num_params) {
    state.result.status = InterpResult::Status::kError;
    state.result.error = "argument count mismatch";
    state.result.stats = stats_;
    return state.result;
  }
  const std::uint64_t value =
      call_function(module_.index_of(function), args, state, 0);
  if (!state.faulted) {
    state.result.status = InterpResult::Status::kOk;
    state.result.value = value;
  }
  state.result.stats = stats_;
  return state.result;
}

}  // namespace polar::ir
