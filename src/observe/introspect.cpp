#include "observe/introspect.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <unordered_set>

#include "core/layout.h"
#include "core/runtime.h"

namespace polar::observe {

namespace {

std::size_t entropy_band(double bits) {
  if (bits < 0.0) return 0;
  const double band = bits / kEntropyBandWidth;
  return band >= static_cast<double>(kEntropyBands - 1) ? kEntropyBands - 1
                                                        : static_cast<std::size_t>(band);
}

void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

}  // namespace

double type_entropy_bits(const Runtime& rt, TypeId t) {
  const TypeInfo& info = rt.registry().info(t);
  // permutation_space saturates at uint64 max; log2 of that reads as
  // "64 bits", an honest floor since dummies multiply the true space.
  double bits = std::log2(
      static_cast<double>(permutation_space(info, rt.config().policy)));
  // A derived type realizes at most its schedule's distinct entries —
  // report the diversity an attacker actually faces, not the policy's
  // theoretical space.
  if (const StatelessSchedule* sch = rt.schedule(t)) {
    const double cap = std::log2(static_cast<double>(
        sch->distinct_layouts() == 0 ? 1 : sch->distinct_layouts()));
    bits = std::min(bits, cap);
  }
  return bits;
}

IntrospectionReport introspect(const Runtime& rt) {
  IntrospectionReport r;
  const TypeRegistry& reg = rt.registry();
  const std::size_t n_types = reg.size();
  r.census.resize(n_types);
  std::vector<std::unordered_set<const Layout*>> seen_layouts(n_types);

  std::uint32_t id = 0;
  for (const TypeInfo& info : reg) {
    TypeCensusRow& row = r.census[id];
    row.type_name = info.name;
    row.type_id = id;
    row.backend = rt.backend_kind(TypeId{id});
    row.entropy_bits = type_entropy_bits(rt, TypeId{id});
    ++r.entropy_histogram[entropy_band(row.entropy_bits)];
    ++id;
  }

  rt.for_each_live([&](const ObjectRecord& rec) {
    const std::uint32_t t = rec.type.value;
    if (t >= n_types) return;  // foreign/damaged record; census skips it
    TypeCensusRow& row = r.census[t];
    ++row.live_objects;
    row.live_bytes += rec.layout->size;
    seen_layouts[t].insert(rec.layout);
    ++r.live_objects;
  });
  for (std::size_t i = 0; i < n_types; ++i) {
    r.census[i].distinct_layouts = seen_layouts[i].size();
  }

  r.live_layouts = rt.live_layouts();
  const RuntimeStats stats = rt.stats();
  const std::uint64_t drawn = stats.layouts_created + stats.layouts_deduped;
  r.layout_dedup_ratio =
      drawn == 0 ? 0.0
                 : static_cast<double>(stats.layouts_deduped) /
                       static_cast<double>(drawn);
  return r;
}

std::string to_json(const IntrospectionReport& r) {
  std::string out;
  out.reserve(1024 + r.census.size() * 160);
  out += "{\n  \"census\": [\n";
  for (std::size_t i = 0; i < r.census.size(); ++i) {
    const TypeCensusRow& row = r.census[i];
    append_fmt(out,
               "    {\"type\": \"%s\", \"type_id\": %" PRIu32
               ", \"backend\": \"%s\", \"live_objects\": %" PRIu64
               ", \"live_bytes\": %" PRIu64 ", \"distinct_layouts\": %" PRIu64
               ", \"entropy_bits\": %.2f}%s\n",
               row.type_name.c_str(), row.type_id, to_string(row.backend),
               row.live_objects, row.live_bytes, row.distinct_layouts,
               row.entropy_bits, i + 1 < r.census.size() ? "," : "");
  }
  out += "  ],\n";
  append_fmt(out, "  \"live_objects\": %" PRIu64 ",\n", r.live_objects);
  append_fmt(out, "  \"live_layouts\": %" PRIu64 ",\n", r.live_layouts);
  append_fmt(out, "  \"layout_dedup_ratio\": %.4f,\n", r.layout_dedup_ratio);
  out += "  \"entropy_histogram_bits_per_band\": 8,\n";
  out += "  \"entropy_histogram\": [";
  for (std::size_t i = 0; i < r.entropy_histogram.size(); ++i) {
    append_fmt(out, "%s%" PRIu64, i == 0 ? "" : ", ", r.entropy_histogram[i]);
  }
  out += "]\n}\n";
  return out;
}

std::string to_table(const IntrospectionReport& r) {
  std::string out;
  append_fmt(out, "%-24s %-10s %8s %10s %12s %9s %8s\n", "type", "backend",
             "live", "bytes", "layouts", "entropy", "dedup%");
  for (const TypeCensusRow& row : r.census) {
    const double dedup_pct =
        row.live_objects == 0
            ? 0.0
            : 100.0 * (1.0 - static_cast<double>(row.distinct_layouts) /
                                 static_cast<double>(row.live_objects));
    append_fmt(out, "%-24s %-10s %8" PRIu64 " %10" PRIu64 " %12" PRIu64
               " %8.1fb %7.1f%%\n",
               row.type_name.c_str(), to_string(row.backend), row.live_objects,
               row.live_bytes, row.distinct_layouts, row.entropy_bits,
               dedup_pct);
  }
  append_fmt(out,
             "total: %" PRIu64 " live objects, %" PRIu64
             " interned layouts, dedup ratio %.3f\n",
             r.live_objects, r.live_layouts, r.layout_dedup_ratio);
  return out;
}

}  // namespace polar::observe
