// Event tracing primitives — the data plane of the observability layer
// (DESIGN.md §11).
//
// The paper's evaluation is counter-based (Table III operation counts);
// counters answer "how many" but not "which allocation tripped the
// violation" or "where does fast-path time go". This header provides the
// event-level complement:
//
//  * TraceEvent — one fixed-size binary record (timestamp, thread, event
//    kind, object id, type id, duration) cheap enough to write on a
//    sampled hot path.
//  * TraceRing — a bounded per-thread ring of TraceEvents. The producer is
//    always the owning thread and never takes a lock; readers snapshot at
//    quiescent points (the same contract as Runtime::stats()). Two full
//    policies: keep-latest (wrap, overwriting the oldest) or keep-oldest
//    (drop new arrivals); either way every lost event is counted, so the
//    accounting identity recorded == stored + dropped always holds.
//  * Log2Histogram — power-of-two latency buckets for the sampled
//    getptr/alloc durations; aggregates across threads with add().
//
// Everything here compiles unconditionally (tests exercise the ring even
// in no-trace builds); only the runtime's hot-path *hooks* are guarded by
// POLAR_TRACE_ENABLED, so a no-trace build's member-access path is
// bit-identical to the pre-observability runtime.
#pragma once

#include <array>
#include <bit>
#include <chrono>
#include <cstdint>
#include <vector>

namespace polar::observe {

/// Which runtime site emitted an event.
enum class TraceEventKind : std::uint8_t {
  kAlloc,            ///< obj_alloc (sampled; duration = whole allocation)
  kFree,             ///< obj_free (sampled)
  kGetptrFast,       ///< member access resolved by cache or seqlock mirror
  kGetptrSlow,       ///< member access that fell to the shard-locked path
  kViolation,        ///< policy engine report (always recorded, not sampled;
                     ///< detail = the Violation class)
  kQuarantineDrain,  ///< free_all handed parked blocks back (object_id =
                     ///< number of blocks drained)
  kLayoutRefill,     ///< a thread's per-type layout pool was refilled
                     ///< (object_id = layouts generated)
  kServerRequest,    ///< one served request of the KV/HTTP workload
                     ///< (timestamp = scheduled arrival, object_id =
                     ///< request index, duration = arrival-to-response —
                     ///< the coordinated-omission-safe latency)
};
inline constexpr std::size_t kTraceEventKindCount = 8;

[[nodiscard]] constexpr const char* to_string(TraceEventKind k) noexcept {
  switch (k) {
    case TraceEventKind::kAlloc: return "alloc";
    case TraceEventKind::kFree: return "free";
    case TraceEventKind::kGetptrFast: return "getptr-fast";
    case TraceEventKind::kGetptrSlow: return "getptr-slow";
    case TraceEventKind::kViolation: return "violation";
    case TraceEventKind::kQuarantineDrain: return "quarantine-drain";
    case TraceEventKind::kLayoutRefill: return "layout-refill";
    case TraceEventKind::kServerRequest: return "server-request";
  }
  return "?";
}

/// Monotonic tick source for event timestamps and durations. Nanoseconds
/// on every platform this repo targets (steady_clock's period is nano).
[[nodiscard]] inline std::uint64_t trace_clock() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

/// One fixed-size binary trace record. 40 bytes so a 4096-entry ring is
/// 160 KiB per tracing thread — bounded by construction, never growing.
struct TraceEvent {
  std::uint64_t timestamp = 0;  ///< trace_clock() at the event
  std::uint64_t thread = 0;     ///< numeric id of the emitting thread
  std::uint64_t object_id = 0;  ///< allocation id (or a kind-specific count)
  std::uint32_t type = 0xffffffff;  ///< TypeId::value, 0xffffffff = none
  std::uint32_t duration = 0;       ///< ticks, saturated at 2^32-1; 0 = unmeasured
  TraceEventKind kind = TraceEventKind::kAlloc;
  std::uint8_t detail = 0;  ///< Violation class for kViolation, else 0
  std::uint16_t reserved = 0;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};
static_assert(sizeof(TraceEvent) == 40, "TraceEvent is a wire format");

/// Accounting snapshot of one or more rings (see Runtime::trace_ring_stats
/// — per-ring numbers are summed across threads).
struct TraceRingStats {
  std::uint64_t recorded = 0;  ///< push() calls (stored + dropped)
  std::uint64_t stored = 0;    ///< events that entered a ring slot
  std::uint64_t dropped = 0;   ///< overwritten (keep-latest) or refused
                               ///< (keep-oldest) events
  std::uint64_t threads = 0;   ///< rings aggregated into this snapshot
  /// push() calls per event kind, including dropped ones.
  std::array<std::uint64_t, kTraceEventKindCount> by_kind{};

  void add(const TraceRingStats& o) noexcept {
    recorded += o.recorded;
    stored += o.stored;
    dropped += o.dropped;
    threads += o.threads;
    for (std::size_t i = 0; i < by_kind.size(); ++i) by_kind[i] += o.by_kind[i];
  }

  friend bool operator==(const TraceRingStats&,
                         const TraceRingStats&) = default;
};

/// Bounded single-producer event ring. The owning thread pushes without
/// locks or atomics; snapshot()/stats() are for quiescent readers (the
/// aggregation side holds the runtime's thread-registry mutex, so two
/// aggregators never race each other — only a still-running producer
/// would, which the quiescence contract excludes).
class TraceRing {
 public:
  /// What to do when the ring is full.
  enum class Mode : std::uint8_t {
    kKeepLatest,  ///< overwrite the oldest event (post-mortem posture:
                  ///< the most recent history explains the failure)
    kKeepOldest,  ///< drop the new event (profiling posture: the steady
                  ///< state beginning is what's being measured)
  };

  /// `capacity` must be zero (a counting-only ring that stores nothing —
  /// used when tracing is runtime-disabled so no memory is committed) or a
  /// power of two.
  explicit TraceRing(std::uint32_t capacity = 0, Mode mode = Mode::kKeepLatest)
      : slots_(capacity), mode_(mode) {}

  void push(const TraceEvent& e) noexcept {
    ++recorded_;
    ++by_kind_[static_cast<std::size_t>(e.kind)];
    if (slots_.empty()) {
      ++dropped_;
      return;
    }
    if (mode_ == Mode::kKeepOldest && head_ >= slots_.size()) {
      ++dropped_;
      return;
    }
    if (mode_ == Mode::kKeepLatest && head_ >= slots_.size()) {
      ++dropped_;  // the slot being reused held an event now lost
    }
    slots_[head_ & (slots_.size() - 1)] = e;
    ++head_;
  }

  /// Appends the stored events, oldest first, to `out`.
  void snapshot(std::vector<TraceEvent>& out) const {
    const std::uint64_t n =
        head_ < slots_.size() ? head_ : static_cast<std::uint64_t>(slots_.size());
    const std::uint64_t first = head_ - n;
    for (std::uint64_t i = 0; i < n; ++i) {
      out.push_back(slots_[(first + i) & (slots_.size() - 1)]);
    }
  }

  [[nodiscard]] TraceRingStats stats() const noexcept {
    TraceRingStats s;
    s.recorded = recorded_;
    s.dropped = dropped_;
    s.stored = recorded_ - dropped_;
    s.threads = 1;
    s.by_kind = by_kind_;
    return s;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }
  /// Events currently held (min(events stored, capacity)).
  [[nodiscard]] std::size_t size() const noexcept {
    return head_ < slots_.size() ? static_cast<std::size_t>(head_)
                                 : slots_.size();
  }

 private:
  std::vector<TraceEvent> slots_;
  std::uint64_t head_ = 0;      ///< events written into slots (monotonic)
  std::uint64_t recorded_ = 0;  ///< push() calls
  std::uint64_t dropped_ = 0;   ///< events lost (either mode)
  std::array<std::uint64_t, kTraceEventKindCount> by_kind_{};
  Mode mode_;
};

/// Power-of-two latency histogram: bucket i counts values whose bit width
/// is i (i.e. v in [2^(i-1), 2^i)), bucket 0 counts zeros. 64 buckets
/// cover the full uint64 range, so record() never branches on range.
struct Log2Histogram {
  std::array<std::uint64_t, 64> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  [[nodiscard]] static constexpr std::uint32_t bucket_of(
      std::uint64_t v) noexcept {
    return v == 0 ? 0u
                  : (std::bit_width(v) > 63 ? 63u
                                            : static_cast<std::uint32_t>(
                                                  std::bit_width(v)));
  }

  void record(std::uint64_t v) noexcept {
    ++count;
    sum += v;
    ++buckets[bucket_of(v)];
  }

  void add(const Log2Histogram& o) noexcept {
    count += o.count;
    sum += o.sum;
    for (std::size_t i = 0; i < buckets.size(); ++i) buckets[i] += o.buckets[i];
  }

  friend bool operator==(const Log2Histogram&, const Log2Histogram&) = default;
};

/// Upper bound (inclusive) of the bucket holding the q-quantile, i.e. the
/// smallest power-of-two bound B such that at least ceil(q * count) recorded
/// values are <= B. The histogram's resolution IS the answer's resolution:
/// a reported p99 of 4096 ns means "the 99th percentile lies in (2048,
/// 4096]". 0 on an empty histogram. q is clamped to [0, 1].
[[nodiscard]] inline std::uint64_t percentile_upper_bound(
    const Log2Histogram& h, double q) noexcept {
  if (h.count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // ceil(q * count) without floating-point edge surprises at q = 1.
  std::uint64_t rank = static_cast<std::uint64_t>(
      q * static_cast<double>(h.count) + 0.999999999);
  if (rank == 0) rank = 1;
  if (rank > h.count) rank = h.count;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    seen += h.buckets[i];
    if (seen >= rank) {
      // Bucket 63 also absorbs bit-width-64 values, so its bound is 2^64-1.
      return i == 0 ? 0 : (i >= 63 ? ~0ULL : (1ULL << i) - 1);
    }
  }
  return ~0ULL;
}

/// The two hot-path latency distributions the runtime samples.
struct LatencyHistograms {
  Log2Histogram getptr_ns;
  Log2Histogram alloc_ns;

  void add(const LatencyHistograms& o) noexcept {
    getptr_ns.add(o.getptr_ns);
    alloc_ns.add(o.alloc_ns);
  }

  friend bool operator==(const LatencyHistograms&,
                         const LatencyHistograms&) = default;
};

}  // namespace polar::observe
