// Metrics registry + exporters — the aggregation plane of the
// observability layer (DESIGN.md §11).
//
// collect_metrics() freezes everything a Runtime knows about itself into
// one MetricsSnapshot: the Table-III operation counters (RuntimeStats),
// per-class violation report counts, shard-lock contention, live-set
// gauges, trace-ring accounting, and the sampled latency histograms. The
// snapshot is all integers, so the JSON exporter round-trips exactly:
// from_json(to_json(m)) == m, which observe_test asserts and polar_stats
// --selfcheck re-asserts against live workload data.
//
// Exporters:
//   to_json        one deterministic JSON document (machine diffable)
//   to_prometheus  Prometheus text exposition format, counters suffixed
//                  _total, histograms as cumulative le-labeled buckets
//
// consistency_violations() checks the cross-counter invariants that must
// hold for any snapshot taken at a quiescent point; scripts/check.sh gates
// on it via `polar_stats --selfcheck`.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "alloc/scalable_heap.h"
#include "core/result.h"
#include "core/stats.h"
#include "observe/trace_ring.h"

namespace polar {
class Runtime;
}

namespace polar::observe {

/// Shard-lock telemetry for the metadata table.
struct ShardContention {
  std::uint64_t shards = 0;        ///< shard count (2^shard_bits)
  std::uint64_t acquisitions = 0;  ///< workload-path shard locks taken
  std::uint64_t contended = 0;     ///< acquisitions that had to block

  friend bool operator==(const ShardContention&,
                         const ShardContention&) = default;
};

/// Everything collect_metrics() can see, frozen at one quiescent point.
struct MetricsSnapshot {
  bool trace_compiled_in = false;
  std::uint32_t trace_sample_interval = 0;

  RuntimeStats stats;
  /// PolicyEngine::reports per Violation class, indexed like the enum.
  std::array<std::uint64_t, kViolationClassCount> violation_reports{};
  ShardContention contention;

  std::uint64_t live_objects = 0;
  std::uint64_t live_layouts = 0;
  std::uint64_t quarantined_blocks = 0;

  /// ScalableHeap substrate counters (reuse/refill/remote-drain rates for
  /// polar_stats). attached=false — and every field zero — when the
  /// runtime routes raw allocation elsewhere (custom alloc hook, or
  /// RuntimeConfig::scalable_heap off). The counters are process-wide:
  /// the substrate is ScalableHeap::process_heap(), shared by every
  /// hook-less Runtime in the process.
  bool heap_attached = false;
  ScalableHeapStats heap;

  TraceRingStats trace;
  LatencyHistograms latency;

  friend bool operator==(const MetricsSnapshot&,
                         const MetricsSnapshot&) = default;
};

/// Snapshots `rt`. Same quiescence contract as Runtime::stats(): exact
/// when no thread is mid-operation.
[[nodiscard]] MetricsSnapshot collect_metrics(const Runtime& rt);

/// Deterministic JSON document (stable key order, integers only).
[[nodiscard]] std::string to_json(const MetricsSnapshot& m);

/// Parses a to_json() document back into a snapshot. Returns false (and
/// leaves `out` unspecified) on malformed input or schema mismatch.
[[nodiscard]] bool from_json(std::string_view json, MetricsSnapshot& out);

/// Prometheus text exposition format (one scrape page).
[[nodiscard]] std::string to_prometheus(const MetricsSnapshot& m);

/// Cross-counter invariants that must hold at quiescent points. Returns
/// one human-readable line per violated invariant; empty = consistent.
[[nodiscard]] std::vector<std::string> consistency_violations(
    const MetricsSnapshot& m);

}  // namespace polar::observe
