#include "observe/metrics.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "core/runtime.h"

namespace polar::observe {

namespace {

/// One table drives all three exporters, so a counter added to
/// RuntimeStats shows up in JSON, Prometheus, and the round-trip parser by
/// adding a single row here (observe_test's aggregation test fails if the
/// row is forgotten, because equality then ignores the new field).
struct StatField {
  const char* name;
  std::uint64_t RuntimeStats::* member;
};
constexpr StatField kStatFields[] = {
    {"allocations", &RuntimeStats::allocations},
    {"frees", &RuntimeStats::frees},
    {"memcpys", &RuntimeStats::memcpys},
    {"clones", &RuntimeStats::clones},
    {"member_accesses", &RuntimeStats::member_accesses},
    {"cache_hits", &RuntimeStats::cache_hits},
    {"fastpath_hits", &RuntimeStats::fastpath_hits},
    {"stateless_accesses", &RuntimeStats::stateless_accesses},
    {"hybrid_accesses", &RuntimeStats::hybrid_accesses},
    {"layouts_created", &RuntimeStats::layouts_created},
    {"layouts_deduped", &RuntimeStats::layouts_deduped},
    {"layout_pool_refills", &RuntimeStats::layout_pool_refills},
    {"uaf_detected", &RuntimeStats::uaf_detected},
    {"traps_triggered", &RuntimeStats::traps_triggered},
    {"metadata_faults", &RuntimeStats::metadata_faults},
    {"oom_refusals", &RuntimeStats::oom_refusals},
    {"quarantined_objects", &RuntimeStats::quarantined_objects},
    {"bytes_requested", &RuntimeStats::bytes_requested},
    {"bytes_allocated", &RuntimeStats::bytes_allocated},
};

/// Same single-table discipline for the allocator substrate's counters:
/// one row here feeds JSON, Prometheus, the round-trip parser, and the
/// consistency gate. `gauge` rows (point-in-time values) skip the
/// Prometheus `_total` suffix.
struct HeapField {
  const char* name;
  std::uint64_t ScalableHeapStats::* member;
  bool gauge;
};
constexpr HeapField kHeapFields[] = {
    {"allocations", &ScalableHeapStats::allocations, false},
    {"frees", &ScalableHeapStats::frees, false},
    {"reuse_hits", &ScalableHeapStats::reuse_hits, false},
    {"slab_carves", &ScalableHeapStats::slab_carves, false},
    {"remote_frees", &ScalableHeapStats::remote_frees, false},
    {"remote_drains", &ScalableHeapStats::remote_drains, false},
    {"remote_drained_blocks", &ScalableHeapStats::remote_drained_blocks,
     false},
    {"orphan_adoptions", &ScalableHeapStats::orphan_adoptions, false},
    {"large_allocs", &ScalableHeapStats::large_allocs, false},
    {"large_frees", &ScalableHeapStats::large_frees, false},
    {"size_mismatches", &ScalableHeapStats::size_mismatches, false},
    {"quarantine_poison_damage", &ScalableHeapStats::quarantine_poison_damage,
     false},
    {"quarantined_bytes", &ScalableHeapStats::quarantined_bytes, true},
    {"thread_retires", &ScalableHeapStats::thread_retires, false},
    {"live_chunks", &ScalableHeapStats::live_chunks, true},
};

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void append_kv(std::string& out, const char* key, std::uint64_t v,
               bool trailing_comma) {
  out += "\"";
  out += key;
  out += "\": ";
  append_u64(out, v);
  if (trailing_comma) out += ",";
  out += "\n";
}

void append_histogram_json(std::string& out, const char* key,
                           const Log2Histogram& h, bool trailing_comma) {
  out += "    \"";
  out += key;
  out += "\": {\"count\": ";
  append_u64(out, h.count);
  out += ", \"sum\": ";
  append_u64(out, h.sum);
  out += ", \"buckets\": [";
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    if (i != 0) out += ", ";
    append_u64(out, h.buckets[i]);
  }
  out += "]}";
  if (trailing_comma) out += ",";
  out += "\n";
}

// ---- minimal JSON reader ---------------------------------------------------
// Just enough grammar for the documents to_json emits (objects, arrays,
// strings, unsigned integers, booleans). Not a general-purpose parser —
// no floats, escapes, or nulls — but it rejects instead of misreading
// anything outside that subset, which is all a round-trip gate needs.

struct JsonValue {
  enum class Kind : std::uint8_t { kBool, kUint, kString, kObject, kArray };
  Kind kind = Kind::kUint;
  bool b = false;
  std::uint64_t u = 0;
  std::string s;
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;

  [[nodiscard]] const JsonValue* find(std::string_view key) const {
    if (kind != Kind::kObject) return nullptr;
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : p_(text.data()), end_(text.data() + text.size()) {}

  bool parse(JsonValue& out) {
    if (!value(out)) return false;
    skip_ws();
    return p_ == end_;  // trailing garbage is a parse error
  }

 private:
  void skip_ws() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) ++p_;
  }

  bool literal(const char* word) {
    const std::size_t n = std::strlen(word);
    if (static_cast<std::size_t>(end_ - p_) < n) return false;
    if (std::memcmp(p_, word, n) != 0) return false;
    p_ += n;
    return true;
  }

  bool string(std::string& out) {
    if (p_ == end_ || *p_ != '"') return false;
    ++p_;
    out.clear();
    while (p_ != end_ && *p_ != '"') {
      if (*p_ == '\\') return false;  // escapes never emitted, so rejected
      out += *p_++;
    }
    if (p_ == end_) return false;
    ++p_;  // closing quote
    return true;
  }

  bool value(JsonValue& out) {
    skip_ws();
    if (p_ == end_) return false;
    if (*p_ == '{') {
      ++p_;
      out.kind = JsonValue::Kind::kObject;
      skip_ws();
      if (p_ != end_ && *p_ == '}') {
        ++p_;
        return true;
      }
      while (true) {
        skip_ws();
        std::string key;
        if (!string(key)) return false;
        skip_ws();
        if (p_ == end_ || *p_ != ':') return false;
        ++p_;
        JsonValue v;
        if (!value(v)) return false;
        out.object.emplace_back(std::move(key), std::move(v));
        skip_ws();
        if (p_ == end_) return false;
        if (*p_ == ',') {
          ++p_;
          continue;
        }
        if (*p_ == '}') {
          ++p_;
          return true;
        }
        return false;
      }
    }
    if (*p_ == '[') {
      ++p_;
      out.kind = JsonValue::Kind::kArray;
      skip_ws();
      if (p_ != end_ && *p_ == ']') {
        ++p_;
        return true;
      }
      while (true) {
        JsonValue v;
        if (!value(v)) return false;
        out.array.push_back(std::move(v));
        skip_ws();
        if (p_ == end_) return false;
        if (*p_ == ',') {
          ++p_;
          continue;
        }
        if (*p_ == ']') {
          ++p_;
          return true;
        }
        return false;
      }
    }
    if (*p_ == '"') {
      out.kind = JsonValue::Kind::kString;
      return string(out.s);
    }
    if (*p_ == 't' || *p_ == 'f') {
      out.kind = JsonValue::Kind::kBool;
      out.b = *p_ == 't';
      return literal(out.b ? "true" : "false");
    }
    if (std::isdigit(static_cast<unsigned char>(*p_)) != 0) {
      out.kind = JsonValue::Kind::kUint;
      out.u = 0;
      while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_)) != 0) {
        const std::uint64_t digit = static_cast<std::uint64_t>(*p_ - '0');
        if (out.u > (UINT64_MAX - digit) / 10) return false;  // overflow
        out.u = out.u * 10 + digit;
        ++p_;
      }
      return true;
    }
    return false;
  }

  const char* p_;
  const char* end_;
};

bool read_u64(const JsonValue& obj, std::string_view key, std::uint64_t& out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kUint) return false;
  out = v->u;
  return true;
}

bool read_u32(const JsonValue& obj, std::string_view key, std::uint32_t& out) {
  std::uint64_t wide = 0;
  if (!read_u64(obj, key, wide) || wide > UINT32_MAX) return false;
  out = static_cast<std::uint32_t>(wide);
  return true;
}

bool read_bool(const JsonValue& obj, std::string_view key, bool& out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kBool) return false;
  out = v->b;
  return true;
}

bool read_histogram(const JsonValue& parent, std::string_view key,
                    Log2Histogram& out) {
  const JsonValue* h = parent.find(key);
  if (h == nullptr || h->kind != JsonValue::Kind::kObject) return false;
  if (!read_u64(*h, "count", out.count)) return false;
  if (!read_u64(*h, "sum", out.sum)) return false;
  const JsonValue* buckets = h->find("buckets");
  if (buckets == nullptr || buckets->kind != JsonValue::Kind::kArray ||
      buckets->array.size() != out.buckets.size()) {
    return false;
  }
  for (std::size_t i = 0; i < out.buckets.size(); ++i) {
    const JsonValue& b = buckets->array[i];
    if (b.kind != JsonValue::Kind::kUint) return false;
    out.buckets[i] = b.u;
  }
  return true;
}

/// Upper bound of log2 bucket i (values with bit_width == i): 2^i - 1.
std::uint64_t bucket_upper_bound(std::size_t i) {
  return i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
}

void append_prometheus_histogram(std::string& out, const char* name,
                                 const Log2Histogram& h) {
  out += "# TYPE ";
  out += name;
  out += " histogram\n";
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    cumulative += h.buckets[i];
    // Empty tail buckets are elided (a 64-bucket page per histogram is
    // scrape noise); cumulative semantics make elision lossless.
    if (h.buckets[i] == 0 && i != 0) continue;
    out += name;
    out += "_bucket{le=\"";
    append_u64(out, bucket_upper_bound(i));
    out += "\"} ";
    append_u64(out, cumulative);
    out += "\n";
  }
  out += name;
  out += "_bucket{le=\"+Inf\"} ";
  append_u64(out, h.count);
  out += "\n";
  out += name;
  out += "_sum ";
  append_u64(out, h.sum);
  out += "\n";
  out += name;
  out += "_count ";
  append_u64(out, h.count);
  out += "\n";
}

}  // namespace

MetricsSnapshot collect_metrics(const Runtime& rt) {
  MetricsSnapshot m;
  m.trace_compiled_in = Runtime::trace_compiled_in();
  m.trace_sample_interval = rt.config().trace_sample_interval;
  m.stats = rt.stats();
  for (std::size_t i = 0; i < kViolationClassCount; ++i) {
    m.violation_reports[i] =
        rt.policy_engine().reports(static_cast<Violation>(i));
  }
  const ShardedMetadataTable::LockStats locks = rt.lock_stats();
  m.contention.shards = rt.shard_count();
  m.contention.acquisitions = locks.acquisitions;
  m.contention.contended = locks.contended;
  m.live_objects = rt.live_objects();
  m.live_layouts = rt.live_layouts();
  m.quarantined_blocks = rt.quarantined_blocks();
  if (rt.config().alloc_fn == nullptr && rt.config().scalable_heap) {
    m.heap_attached = true;
    m.heap = ScalableHeap::process_heap().stats();
  }
  m.trace = rt.trace_ring_stats();
  m.latency = rt.latency_histograms();
  return m;
}

std::string to_json(const MetricsSnapshot& m) {
  std::string out;
  out.reserve(4096);
  out += "{\n";
  out += "  \"polar_metrics_version\": 2,\n";
  out += "  \"trace\": {\n";
  out += "    \"compiled_in\": ";
  out += m.trace_compiled_in ? "true" : "false";
  out += ",\n    ";
  append_kv(out, "sample_interval", m.trace_sample_interval, true);
  out += "    ";
  append_kv(out, "recorded", m.trace.recorded, true);
  out += "    ";
  append_kv(out, "stored", m.trace.stored, true);
  out += "    ";
  append_kv(out, "dropped", m.trace.dropped, true);
  out += "    ";
  append_kv(out, "threads", m.trace.threads, true);
  out += "    \"by_kind\": {";
  for (std::size_t i = 0; i < kTraceEventKindCount; ++i) {
    if (i != 0) out += ", ";
    out += "\"";
    out += to_string(static_cast<TraceEventKind>(i));
    out += "\": ";
    append_u64(out, m.trace.by_kind[i]);
  }
  out += "}\n  },\n";
  out += "  \"stats\": {\n";
  for (std::size_t i = 0; i < std::size(kStatFields); ++i) {
    out += "    ";
    append_kv(out, kStatFields[i].name, m.stats.*kStatFields[i].member,
              i + 1 < std::size(kStatFields));
  }
  out += "  },\n";
  out += "  \"violations\": {\n";
  for (std::size_t i = 0; i < kViolationClassCount; ++i) {
    out += "    ";
    append_kv(out, to_string(static_cast<Violation>(i)),
              m.violation_reports[i], i + 1 < kViolationClassCount);
  }
  out += "  },\n";
  out += "  \"contention\": {";
  out += "\"shards\": ";
  append_u64(out, m.contention.shards);
  out += ", \"acquisitions\": ";
  append_u64(out, m.contention.acquisitions);
  out += ", \"contended\": ";
  append_u64(out, m.contention.contended);
  out += "},\n";
  out += "  \"live\": {";
  out += "\"objects\": ";
  append_u64(out, m.live_objects);
  out += ", \"layouts\": ";
  append_u64(out, m.live_layouts);
  out += ", \"quarantined_blocks\": ";
  append_u64(out, m.quarantined_blocks);
  out += "},\n";
  out += "  \"heap\": {\n";
  out += "    \"attached\": ";
  out += m.heap_attached ? "true" : "false";
  out += ",\n";
  for (std::size_t i = 0; i < std::size(kHeapFields); ++i) {
    out += "    ";
    append_kv(out, kHeapFields[i].name, m.heap.*kHeapFields[i].member,
              i + 1 < std::size(kHeapFields));
  }
  out += "  },\n";
  out += "  \"latency\": {\n";
  append_histogram_json(out, "getptr_ns", m.latency.getptr_ns, true);
  append_histogram_json(out, "alloc_ns", m.latency.alloc_ns, false);
  out += "  }\n";
  out += "}\n";
  return out;
}

bool from_json(std::string_view json, MetricsSnapshot& out) {
  JsonValue root;
  if (!JsonReader(json).parse(root)) return false;
  std::uint64_t version = 0;
  if (!read_u64(root, "polar_metrics_version", version) || version != 2) {
    return false;
  }
  out = MetricsSnapshot{};

  const JsonValue* trace = root.find("trace");
  if (trace == nullptr || trace->kind != JsonValue::Kind::kObject) return false;
  if (!read_bool(*trace, "compiled_in", out.trace_compiled_in)) return false;
  if (!read_u32(*trace, "sample_interval", out.trace_sample_interval)) return false;
  if (!read_u64(*trace, "recorded", out.trace.recorded)) return false;
  if (!read_u64(*trace, "stored", out.trace.stored)) return false;
  if (!read_u64(*trace, "dropped", out.trace.dropped)) return false;
  if (!read_u64(*trace, "threads", out.trace.threads)) return false;
  const JsonValue* by_kind = trace->find("by_kind");
  if (by_kind == nullptr || by_kind->kind != JsonValue::Kind::kObject) return false;
  for (std::size_t i = 0; i < kTraceEventKindCount; ++i) {
    if (!read_u64(*by_kind, to_string(static_cast<TraceEventKind>(i)),
                  out.trace.by_kind[i])) {
      return false;
    }
  }

  const JsonValue* stats = root.find("stats");
  if (stats == nullptr || stats->kind != JsonValue::Kind::kObject) return false;
  for (const StatField& f : kStatFields) {
    if (!read_u64(*stats, f.name, out.stats.*f.member)) return false;
  }

  const JsonValue* violations = root.find("violations");
  if (violations == nullptr || violations->kind != JsonValue::Kind::kObject) {
    return false;
  }
  for (std::size_t i = 0; i < kViolationClassCount; ++i) {
    if (!read_u64(*violations, to_string(static_cast<Violation>(i)),
                  out.violation_reports[i])) {
      return false;
    }
  }

  const JsonValue* contention = root.find("contention");
  if (contention == nullptr || contention->kind != JsonValue::Kind::kObject) {
    return false;
  }
  if (!read_u64(*contention, "shards", out.contention.shards)) return false;
  if (!read_u64(*contention, "acquisitions", out.contention.acquisitions)) return false;
  if (!read_u64(*contention, "contended", out.contention.contended)) return false;

  const JsonValue* live = root.find("live");
  if (live == nullptr || live->kind != JsonValue::Kind::kObject) return false;
  if (!read_u64(*live, "objects", out.live_objects)) return false;
  if (!read_u64(*live, "layouts", out.live_layouts)) return false;
  if (!read_u64(*live, "quarantined_blocks", out.quarantined_blocks)) return false;

  const JsonValue* heap = root.find("heap");
  if (heap == nullptr || heap->kind != JsonValue::Kind::kObject) return false;
  if (!read_bool(*heap, "attached", out.heap_attached)) return false;
  for (const HeapField& f : kHeapFields) {
    if (!read_u64(*heap, f.name, out.heap.*f.member)) return false;
  }

  const JsonValue* latency = root.find("latency");
  if (latency == nullptr || latency->kind != JsonValue::Kind::kObject) return false;
  if (!read_histogram(*latency, "getptr_ns", out.latency.getptr_ns)) return false;
  if (!read_histogram(*latency, "alloc_ns", out.latency.alloc_ns)) return false;
  return true;
}

std::string to_prometheus(const MetricsSnapshot& m) {
  std::string out;
  out.reserve(4096);
  for (const StatField& f : kStatFields) {
    out += "# TYPE polar_";
    out += f.name;
    out += "_total counter\npolar_";
    out += f.name;
    out += "_total ";
    append_u64(out, m.stats.*f.member);
    out += "\n";
  }
  out += "# TYPE polar_violation_reports_total counter\n";
  for (std::size_t i = 0; i < kViolationClassCount; ++i) {
    // Class kNone never accumulates reports; skip its constant-zero row.
    if (static_cast<Violation>(i) == Violation::kNone) continue;
    out += "polar_violation_reports_total{class=\"";
    out += to_string(static_cast<Violation>(i));
    out += "\"} ";
    append_u64(out, m.violation_reports[i]);
    out += "\n";
  }
  out += "# TYPE polar_trace_events_total counter\n";
  for (std::size_t i = 0; i < kTraceEventKindCount; ++i) {
    out += "polar_trace_events_total{kind=\"";
    out += to_string(static_cast<TraceEventKind>(i));
    out += "\"} ";
    append_u64(out, m.trace.by_kind[i]);
    out += "\n";
  }
  out += "# TYPE polar_trace_events_dropped_total counter\n"
         "polar_trace_events_dropped_total ";
  append_u64(out, m.trace.dropped);
  out += "\n";
  out += "# TYPE polar_shard_lock_acquisitions_total counter\n"
         "polar_shard_lock_acquisitions_total ";
  append_u64(out, m.contention.acquisitions);
  out += "\n";
  out += "# TYPE polar_shard_lock_contended_total counter\n"
         "polar_shard_lock_contended_total ";
  append_u64(out, m.contention.contended);
  out += "\n";
  out += "# TYPE polar_metadata_shards gauge\npolar_metadata_shards ";
  append_u64(out, m.contention.shards);
  out += "\n";
  out += "# TYPE polar_live_objects gauge\npolar_live_objects ";
  append_u64(out, m.live_objects);
  out += "\n";
  out += "# TYPE polar_live_layouts gauge\npolar_live_layouts ";
  append_u64(out, m.live_layouts);
  out += "\n";
  out += "# TYPE polar_quarantined_blocks gauge\npolar_quarantined_blocks ";
  append_u64(out, m.quarantined_blocks);
  out += "\n";
  // Substrate heap counters only scrape meaningfully when the runtime is
  // actually backed by the process heap; an unattached snapshot would
  // export constant zeros that alert rules could misread as "heap idle".
  if (m.heap_attached) {
    for (const HeapField& f : kHeapFields) {
      const char* suffix = f.gauge ? "" : "_total";
      out += "# TYPE polar_heap_";
      out += f.name;
      out += suffix;
      out += f.gauge ? " gauge\n" : " counter\n";
      out += "polar_heap_";
      out += f.name;
      out += suffix;
      out += " ";
      append_u64(out, m.heap.*f.member);
      out += "\n";
    }
  }
  append_prometheus_histogram(out, "polar_getptr_latency_ns",
                              m.latency.getptr_ns);
  append_prometheus_histogram(out, "polar_alloc_latency_ns",
                              m.latency.alloc_ns);
  return out;
}

std::vector<std::string> consistency_violations(const MetricsSnapshot& m) {
  std::vector<std::string> out;
  auto check = [&out](bool ok, const char* what) {
    if (!ok) out.emplace_back(what);
  };
  // obj_clone creates a tracked object but counts as a memcpy, not an
  // allocation (core_test pins that semantic), so the object-count balance
  // needs the clone counter on the left. Workloads that never clone get
  // the plain `allocations >= frees` relation for free.
  check(m.stats.allocations + m.stats.clones >= m.stats.frees,
        "allocations + clones >= frees");
  check(m.stats.clones <= m.stats.memcpys, "clones <= memcpys");
  check(m.stats.cache_hits <= m.stats.member_accesses,
        "cache_hits <= member_accesses");
  check(m.stats.fastpath_hits <= m.stats.member_accesses,
        "fastpath_hits <= member_accesses");
  check(m.stats.stateless_accesses + m.stats.hybrid_accesses <=
            m.stats.member_accesses,
        "derived accesses <= member_accesses");
  check(m.stats.bytes_allocated >= m.stats.bytes_requested,
        "bytes_allocated >= bytes_requested (layout inflation >= 1)");
  check(m.stats.layouts_created + m.stats.layouts_deduped >=
            m.stats.allocations,
        "layouts_created + layouts_deduped >= allocations");
  if (m.heap_attached) {
    // Substrate heap balance: every free (remote or not) had an
    // allocation, every drained block was remote-freed first, and the
    // large path's books balance independently of the slab path's.
    check(m.heap.frees <= m.heap.allocations, "heap frees <= allocations");
    check(m.heap.reuse_hits <= m.heap.allocations,
          "heap reuse_hits <= allocations");
    check(m.heap.remote_drained_blocks <= m.heap.remote_frees,
          "heap remote_drained_blocks <= remote_frees");
    check(m.heap.large_frees <= m.heap.large_allocs,
          "heap large_frees <= large_allocs");
  } else {
    check(m.heap == ScalableHeapStats{}, "unattached heap section is zero");
  }
  check(m.trace.recorded == m.trace.stored + m.trace.dropped,
        "trace recorded == stored + dropped");
  check(m.contention.contended <= m.contention.acquisitions,
        "shard lock contended <= acquisitions");
  auto bucket_sum = [](const Log2Histogram& h) {
    std::uint64_t n = 0;
    for (const std::uint64_t b : h.buckets) n += b;
    return n;
  };
  check(bucket_sum(m.latency.getptr_ns) == m.latency.getptr_ns.count,
        "getptr histogram bucket sum == count");
  check(bucket_sum(m.latency.alloc_ns) == m.latency.alloc_ns.count,
        "alloc histogram bucket sum == count");
  check(m.latency.getptr_ns.count <= m.stats.member_accesses,
        "sampled getptr count <= member_accesses");
  check(m.latency.alloc_ns.count <= m.stats.allocations,
        "sampled alloc count <= allocations");
  return out;
}

}  // namespace polar::observe
