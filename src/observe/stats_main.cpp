// polar_stats — run real workloads over an instrumented runtime and export
// the observability snapshot (DESIGN.md §11, README "Metrics & tracing").
//
//   polar_stats [--workload=minipng|minijpg|mjs|spec|all] [--repeat=N]
//               [--trace-interval=N] [--live=N] [--format=json|prometheus|table]
//               [--introspect] [--selfcheck]
//
// Every workload run is self-validating: its output is compared against an
// uninstrumented DirectSpace reference, so the exported counters describe a
// run that provably computed the right answer. --selfcheck additionally
// gates on the snapshot's cross-counter invariants and on the JSON
// exporter round-trip (from_json(to_json(m)) == m); scripts/check.sh runs
// it as a tier-1 stage. Exit codes: 0 ok, 1 check/workload failure, 2 usage.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "core/runtime.h"
#include "core/session.h"
#include "core/space.h"
#include "observe/introspect.h"
#include "observe/metrics.h"
#include "workloads/minijpg.h"
#include "workloads/minipng.h"
#include "workloads/mjs/engine.h"
#include "workloads/spec_suite.h"

namespace {

using namespace polar;

enum class Format : std::uint8_t { kJson, kPrometheus, kTable };

struct Options {
  bool minipng = false;
  bool minijpg = false;
  bool mjs = false;
  bool spec = false;
  std::uint32_t repeat = 1;
  std::uint32_t trace_interval = 64;
  std::uint32_t live = 0;
  Format format = Format::kJson;
  bool introspect = false;
  bool selfcheck = false;
};

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--workload=minipng|minijpg|mjs|spec|all] [--repeat=N]\n"
      "          [--trace-interval=N] [--live=N]\n"
      "          [--format=json|prometheus|table] [--introspect] "
      "[--selfcheck]\n",
      argv0);
  return 2;
}

bool parse_u32(const char* s, std::uint32_t& out) {
  char* end = nullptr;
  const unsigned long v = std::strtoul(s, &end, 10);
  if (end == s || *end != '\0' || v > 0xffffffffUL) return false;
  out = static_cast<std::uint32_t>(v);
  return true;
}

constexpr const char* kScript =
    "function mix(o, i) { o.a = o.a + i; o.b = o.b * 2 + o.a;"
    "  return o.a + o.b; }\n"
    "var acc = 0;\n"
    "var i = 0;\n"
    "while (i < 24) {\n"
    "  var o = {a: i, b: 1};\n"
    "  var arr = [i, i + 1, i + 2];\n"
    "  acc = acc + mix(o, i) + arr[1];\n"
    "  i = i + 1;\n"
    "}\n"
    "var result = acc;\n";

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  bool any_workload = false;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--workload=", 11) == 0) {
      const char* w = a + 11;
      any_workload = true;
      if (std::strcmp(w, "minipng") == 0) {
        opt.minipng = true;
      } else if (std::strcmp(w, "minijpg") == 0) {
        opt.minijpg = true;
      } else if (std::strcmp(w, "mjs") == 0) {
        opt.mjs = true;
      } else if (std::strcmp(w, "spec") == 0) {
        opt.spec = true;
      } else if (std::strcmp(w, "all") == 0) {
        opt.minipng = opt.minijpg = opt.mjs = opt.spec = true;
      } else {
        return usage(argv[0]);
      }
    } else if (std::strncmp(a, "--repeat=", 9) == 0) {
      if (!parse_u32(a + 9, opt.repeat) || opt.repeat == 0) return usage(argv[0]);
    } else if (std::strncmp(a, "--trace-interval=", 17) == 0) {
      if (!parse_u32(a + 17, opt.trace_interval)) return usage(argv[0]);
    } else if (std::strncmp(a, "--live=", 7) == 0) {
      if (!parse_u32(a + 7, opt.live)) return usage(argv[0]);
    } else if (std::strncmp(a, "--format=", 9) == 0) {
      const char* f = a + 9;
      if (std::strcmp(f, "json") == 0) {
        opt.format = Format::kJson;
      } else if (std::strcmp(f, "prometheus") == 0) {
        opt.format = Format::kPrometheus;
      } else if (std::strcmp(f, "table") == 0) {
        opt.format = Format::kTable;
      } else {
        return usage(argv[0]);
      }
    } else if (std::strcmp(a, "--introspect") == 0) {
      opt.introspect = true;
    } else if (std::strcmp(a, "--selfcheck") == 0) {
      opt.selfcheck = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (!any_workload) opt.minipng = true;  // the default tier-1 workload

  TypeRegistry reg;
  minipng::PngTypes png{};
  minijpg::JpgTypes jpg{};
  mjs::MjsTypes mjs_types{};
  std::vector<spec::SpecEntry> suite;
  if (opt.minipng) png = minipng::register_types(reg);
  if (opt.minijpg) jpg = minijpg::register_types(reg);
  if (opt.mjs) mjs_types = mjs::register_types(reg);
  if (opt.spec) suite = spec::build_spec_suite(reg);
  // Census ballast: objects of this type are held live across the
  // introspection pass so per-type layout dedup is observable.
  const TypeId ballast = TypeBuilder(reg, "stats.ballast")
                             .fn_ptr("vtable")
                             .field<std::uint64_t>("id")
                             .ptr("next")
                             .field<std::uint32_t>("len")
                             .build();

  RuntimeConfig rc;
  rc.on_violation = ErrorAction::kReport;
  rc.trace_sample_interval = opt.trace_interval;
  Runtime rt(reg, rc);

  bool workloads_ok = true;
  for (std::uint32_t rep = 0; rep < opt.repeat; ++rep) {
    const std::uint64_t seed = 0x57a7ULL + rep;
    if (opt.minipng) {
      const std::vector<std::uint8_t> image =
          minipng::encode_test_image(16, 16, seed);
      const std::span<const std::uint8_t> data(image.data(), image.size());
      DirectSpace direct(reg);
      const minipng::DecodeResult want = minipng::decode(direct, png, data);
      SessionSpace space(rt);
      const minipng::DecodeResult got = minipng::decode(space, png, data);
      workloads_ok = workloads_ok && want.ok && got.ok &&
                     got.pixel_hash == want.pixel_hash;
    }
    if (opt.minijpg) {
      const std::vector<std::uint8_t> image =
          minijpg::encode_test_image(16, 16, seed);
      const std::span<const std::uint8_t> data(image.data(), image.size());
      DirectSpace direct(reg);
      const minijpg::DecodeResult want = minijpg::decode(direct, jpg, data);
      SessionSpace space(rt);
      const minijpg::DecodeResult got = minijpg::decode(space, jpg, data);
      workloads_ok = workloads_ok && want.ok && got.ok &&
                     got.sample_hash == want.sample_hash;
    }
    if (opt.mjs) {
      try {
        DirectSpace direct(reg);
        mjs::Engine<DirectSpace> reference(direct, mjs_types);
        const double want = reference.run(kScript).num;
        SessionSpace space(rt);
        mjs::Engine<SessionSpace> engine(space, mjs_types);
        const mjs::Value got = engine.run(kScript);
        workloads_ok = workloads_ok && got.t == mjs::Value::T::kNum &&
                       got.num == want;
      } catch (const std::exception&) {
        workloads_ok = false;
      }
    }
    if (opt.spec) {
      for (const spec::SpecEntry& entry : suite) {
        DirectSpace direct(reg);
        const std::uint64_t want = entry.run_direct(direct, 1, seed);
        PolarSpace space(rt);
        workloads_ok = workloads_ok && entry.run_polar(space, 1, seed) == want;
      }
    }
  }

  std::vector<ObjRef> held;
  for (std::uint32_t i = 0; i < opt.live; ++i) {
    const Result<ObjRef> r = rt.obj_alloc(ballast);
    if (r.ok()) held.push_back(r.value());
  }

  const observe::MetricsSnapshot m = observe::collect_metrics(rt);

  int rcode = 0;
  if (!workloads_ok) {
    std::fprintf(stderr,
                 "polar_stats: workload output diverged from its "
                 "DirectSpace reference\n");
    rcode = 1;
  }
  if (opt.selfcheck) {
    for (const std::string& line : observe::consistency_violations(m)) {
      std::fprintf(stderr, "polar_stats: inconsistent counters: %s\n",
                   line.c_str());
      rcode = 1;
    }
    observe::MetricsSnapshot round;
    if (!observe::from_json(observe::to_json(m), round) || !(round == m)) {
      std::fprintf(stderr,
                   "polar_stats: JSON exporter round-trip mismatch\n");
      rcode = 1;
    }
  }

  switch (opt.format) {
    case Format::kJson:
      std::fputs(observe::to_json(m).c_str(), stdout);
      break;
    case Format::kPrometheus:
      std::fputs(observe::to_prometheus(m).c_str(), stdout);
      break;
    case Format::kTable: {
      // The table format leads with the introspection census; the raw
      // counter dump is JSON/Prometheus territory.
      std::fputs(observe::to_table(observe::introspect(rt)).c_str(), stdout);
      if (m.heap_attached && m.heap.allocations > 0) {
        const auto rate = [](std::uint64_t n, std::uint64_t d) {
          return d > 0 ? 100.0 * static_cast<double>(n) /
                             static_cast<double>(d)
                       : 0.0;
        };
        std::printf(
            "substrate heap: %llu allocs | reuse %.1f%% | "
            "refill %.2f carves/kalloc | remote drain %.1f%% of %llu "
            "remote frees | %llu chunks live\n",
            static_cast<unsigned long long>(m.heap.allocations),
            rate(m.heap.reuse_hits, m.heap.allocations),
            1000.0 * static_cast<double>(m.heap.slab_carves) /
                static_cast<double>(m.heap.allocations),
            rate(m.heap.remote_drained_blocks, m.heap.remote_frees),
            static_cast<unsigned long long>(m.heap.remote_frees),
            static_cast<unsigned long long>(m.heap.live_chunks));
      }
      break;
    }
  }
  if (opt.introspect && opt.format != Format::kTable) {
    std::fputs(observe::to_json(observe::introspect(rt)).c_str(), stdout);
  }

  for (const ObjRef& r : held) (void)rt.obj_free(r);
  rt.free_all();
  return rcode;
}
