// Live-state introspection — the census plane of the observability layer
// (DESIGN.md §11).
//
// Where metrics.h answers "how many operations ran", introspect() answers
// "what is alive right now and how random is it": a per-type census of
// live objects and bytes, how many distinct layouts those objects share
// (the dedup ratio the paper's duplicate-metadata elimination targets),
// and the per-type randomization entropy in bits — log2 of the layout
// permutation space reachable under the runtime's LayoutPolicy.
//
// Quiescent use only: the census walks Runtime::for_each_live, which has
// the free_all/teardown contract (no concurrent mutators).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/backend.h"

namespace polar {
class Runtime;
}

namespace polar::observe {

/// One registered type's slice of the live set.
struct TypeCensusRow {
  std::string type_name;
  std::uint32_t type_id = 0;
  std::uint64_t live_objects = 0;
  std::uint64_t live_bytes = 0;        ///< randomized (inflated) sizes
  std::uint64_t distinct_layouts = 0;  ///< among this type's live objects
  /// Which randomization backend resolves this type's accesses (per-type
  /// overrides make this vary across rows of one runtime).
  BackendKind backend = BackendKind::kStored;
  /// log2 of the layout space realizable for this type: the permutation
  /// space reachable under the runtime's layout policy, capped for
  /// derived (stateless/hybrid) types by the schedule's distinct entries
  /// — a 2^schedule_bits table cannot realize more diversity than it
  /// holds, no matter how large the permutation space is.
  double entropy_bits = 0.0;
};

/// Entropy bands for the census histogram: [0,8), [8,16), ... [56,inf).
inline constexpr std::size_t kEntropyBands = 8;
inline constexpr double kEntropyBandWidth = 8.0;

struct IntrospectionReport {
  /// One row per registered type (including types with zero live objects,
  /// so entropy coverage is visible before a workload runs).
  std::vector<TypeCensusRow> census;
  std::uint64_t live_objects = 0;
  std::uint64_t live_layouts = 0;  ///< interner entries (across all types)
  /// layouts_deduped / (layouts_created + layouts_deduped), 0 when no
  /// layout was ever drawn. The paper's duplicate-elimination win rate.
  double layout_dedup_ratio = 0.0;
  /// Types per entropy band (band i = [8*i, 8*(i+1)) bits, last open).
  std::array<std::uint64_t, kEntropyBands> entropy_histogram{};
};

/// Snapshots the live set of `rt`. Quiescent use only.
[[nodiscard]] IntrospectionReport introspect(const Runtime& rt);

/// The per-type entropy the census reports for `t`, without walking the
/// live set: log2 of the permutation space reachable under the runtime's
/// LayoutPolicy, capped for derived (stateless/hybrid) types by the
/// schedule's distinct entries. This is the `entropy_bits` axis the
/// red-team curve (attack/campaign.h) joins its detection rates against.
[[nodiscard]] double type_entropy_bits(const Runtime& rt, TypeId t);

/// Deterministic JSON document.
[[nodiscard]] std::string to_json(const IntrospectionReport& r);

/// Human-readable fixed-width table (one row per type plus totals).
[[nodiscard]] std::string to_table(const IntrospectionReport& r);

}  // namespace polar::observe
