// Spec minis, group 2: 445.gobmk, 456.hmmer, 458.sjeng, 462.libquantum.
#include <memory>

#include "workloads/spec_common.h"
#include "workloads/spec_suite.h"

namespace polar::spec {

// ===========================================================================
// 445.gobmk — go-board group analysis: flood-fill worms, per-color dragon
// aggregation, and a PRNG whose state lives in an object (paper: 4000
// allocations but 72 BILLION member accesses — the access-heavy extreme).
// ===========================================================================

namespace {

constexpr int kBoard = 19;

struct GobmkTypes {
  TypeId move_data, sgf_tree, rand_state, worm, dragon, hash_data, string_data;
};

GobmkTypes register_gobmk(TypeRegistry& reg) {
  GobmkTypes t;
  t.move_data = TypeBuilder(reg, "gobmk.move_data")
                    .field<std::uint32_t>("pos")
                    .field<std::uint32_t>("color")
                    .field<std::uint64_t>("value")
                    .build();
  t.sgf_tree = TypeBuilder(reg, "gobmk.SGFTree_t")
                   .ptr("root")
                   .ptr("lastnode")
                   .field<std::uint32_t>("size")
                   .build();
  t.rand_state = TypeBuilder(reg, "gobmk.gg_rand_state")
                     .field<std::uint64_t>("state")
                     .build();
  t.worm = TypeBuilder(reg, "gobmk.worm_data")
               .field<std::uint32_t>("origin")
               .field<std::uint32_t>("color")
               .field<std::uint32_t>("size")
               .field<std::uint32_t>("liberties")
               .build();
  t.dragon = TypeBuilder(reg, "gobmk.dragon_data")
                 .field<std::uint32_t>("color")
                 .field<std::uint32_t>("worms")
                 .field<std::uint64_t>("territory")
                 .build();
  t.hash_data = TypeBuilder(reg, "gobmk.Hash_data")
                    .field<std::uint64_t>("hashval")
                    .field<std::uint64_t>("hashval2")
                    .build();
  t.string_data = TypeBuilder(reg, "gobmk.string_data")
                      .field<std::uint32_t>("color")
                      .field<std::uint32_t>("size")
                      .field<std::uint32_t>("mark")
                      .build();
  return t;
}

template <ObjectSpace S>
std::uint64_t gobmk_run(S& space, const GobmkTypes& t, std::uint32_t scale,
                        std::uint64_t seed) {
  std::uint64_t checksum = 0;
  void* rand_obj = space.alloc(t.rand_state);
  space.store(rand_obj, t.rand_state, 0, seed | 1);
  // PRNG whose state is a member variable: every draw is load+store.
  const auto gg_rand = [&]() {
    auto s = space.template load<std::uint64_t>(rand_obj, t.rand_state, 0);
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    space.store(rand_obj, t.rand_state, 0, s);
    return s;
  };

  for (std::uint32_t round = 0; round < scale * 4; ++round) {
    // Random position.
    std::array<std::uint8_t, kBoard * kBoard> board{};
    for (auto& p : board) p = static_cast<std::uint8_t>(gg_rand() % 3);

    void* dragons[2] = {space.alloc(t.dragon), space.alloc(t.dragon)};
    space.store(dragons[0], t.dragon, 0, std::uint32_t{1});
    space.store(dragons[1], t.dragon, 0, std::uint32_t{2});

    // Flood-fill every stone group into a worm object.
    std::array<bool, kBoard * kBoard> seen{};
    std::vector<void*> worms;
    for (int p = 0; p < kBoard * kBoard; ++p) {
      if (board[p] == 0 || seen[p]) continue;
      const std::uint8_t color = board[p];
      void* worm = space.alloc(t.worm);
      space.store(worm, t.worm, 0, static_cast<std::uint32_t>(p));
      space.store(worm, t.worm, 1, static_cast<std::uint32_t>(color));
      std::vector<int> stack{p};
      seen[p] = true;
      while (!stack.empty()) {
        const int q = stack.back();
        stack.pop_back();
        space.store(worm, t.worm, 2,
                    space.template load<std::uint32_t>(worm, t.worm, 2) + 1);
        const int x = q % kBoard, y = q / kBoard;
        const int neigh[4] = {q - 1, q + 1, q - kBoard, q + kBoard};
        const bool ok[4] = {x > 0, x < kBoard - 1, y > 0, y < kBoard - 1};
        for (int d = 0; d < 4; ++d) {
          if (!ok[d]) continue;
          const int r = neigh[d];
          if (board[r] == 0) {
            space.store(worm, t.worm, 3,
                        space.template load<std::uint32_t>(worm, t.worm, 3) + 1);
          } else if (board[r] == color && !seen[r]) {
            seen[r] = true;
            stack.push_back(r);
          }
        }
      }
      void* dragon = dragons[color - 1];
      space.store(dragon, t.dragon, 1,
                  space.template load<std::uint32_t>(dragon, t.dragon, 1) + 1);
      space.store(dragon, t.dragon, 2,
                  space.template load<std::uint64_t>(dragon, t.dragon, 2) +
                      space.template load<std::uint32_t>(worm, t.worm, 3));
      worms.push_back(worm);
    }
    for (int c = 0; c < 2; ++c) {
      checksum = hash_combine(
          checksum, space.template load<std::uint64_t>(dragons[c], t.dragon, 2));
      space.free_object(dragons[c], t.dragon);
    }
    for (void* w : worms) space.free_object(w, t.worm);
  }
  space.free_object(rand_obj, t.rand_state);
  return checksum;
}

void gobmk_taint(TaintClassSpace& space, const GobmkTypes& t,
                 std::span<const std::uint8_t> input) {
  TaintScope scope(space.domain());
  TaintReader in(space, input);
  POLAR_COV_SITE();
  // SGF-flavoured parser: "(;" then property bytes.
  if (in.remaining() < 2) return;
  if (in.u8().value() != '(' || in.u8().value() != ';') return;
  POLAR_COV_SITE();
  void* tree = space.alloc(t.sgf_tree);
  int guard = 0;
  std::uint32_t nodes = 0;
  while (!in.empty() && ++guard < 256) {
    const auto prop = in.u8();
    switch (prop.value()) {
      case 'B':
      case 'W': {
        POLAR_COV_SITE();
        void* mv = space.alloc(t.move_data, prop.label());
        space.store_t(mv, t.move_data, 0, in.u16().cast<std::uint32_t>());
        space.store_t(mv, t.move_data, 1,
                      Tainted<std::uint32_t>(prop.value() == 'B' ? 1 : 2,
                                             prop.label()));
        space.free_object(mv, t.move_data);
        ++nodes;
        break;
      }
      case 'H': {
        POLAR_COV_SITE();
        void* h = space.alloc(t.hash_data);
        space.store_t(h, t.hash_data, 0, in.u64());
        space.free_object(h, t.hash_data);
        break;
      }
      case 'S': {
        POLAR_COV_SITE();
        void* sd = space.alloc(t.string_data);
        space.store_t(sd, t.string_data, 1, in.u32());
        space.free_object(sd, t.string_data);
        break;
      }
      case 'R': {
        POLAR_COV_SITE();
        void* rs = space.alloc(t.rand_state);
        space.store_t(rs, t.rand_state, 0, in.u64());
        space.free_object(rs, t.rand_state);
        break;
      }
      case 'D': {
        POLAR_COV_SITE();
        void* dr = space.alloc(t.dragon);
        space.store_t(dr, t.dragon, 2, in.u64());
        space.free_object(dr, t.dragon);
        break;
      }
      case 'O': {
        POLAR_COV_SITE();
        void* wm = space.alloc(t.worm);
        space.store_t(wm, t.worm, 0, in.u32());
        space.free_object(wm, t.worm);
        break;
      }
      default:
        break;
    }
  }
  space.store_t(tree, t.sgf_tree, 2, Tainted<std::uint32_t>(nodes));
  space.free_object(tree, t.sgf_tree);
}

}  // namespace

SpecEntry make_gobmk(TypeRegistry& reg) {
  auto types = std::make_shared<const GobmkTypes>(register_gobmk(reg));
  SpecEntry e;
  e.name = "445.gobmk";
  e.paper_tainted_objects = 21;
  e.run_direct = [types](DirectSpace& s, std::uint32_t scale,
                         std::uint64_t seed) {
    return gobmk_run(s, *types, scale, seed);
  };
  e.run_polar = [types](PolarSpace& s, std::uint32_t scale,
                        std::uint64_t seed) {
    return gobmk_run(s, *types, scale, seed);
  };
  e.taint_parse = [types](TaintClassSpace& s,
                          std::span<const std::uint8_t> in) {
    gobmk_taint(s, *types, in);
  };
  e.sample_input = [](std::uint64_t seed) {
    std::vector<std::uint8_t> v{'(', ';', 'B', 3, 4};
    Rng rng(seed);
    for (int i = 0; i < 12; ++i) {
      v.push_back(static_cast<std::uint8_t>(rng.next()));
    }
    return v;
  };
  e.dictionary = {tok("(;"), tok("B"), tok("W"), tok("H"),
                  tok("S"), tok("R"), tok("D"), tok("O")};
  return e;
}

// ===========================================================================
// 456.hmmer — profile-HMM Viterbi: one plan/matrix object, dynamic
// programming with running best-score updates through its members
// (paper: 1 allocation, 4.3M member accesses).
// ===========================================================================

namespace {

struct HmmerTypes {
  TypeId seqinfo, comp, exec, ssifile;
};

HmmerTypes register_hmmer(TypeRegistry& reg) {
  HmmerTypes t;
  t.seqinfo = TypeBuilder(reg, "hmmer.seqinfo_s")
                  .field<std::uint32_t>("len")
                  .ptr("name")
                  .field<std::uint32_t>("flags")
                  .build();
  t.comp = TypeBuilder(reg, "hmmer.comp")
               .field<std::uint64_t>("score")
               .field<std::uint32_t>("best_i")
               .field<std::uint32_t>("best_j")
               .build();
  t.exec = TypeBuilder(reg, "hmmer.exec")
               .ptr("dp")
               .field<std::uint32_t>("rows")
               .field<std::uint32_t>("cols")
               .field<std::uint64_t>("cells")
               .build();
  t.ssifile = TypeBuilder(reg, "hmmer.ssifile_s")
                  .field<std::uint64_t>("offset")
                  .field<std::uint32_t>("nkeys")
                  .build();
  return t;
}

template <ObjectSpace S>
std::uint64_t hmmer_run(S& space, const HmmerTypes& t, std::uint32_t scale,
                        std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t rows = 64;
  const std::size_t cols = static_cast<std::size_t>(scale) * 600;
  std::vector<std::uint32_t> scores(rows * cols);
  for (auto& s : scores) s = static_cast<std::uint32_t>(rng.below(16));
  std::vector<std::uint64_t> dp(cols, 0);

  void* plan = space.alloc(t.exec);
  void* comp = space.alloc(t.comp);
  space.store(plan, t.exec, 0, reinterpret_cast<std::uint64_t>(dp.data()));
  space.store(plan, t.exec, 1, static_cast<std::uint32_t>(rows));
  space.store(plan, t.exec, 2, static_cast<std::uint32_t>(cols));

  for (std::size_t i = 0; i < rows; ++i) {
    std::uint64_t diag = 0;
    for (std::size_t j = 0; j < cols; ++j) {
      const std::uint64_t up = dp[j];
      const std::uint64_t left = j > 0 ? dp[j - 1] : 0;
      const std::uint64_t best =
          std::max(diag + scores[i * cols + j], std::max(up, left));
      diag = dp[j];
      dp[j] = best;
      // Running counters live in the plan object — this is the member
      // traffic of the original's P7Viterbi loop.
      space.store(plan, t.exec, 3,
                  space.template load<std::uint64_t>(plan, t.exec, 3) + 1);
      if (best > space.template load<std::uint64_t>(comp, t.comp, 0)) {
        space.store(comp, t.comp, 0, best);
        space.store(comp, t.comp, 1, static_cast<std::uint32_t>(i));
        space.store(comp, t.comp, 2, static_cast<std::uint32_t>(j));
      }
    }
  }
  const std::uint64_t checksum = hash_combine(
      space.template load<std::uint64_t>(comp, t.comp, 0),
      space.template load<std::uint64_t>(plan, t.exec, 3));
  space.free_object(plan, t.exec);
  space.free_object(comp, t.comp);
  return checksum;
}

void hmmer_taint(TaintClassSpace& space, const HmmerTypes& t,
                 std::span<const std::uint8_t> input) {
  TaintScope scope(space.domain());
  TaintReader in(space, input);
  POLAR_COV_SITE();
  if (in.remaining() < 6) return;
  const auto magic = in.u16();
  if (magic.value() != 0x4d48) return;  // "HM"
  POLAR_COV_SITE();
  void* si = space.alloc(t.seqinfo);
  const auto len = in.u32();
  space.store_t(si, t.seqinfo, 0, len);
  if (len.value() > 16) {
    POLAR_COV_SITE();
    void* ex = space.alloc(t.exec, len.label());
    space.store_t(ex, t.exec, 2, len);
    space.free_object(ex, t.exec);
  }
  if (!in.empty() && in.u8().value() == 'I') {
    POLAR_COV_SITE();
    void* ssi = space.alloc(t.ssifile);
    space.store_t(ssi, t.ssifile, 0, in.u64());
    space.free_object(ssi, t.ssifile);
  }
  Tainted<std::uint64_t> score(0);
  int guard = 0;
  while (!in.empty() && ++guard < 128) {
    score = score + in.u8().cast<std::uint64_t>();
  }
  void* cp = space.alloc(t.comp);
  space.store_t(cp, t.comp, 0, score);
  space.free_object(cp, t.comp);
  space.free_object(si, t.seqinfo);
}

}  // namespace

SpecEntry make_hmmer(TypeRegistry& reg) {
  auto types = std::make_shared<const HmmerTypes>(register_hmmer(reg));
  SpecEntry e;
  e.name = "456.hmmer";
  e.paper_tainted_objects = 4;
  e.run_direct = [types](DirectSpace& s, std::uint32_t scale,
                         std::uint64_t seed) {
    return hmmer_run(s, *types, scale, seed);
  };
  e.run_polar = [types](PolarSpace& s, std::uint32_t scale,
                        std::uint64_t seed) {
    return hmmer_run(s, *types, scale, seed);
  };
  e.taint_parse = [types](TaintClassSpace& s,
                          std::span<const std::uint8_t> in) {
    hmmer_taint(s, *types, in);
  };
  e.sample_input = [](std::uint64_t seed) {
    std::vector<std::uint8_t> v{0x48, 0x4d, 32, 0, 0, 0, 'I'};
    Rng rng(seed);
    for (int i = 0; i < 10; ++i) {
      v.push_back(static_cast<std::uint8_t>(rng.next()));
    }
    return v;
  };
  e.dictionary = {tok("HM"), tok("I")};
  return e;
}

// ===========================================================================
// 458.sjeng — game-tree search: every node allocates a move object and
// CLONES the search state (the paper's worst case: 20M allocs, 20M frees,
// 18M object memcpys on top of 151B member accesses).
// ===========================================================================

namespace {

struct SjengTypes {
  TypeId move_s, move_x;
};

SjengTypes register_sjeng(TypeRegistry& reg) {
  SjengTypes t;
  t.move_s = TypeBuilder(reg, "sjeng.move_s")
                 .field<std::uint8_t>("from")
                 .field<std::uint8_t>("target")
                 .field<std::uint8_t>("piece")
                 .field<std::uint8_t>("captured")
                 .field<std::uint64_t>("score")
                 .build();
  t.move_x = TypeBuilder(reg, "sjeng.move_x")
                 .field<std::uint64_t>("hash")
                 .field<std::uint32_t>("ply")
                 .field<std::uint32_t>("castle")
                 .field<std::uint64_t>("material")
                 .build();
  return t;
}

template <ObjectSpace S>
std::uint64_t sjeng_search(S& space, const SjengTypes& t, Rng& rng,
                           void* state, int depth, std::uint64_t& checksum) {
  if (depth == 0) {
    return space.template load<std::uint64_t>(state, t.move_x, 3) & 0xffff;
  }
  std::uint64_t best = 0;
  const int branching = 3;
  for (int i = 0; i < branching; ++i) {
    // Generate a move object, clone the state (make_move), recurse, free.
    void* mv = space.alloc(t.move_s);
    // Both objects take a burst of field traffic: snapshot each layout
    // once and replay the accesses through the cursors.
    auto mvc = make_cursor(space, mv, t.move_s);
    mvc.template store<std::uint8_t>(0, static_cast<std::uint8_t>(rng.below(64)));
    mvc.template store<std::uint8_t>(1, static_cast<std::uint8_t>(rng.below(64)));
    mvc.template store<std::uint8_t>(2, static_cast<std::uint8_t>(rng.below(6)));

    void* next = space.clone_object(state, t.move_x);
    auto nxc = make_cursor(space, next, t.move_x);
    nxc.template store<std::uint64_t>(
        0, mix64(nxc.template load<std::uint64_t>(0) ^
                 mvc.template load<std::uint8_t>(0) ^
                 (std::uint64_t{mvc.template load<std::uint8_t>(1)} << 8)));
    nxc.template store<std::uint32_t>(
        1, nxc.template load<std::uint32_t>(1) + 1);
    nxc.template store<std::uint64_t>(
        3, nxc.template load<std::uint64_t>(3) + rng.below(8));

    const std::uint64_t child =
        sjeng_search(space, t, rng, next, depth - 1, checksum);
    mvc.template store<std::uint64_t>(4, child);
    best = std::max(best, child);
    checksum =
        hash_combine(checksum, mvc.template load<std::uint64_t>(4));
    space.free_object(next, t.move_x);
    space.free_object(mv, t.move_s);
  }
  return best;
}

template <ObjectSpace S>
std::uint64_t sjeng_run(S& space, const SjengTypes& t, std::uint32_t scale,
                        std::uint64_t seed) {
  Rng rng(seed);
  std::uint64_t checksum = 0;
  for (std::uint32_t game = 0; game < scale; ++game) {
    void* root = space.alloc(t.move_x);
    space.store(root, t.move_x, 0, rng.next());
    space.store(root, t.move_x, 3, std::uint64_t{3000});
    const std::uint64_t best = sjeng_search(space, t, rng, root, 7, checksum);
    checksum = hash_combine(checksum, best);
    space.free_object(root, t.move_x);
  }
  return checksum;
}

void sjeng_taint(TaintClassSpace& space, const SjengTypes& t,
                 std::span<const std::uint8_t> input) {
  TaintScope scope(space.domain());
  TaintReader in(space, input);
  POLAR_COV_SITE();
  // EPD-flavoured: the initial chess position is the only input; it flows
  // into the two state objects the paper reports.
  int guard = 0;
  while (!in.empty() && ++guard < 128) {
    const auto c = in.u8();
    if (c.value() == 'm') {
      POLAR_COV_SITE();
      void* mv = space.alloc(t.move_s);
      space.store_t(mv, t.move_s, 0, in.u8());
      space.store_t(mv, t.move_s, 1, in.u8());
      space.free_object(mv, t.move_s);
    } else if (c.value() == 'x') {
      POLAR_COV_SITE();
      void* st = space.alloc(t.move_x);
      space.store_t(st, t.move_x, 3, in.u64());
      space.free_object(st, t.move_x);
    }
  }
}

}  // namespace

SpecEntry make_sjeng(TypeRegistry& reg) {
  auto types = std::make_shared<const SjengTypes>(register_sjeng(reg));
  SpecEntry e;
  e.name = "458.sjeng";
  e.paper_tainted_objects = 2;
  e.run_direct = [types](DirectSpace& s, std::uint32_t scale,
                         std::uint64_t seed) {
    return sjeng_run(s, *types, scale, seed);
  };
  e.run_polar = [types](PolarSpace& s, std::uint32_t scale,
                        std::uint64_t seed) {
    return sjeng_run(s, *types, scale, seed);
  };
  e.taint_parse = [types](TaintClassSpace& s,
                          std::span<const std::uint8_t> in) {
    sjeng_taint(s, *types, in);
  };
  e.sample_input = [](std::uint64_t seed) {
    std::vector<std::uint8_t> v{'m', 12, 28, 'x'};
    Rng rng(seed);
    for (int i = 0; i < 10; ++i) {
      v.push_back(static_cast<std::uint8_t>(rng.next()));
    }
    return v;
  };
  e.dictionary = {tok("m"), tok("x")};
  return e;
}

// ===========================================================================
// 462.libquantum — quantum register simulation. Input flows straight into
// floating-point amplitude arrays; NO heap object is input-dependent,
// which is why the paper's Table I reports zero tainted objects.
// ===========================================================================

namespace {

template <ObjectSpace S>
std::uint64_t libquantum_run(S& /*space*/, std::uint32_t scale,
                             std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t qubits = 10;
  const std::size_t dim = std::size_t{1} << qubits;
  std::vector<double> re(dim, 0.0), im(dim, 0.0);
  re[0] = 1.0;
  const double inv_sqrt2 = 0.7071067811865476;
  for (std::uint32_t round = 0; round < scale * 40; ++round) {
    const std::size_t target = rng.below(qubits);
    const std::size_t stride = std::size_t{1} << target;
    // Hadamard on `target`.
    for (std::size_t i = 0; i < dim; i += stride * 2) {
      for (std::size_t j = i; j < i + stride; ++j) {
        const double ar = re[j], ai = im[j];
        const double br = re[j + stride], bi = im[j + stride];
        re[j] = (ar + br) * inv_sqrt2;
        im[j] = (ai + bi) * inv_sqrt2;
        re[j + stride] = (ar - br) * inv_sqrt2;
        im[j + stride] = (ai - bi) * inv_sqrt2;
      }
    }
  }
  std::uint64_t checksum = 0;
  for (std::size_t i = 0; i < dim; i += 37) {
    checksum = hash_combine(
        checksum, static_cast<std::uint64_t>((re[i] * re[i] + im[i] * im[i]) *
                                             1e6));
  }
  return checksum;
}

void libquantum_taint(TaintClassSpace& space,
                      std::span<const std::uint8_t> input) {
  TaintScope scope(space.domain());
  TaintReader in(space, input);
  POLAR_COV_SITE();
  // The input (command-line sized integer) drives arithmetic only.
  Tainted<std::uint64_t> n = in.u64();
  std::uint64_t acc = 0;
  for (int i = 0; i < 16 && n.value() > 1; ++i) {
    n = (n.value() % 2 == 0) ? n >> Tainted<std::uint64_t>(1)
                             : n * Tainted<std::uint64_t>(3) +
                                   Tainted<std::uint64_t>(1);
    acc += n.value();
  }
  (void)acc;  // no object ever sees tainted data
}

}  // namespace

SpecEntry make_libquantum(TypeRegistry& /*reg*/) {
  SpecEntry e;
  e.name = "462.libquantum";
  e.paper_tainted_objects = 0;
  e.run_direct = [](DirectSpace& s, std::uint32_t scale, std::uint64_t seed) {
    return libquantum_run(s, scale, seed);
  };
  e.run_polar = [](PolarSpace& s, std::uint32_t scale, std::uint64_t seed) {
    return libquantum_run(s, scale, seed);
  };
  e.taint_parse = [](TaintClassSpace& s, std::span<const std::uint8_t> in) {
    libquantum_taint(s, in);
  };
  e.sample_input = [](std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::uint8_t> v(8);
    for (auto& b : v) b = static_cast<std::uint8_t>(rng.next());
    return v;
  };
  return e;
}

}  // namespace polar::spec
