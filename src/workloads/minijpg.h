// minijpg — a small real decoder for a JPEG-like marker format, standing
// in for libjpeg-turbo in the paper's evaluation (§V-A compatibility and
// the Table I tainted-object census).
//
// Format: 0xFFD8 (SOI), then marker segments 0xFF <type> [u16 len] [body],
// ending with 0xFFD9 (EOI). Markers: C0 (frame header: dims, components),
// C4 (huffman table stub), DB (quant table), DA (scan: delta-coded
// samples), FE (comment).
//
// State objects are named after their libjpeg-turbo counterparts
// (tjinstance, bitread_working_state, savable_state, jpeg_component_info,
// j_decompress_ptr, ...), so the TaintClass census reads like the paper's.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/space.h"
#include "fuzz/coverage.h"
#include "support/hash.h"
#include "taintclass/taint_space.h"

namespace polar::minijpg {

struct JpgTypes {
  TypeId tjinstance;
  TypeId bitread_state;   // bitread_working_state
  TypeId savable_state;
  TypeId component_info;  // jpeg_component_info
  TypeId decompress;      // j_decompress_ptr target
  TypeId huff_tbl;
  TypeId quant_tbl;
  TypeId marker_reader;
};

JpgTypes register_types(TypeRegistry& registry);

struct DecodeResult {
  bool ok = false;
  std::uint32_t width = 0;
  std::uint32_t height = 0;
  std::uint32_t components = 0;
  std::uint64_t sample_hash = 0;
  std::string error;
};

template <ObjectSpace S>
DecodeResult decode(S& space, const JpgTypes& t,
                    std::span<const std::uint8_t> data);

void taint_decode(TaintClassSpace& space, const JpgTypes& t,
                  std::span<const std::uint8_t> data);

std::vector<std::uint8_t> encode_test_image(std::uint32_t width,
                                            std::uint32_t height,
                                            std::uint64_t seed);

std::vector<std::vector<std::uint8_t>> dictionary();

// ---------------------------------------------------------------------------

template <ObjectSpace S>
void free_components(S& space, const JpgTypes& t, std::vector<void*>& comps) {
  for (void* c : comps) space.free_object(c, t.component_info);
  comps.clear();
}

template <ObjectSpace S>
DecodeResult decode(S& space, const JpgTypes& t,
                    std::span<const std::uint8_t> data) {
  DecodeResult result;
  std::size_t at = 0;
  POLAR_COV_SITE();
  const auto u8 = [&]() -> std::uint8_t {
    return at < data.size() ? data[at++] : 0;
  };
  const auto u16be = [&]() -> std::uint16_t {
    const std::uint16_t hi = u8();
    return static_cast<std::uint16_t>((hi << 8) | u8());
  };

  if (u8() != 0xff || u8() != 0xd8) {
    result.error = "missing SOI";
    return result;
  }

  void* tj = space.alloc(t.tjinstance);
  void* dec = space.alloc(t.decompress);
  const auto fail = [&](const char* why) {
    result.error = why;
    space.free_object(dec, t.decompress);
    space.free_object(tj, t.tjinstance);
    return result;
  };

  std::vector<void*> components;
  bool saw_frame = false;
  bool done = false;
  while (at < data.size() && !done) {
    if (u8() != 0xff) return free_components(space, t, components), fail("bad marker");
    const std::uint8_t marker = u8();
    if (marker == 0xd9) {  // EOI
      POLAR_COV_SITE();
      done = true;
      break;
    }
    const std::uint16_t len = u16be();
    if (len < 2) return free_components(space, t, components), fail("bad length");
    // Clamp to the file: a declared length past EOF must not let the
    // segment loops spin on the non-advancing EOF reads.
    const std::size_t body_end = std::min(at + len - 2, data.size());

    switch (marker) {
      case 0xc0: {  // frame header
        POLAR_COV_SITE();
        if (saw_frame) {
          return free_components(space, t, components), fail("duplicate SOF");
        }
        saw_frame = true;
        const std::uint8_t precision = u8();
        const std::uint16_t h = u16be();
        const std::uint16_t w = u16be();
        const std::uint8_t ncomp = u8();
        if (w == 0 || h == 0 || ncomp == 0 || ncomp > 4) {
          return free_components(space, t, components), fail("bad frame");
        }
        // Frame-header burst: four stores against each object resolved
        // from a single layout snapshot.
        auto decc = make_cursor(space, dec, t.decompress);
        decc.template store<std::uint32_t>(0, static_cast<std::uint32_t>(w));
        decc.template store<std::uint32_t>(1, static_cast<std::uint32_t>(h));
        decc.template store<std::uint32_t>(2,
                                           static_cast<std::uint32_t>(ncomp));
        decc.template store<std::uint32_t>(
            3, static_cast<std::uint32_t>(precision));
        for (std::uint8_t c = 0; c < ncomp; ++c) {
          void* ci = space.alloc(t.component_info);
          auto cic = make_cursor(space, ci, t.component_info);
          cic.template store<std::uint32_t>(0, static_cast<std::uint32_t>(u8()));
          const std::uint8_t sampling = u8();
          cic.template store<std::uint32_t>(
              1, static_cast<std::uint32_t>(sampling >> 4));
          cic.template store<std::uint32_t>(
              2, static_cast<std::uint32_t>(sampling & 0xf));
          cic.template store<std::uint32_t>(3, static_cast<std::uint32_t>(u8()));
          components.push_back(ci);
        }
        break;
      }
      case 0xc4: {  // huffman table stub: [class/id][16 counts]
        POLAR_COV_SITE();
        void* h = space.alloc(t.huff_tbl);
        space.store(h, t.huff_tbl, 0, static_cast<std::uint32_t>(u8()));
        std::uint64_t sum = 0;
        for (int i = 0; i < 16 && at < body_end; ++i) sum += u8();
        space.store(h, t.huff_tbl, 1, sum);
        result.sample_hash = hash_combine(
            result.sample_hash, space.template load<std::uint64_t>(h, t.huff_tbl, 1));
        space.free_object(h, t.huff_tbl);
        break;
      }
      case 0xdb: {  // quant table
        POLAR_COV_SITE();
        void* q = space.alloc(t.quant_tbl);
        space.store(q, t.quant_tbl, 0, static_cast<std::uint32_t>(u8()));
        std::uint64_t sum = 0;
        while (at < body_end) sum = sum * 31 + u8();
        space.store(q, t.quant_tbl, 1, sum);
        result.sample_hash = hash_combine(
            result.sample_hash,
            space.template load<std::uint64_t>(q, t.quant_tbl, 1));
        space.free_object(q, t.quant_tbl);
        break;
      }
      case 0xfe: {  // comment
        POLAR_COV_SITE();
        void* mk = space.alloc(t.marker_reader);
        space.store(mk, t.marker_reader, 1, static_cast<std::uint32_t>(len));
        while (at < body_end) u8();
        space.free_object(mk, t.marker_reader);
        break;
      }
      case 0xda: {  // scan: delta-coded samples until EOI
        POLAR_COV_SITE();
        if (!saw_frame) {
          return free_components(space, t, components), fail("scan before frame");
        }
        void* br = space.alloc(t.bitread_state);
        void* sv = space.alloc(t.savable_state);
        while (at < body_end) u8();  // scan header ignored
        // The per-sample loop is the decoder's hot path: hoist one cursor
        // per stream object so each iteration costs register adds, not
        // metadata lookups.
        auto svc = make_cursor(space, sv, t.savable_state);
        auto brc = make_cursor(space, br, t.bitread_state);
        std::int64_t predictor = 0;
        std::uint64_t n = 0;
        while (at + 1 < data.size() &&
               !(data[at] == 0xff && data[at + 1] == 0xd9)) {
          const auto delta = static_cast<std::int8_t>(u8());
          predictor += delta;
          svc.template store<std::uint64_t>(
              0, static_cast<std::uint64_t>(predictor));
          brc.template store<std::uint64_t>(
              1, brc.template load<std::uint64_t>(1) + 8);
          result.sample_hash = hash_combine(
              result.sample_hash, svc.template load<std::uint64_t>(0));
          ++n;
        }
        space.store(tj, t.tjinstance, 1, n);
        space.free_object(sv, t.savable_state);
        space.free_object(br, t.bitread_state);
        break;
      }
      default:  // skippable APPn etc.
        POLAR_COV_SITE();
        while (at < body_end) u8();
        break;
    }
    at = body_end > at ? body_end : at;
  }

  if (!saw_frame) return free_components(space, t, components), fail("no frame");
  if (!done) return free_components(space, t, components), fail("missing EOI");
  POLAR_COV_SITE();
  result.ok = true;
  result.width = space.template load<std::uint32_t>(dec, t.decompress, 0);
  result.height = space.template load<std::uint32_t>(dec, t.decompress, 1);
  result.components = space.template load<std::uint32_t>(dec, t.decompress, 2);
  for (void* ci : components) {
    result.sample_hash = hash_combine(
        result.sample_hash,
        space.template load<std::uint32_t>(ci, t.component_info, 0));
  }
  free_components(space, t, components);
  space.free_object(dec, t.decompress);
  space.free_object(tj, t.tjinstance);
  return result;
}

}  // namespace polar::minijpg
