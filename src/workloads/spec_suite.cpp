#include "workloads/spec_suite.h"

namespace polar::spec {

std::vector<SpecEntry> build_spec_suite(TypeRegistry& registry) {
  std::vector<SpecEntry> suite;
  suite.push_back(make_perlbench(registry));
  suite.push_back(make_bzip2(registry));
  suite.push_back(make_gcc(registry));
  suite.push_back(make_mcf(registry));
  suite.push_back(make_gobmk(registry));
  suite.push_back(make_hmmer(registry));
  suite.push_back(make_sjeng(registry));
  suite.push_back(make_libquantum(registry));
  suite.push_back(make_h264ref(registry));
  suite.push_back(make_omnetpp(registry));
  suite.push_back(make_astar(registry));
  suite.push_back(make_xalancbmk(registry));
  return suite;
}

}  // namespace polar::spec
