// Spec minis, group 1: 400.perlbench, 401.bzip2, 403.gcc, 429.mcf.
#include <memory>

#include "workloads/spec_common.h"
#include "workloads/spec_suite.h"

namespace polar::spec {

// ===========================================================================
// 400.perlbench — a tiny SV-based stack interpreter. Perl allocates a
// scalar-value (SV) object for nearly every operation; the mini does the
// same, so allocation churn dominates (paper: 5.6M allocations).
// ===========================================================================

namespace {

struct PerlTypes {
  TypeId sv, stat, cop, sublex, jmpenv, logop, unop, scan_data, rexc, regnode;
};

PerlTypes register_perl(TypeRegistry& reg) {
  PerlTypes t;
  t.sv = TypeBuilder(reg, "perl.sv")
             .field<std::uint32_t>("flags")
             .field<std::uint64_t>("ivalue")
             .ptr("pv")
             .field<std::uint32_t>("len")
             .build();
  t.stat = TypeBuilder(reg, "perl.stat")
               .field<std::uint64_t>("st_size")
               .field<std::uint32_t>("st_mode")
               .field<std::uint64_t>("st_mtime")
               .build();
  t.cop = TypeBuilder(reg, "perl.cop")
              .field<std::uint32_t>("line")
              .ptr("file")
              .field<std::uint64_t>("seq")
              .build();
  t.sublex = TypeBuilder(reg, "perl.sublex_info")
                 .ptr("super_state")
                 .field<std::uint32_t>("sub_inwhat")
                 .ptr("sub_op")
                 .build();
  t.jmpenv = TypeBuilder(reg, "perl.jmpenv")
                 .ptr("prev")
                 .field<std::uint32_t>("ret")
                 .field<std::uint32_t>("mask")
                 .build();
  t.logop = TypeBuilder(reg, "perl.logop")
                .fn_ptr("op_ppaddr")
                .ptr("op_first")
                .ptr("op_other")
                .field<std::uint32_t>("op_flags")
                .build();
  t.unop = TypeBuilder(reg, "perl.unop")
               .fn_ptr("op_ppaddr")
               .ptr("op_first")
               .field<std::uint32_t>("op_type")
               .build();
  t.scan_data = TypeBuilder(reg, "perl.scan_data_t")
                    .ptr("longest")
                    .field<std::uint64_t>("offset")
                    .field<std::uint32_t>("flags")
                    .build();
  t.rexc = TypeBuilder(reg, "perl.RExC_state_t")
               .ptr("precomp")
               .ptr("end")
               .field<std::uint32_t>("npar")
               .field<std::uint32_t>("flags")
               .build();
  t.regnode = TypeBuilder(reg, "perl.regnode")
                  .field<std::uint8_t>("op")
                  .field<std::uint8_t>("type")
                  .field<std::uint16_t>("next_off")
                  .field<std::uint32_t>("arg")
                  .build();
  return t;
}

template <ObjectSpace S>
std::uint64_t perl_run(S& space, const PerlTypes& t, std::uint32_t scale,
                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<void*> stack;
  std::uint64_t checksum = 0;
  const std::uint64_t steps = static_cast<std::uint64_t>(scale) * 20000;
  for (std::uint64_t step = 0; step < steps; ++step) {
    const std::uint64_t op = rng.below(5);
    if (op == 0 || stack.empty()) {  // push immediate SV
      void* sv = space.alloc(t.sv);
      space.store(sv, t.sv, 0, std::uint32_t{1});
      space.store(sv, t.sv, 1, rng.next() & 0xffff);
      stack.push_back(sv);
    } else if (op == 1 && stack.size() >= 2) {  // add: binary op via new SV
      void* b = stack.back();
      stack.pop_back();
      void* a = stack.back();
      stack.pop_back();
      void* sv = space.alloc(t.sv);
      const auto sum = space.template load<std::uint64_t>(a, t.sv, 1) +
                       space.template load<std::uint64_t>(b, t.sv, 1);
      space.store(sv, t.sv, 1, sum);
      space.store(sv, t.sv, 0, std::uint32_t{1});
      space.free_object(a, t.sv);
      space.free_object(b, t.sv);
      stack.push_back(sv);
    } else if (op == 2) {  // dup (perl's sv_mortalcopy)
      stack.push_back(space.clone_object(stack.back(), t.sv));
    } else if (op == 3 && stack.size() > 1) {  // drop
      space.free_object(stack.back(), t.sv);
      stack.pop_back();
    } else {  // consume into checksum
      checksum =
          hash_combine(checksum,
                       space.template load<std::uint64_t>(stack.back(), t.sv, 1));
    }
    if (stack.size() > 64) {  // interpreter "scope exit"
      while (stack.size() > 8) {
        space.free_object(stack.back(), t.sv);
        stack.pop_back();
      }
    }
  }
  for (void* sv : stack) {
    checksum = hash_combine(checksum,
                            space.template load<std::uint64_t>(sv, t.sv, 1));
    space.free_object(sv, t.sv);
  }
  return checksum;
}

void perl_taint(TaintClassSpace& space, const PerlTypes& t,
                std::span<const std::uint8_t> input) {
  TaintScope scope(space.domain());
  TaintReader in(space, input);
  POLAR_COV_SITE();
  // A micro "perl parser": each opcode byte builds one of the runtime
  // structures perl fills while compiling/running a script.
  int guard = 0;
  while (!in.empty() && ++guard < 256) {
    const auto op = in.u8();
    switch (op.value() % 11) {
      case 0: {
        POLAR_COV_SITE();
        void* sv = space.alloc(t.sv);
        space.store_t(sv, t.sv, 1, in.u64());
        space.store_t(sv, t.sv, 3, in.u32());
        space.free_object(sv, t.sv);
        break;
      }
      case 1: {
        POLAR_COV_SITE();
        void* st = space.alloc(t.stat);
        space.store_t(st, t.stat, 0, in.u64());
        space.free_object(st, t.stat);
        break;
      }
      case 2: {
        POLAR_COV_SITE();
        void* cop = space.alloc(t.cop);
        space.store_t(cop, t.cop, 0, in.u32());
        space.free_object(cop, t.cop);
        break;
      }
      case 3: {
        POLAR_COV_SITE();
        void* sl = space.alloc(t.sublex);
        space.store_t(sl, t.sublex, 1, in.u32());
        space.free_object(sl, t.sublex);
        break;
      }
      case 4: {
        POLAR_COV_SITE();
        void* env = space.alloc(t.jmpenv);
        space.store_t(env, t.jmpenv, 1, in.u32());
        space.free_object(env, t.jmpenv);
        break;
      }
      case 5: {
        POLAR_COV_SITE();
        void* lop = space.alloc(t.logop);
        space.store_t(lop, t.logop, 3, in.u32());
        space.free_object(lop, t.logop);
        break;
      }
      case 6: {
        POLAR_COV_SITE();
        void* uop = space.alloc(t.unop);
        space.store_t(uop, t.unop, 2, in.u32());
        space.free_object(uop, t.unop);
        break;
      }
      case 7: {
        POLAR_COV_SITE();
        void* sd = space.alloc(t.scan_data);
        space.store_t(sd, t.scan_data, 1, in.u64());
        space.free_object(sd, t.scan_data);
        break;
      }
      case 8: {  // regex compile path needs the 'm' marker first
        if (op.value() == 0x41) {
          POLAR_COV_SITE();
          void* rx = space.alloc(t.rexc);
          space.store_t(rx, t.rexc, 2, in.u32());
          space.free_object(rx, t.rexc);
        }
        break;
      }
      case 9: {
        if (op.value() == 0x93) {
          POLAR_COV_SITE();
          void* rn = space.alloc(t.regnode);
          space.store_t(rn, t.regnode, 3, in.u32());
          space.free_object(rn, t.regnode);
        }
        break;
      }
      default:
        break;  // comment byte
    }
  }
}

}  // namespace

SpecEntry make_perlbench(TypeRegistry& reg) {
  auto types = std::make_shared<const PerlTypes>(register_perl(reg));
  SpecEntry e;
  e.name = "400.perlbench";
  e.paper_tainted_objects = 20;
  e.run_direct = [types](DirectSpace& s, std::uint32_t scale,
                         std::uint64_t seed) {
    return perl_run(s, *types, scale, seed);
  };
  e.run_polar = [types](PolarSpace& s, std::uint32_t scale,
                        std::uint64_t seed) {
    return perl_run(s, *types, scale, seed);
  };
  e.taint_parse = [types](TaintClassSpace& s,
                          std::span<const std::uint8_t> in) {
    perl_taint(s, *types, in);
  };
  e.sample_input = [](std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::uint8_t> v(24);
    for (auto& b : v) b = static_cast<std::uint8_t>(rng.next());
    return v;
  };
  e.dictionary = {tok("A"), tok("\x93"), {0x41, 0x93}};
  return e;
}

// ===========================================================================
// 401.bzip2 — run-length block compressor. Nearly all work is array
// scanning; only a handful of state objects exist but their counters are
// updated constantly (paper: 36 allocations, 34M member accesses).
// ===========================================================================

namespace {

struct BzTypes {
  TypeId bzfile, spec_fd, uint64_box;
};

BzTypes register_bz(TypeRegistry& reg) {
  BzTypes t;
  t.bzfile = TypeBuilder(reg, "bz.bzFile")
                 .field<std::uint32_t>("mode")
                 .field<std::uint32_t>("avail_in")
                 .field<std::uint64_t>("total_in")
                 .field<std::uint64_t>("crc")
                 .ptr("next")
                 .build();
  t.spec_fd = TypeBuilder(reg, "bz.spec_fd_t")
                  .field<std::uint32_t>("fd")
                  .field<std::uint64_t>("pos")
                  .field<std::uint64_t>("limit")
                  .build();
  t.uint64_box = TypeBuilder(reg, "bz.UInt64")
                     .field<std::uint32_t>("lo")
                     .field<std::uint32_t>("hi")
                     .build();
  return t;
}

template <ObjectSpace S>
std::uint64_t bz_run(S& space, const BzTypes& t, std::uint32_t scale,
                     std::uint64_t seed) {
  Rng rng(seed);
  // Compressible pseudo-input: runs of repeated bytes.
  std::vector<std::uint8_t> data(static_cast<std::size_t>(scale) * 16384);
  for (std::size_t i = 0; i < data.size();) {
    const std::uint8_t byte = static_cast<std::uint8_t>(rng.next());
    const std::size_t run = 1 + rng.below(32);
    for (std::size_t j = 0; j < run && i < data.size(); ++j) data[i++] = byte;
  }

  void* bz = space.alloc(t.bzfile);
  void* fd = space.alloc(t.spec_fd);
  space.store(bz, t.bzfile, 0, std::uint32_t{2});  // write mode
  space.store(fd, t.spec_fd, 2, static_cast<std::uint64_t>(data.size()));

  std::vector<std::uint8_t> out;
  out.reserve(data.size() / 4);
  // The stream objects are hot for the whole RLE loop: resolve each layout
  // once up front and serve every iteration's offsets from the cursor.
  auto bzc = make_cursor(space, bz, t.bzfile);
  auto fdc = make_cursor(space, fd, t.spec_fd);
  std::size_t i = 0;
  while (i < data.size()) {
    const std::uint8_t byte = data[i];
    std::size_t run = 1;
    while (i + run < data.size() && data[i + run] == byte && run < 255) ++run;
    out.push_back(byte);
    out.push_back(static_cast<std::uint8_t>(run));
    // Stream-state updates: the member-access traffic of the original.
    bzc.template store<std::uint64_t>(
        2, bzc.template load<std::uint64_t>(2) + run);
    bzc.template store<std::uint64_t>(
        3, mix64(bzc.template load<std::uint64_t>(3) ^
                 (static_cast<std::uint64_t>(byte) * run)));
    fdc.template store<std::uint64_t>(1, static_cast<std::uint64_t>(i));
    i += run;
  }
  const std::uint64_t crc = space.template load<std::uint64_t>(bz, t.bzfile, 3);
  const std::uint64_t total =
      space.template load<std::uint64_t>(bz, t.bzfile, 2);
  space.free_object(bz, t.bzfile);
  space.free_object(fd, t.spec_fd);
  return hash_combine(hash_combine(crc, total), out.size());
}

void bz_taint(TaintClassSpace& space, const BzTypes& t,
              std::span<const std::uint8_t> input) {
  TaintScope scope(space.domain());
  TaintReader in(space, input);
  POLAR_COV_SITE();
  if (in.remaining() < 4) return;
  const auto magic = in.u16();
  if (magic.value() != 0x5a42) return;  // "BZ"
  POLAR_COV_SITE();
  void* bz = space.alloc(t.bzfile);
  void* fd = space.alloc(t.spec_fd);
  space.store_t(bz, t.bzfile, 1, in.u32());  // avail_in from header
  Tainted<std::uint64_t> crc(0);
  int guard = 0;
  while (!in.empty() && ++guard < 512) {
    const auto byte = in.u8();
    crc = crc + byte.cast<std::uint64_t>();
  }
  space.store_t(bz, t.bzfile, 3, crc);
  space.store_t(fd, t.spec_fd, 2, crc);
  if (crc.value() % 3 == 0) {
    POLAR_COV_SITE();
    void* box = space.alloc(t.uint64_box);
    space.store_t(box, t.uint64_box, 0, crc.cast<std::uint32_t>());
    space.free_object(box, t.uint64_box);
  }
  space.free_object(bz, t.bzfile);
  space.free_object(fd, t.spec_fd);
}

}  // namespace

SpecEntry make_bzip2(TypeRegistry& reg) {
  auto types = std::make_shared<const BzTypes>(register_bz(reg));
  SpecEntry e;
  e.name = "401.bzip2";
  e.paper_tainted_objects = 3;
  e.run_direct = [types](DirectSpace& s, std::uint32_t scale,
                         std::uint64_t seed) {
    return bz_run(s, *types, scale, seed);
  };
  e.run_polar = [types](PolarSpace& s, std::uint32_t scale,
                        std::uint64_t seed) {
    return bz_run(s, *types, scale, seed);
  };
  e.taint_parse = [types](TaintClassSpace& s,
                          std::span<const std::uint8_t> in) {
    bz_taint(s, *types, in);
  };
  e.sample_input = [](std::uint64_t seed) {
    std::vector<std::uint8_t> v{0x42, 0x5a, 8, 0, 0, 0};
    Rng rng(seed);
    for (int i = 0; i < 16; ++i) {
      v.push_back(static_cast<std::uint8_t>(rng.next()));
    }
    return v;
  };
  e.dictionary = {tok("BZ")};
  return e;
}

// ===========================================================================
// 403.gcc — expression-tree construction and constant folding. The
// original is dominated by IR node allocation (paper: 51M alloc, 50M
// free, essentially zero steady-state member traffic relative to that).
// ===========================================================================

namespace {

struct GccTypes {
  TypeId node, realvalue, ix86_address, type_hash, stat, cb_args, mem_attrs,
      addr_const, ix86_args, insn_note, tree_decl, rtx_def;
};

GccTypes register_gcc(TypeRegistry& reg) {
  GccTypes t;
  t.node = TypeBuilder(reg, "gcc.tree_node")
               .field<std::uint32_t>("code")
               .field<std::uint64_t>("ival")
               .ptr("left")
               .ptr("right")
               .build();
  t.realvalue = TypeBuilder(reg, "gcc.realvaluetype")
                    .field<std::uint64_t>("sig")
                    .field<std::uint32_t>("exp")
                    .field<std::uint32_t>("cls")
                    .build();
  t.ix86_address = TypeBuilder(reg, "gcc.ix86_address")
                       .ptr("base")
                       .ptr("index")
                       .field<std::uint64_t>("disp")
                       .field<std::uint32_t>("scale")
                       .build();
  t.type_hash = TypeBuilder(reg, "gcc.type_hash")
                    .field<std::uint64_t>("hash")
                    .ptr("type")
                    .build();
  t.stat = TypeBuilder(reg, "gcc.stat")
               .field<std::uint64_t>("st_size")
               .field<std::uint64_t>("st_mtime")
               .build();
  t.cb_args = TypeBuilder(reg, "gcc.cb_args")
                  .ptr("pfile")
                  .field<std::uint32_t>("kind")
                  .field<std::uint64_t>("value")
                  .build();
  t.mem_attrs = TypeBuilder(reg, "gcc.mem_attrs")
                    .ptr("expr")
                    .field<std::uint64_t>("offset")
                    .field<std::uint64_t>("size")
                    .field<std::uint32_t>("align")
                    .build();
  t.addr_const = TypeBuilder(reg, "gcc.addr_const")
                     .ptr("base")
                     .field<std::uint64_t>("offset")
                     .build();
  t.ix86_args = TypeBuilder(reg, "gcc.ix86_args")
                    .field<std::uint32_t>("nregs")
                    .field<std::uint32_t>("regno")
                    .field<std::uint32_t>("sse_nregs")
                    .build();
  t.insn_note = TypeBuilder(reg, "gcc.insn_note")
                    .field<std::uint32_t>("kind")
                    .ptr("insn")
                    .build();
  t.tree_decl = TypeBuilder(reg, "gcc.tree_decl")
                    .ptr("name")
                    .field<std::uint32_t>("uid")
                    .field<std::uint32_t>("mode")
                    .build();
  t.rtx_def = TypeBuilder(reg, "gcc.rtx_def")
                  .field<std::uint16_t>("code")
                  .field<std::uint16_t>("mode")
                  .field<std::uint64_t>("operand")
                  .build();
  return t;
}

template <ObjectSpace S>
std::uint64_t gcc_run(S& space, const GccTypes& t, std::uint32_t scale,
                      std::uint64_t seed) {
  Rng rng(seed);
  std::uint64_t checksum = 0;
  const std::uint32_t rounds = scale;
  for (std::uint32_t round = 0; round < rounds; ++round) {
    // Build a random expression forest, then fold it bottom-up.
    std::vector<void*> roots;
    for (int leaf = 0; leaf < 2000; ++leaf) {
      void* n = space.alloc(t.node);
      space.store(n, t.node, 0, std::uint32_t{0});  // CONST
      space.store(n, t.node, 1, rng.next() & 0xff);
      roots.push_back(n);
    }
    while (roots.size() > 1) {
      const std::size_t i = rng.below(roots.size());
      void* a = roots[i];
      roots[i] = roots.back();
      roots.pop_back();
      const std::size_t j = rng.below(roots.size());
      void* b = roots[j];
      void* op = space.alloc(t.node);
      space.store(op, t.node, 0, std::uint32_t{1 + rng.below(2)});  // ADD/XOR
      space.store(op, t.node, 2, reinterpret_cast<std::uint64_t>(a));
      space.store(op, t.node, 3, reinterpret_cast<std::uint64_t>(b));
      roots[j] = op;
    }
    // Fold with an explicit post-order stack, freeing folded children —
    // gcc's ggc collection modelled as immediate free.
    struct Item {
      void* n;
      bool expanded;
    };
    std::vector<Item> work{{roots[0], false}};
    std::vector<std::uint64_t> values;
    while (!work.empty()) {
      Item item = work.back();
      work.pop_back();
      // One layout snapshot per node visit; child metadata is prefetched
      // before the children are pushed, hiding pagemap-walk latency in the
      // pointer-chasing traversal.
      auto nc = make_cursor(space, item.n, t.node);
      const auto code = nc.template load<std::uint32_t>(0);
      if (code == 0) {
        values.push_back(nc.template load<std::uint64_t>(1));
        space.free_object(item.n, t.node);
        continue;
      }
      if (!item.expanded) {
        void* lhs =
            reinterpret_cast<void*>(nc.template load<std::uint64_t>(2));
        void* rhs =
            reinterpret_cast<void*>(nc.template load<std::uint64_t>(3));
        space_prefetch(space, lhs);
        space_prefetch(space, rhs);
        work.push_back({item.n, true});
        work.push_back({lhs, false});
        work.push_back({rhs, false});
      } else {
        const std::uint64_t b = values.back();
        values.pop_back();
        const std::uint64_t a = values.back();
        values.pop_back();
        values.push_back(code == 1 ? a + b : (a ^ b));
        space.free_object(item.n, t.node);
      }
    }
    checksum = hash_combine(checksum, values.back());
  }
  return checksum;
}

void gcc_taint(TaintClassSpace& space, const GccTypes& t,
               std::span<const std::uint8_t> input) {
  TaintScope scope(space.domain());
  TaintReader in(space, input);
  POLAR_COV_SITE();
  int guard = 0;
  while (!in.empty() && ++guard < 256) {
    const auto tk = in.u8();
    switch (tk.value() % 13) {
      case 0: {
        POLAR_COV_SITE();
        void* o = space.alloc(t.realvalue);
        space.store_t(o, t.realvalue, 0, in.u64());
        space.free_object(o, t.realvalue);
        break;
      }
      case 1: {
        POLAR_COV_SITE();
        void* o = space.alloc(t.ix86_address);
        space.store_t(o, t.ix86_address, 2, in.u64());
        space.free_object(o, t.ix86_address);
        break;
      }
      case 2: {
        POLAR_COV_SITE();
        void* o = space.alloc(t.type_hash);
        space.store_t(o, t.type_hash, 0, in.u64());
        space.free_object(o, t.type_hash);
        break;
      }
      case 3: {
        POLAR_COV_SITE();
        void* o = space.alloc(t.stat);
        space.store_t(o, t.stat, 0, in.u64());
        space.free_object(o, t.stat);
        break;
      }
      case 4: {
        POLAR_COV_SITE();
        void* o = space.alloc(t.cb_args);
        space.store_t(o, t.cb_args, 2, in.u64());
        space.free_object(o, t.cb_args);
        break;
      }
      case 5: {
        POLAR_COV_SITE();
        void* o = space.alloc(t.mem_attrs);
        space.store_t(o, t.mem_attrs, 1, in.u64());
        space.store_t(o, t.mem_attrs, 2, in.u64());
        space.free_object(o, t.mem_attrs);
        break;
      }
      case 6: {
        POLAR_COV_SITE();
        void* o = space.alloc(t.addr_const);
        space.store_t(o, t.addr_const, 1, in.u64());
        space.free_object(o, t.addr_const);
        break;
      }
      case 7: {
        POLAR_COV_SITE();
        void* o = space.alloc(t.ix86_args);
        space.store_t(o, t.ix86_args, 0, in.u32());
        space.free_object(o, t.ix86_args);
        break;
      }
      case 8: {
        if (tk.value() == 0x21) {
          POLAR_COV_SITE();
          void* o = space.alloc(t.insn_note);
          space.store_t(o, t.insn_note, 0, in.u32());
          space.free_object(o, t.insn_note);
        }
        break;
      }
      case 9: {
        if (tk.value() == 0x74) {
          POLAR_COV_SITE();
          void* o = space.alloc(t.tree_decl);
          space.store_t(o, t.tree_decl, 1, in.u32());
          space.free_object(o, t.tree_decl);
        }
        break;
      }
      case 10: {
        if (tk.value() == 0xa3) {
          POLAR_COV_SITE();
          void* o = space.alloc(t.rtx_def);
          space.store_t(o, t.rtx_def, 2, in.u64());
          space.free_object(o, t.rtx_def);
        }
        break;
      }
      case 11: {
        POLAR_COV_SITE();
        void* o = space.alloc(t.node, tk.label());  // input-driven alloc
        space.store_t(o, t.node, 1, in.u64());
        space.free_object(o, t.node, tk.label());
        break;
      }
      default:
        break;
    }
  }
}

}  // namespace

SpecEntry make_gcc(TypeRegistry& reg) {
  auto types = std::make_shared<const GccTypes>(register_gcc(reg));
  SpecEntry e;
  e.name = "403.gcc";
  e.paper_tainted_objects = 33;
  e.run_direct = [types](DirectSpace& s, std::uint32_t scale,
                         std::uint64_t seed) {
    return gcc_run(s, *types, scale, seed);
  };
  e.run_polar = [types](PolarSpace& s, std::uint32_t scale,
                        std::uint64_t seed) {
    return gcc_run(s, *types, scale, seed);
  };
  e.taint_parse = [types](TaintClassSpace& s,
                          std::span<const std::uint8_t> in) {
    gcc_taint(s, *types, in);
  };
  e.sample_input = [](std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::uint8_t> v(32);
    for (auto& b : v) b = static_cast<std::uint8_t>(rng.next());
    return v;
  };
  e.dictionary = {{0x21}, {0x74}, {0xa3}};
  return e;
}

// ===========================================================================
// 429.mcf — network simplex stand-in: a Bellman-Ford sweep whose global
// counters live in ONE long-lived network object that the hot loop updates
// constantly (paper: 1 allocation, 9.1M member accesses, 100% cache hits).
// ===========================================================================

namespace {

struct McfTypes {
  TypeId network, basket;
};

McfTypes register_mcf(TypeRegistry& reg) {
  McfTypes t;
  t.network = TypeBuilder(reg, "mcf.network")
                  .ptr("nodes")
                  .ptr("arcs")
                  .field<std::uint64_t>("n")
                  .field<std::uint64_t>("m")
                  .field<std::uint64_t>("iterations")
                  .field<std::uint64_t>("total_cost")
                  .build();
  t.basket = TypeBuilder(reg, "mcf.basket")
                 .field<std::uint64_t>("size")
                 .ptr("perm")
                 .build();
  return t;
}

template <ObjectSpace S>
std::uint64_t mcf_run(S& space, const McfTypes& t, std::uint32_t scale,
                      std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t n = static_cast<std::size_t>(scale) * 200;
  const std::size_t m = n * 4;
  struct Arc {
    std::uint32_t from, to;
    std::uint64_t cost;
  };
  std::vector<Arc> arcs(m);
  for (Arc& a : arcs) {
    a.from = static_cast<std::uint32_t>(rng.below(n));
    a.to = static_cast<std::uint32_t>(rng.below(n));
    a.cost = 1 + rng.below(1000);
  }
  std::vector<std::uint64_t> dist(n, ~0ULL / 2);
  dist[0] = 0;

  void* net = space.alloc(t.network);
  space.store(net, t.network, 0, reinterpret_cast<std::uint64_t>(dist.data()));
  space.store(net, t.network, 1, reinterpret_cast<std::uint64_t>(arcs.data()));
  space.store(net, t.network, 2, static_cast<std::uint64_t>(n));
  space.store(net, t.network, 3, static_cast<std::uint64_t>(m));

  for (int pass = 0; pass < 12; ++pass) {
    bool changed = false;
    for (const Arc& a : arcs) {
      if (dist[a.from] + a.cost < dist[a.to]) {
        dist[a.to] = dist[a.from] + a.cost;
        changed = true;
        // The network object's running counters: the hot member traffic.
        space.store(net, t.network, 5,
                    space.template load<std::uint64_t>(net, t.network, 5) +
                        a.cost);
      }
      space.store(net, t.network, 4,
                  space.template load<std::uint64_t>(net, t.network, 4) + 1);
    }
    if (!changed) break;
  }
  std::uint64_t checksum =
      hash_combine(space.template load<std::uint64_t>(net, t.network, 4),
                   space.template load<std::uint64_t>(net, t.network, 5));
  for (std::uint64_t d : dist) checksum = hash_combine(checksum, d);
  space.free_object(net, t.network);
  return checksum;
}

void mcf_taint(TaintClassSpace& space, const McfTypes& t,
               std::span<const std::uint8_t> input) {
  TaintScope scope(space.domain());
  TaintReader in(space, input);
  POLAR_COV_SITE();
  if (in.remaining() < 8) return;
  const auto n = in.u32();
  const auto m = in.u32();
  if (n.value() == 0 || n.value() > 1000) return;
  POLAR_COV_SITE();
  void* net = space.alloc(t.network, n.label());
  space.store_t(net, t.network, 2, n.cast<std::uint64_t>());
  space.store_t(net, t.network, 3, m.cast<std::uint64_t>());
  if (m.value() % 7 == 1) {
    POLAR_COV_SITE();
    void* bk = space.alloc(t.basket, m.label());
    space.store_t(bk, t.basket, 0, m.cast<std::uint64_t>());
    space.free_object(bk, t.basket);
  }
  space.free_object(net, t.network, n.label());
}

}  // namespace

SpecEntry make_mcf(TypeRegistry& reg) {
  auto types = std::make_shared<const McfTypes>(register_mcf(reg));
  SpecEntry e;
  e.name = "429.mcf";
  e.paper_tainted_objects = 2;
  e.run_direct = [types](DirectSpace& s, std::uint32_t scale,
                         std::uint64_t seed) {
    return mcf_run(s, *types, scale, seed);
  };
  e.run_polar = [types](PolarSpace& s, std::uint32_t scale,
                        std::uint64_t seed) {
    return mcf_run(s, *types, scale, seed);
  };
  e.taint_parse = [types](TaintClassSpace& s,
                          std::span<const std::uint8_t> in) {
    mcf_taint(s, *types, in);
  };
  e.sample_input = [](std::uint64_t) {
    return std::vector<std::uint8_t>{10, 0, 0, 0, 8, 0, 0, 0};
  };
  return e;
}

}  // namespace polar::spec
