#include "workloads/minipng.h"

#include "support/hash.h"
#include "support/rng.h"
#include "workloads/spec_common.h"

namespace polar::minipng {

PngTypes register_types(TypeRegistry& reg) {
  PngTypes t;
  t.png_struct = TypeBuilder(reg, "png.png_struct_def")
                     .field<std::uint32_t>("state")
                     .field<std::uint64_t>("crc")
                     .field<std::uint32_t>("rowbytes")
                     .bytes("row_buf", detail::kRowBufSize, 8)
                     .field<std::uint32_t>("palette_len")
                     .bytes("palette", detail::kMaxPalette * 3, 1)
                     .build();
  t.png_info = TypeBuilder(reg, "png.png_info_def")
                   .field<std::uint32_t>("width")
                   .field<std::uint32_t>("height")
                   .field<std::uint8_t>("bit_depth")
                   .field<std::uint8_t>("color_type")
                   .field<std::uint32_t>("num_text")
                   .field<std::uint32_t>("num_palette")
                   .build();
  t.png_color = TypeBuilder(reg, "png.png_color")
                    .field<std::uint8_t>("red")
                    .field<std::uint8_t>("green")
                    .field<std::uint8_t>("blue")
                    .build();
  t.png_color16 = TypeBuilder(reg, "png.png_color16_struct")
                      .field<std::uint16_t>("red")
                      .field<std::uint16_t>("green")
                      .field<std::uint16_t>("blue")
                      .field<std::uint16_t>("gray")
                      .build();
  t.png_text = TypeBuilder(reg, "png.png_text")
                   .bytes("key", 16, 1)
                   .field<std::uint32_t>("text_length")
                   .fn_ptr("free_fn")  // sensitive field adjacent to the key
                   .build();
  t.png_time = TypeBuilder(reg, "png.png_time_struct")
                   .field<std::uint16_t>("year")
                   .field<std::uint8_t>("month")
                   .field<std::uint8_t>("day")
                   .field<std::uint8_t>("hour")
                   .field<std::uint8_t>("minute")
                   .field<std::uint8_t>("second")
                   .build();
  t.png_unknown = TypeBuilder(reg, "png.png_unknown_chunk")
                      .field<std::uint64_t>("name")
                      .field<std::uint64_t>("size")
                      .ptr("data")
                      .build();
  t.png_xy = TypeBuilder(reg, "png.png_xy")
                 .field<std::uint32_t>("x")
                 .field<std::uint32_t>("y")
                 .build();
  t.png_xyz = TypeBuilder(reg, "png.png_XYZ")
                  .field<std::uint64_t>("X")
                  .field<std::uint64_t>("Y")
                  .build();
  return t;
}

void taint_decode(TaintClassSpace& space, const PngTypes& t,
                  std::span<const std::uint8_t> data) {
  using namespace detail;
  TaintScope scope(space.domain());
  spec::TaintReader in(space, data);
  POLAR_COV_SITE();
  if (in.u32().value() != kMagic) return;
  POLAR_COV_SITE();

  void* ps = space.alloc(t.png_struct);
  void* info = nullptr;
  Tainted<std::uint64_t> crc(0);
  int guard = 0;
  while (!in.empty() && ++guard < 64) {
    const auto len = in.u32();
    const auto chunk_tag = in.u32();
    const std::size_t body = std::min<std::size_t>(len.value(), in.remaining());
    switch (chunk_tag.value()) {
      case kIHDR: {
        POLAR_COV_SITE();
        if (info == nullptr) info = space.alloc(t.png_info, len.label());
        space.store_t(info, t.png_info, 0, in.u32());
        space.store_t(info, t.png_info, 1, in.u32());
        space.store_t(info, t.png_info, 2, in.u8());
        space.store_t(info, t.png_info, 3, in.u8());
        space.store_t(ps, t.png_struct, 2,
                      space.load_t<std::uint32_t>(info, t.png_info, 0));
        if (body > 10) in.bytes(body - 10);
        break;
      }
      case kPLTE: {
        POLAR_COV_SITE();
        const auto window = in.bytes(std::min<std::size_t>(body, 48));
        if (!window.empty()) {
          space.store_bytes(ps, t.png_struct, 5, 0, window.data(),
                            window.size());
          void* c = space.alloc(t.png_color, chunk_tag.label());
          space.store_t(c, t.png_color, 0,
                        Tainted<std::uint8_t>(window[0],
                                              space.domain().shadow().get(
                                                  &window[0])));
          space.free_object(c, t.png_color);
        }
        if (body > window.size()) in.bytes(body - window.size());
        break;
      }
      case kTIME: {
        POLAR_COV_SITE();
        void* tm = space.alloc(t.png_time);
        space.store_t(tm, t.png_time, 0, in.u16());
        space.store_t(tm, t.png_time, 1, in.u8());
        space.store_t(tm, t.png_time, 2, in.u8());
        if (body > 4) in.bytes(body - 4);
        space.free_object(tm, t.png_time);
        break;
      }
      case kTEXT: {
        POLAR_COV_SITE();
        void* txt = space.alloc(t.png_text);
        const auto window = in.bytes(std::min<std::size_t>(body, 16));
        if (!window.empty()) {
          space.store_bytes(txt, t.png_text, 0, 0, window.data(),
                            window.size());
        }
        space.store_t(txt, t.png_text, 1,
                      len.cast<std::uint32_t>());
        if (body > window.size()) in.bytes(body - window.size());
        space.free_object(txt, t.png_text);
        break;
      }
      case kBKGD: {
        POLAR_COV_SITE();
        void* bg = space.alloc(t.png_color16);
        space.store_t(bg, t.png_color16, 0, in.u16());
        space.store_t(bg, t.png_color16, 1, in.u16());
        space.store_t(bg, t.png_color16, 2, in.u16());
        if (body > 6) in.bytes(body - 6);
        space.free_object(bg, t.png_color16);
        break;
      }
      case kCHRM: {
        POLAR_COV_SITE();
        void* xy = space.alloc(t.png_xy);
        const auto x = in.u32();
        const auto y = in.u32();
        space.store_t(xy, t.png_xy, 0, x);
        space.store_t(xy, t.png_xy, 1, y);
        void* xyz = space.alloc(t.png_xyz);
        space.store_t(xyz, t.png_xyz, 0,
                      x.cast<std::uint64_t>() * Tainted<std::uint64_t>(2));
        space.store_t(xyz, t.png_xyz, 1,
                      y.cast<std::uint64_t>() * Tainted<std::uint64_t>(3));
        if (body > 8) in.bytes(body - 8);
        space.free_object(xyz, t.png_xyz);
        space.free_object(xy, t.png_xy);
        break;
      }
      case kNOTE: {
        POLAR_COV_SITE();
        void* un = space.alloc(t.png_unknown, len.label());
        space.store_t(un, t.png_unknown, 0, chunk_tag.cast<std::uint64_t>());
        space.store_t(un, t.png_unknown, 1, len.cast<std::uint64_t>());
        in.bytes(body);
        space.free_object(un, t.png_unknown, len.label());
        break;
      }
      case kIDAT: {
        POLAR_COV_SITE();
        std::size_t consumed = 0;
        while (consumed + 2 <= body) {
          const auto count = in.u8();
          const auto value = in.u8();
          consumed += 2;
          crc = crc + count.cast<std::uint64_t>() * value.cast<std::uint64_t>();
        }
        space.store_t(ps, t.png_struct, 1, crc);
        break;
      }
      case kIEND:
        guard = 1000;
        break;
      default:
        in.bytes(body);
        break;
    }
  }
  if (info != nullptr) space.free_object(info, t.png_info);
  space.free_object(ps, t.png_struct);
}

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_chunk(std::vector<std::uint8_t>& out, std::uint32_t tag,
               std::span<const std::uint8_t> payload) {
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, tag);
  out.insert(out.end(), payload.begin(), payload.end());
}

}  // namespace

std::vector<std::uint8_t> encode_test_image(std::uint32_t width,
                                            std::uint32_t height,
                                            std::uint64_t seed) {
  using namespace detail;
  Rng rng(seed);
  std::vector<std::uint8_t> out;
  put_u32(out, kMagic);

  std::vector<std::uint8_t> ihdr;
  put_u32(ihdr, width);
  put_u32(ihdr, height);
  ihdr.push_back(8);  // bit depth
  ihdr.push_back(3);  // palette color type
  put_chunk(out, kIHDR, ihdr);

  std::vector<std::uint8_t> plte;
  for (int i = 0; i < 12 * 3; ++i) {
    plte.push_back(static_cast<std::uint8_t>(rng.next()));
  }
  put_chunk(out, kPLTE, plte);

  const std::vector<std::uint8_t> tm{0xe6, 0x07, 7, 4, 12, 30, 0};
  put_chunk(out, kTIME, tm);

  std::vector<std::uint8_t> text{'a', 'u', 't', 'h', 'o', 'r', 0};
  for (int i = 0; i < 8; ++i) {
    text.push_back(static_cast<std::uint8_t>('a' + rng.below(26)));
  }
  put_chunk(out, kTEXT, text);

  std::vector<std::uint8_t> bkgd(8, 0);
  bkgd[0] = 0x12;
  put_chunk(out, kBKGD, bkgd);

  std::vector<std::uint8_t> chrm;
  put_u32(chrm, 31270);
  put_u32(chrm, 32900);
  put_chunk(out, kCHRM, chrm);

  std::vector<std::uint8_t> note(5, 0xab);
  put_chunk(out, kNOTE, note);

  std::vector<std::uint8_t> idat;
  const std::uint32_t rowbytes = std::min(width, kRowBufSize);
  for (std::uint32_t row = 0; row < height; ++row) {
    std::uint32_t filled = 0;
    while (filled < rowbytes) {
      const auto run = static_cast<std::uint8_t>(
          std::min<std::uint64_t>(1 + rng.below(8), rowbytes - filled));
      idat.push_back(run);
      idat.push_back(static_cast<std::uint8_t>(rng.next()));
      filled += run;
    }
  }
  put_chunk(out, kIDAT, idat);
  put_chunk(out, kIEND, {});
  return out;
}

const std::vector<CveCase>& cve_cases() {
  static const std::vector<CveCase> kCases{
      {"CVE-2016-10087", "null pointer dereference",
       Bug::kNullDeref2016_10087,
       {"png.png_info_def", "png.png_struct_def"}},
      {"CVE-2015-8126", "heap overflow (palette)",
       Bug::kPaletteOverflow2015_8126,
       {"png.png_info_def", "png.png_struct_def", "png.png_color"}},
      {"CVE-2015-7981", "out of bounds read (tIME)",
       Bug::kTimeOobRead2015_7981,
       {"png.png_struct_def", "png.png_time_struct"}},
      {"CVE-2015-0973", "heap overflow (row buffer)",
       Bug::kRowOverflow2015_0973,
       {"png.png_struct_def", "png.png_info_def"}},
      {"CVE-2013-7353", "integer overflow (unknown chunk)",
       Bug::kIntOverflow2013_7353,
       {"png.png_struct_def", "png.png_info_def", "png.png_unknown_chunk"}},
      {"CVE-2011-3048", "heap overflow (tEXt)",
       Bug::kTextOverflow2011_3048,
       {"png.png_struct_def", "png.png_info_def", "png.png_text"}},
  };
  return kCases;
}

std::vector<std::vector<std::uint8_t>> dictionary() {
  return {spec::tok("mPNG"), spec::tok("IHDR"), spec::tok("PLTE"),
          spec::tok("tIME"), spec::tok("tEXt"), spec::tok("bKGD"),
          spec::tok("cHRM"), spec::tok("nOTE"), spec::tok("IDAT"),
          spec::tok("IEND")};
}

}  // namespace polar::minipng
