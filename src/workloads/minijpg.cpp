#include "workloads/minijpg.h"

#include "support/rng.h"
#include "workloads/spec_common.h"

namespace polar::minijpg {

JpgTypes register_types(TypeRegistry& reg) {
  JpgTypes t;
  t.tjinstance = TypeBuilder(reg, "jpg.tjinstance")
                     .ptr("handle")
                     .field<std::uint64_t>("samples")
                     .field<std::uint32_t>("subsamp")
                     .build();
  t.bitread_state = TypeBuilder(reg, "jpg.bitread_working_state")
                        .ptr("next_input_byte")
                        .field<std::uint64_t>("bits_consumed")
                        .field<std::uint32_t>("bits_left")
                        .build();
  t.savable_state = TypeBuilder(reg, "jpg.savable_state")
                        .field<std::uint64_t>("last_dc_val")
                        .field<std::uint32_t>("EOBRUN")
                        .build();
  t.component_info = TypeBuilder(reg, "jpg.jpeg_component_info")
                         .field<std::uint32_t>("component_id")
                         .field<std::uint32_t>("h_samp_factor")
                         .field<std::uint32_t>("v_samp_factor")
                         .field<std::uint32_t>("quant_tbl_no")
                         .build();
  t.decompress = TypeBuilder(reg, "jpg.j_decompress")
                     .field<std::uint32_t>("image_width")
                     .field<std::uint32_t>("image_height")
                     .field<std::uint32_t>("num_components")
                     .field<std::uint32_t>("data_precision")
                     .fn_ptr("fill_input_buffer")
                     .build();
  t.huff_tbl = TypeBuilder(reg, "jpg.huff_tbl")
                   .field<std::uint32_t>("tbl_class")
                   .field<std::uint64_t>("counts_sum")
                   .build();
  t.quant_tbl = TypeBuilder(reg, "jpg.quant_tbl")
                    .field<std::uint32_t>("tbl_id")
                    .field<std::uint64_t>("digest")
                    .build();
  t.marker_reader = TypeBuilder(reg, "jpg.marker_reader")
                        .ptr("read_markers")
                        .field<std::uint32_t>("length")
                        .build();
  return t;
}

void taint_decode(TaintClassSpace& space, const JpgTypes& t,
                  std::span<const std::uint8_t> data) {
  TaintScope scope(space.domain());
  spec::TaintReader in(space, data);
  POLAR_COV_SITE();
  if (in.u8().value() != 0xff || in.u8().value() != 0xd8) return;
  POLAR_COV_SITE();

  void* tj = space.alloc(t.tjinstance);
  void* dec = space.alloc(t.decompress);
  int guard = 0;
  while (!in.empty() && ++guard < 64) {
    if (in.u8().value() != 0xff) break;
    const auto marker = in.u8();
    if (marker.value() == 0xd9) break;
    const auto len_hi = in.u8();
    const auto len_lo = in.u8();
    const auto len = (len_hi.cast<std::uint16_t>() << Tainted<std::uint16_t>(8)) |
                     len_lo.cast<std::uint16_t>();
    const std::size_t body =
        len.value() >= 2 ? std::min<std::size_t>(len.value() - 2, in.remaining())
                         : 0;
    switch (marker.value()) {
      case 0xc0: {
        POLAR_COV_SITE();
        in.u8();  // precision
        const auto h = in.u16();
        const auto w = in.u16();
        const auto ncomp = in.u8();
        space.store_t(dec, t.decompress, 0, w.cast<std::uint32_t>());
        space.store_t(dec, t.decompress, 1, h.cast<std::uint32_t>());
        space.store_t(dec, t.decompress, 2, ncomp.cast<std::uint32_t>());
        for (std::uint8_t c = 0; c < std::min<std::uint8_t>(ncomp.value(), 4);
             ++c) {
          POLAR_COV_SITE();
          void* ci = space.alloc(t.component_info, ncomp.label());
          space.store_t(ci, t.component_info, 0, in.u8().cast<std::uint32_t>());
          space.free_object(ci, t.component_info);
        }
        if (body > 6) in.bytes(body - 6);
        break;
      }
      case 0xc4: {
        POLAR_COV_SITE();
        void* h = space.alloc(t.huff_tbl);
        space.store_t(h, t.huff_tbl, 0, in.u8().cast<std::uint32_t>());
        Tainted<std::uint64_t> sum(0);
        for (int i = 0; i < 8 && !in.empty(); ++i) {
          sum = sum + in.u8().cast<std::uint64_t>();
        }
        space.store_t(h, t.huff_tbl, 1, sum);
        space.free_object(h, t.huff_tbl);
        break;
      }
      case 0xdb: {
        POLAR_COV_SITE();
        void* q = space.alloc(t.quant_tbl);
        space.store_t(q, t.quant_tbl, 0, in.u8().cast<std::uint32_t>());
        space.free_object(q, t.quant_tbl);
        if (body > 1) in.bytes(body - 1);
        break;
      }
      case 0xfe: {
        POLAR_COV_SITE();
        void* mk = space.alloc(t.marker_reader, len.label());
        space.store_t(mk, t.marker_reader, 1, len.cast<std::uint32_t>());
        space.free_object(mk, t.marker_reader);
        in.bytes(body);
        break;
      }
      case 0xda: {
        POLAR_COV_SITE();
        void* br = space.alloc(t.bitread_state);
        void* sv = space.alloc(t.savable_state);
        Tainted<std::uint64_t> predictor(0);
        int scan_guard = 0;
        while (!in.empty() && ++scan_guard < 64) {
          predictor = predictor + in.u8().cast<std::uint64_t>();
          space.store_t(sv, t.savable_state, 0, predictor);
        }
        space.store_t(br, t.bitread_state, 1, predictor);
        space.store_t(tj, t.tjinstance, 1, predictor);
        space.free_object(sv, t.savable_state);
        space.free_object(br, t.bitread_state);
        break;
      }
      default:
        in.bytes(body);
        break;
    }
  }
  space.free_object(dec, t.decompress);
  space.free_object(tj, t.tjinstance);
}

namespace {

void put_marker(std::vector<std::uint8_t>& out, std::uint8_t marker,
                std::span<const std::uint8_t> body) {
  out.push_back(0xff);
  out.push_back(marker);
  const auto len = static_cast<std::uint16_t>(body.size() + 2);
  out.push_back(static_cast<std::uint8_t>(len >> 8));
  out.push_back(static_cast<std::uint8_t>(len & 0xff));
  out.insert(out.end(), body.begin(), body.end());
}

}  // namespace

std::vector<std::uint8_t> encode_test_image(std::uint32_t width,
                                            std::uint32_t height,
                                            std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> out{0xff, 0xd8};

  std::vector<std::uint8_t> sof;
  sof.push_back(8);  // precision
  sof.push_back(static_cast<std::uint8_t>(height >> 8));
  sof.push_back(static_cast<std::uint8_t>(height & 0xff));
  sof.push_back(static_cast<std::uint8_t>(width >> 8));
  sof.push_back(static_cast<std::uint8_t>(width & 0xff));
  sof.push_back(3);  // components
  for (std::uint8_t c = 1; c <= 3; ++c) {
    sof.push_back(c);
    sof.push_back(0x11);
    sof.push_back(0);
  }
  put_marker(out, 0xc0, sof);

  std::vector<std::uint8_t> dht{0x00};
  for (int i = 0; i < 16; ++i) {
    dht.push_back(static_cast<std::uint8_t>(rng.below(4)));
  }
  put_marker(out, 0xc4, dht);

  std::vector<std::uint8_t> dqt{0x00};
  for (int i = 0; i < 16; ++i) {
    dqt.push_back(static_cast<std::uint8_t>(1 + rng.below(64)));
  }
  put_marker(out, 0xdb, dqt);

  put_marker(out, 0xfe, spec::tok("minijpg test"));

  put_marker(out, 0xda, {});
  for (std::uint32_t i = 0; i < width * height / 16 + 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(rng.range(-20, 20)));
    if (out.back() == 0xff) out.back() = 0xfe;  // avoid marker aliasing
  }
  out.push_back(0xff);
  out.push_back(0xd9);
  return out;
}

std::vector<std::vector<std::uint8_t>> dictionary() {
  return {{0xff, 0xd8}, {0xff, 0xc0}, {0xff, 0xc4}, {0xff, 0xdb},
          {0xff, 0xda}, {0xff, 0xfe}, {0xff, 0xd9}};
}

}  // namespace polar::minijpg
