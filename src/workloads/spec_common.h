// Shared helpers for the spec minis.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/space.h"
#include "fuzz/coverage.h"
#include "support/hash.h"
#include "support/rng.h"
#include "taint/tainted.h"
#include "taintclass/taint_space.h"

namespace polar::spec {

/// Little-endian tainted reads from a fuzzed input buffer; short reads
/// clamp to zero bytes (parsers must tolerate truncated input).
class TaintReader {
 public:
  TaintReader(TaintClassSpace& space, std::span<const std::uint8_t> input)
      : space_(&space), input_(input) {}

  [[nodiscard]] bool empty() const noexcept { return at_ >= input_.size(); }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return at_ < input_.size() ? input_.size() - at_ : 0;
  }

  Tainted<std::uint8_t> u8() { return read<std::uint8_t>(); }
  Tainted<std::uint16_t> u16() { return read<std::uint16_t>(); }
  Tainted<std::uint32_t> u32() { return read<std::uint32_t>(); }
  Tainted<std::uint64_t> u64() { return read<std::uint64_t>(); }

  /// Raw byte window (label of the first byte reported to callers that
  /// need a representative label for a blob).
  std::span<const std::uint8_t> bytes(std::size_t n) {
    const std::size_t take = std::min(n, remaining());
    auto out = input_.subspan(at_, take);
    at_ += take;
    return out;
  }

 private:
  template <class T>
  Tainted<T> read() {
    T v{};
    Label label = kNoLabel;
    auto& domain = space_->domain();
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      if (at_ + i < input_.size()) {
        v |= static_cast<T>(static_cast<T>(input_[at_ + i]) << (8 * i));
        label = domain.labels().unite(label,
                                      domain.shadow().get(&input_[at_ + i]));
      }
    }
    at_ += sizeof(T);
    return Tainted<T>(v, label);
  }

  TaintClassSpace* space_;
  std::span<const std::uint8_t> input_;
  std::size_t at_ = 0;
};

/// ASCII token helper for dictionaries.
inline std::vector<std::uint8_t> tok(const char* s) {
  std::vector<std::uint8_t> out;
  for (const char* p = s; *p != '\0'; ++p) {
    out.push_back(static_cast<std::uint8_t>(*p));
  }
  return out;
}

}  // namespace polar::spec
