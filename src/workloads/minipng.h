// minipng — a small real decoder for a PNG-like chunked image format,
// standing in for libpng in the paper's evaluation (§V-A compatibility,
// Table I tainted-object census, §V-C / Table IV CVE case studies).
//
// The format ("mPNG"): 4-byte magic, then chunks of
//   [u32 length][4-byte tag][payload...]
// Tags: IHDR (w,h,bitdepth,color), PLTE (rgb triplets), tIME (7 bytes),
// tEXt (key\0text), bKGD (color16), cHRM (xy pairs), nOTE (unknown/custom),
// IDAT (RLE rows), IEND.
//
// The decoder's working state lives in managed objects named after their
// libpng counterparts (png_struct_def, png_info_def, ...), so TaintClass
// reports read like the paper's Table IV. Six injectable bugs replicate
// the six libpng CVEs of Table IV — each a real defect in this decoder
// guarded by a BugSet bit, so the same binary can run clean (compat tests)
// or vulnerable (case studies).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/space.h"
#include "fuzz/coverage.h"
#include "taintclass/taint_space.h"

namespace polar::minipng {

struct PngTypes {
  TypeId png_struct;   // png_struct_def
  TypeId png_info;     // png_info_def
  TypeId png_color;    // palette entry
  TypeId png_color16;  // png_color16_struct (bKGD)
  TypeId png_text;     // tEXt chunk record
  TypeId png_time;     // png_time_struct
  TypeId png_unknown;  // png_unknown_chunk
  TypeId png_xy;       // cHRM white point
  TypeId png_xyz;      // derived XYZ
};

PngTypes register_types(TypeRegistry& registry);

/// Injectable CVE-analog defects (Table IV).
enum class Bug : std::uint32_t {
  kNullDeref2016_10087 = 1u << 0,   ///< missing info-struct guard
  kPaletteOverflow2015_8126 = 1u << 1,  ///< PLTE length unchecked
  kTimeOobRead2015_7981 = 1u << 2,  ///< tIME reads past payload
  kRowOverflow2015_0973 = 1u << 3,  ///< rowbytes unchecked vs row_buf
  kIntOverflow2013_7353 = 1u << 4,  ///< unknown-chunk size u16 truncation
  kTextOverflow2011_3048 = 1u << 5, ///< tEXt keyword unchecked
};

using BugSet = std::uint32_t;
inline constexpr BugSet kNoBugs = 0;

[[nodiscard]] constexpr BugSet bug(Bug b) noexcept {
  return static_cast<BugSet>(b);
}

struct DecodeResult {
  bool ok = false;
  std::uint32_t width = 0;
  std::uint32_t height = 0;
  std::uint64_t pixel_hash = 0;
  /// Fields the buggy paths corrupted (nonzero only when bugs enabled):
  /// under Direct this is silent damage, under POLaR check_traps fires.
  std::uint32_t corrupt_writes = 0;
  std::string error;
};

/// Decodes `data`, allocating its state through `space`. Never reads or
/// writes outside the managed objects even with bugs enabled (in-object
/// overflows are bounded by object_bytes — modelling intra-object damage,
/// the kind §VII says redzone tools cannot see).
template <ObjectSpace S>
DecodeResult decode(S& space, const PngTypes& t, std::span<const std::uint8_t> data,
                    BugSet bugs = kNoBugs);

/// TaintClass entry: same parse under taint tracking (Table I / IV).
void taint_decode(TaintClassSpace& space, const PngTypes& t,
                  std::span<const std::uint8_t> data);

/// Produces a valid image file exercising every chunk type.
std::vector<std::uint8_t> encode_test_image(std::uint32_t width,
                                            std::uint32_t height,
                                            std::uint64_t seed);

/// Table IV ground truth: for each CVE, the objects an exploit abuses.
struct CveCase {
  const char* id;
  const char* description;
  Bug bug;
  std::vector<std::string> exploit_objects;
};
const std::vector<CveCase>& cve_cases();

/// Dictionary tokens for fuzzing the decoder.
std::vector<std::vector<std::uint8_t>> dictionary();

// ---------------------------------------------------------------------------
// implementation (template must be visible)
// ---------------------------------------------------------------------------

namespace detail {

class Cursor {
 public:
  explicit Cursor(std::span<const std::uint8_t> data) : data_(data) {}
  [[nodiscard]] std::size_t remaining() const {
    return at_ < data_.size() ? data_.size() - at_ : 0;
  }
  [[nodiscard]] bool eof() const { return remaining() == 0; }
  std::uint8_t u8() { return at_ < data_.size() ? data_[at_++] : 0; }
  std::uint16_t u16() {
    const std::uint16_t lo = u8();
    return static_cast<std::uint16_t>(lo | (u16_hi() << 8));
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
  }
  std::span<const std::uint8_t> take(std::size_t n) {
    const std::size_t got = std::min(n, remaining());
    auto out = data_.subspan(at_, got);
    at_ += got;
    return out;
  }

 private:
  std::uint16_t u16_hi() { return u8(); }
  std::span<const std::uint8_t> data_;
  std::size_t at_ = 0;
};

[[nodiscard]] constexpr std::uint32_t tag(char a, char b, char c, char d) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(a)) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(b)) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(c)) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(d)) << 24;
}

inline constexpr std::uint32_t kIHDR = tag('I', 'H', 'D', 'R');
inline constexpr std::uint32_t kPLTE = tag('P', 'L', 'T', 'E');
inline constexpr std::uint32_t kTIME = tag('t', 'I', 'M', 'E');
inline constexpr std::uint32_t kTEXT = tag('t', 'E', 'X', 't');
inline constexpr std::uint32_t kBKGD = tag('b', 'K', 'G', 'D');
inline constexpr std::uint32_t kCHRM = tag('c', 'H', 'R', 'M');
inline constexpr std::uint32_t kNOTE = tag('n', 'O', 'T', 'E');
inline constexpr std::uint32_t kIDAT = tag('I', 'D', 'A', 'T');
inline constexpr std::uint32_t kIEND = tag('I', 'E', 'N', 'D');
inline constexpr std::uint32_t kMagic = tag('m', 'P', 'N', 'G');

// Field indices (must match register_types order).
// png_struct_def: 0 state, 1 crc, 2 rowbytes, 3 row_buf(64B), 4 palette_len,
//                 5 palette(48B = 16 rgb triplets)
// png_info_def:   0 width, 1 height, 2 bit_depth, 3 color_type, 4 num_text,
//                 5 num_palette
inline constexpr std::uint32_t kMaxPalette = 16;
inline constexpr std::uint32_t kRowBufSize = 64;

}  // namespace detail

template <ObjectSpace S>
DecodeResult decode(S& space, const PngTypes& t,
                    std::span<const std::uint8_t> data, BugSet bugs) {
  using namespace detail;
  DecodeResult result;
  Cursor in(data);
  POLAR_COV_SITE();
  if (in.u32() != kMagic) {
    result.error = "bad magic";
    return result;
  }

  void* ps = space.alloc(t.png_struct);
  void* info = nullptr;  // allocated on IHDR
  const auto fail = [&](const char* why) {
    result.error = why;
    if (info != nullptr) space.free_object(info, t.png_info);
    space.free_object(ps, t.png_struct);
    return result;
  };

  // Damage accounting for the buggy paths: overflowing writes stay inside
  // the allocation backing the object but past the intended field.
  const auto overflowing_fill = [&](void* base, TypeId type,
                                    std::uint32_t field,
                                    std::span<const std::uint8_t> bytes,
                                    std::size_t field_size) {
    auto* dst = static_cast<unsigned char*>(space.field_ptr(base, type, field));
    const auto base_off = static_cast<std::size_t>(
        dst - static_cast<unsigned char*>(base));
    const std::size_t cap = space.object_bytes(base, type);
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      if (base_off + i >= cap) break;
      dst[i] = bytes[i];
      if (i >= field_size) ++result.corrupt_writes;
    }
  };

  bool saw_end = false;
  while (!in.eof() && !saw_end) {
    const std::uint32_t len = in.u32();
    const std::uint32_t chunk_tag = in.u32();
    auto payload = in.take(len);
    Cursor body(payload);

    switch (chunk_tag) {
      case kIHDR: {
        POLAR_COV_SITE();
        if (payload.size() < 10) return fail("short IHDR");
        if (info != nullptr) return fail("duplicate IHDR");
        info = space.alloc(t.png_info);
        const std::uint32_t w = body.u32();
        const std::uint32_t h = body.u32();
        const std::uint8_t depth = body.u8();
        const std::uint8_t color = body.u8();
        if (w == 0 || h == 0 || w > 4096 || h > 4096) {
          return fail("bad dimensions");
        }
        if (depth == 0 || depth > 32) return fail("bad bit depth");
        // IHDR burst: one layout snapshot serves all four header stores.
        auto infoc = make_cursor(space, info, t.png_info);
        infoc.template store<std::uint32_t>(0, w);
        infoc.template store<std::uint32_t>(1, h);
        infoc.template store<std::uint8_t>(2, depth);
        infoc.template store<std::uint8_t>(3, color);
        // rowbytes: CVE-2015-0973 analog omits the clamp to the row
        // buffer, so wide images overflow row_buf inside png_struct.
        std::uint32_t rowbytes = w * ((depth + 7) / 8);
        if ((bugs & bug(Bug::kRowOverflow2015_0973)) == 0) {
          if (rowbytes > kRowBufSize) rowbytes = kRowBufSize;
        }
        space.store(ps, t.png_struct, 2, rowbytes);
        break;
      }
      case kPLTE: {
        POLAR_COV_SITE();
        if (info == nullptr &&
            (bugs & bug(Bug::kNullDeref2016_10087)) == 0) {
          return fail("PLTE before IHDR");
        }
        // CVE-2016-10087 analog: with the guard missing, the decoder uses
        // the info object before it exists. We model the null-deref as a
        // detected failure rather than a real crash.
        if (info == nullptr) return fail("null info deref (CVE-2016-10087)");
        const std::uint32_t entries = len / 3;
        // CVE-2015-8126 analog: palette length unchecked against the
        // fixed 16-entry palette field.
        if ((bugs & bug(Bug::kPaletteOverflow2015_8126)) == 0 &&
            entries > kMaxPalette) {
          return fail("palette too large");
        }
        // The clean path copies at most the palette field; only the buggy
        // build trusts the chunk length.
        const std::size_t copy_len =
            (bugs & bug(Bug::kPaletteOverflow2015_8126)) != 0
                ? payload.size()
                : std::min<std::size_t>(payload.size(), kMaxPalette * 3);
        overflowing_fill(ps, t.png_struct, 5, payload.subspan(0, copy_len),
                         kMaxPalette * 3);
        space.store(ps, t.png_struct, 4, std::min(entries, 255u));
        space.store(info, t.png_info, 5, entries);
        // Materialize one png_color per (bounded) entry, as libpng does.
        Cursor pal(payload);
        for (std::uint32_t e = 0; e < std::min(entries, kMaxPalette); ++e) {
          void* c = space.alloc(t.png_color);
          auto cc = make_cursor(space, c, t.png_color);
          cc.template store<std::uint8_t>(0, pal.u8());
          cc.template store<std::uint8_t>(1, pal.u8());
          cc.template store<std::uint8_t>(2, pal.u8());
          result.pixel_hash = hash_combine(
              result.pixel_hash, cc.template load<std::uint8_t>(0));
          space.free_object(c, t.png_color);
        }
        break;
      }
      case kTIME: {
        POLAR_COV_SITE();
        // CVE-2015-7981 analog: reads 9 bytes from a 7-byte payload; the
        // cursor zero-fills, modelling the out-of-bounds read's leak of
        // adjacent memory as deterministic zeros.
        const std::size_t want =
            (bugs & bug(Bug::kTimeOobRead2015_7981)) != 0 ? 9u : 7u;
        if (payload.size() < 7) return fail("short tIME");
        void* tm = space.alloc(t.png_time);
        // Six consecutive stores into one object: the canonical batched-
        // access shape — a single snapshot covers the whole tIME fill.
        auto tmc = make_cursor(space, tm, t.png_time);
        tmc.template store<std::uint16_t>(0, body.u16());  // year
        tmc.template store<std::uint8_t>(1, body.u8());    // month
        tmc.template store<std::uint8_t>(2, body.u8());    // day
        tmc.template store<std::uint8_t>(3, body.u8());    // hour
        tmc.template store<std::uint8_t>(4, body.u8());    // minute
        tmc.template store<std::uint8_t>(5, body.u8());    // second
        for (std::size_t extra = 7; extra < want; ++extra) {
          result.pixel_hash = hash_combine(result.pixel_hash, body.u8());
        }
        result.pixel_hash = hash_combine(
            result.pixel_hash, tmc.template load<std::uint16_t>(0));
        space.free_object(tm, t.png_time);
        break;
      }
      case kTEXT: {
        POLAR_COV_SITE();
        // keyword\0text; keyword copied into a fixed 16-byte field.
        std::size_t keylen = 0;
        while (keylen < payload.size() && payload[keylen] != 0) ++keylen;
        // CVE-2011-3048 analog: keyword length unchecked.
        if ((bugs & bug(Bug::kTextOverflow2011_3048)) == 0 && keylen > 16) {
          return fail("keyword too long");
        }
        void* txt = space.alloc(t.png_text);
        overflowing_fill(txt, t.png_text, 0, payload.subspan(0, keylen), 16);
        space.store(txt, t.png_text, 1,
                    static_cast<std::uint32_t>(payload.size() - keylen));
        if (info != nullptr) {
          space.store(info, t.png_info, 4,
                      space.template load<std::uint32_t>(info, t.png_info, 4) + 1);
        }
        result.pixel_hash = hash_combine(
            result.pixel_hash,
            space.template load<std::uint32_t>(txt, t.png_text, 1));
        space.free_object(txt, t.png_text);
        break;
      }
      case kBKGD: {
        POLAR_COV_SITE();
        if (payload.size() < 8) return fail("short bKGD");
        void* bg = space.alloc(t.png_color16);
        space.store(bg, t.png_color16, 0, body.u16());
        space.store(bg, t.png_color16, 1, body.u16());
        space.store(bg, t.png_color16, 2, body.u16());
        space.store(bg, t.png_color16, 3, body.u16());
        result.pixel_hash = hash_combine(
            result.pixel_hash,
            space.template load<std::uint16_t>(bg, t.png_color16, 0));
        space.free_object(bg, t.png_color16);
        break;
      }
      case kCHRM: {
        POLAR_COV_SITE();
        if (payload.size() < 8) return fail("short cHRM");
        void* xy = space.alloc(t.png_xy);
        space.store(xy, t.png_xy, 0, body.u32());
        space.store(xy, t.png_xy, 1, body.u32());
        void* xyz = space.alloc(t.png_xyz);
        const auto x = space.template load<std::uint32_t>(xy, t.png_xy, 0);
        const auto y = space.template load<std::uint32_t>(xy, t.png_xy, 1);
        space.store(xyz, t.png_xyz, 0, static_cast<std::uint64_t>(x) * 2);
        space.store(xyz, t.png_xyz, 1, static_cast<std::uint64_t>(y) * 3);
        result.pixel_hash = hash_combine(
            result.pixel_hash,
            space.template load<std::uint64_t>(xyz, t.png_xyz, 0));
        space.free_object(xyz, t.png_xyz);
        space.free_object(xy, t.png_xy);
        break;
      }
      case kNOTE: {
        POLAR_COV_SITE();
        // Custom/unknown chunk. CVE-2013-7353 analog: the stored size is
        // truncated to u16, so a 65536+e byte chunk records size e — later
        // consumers under-allocate.
        void* un = space.alloc(t.png_unknown);
        const std::uint64_t recorded =
            (bugs & bug(Bug::kIntOverflow2013_7353)) != 0
                ? static_cast<std::uint16_t>(len)
                : len;
        space.store(un, t.png_unknown, 0, static_cast<std::uint64_t>(chunk_tag));
        space.store(un, t.png_unknown, 1, recorded);
        result.pixel_hash = hash_combine(
            result.pixel_hash,
            space.template load<std::uint64_t>(un, t.png_unknown, 1));
        space.free_object(un, t.png_unknown);
        break;
      }
      case kIDAT: {
        POLAR_COV_SITE();
        if (info == nullptr) return fail("IDAT before IHDR");
        const auto rowbytes =
            space.template load<std::uint32_t>(ps, t.png_struct, 2);
        if (rowbytes == 0) return fail("zero rowbytes");
        // RLE rows: [count byte, value byte]* per row.
        std::vector<std::uint8_t> row;
        while (!body.eof()) {
          row.clear();
          while (!body.eof() && row.size() < rowbytes) {
            const std::uint8_t count = body.u8();
            const std::uint8_t value = body.u8();
            for (std::uint8_t r = 0; r < count && row.size() < 4096; ++r) {
              row.push_back(value);
            }
          }
          // Copy the decoded row into the fixed row buffer; with the
          // CVE-2015-0973 analog active rowbytes may exceed the field.
          overflowing_fill(ps, t.png_struct, 3,
                           std::span<const std::uint8_t>(row.data(),
                                                         std::min<std::size_t>(
                                                             row.size(), rowbytes)),
                           kRowBufSize);
          auto* buf = static_cast<unsigned char*>(
              space.field_ptr(ps, t.png_struct, 3));
          std::uint64_t crc =
              space.template load<std::uint64_t>(ps, t.png_struct, 1);
          const std::size_t n =
              std::min<std::size_t>(rowbytes, kRowBufSize);
          for (std::size_t i = 0; i < n; ++i) {
            crc = crc * 1099511628211ULL + buf[i];
          }
          space.store(ps, t.png_struct, 1, crc);
        }
        result.pixel_hash = hash_combine(
            result.pixel_hash,
            space.template load<std::uint64_t>(ps, t.png_struct, 1));
        break;
      }
      case kIEND:
        POLAR_COV_SITE();
        saw_end = true;
        break;
      default:
        return fail("unknown critical chunk");
    }
  }

  if (info == nullptr) return fail("no IHDR");
  if (!saw_end) return fail("truncated file");
  POLAR_COV_SITE();
  result.ok = true;
  result.width = space.template load<std::uint32_t>(info, t.png_info, 0);
  result.height = space.template load<std::uint32_t>(info, t.png_info, 1);
  space.free_object(info, t.png_info);
  space.free_object(ps, t.png_struct);
  return result;
}

}  // namespace polar::minipng
