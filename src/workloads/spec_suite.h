// SPEC2006-substitute workload suite (paper §V, Fig. 6, Tables I & III).
//
// SPEC CPU2006 is proprietary, so each benchmark the paper uses is
// replaced by a miniature application with the same *object-traffic
// profile* — the quantity that actually determines POLaR's overhead
// (§V-B: "the performance impact will be high against applications that
// excessively access object members, and ... low for applications that
// focus on other operations"). Each mini reproduces its original's
// character as reported in the paper's Table III:
//
//   400.perlbench  interpreter; massive SV allocation churn
//   401.bzip2      block compressor; tiny object count, array work
//   403.gcc        tree IR; allocation/free dominated
//   429.mcf        network simplex; ONE object, member access in hot loop
//   445.gobmk      go engine; board scans with many member accesses
//   456.hmmer      profile HMM Viterbi; one matrix object, heavy access
//   458.sjeng      chess search; alloc/free + state memcpy per node (the
//                  paper's worst case)
//   462.libquantum quantum simulator; pure float arrays, NO objects
//   464.h264ref    video encoder; few objects, huge memcpy traffic
//   471.omnetpp    discrete-event simulator; event objects through a queue
//   473.astar      grid pathfinding; node objects, access heavy
//   483.xalancbmk  XML transform; very many small node objects
//
// Every mini is written once against the ObjectSpace concept and compiled
// twice — DirectSpace (the "default build") and PolarSpace (the
// "POLaR build") — exactly mirroring the paper's two binaries. A third
// entry point, taint_parse, processes untrusted input bytes under a
// TaintClassSpace so the TaintClass framework (Table I) can discover the
// input-dependent types.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/space.h"
#include "taintclass/taint_space.h"

namespace polar::spec {

struct SpecEntry {
  std::string name;
  /// Deterministic checksum so Direct/POLaR equivalence is testable.
  std::function<std::uint64_t(DirectSpace&, std::uint32_t scale,
                              std::uint64_t seed)>
      run_direct;
  std::function<std::uint64_t(PolarSpace&, std::uint32_t scale,
                              std::uint64_t seed)>
      run_polar;
  /// TaintClass entry: parse untrusted input, touching this workload's
  /// input-facing objects. Registered under a CoverageScope by callers
  /// that fuzz it.
  std::function<void(TaintClassSpace&, std::span<const std::uint8_t>)>
      taint_parse;
  /// A valid sample input for the fuzzer's seed corpus.
  std::function<std::vector<std::uint8_t>(std::uint64_t seed)> sample_input;
  /// Dictionary tokens (magics/keywords) for the mutator.
  std::vector<std::vector<std::uint8_t>> dictionary;
  /// The paper's Table I count for the original benchmark, for reference
  /// in the reproduction report.
  std::size_t paper_tainted_objects = 0;
};

/// Registers all workload types into `registry` and returns the suite.
/// Must be called exactly once per registry.
std::vector<SpecEntry> build_spec_suite(TypeRegistry& registry);

// Individual factories (one per translation unit).
SpecEntry make_perlbench(TypeRegistry& reg);
SpecEntry make_bzip2(TypeRegistry& reg);
SpecEntry make_gcc(TypeRegistry& reg);
SpecEntry make_mcf(TypeRegistry& reg);
SpecEntry make_gobmk(TypeRegistry& reg);
SpecEntry make_hmmer(TypeRegistry& reg);
SpecEntry make_sjeng(TypeRegistry& reg);
SpecEntry make_libquantum(TypeRegistry& reg);
SpecEntry make_h264ref(TypeRegistry& reg);
SpecEntry make_omnetpp(TypeRegistry& reg);
SpecEntry make_astar(TypeRegistry& reg);
SpecEntry make_xalancbmk(TypeRegistry& reg);

}  // namespace polar::spec
