// Spec minis, group 3: 464.h264ref, 471.omnetpp, 473.astar, 483.xalancbmk.
#include <memory>
#include <queue>

#include "workloads/spec_common.h"
#include "workloads/spec_suite.h"

namespace polar::spec {

// ===========================================================================
// 464.h264ref — motion-estimation flavoured encoder: few long-lived
// parameter objects but candidate macroblock state is *copied* for every
// tested mode (paper: 450 allocations, 298M object memcpys, 2G accesses).
// ===========================================================================

namespace {

struct H264Types {
  TypeId input_params, dpb, pps, image_params, macroblock;
};

H264Types register_h264(TypeRegistry& reg) {
  H264Types t;
  t.input_params = TypeBuilder(reg, "h264.InputParameters")
                       .field<std::uint32_t>("width")
                       .field<std::uint32_t>("height")
                       .field<std::uint32_t>("qp")
                       .field<std::uint32_t>("search_range")
                       .build();
  t.dpb = TypeBuilder(reg, "h264.decoded_picture_buffer")
              .ptr("frames")
              .field<std::uint32_t>("size")
              .field<std::uint32_t>("used")
              .build();
  t.pps = TypeBuilder(reg, "h264.pic_parameter_set_rbsp_t")
              .field<std::uint32_t>("pps_id")
              .field<std::uint32_t>("entropy_mode")
              .field<std::uint32_t>("slice_groups")
              .build();
  t.image_params = TypeBuilder(reg, "h264.ImageParameters")
                       .field<std::uint32_t>("frame_num")
                       .field<std::uint32_t>("type")
                       .field<std::uint64_t>("bits_used")
                       .build();
  t.macroblock = TypeBuilder(reg, "h264.macroblock")
                     .field<std::uint32_t>("mode")
                     .field<std::uint32_t>("mv_x")
                     .field<std::uint32_t>("mv_y")
                     .field<std::uint64_t>("cost")
                     .build();
  return t;
}

template <ObjectSpace S>
std::uint64_t h264_run(S& space, const H264Types& t, std::uint32_t scale,
                       std::uint64_t seed) {
  Rng rng(seed);
  constexpr int kW = 64, kH = 64;
  std::vector<std::uint8_t> cur(kW * kH), ref(kW * kH);
  for (auto& p : cur) p = static_cast<std::uint8_t>(rng.next());
  ref = cur;
  for (auto& p : ref) p = static_cast<std::uint8_t>(p + rng.below(4));

  void* params = space.alloc(t.input_params);
  space.store(params, t.input_params, 0, std::uint32_t{kW});
  space.store(params, t.input_params, 1, std::uint32_t{kH});
  space.store(params, t.input_params, 3, std::uint32_t{4});
  void* img = space.alloc(t.image_params);

  std::uint64_t checksum = 0;
  for (std::uint32_t frame = 0; frame < scale * 2; ++frame) {
    space.store(img, t.image_params, 0, frame);
    for (int by = 0; by + 8 <= kH; by += 8) {
      for (int bx = 0; bx + 8 <= kW; bx += 8) {
        void* best = space.alloc(t.macroblock);
        // `best` survives the whole motion search and copy_object keeps
        // its layout, so one cursor covers every candidate comparison.
        auto bestc = make_cursor(space, best, t.macroblock);
        bestc.template store<std::uint64_t>(3, ~0ULL);
        const auto range =
            static_cast<int>(space.template load<std::uint32_t>(
                params, t.input_params, 3));
        for (int dy = -range; dy <= range; ++dy) {
          for (int dx = -range; dx <= range; ++dx) {
            // Candidate state object per tested vector: clone + update —
            // the memcpy traffic of the original.
            void* cand = space.clone_object(best, t.macroblock);
            auto candc = make_cursor(space, cand, t.macroblock);
            candc.template store<std::uint32_t>(
                1, static_cast<std::uint32_t>(dx + range));
            candc.template store<std::uint32_t>(
                2, static_cast<std::uint32_t>(dy + range));
            std::uint64_t sad = 0;
            for (int y = 0; y < 8; ++y) {
              for (int x = 0; x < 8; ++x) {
                const int cx = bx + x, cy = by + y;
                int rx = cx + dx, ry = cy + dy;
                rx = std::clamp(rx, 0, kW - 1);
                ry = std::clamp(ry, 0, kH - 1);
                const int d = static_cast<int>(cur[cy * kW + cx]) -
                              static_cast<int>(ref[ry * kW + rx]);
                sad += static_cast<std::uint64_t>(d < 0 ? -d : d);
              }
            }
            candc.template store<std::uint64_t>(3, sad);
            if (sad < bestc.template load<std::uint64_t>(3)) {
              space.copy_object(best, cand, t.macroblock);
            }
            space.free_object(cand, t.macroblock);
          }
        }
        checksum =
            hash_combine(checksum, bestc.template load<std::uint64_t>(3));
        space.store(img, t.image_params, 2,
                    space.template load<std::uint64_t>(img, t.image_params, 2) +
                        space.template load<std::uint64_t>(best, t.macroblock,
                                                           3));
        space.free_object(best, t.macroblock);
      }
    }
  }
  checksum = hash_combine(
      checksum, space.template load<std::uint64_t>(img, t.image_params, 2));
  space.free_object(params, t.input_params);
  space.free_object(img, t.image_params);
  return checksum;
}

void h264_taint(TaintClassSpace& space, const H264Types& t,
                std::span<const std::uint8_t> input) {
  TaintScope scope(space.domain());
  TaintReader in(space, input);
  POLAR_COV_SITE();
  if (in.remaining() < 4) return;
  if (in.u8().value() != 0 || in.u8().value() != 0) return;  // NAL-ish start
  POLAR_COV_SITE();
  const auto nal = in.u8();
  if (nal.value() == 8) {  // PPS
    POLAR_COV_SITE();
    void* pps = space.alloc(t.pps, nal.label());
    space.store_t(pps, t.pps, 0, in.u32());
    space.store_t(pps, t.pps, 1, in.u8().cast<std::uint32_t>());
    space.free_object(pps, t.pps);
  } else if (nal.value() == 7) {  // SPS -> image/input parameters
    POLAR_COV_SITE();
    void* ip = space.alloc(t.input_params);
    space.store_t(ip, t.input_params, 0, in.u16().cast<std::uint32_t>());
    space.store_t(ip, t.input_params, 1, in.u16().cast<std::uint32_t>());
    const auto frames = in.u8();
    if (frames.value() > 0) {
      POLAR_COV_SITE();
      void* dpb = space.alloc(t.dpb, frames.label());
      space.store_t(dpb, t.dpb, 1, frames.cast<std::uint32_t>());
      space.free_object(dpb, t.dpb, frames.label());
    }
    space.free_object(ip, t.input_params);
  } else if (nal.value() == 1) {  // slice
    POLAR_COV_SITE();
    void* img = space.alloc(t.image_params);
    space.store_t(img, t.image_params, 0, in.u32());
    void* mb = space.alloc(t.macroblock);
    space.store_t(mb, t.macroblock, 1, in.u16().cast<std::uint32_t>());
    space.store_t(mb, t.macroblock, 2, in.u16().cast<std::uint32_t>());
    space.free_object(mb, t.macroblock);
    space.free_object(img, t.image_params);
  }
}

}  // namespace

SpecEntry make_h264ref(TypeRegistry& reg) {
  auto types = std::make_shared<const H264Types>(register_h264(reg));
  SpecEntry e;
  e.name = "464.h264ref";
  e.paper_tainted_objects = 17;
  e.run_direct = [types](DirectSpace& s, std::uint32_t scale,
                         std::uint64_t seed) {
    return h264_run(s, *types, scale, seed);
  };
  e.run_polar = [types](PolarSpace& s, std::uint32_t scale,
                        std::uint64_t seed) {
    return h264_run(s, *types, scale, seed);
  };
  e.taint_parse = [types](TaintClassSpace& s,
                          std::span<const std::uint8_t> in) {
    h264_taint(s, *types, in);
  };
  e.sample_input = [](std::uint64_t seed) {
    std::vector<std::uint8_t> v{0, 0, 7, 64, 0, 64, 0, 3};
    Rng rng(seed);
    for (int i = 0; i < 8; ++i) {
      v.push_back(static_cast<std::uint8_t>(rng.next()));
    }
    return v;
  };
  e.dictionary = {{0, 0, 7}, {0, 0, 8}, {0, 0, 1}};
  return e;
}

// ===========================================================================
// 471.omnetpp — discrete-event network simulation: message objects flow
// through a future-event set; every event allocates/frees and touches a
// handful of members.
// ===========================================================================

namespace {

struct OmnetTypes {
  TypeId simulation, chead, task, app, cpar, carray, expr_elem, mac_address,
      message;
};

OmnetTypes register_omnet(TypeRegistry& reg) {
  OmnetTypes t;
  t.simulation = TypeBuilder(reg, "omnet.cSimulation")
                     .field<std::uint64_t>("sim_time")
                     .field<std::uint64_t>("event_count")
                     .ptr("fes")
                     .build();
  t.chead = TypeBuilder(reg, "omnet.cHead")
                .ptr("first")
                .field<std::uint32_t>("count")
                .build();
  t.task = TypeBuilder(reg, "omnet.Task")
               .field<std::uint32_t>("id")
               .field<std::uint64_t>("deadline")
               .build();
  t.app = TypeBuilder(reg, "omnet.TOmnetApp")
              .ptr("args")
              .field<std::uint32_t>("verbosity")
              .build();
  t.cpar = TypeBuilder(reg, "omnet.cPar")
               .field<std::uint64_t>("value")
               .field<std::uint32_t>("type")
               .build();
  t.carray = TypeBuilder(reg, "omnet.cArray")
                 .ptr("vect")
                 .field<std::uint32_t>("size")
                 .field<std::uint32_t>("last")
                 .build();
  t.expr_elem = TypeBuilder(reg, "omnet.cPar::ExprElem")
                    .field<std::uint32_t>("type")
                    .field<std::uint64_t>("operand")
                    .build();
  t.mac_address = TypeBuilder(reg, "omnet.MACAddress")
                      .bytes("addr", 6, 1)
                      .field<std::uint16_t>("pad")
                      .build();
  t.message = TypeBuilder(reg, "omnet.cMessage")
                  .field<std::uint64_t>("arrival")
                  .field<std::uint32_t>("kind")
                  .field<std::uint32_t>("dest")
                  .build();
  return t;
}

template <ObjectSpace S>
std::uint64_t omnet_run(S& space, const OmnetTypes& t, std::uint32_t scale,
                        std::uint64_t seed) {
  Rng rng(seed);
  void* sim = space.alloc(t.simulation);

  // Future-event set ordered by arrival time (read through the space).
  const auto arrival = [&](void* m) {
    return space.template load<std::uint64_t>(m, t.message, 0);
  };
  const auto cmp = [&](void* a, void* b) { return arrival(a) > arrival(b); };
  std::vector<void*> fes;
  const auto push = [&](void* m) {
    fes.push_back(m);
    std::push_heap(fes.begin(), fes.end(), cmp);
  };
  const auto pop = [&]() {
    std::pop_heap(fes.begin(), fes.end(), cmp);
    void* m = fes.back();
    fes.pop_back();
    return m;
  };

  for (int i = 0; i < 8; ++i) {
    void* m = space.alloc(t.message);
    space.store(m, t.message, 0, rng.below(100));
    space.store(m, t.message, 2, static_cast<std::uint32_t>(rng.below(16)));
    push(m);
  }
  std::uint64_t checksum = 0;
  const std::uint64_t budget = static_cast<std::uint64_t>(scale) * 30000;
  std::uint64_t processed = 0;
  while (!fes.empty() && processed < budget) {
    void* m = pop();
    ++processed;
    const std::uint64_t now = arrival(m);
    space.store(sim, t.simulation, 0, now);
    space.store(sim, t.simulation, 1,
                space.template load<std::uint64_t>(sim, t.simulation, 1) + 1);
    checksum = hash_combine(
        checksum, now ^ space.template load<std::uint32_t>(m, t.message, 2));
    // Each handled event schedules 0-2 follow-ups (kept near steady state).
    const std::uint64_t fanout =
        fes.size() < 4 ? 2 : (fes.size() > 64 ? 0 : rng.below(3));
    for (std::uint64_t f = 0; f < fanout; ++f) {
      void* next = space.alloc(t.message);
      space.store(next, t.message, 0, now + 1 + rng.below(50));
      space.store(next, t.message, 2,
                  static_cast<std::uint32_t>(rng.below(16)));
      push(next);
    }
    space.free_object(m, t.message);
  }
  for (void* m : fes) space.free_object(m, t.message);
  checksum = hash_combine(
      checksum, space.template load<std::uint64_t>(sim, t.simulation, 1));
  space.free_object(sim, t.simulation);
  return checksum;
}

void omnet_taint(TaintClassSpace& space, const OmnetTypes& t,
                 std::span<const std::uint8_t> input) {
  TaintScope scope(space.domain());
  TaintReader in(space, input);
  POLAR_COV_SITE();
  // omnetpp.ini-flavoured config parser.
  int guard = 0;
  while (!in.empty() && ++guard < 128) {
    const auto key = in.u8();
    switch (key.value()) {
      case 'S': {
        POLAR_COV_SITE();
        void* sim = space.alloc(t.simulation);
        space.store_t(sim, t.simulation, 0, in.u64());
        space.free_object(sim, t.simulation);
        break;
      }
      case 'T': {
        POLAR_COV_SITE();
        void* task = space.alloc(t.task, key.label());
        space.store_t(task, t.task, 1, in.u64());
        space.free_object(task, t.task);
        break;
      }
      case 'A': {
        POLAR_COV_SITE();
        void* app = space.alloc(t.app);
        space.store_t(app, t.app, 1, in.u32());
        space.free_object(app, t.app);
        break;
      }
      case 'P': {
        POLAR_COV_SITE();
        void* par = space.alloc(t.cpar);
        space.store_t(par, t.cpar, 0, in.u64());
        space.free_object(par, t.cpar);
        break;
      }
      case 'V': {
        POLAR_COV_SITE();
        void* arr = space.alloc(t.carray);
        space.store_t(arr, t.carray, 1, in.u32());
        space.free_object(arr, t.carray);
        break;
      }
      case 'E': {
        POLAR_COV_SITE();
        void* ee = space.alloc(t.expr_elem);
        space.store_t(ee, t.expr_elem, 1, in.u64());
        space.free_object(ee, t.expr_elem);
        break;
      }
      case 'M': {
        POLAR_COV_SITE();
        void* mac = space.alloc(t.mac_address);
        const auto window = in.bytes(6);
        if (!window.empty()) {
          space.store_bytes(mac, t.mac_address, 0, 0, window.data(),
                            window.size());
        }
        space.free_object(mac, t.mac_address);
        break;
      }
      case 'H': {
        POLAR_COV_SITE();
        void* head = space.alloc(t.chead);
        space.store_t(head, t.chead, 1, in.u32());
        space.free_object(head, t.chead);
        break;
      }
      case 'Q': {
        POLAR_COV_SITE();
        void* msg = space.alloc(t.message, key.label());
        space.store_t(msg, t.message, 0, in.u64());
        space.free_object(msg, t.message, key.label());
        break;
      }
      default:
        break;
    }
  }
}

}  // namespace

SpecEntry make_omnetpp(TypeRegistry& reg) {
  auto types = std::make_shared<const OmnetTypes>(register_omnet(reg));
  SpecEntry e;
  e.name = "471.omnetpp";
  e.paper_tainted_objects = 10;
  e.run_direct = [types](DirectSpace& s, std::uint32_t scale,
                         std::uint64_t seed) {
    return omnet_run(s, *types, scale, seed);
  };
  e.run_polar = [types](PolarSpace& s, std::uint32_t scale,
                        std::uint64_t seed) {
    return omnet_run(s, *types, scale, seed);
  };
  e.taint_parse = [types](TaintClassSpace& s,
                          std::span<const std::uint8_t> in) {
    omnet_taint(s, *types, in);
  };
  e.sample_input = [](std::uint64_t seed) {
    std::vector<std::uint8_t> v{'S', 1, 0, 0, 0, 0, 0, 0, 0, 'Q'};
    Rng rng(seed);
    for (int i = 0; i < 10; ++i) {
      v.push_back(static_cast<std::uint8_t>(rng.next()));
    }
    return v;
  };
  e.dictionary = {tok("S"), tok("T"), tok("A"), tok("P"), tok("V"),
                  tok("E"), tok("M"), tok("H"), tok("Q")};
  return e;
}

// ===========================================================================
// 473.astar — grid pathfinding: node objects in an open list, f/g member
// comparisons in the hot loop.
// ===========================================================================

namespace {

struct AstarTypes {
  TypeId wayobj, way2obj, regmngobj, workinfot, createwaymnginfot, regboundobj,
      regobj, node;
};

AstarTypes register_astar(TypeRegistry& reg) {
  AstarTypes t;
  t.wayobj = TypeBuilder(reg, "astar.wayobj")
                 .ptr("map")
                 .field<std::uint32_t>("xsize")
                 .field<std::uint32_t>("ysize")
                 .build();
  t.way2obj = TypeBuilder(reg, "astar.way2obj")
                  .ptr("grid")
                  .field<std::uint32_t>("bound")
                  .build();
  t.regmngobj = TypeBuilder(reg, "astar.regmngobj")
                    .ptr("regions")
                    .field<std::uint32_t>("count")
                    .build();
  t.workinfot = TypeBuilder(reg, "astar.workinfot")
                    .field<std::uint32_t>("startx")
                    .field<std::uint32_t>("starty")
                    .field<std::uint32_t>("endx")
                    .field<std::uint32_t>("endy")
                    .build();
  t.createwaymnginfot = TypeBuilder(reg, "astar.createwaymnginfot")
                            .ptr("info")
                            .field<std::uint32_t>("flags")
                            .build();
  t.regboundobj = TypeBuilder(reg, "astar.regboundobj")
                      .field<std::uint32_t>("minx")
                      .field<std::uint32_t>("maxx")
                      .build();
  t.regobj = TypeBuilder(reg, "astar.regobj")
                 .field<std::uint32_t>("id")
                 .field<std::uint32_t>("size")
                 .build();
  t.node = TypeBuilder(reg, "astar.node")
               .field<std::uint32_t>("x")
               .field<std::uint32_t>("y")
               .field<std::uint64_t>("g")
               .field<std::uint64_t>("f")
               .build();
  return t;
}

template <ObjectSpace S>
std::uint64_t astar_run(S& space, const AstarTypes& t, std::uint32_t scale,
                        std::uint64_t seed) {
  Rng rng(seed);
  constexpr int kW = 96, kH = 96;
  std::uint64_t checksum = 0;
  for (std::uint32_t query = 0; query < scale * 3; ++query) {
    std::vector<std::uint8_t> blocked(kW * kH);
    for (auto& b : blocked) b = rng.chance(0.25);
    const int sx = 1, sy = 1, ex = kW - 2, ey = kH - 2;
    blocked[sy * kW + sx] = blocked[ey * kW + ex] = 0;

    void* way = space.alloc(t.wayobj);
    space.store(way, t.wayobj, 1, std::uint32_t{kW});
    space.store(way, t.wayobj, 2, std::uint32_t{kH});

    const auto heur = [&](int x, int y) {
      return static_cast<std::uint64_t>(std::abs(ex - x) + std::abs(ey - y));
    };
    const auto fval = [&](void* n) {
      return space.template load<std::uint64_t>(n, t.node, 3);
    };
    const auto cmp = [&](void* a, void* b) { return fval(a) > fval(b); };

    std::vector<void*> open;
    std::vector<std::uint64_t> best(kW * kH, ~0ULL);
    void* start = space.alloc(t.node);
    space.store(start, t.node, 0, static_cast<std::uint32_t>(sx));
    space.store(start, t.node, 1, static_cast<std::uint32_t>(sy));
    space.store(start, t.node, 3, heur(sx, sy));
    open.push_back(start);
    best[sy * kW + sx] = 0;

    std::uint64_t path_cost = 0;
    while (!open.empty()) {
      std::pop_heap(open.begin(), open.end(), cmp);
      void* cur = open.back();
      open.pop_back();
      // Three loads off the popped node before it dies: batch them under
      // one layout snapshot.
      auto curc = make_cursor(space, cur, t.node);
      const auto x = static_cast<int>(curc.template load<std::uint32_t>(0));
      const auto y = static_cast<int>(curc.template load<std::uint32_t>(1));
      const std::uint64_t g = curc.template load<std::uint64_t>(2);
      space.free_object(cur, t.node);
      if (x == ex && y == ey) {
        path_cost = g;
        break;
      }
      if (g > best[y * kW + x]) continue;
      constexpr int dx[4] = {1, -1, 0, 0};
      constexpr int dy[4] = {0, 0, 1, -1};
      for (int d = 0; d < 4; ++d) {
        const int nx = x + dx[d], ny = y + dy[d];
        if (nx < 0 || ny < 0 || nx >= kW || ny >= kH) continue;
        if (blocked[ny * kW + nx]) continue;
        const std::uint64_t ng = g + 1;
        if (ng >= best[ny * kW + nx]) continue;
        best[ny * kW + nx] = ng;
        void* n = space.alloc(t.node);
        auto nc = make_cursor(space, n, t.node);
        nc.template store<std::uint32_t>(0, static_cast<std::uint32_t>(nx));
        nc.template store<std::uint32_t>(1, static_cast<std::uint32_t>(ny));
        nc.template store<std::uint64_t>(2, ng);
        nc.template store<std::uint64_t>(3, ng + heur(nx, ny));
        open.push_back(n);
        std::push_heap(open.begin(), open.end(), cmp);
      }
    }
    for (void* n : open) space.free_object(n, t.node);
    space.free_object(way, t.wayobj);
    checksum = hash_combine(checksum, path_cost);
  }
  return checksum;
}

void astar_taint(TaintClassSpace& space, const AstarTypes& t,
                 std::span<const std::uint8_t> input) {
  TaintScope scope(space.domain());
  TaintReader in(space, input);
  POLAR_COV_SITE();
  // .map header parser.
  if (in.remaining() < 4) return;
  const auto magic = in.u16();
  if (magic.value() != 0x504d) return;  // "MP"
  POLAR_COV_SITE();
  void* way = space.alloc(t.wayobj);
  space.store_t(way, t.wayobj, 1, in.u16().cast<std::uint32_t>());
  space.store_t(way, t.wayobj, 2, in.u16().cast<std::uint32_t>());
  int guard = 0;
  while (!in.empty() && ++guard < 64) {
    const auto sect = in.u8();
    switch (sect.value()) {
      case 'W': {
        POLAR_COV_SITE();
        void* w2 = space.alloc(t.way2obj);
        space.store_t(w2, t.way2obj, 1, in.u32());
        space.free_object(w2, t.way2obj);
        break;
      }
      case 'G': {
        POLAR_COV_SITE();
        void* rm = space.alloc(t.regmngobj, sect.label());
        space.store_t(rm, t.regmngobj, 1, in.u32());
        space.free_object(rm, t.regmngobj);
        break;
      }
      case 'I': {
        POLAR_COV_SITE();
        void* wi = space.alloc(t.workinfot);
        space.store_t(wi, t.workinfot, 0, in.u32());
        space.store_t(wi, t.workinfot, 2, in.u32());
        space.free_object(wi, t.workinfot);
        break;
      }
      case 'C': {
        POLAR_COV_SITE();
        void* cw = space.alloc(t.createwaymnginfot);
        space.store_t(cw, t.createwaymnginfot, 1, in.u32());
        space.free_object(cw, t.createwaymnginfot);
        break;
      }
      case 'a': {  // region bounds
        POLAR_COV_SITE();
        void* rb = space.alloc(t.regboundobj);
        space.store_t(rb, t.regboundobj, 0, in.u32());
        space.free_object(rb, t.regboundobj);
        break;
      }
      case 'r': {
        POLAR_COV_SITE();
        void* ro = space.alloc(t.regobj, sect.label());
        space.store_t(ro, t.regobj, 1, in.u32());
        space.free_object(ro, t.regobj, sect.label());
        break;
      }
      default:
        break;
    }
  }
  space.free_object(way, t.wayobj);
}

}  // namespace

SpecEntry make_astar(TypeRegistry& reg) {
  auto types = std::make_shared<const AstarTypes>(register_astar(reg));
  SpecEntry e;
  e.name = "473.astar";
  e.paper_tainted_objects = 7;
  e.run_direct = [types](DirectSpace& s, std::uint32_t scale,
                         std::uint64_t seed) {
    return astar_run(s, *types, scale, seed);
  };
  e.run_polar = [types](PolarSpace& s, std::uint32_t scale,
                        std::uint64_t seed) {
    return astar_run(s, *types, scale, seed);
  };
  e.taint_parse = [types](TaintClassSpace& s,
                          std::span<const std::uint8_t> in) {
    astar_taint(s, *types, in);
  };
  e.sample_input = [](std::uint64_t seed) {
    std::vector<std::uint8_t> v{0x4d, 0x50, 96, 0, 96, 0, 'W'};
    Rng rng(seed);
    for (int i = 0; i < 10; ++i) {
      v.push_back(static_cast<std::uint8_t>(rng.next()));
    }
    return v;
  };
  e.dictionary = {tok("MP"), tok("W"), tok("G"), tok("I"),
                  tok("C"), tok("a"), tok("r")};
  return e;
}

// ===========================================================================
// 483.xalancbmk — XML parse + transform: a storm of small node objects
// (the paper's biggest tainted-object census: 59 types).
// ===========================================================================

namespace {

struct XalanTypes {
  TypeId dom_string, xobject, qname_value, qname_ref, node_list, element, text,
      attr, xpath_step, stylesheet, formatter, node;
};

XalanTypes register_xalan(TypeRegistry& reg) {
  XalanTypes t;
  t.dom_string = TypeBuilder(reg, "xalan.XalanDOMString")
                     .ptr("data")
                     .field<std::uint32_t>("length")
                     .build();
  t.xobject = TypeBuilder(reg, "xalan.XObjectPtr")
                  .ptr("object")
                  .field<std::uint32_t>("type")
                  .build();
  t.qname_value = TypeBuilder(reg, "xalan.XalanQNameByValue")
                      .field<std::uint64_t>("namespace_hash")
                      .field<std::uint64_t>("local_hash")
                      .build();
  t.qname_ref = TypeBuilder(reg, "xalan.XalanQNameByReference")
                    .ptr("namespace_ref")
                    .ptr("local_ref")
                    .build();
  t.node_list = TypeBuilder(reg, "xalan.MutableNodeRefList")
                    .ptr("items")
                    .field<std::uint32_t>("count")
                    .build();
  t.element = TypeBuilder(reg, "xalan.XalanElement")
                  .field<std::uint64_t>("tag_hash")
                  .ptr("first_attr")
                  .field<std::uint32_t>("children")
                  .build();
  t.text = TypeBuilder(reg, "xalan.XalanText")
               .field<std::uint64_t>("content_hash")
               .field<std::uint32_t>("length")
               .build();
  t.attr = TypeBuilder(reg, "xalan.AttrEntry")
               .field<std::uint64_t>("name_hash")
               .field<std::uint64_t>("value_hash")
               .build();
  t.xpath_step = TypeBuilder(reg, "xalan.XPathStep")
                     .field<std::uint32_t>("axis")
                     .field<std::uint64_t>("test_hash")
                     .build();
  t.stylesheet = TypeBuilder(reg, "xalan.ElemTemplate")
                     .field<std::uint64_t>("match_hash")
                     .field<std::uint32_t>("priority")
                     .build();
  t.formatter = TypeBuilder(reg, "xalan.FormatterListener")
                    .fn_ptr("characters_fn")
                    .field<std::uint64_t>("emitted")
                    .build();
  t.node = TypeBuilder(reg, "xalan.XalanNode")
               .field<std::uint32_t>("kind")
               .ptr("parent")
               .ptr("first_child")
               .ptr("next_sibling")
               .field<std::uint64_t>("value")
               .build();
  return t;
}

template <ObjectSpace S>
std::uint64_t xalan_run(S& space, const XalanTypes& t, std::uint32_t scale,
                        std::uint64_t seed) {
  Rng rng(seed);
  std::uint64_t checksum = 0;
  for (std::uint32_t doc = 0; doc < scale; ++doc) {
    // Build a random tree of elements/text, depth-first.
    std::vector<void*> all_nodes;
    std::vector<void*> path;
    void* root = space.alloc(t.node);
    space.store(root, t.node, 0, std::uint32_t{1});
    space.store(root, t.node, 4, rng.next());
    all_nodes.push_back(root);
    path.push_back(root);
    for (int step = 0; step < 4000; ++step) {
      const std::uint64_t action = rng.below(10);
      if (action < 6) {  // add child
        void* n = space.alloc(t.node);
        space.store(n, t.node, 0,
                    static_cast<std::uint32_t>(1 + rng.below(2)));
        space.store(n, t.node, 4, rng.next() & 0xffff);
        void* parent = path.back();
        space.store(n, t.node, 1, reinterpret_cast<std::uint64_t>(parent));
        space.store(n, t.node, 3, space.template load<std::uint64_t>(
                                      parent, t.node, 2));
        space.store(parent, t.node, 2, reinterpret_cast<std::uint64_t>(n));
        all_nodes.push_back(n);
        if (rng.chance(0.5) && path.size() < 24) path.push_back(n);
      } else if (path.size() > 1) {  // close element
        path.pop_back();
      }
    }
    // "Transform": walk the tree, summing values into a formatter object
    // and emitting a DOM string per element batch.
    void* fmt = space.alloc(t.formatter);
    std::vector<void*> stack{root};
    std::uint32_t batch = 0;
    while (!stack.empty()) {
      void* n = stack.back();
      stack.pop_back();
      space.store(fmt, t.formatter, 1,
                  space.template load<std::uint64_t>(fmt, t.formatter, 1) +
                      space.template load<std::uint64_t>(n, t.node, 4));
      if (++batch % 64 == 0) {
        void* str = space.alloc(t.dom_string);
        space.store(str, t.dom_string, 1, batch);
        checksum = hash_combine(
            checksum, space.template load<std::uint32_t>(str, t.dom_string, 1));
        space.free_object(str, t.dom_string);
      }
      for (void* c = reinterpret_cast<void*>(
               space.template load<std::uint64_t>(n, t.node, 2));
           c != nullptr; c = reinterpret_cast<void*>(
                             space.template load<std::uint64_t>(c, t.node, 3))) {
        stack.push_back(c);
      }
    }
    checksum = hash_combine(
        checksum, space.template load<std::uint64_t>(fmt, t.formatter, 1));
    space.free_object(fmt, t.formatter);
    for (void* n : all_nodes) space.free_object(n, t.node);
  }
  return checksum;
}

void xalan_taint(TaintClassSpace& space, const XalanTypes& t,
                 std::span<const std::uint8_t> input) {
  TaintScope scope(space.domain());
  TaintReader in(space, input);
  POLAR_COV_SITE();
  if (in.remaining() < 1 || in.u8().value() != '<') return;
  POLAR_COV_SITE();
  int guard = 0;
  std::uint32_t depth = 0;
  while (!in.empty() && ++guard < 200) {
    const auto c = in.u8();
    switch (c.value()) {
      case '<': {
        POLAR_COV_SITE();
        void* el = space.alloc(t.element, c.label());
        space.store_t(el, t.element, 0, in.u64());
        space.free_object(el, t.element);
        ++depth;
        break;
      }
      case '>': {
        if (depth > 0) --depth;
        break;
      }
      case '=': {
        POLAR_COV_SITE();
        void* at = space.alloc(t.attr);
        space.store_t(at, t.attr, 0, in.u64());
        space.store_t(at, t.attr, 1, in.u64());
        space.free_object(at, t.attr);
        break;
      }
      case '"': {
        POLAR_COV_SITE();
        void* s = space.alloc(t.dom_string, c.label());
        space.store_t(s, t.dom_string, 1, in.u32());
        space.free_object(s, t.dom_string);
        break;
      }
      case '.': {
        POLAR_COV_SITE();
        void* tx = space.alloc(t.text);
        space.store_t(tx, t.text, 0, in.u64());
        space.free_object(tx, t.text);
        break;
      }
      case ':': {
        POLAR_COV_SITE();
        void* qv = space.alloc(t.qname_value);
        space.store_t(qv, t.qname_value, 0, in.u64());
        space.free_object(qv, t.qname_value);
        void* qr = space.alloc(t.qname_ref);
        space.free_object(qr, t.qname_ref, c.label());
        break;
      }
      case '/': {
        POLAR_COV_SITE();
        void* xs = space.alloc(t.xpath_step);
        space.store_t(xs, t.xpath_step, 1, in.u64());
        space.free_object(xs, t.xpath_step);
        break;
      }
      case '$': {
        POLAR_COV_SITE();
        void* xo = space.alloc(t.xobject);
        space.store_t(xo, t.xobject, 1, in.u32());
        space.free_object(xo, t.xobject);
        break;
      }
      case '[': {
        POLAR_COV_SITE();
        void* nl = space.alloc(t.node_list, c.label());
        space.store_t(nl, t.node_list, 1, in.u32());
        space.free_object(nl, t.node_list);
        break;
      }
      case '{': {
        POLAR_COV_SITE();
        void* st = space.alloc(t.stylesheet);
        space.store_t(st, t.stylesheet, 0, in.u64());
        space.free_object(st, t.stylesheet);
        break;
      }
      case '!': {
        POLAR_COV_SITE();
        void* nd = space.alloc(t.node, c.label());
        space.store_t(nd, t.node, 4, in.u64());
        space.free_object(nd, t.node, c.label());
        break;
      }
      default:
        break;
    }
  }
}

}  // namespace

SpecEntry make_xalancbmk(TypeRegistry& reg) {
  auto types = std::make_shared<const XalanTypes>(register_xalan(reg));
  SpecEntry e;
  e.name = "483.xalancbmk";
  e.paper_tainted_objects = 59;
  e.run_direct = [types](DirectSpace& s, std::uint32_t scale,
                         std::uint64_t seed) {
    return xalan_run(s, *types, scale, seed);
  };
  e.run_polar = [types](PolarSpace& s, std::uint32_t scale,
                        std::uint64_t seed) {
    return xalan_run(s, *types, scale, seed);
  };
  e.taint_parse = [types](TaintClassSpace& s,
                          std::span<const std::uint8_t> in) {
    xalan_taint(s, *types, in);
  };
  e.sample_input = [](std::uint64_t seed) {
    std::vector<std::uint8_t> v{'<', '<', 1, 2, 3, 4, 5, 6, 7, 8, '>'};
    Rng rng(seed);
    for (int i = 0; i < 12; ++i) {
      v.push_back(static_cast<std::uint8_t>(rng.next()));
    }
    return v;
  };
  e.dictionary = {tok("<"), tok(">"), tok("="), tok("\""), tok("."),
                  tok(":"), tok("/"), tok("$"), tok("["), tok("{"),
                  tok("!")};
  return e;
}

}  // namespace polar::spec
