#include "workloads/server/request_gen.h"

namespace polar::server {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

constexpr const char* kHeaderNames[] = {"host", "agent", "accept", "trace-id",
                                        "content-kind", "session-hint"};

}  // namespace

RequestWorkload build_workload(const WorkloadConfig& cfg) {
  RequestWorkload wl;
  Rng rng(cfg.seed);
  wl.bytes_.reserve(static_cast<std::size_t>(cfg.requests) * 48);
  wl.offsets_.reserve(static_cast<std::size_t>(cfg.requests) + 1);

  for (std::uint64_t i = 0; i < cfg.requests; ++i) {
    wl.offsets_.push_back(wl.bytes_.size());

    const std::uint64_t roll = rng.below(1000);
    Method method = Method::kStat;
    if (roll < cfg.get_pm) {
      method = Method::kGet;
    } else if (roll < cfg.get_pm + cfg.put_pm) {
      method = Method::kPut;
    } else if (roll < cfg.get_pm + cfg.put_pm + cfg.del_pm) {
      method = Method::kDel;
    }

    // 80/20 hot-set skew over the key universe.
    const std::uint64_t key_id =
        rng.below(100) < 80
            ? rng.below(cfg.hot_keys)
            : cfg.hot_keys + rng.below(std::max(1u, cfg.key_universe -
                                                        cfg.hot_keys));
    std::uint8_t key[24];
    std::uint32_t key_len = 0;
    for (std::uint64_t v = key_id;; v >>= 8) {
      key[key_len++] = static_cast<std::uint8_t>('a' + (v & 15));
      if (v < 16 || key_len == sizeof(key)) break;
    }
    // Pad to a spread of lengths so key parsing isn't a fixed-size memcpy.
    const std::uint32_t pad = static_cast<std::uint32_t>(rng.below(8));
    for (std::uint32_t p = 0; p < pad && key_len < sizeof(key); ++p) {
      key[key_len++] = '.';
    }

    const std::uint32_t val_len =
        method == Method::kPut
            ? 1 + static_cast<std::uint32_t>(rng.below(cfg.max_value_len))
            : 0;
    const std::uint8_t n_headers =
        static_cast<std::uint8_t>(rng.below(cfg.max_headers + 1));
    const std::uint64_t conn_id = rng.below(cfg.max_conns);
    const std::uint64_t token = 1 + rng.below(cfg.max_sessions);

    wl.bytes_.push_back(static_cast<std::uint8_t>(method));
    wl.bytes_.push_back(n_headers);
    put_u16(wl.bytes_, static_cast<std::uint16_t>(key_len));
    put_u32(wl.bytes_, val_len);
    put_u64(wl.bytes_, conn_id);
    put_u64(wl.bytes_, token);
    wl.bytes_.insert(wl.bytes_.end(), key, key + key_len);
    for (std::uint32_t v = 0; v < val_len; ++v) {
      wl.bytes_.push_back(static_cast<std::uint8_t>(rng.below(256)));
    }
    for (std::uint8_t h = 0; h < n_headers; ++h) {
      const char* name =
          kHeaderNames[rng.below(sizeof(kHeaderNames) / sizeof(*kHeaderNames))];
      std::uint8_t name_len = 0;
      while (name[name_len] != '\0') ++name_len;
      const std::uint8_t value_len =
          static_cast<std::uint8_t>(1 + rng.below(kHeaderValueCap));
      wl.bytes_.push_back(name_len);
      wl.bytes_.push_back(value_len);
      wl.bytes_.insert(wl.bytes_.end(), name, name + name_len);
      for (std::uint8_t v = 0; v < value_len; ++v) {
        wl.bytes_.push_back(static_cast<std::uint8_t>('A' + rng.below(26)));
      }
    }
  }
  wl.offsets_.push_back(wl.bytes_.size());
  return wl;
}

}  // namespace polar::server
