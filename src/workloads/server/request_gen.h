// Deterministic request generator for the KV/HTTP server workload.
//
// Wire format of one request (little-endian, mirrored by Server::serve and
// taint_serve):
//
//   u8  method        0 GET | 1 PUT | 2 DEL | 3 STAT
//   u8  n_headers
//   u16 key_len
//   u32 val_len       nonzero only for PUT
//   u64 conn_id
//   u64 session_token
//   key bytes [key_len]
//   value bytes [val_len]
//   headers: n_headers x { u8 name_len, u8 value_len, name, value }
//
// All randomness comes from one seeded Rng, so a (seed, count, mix) triple
// names a byte-identical request stream on every machine — the property
// the cross-backend parity test and the --selfcheck gate rely on. Keys are
// drawn with a hot-set skew (80% of requests hit a small fraction of the
// key universe) so the cache sees realistic hit/evict churn.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/rng.h"
#include "workloads/server/types.h"

namespace polar::server {

struct WorkloadConfig {
  std::uint64_t seed = 0x5e72'7e57ULL;
  std::uint64_t requests = 10'000;
  std::uint32_t key_universe = 4096;  ///< distinct keys
  std::uint32_t hot_keys = 64;        ///< the skewed hot set
  std::uint32_t max_conns = 256;      ///< distinct connection ids
  std::uint32_t max_sessions = 512;   ///< distinct session tokens
  std::uint32_t max_headers = 4;
  std::uint32_t max_value_len = 96;
  /// Per-mille method mix; remainder is STAT. Defaults: 60% GET, 30% PUT,
  /// 6% DEL, 4% STAT.
  std::uint32_t get_pm = 600;
  std::uint32_t put_pm = 300;
  std::uint32_t del_pm = 60;
};

/// A pre-generated request stream: one flat buffer plus per-request
/// offsets, so the load generator's serve loop touches no allocator.
class RequestWorkload {
 public:
  [[nodiscard]] std::uint64_t count() const noexcept {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  [[nodiscard]] std::span<const std::uint8_t> request(std::uint64_t i) const {
    return std::span<const std::uint8_t>(bytes_)
        .subspan(offsets_[i], offsets_[i + 1] - offsets_[i]);
  }
  [[nodiscard]] std::size_t total_bytes() const noexcept {
    return bytes_.size();
  }

 private:
  friend RequestWorkload build_workload(const WorkloadConfig& cfg);
  std::vector<std::uint8_t> bytes_;
  std::vector<std::size_t> offsets_;  ///< count()+1 entries, last = size
};

/// Generates the full request stream for `cfg`. Deterministic in cfg.
RequestWorkload build_workload(const WorkloadConfig& cfg);

}  // namespace polar::server
