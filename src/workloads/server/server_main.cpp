// polar_server — run the mini KV/HTTP server workload against a chosen
// backend, with latency reporting, a TaintClass discovery pass, and a
// self-check gate (DESIGN.md §16, README "Server workload").
//
//   polar_server [--backend=direct|stored|stateless|hybrid] [--requests=N]
//                [--rate=R] [--poisson] [--queue=N] [--seed=S]
//                [--json] [--taint] [--selfcheck]
//
// --rate=0 (the default) is the closed-loop mode: every request is served,
// so the response hash is comparable across backends. Nonzero rates select
// the open-loop generator (queueing + tail drops + coordinated-omission-
// safe latency). --selfcheck is the tier-1 gate scripts/check.sh and CI
// run: response-byte parity of all three instrumented backends against
// DirectSpace, load-generator accounting invariants, zero runtime
// violations, and TaintClass discovering the session/header/cache-entry
// types from raw request bytes alone. --taint prints the Table-I-style
// discovery report. Exit codes: 0 ok, 1 check failure, 2 usage.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/runtime.h"
#include "core/session.h"
#include "core/space.h"
#include "taintclass/monitor.h"
#include "taintclass/taint_space.h"
#include "workloads/server/loadgen.h"
#include "workloads/server/request_gen.h"
#include "workloads/server/server.h"
#include "workloads/server/types.h"

namespace {

using namespace polar;
using namespace polar::server;

struct Options {
  std::string backend = "stored";
  std::uint64_t requests = 10'000;
  double rate = 0.0;
  bool poisson = false;
  std::uint32_t queue = 1024;
  std::uint64_t seed = WorkloadConfig{}.seed;
  bool json = false;
  bool taint = false;
  bool selfcheck = false;
};

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--backend=direct|stored|stateless|hybrid] [--requests=N]\n"
      "          [--rate=R] [--poisson] [--queue=N] [--seed=S]\n"
      "          [--json] [--taint] [--selfcheck]\n",
      argv0);
  return 2;
}

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 0);
  if (end == s || *end != '\0') return false;
  out = v;
  return true;
}

template <ObjectSpace S>
LoadGenReport run_one(S& space, const ServerTypes& t, const RequestWorkload& wl,
                      const Options& opt) {
  Server<S> server(space, t);
  LoadGenConfig lg;
  lg.rate_rps = opt.rate;
  lg.queue_capacity = opt.queue;
  lg.poisson = opt.poisson;
  lg.seed = opt.seed;
  return run_load(server, wl, lg);
}

/// Total violation reports across every class (selfcheck demands zero:
/// a server run is supposed to be fault-free).
std::uint64_t total_violations(Runtime& rt) {
  std::uint64_t n = 0;
  for (std::size_t v = 1; v < kViolationClassCount; ++v) {
    n += rt.policy_engine().reports(static_cast<Violation>(v));
  }
  return n;
}

void print_report(const Options& opt, const LoadGenReport& r) {
  if (opt.json) {
    std::printf(
        "{\"workload\": \"server\", \"backend\": \"%s\", \"offered\": %llu, "
        "\"served\": %llu, \"dropped\": %llu, \"elapsed_ns\": %llu, "
        "\"throughput_rps\": %.1f, \"p50_ns\": %llu, \"p99_ns\": %llu, "
        "\"p999_ns\": %llu, \"exact_percentiles\": %s, "
        "\"response_bytes\": %llu, \"response_hash\": \"0x%016llx\"}\n",
        opt.backend.c_str(),
        static_cast<unsigned long long>(r.offered),
        static_cast<unsigned long long>(r.served),
        static_cast<unsigned long long>(r.dropped),
        static_cast<unsigned long long>(r.elapsed_ns), r.throughput_rps,
        static_cast<unsigned long long>(r.p50_ns),
        static_cast<unsigned long long>(r.p99_ns),
        static_cast<unsigned long long>(r.p999_ns),
        r.exact_percentiles ? "true" : "false",
        static_cast<unsigned long long>(r.response_bytes),
        static_cast<unsigned long long>(r.response_hash));
    return;
  }
  std::printf("backend=%s offered=%llu served=%llu dropped=%llu\n",
              opt.backend.c_str(),
              static_cast<unsigned long long>(r.offered),
              static_cast<unsigned long long>(r.served),
              static_cast<unsigned long long>(r.dropped));
  std::printf("throughput=%.1f req/s  p50=%llu ns  p99=%llu ns  p999=%llu ns"
              " (%s)\n",
              r.throughput_rps, static_cast<unsigned long long>(r.p50_ns),
              static_cast<unsigned long long>(r.p99_ns),
              static_cast<unsigned long long>(r.p999_ns),
              r.exact_percentiles ? "exact" : "bucket upper bounds");
  std::printf("response_hash=0x%016llx (%llu bytes)\n",
              static_cast<unsigned long long>(r.response_hash),
              static_cast<unsigned long long>(r.response_bytes));
}

/// Runs the TaintClass pass over the first `count` requests of the stream.
/// Returns the monitor for reporting/assertion.
void run_taint(TaintClassMonitor& monitor, TypeRegistry& reg,
               const ServerTypes& t, const RequestWorkload& wl,
               std::uint64_t count) {
  TaintDomain domain;
  TaintClassSpace space(reg, domain, monitor);
  const std::uint64_t n = wl.count() < count ? wl.count() : count;
  for (std::uint64_t i = 0; i < n; ++i) {
    domain.reset_shadow();
    const auto req = wl.request(i);
    std::vector<std::uint8_t> buf(req.begin(), req.end());
    if (buf.empty()) continue;
    domain.taint_input(buf.data(), buf.size(), "server-request");
    taint_serve(space, t, buf);
  }
}

int print_taint_table(TypeRegistry& reg, const ServerTypes& t,
                      const RequestWorkload& wl) {
  TaintClassMonitor monitor(reg);
  run_taint(monitor, reg, t, wl, 512);
  std::printf(
      "TaintClass census — server workload (source: raw request bytes)\n");
  std::printf("%-18s %-8s %-6s %-8s %s\n", "type", "content", "alloc",
              "dealloc", "tainted fields");
  for (const auto& rep : monitor.report()) {
    std::string fields;
    for (const auto& f : rep.tainted_fields) {
      if (!fields.empty()) fields += ", ";
      fields += f.name;
    }
    std::printf("%-18s %-8s %-6s %-8s %s\n", rep.type_name.c_str(),
                rep.content_tainted ? "yes" : "-",
                rep.alloc_tainted ? "yes" : "-",
                rep.dealloc_tainted ? "yes" : "-", fields.c_str());
  }
  std::printf("tainted types: %zu\n", monitor.tainted_type_count());
  return 0;
}

int selfcheck(TypeRegistry& reg, const ServerTypes& t,
              const RequestWorkload& wl, const Options& opt) {
  int failures = 0;
  const auto check = [&failures](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
    if (!ok) ++failures;
  };

  std::printf("selfcheck: %llu requests, seed 0x%llx\n",
              static_cast<unsigned long long>(wl.count()),
              static_cast<unsigned long long>(opt.seed));

  // Reference: closed-loop DirectSpace run.
  Options closed = opt;
  closed.rate = 0.0;
  DirectSpace direct(reg);
  const LoadGenReport want = run_one(direct, t, wl, closed);
  check(want.served == want.offered && want.dropped == 0,
        "direct: closed loop serves everything");
  check(want.latency_ns.count == want.served,
        "direct: one latency sample per served request");

  // Parity: each instrumented backend must produce byte-identical
  // responses (equal running hashes) with zero runtime violations.
  const BackendKind kinds[] = {BackendKind::kStored, BackendKind::kStateless,
                               BackendKind::kHybrid};
  for (const BackendKind kind : kinds) {
    RuntimeConfig rc;
    rc.on_violation = ErrorAction::kReport;
    rc.backend = BackendConfig::of(kind);
    Runtime rt(reg, rc);
    SessionSpace space(rt);
    const LoadGenReport got = run_one(space, t, wl, closed);
    std::string label = std::string(to_string(kind)) + ": response parity";
    check(got.response_hash == want.response_hash &&
              got.response_bytes == want.response_bytes,
          label.c_str());
    label = std::string(to_string(kind)) + ": accounting + zero violations";
    check(got.served == got.offered && got.dropped == 0 &&
              total_violations(rt) == 0,
          label.c_str());
  }

  // Open-loop accounting under deliberate overload: a tiny queue at an
  // impossible arrival rate must tail-drop, and the identity
  // offered == served + dropped must survive it.
  {
    DirectSpace d2(reg);
    Server<DirectSpace> server(d2, t);
    LoadGenConfig lg;
    lg.rate_rps = 50e6;  // 50M rps: arrivals beat service by construction
    lg.queue_capacity = 4;
    lg.seed = opt.seed;
    const LoadGenReport r = run_load(server, wl, lg);
    check(r.offered == r.served + r.dropped,
          "open loop: offered == served + dropped");
    check(r.dropped > 0, "open loop: overload tail-drops");
    const auto rs = r.ring.stats();
    check(rs.recorded == rs.stored + rs.dropped,
          "trace ring: recorded == stored + dropped");
  }

  // TaintClass discovery: the session/header/cache-entry types must be
  // reported from request bytes alone — nothing is marked by hand.
  {
    TaintClassMonitor monitor(reg);
    run_taint(monitor, reg, t, wl, 512);
    const auto list = monitor.randomization_list();
    const auto has = [&list](const char* name) {
      for (const auto& n : list) {
        if (n == name) return true;
      }
      return false;
    };
    check(has("srv.session"), "taint: discovered srv.session");
    check(has("srv.header"), "taint: discovered srv.header");
    check(has("srv.cache_entry"), "taint: discovered srv.cache_entry");
    check(has("srv.request") && has("srv.connection") && has("srv.response"),
          "taint: discovered request/connection/response");
  }

  std::printf("selfcheck: %s\n", failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--backend=", 10) == 0) {
      opt.backend = a + 10;
    } else if (std::strncmp(a, "--requests=", 11) == 0) {
      if (!parse_u64(a + 11, opt.requests)) return usage(argv[0]);
    } else if (std::strncmp(a, "--rate=", 7) == 0) {
      opt.rate = std::atof(a + 7);
    } else if (std::strcmp(a, "--poisson") == 0) {
      opt.poisson = true;
    } else if (std::strncmp(a, "--queue=", 8) == 0) {
      std::uint64_t q = 0;
      if (!parse_u64(a + 8, q) || q == 0 || q > 0xffffffffULL) {
        return usage(argv[0]);
      }
      opt.queue = static_cast<std::uint32_t>(q);
    } else if (std::strncmp(a, "--seed=", 7) == 0) {
      if (!parse_u64(a + 7, opt.seed)) return usage(argv[0]);
    } else if (std::strcmp(a, "--json") == 0) {
      opt.json = true;
    } else if (std::strcmp(a, "--taint") == 0) {
      opt.taint = true;
    } else if (std::strcmp(a, "--selfcheck") == 0) {
      opt.selfcheck = true;
    } else {
      return usage(argv[0]);
    }
  }

  TypeRegistry reg;
  const ServerTypes t = register_types(reg);
  WorkloadConfig wcfg;
  wcfg.seed = opt.seed;
  wcfg.requests = opt.requests;
  const RequestWorkload wl = build_workload(wcfg);

  if (opt.selfcheck) return selfcheck(reg, t, wl, opt);
  if (opt.taint) return print_taint_table(reg, t, wl);

  if (opt.backend == "direct") {
    DirectSpace space(reg);
    print_report(opt, run_one(space, t, wl, opt));
    return 0;
  }
  BackendKind kind{};
  if (!parse_backend(opt.backend, kind)) return usage(argv[0]);
  RuntimeConfig rc;
  rc.on_violation = ErrorAction::kReport;
  rc.backend = BackendConfig::of(kind);
  Runtime rt(reg, rc);
  SessionSpace space(rt);
  print_report(opt, run_one(space, t, wl, opt));
  if (total_violations(rt) != 0) {
    std::fprintf(stderr, "polar_server: runtime reported violations\n");
    return 1;
  }
  return 0;
}
