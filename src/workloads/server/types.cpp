#include "workloads/server/types.h"

#include "support/hash.h"
#include "workloads/spec_common.h"

namespace polar::server {

ServerTypes register_types(TypeRegistry& reg) {
  ServerTypes t;
  t.connection = TypeBuilder(reg, "srv.connection")
                     .fn_ptr("handler")
                     .field<std::uint64_t>("conn_id")
                     .field<std::uint64_t>("last_seen")
                     .field<std::uint32_t>("requests_served")
                     .field<std::uint32_t>("bytes_out")
                     .ptr("session")
                     .build();
  t.session = TypeBuilder(reg, "srv.session")
                  .field<std::uint64_t>("token")
                  .field<std::uint64_t>("expires_at")
                  .field<std::uint32_t>("hits")
                  .field<std::uint32_t>("flags")
                  .fn_ptr("on_expire")
                  .build();
  t.request = TypeBuilder(reg, "srv.request")
                  .field<std::uint8_t>("method")
                  .field<std::uint8_t>("n_headers")
                  .field<std::uint16_t>("key_len")
                  .field<std::uint32_t>("val_len")
                  .field<std::uint64_t>("key_hash")
                  .field<std::uint64_t>("conn_id")
                  .field<std::uint64_t>("session_token")
                  .build();
  t.header = TypeBuilder(reg, "srv.header")
                 .bytes("name", kHeaderNameCap, 1)
                 .bytes("value", kHeaderValueCap, 1)
                 .field<std::uint8_t>("name_len")
                 .field<std::uint8_t>("value_len")
                 .field<std::uint64_t>("name_hash")
                 .build();
  t.cache_entry = TypeBuilder(reg, "srv.cache_entry")
                      .field<std::uint64_t>("key_hash")
                      .field<std::uint64_t>("value_hash")
                      .field<std::uint32_t>("value_len")
                      .field<std::uint32_t>("hits")
                      .field<std::uint64_t>("inserted_at")
                      .ptr("lru_prev")
                      .ptr("lru_next")
                      .build();
  t.response = TypeBuilder(reg, "srv.response")
                   .field<std::uint16_t>("status")
                   .field<std::uint32_t>("body_len")
                   .field<std::uint64_t>("body_hash")
                   .field<std::uint32_t>("flags")
                   .build();
  return t;
}

// The taint run mirrors Server<S>::serve's parse (request_gen.h wire
// format) over TaintClassSpace: every field filled from request bytes is a
// tainted store, every allocation whose occurrence or count the bytes
// decided carries a control label. TaintClass sees the whole object graph
// from the raw buffer alone — no type is marked by hand.
void taint_serve(TaintClassSpace& space, const ServerTypes& t,
                 std::span<const std::uint8_t> request) {
  TaintScope scope(space.domain());
  spec::TaintReader in(space, request);
  if (in.remaining() < 24) return;  // fixed header: see request_gen.h

  const auto method = in.u8();
  const auto n_headers = in.u8();
  const auto key_len = in.u16();
  const auto val_len = in.u32();
  const auto conn_id = in.u64();
  const auto token = in.u64();

  // The request object itself exists per arriving buffer — its allocation
  // is input-controlled (the bytes' presence decided it).
  void* req = space.alloc(t.request, method.label());
  space.store_t(req, t.request, 0, method);
  space.store_t(req, t.request, 1, n_headers);
  space.store_t(req, t.request, 2, key_len);
  space.store_t(req, t.request, 3, val_len);
  space.store_t(req, t.request, 5, conn_id);
  space.store_t(req, t.request, 6, token);

  // Tainted FNV over a byte window; shadow is read off the *input* bytes,
  // so the resulting hash carries the union of their labels.
  const auto fnv_t = [&space](std::span<const std::uint8_t> bytes) {
    Tainted<std::uint64_t> h(1469598103934665603ULL);
    for (const std::uint8_t& b : bytes) {
      h = (h ^ Tainted<std::uint64_t>(b, space.domain().shadow().get(&b))) *
          Tainted<std::uint64_t>(1099511628211ULL);
    }
    return h;
  };

  const auto key = in.bytes(std::min<std::size_t>(key_len.value(), 64));
  const Tainted<std::uint64_t> key_hash = fnv_t(key);
  space.store_t(req, t.request, 4, key_hash);

  const auto val = in.bytes(std::min<std::size_t>(val_len.value(), 256));
  const Tainted<std::uint64_t> val_hash = fnv_t(val);

  // Headers: the COUNT of srv.header allocations is the tainted n_headers
  // byte — the canonical "allocation decided by input" evidence.
  for (std::uint8_t h = 0; h < n_headers.value() && !in.empty(); ++h) {
    const auto name_len = in.u8();
    const auto value_len = in.u8();
    void* hd = space.alloc(t.header, n_headers.label());
    const auto name =
        in.bytes(std::min<std::size_t>(name_len.value(), kHeaderNameCap));
    if (!name.empty()) {
      space.store_bytes(hd, t.header, 0, 0, name.data(), name.size());
    }
    const auto hval =
        in.bytes(std::min<std::size_t>(value_len.value(), kHeaderValueCap));
    if (!hval.empty()) {
      space.store_bytes(hd, t.header, 1, 0, hval.data(), hval.size());
    }
    space.store_t(hd, t.header, 2, name_len);
    space.store_t(hd, t.header, 3, value_len);
    space.free_object(hd, t.header, n_headers.label());
  }

  // Session: keyed (and thus allocated) by the tainted token.
  void* se = space.alloc(t.session, token.label());
  space.store_t(se, t.session, 0, token);
  space.store_t(se, t.session, 1,
                token + Tainted<std::uint64_t>(512));  // expiry from token
  space.store_t(se, t.session, 2, Tainted<std::uint32_t>(
                                      1, method.label()));

  // Connection: identified by the tainted conn_id.
  void* conn = space.alloc(t.connection, conn_id.label());
  space.store_t(conn, t.connection, 1, conn_id);
  space.store_t(conn, t.connection, 3,
                Tainted<std::uint32_t>(1, conn_id.label()));

  // Cache entry: a PUT materializes one, keyed by the tainted key hash and
  // sized by the tainted value length.
  if (method.value() == static_cast<std::uint8_t>(Method::kPut)) {
    void* ce = space.alloc(t.cache_entry, key_hash.label());
    space.store_t(ce, t.cache_entry, 0, key_hash);
    space.store_t(ce, t.cache_entry, 1, val_hash);
    space.store_t(ce, t.cache_entry, 2, val_len);
    space.free_object(ce, t.cache_entry, key_hash.label());
  }

  // Response: status/body derive from the tainted lookup key.
  void* resp = space.alloc(t.response, method.label());
  space.store_t(resp, t.response, 0,
                Tainted<std::uint16_t>(200, method.label()));
  space.store_t(resp, t.response, 2, key_hash);
  space.free_object(resp, t.response, method.label());

  space.free_object(conn, t.connection, conn_id.label());
  space.free_object(se, t.session, token.label());
  space.free_object(req, t.request, method.label());
}

}  // namespace polar::server
