// Open-loop load generator for the server workload (DESIGN.md §16).
//
// The generator separates *arrival* from *service*: a seeded schedule of
// nanosecond arrival offsets is built before the run, and the serve loop
// admits whatever has "arrived" by the wall clock into a bounded FIFO —
// clients do not politely wait for the server. Latency is measured from
// the SCHEDULED arrival, not the dequeue, so queueing delay is part of the
// number — the coordinated-omission correction that closed-loop harnesses
// silently lack. When the queue is full, arrivals tail-drop and are
// counted; the accounting identity offered == served + dropped always
// holds.
//
// rate_rps == 0 selects the closed-loop mode: requests are served
// back-to-back with no queue and no drops, so the served set is the whole
// stream — that determinism is what the cross-backend parity checks and
// --selfcheck need. Closed-loop latency is pure service time.
//
// Every served request is also pushed into a TraceRing as a kServerRequest
// event (timestamp = scheduled arrival, object_id = request index,
// duration = latency). When the ring kept every served event the report's
// percentiles are exact order statistics from the ring; otherwise they
// fall back to Log2Histogram bucket upper bounds, and `exact` says which.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <vector>

#include "observe/trace_ring.h"
#include "workloads/server/request_gen.h"
#include "workloads/server/server.h"

namespace polar::server {

struct LoadGenConfig {
  double rate_rps = 0.0;              ///< arrival rate; 0 = closed-loop
  std::uint32_t queue_capacity = 1024;  ///< bounded FIFO; full -> tail drop
  bool poisson = false;               ///< exponential gaps vs fixed spacing
  std::uint64_t seed = 0x10adULL;     ///< schedule randomness (poisson only)
  std::uint32_t ring_capacity = 4096;  ///< rounded up to a power of two
};

struct LoadGenReport {
  std::uint64_t offered = 0;  ///< arrivals presented (== workload count)
  std::uint64_t served = 0;
  std::uint64_t dropped = 0;  ///< tail-dropped at the full queue
  std::uint64_t elapsed_ns = 0;
  double throughput_rps = 0.0;  ///< served / elapsed
  observe::Log2Histogram latency_ns;
  observe::TraceRing ring;  ///< kServerRequest events, keep-oldest
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t p999_ns = 0;
  bool exact_percentiles = false;  ///< order statistics vs bucket bounds
  std::uint64_t response_bytes = 0;
  std::uint64_t response_hash = 0;  ///< server's running hash after the run
};

/// Builds the arrival schedule: `n` nanosecond offsets, nondecreasing,
/// starting at 0. Fixed spacing of 1e9/rate ns, or exponential gaps with
/// that mean when `poisson` (seeded — same (seed, n, rate) triple, same
/// schedule). rate_rps == 0 yields all-zero offsets (arrive at once).
std::vector<std::uint64_t> build_arrival_schedule(std::uint64_t seed,
                                                  std::uint64_t n,
                                                  double rate_rps,
                                                  bool poisson);

namespace detail {

/// Fills the report's percentile fields: exact order statistics when the
/// ring held onto every served event, histogram bucket bounds otherwise.
inline void finalize_percentiles(LoadGenReport& r) {
  std::vector<observe::TraceEvent> events;
  r.ring.snapshot(events);
  if (r.served > 0 && events.size() == r.served) {
    std::vector<std::uint32_t> lat;
    lat.reserve(events.size());
    for (const auto& e : events) lat.push_back(e.duration);
    std::sort(lat.begin(), lat.end());
    const auto at = [&lat](double q) {
      std::size_t rank = static_cast<std::size_t>(
          q * static_cast<double>(lat.size()) + 0.999999999);
      if (rank == 0) rank = 1;
      if (rank > lat.size()) rank = lat.size();
      return static_cast<std::uint64_t>(lat[rank - 1]);
    };
    r.p50_ns = at(0.50);
    r.p99_ns = at(0.99);
    r.p999_ns = at(0.999);
    r.exact_percentiles = true;
  } else {
    r.p50_ns = observe::percentile_upper_bound(r.latency_ns, 0.50);
    r.p99_ns = observe::percentile_upper_bound(r.latency_ns, 0.99);
    r.p999_ns = observe::percentile_upper_bound(r.latency_ns, 0.999);
    r.exact_percentiles = false;
  }
}

inline void record_served(LoadGenReport& r, std::uint64_t index,
                          std::uint64_t scheduled_ns,
                          std::uint64_t latency_ns) {
  ++r.served;
  r.latency_ns.record(latency_ns);
  observe::TraceEvent e;
  e.timestamp = scheduled_ns;
  e.object_id = index;
  e.duration = latency_ns > 0xffffffffULL
                   ? 0xffffffffu
                   : static_cast<std::uint32_t>(latency_ns);
  e.kind = observe::TraceEventKind::kServerRequest;
  r.ring.push(e);
}

}  // namespace detail

/// Drives `server` with the whole workload under `cfg`'s arrival process.
/// The server's object population persists across the run (steady-state
/// churn); the caller owns reset/teardown.
template <ObjectSpace S>
LoadGenReport run_load(Server<S>& server, const RequestWorkload& wl,
                       const LoadGenConfig& cfg) {
  LoadGenReport r;
  const std::uint64_t n = wl.count();
  r.offered = n;
  std::uint32_t ring_cap = cfg.ring_capacity == 0
                               ? 1u
                               : std::bit_ceil(cfg.ring_capacity);
  r.ring = observe::TraceRing(ring_cap, observe::TraceRing::Mode::kKeepOldest);
  std::vector<std::uint8_t> out;

  if (cfg.rate_rps <= 0.0) {
    // Closed-loop: back-to-back, no queue, no drops. Latency = service
    // time. Deterministic served set -> usable as the parity oracle.
    const std::uint64_t start = observe::trace_clock();
    for (std::uint64_t i = 0; i < n; ++i) {
      out.clear();
      const std::uint64_t t0 = observe::trace_clock();
      r.response_bytes += server.serve(wl.request(i), out);
      const std::uint64_t t1 = observe::trace_clock();
      detail::record_served(r, i, t0 - start, t1 - t0);
    }
    r.elapsed_ns = observe::trace_clock() - start;
  } else {
    const auto sched =
        build_arrival_schedule(cfg.seed, n, cfg.rate_rps, cfg.poisson);
    const std::uint32_t qcap = std::max(1u, cfg.queue_capacity);
    std::deque<std::uint64_t> queue;  // request indices, FIFO
    std::uint64_t next = 0;           // first not-yet-arrived request
    const std::uint64_t start = observe::trace_clock();
    while (next < n || !queue.empty()) {
      const std::uint64_t now = observe::trace_clock() - start;
      // Admit everything that has arrived by now; tail-drop past capacity.
      while (next < n && sched[next] <= now) {
        if (queue.size() >= qcap) {
          ++r.dropped;
        } else {
          queue.push_back(next);
        }
        ++next;
      }
      if (queue.empty()) continue;  // idle until the next arrival
      const std::uint64_t i = queue.front();
      queue.pop_front();
      out.clear();
      r.response_bytes += server.serve(wl.request(i), out);
      // Coordinated-omission-safe: latency runs from the SCHEDULED
      // arrival, so time spent queued behind a slow request is charged.
      const std::uint64_t done = observe::trace_clock() - start;
      detail::record_served(r, i, sched[i],
                            done > sched[i] ? done - sched[i] : 0);
    }
    r.elapsed_ns = observe::trace_clock() - start;
  }

  r.throughput_rps =
      r.elapsed_ns == 0
          ? 0.0
          : static_cast<double>(r.served) * 1e9 /
                static_cast<double>(r.elapsed_ns);
  r.response_hash = server.response_hash();
  detail::finalize_percentiles(r);
  return r;
}

}  // namespace polar::server
