#include "workloads/server/loadgen.h"

#include <cmath>

#include "support/rng.h"

namespace polar::server {

std::vector<std::uint64_t> build_arrival_schedule(std::uint64_t seed,
                                                  std::uint64_t n,
                                                  double rate_rps,
                                                  bool poisson) {
  std::vector<std::uint64_t> sched(n, 0);
  if (rate_rps <= 0.0 || n == 0) return sched;
  const double mean_gap_ns = 1e9 / rate_rps;
  if (!poisson) {
    for (std::uint64_t i = 0; i < n; ++i) {
      sched[i] = static_cast<std::uint64_t>(
          mean_gap_ns * static_cast<double>(i));
    }
    return sched;
  }
  Rng rng(seed);
  double t = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    sched[i] = static_cast<std::uint64_t>(t);
    // Exponential inter-arrival gap with the fixed-rate mean. uniform() is
    // in [0, 1), so 1 - u is in (0, 1] and the log is finite.
    t += -mean_gap_ns * std::log(1.0 - rng.uniform());
  }
  return sched;
}

}  // namespace polar::server
