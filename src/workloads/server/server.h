// Mini KV/HTTP server engine — the steady-state request-serving workload
// (DESIGN.md §16).
//
// One Server<S> instance owns a long-lived object population inside an
// ObjectSpace S (DirectSpace baseline, SessionSpace/PolarSpace for the
// instrumented runs): a connection table with slot reuse, a session table
// with TTL expiry, and a bounded KV cache whose entries are threaded on an
// intrusive LRU list *through managed pointer fields* — so eviction scans
// and STAT walks are pointer chases over randomized objects, the shape the
// MetaCell-prefetch path exists for. Each serve() call parses one raw
// request buffer (request_gen.h wire format), churns the graph, and
// appends a fixed-width response record; the running response hash is the
// cross-space parity oracle (same byte stream in, same hash out, whatever
// the backend).
//
// Batched access: connection touch-up and session refresh are multi-field
// read-modify-writes under one layout snapshot (make_cursor); `use_cursor`
// and `use_prefetch` exist as knobs so bench_server can measure both as an
// ablation rather than a belief.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/space.h"
#include "fuzz/coverage.h"
#include "workloads/server/types.h"

namespace polar::server {

struct ServerConfig {
  std::uint32_t cache_capacity = 256;  ///< live cache entries before evict
  std::uint32_t max_conns = 256;       ///< connection table slots
  std::uint64_t session_ttl = 512;     ///< ticks (one tick per request)
  std::uint32_t stat_walk_limit = 32;  ///< LRU nodes one STAT traverses
  bool use_cursor = true;              ///< batched multi-field access
  bool use_prefetch = true;            ///< MetaCell prefetch on LRU chases
};

struct ServerStats {
  std::uint64_t requests = 0;
  std::uint64_t responses = 0;
  std::uint64_t parse_errors = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_inserts = 0;
  std::uint64_t cache_updates = 0;
  std::uint64_t cache_deletes = 0;
  std::uint64_t evictions = 0;
  std::uint64_t sessions_created = 0;
  std::uint64_t sessions_expired = 0;
  std::uint64_t conns_created = 0;
  std::uint64_t conns_reused = 0;
  std::uint64_t conns_replaced = 0;
  std::uint64_t headers_parsed = 0;
  std::uint64_t stat_nodes_walked = 0;
};

/// HTTP-ish status codes on the response wire.
inline constexpr std::uint16_t kStatusOk = 200;
inline constexpr std::uint16_t kStatusCreated = 201;
inline constexpr std::uint16_t kStatusNoContent = 204;
inline constexpr std::uint16_t kStatusBadRequest = 400;
inline constexpr std::uint16_t kStatusNotFound = 404;

/// Bytes serve() appends to the output stream per request:
/// u16 status | u32 body_len | u64 body_hash.
inline constexpr std::size_t kResponseBytes = 14;

template <ObjectSpace S>
class Server {
 public:
  Server(S& space, const ServerTypes& t, ServerConfig cfg = {})
      : space_(&space), t_(t), cfg_(cfg) {
    conns_.assign(cfg_.max_conns, nullptr);
  }

  ~Server() { reset(); }

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Serves one request, appending the response record to `out`.
  /// Returns the number of response bytes appended (always kResponseBytes).
  std::size_t serve(std::span<const std::uint8_t> req,
                    std::vector<std::uint8_t>& out) {
    ++stats_.requests;
    ++tick_;
    POLAR_COV_SITE();

    Reader in(req);
    if (in.remaining() < 24) {
      ++stats_.parse_errors;
      return respond(out, kStatusBadRequest, 0, 0);
    }
    const std::uint8_t method_u8 = in.u8();
    const std::uint8_t n_headers = in.u8();
    const std::uint16_t key_len = in.u16();
    const std::uint32_t val_len = in.u32();
    const std::uint64_t conn_id = in.u64();
    const std::uint64_t token = in.u64();
    if (method_u8 >= kMethodCount) {
      ++stats_.parse_errors;
      return respond(out, kStatusBadRequest, 0, 0);
    }
    const auto method = static_cast<Method>(method_u8);
    const auto key = in.take(key_len);
    const auto val = in.take(val_len);
    const std::uint64_t key_hash = fnv64(key);
    const std::uint64_t val_hash = fnv64(val);

    // Parsed request object: written once via one layout snapshot, read
    // back when the response is built.
    void* reqo = space_->alloc(t_.request);
    {
      auto rc = make_cursor(*space_, reqo, t_.request);
      rc.template store<std::uint8_t>(0, method_u8);
      rc.template store<std::uint8_t>(1, n_headers);
      rc.template store<std::uint16_t>(2, key_len);
      rc.template store<std::uint32_t>(3, val_len);
      rc.template store<std::uint64_t>(4, key_hash);
      rc.template store<std::uint64_t>(5, conn_id);
      rc.template store<std::uint64_t>(6, token);
    }

    // Header churn: one short-lived srv.header per parsed header; the
    // name hash folds into the response so header parsing is parity-
    // covered.
    std::uint64_t header_hash = 0;
    for (std::uint8_t h = 0; h < n_headers && !in.eof(); ++h) {
      POLAR_COV_SITE();
      const std::uint8_t name_len = in.u8();
      const std::uint8_t value_len = in.u8();
      const auto name = in.take(std::min<std::uint32_t>(name_len, kHeaderNameCap));
      const auto hval =
          in.take(std::min<std::uint32_t>(value_len, kHeaderValueCap));
      void* hd = space_->alloc(t_.header);
      if (!name.empty()) {
        std::memcpy(space_->field_ptr(hd, t_.header, 0), name.data(),
                    name.size());
      }
      if (!hval.empty()) {
        std::memcpy(space_->field_ptr(hd, t_.header, 1), hval.data(),
                    hval.size());
      }
      space_->store(hd, t_.header, 2, name_len);
      space_->store(hd, t_.header, 3, value_len);
      space_->store(hd, t_.header, 4, fnv64(name));
      header_hash = hash_mix(
          header_hash,
          space_->template load<std::uint64_t>(hd, t_.header, 4));
      space_->free_object(hd, t_.header);
      ++stats_.headers_parsed;
    }

    void* session = touch_session(token, method_u8);
    touch_connection(conn_id, session);

    // The KV operation.
    std::uint16_t status = kStatusOk;
    std::uint32_t body_len = 0;
    std::uint64_t body_hash = 0;
    switch (method) {
      case Method::kGet: {
        POLAR_COV_SITE();
        const auto it = cache_.find(key_hash);
        if (it == cache_.end()) {
          ++stats_.cache_misses;
          status = kStatusNotFound;
        } else {
          ++stats_.cache_hits;
          void* e = it->second;
          auto ec = make_cursor(*space_, e, t_.cache_entry);
          ec.template store<std::uint32_t>(
              3, ec.template load<std::uint32_t>(3) + 1);
          body_len = ec.template load<std::uint32_t>(2);
          body_hash = ec.template load<std::uint64_t>(1);
          lru_move_front(e);
        }
        break;
      }
      case Method::kPut: {
        POLAR_COV_SITE();
        const auto it = cache_.find(key_hash);
        if (it != cache_.end()) {
          ++stats_.cache_updates;
          void* e = it->second;
          auto ec = make_cursor(*space_, e, t_.cache_entry);
          ec.template store<std::uint64_t>(1, val_hash);
          ec.template store<std::uint32_t>(2, val_len);
          ec.template store<std::uint64_t>(4, tick_);
          lru_move_front(e);
        } else {
          ++stats_.cache_inserts;
          void* e = space_->alloc(t_.cache_entry);
          auto ec = make_cursor(*space_, e, t_.cache_entry);
          ec.template store<std::uint64_t>(0, key_hash);
          ec.template store<std::uint64_t>(1, val_hash);
          ec.template store<std::uint32_t>(2, val_len);
          ec.template store<std::uint32_t>(3, 0);
          ec.template store<std::uint64_t>(4, tick_);
          cache_.emplace(key_hash, e);
          lru_push_front(e);
          if (cache_.size() > cfg_.cache_capacity) evict_tail();
        }
        status = kStatusCreated;
        body_len = val_len;
        body_hash = val_hash;
        break;
      }
      case Method::kDel: {
        POLAR_COV_SITE();
        const auto it = cache_.find(key_hash);
        if (it == cache_.end()) {
          ++stats_.cache_misses;
          status = kStatusNotFound;
        } else {
          ++stats_.cache_deletes;
          void* e = it->second;
          lru_unlink(e);
          cache_.erase(it);
          space_->free_object(e, t_.cache_entry);
          status = kStatusNoContent;
        }
        break;
      }
      case Method::kStat: {
        POLAR_COV_SITE();
        // Pointer chase down the LRU chain: prefetch the *next* entry's
        // metadata while hashing the current one (the MetaCell-prefetch
        // idiom; cfg_.use_prefetch ablates it).
        void* cur = lru_head_;
        std::uint32_t walked = 0;
        while (cur != nullptr && walked < cfg_.stat_walk_limit) {
          void* next = entry_ptr(cur, 6);
          if (cfg_.use_prefetch && next != nullptr) {
            space_prefetch(*space_, next);
          }
          body_hash = hash_mix(
              body_hash,
              space_->template load<std::uint64_t>(cur, t_.cache_entry, 1));
          ++walked;
          cur = next;
        }
        stats_.stat_nodes_walked += walked;
        body_len = walked;
        break;
      }
    }

    // Response object: built from the request object + op outcome, read
    // back out for serialization, then released (per-request churn).
    body_hash = hash_mix(body_hash, header_hash);
    void* resp = space_->alloc(t_.response);
    {
      auto pc = make_cursor(*space_, resp, t_.response);
      pc.template store<std::uint16_t>(0, status);
      pc.template store<std::uint32_t>(1, body_len);
      pc.template store<std::uint64_t>(2, body_hash);
      pc.template store<std::uint32_t>(
          3, static_cast<std::uint32_t>(method_u8) |
                 (n_headers != 0 ? 16u : 0u));
      status = pc.template load<std::uint16_t>(0);
      body_len = pc.template load<std::uint32_t>(1);
      body_hash = pc.template load<std::uint64_t>(2);
    }
    space_->free_object(resp, t_.response);
    space_->free_object(reqo, t_.request);
    return respond(out, status, body_len, body_hash);
  }

  /// Frees every live object and resets the tables (also the destructor's
  /// teardown path).
  void reset() {
    for (void*& c : conns_) {
      if (c != nullptr) space_->free_object(c, t_.connection);
      c = nullptr;
    }
    for (auto& [token, s] : sessions_) space_->free_object(s, t_.session);
    sessions_.clear();
    for (auto& [kh, e] : cache_) space_->free_object(e, t_.cache_entry);
    cache_.clear();
    lru_head_ = lru_tail_ = nullptr;
  }

  [[nodiscard]] const ServerStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint64_t response_hash() const noexcept {
    return response_hash_;
  }
  [[nodiscard]] std::size_t cache_size() const noexcept {
    return cache_.size();
  }
  [[nodiscard]] std::size_t session_count() const noexcept {
    return sessions_.size();
  }

 private:
  /// Little-endian byte reader over the request buffer (clamping reads,
  /// like the decoder cursors: truncated input yields zeros, not UB).
  class Reader {
   public:
    explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}
    [[nodiscard]] std::size_t remaining() const {
      return at_ < data_.size() ? data_.size() - at_ : 0;
    }
    [[nodiscard]] bool eof() const { return remaining() == 0; }
    std::uint8_t u8() { return at_ < data_.size() ? data_[at_++] : 0; }
    std::uint16_t u16() {
      std::uint16_t v = u8();
      return static_cast<std::uint16_t>(v | (static_cast<std::uint16_t>(u8()) << 8));
    }
    std::uint32_t u32() {
      std::uint32_t v = 0;
      for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
      return v;
    }
    std::uint64_t u64() {
      std::uint64_t v = 0;
      for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
      return v;
    }
    std::span<const std::uint8_t> take(std::size_t n) {
      const std::size_t got = std::min(n, remaining());
      auto out = data_.subspan(at_, got);
      at_ += got;
      return out;
    }

   private:
    std::span<const std::uint8_t> data_;
    std::size_t at_ = 0;
  };

  [[nodiscard]] static std::uint64_t fnv64(
      std::span<const std::uint8_t> bytes) noexcept {
    std::uint64_t h = 1469598103934665603ULL;
    for (const std::uint8_t b : bytes) h = (h ^ b) * 1099511628211ULL;
    return h;
  }

  [[nodiscard]] static std::uint64_t hash_mix(std::uint64_t a,
                                              std::uint64_t b) noexcept {
    return (a ^ b) * 0x9e3779b97f4a7c15ULL + 0x7f4a7c15ULL;
  }

  std::size_t respond(std::vector<std::uint8_t>& out, std::uint16_t status,
                      std::uint32_t body_len, std::uint64_t body_hash) {
    ++stats_.responses;
    out.push_back(static_cast<std::uint8_t>(status));
    out.push_back(static_cast<std::uint8_t>(status >> 8));
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<std::uint8_t>(body_len >> (8 * i)));
    }
    for (int i = 0; i < 8; ++i) {
      out.push_back(static_cast<std::uint8_t>(body_hash >> (8 * i)));
    }
    response_hash_ = hash_mix(
        response_hash_,
        hash_mix(static_cast<std::uint64_t>(status) << 32 | body_len,
                 body_hash));
    return kResponseBytes;
  }

  // --- session table --------------------------------------------------------

  void* touch_session(std::uint64_t token, std::uint8_t method_u8) {
    const auto it = sessions_.find(token);
    void* s = nullptr;
    if (it != sessions_.end()) {
      const auto expires =
          space_->template load<std::uint64_t>(it->second, t_.session, 1);
      if (expires < tick_) {
        ++stats_.sessions_expired;
        space_->free_object(it->second, t_.session);
        sessions_.erase(it);
      } else {
        s = it->second;
      }
    }
    if (s == nullptr) {
      ++stats_.sessions_created;
      s = space_->alloc(t_.session);
      auto sc = make_cursor(*space_, s, t_.session);
      sc.template store<std::uint64_t>(0, token);
      sc.template store<std::uint64_t>(1, tick_ + cfg_.session_ttl);
      sc.template store<std::uint32_t>(2, 0);
      sc.template store<std::uint32_t>(3, 0);
      sessions_.emplace(token, s);
    }
    // Refresh: hits/flags/expiry under one snapshot.
    auto sc = make_cursor(*space_, s, t_.session);
    sc.template store<std::uint32_t>(2, sc.template load<std::uint32_t>(2) + 1);
    sc.template store<std::uint32_t>(
        3, sc.template load<std::uint32_t>(3) | (1u << method_u8));
    sc.template store<std::uint64_t>(1, tick_ + cfg_.session_ttl);
    return s;
  }

  // --- connection table -----------------------------------------------------

  void touch_connection(std::uint64_t conn_id, void* session) {
    const std::size_t slot =
        static_cast<std::size_t>(conn_id % conns_.size());
    void* c = conns_[slot];
    if (c != nullptr &&
        space_->template load<std::uint64_t>(c, t_.connection, 1) != conn_id) {
      // Slot collision: the old connection closed; replace it.
      ++stats_.conns_replaced;
      space_->free_object(c, t_.connection);
      c = nullptr;
      conns_[slot] = nullptr;
    }
    if (c == nullptr) {
      ++stats_.conns_created;
      c = space_->alloc(t_.connection);
      space_->store(c, t_.connection, 1, conn_id);
      conns_[slot] = c;
    } else {
      ++stats_.conns_reused;
    }
    if (cfg_.use_cursor) {
      auto cc = make_cursor(*space_, c, t_.connection);
      cc.template store<std::uint64_t>(2, tick_);
      cc.template store<std::uint32_t>(
          3, cc.template load<std::uint32_t>(3) + 1);
      cc.template store<std::uint32_t>(
          4, cc.template load<std::uint32_t>(4) +
                 static_cast<std::uint32_t>(kResponseBytes));
      cc.template store<std::uint64_t>(
          5, static_cast<std::uint64_t>(
                 reinterpret_cast<std::uintptr_t>(session)));
    } else {
      space_->store(c, t_.connection, 2, tick_);
      space_->store(
          c, t_.connection, 3,
          space_->template load<std::uint32_t>(c, t_.connection, 3) + 1);
      space_->store(
          c, t_.connection, 4,
          space_->template load<std::uint32_t>(c, t_.connection, 4) +
              static_cast<std::uint32_t>(kResponseBytes));
      space_->store(c, t_.connection, 5,
                    static_cast<std::uint64_t>(
                        reinterpret_cast<std::uintptr_t>(session)));
    }
  }

  // --- intrusive LRU over managed pointer fields ----------------------------

  [[nodiscard]] void* entry_ptr(void* e, std::uint32_t field) const {
    return reinterpret_cast<void*>(static_cast<std::uintptr_t>(
        space_->template load<std::uint64_t>(e, t_.cache_entry, field)));
  }
  void set_entry_ptr(void* e, std::uint32_t field, void* p) {
    space_->store(e, t_.cache_entry, field,
                  static_cast<std::uint64_t>(
                      reinterpret_cast<std::uintptr_t>(p)));
  }

  void lru_push_front(void* e) {
    set_entry_ptr(e, 5, nullptr);
    set_entry_ptr(e, 6, lru_head_);
    if (lru_head_ != nullptr) set_entry_ptr(lru_head_, 5, e);
    lru_head_ = e;
    if (lru_tail_ == nullptr) lru_tail_ = e;
  }

  void lru_unlink(void* e) {
    void* prev = entry_ptr(e, 5);
    void* next = entry_ptr(e, 6);
    if (prev != nullptr) {
      set_entry_ptr(prev, 6, next);
    } else {
      lru_head_ = next;
    }
    if (next != nullptr) {
      set_entry_ptr(next, 5, prev);
    } else {
      lru_tail_ = prev;
    }
  }

  void lru_move_front(void* e) {
    if (e == lru_head_) return;
    lru_unlink(e);
    lru_push_front(e);
  }

  void evict_tail() {
    void* victim = lru_tail_;
    if (victim == nullptr) return;
    ++stats_.evictions;
    const auto kh =
        space_->template load<std::uint64_t>(victim, t_.cache_entry, 0);
    lru_unlink(victim);
    cache_.erase(kh);
    space_->free_object(victim, t_.cache_entry);
  }

  S* space_;
  ServerTypes t_;
  ServerConfig cfg_;
  ServerStats stats_{};
  std::uint64_t tick_ = 0;
  std::uint64_t response_hash_ = 0x5eed'0f'5e72e5ULL;

  std::vector<void*> conns_;                       ///< slot = conn_id % size
  std::unordered_map<std::uint64_t, void*> sessions_;  ///< token -> session
  std::unordered_map<std::uint64_t, void*> cache_;     ///< key_hash -> entry
  void* lru_head_ = nullptr;
  void* lru_tail_ = nullptr;
};

}  // namespace polar::server
