// Server workload object graph — the types a mini KV/HTTP request server
// churns through at steady state (DESIGN.md §16).
//
// Every workload so far is a batch decoder: allocate, fill, free, done.
// This registers the object population of a *request-serving* process —
// connections that outlive requests, sessions that expire, cache entries
// threaded on an intrusive LRU list, and the per-request parse/response
// pair — so the runtime's alloc/free, member-access, and batched-cursor
// paths are exercised by sustained churn instead of one decode pass.
//
// Field indices are part of the wire contract between server.h, the taint
// run, and the tests; keep the comments below in sync with register_types.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/type_registry.h"
#include "taintclass/taint_space.h"

namespace polar::server {

struct ServerTypes {
  TypeId connection;   ///< srv.connection
  TypeId session;      ///< srv.session
  TypeId request;      ///< srv.request
  TypeId header;       ///< srv.header
  TypeId cache_entry;  ///< srv.cache_entry
  TypeId response;     ///< srv.response
};

// Field indices (must match register_types order):
//   srv.connection: 0 handler(fn) 1 conn_id(u64) 2 last_seen(u64)
//                   3 requests_served(u32) 4 bytes_out(u32) 5 session(ptr)
//   srv.session:    0 token(u64) 1 expires_at(u64) 2 hits(u32)
//                   3 flags(u32) 4 on_expire(fn)
//   srv.request:    0 method(u8) 1 n_headers(u8) 2 key_len(u16)
//                   3 val_len(u32) 4 key_hash(u64) 5 conn_id(u64)
//                   6 session_token(u64)
//   srv.header:     0 name(bytes 16) 1 value(bytes 32) 2 name_len(u8)
//                   3 value_len(u8) 4 name_hash(u64)
//   srv.cache_entry: 0 key_hash(u64) 1 value_hash(u64) 2 value_len(u32)
//                    3 hits(u32) 4 inserted_at(u64) 5 lru_prev(ptr)
//                    6 lru_next(ptr)
//   srv.response:   0 status(u16) 1 body_len(u32) 2 body_hash(u64)
//                   3 flags(u32)
ServerTypes register_types(TypeRegistry& registry);

inline constexpr std::uint32_t kHeaderNameCap = 16;
inline constexpr std::uint32_t kHeaderValueCap = 32;

/// Request methods on the wire (u8).
enum class Method : std::uint8_t { kGet = 0, kPut = 1, kDel = 2, kStat = 3 };
inline constexpr std::uint32_t kMethodCount = 4;

/// TaintClass entry: serve one raw request buffer under taint tracking,
/// with the request bytes as the sole taint source. The session / header /
/// cache-entry types must come out *discovered* — that is the server
/// workload's Table-I-style result (printed by `polar_server --taint`).
void taint_serve(TaintClassSpace& space, const ServerTypes& t,
                 std::span<const std::uint8_t> request);

}  // namespace polar::server
