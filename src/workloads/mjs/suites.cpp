#include "workloads/mjs/suites.h"

namespace polar::mjs {

namespace {

std::vector<MjsBench> build() {
  std::vector<MjsBench> v;
  const auto add = [&](const char* suite, const char* name,
                       const char* script, double expected) {
    v.push_back({suite, name, script, expected});
  };

  // ======================================================== sunspider-like
  add("sunspider", "3d-morph", R"JS(
var sum = 0;
var i = 0;
while (i < 12) {
  var j = 0;
  while (j < 600) {
    sum = sum + sin(i * 0.1 + j * 0.05);
    j = j + 1;
  }
  i = i + 1;
}
result = floor(sum * 1000);
)JS",
      -1);

  add("sunspider", "access-binary-trees", R"JS(
function makeTree(depth) {
  if (depth <= 0) { return {item: 1, l: null, r: null}; }
  return {item: depth, l: makeTree(depth - 1), r: makeTree(depth - 1)};
}
function checkTree(t) {
  if (t.l == null) { return t.item; }
  return t.item + checkTree(t.l) - checkTree(t.r);
}
var total = 0;
for (var d = 2; d <= 8; d = d + 1) {
  total = total + checkTree(makeTree(d));
}
result = total;
)JS",
      35);

  add("sunspider", "access-fannkuch", R"JS(
var n = 7;
var perm = [];
var perm1 = [];
var count = [];
for (var i = 0; i < n; i = i + 1) { perm1[i] = i; count[i] = 0; }
var maxFlips = 0;
var r = n;
var done = false;
while (!done) {
  while (r != 1) { count[r - 1] = r; r = r - 1; }
  for (var i = 0; i < n; i = i + 1) { perm[i] = perm1[i]; }
  var flips = 0;
  var k = perm[0];
  while (k != 0) {
    var i2 = 0;
    var j2 = k;
    while (i2 < j2) {
      var t = perm[i2]; perm[i2] = perm[j2]; perm[j2] = t;
      i2 = i2 + 1; j2 = j2 - 1;
    }
    flips = flips + 1;
    k = perm[0];
  }
  if (flips > maxFlips) { maxFlips = flips; }
  var advanced = false;
  while (!advanced) {
    if (r == n) { done = true; advanced = true; }
    else {
      var p0 = perm1[0];
      for (var i3 = 0; i3 < r; i3 = i3 + 1) { perm1[i3] = perm1[i3 + 1]; }
      perm1[r] = p0;
      count[r] = count[r] - 1;
      if (count[r] > 0) { advanced = true; }
      else { r = r + 1; }
    }
  }
}
result = maxFlips;
)JS",
      16);

  add("sunspider", "access-nbody", R"JS(
var bodies = [
  {x: 0, y: 0, vx: 0, vy: 0, m: 39.47},
  {x: 4.84, y: -1.16, vx: 0.6, vy: 2.81, m: 0.037},
  {x: 8.34, y: 4.12, vx: -1.01, vy: 1.82, m: 0.011},
  {x: 12.89, y: -15.11, vx: 1.08, vy: 0.86, m: 0.0017}
];
var dt = 0.01;
for (var step = 0; step < 400; step = step + 1) {
  for (var i = 0; i < 4; i = i + 1) {
    var b = bodies[i];
    for (var j = i + 1; j < 4; j = j + 1) {
      var c = bodies[j];
      var dx = b.x - c.x;
      var dy = b.y - c.y;
      var d2 = dx * dx + dy * dy;
      var mag = dt / (d2 * sqrt(d2));
      b.vx = b.vx - dx * c.m * mag;
      b.vy = b.vy - dy * c.m * mag;
      c.vx = c.vx + dx * b.m * mag;
      c.vy = c.vy + dy * b.m * mag;
    }
  }
  for (var i = 0; i < 4; i = i + 1) {
    var b2 = bodies[i];
    b2.x = b2.x + dt * b2.vx;
    b2.y = b2.y + dt * b2.vy;
  }
}
var e = 0;
for (var i = 0; i < 4; i = i + 1) {
  var b3 = bodies[i];
  e = e + 0.5 * b3.m * (b3.vx * b3.vx + b3.vy * b3.vy);
}
result = floor(e * 100000);
)JS",
      -1);

  add("sunspider", "bitops-3bit-bits-in-byte", R"JS(
function bits(b) {
  var c = 0;
  while (b != 0) { c = c + (b & 1); b = b >> 1; }
  return c;
}
var sum = 0;
for (var round = 0; round < 30; round = round + 1) {
  for (var b = 0; b < 256; b = b + 1) { sum = sum + bits(b); }
}
result = sum;
)JS",
      30720);

  add("sunspider", "bitops-nsieve-bits", R"JS(
var n = 4000;
var flags = [];
var count = 0;
for (var i = 0; i <= n; i = i + 1) { flags[i] = true; }
for (var i = 2; i <= n; i = i + 1) {
  if (flags[i]) {
    count = count + 1;
    for (var k = i + i; k <= n; k = k + i) { flags[k] = false; }
  }
}
result = count;
)JS",
      550);

  add("sunspider", "controlflow-recursive", R"JS(
function ack(m, n) {
  if (m == 0) { return n + 1; }
  if (n == 0) { return ack(m - 1, 1); }
  return ack(m - 1, ack(m, n - 1));
}
function fib(n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
result = ack(2, 6) + fib(16);
)JS",
      1002);

  add("sunspider", "math-cordic", R"JS(
var angle = 0.6072529350;
var x = 0.6072529350;
var y = 0;
var target = 0.5;
var total = 0;
for (var round = 0; round < 8000; round = round + 1) {
  var cx = 1;
  var cy = 0;
  var a = target;
  var p = 0.7853981633;
  for (var step = 0; step < 12; step = step + 1) {
    var nx = 0; var ny = 0;
    var shift = pow(2, -step);
    if (a > 0) { nx = cx - cy * shift; ny = cy + cx * shift; a = a - p; }
    else { nx = cx + cy * shift; ny = cy - cx * shift; a = a + p; }
    cx = nx; cy = ny;
    p = p * 0.5;
  }
  total = total + cy;
}
result = floor(total);
)JS",
      -1);

  add("sunspider", "math-partial-sums", R"JS(
var a1 = 0; var a2 = 0; var a3 = 0; var a4 = 0;
var twothirds = 2.0 / 3.0;
for (var k = 1; k <= 3000; k = k + 1) {
  var k2 = k * k;
  var k3 = k2 * k;
  a1 = a1 + pow(twothirds, k - 1);
  a2 = a2 + 1 / (k3 * sin(k) * sin(k));
  a3 = a3 + 1 / k2;
  a4 = a4 + 1 / k3;
}
result = floor((a1 + a2 + a3 + a4) * 1000);
)JS",
      -1);

  add("sunspider", "string-fasta", R"JS(
var codes = [97, 99, 103, 116];
var seed = 42;
var out = 0;
for (var i = 0; i < 6000; i = i + 1) {
  seed = (seed * 3877 + 29573) % 139968;
  var c = codes[floor(4 * seed / 139968)];
  out = (out * 31 + c) % 1000000007;
}
result = out;
)JS",
      -1);

  // ========================================================== kraken-like
  add("kraken", "ai-astar", R"JS(
var w = 40;
var h = 40;
var blocked = [];
var seed = 7;
for (var i = 0; i < w * h; i = i + 1) {
  seed = (seed * 1103515245 + 12345) % 2147483648;
  blocked[i] = (seed % 100) < 20;
}
blocked[0] = false;
blocked[w * h - 1] = false;
var dist = [];
for (var i = 0; i < w * h; i = i + 1) { dist[i] = 1000000; }
dist[0] = 0;
var frontier = [0];
var head = 0;
while (head < len(frontier)) {
  var cur = frontier[head];
  head = head + 1;
  var cx = cur % w;
  var cy = floor(cur / w);
  var d = dist[cur] + 1;
  var moves = [cur - 1, cur + 1, cur - w, cur + w];
  var okm = [cx > 0, cx < w - 1, cy > 0, cy < h - 1];
  for (var m = 0; m < 4; m = m + 1) {
    if (okm[m]) {
      var nxt = moves[m];
      if (!blocked[nxt] && d < dist[nxt]) {
        dist[nxt] = d;
        push(frontier, nxt);
      }
    }
  }
}
result = dist[w * h - 1];
)JS",
      -1);

  add("kraken", "audio-dft", R"JS(
var n = 256;
var signal = [];
for (var i = 0; i < n; i = i + 1) {
  signal[i] = sin(i * 0.3) + 0.5 * sin(i * 0.7);
}
var power = 0;
for (var k = 0; k < 64; k = k + 1) {
  var re = 0;
  var im = 0;
  for (var i = 0; i < n; i = i + 1) {
    var ang = 6.283185307179586 * k * i / n;
    re = re + signal[i] * cos(ang);
    im = im - signal[i] * sin(ang);
  }
  power = power + re * re + im * im;
}
result = floor(power);
)JS",
      -1);

  add("kraken", "audio-oscillator", R"JS(
var sum = 0;
var phase = 0;
for (var i = 0; i < 40000; i = i + 1) {
  phase = phase + 0.01;
  if (phase > 1) { phase = phase - 2; }
  sum = sum + phase * phase;
}
result = floor(sum);
)JS",
      -1);

  add("kraken", "imaging-desaturate", R"JS(
var npix = 4096;
var data = [];
var seed = 3;
for (var i = 0; i < npix * 3; i = i + 1) {
  seed = (seed * 1103515245 + 12345) % 2147483648;
  data[i] = seed % 256;
}
for (var p = 0; p < npix; p = p + 1) {
  var r = data[p * 3];
  var g = data[p * 3 + 1];
  var b = data[p * 3 + 2];
  var gray = floor((r * 30 + g * 59 + b * 11) / 100);
  data[p * 3] = gray;
  data[p * 3 + 1] = gray;
  data[p * 3 + 2] = gray;
}
var check = 0;
for (var i = 0; i < npix * 3; i = i + 1) {
  check = (check * 31 + data[i]) % 1000000007;
}
result = check;
)JS",
      -1);

  add("kraken", "json-parse-financial", R"JS(
var records = [];
var seed = 11;
for (var i = 0; i < 600; i = i + 1) {
  seed = (seed * 1103515245 + 12345) % 2147483648;
  push(records, {id: i, price: seed % 10000, qty: (seed >> 8) % 100,
                 open: seed % 2 == 0});
}
var notional = 0;
var openCount = 0;
for (var i = 0; i < len(records); i = i + 1) {
  var rec = records[i];
  notional = notional + rec.price * rec.qty;
  if (rec.open) { openCount = openCount + 1; }
}
result = notional + openCount;
)JS",
      -1);

  add("kraken", "stanford-crypto-pbkdf2", R"JS(
function prf(key, block) {
  var h = key;
  for (var r = 0; r < 8; r = r + 1) {
    h = ((h << 5) + h + block + r) % 4294967296;
    h = (h ^ (h >> 13)) % 4294967296;
  }
  return h;
}
var derived = 0;
for (var block = 0; block < 600; block = block + 1) {
  var u = prf(1486453, block);
  for (var iter = 0; iter < 40; iter = iter + 1) {
    u = prf(u, block);
    derived = (derived ^ u) % 4294967296;
  }
}
result = derived;
)JS",
      -1);

  // ========================================================== octane-like
  add("octane", "richards", R"JS(
var queue = [];
var seed = 5;
var handled = 0;
var idle = 0;
for (var i = 0; i < 40; i = i + 1) {
  push(queue, {kind: i % 4, pri: i % 7, work: 12});
}
var head = 0;
while (head < len(queue) && handled < 12000) {
  var task = queue[head];
  head = head + 1;
  handled = handled + 1;
  if (task.work > 0) {
    task.work = task.work - 1;
    seed = (seed * 1103515245 + 12345) % 2147483648;
    if (task.kind == 0) { idle = idle + 1; }
    if (task.work > 0) {
      push(queue, {kind: task.kind, pri: task.pri, work: task.work});
    }
  }
}
result = handled + idle;
)JS",
      600);

  add("octane", "deltablue", R"JS(
var vars = [];
for (var i = 0; i < 30; i = i + 1) { push(vars, {value: i, stay: i % 3 == 0}); }
var changes = 0;
for (var round = 0; round < 400; round = round + 1) {
  for (var i = 1; i < len(vars); i = i + 1) {
    var a = vars[i - 1];
    var b = vars[i];
    if (!b.stay) {
      var want = a.value + 1;
      if (b.value != want) { b.value = want; changes = changes + 1; }
    }
  }
}
var sum = 0;
for (var i = 0; i < len(vars); i = i + 1) { sum = sum + vars[i].value; }
result = sum + changes;
)JS",
      -1);

  add("octane", "splay", R"JS(
function insert(tree, key) {
  if (tree == null) { return {key: key, l: null, r: null}; }
  if (key < tree.key) { tree.l = insert(tree.l, key); }
  else { tree.r = insert(tree.r, key); }
  return tree;
}
function depthSum(tree, d) {
  if (tree == null) { return 0; }
  return d + depthSum(tree.l, d + 1) + depthSum(tree.r, d + 1);
}
var root = null;
var seed = 17;
for (var i = 0; i < 700; i = i + 1) {
  seed = (seed * 1103515245 + 12345) % 2147483648;
  root = insert(root, seed % 10000);
}
result = depthSum(root, 0) % 1000000;
)JS",
      -1);

  add("octane", "navier-stokes", R"JS(
var n = 24;
var grid = [];
for (var i = 0; i < n * n; i = i + 1) { grid[i] = (i * 7) % 13; }
for (var iter = 0; iter < 60; iter = iter + 1) {
  for (var y = 1; y < n - 1; y = y + 1) {
    for (var x = 1; x < n - 1; x = x + 1) {
      var at = y * n + x;
      grid[at] = (grid[at] + grid[at - 1] + grid[at + 1] +
                  grid[at - n] + grid[at + n]) / 5;
    }
  }
}
var sum = 0;
for (var i = 0; i < n * n; i = i + 1) { sum = sum + grid[i]; }
result = floor(sum);
)JS",
      -1);

  add("octane", "crypto", R"JS(
var mod = 2147483647;
var value = 1;
var digest = 0;
for (var i = 0; i < 30000; i = i + 1) {
  value = (value * 16807) % mod;
  digest = (digest ^ value) % 4294967296;
}
result = digest;
)JS",
      -1);

  // ======================================================= jetstream-like
  add("jetstream", "bigfib", R"JS(
function fib(n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
result = fib(18);
)JS",
      2584);

  add("jetstream", "towers", R"JS(
var moves = 0;
function hanoi(n, from, to, via) {
  if (n == 0) { return 0; }
  hanoi(n - 1, from, via, to);
  moves = moves + 1;
  hanoi(n - 1, via, to, from);
  return moves;
}
hanoi(12, 1, 3, 2);
result = moves;
)JS",
      4095);

  add("jetstream", "quicksort", R"JS(
var a = [];
var seed = 23;
var n = 1200;
for (var i = 0; i < n; i = i + 1) {
  seed = (seed * 1103515245 + 12345) % 2147483648;
  a[i] = seed % 100000;
}
function qsort(lo, hi) {
  if (lo >= hi) { return 0; }
  var pivot = a[floor((lo + hi) / 2)];
  var i = lo;
  var j = hi;
  while (i <= j) {
    while (a[i] < pivot) { i = i + 1; }
    while (a[j] > pivot) { j = j - 1; }
    if (i <= j) {
      var t = a[i]; a[i] = a[j]; a[j] = t;
      i = i + 1;
      j = j - 1;
    }
  }
  qsort(lo, j);
  qsort(i, hi);
  return 0;
}
qsort(0, n - 1);
var sorted = true;
var check = 0;
for (var i = 1; i < n; i = i + 1) {
  if (a[i - 1] > a[i]) { sorted = false; }
  check = (check * 31 + a[i]) % 1000000007;
}
if (sorted) { result = check; } else { result = -1; }
)JS",
      -1);

  add("jetstream", "hash-map", R"JS(
var map = {};
var seed = 31;
for (var i = 0; i < 900; i = i + 1) {
  seed = (seed * 1103515245 + 12345) % 2147483648;
  var bucket = "k" + (seed % 64);
  var old = map[bucket];
  if (old == null) { old = 0; }
  map[bucket] = old + 1;
}
var total = 0;
for (var b = 0; b < 64; b = b + 1) {
  var v = map["k" + b];
  if (v != null) { total = total + v; }
}
result = total;
)JS",
      900);

  add("jetstream", "float-mm", R"JS(
var n = 18;
var a = [];
var b = [];
var c = [];
for (var i = 0; i < n * n; i = i + 1) {
  a[i] = (i % 7) * 0.5;
  b[i] = (i % 5) * 0.25;
  c[i] = 0;
}
for (var rep = 0; rep < 6; rep = rep + 1) {
  for (var i = 0; i < n; i = i + 1) {
    for (var j = 0; j < n; j = j + 1) {
      var sum = 0;
      for (var k = 0; k < n; k = k + 1) {
        sum = sum + a[i * n + k] * b[k * n + j];
      }
      c[i * n + j] = sum;
    }
  }
}
var check = 0;
for (var i = 0; i < n * n; i = i + 1) { check = check + c[i]; }
result = floor(check);
)JS",
      -1);

  add("jetstream", "n-body", R"JS(
var px = [0, 1, 2, 3, 4];
var py = [0, 2, 4, 1, 3];
var vx = [0, 0, 0, 0, 0];
var vy = [0, 0, 0, 0, 0];
for (var step = 0; step < 1500; step = step + 1) {
  for (var i = 0; i < 5; i = i + 1) {
    for (var j = 0; j < 5; j = j + 1) {
      if (i != j) {
        var dx = px[j] - px[i];
        var dy = py[j] - py[i];
        var d2 = dx * dx + dy * dy + 0.1;
        var inv = 0.001 / (d2 * sqrt(d2));
        vx[i] = vx[i] + dx * inv;
        vy[i] = vy[i] + dy * inv;
      }
    }
  }
  for (var i = 0; i < 5; i = i + 1) {
    px[i] = px[i] + vx[i];
    py[i] = py[i] + vy[i];
  }
}
var e = 0;
for (var i = 0; i < 5; i = i + 1) {
  e = e + vx[i] * vx[i] + vy[i] * vy[i];
}
result = floor(e * 1000000);
)JS",
      -1);  // expected computed at test time (filled below)

  add("sunspider", "string-base64", R"JS(
var table = [];
for (var i = 0; i < 26; i = i + 1) { table[i] = 65 + i; }
for (var i = 0; i < 26; i = i + 1) { table[26 + i] = 97 + i; }
for (var i = 0; i < 10; i = i + 1) { table[52 + i] = 48 + i; }
table[62] = 43; table[63] = 47;
var seed = 9;
var digest = 0;
for (var i = 0; i < 3000; i = i + 1) {
  seed = (seed * 1103515245 + 12345) % 2147483648;
  var triple = seed % 16777216;
  var c0 = table[(triple >> 18) & 63];
  var c1 = table[(triple >> 12) & 63];
  var c2 = table[(triple >> 6) & 63];
  var c3 = table[triple & 63];
  digest = (digest * 31 + c0 + c1 + c2 + c3) % 1000000007;
}
result = digest;
)JS",
      -1);

  add("sunspider", "bitops-bitwise-and", R"JS(
var bitwiseAndValue = 4294967296;
for (var i = 0; i < 60000; i = i + 1) {
  bitwiseAndValue = bitwiseAndValue & i;
}
result = bitwiseAndValue;
)JS",
      0);

  add("kraken", "stanford-crypto-sha256-i", R"JS(
function rotr(x, n) {
  return ((x >> n) | (x << (32 - n))) % 4294967296;
}
var h0 = 1779033703;
var h1 = 3144134277;
var digest = 0;
for (var block = 0; block < 900; block = block + 1) {
  var a = h0;
  var b = h1;
  for (var round = 0; round < 16; round = round + 1) {
    var t = (a + rotr(b, 7) + block + round) % 4294967296;
    a = b;
    b = (t ^ rotr(t, 11)) % 4294967296;
  }
  h0 = (h0 + a) % 4294967296;
  h1 = (h1 + b) % 4294967296;
  digest = (h0 ^ h1) % 4294967296;
}
result = digest;
)JS",
      -1);

  add("kraken", "stanford-crypto-aes", R"JS(
var sbox = [];
for (var i = 0; i < 256; i = i + 1) {
  sbox[i] = ((i * 7) ^ (i >> 3) ^ 99) & 255;
}
var state = [1, 35, 69, 103, 137, 171, 205, 239,
             2, 36, 70, 104, 138, 172, 206, 240];
var digest = 0;
for (var round = 0; round < 2500; round = round + 1) {
  for (var i = 0; i < 16; i = i + 1) {
    state[i] = sbox[state[i]];
  }
  var t = state[0];
  for (var i = 0; i < 15; i = i + 1) { state[i] = state[i + 1] ^ (round & 255); }
  state[15] = t;
  digest = (digest * 31 + state[7]) % 1000000007;
}
result = digest;
)JS",
      -1);

  add("octane", "earley-boyer", R"JS(
// term-rewriting flavoured kernel: rewrite lists of {op, a, b} nodes
var rules = 0;
function rewrite(depth, seed) {
  if (depth == 0) { return seed % 7; }
  var node = {op: seed % 3, a: null, b: null};
  var left = rewrite(depth - 1, (seed * 31 + 1) % 65536);
  var right = rewrite(depth - 1, (seed * 17 + 5) % 65536);
  rules = rules + 1;
  if (node.op == 0) { return left + right; }
  if (node.op == 1) { return left * 2 + right; }
  return left - right;
}
var total = 0;
for (var i = 0; i < 60; i = i + 1) {
  total = total + rewrite(7, i * 131);
}
result = total + rules;
)JS",
      -1);

  add("jetstream", "container", R"JS(
var deque = [];
var head = 0;
var digest = 0;
var seed = 3;
for (var op = 0; op < 15000; op = op + 1) {
  seed = (seed * 1103515245 + 12345) % 2147483648;
  if (seed % 3 == 0 || head >= len(deque)) {
    push(deque, seed % 1000);
  } else {
    digest = (digest * 31 + deque[head]) % 1000000007;
    head = head + 1;
  }
}
result = digest;
)JS",
      -1);

  return v;
}

}  // namespace

const std::vector<MjsBench>& benchmark_suites() {
  static const std::vector<MjsBench> kSuites = build();
  return kSuites;
}

bool suite_is_score(const std::string& suite) {
  return suite == "octane" || suite == "jetstream";
}

}  // namespace polar::mjs
