// The four JavaScript benchmark suites of the paper's Table II / Fig. 7,
// rewritten as mjs scripts: Sunspider-like and Kraken-like report times
// (lower is better), Octane-like and JetStream-like report scores (higher
// is better), matching the original suites' conventions.
#pragma once

#include <string>
#include <vector>

namespace polar::mjs {

struct MjsBench {
  std::string suite;   // "sunspider" | "kraken" | "octane" | "jetstream"
  std::string name;
  std::string script;  // assigns the global `result`
  double expected;     // known-correct result for the fixed parameters
};

/// All benchmark kernels across the four suites.
const std::vector<MjsBench>& benchmark_suites();

/// Whether a suite reports a score (higher is better) rather than a time.
bool suite_is_score(const std::string& suite);

}  // namespace polar::mjs
