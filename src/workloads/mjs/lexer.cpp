#include "workloads/mjs/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

namespace polar::mjs {

namespace {

const std::unordered_map<std::string_view, Tok>& keywords() {
  static const std::unordered_map<std::string_view, Tok> kMap{
      {"var", Tok::kVar},       {"function", Tok::kFunction},
      {"if", Tok::kIf},         {"else", Tok::kElse},
      {"while", Tok::kWhile},   {"for", Tok::kFor},
      {"return", Tok::kReturn}, {"true", Tok::kTrue},
      {"false", Tok::kFalse},   {"null", Tok::kNull},
      {"break", Tok::kBreak},
  };
  return kMap;
}

}  // namespace

bool lex(std::string_view src, std::vector<Token>& out, std::string& error) {
  out.clear();
  std::size_t i = 0;
  std::uint32_t line = 1;
  const auto peek = [&](std::size_t ahead = 0) -> char {
    return i + ahead < src.size() ? src[i + ahead] : '\0';
  };
  const auto push = [&](Tok kind) {
    Token t;
    t.kind = kind;
    t.line = line;
    out.push_back(std::move(t));
  };

  while (i < src.size()) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))) != 0)) {
      char* end = nullptr;
      const double v = std::strtod(src.data() + i, &end);
      Token t;
      t.kind = Tok::kNumber;
      t.number = v;
      t.line = line;
      out.push_back(std::move(t));
      i = static_cast<std::size_t>(end - src.data());
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      std::size_t start = i;
      while (i < src.size() &&
             (std::isalnum(static_cast<unsigned char>(src[i])) != 0 ||
              src[i] == '_')) {
        ++i;
      }
      const std::string_view word = src.substr(start, i - start);
      const auto it = keywords().find(word);
      Token t;
      t.kind = it == keywords().end() ? Tok::kIdent : it->second;
      t.text = std::string(word);
      t.line = line;
      out.push_back(std::move(t));
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      std::string text;
      while (i < src.size() && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < src.size()) {
          ++i;
          switch (src[i]) {
            case 'n': text.push_back('\n'); break;
            case 't': text.push_back('\t'); break;
            default: text.push_back(src[i]); break;
          }
        } else {
          text.push_back(src[i]);
        }
        ++i;
      }
      if (i >= src.size()) {
        error = "unterminated string at line " + std::to_string(line);
        return false;
      }
      ++i;  // closing quote
      Token t;
      t.kind = Tok::kString;
      t.text = std::move(text);
      t.line = line;
      out.push_back(std::move(t));
      continue;
    }
    // operators / punctuation
    ++i;
    switch (c) {
      case '(': push(Tok::kLParen); break;
      case ')': push(Tok::kRParen); break;
      case '{': push(Tok::kLBrace); break;
      case '}': push(Tok::kRBrace); break;
      case '[': push(Tok::kLBracket); break;
      case ']': push(Tok::kRBracket); break;
      case ',': push(Tok::kComma); break;
      case ';': push(Tok::kSemi); break;
      case ':': push(Tok::kColon); break;
      case '.': push(Tok::kDot); break;
      case '+': push(Tok::kPlus); break;
      case '-': push(Tok::kMinus); break;
      case '*': push(Tok::kStar); break;
      case '/': push(Tok::kSlash); break;
      case '%': push(Tok::kPercent); break;
      case '^': push(Tok::kCaret); break;
      case '=':
        if (peek() == '=') {
          ++i;
          push(Tok::kEq);
        } else {
          push(Tok::kAssign);
        }
        break;
      case '!':
        if (peek() == '=') {
          ++i;
          push(Tok::kNe);
        } else {
          push(Tok::kNot);
        }
        break;
      case '<':
        if (peek() == '=') {
          ++i;
          push(Tok::kLe);
        } else if (peek() == '<') {
          ++i;
          push(Tok::kShl);
        } else {
          push(Tok::kLt);
        }
        break;
      case '>':
        if (peek() == '=') {
          ++i;
          push(Tok::kGe);
        } else if (peek() == '>') {
          ++i;
          push(Tok::kShr);
        } else {
          push(Tok::kGt);
        }
        break;
      case '&':
        if (peek() == '&') {
          ++i;
          push(Tok::kAndAnd);
        } else {
          push(Tok::kAmp);
        }
        break;
      case '|':
        if (peek() == '|') {
          ++i;
          push(Tok::kOrOr);
        } else {
          push(Tok::kPipe);
        }
        break;
      default:
        error = std::string("unexpected character '") + c + "' at line " +
                std::to_string(line);
        return false;
    }
  }
  push(Tok::kEof);
  return true;
}

}  // namespace polar::mjs
