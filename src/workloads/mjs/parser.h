// mjs recursive-descent / precedence-climbing parser.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "workloads/mjs/ast.h"

namespace polar::mjs {

/// Parses `source` into a Program. On failure returns std::nullopt and
/// fills `error` with a line-tagged message.
std::optional<Program> parse(std::string_view source, std::string& error);

}  // namespace polar::mjs
