// mjs — a small JavaScript-subset engine standing in for ChakraCore in the
// paper's evaluation (§V-B, Table II, Fig. 7). This file: the lexer.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace polar::mjs {

enum class Tok : std::uint8_t {
  kEof, kNumber, kString, kIdent,
  // keywords
  kVar, kFunction, kIf, kElse, kWhile, kFor, kReturn, kTrue, kFalse, kNull,
  kBreak,
  // punctuation / operators
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kComma, kSemi, kColon, kDot,
  kAssign, kPlus, kMinus, kStar, kSlash, kPercent,
  kLt, kLe, kGt, kGe, kEq, kNe,
  kAndAnd, kOrOr, kNot,
  kAmp, kPipe, kCaret, kShl, kShr,
};

struct Token {
  Tok kind = Tok::kEof;
  double number = 0;
  std::string text;  // ident / string payload
  std::uint32_t line = 1;
};

/// Tokenizes `source`. On error returns false and fills `error`.
bool lex(std::string_view source, std::vector<Token>& out, std::string& error);

}  // namespace polar::mjs
