#include "workloads/mjs/parser.h"

#include "workloads/mjs/lexer.h"

namespace polar::mjs {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  std::optional<Program> run(std::string& error) {
    Program prog;
    while (!at(Tok::kEof) && ok_) {
      if (at(Tok::kFunction)) {
        parse_function(prog);
      } else {
        prog.top_level.push_back(statement());
      }
    }
    if (!ok_) {
      error = error_;
      return std::nullopt;
    }
    return prog;
  }

 private:
  // ------------------------------------------------------------- helpers
  [[nodiscard]] const Token& cur() const { return toks_[pos_]; }
  [[nodiscard]] bool at(Tok k) const { return cur().kind == k; }

  bool accept(Tok k) {
    if (!at(k)) return false;
    ++pos_;
    return true;
  }

  void expect(Tok k, const char* what) {
    if (!accept(k)) fail(std::string("expected ") + what);
  }

  void fail(std::string why) {
    if (!ok_) return;
    ok_ = false;
    error_ = why + " at line " + std::to_string(cur().line);
  }

  Token take() { return toks_[pos_++]; }

  // ------------------------------------------------------------ functions
  void parse_function(Program& prog) {
    expect(Tok::kFunction, "'function'");
    FunctionDecl fn;
    if (!at(Tok::kIdent)) {
      fail("expected function name");
      return;
    }
    fn.name = take().text;
    expect(Tok::kLParen, "'('");
    while (ok_ && !at(Tok::kRParen)) {
      if (!at(Tok::kIdent)) {
        fail("expected parameter name");
        return;
      }
      fn.params.push_back(take().text);
      if (!accept(Tok::kComma)) break;
    }
    expect(Tok::kRParen, "')'");
    expect(Tok::kLBrace, "'{'");
    while (ok_ && !at(Tok::kRBrace)) fn.body.push_back(statement());
    expect(Tok::kRBrace, "'}'");
    prog.functions.push_back(std::move(fn));
  }

  // ------------------------------------------------------------ statements
  StmtPtr statement() {
    auto s = std::make_unique<Stmt>();
    if (!ok_) return s;

    if (accept(Tok::kVar)) {
      s->kind = StmtKind::kVar;
      if (!at(Tok::kIdent)) {
        fail("expected variable name");
        return s;
      }
      s->name = take().text;
      if (accept(Tok::kAssign)) s->value = expression();
      accept(Tok::kSemi);
      return s;
    }
    if (accept(Tok::kIf)) {
      s->kind = StmtKind::kIf;
      expect(Tok::kLParen, "'('");
      s->value = expression();
      expect(Tok::kRParen, "')'");
      block_or_single(s->body);
      if (accept(Tok::kElse)) block_or_single(s->else_body);
      return s;
    }
    if (accept(Tok::kWhile)) {
      s->kind = StmtKind::kWhile;
      expect(Tok::kLParen, "'('");
      s->value = expression();
      expect(Tok::kRParen, "')'");
      block_or_single(s->body);
      return s;
    }
    if (accept(Tok::kFor)) {
      s->kind = StmtKind::kFor;
      expect(Tok::kLParen, "'('");
      if (!at(Tok::kSemi)) s->for_init = statement();  // consumes its ';'
      else accept(Tok::kSemi);
      if (!at(Tok::kSemi)) s->value = expression();
      expect(Tok::kSemi, "';'");
      if (!at(Tok::kRParen)) s->for_step = simple_statement_no_semi();
      expect(Tok::kRParen, "')'");
      block_or_single(s->body);
      return s;
    }
    if (accept(Tok::kReturn)) {
      s->kind = StmtKind::kReturn;
      if (!at(Tok::kSemi) && !at(Tok::kRBrace)) s->value = expression();
      accept(Tok::kSemi);
      return s;
    }
    if (accept(Tok::kBreak)) {
      s->kind = StmtKind::kBreak;
      accept(Tok::kSemi);
      return s;
    }
    if (at(Tok::kLBrace)) {
      s->kind = StmtKind::kBlock;
      block_or_single(s->body);
      return s;
    }
    s = simple_statement_no_semi();
    accept(Tok::kSemi);
    return s;
  }

  /// Assignment or expression statement, without consuming a ';' (shared
  /// by normal statements and for-steps).
  StmtPtr simple_statement_no_semi() {
    auto s = std::make_unique<Stmt>();
    ExprPtr e = expression();
    if (accept(Tok::kAssign)) {
      s->kind = StmtKind::kAssign;
      switch (e->kind) {
        case ExprKind::kIdent:
          s->target = TargetKind::kName;
          s->name = e->text;
          break;
        case ExprKind::kMember:
          s->target = TargetKind::kMember;
          s->name = e->text;
          s->object = std::move(e->lhs);
          break;
        case ExprKind::kIndex:
          s->target = TargetKind::kIndex;
          s->object = std::move(e->lhs);
          s->index = std::move(e->rhs);
          break;
        default:
          fail("invalid assignment target");
          return s;
      }
      s->value = expression();
      return s;
    }
    s->kind = StmtKind::kExpr;
    s->value = std::move(e);
    return s;
  }

  void block_or_single(std::vector<StmtPtr>& into) {
    if (accept(Tok::kLBrace)) {
      while (ok_ && !at(Tok::kRBrace)) into.push_back(statement());
      expect(Tok::kRBrace, "'}'");
    } else {
      into.push_back(statement());
    }
  }

  // ----------------------------------------------------------- expressions
  static int precedence(Tok k) {
    switch (k) {
      case Tok::kOrOr: return 1;
      case Tok::kAndAnd: return 2;
      case Tok::kPipe: return 3;
      case Tok::kCaret: return 4;
      case Tok::kAmp: return 5;
      case Tok::kEq:
      case Tok::kNe: return 6;
      case Tok::kLt:
      case Tok::kLe:
      case Tok::kGt:
      case Tok::kGe: return 7;
      case Tok::kShl:
      case Tok::kShr: return 8;
      case Tok::kPlus:
      case Tok::kMinus: return 9;
      case Tok::kStar:
      case Tok::kSlash:
      case Tok::kPercent: return 10;
      default: return -1;
    }
  }

  static BinOp to_binop(Tok k) {
    switch (k) {
      case Tok::kPlus: return BinOp::kAdd;
      case Tok::kMinus: return BinOp::kSub;
      case Tok::kStar: return BinOp::kMul;
      case Tok::kSlash: return BinOp::kDiv;
      case Tok::kPercent: return BinOp::kMod;
      case Tok::kLt: return BinOp::kLt;
      case Tok::kLe: return BinOp::kLe;
      case Tok::kGt: return BinOp::kGt;
      case Tok::kGe: return BinOp::kGe;
      case Tok::kEq: return BinOp::kEq;
      case Tok::kNe: return BinOp::kNe;
      case Tok::kAndAnd: return BinOp::kAnd;
      case Tok::kOrOr: return BinOp::kOr;
      case Tok::kAmp: return BinOp::kBitAnd;
      case Tok::kPipe: return BinOp::kBitOr;
      case Tok::kCaret: return BinOp::kBitXor;
      case Tok::kShl: return BinOp::kShl;
      case Tok::kShr: return BinOp::kShr;
      default: return BinOp::kAdd;
    }
  }

  ExprPtr expression(int min_prec = 0) {
    ExprPtr lhs = unary();
    while (ok_) {
      const int prec = precedence(cur().kind);
      if (prec < min_prec || prec < 0) break;
      const Tok op = take().kind;
      ExprPtr rhs = expression(prec + 1);
      auto bin = std::make_unique<Expr>();
      bin->kind = ExprKind::kBinary;
      bin->op = to_binop(op);
      bin->lhs = std::move(lhs);
      bin->rhs = std::move(rhs);
      lhs = std::move(bin);
    }
    return lhs;
  }

  ExprPtr unary() {
    if (accept(Tok::kMinus)) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnary;
      e->unary_not = false;
      e->lhs = unary();
      return e;
    }
    if (accept(Tok::kNot)) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnary;
      e->unary_not = true;
      e->lhs = unary();
      return e;
    }
    return postfix();
  }

  ExprPtr postfix() {
    ExprPtr e = primary();
    while (ok_) {
      if (accept(Tok::kDot)) {
        if (!at(Tok::kIdent)) {
          fail("expected member name");
          return e;
        }
        auto m = std::make_unique<Expr>();
        m->kind = ExprKind::kMember;
        m->text = take().text;
        m->lhs = std::move(e);
        e = std::move(m);
      } else if (accept(Tok::kLBracket)) {
        auto ix = std::make_unique<Expr>();
        ix->kind = ExprKind::kIndex;
        ix->lhs = std::move(e);
        ix->rhs = expression();
        expect(Tok::kRBracket, "']'");
        e = std::move(ix);
      } else if (at(Tok::kLParen) && e->kind == ExprKind::kIdent) {
        accept(Tok::kLParen);
        auto call = std::make_unique<Expr>();
        call->kind = ExprKind::kCall;
        call->text = e->text;
        while (ok_ && !at(Tok::kRParen)) {
          call->args.push_back(expression());
          if (!accept(Tok::kComma)) break;
        }
        expect(Tok::kRParen, "')'");
        e = std::move(call);
      } else {
        break;
      }
    }
    return e;
  }

  ExprPtr primary() {
    auto e = std::make_unique<Expr>();
    if (at(Tok::kNumber)) {
      e->kind = ExprKind::kNumber;
      e->number = take().number;
      return e;
    }
    if (at(Tok::kString)) {
      e->kind = ExprKind::kString;
      e->text = take().text;
      return e;
    }
    if (accept(Tok::kTrue)) {
      e->kind = ExprKind::kBool;
      e->boolean = true;
      return e;
    }
    if (accept(Tok::kFalse)) {
      e->kind = ExprKind::kBool;
      e->boolean = false;
      return e;
    }
    if (accept(Tok::kNull)) {
      e->kind = ExprKind::kNull;
      return e;
    }
    if (at(Tok::kIdent)) {
      e->kind = ExprKind::kIdent;
      e->text = take().text;
      return e;
    }
    if (accept(Tok::kLParen)) {
      e = expression();
      expect(Tok::kRParen, "')'");
      return e;
    }
    if (accept(Tok::kLBrace)) {  // object literal
      e->kind = ExprKind::kObjectLit;
      while (ok_ && !at(Tok::kRBrace)) {
        if (!at(Tok::kIdent) && !at(Tok::kString)) {
          fail("expected property name");
          return e;
        }
        std::string key = take().text;
        expect(Tok::kColon, "':'");
        e->props.emplace_back(std::move(key), expression());
        if (!accept(Tok::kComma)) break;
      }
      expect(Tok::kRBrace, "'}'");
      return e;
    }
    if (accept(Tok::kLBracket)) {  // array literal
      e->kind = ExprKind::kArrayLit;
      while (ok_ && !at(Tok::kRBracket)) {
        e->args.push_back(expression());
        if (!accept(Tok::kComma)) break;
      }
      expect(Tok::kRBracket, "']'");
      return e;
    }
    fail("unexpected token");
    return e;
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  bool ok_ = true;
  std::string error_;
};

}  // namespace

std::optional<Program> parse(std::string_view source, std::string& error) {
  std::vector<Token> tokens;
  if (!lex(source, tokens, error)) return std::nullopt;
  return Parser(std::move(tokens)).run(error);
}

}  // namespace polar::mjs
