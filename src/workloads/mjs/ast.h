// mjs AST. Plain owned trees; the engine-internal *runtime* objects are
// what POLaR randomizes, not the AST.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace polar::mjs {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

enum class ExprKind : std::uint8_t {
  kNumber, kString, kBool, kNull, kIdent,
  kBinary, kUnary, kCall, kMember, kIndex,
  kObjectLit, kArrayLit,
};

enum class BinOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kMod,
  kLt, kLe, kGt, kGe, kEq, kNe,
  kAnd, kOr,  // short-circuit
  kBitAnd, kBitOr, kBitXor, kShl, kShr,
};

struct Expr {
  ExprKind kind = ExprKind::kNull;
  double number = 0;
  bool boolean = false;
  std::string text;  // ident name / string literal / member name
  BinOp op = BinOp::kAdd;
  bool unary_not = false;  // for kUnary: true '!' false '-'
  ExprPtr lhs;
  ExprPtr rhs;
  std::vector<ExprPtr> args;                         // call args / array items
  std::vector<std::pair<std::string, ExprPtr>> props;  // object literal
};

enum class StmtKind : std::uint8_t {
  kVar, kAssign, kExpr, kIf, kWhile, kFor, kReturn, kBlock, kBreak,
};

/// Assignment targets: name / obj.member / obj[index].
enum class TargetKind : std::uint8_t { kName, kMember, kIndex };

struct Stmt {
  StmtKind kind = StmtKind::kExpr;
  std::string name;  // var name / assign target name / member name
  TargetKind target = TargetKind::kName;
  ExprPtr object;  // assign target base for member/index
  ExprPtr index;
  ExprPtr value;  // var init / assign rhs / expr / condition for if-while /
                  // return value
  std::vector<StmtPtr> body;       // if-then / while / for / block
  std::vector<StmtPtr> else_body;  // if-else
  StmtPtr for_init;                // for(init; cond=value; step)
  StmtPtr for_step;
};

struct FunctionDecl {
  std::string name;
  std::vector<std::string> params;
  std::vector<StmtPtr> body;
};

struct Program {
  std::vector<FunctionDecl> functions;
  std::vector<StmtPtr> top_level;
};

}  // namespace polar::mjs
