#include "workloads/mjs/engine.h"

namespace polar::mjs {

MjsTypes register_types(TypeRegistry& reg) {
  // Names follow the ChakraCore classes the paper's Table I reports for
  // the engine (Js::FunctionBody, JsUtil::CharacterBuffer, ...).
  MjsTypes t;
  t.dynamic_object = TypeBuilder(reg, "mjs.Js::DynamicObject")
                         .field<std::uint32_t>("type_id")
                         .field<std::uint32_t>("slot_count")
                         .field<std::uint64_t>("aux_slots")
                         .fn_ptr("entry_point")
                         .build();
  t.array_object = TypeBuilder(reg, "mjs.Js::JavascriptArray")
                       .field<std::uint32_t>("length")
                       .field<std::uint64_t>("head_segment")
                       .field<std::uint32_t>("flags")
                       .build();
  t.string_buffer = TypeBuilder(reg, "mjs.JsUtil::CharacterBuffer")
                        .field<std::uint64_t>("hash")
                        .field<std::uint32_t>("char_length")
                        .ptr("buffer")
                        .build();
  t.function_body = TypeBuilder(reg, "mjs.Js::FunctionBody")
                        .field<std::uint32_t>("function_id")
                        .field<std::uint32_t>("in_param_count")
                        .field<std::uint64_t>("call_count")
                        .fn_ptr("original_entry_point")
                        .build();
  t.property_record = TypeBuilder(reg, "mjs.Js::PropertyRecord")
                          .field<std::uint64_t>("hash")
                          .field<std::uint32_t>("pid")
                          .build();
  return t;
}

}  // namespace polar::mjs
