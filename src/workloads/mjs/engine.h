// mjs engine — tree-walking interpreter whose ENGINE-INTERNAL runtime
// structures (dynamic objects, arrays, string buffers, function bodies)
// are POLaR-managed, mirroring how the paper applies POLaR to ChakraCore:
// the script sees identical semantics, while every engine object the
// script causes to exist gets a per-allocation randomized layout.
//
// Like ChakraCore's recycler, the engine frees script-reachable objects in
// bulk (destruction), so steady-state work is member access rather than
// alloc/free — the paper's explanation for the ~1% JS overhead (§V-B).
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/space.h"
#include "support/hash.h"
#include "workloads/mjs/ast.h"
#include "workloads/mjs/parser.h"

namespace polar::mjs {

struct MjsTypes {
  TypeId dynamic_object;  // Js::DynamicObject
  TypeId array_object;    // Js::JavascriptArray
  TypeId string_buffer;   // JsUtil::CharacterBuffer
  TypeId function_body;   // Js::FunctionBody
  TypeId property_record; // Js::PropertyRecord
};

MjsTypes register_types(TypeRegistry& registry);

class EngineError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct Value {
  enum class T : std::uint8_t { kNum, kBool, kNull, kStr, kObj, kArr };
  T t = T::kNull;
  double num = 0;
  std::uint32_t ref = 0;

  static Value number(double v) { return {T::kNum, v, 0}; }
  static Value boolean(bool b) { return {T::kBool, b ? 1.0 : 0.0, 0}; }
  static Value null() { return {}; }
};

template <ObjectSpace S>
class Engine {
 public:
  Engine(S& space, const MjsTypes& types) : space_(&space), types_(types) {}

  ~Engine() {
    for (void* p : managed_objects_) space_->free_object(p, types_.dynamic_object);
    for (void* p : managed_arrays_) space_->free_object(p, types_.array_object);
    for (void* p : managed_strings_) space_->free_object(p, types_.string_buffer);
    for (void* p : managed_functions_) space_->free_object(p, types_.function_body);
    for (auto& [hash, rec] : property_records_) {
      space_->free_object(rec, types_.property_record);
    }
  }

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Parses and runs a script; returns the final value of the global
  /// `result`, which every benchmark script assigns.
  Value run(std::string_view source, std::uint64_t fuel = 500'000'000) {
    std::string error;
    auto prog = parse(source, error);
    if (!prog.has_value()) throw EngineError("parse error: " + error);
    fuel_ = fuel;
    program_ = std::move(*prog);
    functions_by_name_.clear();
    for (std::size_t i = 0; i < program_.functions.size(); ++i) {
      functions_by_name_[program_.functions[i].name] = i;
      void* body = space_->alloc(types_.function_body);
      space_->store(body, types_.function_body, 0,
                    static_cast<std::uint32_t>(i));
      space_->store(body, types_.function_body, 1,
                    static_cast<std::uint32_t>(program_.functions[i].params.size()));
      managed_functions_.push_back(body);
    }
    Value ret;
    for (const StmtPtr& s : program_.top_level) {
      if (exec(*s, nullptr, ret) != Flow::kNormal) break;
    }
    const auto it = globals_.find("result");
    return it == globals_.end() ? Value::null() : it->second;
  }

  [[nodiscard]] std::string to_display(const Value& v) const {
    switch (v.t) {
      case Value::T::kNum: return format_number(v.num);
      case Value::T::kBool: return v.num != 0 ? "true" : "false";
      case Value::T::kNull: return "null";
      case Value::T::kStr: return strings_[v.ref];
      case Value::T::kObj: return "[object]";
      case Value::T::kArr: return "[array]";
    }
    return "?";
  }

  [[nodiscard]] double as_number(const Value& v) const {
    if (v.t == Value::T::kNum || v.t == Value::T::kBool) return v.num;
    throw EngineError("expected a number, got " + to_display(v));
  }

 private:
  enum class Flow : std::uint8_t { kNormal, kReturn, kBreak };
  using Scope = std::unordered_map<std::string, Value>;

  struct ObjSlot {
    void* managed = nullptr;
    std::unordered_map<std::uint64_t, Value> props;
  };
  struct ArrSlot {
    void* managed = nullptr;
    std::vector<Value> items;
  };

  // ------------------------------------------------------- engine objects

  std::uint32_t new_object() {
    void* m = space_->alloc(types_.dynamic_object);
    managed_objects_.push_back(m);
    const auto id = static_cast<std::uint32_t>(objects_.size());
    space_->store(m, types_.dynamic_object, 0, std::uint32_t{1});  // kind
    space_->store(m, types_.dynamic_object, 2, static_cast<std::uint64_t>(id));
    objects_.push_back(ObjSlot{m, {}});
    return id;
  }

  std::uint32_t new_array() {
    void* m = space_->alloc(types_.array_object);
    managed_arrays_.push_back(m);
    const auto id = static_cast<std::uint32_t>(arrays_.size());
    space_->store(m, types_.array_object, 1, static_cast<std::uint64_t>(id));
    arrays_.push_back(ArrSlot{m, {}});
    return id;
  }

  Value new_string(std::string s) {
    void* m = space_->alloc(types_.string_buffer);
    managed_strings_.push_back(m);
    space_->store(m, types_.string_buffer, 0, fnv1a(s));
    space_->store(m, types_.string_buffer, 1,
                  static_cast<std::uint32_t>(s.size()));
    const auto id = static_cast<std::uint32_t>(strings_.size());
    strings_.push_back(std::move(s));
    Value v;
    v.t = Value::T::kStr;
    v.ref = id;
    return v;
  }

  std::uint64_t property_id(const std::string& name) {
    const std::uint64_t h = fnv1a(name);
    auto it = property_records_.find(h);
    if (it == property_records_.end()) {
      void* rec = space_->alloc(types_.property_record);
      space_->store(rec, types_.property_record, 0, h);
      space_->store(rec, types_.property_record, 1,
                    static_cast<std::uint32_t>(property_records_.size()));
      property_records_.emplace(h, rec);
    }
    return h;
  }

  Value get_prop(const Value& obj, const std::string& name) {
    if (obj.t != Value::T::kObj) {
      throw EngineError("property access on non-object");
    }
    ObjSlot& slot = objects_[obj.ref];
    // The instrumented access pattern: fetch the backing id through the
    // managed object, as a real engine chases the slots pointer.
    const auto backing = static_cast<std::uint32_t>(
        space_->template load<std::uint64_t>(slot.managed,
                                             types_.dynamic_object, 2));
    const auto it = objects_[backing].props.find(property_id(name));
    return it == objects_[backing].props.end() ? Value::null() : it->second;
  }

  void set_prop(const Value& obj, const std::string& name, const Value& v) {
    if (obj.t != Value::T::kObj) {
      throw EngineError("property store on non-object");
    }
    ObjSlot& slot = objects_[obj.ref];
    // Three accesses against the same managed object: one layout snapshot
    // serves the backing-id load and the property-count bump.
    auto mc = make_cursor(*space_, slot.managed, types_.dynamic_object);
    const auto backing =
        static_cast<std::uint32_t>(mc.template load<std::uint64_t>(2));
    auto& props = objects_[backing].props;
    const std::uint64_t pid = property_id(name);
    if (!props.contains(pid)) {
      mc.template store<std::uint32_t>(
          1, mc.template load<std::uint32_t>(1) + 1);
    }
    props[pid] = v;
  }

  /// obj[k]: arrays/strings index by number; objects treat the index as a
  /// property key (JS's computed member access).
  Value get_index(const Value& base, const Value& index) {
    if (base.t == Value::T::kObj) return get_prop(base, to_display(index));
    if (base.t == Value::T::kStr) {
      const auto& s = strings_[base.ref];
      const auto i = static_cast<std::size_t>(as_number(index));
      if (i >= s.size()) return Value::null();
      return new_string(std::string(1, s[i]));
    }
    if (base.t != Value::T::kArr) throw EngineError("index of non-array");
    ArrSlot& slot = arrays_[base.ref];
    const auto len = space_->template load<std::uint32_t>(
        slot.managed, types_.array_object, 0);
    const auto i = static_cast<std::uint32_t>(as_number(index));
    if (i >= len) return Value::null();
    return slot.items[i];
  }

  void set_index(const Value& base, const Value& index, const Value& v) {
    if (base.t == Value::T::kObj) {
      set_prop(base, to_display(index), v);
      return;
    }
    if (base.t != Value::T::kArr) throw EngineError("index store on non-array");
    ArrSlot& slot = arrays_[base.ref];
    const auto i = static_cast<std::size_t>(as_number(index));
    if (i >= slot.items.size()) {
      slot.items.resize(i + 1);
      space_->store(slot.managed, types_.array_object, 0,
                    static_cast<std::uint32_t>(slot.items.size()));
    }
    slot.items[i] = v;
  }

  // ------------------------------------------------------------- execution

  void burn(std::uint64_t n = 1) {
    if (fuel_ < n) throw EngineError("script fuel exhausted");
    fuel_ -= n;
  }

  [[nodiscard]] static bool truthy_value(const Value& v,
                                         const std::vector<std::string>& strs) {
    switch (v.t) {
      case Value::T::kNum:
      case Value::T::kBool: return v.num != 0;
      case Value::T::kNull: return false;
      case Value::T::kStr: return !strs[v.ref].empty();
      default: return true;
    }
  }
  [[nodiscard]] bool truthy(const Value& v) const {
    return truthy_value(v, strings_);
  }

  static std::string format_number(double v) {
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        std::abs(v) < 1e15) {
      return std::to_string(static_cast<long long>(v));
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
  }

  Value* lookup(const std::string& name, Scope* locals) {
    if (locals != nullptr) {
      const auto it = locals->find(name);
      if (it != locals->end()) return &it->second;
    }
    const auto it = globals_.find(name);
    return it == globals_.end() ? nullptr : &it->second;
  }

  Flow exec(const Stmt& s, Scope* locals, Value& ret) {
    burn();
    switch (s.kind) {
      case StmtKind::kVar: {
        Value v = s.value ? eval(*s.value, locals) : Value::null();
        (locals != nullptr ? *locals : globals_)[s.name] = v;
        return Flow::kNormal;
      }
      case StmtKind::kAssign: {
        Value v = eval(*s.value, locals);
        switch (s.target) {
          case TargetKind::kName: {
            Value* slot = lookup(s.name, locals);
            if (slot != nullptr) {
              *slot = v;
            } else {
              globals_[s.name] = v;
            }
            break;
          }
          case TargetKind::kMember:
            set_prop(eval(*s.object, locals), s.name, v);
            break;
          case TargetKind::kIndex:
            set_index(eval(*s.object, locals), eval(*s.index, locals), v);
            break;
        }
        return Flow::kNormal;
      }
      case StmtKind::kExpr:
        eval(*s.value, locals);
        return Flow::kNormal;
      case StmtKind::kIf: {
        const auto& branch =
            truthy(eval(*s.value, locals)) ? s.body : s.else_body;
        for (const StmtPtr& inner : branch) {
          const Flow f = exec(*inner, locals, ret);
          if (f != Flow::kNormal) return f;
        }
        return Flow::kNormal;
      }
      case StmtKind::kWhile: {
        while (truthy(eval(*s.value, locals))) {
          burn();
          bool broke = false;
          for (const StmtPtr& inner : s.body) {
            const Flow f = exec(*inner, locals, ret);
            if (f == Flow::kReturn) return f;
            if (f == Flow::kBreak) {
              broke = true;
              break;
            }
          }
          if (broke) break;
        }
        return Flow::kNormal;
      }
      case StmtKind::kFor: {
        if (s.for_init) {
          const Flow f = exec(*s.for_init, locals, ret);
          if (f != Flow::kNormal) return f;
        }
        while (s.value == nullptr || truthy(eval(*s.value, locals))) {
          burn();
          bool broke = false;
          for (const StmtPtr& inner : s.body) {
            const Flow f = exec(*inner, locals, ret);
            if (f == Flow::kReturn) return f;
            if (f == Flow::kBreak) {
              broke = true;
              break;
            }
          }
          if (broke) break;
          if (s.for_step) {
            const Flow f = exec(*s.for_step, locals, ret);
            if (f != Flow::kNormal) return f;
          }
        }
        return Flow::kNormal;
      }
      case StmtKind::kReturn:
        ret = s.value ? eval(*s.value, locals) : Value::null();
        return Flow::kReturn;
      case StmtKind::kBreak:
        return Flow::kBreak;
      case StmtKind::kBlock:
        for (const StmtPtr& inner : s.body) {
          const Flow f = exec(*inner, locals, ret);
          if (f != Flow::kNormal) return f;
        }
        return Flow::kNormal;
    }
    return Flow::kNormal;
  }

  Value call_function(std::size_t index, std::vector<Value> args) {
    burn(4);
    if (call_depth_ > 512) throw EngineError("call stack overflow");
    const FunctionDecl& fn = program_.functions[index];
    // Call-count bookkeeping through the managed function body, like a
    // real engine's profiling counters.
    void* body = managed_functions_[index];
    space_->store(body, types_.function_body, 2,
                  space_->template load<std::uint64_t>(
                      body, types_.function_body, 2) +
                      1);
    Scope locals;
    for (std::size_t i = 0; i < fn.params.size(); ++i) {
      locals[fn.params[i]] = i < args.size() ? args[i] : Value::null();
    }
    ++call_depth_;
    Value ret;
    for (const StmtPtr& s : fn.body) {
      if (exec(*s, &locals, ret) == Flow::kReturn) break;
    }
    --call_depth_;
    return ret;
  }

  Value call_builtin(const std::string& name, std::vector<Value>& a) {
    const auto n1 = [&]() { return as_number(a.at(0)); };
    const auto n2 = [&]() { return as_number(a.at(1)); };
    if (name == "sqrt") return Value::number(std::sqrt(n1()));
    if (name == "floor") return Value::number(std::floor(n1()));
    if (name == "ceil") return Value::number(std::ceil(n1()));
    if (name == "abs") return Value::number(std::abs(n1()));
    if (name == "pow") return Value::number(std::pow(n1(), n2()));
    if (name == "sin") return Value::number(std::sin(n1()));
    if (name == "cos") return Value::number(std::cos(n1()));
    if (name == "exp") return Value::number(std::exp(n1()));
    if (name == "log") return Value::number(std::log(n1()));
    if (name == "min") return Value::number(std::min(n1(), n2()));
    if (name == "max") return Value::number(std::max(n1(), n2()));
    if (name == "len") {
      const Value& v = a.at(0);
      if (v.t == Value::T::kStr) {
        // Length via the managed string buffer: member access.
        return Value::number(space_->template load<std::uint32_t>(
            managed_strings_[v.ref], types_.string_buffer, 1));
      }
      if (v.t == Value::T::kArr) {
        return Value::number(space_->template load<std::uint32_t>(
            arrays_[v.ref].managed, types_.array_object, 0));
      }
      throw EngineError("len() of non-sequence");
    }
    if (name == "push") {
      const Value& arr = a.at(0);
      if (arr.t != Value::T::kArr) throw EngineError("push() on non-array");
      ArrSlot& slot = arrays_[arr.ref];
      slot.items.push_back(a.at(1));
      space_->store(slot.managed, types_.array_object, 0,
                    static_cast<std::uint32_t>(slot.items.size()));
      return Value::number(static_cast<double>(slot.items.size()));
    }
    if (name == "charCodeAt") {
      const Value& v = a.at(0);
      if (v.t != Value::T::kStr) throw EngineError("charCodeAt of non-string");
      const auto i = static_cast<std::size_t>(n2());
      const auto& s = strings_[v.ref];
      return Value::number(i < s.size()
                               ? static_cast<unsigned char>(s[i])
                               : 0);
    }
    if (name == "fromCharCode") {
      return new_string(std::string(1, static_cast<char>(
                                           static_cast<int>(n1()) & 0xff)));
    }
    if (name == "str") return new_string(to_display(a.at(0)));
    if (name == "newObject") {
      Value v;
      v.t = Value::T::kObj;
      v.ref = new_object();
      return v;
    }
    throw EngineError("unknown function: " + name);
  }

  Value eval(const Expr& e, Scope* locals) {
    burn();
    switch (e.kind) {
      case ExprKind::kNumber: return Value::number(e.number);
      case ExprKind::kString: return new_string(e.text);
      case ExprKind::kBool: return Value::boolean(e.boolean);
      case ExprKind::kNull: return Value::null();
      case ExprKind::kIdent: {
        Value* v = lookup(e.text, locals);
        if (v == nullptr) throw EngineError("undefined variable: " + e.text);
        return *v;
      }
      case ExprKind::kUnary: {
        const Value v = eval(*e.lhs, locals);
        if (e.unary_not) return Value::boolean(!truthy(v));
        return Value::number(-as_number(v));
      }
      case ExprKind::kBinary: return eval_binary(e, locals);
      case ExprKind::kMember: {
        const Value base = eval(*e.lhs, locals);
        if (e.text == "length") {
          std::vector<Value> args{base};
          return call_builtin("len", args);
        }
        return get_prop(base, e.text);
      }
      case ExprKind::kIndex: {
        const Value base = eval(*e.lhs, locals);
        return get_index(base, eval(*e.rhs, locals));
      }
      case ExprKind::kCall: {
        std::vector<Value> args;
        args.reserve(e.args.size());
        for (const ExprPtr& a : e.args) args.push_back(eval(*a, locals));
        const auto it = functions_by_name_.find(e.text);
        if (it != functions_by_name_.end()) {
          return call_function(it->second, std::move(args));
        }
        return call_builtin(e.text, args);
      }
      case ExprKind::kObjectLit: {
        Value v;
        v.t = Value::T::kObj;
        v.ref = new_object();
        for (const auto& [key, init] : e.props) {
          set_prop(v, key, eval(*init, locals));
        }
        return v;
      }
      case ExprKind::kArrayLit: {
        Value v;
        v.t = Value::T::kArr;
        v.ref = new_array();
        for (std::size_t i = 0; i < e.args.size(); ++i) {
          set_index(v, Value::number(static_cast<double>(i)),
                    eval(*e.args[i], locals));
        }
        return v;
      }
    }
    return Value::null();
  }

  Value eval_binary(const Expr& e, Scope* locals) {
    // Short-circuit first.
    if (e.op == BinOp::kAnd) {
      const Value l = eval(*e.lhs, locals);
      return truthy(l) ? eval(*e.rhs, locals) : l;
    }
    if (e.op == BinOp::kOr) {
      const Value l = eval(*e.lhs, locals);
      return truthy(l) ? l : eval(*e.rhs, locals);
    }
    const Value l = eval(*e.lhs, locals);
    const Value r = eval(*e.rhs, locals);
    if (e.op == BinOp::kAdd &&
        (l.t == Value::T::kStr || r.t == Value::T::kStr)) {
      return new_string(to_display(l) + to_display(r));
    }
    if (e.op == BinOp::kEq || e.op == BinOp::kNe) {
      bool eq = false;
      if (l.t == r.t || (l.t == Value::T::kNum && r.t == Value::T::kBool) ||
          (l.t == Value::T::kBool && r.t == Value::T::kNum)) {
        switch (l.t) {
          case Value::T::kStr: eq = strings_[l.ref] == strings_[r.ref]; break;
          case Value::T::kNull: eq = true; break;
          case Value::T::kObj:
          case Value::T::kArr: eq = (l.ref == r.ref) && (l.t == r.t); break;
          default: eq = (l.num == r.num); break;
        }
      }
      return Value::boolean(e.op == BinOp::kEq ? eq : !eq);
    }
    const double a = as_number(l);
    const double b = as_number(r);
    switch (e.op) {
      case BinOp::kAdd: return Value::number(a + b);
      case BinOp::kSub: return Value::number(a - b);
      case BinOp::kMul: return Value::number(a * b);
      case BinOp::kDiv: return Value::number(a / b);
      case BinOp::kMod:
        return Value::number(b == 0 ? 0.0 : std::fmod(a, b));
      case BinOp::kLt: return Value::boolean(a < b);
      case BinOp::kLe: return Value::boolean(a <= b);
      case BinOp::kGt: return Value::boolean(a > b);
      case BinOp::kGe: return Value::boolean(a >= b);
      case BinOp::kBitAnd:
        return Value::number(static_cast<double>(to_i64(a) & to_i64(b)));
      case BinOp::kBitOr:
        return Value::number(static_cast<double>(to_i64(a) | to_i64(b)));
      case BinOp::kBitXor:
        return Value::number(static_cast<double>(to_i64(a) ^ to_i64(b)));
      case BinOp::kShl:
        return Value::number(
            static_cast<double>(to_i64(a) << (to_i64(b) & 63)));
      case BinOp::kShr:
        return Value::number(
            static_cast<double>(to_i64(a) >> (to_i64(b) & 63)));
      default:
        throw EngineError("bad binary op");
    }
  }

  static std::int64_t to_i64(double v) { return static_cast<std::int64_t>(v); }

  S* space_;
  MjsTypes types_;
  Program program_;
  std::unordered_map<std::string, std::size_t> functions_by_name_;
  Scope globals_;
  std::vector<std::string> strings_;
  std::vector<ObjSlot> objects_;
  std::vector<ArrSlot> arrays_;
  std::vector<void*> managed_objects_;
  std::vector<void*> managed_arrays_;
  std::vector<void*> managed_strings_;
  std::vector<void*> managed_functions_;
  std::unordered_map<std::uint64_t, void*> property_records_;
  std::uint64_t fuel_ = 0;
  int call_depth_ = 0;
};

}  // namespace polar::mjs
