#include "attack/campaign.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <set>
#include <vector>

#include "baseline/static_olr.h"
#include "core/runtime.h"
#include "observe/introspect.h"
#include "support/assert.h"
#include "support/hash.h"

namespace polar {

const char* to_string(CampaignKind k) noexcept {
  switch (k) {
    case CampaignKind::kHeapSpray: return "heap-spray";
    case CampaignKind::kPartialOverwrite: return "partial-overwrite";
    case CampaignKind::kOverflowMarch: return "overflow-march";
    case CampaignKind::kProbeOracle: return "probe-oracle";
  }
  return "?";
}

Result<void> CampaignConfig::validate() const noexcept {
  if (static_cast<std::size_t>(kind) >= kCampaignKindCount ||
      rounds == 0 || trials_per_round == 0) {
    return Result<void>::failure(Violation::kBadConfig);
  }
  if (converge_streak == 0 || converge_streak > rounds) {
    return Result<void>::failure(Violation::kBadConfig);
  }
  return backend.validate();
}

namespace {

// Field roles (the AttackTypes shape; see the header contract).
constexpr std::uint32_t kHandlerField = 0;
constexpr std::uint32_t kRefcountField = 1;
constexpr std::uint32_t kLenField = 3;
constexpr std::uint32_t kOvData = 0;
constexpr std::uint32_t kOvHandler = 1;
constexpr std::uint64_t kBenignHandler = 0x00005afe5afe5afeULL;
constexpr std::uint8_t kTrapFill = 0xa5;
constexpr std::uint64_t kPartialMark = 0x4242;
constexpr std::uint8_t kOverflowByte = 0x41;  // marching 'A's spell kPayload

std::uint64_t read_block(const std::vector<std::uint8_t>& block,
                         std::uint32_t offset, std::uint32_t width) {
  std::uint64_t v = 0;
  for (std::uint32_t i = 0; i < width; ++i) {
    const std::size_t at = offset + i;
    if (at < block.size()) {
      v |= static_cast<std::uint64_t>(block[at]) << (8 * i);
    }
  }
  return v;
}

void write_block(std::vector<std::uint8_t>& block, std::uint32_t offset,
                 std::uint64_t value, std::uint32_t width) {
  for (std::uint32_t i = 0; i < width; ++i) {
    const std::size_t at = offset + i;
    if (at < block.size()) {
      block[at] = static_cast<std::uint8_t>(value >> (8 * i));
    }
  }
}

/// What the program observed when it used the (possibly attacked) object.
struct Observation {
  bool detected = false;
  std::uint64_t handler = 0;
  std::uint64_t refcount = 0;
  std::uint64_t len = 0;

  [[nodiscard]] std::uint64_t signature() const noexcept {
    std::uint64_t h = detected ? 0x1 : 0x2;
    h = hash_combine(h, handler);
    h = hash_combine(h, refcount);
    h = hash_combine(h, len);
    return h;
  }
};

/// The defender side of a campaign: one recycled heap slot whose
/// (re)allocations draw truth layouts per the defense/backend rules. The
/// byte block persists across free (stale memory), exactly like the LIFO
/// SizeClassHeap the case studies run on.
struct SlotWorld {
  const TypeInfo& info;
  const CampaignConfig& cfg;
  bool victim_shape;  ///< AttackTypes victim roles vs overflowable roles
  Rng draw;           ///< defender's per-allocation layout stream (stored)
  Layout fixed;       ///< kNone / kStaticOlr truth
  const StatelessSchedule* sch = nullptr;  ///< derived; owned by `rt`
  std::size_t slot_entry = 0;  ///< the slot address's fixed schedule index
  std::unique_ptr<Runtime> rt;  ///< entropy join + schedule owner (kPolar)

  Layout truth;
  std::vector<std::uint8_t> block;
  bool live = false;

  SlotWorld(const TypeRegistry& reg, TypeId type, const CampaignConfig& c,
            bool victim_roles, Rng defender_stream)
      : info(reg.info(type)),
        cfg(c),
        victim_shape(victim_roles),
        draw(defender_stream) {
    switch (cfg.defense) {
      case DefenseKind::kNone:
        fixed = natural_layout(info);
        break;
      case DefenseKind::kStaticOlr: {
        // One layout per "binary build" — the Reproduction Problem.
        StaticOlr olr(reg, cfg.policy, hash_combine(cfg.seed, 0x57a71cULL));
        fixed = olr.layout_of(type);
        break;
      }
      case DefenseKind::kPolar: {
        RuntimeConfig rc;
        rc.policy = cfg.policy;
        rc.backend = cfg.backend;  // not env_default(); see attack.h
        // Fresh permutation per allocation — the reuse window would give
        // campaign grooming ~1/window layout-replay odds (see attack.cpp).
        rc.backend.options.layout_reuse_window = 0;
        rc.on_violation = ErrorAction::kReport;
        rc.seed = cfg.seed ^ 0x90a1;
        rt = std::make_unique<Runtime>(reg, rc);
        sch = rt->schedule(type);  // null for the stored backend
        if (sch != nullptr) {
          // The slot's base address never changes (LIFO reuse), so its
          // keyed hash selects ONE immortal schedule entry. Drawing the
          // index from the campaign stream instead of a real address is
          // what makes derived rows bit-identical across processes.
          slot_entry = static_cast<std::size_t>(draw.below(sch->entries()));
        }
        break;
      }
    }
  }

  void allocate() {
    switch (cfg.defense) {
      case DefenseKind::kNone:
      case DefenseKind::kStaticOlr:
        truth = fixed;
        break;
      case DefenseKind::kPolar:
        truth = sch != nullptr ? sch->layout_at(slot_entry)
                               : randomize_layout(info, cfg.policy, draw);
        break;
    }
    block.assign(truth.size, 0);  // POLaR zero-fills; byte world mirrors it
    live = true;
  }

  /// The program initializes its object and arms the booby traps.
  void program_init() {
    if (victim_shape) {
      write_block(block, truth.offsets[kHandlerField], kBenignHandler, 8);
      write_block(block, truth.offsets[kRefcountField], 3, 8);
      write_block(block, truth.offsets[kLenField], 5, 4);
    } else {
      write_block(block, truth.offsets[kOvHandler], kBenignHandler, 8);
    }
    for (const TrapRegion& trap : truth.traps) {
      for (std::uint32_t i = 0; i < trap.size; ++i) {
        if (trap.offset + i < block.size()) {
          block[trap.offset + i] = kTrapFill;
        }
      }
    }
  }

  void free_object() { live = false; }  // bytes stay — stale memory

  [[nodiscard]] bool traps_intact() const {
    for (const TrapRegion& trap : truth.traps) {
      for (std::uint32_t i = 0; i < trap.size; ++i) {
        if (trap.offset + i < block.size() &&
            block[trap.offset + i] != kTrapFill) {
          return false;
        }
      }
    }
    return true;
  }

  /// The program uses the object. `stale_handle` models a dangling typed
  /// pointer: stored/hybrid POLaR gates every access on liveness metadata
  /// and refuses it; pure stateless derives offsets from the address alone
  /// and reads whatever the slot holds (the UAF-replay hole); kNone and
  /// static OLR never check. Live objects are trap-validated first (the
  /// program's use protocol) — a freed object's traps are nobody's to
  /// check, its detection is the liveness gate's job.
  [[nodiscard]] Observation use(bool stale_handle) const {
    Observation obs;
    if (stale_handle && cfg.defense == DefenseKind::kPolar &&
        cfg.backend.kind != BackendKind::kStateless) {
      obs.detected = true;  // kUseAfterFree via pagemap/seqlock liveness
      return obs;
    }
    if (!stale_handle && !traps_intact()) {
      obs.detected = true;  // kTrapDamaged
      return obs;
    }
    if (victim_shape) {
      obs.handler = read_block(block, truth.offsets[kHandlerField], 8);
      obs.refcount = read_block(block, truth.offsets[kRefcountField], 8);
      obs.len = read_block(block, truth.offsets[kLenField], 4);
    } else {
      obs.handler = read_block(block, truth.offsets[kOvHandler], 8);
      obs.refcount = 1;
      obs.len = 0;
    }
    return obs;
  }
};

/// RUMA-style probe: the attacker allocates a training object of the
/// victim's type in the victim's slot, plants a distinct marker in every
/// field through the legitimate API (it is the attacker's own object), and
/// recovers the field->offset map with one overlapping byte-granular scan
/// of the raw block. Returns one offset per declared field; empty when any
/// marker was not found. Raw reads trip nothing (booby traps detect
/// writes), but every scan window is counted in `probes` — the oracle's
/// query cost.
std::vector<std::uint32_t> probe_layout(SlotWorld& w, std::uint64_t& probes) {
  w.allocate();
  const std::uint32_t n = w.info.field_count();
  std::vector<std::uint64_t> markers(n);
  for (std::uint32_t f = 0; f < n; ++f) {
    markers[f] = 0xb10c'0000'0000'0000ULL | (0x1111'1111ULL * (f + 1));
    const std::uint32_t width = std::min<std::uint32_t>(w.info.fields[f].size, 8);
    write_block(w.block, w.truth.offsets[f], markers[f], width);
    ++probes;
  }
  std::vector<std::uint32_t> learned(n, 0);
  std::vector<bool> found(n, false);
  const std::size_t size = w.block.size();
  for (std::size_t off = 0; off + 1 < size; ++off) {
    ++probes;  // one misaligned window read
    for (std::uint32_t f = 0; f < n; ++f) {
      if (found[f]) continue;
      const std::uint32_t width = std::min<std::uint32_t>(w.info.fields[f].size, 8);
      if (off + width > size) continue;
      const std::uint64_t window =
          read_block(w.block, static_cast<std::uint32_t>(off), width);
      const std::uint64_t mask =
          width == 8 ? ~0ULL : ((1ULL << (8 * width)) - 1);
      if (window == (markers[f] & mask)) {
        learned[f] = static_cast<std::uint32_t>(off);
        found[f] = true;
      }
    }
  }
  w.free_object();
  if (!std::all_of(found.begin(), found.end(), [](bool b) { return b; })) {
    return {};
  }
  return learned;
}

struct TrialClass {
  bool detected = false;
  bool success = false;
};

TrialClass classify_hijack(const Observation& obs) {
  TrialClass c;
  c.detected = obs.detected;
  c.success = !obs.detected && obs.handler == kPayload && obs.refcount != 0 &&
              obs.len < 100;
  return c;
}

TrialClass classify_partial(const Observation& obs) {
  TrialClass c;
  c.detected = obs.detected;
  // A partial overwrite "wins" when the pointer's low bytes were swapped
  // while the rest still points into the benign region — a plausible
  // in-segment redirect rather than a wild pointer.
  c.success = !obs.detected && (obs.handler & 0xffffULL) == kPartialMark &&
              (obs.handler >> 16) == (kBenignHandler >> 16);
  return c;
}

}  // namespace

CampaignOutcome run_campaign(const TypeRegistry& registry,
                             const AttackTypes& types,
                             const CampaignConfig& config) {
  POLAR_CHECK(config.validate().ok(), "invalid CampaignConfig");

  const bool victim_shape = config.kind != CampaignKind::kOverflowMarch;
  const TypeId type =
      victim_shape ? types.victim : types.overflowable;

  Rng stream(hash_combine(config.seed,
                          0xca4'0000ULL + static_cast<std::uint64_t>(config.kind)));
  Rng defender = stream.fork();
  Rng attacker = stream.fork();
  SlotWorld world(registry, type, config, victim_shape, defender);

  CampaignOutcome out;
  if (config.defense == DefenseKind::kPolar) {
    out.entropy_bits = observe::type_entropy_bits(*world.rt, type);
  }

  const bool metadata_leak =
      config.attacker_knows_metadata && !config.metadata_sealed;

  std::set<std::uint64_t> signatures;
  const auto record = [&](const TrialClass& c, const Observation& obs) {
    ++out.totals.attempts;
    if (c.detected) {
      ++out.totals.detected;
    } else if (c.success) {
      ++out.totals.successes;
    } else {
      ++out.totals.failed;
    }
    signatures.insert(obs.signature());
  };

  // Adaptive state carried between rounds.
  std::vector<std::uint32_t> learned;       // probe-oracle / heap-spray
  std::vector<std::uint32_t> candidates;    // partial-overwrite
  std::uint32_t march_len = 8;              // overflow-march
  std::uint64_t prev_belief = 0;
  std::uint32_t streak = 0;

  for (std::uint32_t round = 1; round <= config.rounds; ++round) {
    out.rounds_run = round;
    std::uint64_t belief = 0;
    bool belief_valid = false;
    std::uint64_t round_successes = 0;

    if (!config.control &&
        (config.kind == CampaignKind::kProbeOracle ||
         config.kind == CampaignKind::kHeapSpray)) {
      if (metadata_leak) {
        belief = 1;  // ground truth is re-read per trial; trivially stable
        belief_valid = true;
      } else {
        learned = probe_layout(world, out.probes);
        belief_valid = !learned.empty();
        belief = 0;
        for (const std::uint32_t off : learned) belief = hash_combine(belief, off);
      }
    }

    for (std::uint32_t trial = 0; trial < config.trials_per_round; ++trial) {
      if (config.control) {
        // Attack-free control: allocate, init, use, free. Any detection
        // is a false positive.
        world.allocate();
        world.program_init();
        const Observation obs = world.use(false);
        if (obs.detected) ++out.control_violations;
        record(classify_hijack(obs), obs);
        world.free_object();
        continue;
      }

      switch (config.kind) {
        case CampaignKind::kProbeOracle: {
          world.allocate();
          world.program_init();
          const std::uint32_t strike_off =
              metadata_leak ? world.truth.offsets[kHandlerField]
                            : (learned.empty() ? 0 : learned[kHandlerField]);
          // The strike: a surgical 8-byte OOB write at the believed
          // handler offset of the LIVE victim.
          write_block(world.block, strike_off, kPayload, 8);
          const Observation obs = world.use(false);
          const TrialClass c = classify_hijack(obs);
          round_successes += c.success ? 1 : 0;
          record(c, obs);
          world.free_object();
          break;
        }
        case CampaignKind::kHeapSpray: {
          world.allocate();
          world.program_init();
          world.free_object();  // the program drops it; the handle dangles
          if (!learned.empty()) {
            // Reclaim spray: a fake victim image laid out under the belief.
            write_block(world.block, learned[kHandlerField], kPayload, 8);
            write_block(world.block, learned[kRefcountField], 1, 8);
            write_block(world.block, learned[kLenField], 10, 4);
          }
          const Observation obs = world.use(true);
          const TrialClass c = classify_hijack(obs);
          round_successes += c.success ? 1 : 0;
          record(c, obs);
          break;
        }
        case CampaignKind::kPartialOverwrite: {
          world.allocate();
          world.program_init();
          if (candidates.empty()) {
            for (std::uint32_t off = 0; off + 2 <= world.truth.size; off += 2) {
              candidates.push_back(off);
            }
          }
          const std::size_t pick =
              static_cast<std::size_t>(attacker.below(candidates.size()));
          const std::uint32_t off = std::min<std::uint32_t>(
              candidates[pick],
              static_cast<std::uint32_t>(world.block.size()) - 2);
          write_block(world.block, off, kPartialMark, 2);
          const Observation obs = world.use(false);
          const TrialClass c = classify_partial(obs);
          round_successes += c.success ? 1 : 0;
          record(c, obs);
          // Elimination learning: an offset that observably did nothing
          // (clean benign read-back) is not the pointer; a detected strike
          // mapped a trap zone. Both are only *true* eliminations when the
          // layout is stable across allocations — against the stored
          // backend this learning is systematically stale, which is the
          // measured point.
          const bool untouched = !obs.detected &&
                                 obs.handler == kBenignHandler &&
                                 obs.refcount == 3 && obs.len == 5;
          if ((untouched || obs.detected) && candidates.size() > 1) {
            candidates.erase(candidates.begin() +
                             static_cast<std::ptrdiff_t>(pick));
          }
          world.free_object();
          break;
        }
        case CampaignKind::kOverflowMarch: {
          world.allocate();
          world.program_init();
          const std::uint32_t start =
              world.truth.offsets[kOvData] + world.info.fields[kOvData].size;
          for (std::uint32_t i = 0; i < march_len; ++i) {
            if (start + i < world.block.size()) {
              world.block[start + i] = kOverflowByte;
            }
          }
          const Observation obs = world.use(false);
          const TrialClass c = classify_hijack(obs);
          round_successes += c.success ? 1 : 0;
          record(c, obs);
          world.free_object();
          break;
        }
      }
    }

    if (config.control) continue;

    if (config.kind == CampaignKind::kPartialOverwrite) {
      belief_valid = candidates.size() == 1;
      belief = belief_valid ? candidates[0] : 0;
    } else if (config.kind == CampaignKind::kOverflowMarch) {
      belief_valid = round_successes > 0;
      belief = march_len;
      if (round_successes == 0 && march_len < 256) march_len += 8;
    }

    if (belief_valid && belief == prev_belief) {
      ++streak;
    } else {
      streak = belief_valid ? 1 : 0;
    }
    prev_belief = belief;
    if (streak >= config.converge_streak && round_successes > 0) {
      out.converged = true;
      out.converged_round = round;
      break;  // layout recovered; further rounds only repeat the win
    }
  }

  out.totals.distinct_outcomes = signatures.size();
  return out;
}

double measure_access_mops(const TypeRegistry& registry,
                           const AttackTypes& types, DefenseKind defense,
                           const BackendConfig& backend,
                           const LayoutPolicy& policy, std::uint64_t seed,
                           std::uint32_t objects, std::uint64_t iters) {
  POLAR_CHECK(objects > 0 && iters > 0, "measure_access_mops: empty workload");
  const TypeId t = types.victim;
  const TypeInfo& info = registry.info(t);
  const std::uint32_t fields = info.field_count();
  volatile std::uint32_t sink = 0;

  const auto t0 = std::chrono::steady_clock::now();
  switch (defense) {
    case DefenseKind::kNone: {
      // Stock compiler: natural offsets into flat storage.
      std::vector<std::vector<std::uint8_t>> objs(
          objects, std::vector<std::uint8_t>(info.natural_size, 0));
      for (std::uint64_t i = 0; i < iters; ++i) {
        const auto& o = objs[i % objects];
        std::uint32_t v;
        std::memcpy(&v, o.data() + info.natural_offsets[i % fields],
                    sizeof(v));
        sink = sink + v;
      }
      break;
    }
    case DefenseKind::kStaticOlr: {
      StaticOlr olr(registry, policy, seed);
      std::vector<void*> objs(objects);
      for (auto& o : objs) o = olr.alloc(t);
      for (std::uint64_t i = 0; i < iters; ++i) {
        std::uint32_t v;
        std::memcpy(&v, olr.field_ptr(objs[i % objects], t, i % fields),
                    sizeof(v));
        sink = sink + v;
      }
      for (void* o : objs) olr.free_object(o, t);
      break;
    }
    case DefenseKind::kPolar: {
      RuntimeConfig rc;
      rc.policy = policy;
      rc.backend = backend;  // not env_default(); see attack.h
      rc.seed = seed;
      Runtime rt(registry, rc);
      std::vector<ObjRef> objs(objects);
      for (auto& o : objs) o = rt.obj_alloc(t).value();
      for (std::uint64_t i = 0; i < iters; ++i) {
        std::uint32_t v;
        std::memcpy(&v,
                    rt.obj_field(objs[i % objects],
                                 static_cast<std::uint32_t>(i % fields))
                        .value(),
                    sizeof(v));
        sink = sink + v;
      }
      for (const ObjRef& o : objs) (void)rt.obj_free(o);
      break;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double us =
      std::chrono::duration<double, std::micro>(t1 - t0).count();
  return us <= 0.0 ? 0.0 : static_cast<double>(iters) / us;
}

}  // namespace polar
