#include "attack/attack.h"

#include <algorithm>
#include <cstring>
#include <set>
#include <vector>

#include "alloc/heap.h"
#include "baseline/static_olr.h"
#include "core/runtime.h"
#include "support/assert.h"
#include "support/hash.h"

namespace polar {

const char* to_string(DefenseKind d) noexcept {
  switch (d) {
    case DefenseKind::kNone: return "none";
    case DefenseKind::kStaticOlr: return "static-olr";
    case DefenseKind::kPolar: return "polar";
  }
  return "?";
}

AttackTypes register_attack_types(TypeRegistry& registry) {
  AttackTypes t;
  t.victim = TypeBuilder(registry, "Victim")
                 .fn_ptr("handler")
                 .field<std::uint64_t>("refcount")
                 .ptr("name")
                 .field<std::uint32_t>("len")
                 .field<std::uint32_t>("flags")
                 .build();
  t.spray_full = TypeBuilder(registry, "SprayFull")
                     .field<std::uint64_t>("f0")
                     .field<std::uint64_t>("f1")
                     .field<std::uint64_t>("f2")
                     .field<std::uint64_t>("f3")
                     .build();
  t.spray_small = TypeBuilder(registry, "SpraySmall")
                      .field<std::uint64_t>("k0")
                      .field<std::uint64_t>("k1")
                      .bytes("k2", 16, 8)
                      .build();
  t.confused = TypeBuilder(registry, "Confused")
                   .field<std::uint64_t>("user_id")  // fully controlled
                   .field<std::uint32_t>("kind")
                   .field<std::uint32_t>("tag")
                   .bytes("blob", 8, 4)  // controlled byte payload
                   .build();
  t.overflowable = TypeBuilder(registry, "Overflowable")
                       .bytes("data", 32, 8)
                       .fn_ptr("handler")
                       .field<std::uint32_t>("len")
                       .build();
  return t;
}

namespace {

// What the vulnerable program reads when it "uses a Victim": the function
// pointer, a refcount it validates as nonzero, and a length it validates
// as < 100 — only then does it "call" the pointer. Exploit success
// therefore needs three windows of attacker data to line up, not one.
constexpr std::uint32_t kHandlerField = 0;
constexpr std::uint32_t kRefcountField = 1;
constexpr std::uint32_t kLenField = 3;
constexpr std::uint64_t kBenignHandler = 0x00005afe5afe5afeULL;

struct Observation {
  bool detected = false;
  std::uint64_t handler = 0;
  std::uint64_t refcount = 0;
  std::uint64_t len = 0;

  [[nodiscard]] bool success() const noexcept {
    return !detected && refcount != 0 && len < 100 && handler == kPayload;
  }
  [[nodiscard]] std::uint64_t signature() const noexcept {
    std::uint64_t h = detected ? 0x1 : 0x2;
    h = hash_combine(h, handler);
    h = hash_combine(h, refcount);
    h = hash_combine(h, len);
    return h;
  }
};

/// Accumulates per-trial observations into an AttackOutcome.
struct OutcomeAccumulator {
  AttackOutcome outcome;
  std::set<std::uint64_t> signatures;

  void add(const Observation& obs) {
    ++outcome.attempts;
    if (obs.detected) {
      ++outcome.detected;
    } else if (obs.success()) {
      ++outcome.successes;
    } else {
      ++outcome.failed;
    }
    signatures.insert(obs.signature());
  }

  [[nodiscard]] AttackOutcome take() {
    outcome.distinct_outcomes = signatures.size();
    return outcome;
  }
};

std::size_t block_size_for(std::uint32_t layout_size) {
  const std::size_t cls = SizeClassHeap::class_size(layout_size);
  return cls == 0 ? layout_size : cls;
}

/// Bounded little-endian read from a byte block; bytes beyond the block
/// read as zero (a guard-page-adjacent miss rather than UB).
std::uint64_t read_block(const std::vector<std::uint8_t>& block,
                         std::uint32_t offset, std::uint32_t width) {
  std::uint64_t v = 0;
  for (std::uint32_t i = 0; i < width; ++i) {
    const std::size_t at = offset + i;
    if (at < block.size()) {
      v |= static_cast<std::uint64_t>(block[at]) << (8 * i);
    }
  }
  return v;
}

void write_block(std::vector<std::uint8_t>& block, std::uint32_t offset,
                 std::uint64_t value, std::uint32_t width) {
  for (std::uint32_t i = 0; i < width; ++i) {
    const std::size_t at = offset + i;
    if (at < block.size()) {
      block[at] = static_cast<std::uint8_t>(value >> (8 * i));
    }
  }
}

/// The fake-Victim byte image the attacker wants the dangling memory to
/// hold, laid out under the victim layout the attacker BELIEVES in.
std::vector<std::uint8_t> fake_victim_image(const Layout& assumed,
                                            std::size_t size) {
  std::vector<std::uint8_t> image(size, 0);
  write_block(image, assumed.offsets[kHandlerField], kPayload, 8);
  write_block(image, assumed.offsets[kRefcountField], 1, 8);
  write_block(image, assumed.offsets[kLenField], 10, 4);
  return image;
}

/// The layout the attacker assumes for a type: ground truth when they have
/// it, the natural (declared) layout otherwise — the best public guess.
Layout attacker_assumed_layout(const TypeInfo& info, const AttackConfig& cfg,
                               const Layout& truth) {
  const bool knows =
      cfg.defense == DefenseKind::kNone ||
      (cfg.defense == DefenseKind::kStaticOlr && cfg.attacker_knows_binary);
  return knows ? truth : natural_layout(info);
}

/// Byte-world observation: program reads Victim fields at the offsets of
/// `victim_truth` from `block`.
Observation observe_bytes(const std::vector<std::uint8_t>& block,
                          const Layout& victim_truth) {
  Observation obs;
  obs.handler = read_block(block, victim_truth.offsets[kHandlerField], 8);
  obs.refcount = read_block(block, victim_truth.offsets[kRefcountField], 8);
  obs.len = read_block(block, victim_truth.offsets[kLenField], 4);
  return obs;
}

/// POLaR-world observation: program reads Victim fields through the
/// runtime using `ref` — a real typed handle for live-object scenarios, or
/// a dangling "address-typed" handle (ObjRef{base, 0, type}: the shape the
/// instrumentation pass produces for a raw pointer whose static type is
/// known at the access site) for the UAF scenarios. Any refused access
/// aborts the use (detection). A granted access is consumed as bytes
/// bounded by the backing heap block, mirroring read_block's guard-page
/// behaviour — under the stateless backend a granted access to a dead
/// object is precisely the measured UAF-replay hole, so the read must go
/// through even though no metadata record backs it.
Observation observe_polar(Runtime& rt, ObjRef ref, TypeId expected,
                          const AttackConfig& cfg, std::size_t block_cap) {
  Observation obs;
  const auto read_field = [&](std::uint32_t field,
                              std::uint32_t width) -> std::uint64_t {
    const Result<void*> r = cfg.strict_typed_access
                                ? rt.obj_field_typed(ref, expected, field)
                                : rt.obj_field(ref, field);
    if (!r.ok()) {
      obs.detected = true;
      return 0;
    }
    const auto off = static_cast<std::size_t>(
        static_cast<const unsigned char*>(r.value()) -
        static_cast<const unsigned char*>(ref.base));
    std::uint64_t v = 0;
    for (std::uint32_t i = 0; i < width; ++i) {
      if (off + i < block_cap) {
        v |= static_cast<std::uint64_t>(
                 static_cast<const unsigned char*>(ref.base)[off + i])
             << (8 * i);
      }
    }
    return v;
  };
  obs.handler = read_field(kHandlerField, 8);
  if (obs.detected) return obs;
  obs.refcount = read_field(kRefcountField, 8);
  if (obs.detected) return obs;
  obs.len = read_field(kLenField, 4);
  return obs;
}

/// The handle a dangling raw pointer becomes at an instrumented access
/// site: the static type is known to the compiler, the allocation id is
/// not. Stored/hybrid machinery treats id 0 as an unchecked legacy handle;
/// the stateless backend derives offsets from (type, base) alone — which
/// is exactly the replay surface the campaign rows quantify.
ObjRef dangling_as(void* base, TypeId type) {
  return ObjRef{base, 0, type};
}

/// Byte-world helper: materializes an object of `info` whose FIELD VALUES
/// the attacker chose by slicing `desired` under `assumed` offsets, placed
/// at the TRUE offsets. Uncontrolled bytes (padding, dummies) come from
/// `background` (canaries / stale memory).
std::vector<std::uint8_t> materialize_fields(
    const TypeInfo& info, const Layout& truth, const Layout& assumed,
    const std::vector<std::uint8_t>& desired, std::size_t block,
    std::uint8_t background) {
  std::vector<std::uint8_t> bytes(block, background);
  for (std::uint32_t f = 0; f < info.field_count(); ++f) {
    for (std::uint32_t i = 0; i < info.fields[f].size; ++i) {
      const std::size_t src = assumed.offsets[f] + i;
      const std::size_t dst = truth.offsets[f] + i;
      if (dst < bytes.size()) {
        bytes[dst] = src < desired.size() ? desired[src] : 0;
      }
    }
  }
  return bytes;
}

/// Per-trial truth layouts. kNone: natural. kStaticOlr: fixed per binary
/// seed (same every trial — the Reproduction Problem). kPolar handled by
/// the real Runtime instead.
struct ByteWorld {
  Layout victim;
  Layout other;
};

ByteWorld byte_world(const TypeRegistry& reg, const AttackTypes& types,
                     TypeId other_type, const AttackConfig& cfg) {
  ByteWorld w;
  if (cfg.defense == DefenseKind::kNone) {
    w.victim = natural_layout(reg.info(types.victim));
    w.other = natural_layout(reg.info(other_type));
  } else {
    StaticOlr olr(reg, cfg.policy, /*binary_seed=*/cfg.seed * 31 + 7);
    w.victim = olr.layout_of(types.victim);
    w.other = olr.layout_of(other_type);
  }
  return w;
}

/// Fresh POLaR stack for an attack run: exploit-friendly heap + runtime in
/// report mode so detections are observable.
struct PolarWorld {
  SizeClassHeap heap;
  Runtime rt;

  PolarWorld(const TypeRegistry& reg, const AttackConfig& cfg)
      : heap(HeapConfig{.lifo_reuse = true}),
        rt(reg, make_config(cfg, &heap)) {}

  static RuntimeConfig make_config(const AttackConfig& cfg,
                                   SizeClassHeap* heap) {
    RuntimeConfig rc;
    rc.policy = cfg.policy;
    rc.on_violation = ErrorAction::kReport;
    // The backend under attack comes from the config (default: stored).
    // Deliberately not env_default(): a POLAR_BACKEND override must not
    // silently change what an attack row is measuring.
    rc.backend = cfg.backend;
    // Attack rows measure the paper-faithful entropy budget: every
    // allocation draws a fresh permutation. The layout-reuse window is a
    // perf knob that would hand a reclaim attacker ~1/window odds of an
    // exact layout replay, so it is pinned off for every measured row.
    rc.backend.options.layout_reuse_window = 0;
    rc.seed = cfg.seed ^ 0x90a1;
    rc.alloc_fn = SizeClassHeap::alloc_hook;
    rc.free_fn = SizeClassHeap::free_hook;
    rc.alloc_ctx = heap;
    return rc;
  }
};

}  // namespace

// ------------------------------------------------------- UAF: fake object

AttackOutcome run_uaf_fake_object(const TypeRegistry& reg,
                                  const AttackTypes& types,
                                  const AttackConfig& cfg) {
  OutcomeAccumulator acc;
  const TypeInfo& victim_info = reg.info(types.victim);

  if (cfg.defense != DefenseKind::kPolar) {
    const ByteWorld w = byte_world(reg, types, types.victim, cfg);
    const Layout assumed = attacker_assumed_layout(victim_info, cfg, w.victim);
    const std::size_t block = block_size_for(w.victim.size);
    for (std::uint32_t t = 0; t < cfg.trials; ++t) {
      // The attacker's raw spray buffer replaces the freed victim 1:1
      // (LIFO reclaim); they control every byte of it.
      std::vector<std::uint8_t> memory = fake_victim_image(assumed, block);
      acc.add(observe_bytes(memory, w.victim));
    }
    return acc.take();
  }

  PolarWorld world(reg, cfg);
  for (std::uint32_t t = 0; t < cfg.trials; ++t) {
    const ObjRef v = world.rt.obj_alloc(types.victim).value();
    world.rt.store<std::uint64_t>(v.base, kHandlerField, kBenignHandler);
    world.rt.store<std::uint64_t>(v.base, kRefcountField, 3);
    const std::size_t size = world.rt.inspect(v.base)->layout->size;
    (void)world.rt.obj_free(v);

    // Raw (untracked) spray buffer reclaims the chunk.
    void* raw = world.heap.allocate(size);
    Layout assumed = natural_layout(victim_info);
    if (cfg.attacker_knows_metadata && !cfg.metadata_sealed) {
      // Derived backends have no per-object metadata to leak, but their
      // schedule is a pure function of the (leaked) type seed and the base
      // address — an attacker who exfiltrated the schedule computes the
      // reclaimed chunk's layout exactly (§VI-A's residual risk, derived
      // form). Stored keeps nothing after the free: the guess stays blind.
      if (const StatelessSchedule* sch = world.rt.schedule(types.victim)) {
        assumed = sch->layout_for(raw);
      }
    }
    const std::vector<std::uint8_t> image = fake_victim_image(assumed, size);
    std::memcpy(raw, image.data(), size);

    // Program uses the dangling pointer; the metadata table has no record
    // for this base anymore (stateless never looks for one — the access
    // goes through and reads the attacker's spray).
    acc.add(observe_polar(world.rt, dangling_as(v.base, types.victim),
                          types.victim, cfg,
                          block_size_for(static_cast<std::uint32_t>(size))));
    world.rt.clear_violation();
    world.heap.deallocate(raw, size);
  }
  return acc.take();
}

// --------------------------------------------------- UAF: tracked reclaim

AttackOutcome run_uaf_reclaim(const TypeRegistry& reg,
                              const AttackTypes& types,
                              const AttackConfig& cfg, bool small_spray) {
  OutcomeAccumulator acc;
  const TypeId spray_type = small_spray ? types.spray_small : types.spray_full;
  const TypeInfo& victim_info = reg.info(types.victim);
  const TypeInfo& spray_info = reg.info(spray_type);

  if (cfg.defense != DefenseKind::kPolar) {
    const ByteWorld w = byte_world(reg, types, spray_type, cfg);
    const Layout victim_assumed =
        attacker_assumed_layout(victim_info, cfg, w.victim);
    const Layout spray_assumed =
        attacker_assumed_layout(spray_info, cfg, w.other);
    const std::size_t victim_block = block_size_for(w.victim.size);
    const std::size_t spray_block = block_size_for(w.other.size);
    for (std::uint32_t t = 0; t < cfg.trials; ++t) {
      if (victim_block != spray_block) {
        // Different size classes: the spray never reclaims the chunk.
        Observation miss;
        miss.handler = kBenignHandler;  // stale victim memory, attack inert
        miss.refcount = 3;
        acc.add(miss);
        continue;
      }
      const std::vector<std::uint8_t> desired =
          fake_victim_image(victim_assumed, 64);
      const std::vector<std::uint8_t> memory = materialize_fields(
          spray_info, w.other, spray_assumed, desired, spray_block, 0);
      acc.add(observe_bytes(memory, w.victim));
    }
    return acc.take();
  }

  PolarWorld world(reg, cfg);
  for (std::uint32_t t = 0; t < cfg.trials; ++t) {
    const ObjRef v = world.rt.obj_alloc(types.victim).value();
    world.rt.store<std::uint64_t>(v.base, kHandlerField, kBenignHandler);
    world.rt.store<std::uint64_t>(v.base, kRefcountField, 3);
    const std::size_t victim_size = world.rt.inspect(v.base)->layout->size;
    (void)world.rt.obj_free(v);

    // Spray managed objects hoping one reclaims the victim's chunk.
    const std::vector<std::uint8_t> desired =
        fake_victim_image(natural_layout(victim_info), 64);
    const Layout spray_assumed = natural_layout(spray_info);
    std::vector<void*> sprays;
    bool reclaimed = false;
    for (int s = 0; s < 8 && !reclaimed; ++s) {
      void* obj = world.rt.olr_malloc(spray_type);
      sprays.push_back(obj);
      reclaimed = (obj == v.base);
    }
    // Attacker fills every spray object's fields with the sliced image.
    for (void* obj : sprays) {
      for (std::uint32_t f = 0; f < spray_info.field_count(); ++f) {
        void* p = world.rt.olr_getptr(obj, f);
        for (std::uint32_t i = 0; i < spray_info.fields[f].size; ++i) {
          const std::size_t src = spray_assumed.offsets[f] + i;
          static_cast<unsigned char*>(p)[i] =
              src < desired.size() ? desired[src] : 0;
        }
      }
    }

    if (!reclaimed) {
      Observation miss;
      miss.handler = kBenignHandler;
      miss.refcount = 3;
      acc.add(miss);
    } else {
      acc.add(observe_polar(
          world.rt, dangling_as(v.base, types.victim), types.victim, cfg,
          block_size_for(static_cast<std::uint32_t>(victim_size))));
    }
    world.rt.clear_violation();
    for (void* obj : sprays) world.rt.olr_free(obj);
    world.rt.clear_violation();
  }
  return acc.take();
}

// ---------------------------------------------------------- type confusion

AttackOutcome run_type_confusion(const TypeRegistry& reg,
                                 const AttackTypes& types,
                                 const AttackConfig& cfg) {
  OutcomeAccumulator acc;
  const TypeInfo& victim_info = reg.info(types.victim);
  const TypeInfo& conf_info = reg.info(types.confused);
  constexpr std::uint32_t kUserId = 0, kKind = 1, kTag = 2, kBlob = 3;

  if (cfg.defense != DefenseKind::kPolar) {
    const ByteWorld w = byte_world(reg, types, types.confused, cfg);
    const Layout victim_assumed =
        attacker_assumed_layout(victim_info, cfg, w.victim);
    const Layout conf_assumed =
        attacker_assumed_layout(conf_info, cfg, w.other);
    const std::size_t block = block_size_for(w.other.size);
    for (std::uint32_t t = 0; t < cfg.trials; ++t) {
      const std::vector<std::uint8_t> desired =
          fake_victim_image(victim_assumed, 64);
      std::vector<std::uint8_t> memory(block, 0);
      // Program-controlled fields.
      write_block(memory, w.other.offsets[kKind], 1, 4);
      write_block(memory, w.other.offsets[kTag], 0, 4);
      // Attacker-controlled fields, sliced from the desired image.
      for (std::uint32_t f : {kUserId, kBlob}) {
        for (std::uint32_t i = 0; i < conf_info.fields[f].size; ++i) {
          const std::size_t src = conf_assumed.offsets[f] + i;
          const std::size_t dst = w.other.offsets[f] + i;
          if (dst < memory.size()) {
            memory[dst] = src < desired.size() ? desired[src] : 0;
          }
        }
      }
      acc.add(observe_bytes(memory, w.victim));
    }
    return acc.take();
  }

  PolarWorld world(reg, cfg);
  for (std::uint32_t t = 0; t < cfg.trials; ++t) {
    const ObjRef c = world.rt.obj_alloc(types.confused).value();
    world.rt.store<std::uint32_t>(c.base, kKind, 1);
    world.rt.store<std::uint32_t>(c.base, kTag, 0);
    // Attacker-controlled values go in through the legitimate API.
    const std::vector<std::uint8_t> desired =
        fake_victim_image(natural_layout(victim_info), 64);
    const Layout conf_assumed = natural_layout(conf_info);
    for (std::uint32_t f : {kUserId, kBlob}) {
      void* p = world.rt.olr_getptr(c.base, f);
      for (std::uint32_t i = 0; i < conf_info.fields[f].size; ++i) {
        const std::size_t src = conf_assumed.offsets[f] + i;
        static_cast<unsigned char*>(p)[i] =
            src < desired.size() ? desired[src] : 0;
      }
    }
    // The bug: Victim code runs over the Confused object — the pointer it
    // received is statically typed as Victim, so its accesses carry the
    // wrong class (and, under derived backends, consult the wrong
    // schedule).
    acc.add(observe_polar(world.rt, dangling_as(c.base, types.victim),
                          types.victim, cfg,
                          block_size_for(world.rt.inspect(c.base)->layout->size)));
    world.rt.clear_violation();
    (void)world.rt.obj_free(c);
    world.rt.clear_violation();
  }
  return acc.take();
}

// ---------------------------------------------------------- linear overflow

AttackOutcome run_linear_overflow(const TypeRegistry& reg,
                                  const AttackTypes& types,
                                  const AttackConfig& cfg) {
  OutcomeAccumulator acc;
  const TypeInfo& info = reg.info(types.overflowable);
  constexpr std::uint32_t kData = 0, kHandler = 1, kLenF = 2;

  // Builds the attacker's overflow byte string given the layout they
  // believe in: filler up to the believed handler offset, then payload.
  const auto craft = [&](const Layout& believed) -> std::vector<std::uint8_t> {
    const std::uint32_t data_off = believed.offsets[kData];
    const std::uint32_t handler_off = believed.offsets[kHandler];
    if (handler_off < data_off) return {};  // believed unexploitable
    const std::uint32_t len = handler_off - data_off + 8;
    std::vector<std::uint8_t> bytes(len, 0x42);
    for (int i = 0; i < 8; ++i) {
      bytes[len - 8 + static_cast<std::uint32_t>(i)] =
          static_cast<std::uint8_t>(kPayload >> (8 * i));
    }
    return bytes;
  };

  if (cfg.defense != DefenseKind::kPolar) {
    const ByteWorld w = byte_world(reg, types, types.overflowable, cfg);
    const Layout assumed = attacker_assumed_layout(info, cfg, w.other);
    const std::size_t block = block_size_for(w.other.size);
    for (std::uint32_t t = 0; t < cfg.trials; ++t) {
      std::vector<std::uint8_t> memory(block, 0);
      write_block(memory, w.other.offsets[kHandler], kBenignHandler, 8);
      write_block(memory, w.other.offsets[kLenF], 5, 4);
      const std::vector<std::uint8_t> overflow = craft(assumed);
      const std::uint32_t data_off = w.other.offsets[kData];
      for (std::size_t i = 0; i < overflow.size(); ++i) {
        if (data_off + i < memory.size()) memory[data_off + i] = overflow[i];
      }
      Observation obs;  // program "uses" the object: calls handler
      obs.handler = read_block(memory, w.other.offsets[kHandler], 8);
      obs.refcount = 1;  // not part of this scenario's validation
      obs.len = 0;
      acc.add(obs);
    }
    return acc.take();
  }

  PolarWorld world(reg, cfg);
  for (std::uint32_t t = 0; t < cfg.trials; ++t) {
    const ObjRef o = world.rt.obj_alloc(types.overflowable).value();
    world.rt.store<std::uint64_t>(o.base, kHandler, kBenignHandler);
    world.rt.store<std::uint32_t>(o.base, kLenF, 5);
    const ObjectRecord* rec = world.rt.inspect(o.base);
    const Layout truth = *rec->layout;

    std::vector<std::uint8_t> overflow;
    if (cfg.attacker_knows_metadata && !cfg.metadata_sealed) {
      // Full metadata leak (§VI-A): copy the live bytes between data and
      // handler — traps included — and surgically replace the pointer.
      if (truth.offsets[kHandler] >= truth.offsets[kData]) {
        const std::uint32_t len =
            truth.offsets[kHandler] - truth.offsets[kData] + 8;
        overflow.resize(len);
        std::memcpy(overflow.data(),
                    static_cast<unsigned char*>(o.base) + truth.offsets[kData],
                    len);
        for (int i = 0; i < 8; ++i) {
          overflow[len - 8 + static_cast<std::uint32_t>(i)] =
              static_cast<std::uint8_t>(kPayload >> (8 * i));
        }
      }
    } else {
      overflow = craft(natural_layout(info));  // public guess: data then ptr
    }

    // The bug: unchecked copy into the 32-byte data field.
    void* data_ptr = world.rt.obj_field(o, kData).value_or(nullptr);
    const auto data_off = static_cast<std::size_t>(
        static_cast<unsigned char*>(data_ptr) -
        static_cast<unsigned char*>(o.base));
    const std::size_t cap = block_size_for(truth.size);
    for (std::size_t i = 0; i < overflow.size(); ++i) {
      if (data_off + i < cap) {
        static_cast<unsigned char*>(o.base)[data_off + i] = overflow[i];
      }
    }

    Observation obs;
    // Program validates its booby traps before trusting the object
    // (§IV-A-3's detection mechanism).
    if (!world.rt.obj_check_traps(o).ok()) {
      obs.detected = true;
    } else {
      const Result<void*> p =
          cfg.strict_typed_access
              ? world.rt.obj_field_typed(o, types.overflowable, kHandler)
              : world.rt.obj_field(o, kHandler);
      if (!p.ok()) {
        obs.detected = true;
      } else {
        std::memcpy(&obs.handler, p.value(), 8);
        obs.refcount = 1;
        obs.len = 0;
      }
    }
    acc.add(obs);
    world.rt.clear_violation();
    (void)world.rt.obj_free(o);
    world.rt.clear_violation();
  }
  return acc.take();
}

// ------------------------------------------------------ use-before-init

AttackOutcome run_use_before_init(const TypeRegistry& reg,
                                  const AttackTypes& types,
                                  const AttackConfig& cfg) {
  OutcomeAccumulator acc;
  const TypeInfo& victim_info = reg.info(types.victim);

  if (cfg.defense != DefenseKind::kPolar) {
    const ByteWorld w = byte_world(reg, types, types.victim, cfg);
    const Layout assumed = attacker_assumed_layout(victim_info, cfg, w.victim);
    const std::size_t block = block_size_for(w.victim.size);
    for (std::uint32_t t = 0; t < cfg.trials; ++t) {
      // Grooming: the attacker freed a buffer full of a fake-victim image;
      // the uninstrumented allocator hands the victim that stale block
      // without clearing it.
      std::vector<std::uint8_t> memory = fake_victim_image(assumed, block);
      // The buggy program initializes only `flags` (field 4) and then uses
      // the object: handler/refcount/len are read uninitialized.
      write_block(memory, w.victim.offsets[4], 1, 4);
      acc.add(observe_bytes(memory, w.victim));
    }
    return acc.take();
  }

  PolarWorld world(reg, cfg);
  for (std::uint32_t t = 0; t < cfg.trials; ++t) {
    // Grooming: raw allocation filled with the payload image, freed back.
    const std::size_t groom_size = 48;  // the class victim objects land in
    void* groom = world.heap.allocate(groom_size);
    const std::vector<std::uint8_t> image =
        fake_victim_image(natural_layout(victim_info), groom_size);
    std::memcpy(groom, image.data(), groom_size);
    world.heap.deallocate(groom, groom_size);

    // The victim may reclaim the groomed block — but obj_alloc zero-fills
    // and draws fresh offsets, so the stale payload is gone either way.
    const ObjRef v = world.rt.obj_alloc(types.victim).value();
    world.rt.store<std::uint32_t>(v.base, 4, 1);  // program inits flags only
    acc.add(observe_polar(world.rt, v, types.victim, cfg,
                          block_size_for(world.rt.inspect(v.base)->layout->size)));
    world.rt.clear_violation();
    (void)world.rt.obj_free(v);
  }
  return acc.take();
}

}  // namespace polar
