// polar_redteam — CLI driver for the adaptive red-team campaign sweep.
//
// Runs every campaign kind against every defense x backend combination
// across the trap/dummy sweep points, joins each row with the census
// entropy metric and the measured member-access throughput, and emits the
// whole curve as attack_surface.json (schema checked by
// scripts/redteam_check.py). The sweep is deterministic from --seed:
// every column except the measured `overhead` block is bit-identical
// across reruns.
//
//   polar_redteam [--smoke] [--seed=N] [--out=FILE] [--no-overhead]
//
// Exit status is the security regression gate:
//   * any attack-free control row (campaign controls AND the fault-inject
//     workload controls) reporting a detection — a false positive — fails,
//   * any campaign whose success rate exceeds its per-backend budget
//     fails, unless the row carries a documented exemption (the stateless
//     UAF-replay hole, the derived-backend address-replay hole, the §VI-A
//     metadata leak) — and each exemption is cross-checked against
//     faultinject::fault_detectable so the measured blind spot and the
//     documented capability table can never drift apart.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "attack/attack.h"
#include "attack/campaign.h"
#include "core/backend.h"
#include "faultinject/fault.h"

namespace {

using polar::AttackTypes;
using polar::BackendConfig;
using polar::BackendKind;
using polar::CampaignConfig;
using polar::CampaignKind;
using polar::CampaignOutcome;
using polar::DefenseKind;
using polar::LayoutPolicy;
using polar::TypeRegistry;

struct SweepPoint {
  const char* name;
  std::uint32_t min_dummies;
  std::uint32_t max_dummies;
  bool booby_traps;
};

// >= 3 points: no traps/dummies, the paper default, and a dense posture.
constexpr SweepPoint kSweep[] = {
    {"sparse", 0, 0, false},
    {"default", 1, 3, true},
    {"dense", 4, 6, true},
};

constexpr DefenseKind kDefenses[] = {DefenseKind::kNone,
                                     DefenseKind::kStaticOlr,
                                     DefenseKind::kPolar};
constexpr BackendKind kBackends[] = {BackendKind::kStored,
                                     BackendKind::kStateless,
                                     BackendKind::kHybrid};
constexpr CampaignKind kCampaigns[] = {
    CampaignKind::kHeapSpray, CampaignKind::kPartialOverwrite,
    CampaignKind::kOverflowMarch, CampaignKind::kProbeOracle};

/// Per-(campaign, backend) success budget for gated rows (kPolar with
/// booby traps armed). budget < 0 means the row is exempt: the backend
/// gives this campaign up by construction, and the exemption name is the
/// documented hole (DESIGN.md §13).
struct Budget {
  double max_success_rate = 0.0;
  const char* exempt = nullptr;
};

Budget budget_for(CampaignKind campaign, BackendKind backend,
                  bool metadata_leak) {
  if (metadata_leak) return {-1.0, "metadata-leak"};  // §VI-A residual risk
  const bool derived = backend != BackendKind::kStored;
  switch (campaign) {
    case CampaignKind::kHeapSpray:
      // Stored/hybrid gate stale handles on liveness metadata; pure
      // stateless cannot (SPAM's accepted trade-off).
      if (backend == BackendKind::kStateless) return {-1.0, "uaf-replay"};
      return {0.001, nullptr};
    case CampaignKind::kProbeOracle:
      // Derived layouts are a pure function of the (reused) address, so
      // probing the slot recovers the next layout exactly.
      if (derived) return {-1.0, "address-replay"};
      return {0.25, nullptr};
    case CampaignKind::kPartialOverwrite:
      if (derived) return {-1.0, "address-replay"};
      return {0.30, nullptr};
    case CampaignKind::kOverflowMarch:
      // Booby traps sit between the buffer and the pointer for every
      // backend — the march budget holds across the whole grid.
      return {0.001, nullptr};
  }
  return {0.0, nullptr};
}

struct Row {
  CampaignConfig cfg;
  const SweepPoint* sweep = nullptr;
  bool metadata_leak = false;
  CampaignOutcome out{};
  Budget budget{};
  bool gated = false;
  bool pass = true;
};

void append_row_json(std::string& out, const Row& r, bool last) {
  char budget_str[32];
  std::string exempt_str = "null";
  if (r.budget.exempt != nullptr) {
    std::snprintf(budget_str, sizeof(budget_str), "null");
    exempt_str = std::string("\"") + r.budget.exempt + "\"";
  } else {
    std::snprintf(budget_str, sizeof(budget_str), "%.6f",
                  r.budget.max_success_rate);
  }
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "    {\"campaign\": \"%s\", \"knowledge\": \"%s\", \"defense\": \"%s\","
      " \"backend\": \"%s\", \"sweep\": \"%s\", \"dummies_min\": %u,"
      " \"dummies_max\": %u, \"booby_traps\": %s, \"schedule_bits\": %u,"
      " \"entropy_bits\": %.2f, \"rounds\": %u, \"attempts\": %llu,"
      " \"successes\": %llu, \"detected\": %llu, \"failed\": %llu,"
      " \"distinct_outcomes\": %llu, \"success_rate\": %.6f,"
      " \"detection_rate\": %.6f, \"converged\": %s, \"converged_round\": %u,"
      " \"probes\": %llu, \"budget\": %s, \"exempt\": %s, \"gated\": %s,"
      " \"pass\": %s}%s\n",
      polar::to_string(r.cfg.kind),
      r.metadata_leak ? "metadata-leak" : "public",
      polar::to_string(r.cfg.defense), polar::to_string(r.cfg.backend.kind),
      r.sweep->name, r.sweep->min_dummies, r.sweep->max_dummies,
      r.sweep->booby_traps ? "true" : "false",
      r.cfg.backend.options.schedule_bits, r.out.entropy_bits,
      r.out.rounds_run,
      static_cast<unsigned long long>(r.out.totals.attempts),
      static_cast<unsigned long long>(r.out.totals.successes),
      static_cast<unsigned long long>(r.out.totals.detected),
      static_cast<unsigned long long>(r.out.totals.failed),
      static_cast<unsigned long long>(r.out.totals.distinct_outcomes),
      r.out.totals.success_rate(), r.out.totals.detection_rate(),
      r.out.converged ? "true" : "false", r.out.converged_round,
      static_cast<unsigned long long>(r.out.probes), budget_str,
      exempt_str.c_str(),
      r.gated ? "true" : "false", r.pass ? "true" : "false",
      last ? "" : ",");
  out += buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool no_overhead = false;
  std::uint64_t seed = 1207;
  std::string out_path = "attack_surface.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 0);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg == "--no-overhead") {
      no_overhead = true;
    } else {
      std::fprintf(stderr,
                   "usage: polar_redteam [--smoke] [--seed=N] [--out=FILE]"
                   " [--no-overhead]\n");
      return 2;
    }
  }

  TypeRegistry registry;
  const AttackTypes types = polar::register_attack_types(registry);

  const std::uint32_t rounds = smoke ? 8 : 24;
  const std::uint32_t trials = smoke ? 16 : 32;

  const auto make_cfg = [&](CampaignKind kind, DefenseKind defense,
                            BackendKind backend, const SweepPoint& sp,
                            bool leak, bool control) {
    CampaignConfig cfg;
    cfg.kind = kind;
    cfg.defense = defense;
    cfg.backend = BackendConfig::of(backend);
    cfg.policy.min_dummies = sp.min_dummies;
    cfg.policy.max_dummies = sp.max_dummies;
    cfg.policy.booby_traps = sp.booby_traps;
    cfg.attacker_knows_metadata = leak;
    cfg.control = control;
    cfg.rounds = rounds;
    cfg.trials_per_round = trials;
    cfg.seed = seed;
    return cfg;
  };

  bool all_pass = true;
  std::vector<Row> rows;

  // The full curve: campaigns x defenses x backends x sweep points, plus
  // the metadata-leak rows for the probe oracle under POLaR.
  for (const SweepPoint& sp : kSweep) {
    for (const DefenseKind defense : kDefenses) {
      for (const BackendKind backend : kBackends) {
        for (const CampaignKind campaign : kCampaigns) {
          Row r;
          r.cfg = make_cfg(campaign, defense, backend, sp, false, false);
          r.sweep = &sp;
          r.out = polar::run_campaign(registry, types, r.cfg);
          r.budget = budget_for(campaign, backend, false);
          r.gated = defense == DefenseKind::kPolar && sp.booby_traps;
          r.pass = !r.gated || r.budget.exempt != nullptr ||
                   r.out.totals.success_rate() <= r.budget.max_success_rate;
          if (!r.pass) {
            std::fprintf(stderr,
                         "BUDGET VIOLATION: %s/%s/%s/%s success %.4f > %.4f\n",
                         polar::to_string(campaign), polar::to_string(defense),
                         polar::to_string(backend), sp.name,
                         r.out.totals.success_rate(),
                         r.budget.max_success_rate);
            all_pass = false;
          }
          rows.push_back(std::move(r));
        }
      }
    }
  }
  for (const BackendKind backend : kBackends) {
    Row r;
    r.cfg = make_cfg(CampaignKind::kProbeOracle, DefenseKind::kPolar, backend,
                     kSweep[1], /*leak=*/true, false);
    r.sweep = &kSweep[1];
    r.metadata_leak = true;
    r.out = polar::run_campaign(registry, types, r.cfg);
    r.budget = budget_for(CampaignKind::kProbeOracle, backend, true);
    r.gated = true;
    r.pass = true;  // exempt by definition; the row documents the leak
    rows.push_back(std::move(r));
  }

  // Exemption/capability cross-check: a row is only allowed to claim the
  // UAF-replay exemption if faultinject's capability table agrees the
  // backend cannot detect stale reads — the measured hole and the
  // documented one must be the same hole.
  for (const Row& r : rows) {
    if (r.budget.exempt != nullptr &&
        std::strcmp(r.budget.exempt, "uaf-replay") == 0 &&
        polar::faultinject::fault_detectable(
            polar::faultinject::FaultKind::kUafRead, r.cfg.backend)) {
      std::fprintf(stderr,
                   "EXEMPTION DRIFT: %s claims uaf-replay but backend %s"
                   " detects stale reads\n",
                   polar::to_string(r.cfg.kind),
                   polar::to_string(r.cfg.backend.kind));
      all_pass = false;
    }
  }

  // Campaign-level attack-free controls: one per defense x backend at the
  // default sweep point. Zero false positives required.
  struct ControlRow {
    CampaignConfig cfg;
    CampaignOutcome out;
    bool pass = true;
  };
  std::vector<ControlRow> controls;
  for (const DefenseKind defense : kDefenses) {
    for (const BackendKind backend : kBackends) {
      ControlRow c;
      c.cfg = make_cfg(CampaignKind::kProbeOracle, defense, backend, kSweep[1],
                       false, /*control=*/true);
      c.out = polar::run_campaign(registry, types, c.cfg);
      c.pass = c.out.control_violations == 0 && c.out.totals.successes == 0;
      if (!c.pass) {
        std::fprintf(stderr, "FALSE POSITIVE: control row %s/%s reported %llu\n",
                     polar::to_string(defense), polar::to_string(backend),
                     static_cast<unsigned long long>(c.out.control_violations));
        all_pass = false;
      }
      controls.push_back(std::move(c));
    }
  }

  // Workload-level controls through the shared fault-injection plumbing:
  // the four real workloads, fault-free, per backend — every row clean.
  struct WorkloadControl {
    BackendKind backend;
    polar::faultinject::WorkloadKind workload;
    bool clean;
  };
  std::vector<WorkloadControl> workload_controls;
  for (const BackendKind backend : kBackends) {
    polar::faultinject::HarnessConfig hc;
    hc.backend = BackendConfig::of(backend);
    hc.seed = seed;
    for (const auto& o : polar::faultinject::run_controls(hc)) {
      workload_controls.push_back({backend, o.workload, o.clean()});
      if (!o.clean()) {
        std::fprintf(stderr, "FALSE POSITIVE: workload control %s/%s dirty\n",
                     polar::to_string(backend),
                     polar::faultinject::to_string(o.workload));
        all_pass = false;
      }
    }
  }

  // The overhead axis: measured Mops of the access path each row attacks.
  struct OverheadRow {
    DefenseKind defense;
    BackendKind backend;
    double mops;
  };
  std::vector<OverheadRow> overhead;
  if (!no_overhead) {
    const std::uint32_t objects = 64;
    const std::uint64_t iters = smoke ? 200'000 : 2'000'000;
    LayoutPolicy default_policy;  // the "default" sweep point's policy
    overhead.push_back(
        {DefenseKind::kNone, BackendKind::kStored,
         polar::measure_access_mops(registry, types, DefenseKind::kNone,
                                    BackendConfig::stored(), default_policy,
                                    seed, objects, iters)});
    overhead.push_back(
        {DefenseKind::kStaticOlr, BackendKind::kStored,
         polar::measure_access_mops(registry, types, DefenseKind::kStaticOlr,
                                    BackendConfig::stored(), default_policy,
                                    seed, objects, iters)});
    for (const BackendKind backend : kBackends) {
      overhead.push_back(
          {DefenseKind::kPolar, backend,
           polar::measure_access_mops(registry, types, DefenseKind::kPolar,
                                      BackendConfig::of(backend),
                                      default_policy, seed, objects, iters)});
    }
  }

  // ---- attack_surface.json ------------------------------------------------
  std::string json;
  json.reserve(rows.size() * 512 + 4096);
  char head[256];
  std::snprintf(head, sizeof(head),
                "{\n  \"bench\": \"attack_surface\",\n"
                "  \"schema_version\": 1,\n  \"seed\": %llu,\n"
                "  \"smoke\": %s,\n  \"rows\": [\n",
                static_cast<unsigned long long>(seed),
                smoke ? "true" : "false");
  json += head;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    append_row_json(json, rows[i], i + 1 == rows.size());
  }
  json += "  ],\n  \"controls\": [\n";
  for (std::size_t i = 0; i < controls.size(); ++i) {
    const ControlRow& c = controls[i];
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"defense\": \"%s\", \"backend\": \"%s\", \"sweep\": \"%s\","
        " \"attempts\": %llu, \"control_violations\": %llu,"
        " \"successes\": %llu, \"pass\": %s}%s\n",
        polar::to_string(c.cfg.defense), polar::to_string(c.cfg.backend.kind),
        "default", static_cast<unsigned long long>(c.out.totals.attempts),
        static_cast<unsigned long long>(c.out.control_violations),
        static_cast<unsigned long long>(c.out.totals.successes),
        c.pass ? "true" : "false", i + 1 == controls.size() ? "" : ",");
    json += buf;
  }
  json += "  ],\n  \"workload_controls\": [\n";
  for (std::size_t i = 0; i < workload_controls.size(); ++i) {
    const WorkloadControl& w = workload_controls[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"backend\": \"%s\", \"workload\": \"%s\","
                  " \"clean\": %s}%s\n",
                  polar::to_string(w.backend),
                  polar::faultinject::to_string(w.workload),
                  w.clean ? "true" : "false",
                  i + 1 == workload_controls.size() ? "" : ",");
    json += buf;
  }
  json += "  ],\n  \"overhead\": [\n";
  for (std::size_t i = 0; i < overhead.size(); ++i) {
    const OverheadRow& o = overhead[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"defense\": \"%s\", \"backend\": \"%s\","
                  " \"mops\": %.2f}%s\n",
                  polar::to_string(o.defense), polar::to_string(o.backend),
                  o.mops, i + 1 == overhead.size() ? "" : ",");
    json += buf;
  }
  char tail[64];
  std::snprintf(tail, sizeof(tail), "  ],\n  \"all_pass\": %s\n}\n",
                all_pass ? "true" : "false");
  json += tail;

  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }

  std::printf("polar_redteam: %zu campaign rows, %zu controls, %zu workload"
              " controls -> %s\n",
              rows.size(), controls.size(), workload_controls.size(),
              out_path.c_str());
  std::printf("%s\n", all_pass ? "all budgets met, zero false positives"
                               : "FAILURES above");
  return all_pass ? 0 : 1;
}
