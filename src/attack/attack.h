// Heap-exploit simulator — quantifies the security arguments of paper
// §III and the case-study discussion of §V-C.
//
// Four canonical heap attacks are mounted against three defenses:
//   kNone      — natural layouts, constant offsets (stock compiler)
//   kStaticOlr — randstruct/DSLR-style per-binary randomization
//   kPolar     — per-allocation randomization through the real Runtime
//
// Every attack is executed at the byte level over a SizeClassHeap with
// exploit-friendly LIFO reuse, so reclaim behaviour, padding slack, trap
// bytes and partial overwrites are all faithfully modelled. Outcomes are
// counted over many trials:
//   success   — the program consumed the attacker's payload as intended
//   detected  — the defense refused the access (UAF / type / trap check)
//   failed    — neither: the program read garbage (a crash in real life)
// plus `distinct_outcomes`, the number of different observable results
// across retries — the measurable form of the paper's Reproduction
// Problem (§III-B-2): 1 means the attacker can rehearse the exploit
// deterministically; large means every retry behaves differently.
//
// Determinism contract: every scenario draws exclusively from RNG streams
// forked off AttackConfig::seed, so outcome COUNTS (attempts / successes /
// detected / failed) are reproducible for a fixed config. The
// `distinct_outcomes` signature set is additionally bit-identical across
// reruns for kNone/kStaticOlr and for kPolar over the stored backend;
// under the derived (stateless/hybrid) backends the case studies run the
// real Runtime, whose schedule entry selection hashes real heap addresses,
// so signature values are deterministic only within one process. The
// adaptive campaign harness (attack/campaign.h) closes that gap: it draws
// schedule indices from a per-campaign forked stream and its red-team JSON
// is bit-identical across reruns with the same seed.
#pragma once

#include <cstdint>

#include "core/backend.h"
#include "core/layout.h"
#include "core/type_registry.h"

namespace polar {

enum class DefenseKind : std::uint8_t { kNone, kStaticOlr, kPolar };

[[nodiscard]] const char* to_string(DefenseKind d) noexcept;

struct AttackConfig {
  DefenseKind defense = DefenseKind::kNone;
  /// Static OLR only: the attacker reverse-engineered the shipped binary
  /// and knows its per-binary layouts (the Hidden Binary Problem,
  /// §III-B-1). Ignored by kNone (layouts are public knowledge anyway)
  /// and by kPolar (the binary contains no layout).
  bool attacker_knows_binary = false;
  /// POLaR only: enable the class-hash check on member access
  /// (olr_getptr_typed) — the strict mode ablation.
  bool strict_typed_access = false;
  /// POLaR only: the attacker can read POLaR's metadata table (the
  /// residual risk acknowledged in §VI-A).
  bool attacker_knows_metadata = false;
  /// POLaR only: metadata is kept in a protected region (the MPX/SGX/MPK
  /// hardening §VI-A plans as future work). A metadata *leak* then yields
  /// nothing useful, so attacker_knows_metadata is neutralized.
  bool metadata_sealed = false;
  /// POLaR only: the randomization backend the victim runtime uses. The
  /// default pins the stored backend (maximum detection — the historical
  /// single-backend behaviour every fixed expectation was written against);
  /// sweeping it over stateless/hybrid turns DESIGN.md §12's prose about
  /// the derived backends' UAF-replay blind spot into measured rows.
  /// Deliberately NOT env_default(): a POLAR_BACKEND override must not
  /// silently change what a test or bench is measuring.
  BackendConfig backend = BackendConfig::stored();
  std::uint32_t trials = 1000;
  std::uint64_t seed = 1;
  LayoutPolicy policy{};
};

struct AttackOutcome {
  std::uint64_t attempts = 0;
  std::uint64_t successes = 0;
  std::uint64_t detected = 0;
  std::uint64_t failed = 0;
  std::uint64_t distinct_outcomes = 0;

  [[nodiscard]] double success_rate() const noexcept {
    return attempts == 0 ? 0.0
                         : static_cast<double>(successes) /
                               static_cast<double>(attempts);
  }
  [[nodiscard]] double detection_rate() const noexcept {
    return attempts == 0 ? 0.0
                         : static_cast<double>(detected) /
                               static_cast<double>(attempts);
  }
};

/// The fixed cast of types used by all scenarios (registered once into the
/// caller's registry):
///   Victim       — the security-relevant object: fn-ptr + refcount +
///                  name ptr + length/flags (the paper's Fig. 1 shape)
///   SprayFull    — 4 attacker-valued u64 fields; same size class as
///                  Victim, same field arity as the Victim reads need
///   SpraySmall   — 3 fields; index 3 accesses fall off the end
///   Confused     — the type-confusion partner: one fully controlled u64
///                  (user_id) that naturally overlaps Victim.handler
///   Overflowable — inline 32-byte buffer followed by a fn-ptr; the
///                  in-object linear-overflow target (booby-trap study)
struct AttackTypes {
  TypeId victim;
  TypeId spray_full;
  TypeId spray_small;
  TypeId confused;
  TypeId overflowable;
};

AttackTypes register_attack_types(TypeRegistry& registry);

/// Use-after-free where the attacker reclaims the freed chunk with a RAW
/// byte buffer (string/array spray) crafted as a fake Victim.
AttackOutcome run_uaf_fake_object(const TypeRegistry& registry,
                                  const AttackTypes& types,
                                  const AttackConfig& config);

/// Use-after-free where the reclaiming allocation is itself a managed
/// object (SprayFull or SpraySmall) whose field values the attacker picks.
AttackOutcome run_uaf_reclaim(const TypeRegistry& registry,
                              const AttackTypes& types,
                              const AttackConfig& config, bool small_spray);

/// Type confusion: a live Confused object is processed by Victim code.
AttackOutcome run_type_confusion(const TypeRegistry& registry,
                                 const AttackTypes& types,
                                 const AttackConfig& config);

/// In-object linear overflow from Overflowable.data toward its fn-ptr.
AttackOutcome run_linear_overflow(const TypeRegistry& registry,
                                  const AttackTypes& types,
                                  const AttackConfig& config);

/// Use-before-initialization (§III-B-2 lists it among the bugs whose
/// deterministic triggering static OLR cannot prevent): the attacker
/// grooms the heap with payload bytes, a Victim is allocated over the
/// stale data, and the program reads fields before initializing them.
/// POLaR defeats this twice over: per-allocation offsets make the stale
/// byte at any field unpredictable, and olr_malloc zero-fills the object
/// (uninstrumented malloc does not).
AttackOutcome run_use_before_init(const TypeRegistry& registry,
                                  const AttackTypes& types,
                                  const AttackConfig& config);

/// The payload value a successful exploit must deliver into the hijacked
/// pointer (exposed so tests/benches can assert on it).
inline constexpr std::uint64_t kPayload = 0x4141414141414141ULL;

}  // namespace polar
