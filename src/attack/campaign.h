// Adaptive red-team campaign harness — the learning counterpart of the
// fixed case studies in attack.h.
//
// Where attack.h mounts each exploit as independent identically-configured
// trials, a campaign is a multi-round attacker that carries state BETWEEN
// trials: it probes the defense, updates a belief about the victim's field
// offsets, and only then strikes. Four campaign kinds cover the adaptive
// strategies the literature shows defeating layout defenses:
//
//   kProbeOracle      RUMA-style layout recovery: the attacker allocates a
//                     training object of the victim's type in the victim's
//                     (recycled) heap slot, plants markers through the
//                     legitimate API, and scans raw memory with overlapping
//                     misaligned reads to recover the field->offset map —
//                     then performs a surgical 8-byte overwrite at the
//                     believed handler offset of a live victim. When
//                     `attacker_knows_metadata` (and metadata is not
//                     sealed) the probe phase is replaced by a direct
//                     metadata read — the §VI-A residual leak channel.
//   kHeapSpray        stale-handle mass allocation: victim freed, the slot
//                     reclaimed with a crafted fake-victim byte image laid
//                     out under the probed belief, then the program uses
//                     the dangling handle.
//   kOverflowMarch    linear overflow from Overflowable.data, marching 8
//                     bytes further each round until it reaches the fn-ptr
//                     or trips a booby trap — the trap-density study.
//   kPartialOverwrite 2-byte partial pointer overwrite at an adaptively
//                     chosen offset, eliminating candidate offsets that
//                     observably did nothing — converges on any defense
//                     whose layout is stable across allocations.
//
// The campaign world is a byte-level simulation of one recycled heap slot
// (LIFO reuse pins every (re)allocation to the same address, which is what
// the real SizeClassHeap gives an attacker anyway), but the LAYOUTS are the
// real thing: natural_layout for kNone, StaticOlr's per-binary draw for
// kStaticOlr, randomize_layout per allocation for the stored POLaR backend,
// and a real StatelessSchedule entry — fixed per address — for the derived
// (stateless/hybrid) backends. Detection is modelled from each backend's
// actual capabilities: stored/hybrid refuse stale-handle access (liveness
// metadata), every POLaR/static layout validates its booby-trap bytes
// before the program trusts a live object, and pure stateless checks
// nothing on the access path.
//
// Determinism contract: every draw — defender layouts, schedule entry
// selection, attacker choices — comes from streams forked off
// CampaignConfig::seed, and the simulation never touches a real heap
// address, so a campaign's outcome (counts AND distinct-outcome
// signatures) is bit-identical across processes for a fixed config. This
// is the property the per-backend case studies in attack.cpp cannot give
// (their derived backends hash real addresses) and what makes
// attack_surface.json diffable in CI.
//
// Field-role contract: campaigns read the AttackTypes shape — victim field
// 0 is the hijack target (fn-ptr), field 1 a nonzero refcount, field 3 a
// small length; overflowable field 0 is the inline buffer, field 1 the
// fn-ptr. Wider victim types (extra trailing fields) are fine and raise
// entropy; that is how the high-entropy tests drive the oracle.
#pragma once

#include <cstdint>

#include "attack/attack.h"
#include "core/backend.h"
#include "core/layout.h"
#include "core/result.h"
#include "core/type_registry.h"

namespace polar {

enum class CampaignKind : std::uint8_t {
  kHeapSpray,
  kPartialOverwrite,
  kOverflowMarch,
  kProbeOracle,
};
inline constexpr std::size_t kCampaignKindCount = 4;

[[nodiscard]] const char* to_string(CampaignKind k) noexcept;

struct CampaignConfig {
  CampaignKind kind = CampaignKind::kProbeOracle;
  DefenseKind defense = DefenseKind::kPolar;
  /// Which randomization backend resolves the victim's accesses. Only
  /// meaningful under kPolar; rows for kNone/kStaticOlr carry it anyway so
  /// the sweep emits a full defense x backend grid.
  BackendConfig backend = BackendConfig::stored();
  LayoutPolicy policy{};
  /// The §VI-A metadata leak: the probe phase reads ground truth instead
  /// of scanning memory. Neutralized by metadata_sealed.
  bool attacker_knows_metadata = false;
  bool metadata_sealed = false;
  /// Attack-free control row: the attacker never acts; any detection the
  /// defense reports is a false positive (CampaignOutcome::
  /// control_violations must be zero).
  bool control = false;
  std::uint32_t rounds = 24;
  std::uint32_t trials_per_round = 32;
  /// Rounds of stable belief (plus a successful strike) before the
  /// campaign declares convergence and stops early.
  std::uint32_t converge_streak = 4;
  std::uint64_t seed = 1;

  /// kBadConfig on zero rounds/trials, a zero or out-of-range convergence
  /// streak, or a backend the runtime itself would reject.
  [[nodiscard]] Result<void> validate() const noexcept;
};

struct CampaignOutcome {
  /// Strike trials only (probe-phase allocations are accounted under
  /// `probes`, not `attempts`).
  AttackOutcome totals;
  std::uint32_t rounds_run = 0;
  /// The attacker's belief stabilized for converge_streak rounds AND the
  /// strikes under that belief succeed — the layout is effectively
  /// recovered. Campaigns stop early once converged.
  bool converged = false;
  std::uint32_t converged_round = 0;  ///< 1-based; 0 = never
  /// Probe-phase work: marker writes + overlapping scan reads performed
  /// across all rounds (the oracle's query cost).
  std::uint64_t probes = 0;
  /// Detections reported on control (attack-free) trials. Must be zero.
  std::uint64_t control_violations = 0;
  /// The census entropy axis this row joins against: per-allocation layout
  /// entropy the attacker faces (observe::type_entropy_bits for kPolar —
  /// schedule-capped for derived backends — and 0 for kNone/kStaticOlr,
  /// whose layout is fixed at every allocation of one binary).
  double entropy_bits = 0.0;
};

/// Runs one campaign. Aborts (POLAR_CHECK) on an invalid config — sweep
/// drivers validate at parse time; reaching this with a bad config is a
/// harness bug.
[[nodiscard]] CampaignOutcome run_campaign(const TypeRegistry& registry,
                                           const AttackTypes& types,
                                           const CampaignConfig& config);

/// Measured member-access throughput (million accesses per second) of the
/// configuration a campaign row attacks: raw natural-offset loads for
/// kNone, StaticOlr loads for kStaticOlr, the real Runtime access path for
/// kPolar under `backend`. This is the overhead axis of the red-team curve
/// (the only non-deterministic column in attack_surface.json).
[[nodiscard]] double measure_access_mops(const TypeRegistry& registry,
                                         const AttackTypes& types,
                                         DefenseKind defense,
                                         const BackendConfig& backend,
                                         const LayoutPolicy& policy,
                                         std::uint64_t seed,
                                         std::uint32_t objects,
                                         std::uint64_t iters);

}  // namespace polar
