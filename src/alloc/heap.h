// Size-class heap with controllable reuse — the substrate under the
// use-after-free case studies (paper §III-A-2, §V-C).
//
// Real-world UAF exploitation depends on the allocator handing the
// attacker the victim's freed block back. This heap makes that behaviour a
// knob: LIFO free lists give the classic deterministic reclaim that
// exploits rely on, an optional quarantine delays reuse (the
// redzone-allocator comparison of §VII-C), and randomized reuse models
// hardened allocators. The POLaR runtime plugs this in through its
// alloc_fn/free_fn hooks so exploit simulations run over realistic heap
// dynamics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "support/rng.h"

namespace polar {

struct HeapConfig {
  /// LIFO reuse (exploit-friendly, like glibc tcache). When false, FIFO.
  bool lifo_reuse = true;
  /// Freed blocks sit in a FIFO quarantine until its total byte size
  /// exceeds this budget; 0 disables (immediate reuse).
  std::size_t quarantine_bytes = 0;
  /// Fill quarantined blocks with kQuarantinePoison on entry and verify
  /// the fill on drain: a mismatch means something wrote through a
  /// dangling pointer while the block was parked (write-after-free into
  /// quarantined memory), counted in HeapStats::quarantine_poison_damage.
  bool poison_quarantine = true;
  /// Pick reuse victims at random instead of list order.
  bool randomize_reuse = false;
  std::uint64_t seed = 0xa110cULL;
};

struct HeapStats {
  std::uint64_t allocations = 0;
  std::uint64_t frees = 0;
  std::uint64_t reuse_hits = 0;    ///< allocations served from a free list
  std::uint64_t slab_refills = 0;  ///< fresh slab carvings
  std::size_t quarantined_bytes = 0;
  /// Quarantined blocks whose poison fill was damaged while parked —
  /// each is one detected write-after-free into quarantined memory.
  std::uint64_t quarantine_poison_damage = 0;
};

class SizeClassHeap {
 public:
  explicit SizeClassHeap(HeapConfig config = {});
  ~SizeClassHeap();

  SizeClassHeap(const SizeClassHeap&) = delete;
  SizeClassHeap& operator=(const SizeClassHeap&) = delete;

  void* allocate(std::size_t size);
  void deallocate(void* p, std::size_t size);

  /// The address the next allocate(size) would return, or nullptr if it
  /// would carve fresh slab memory. This is the attacker's oracle in the
  /// UAF simulator ("will my spray land on the victim chunk?") — with
  /// randomize_reuse it is intentionally unreliable.
  [[nodiscard]] const void* peek_next(std::size_t size) const;

  [[nodiscard]] const HeapStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const HeapConfig& config() const noexcept { return config_; }

  /// Number of size classes (for tests/benches sweeping classes).
  static constexpr std::size_t kNumClasses = 40;
  /// Byte written over quarantined blocks when poison_quarantine is on.
  static constexpr unsigned char kQuarantinePoison = 0xf5;
  /// Rounded block size for a request, or 0 if it bypasses the classes.
  [[nodiscard]] static std::size_t class_size(std::size_t size) noexcept;

  /// Runtime::alloc_fn / free_fn adapters.
  static void* alloc_hook(std::size_t size, void* ctx) {
    return static_cast<SizeClassHeap*>(ctx)->allocate(size);
  }
  static void free_hook(void* p, std::size_t size, void* ctx) {
    static_cast<SizeClassHeap*>(ctx)->deallocate(p, size);
  }

 private:
  static constexpr std::size_t kSlabBytes = 64 * 1024;
  static constexpr std::size_t kMaxSmall = 4096;

  [[nodiscard]] static int class_index(std::size_t size) noexcept;
  void* take_from_freelist(int cls);
  void drain_quarantine();

  HeapConfig config_;
  HeapStats stats_;
  Rng rng_;

  std::vector<std::deque<void*>> freelists_;  // per class
  struct Quarantined {
    void* p;
    int cls;
    std::size_t bytes;
  };
  std::deque<Quarantined> quarantine_;
  /// Running byte total of the blocks parked in quarantine_. This — not
  /// the observable HeapStats mirror — drives the drain loop, so stats
  /// consumers can never skew reuse policy, and the drain can prove the
  /// counter and the deque agree (empty deque <=> zero held bytes).
  std::size_t quarantine_held_bytes_ = 0;

  // Slab bump allocation for small classes.
  std::vector<std::unique_ptr<std::byte[]>> slabs_;
  std::byte* bump_ = nullptr;
  std::size_t bump_left_ = 0;
};

}  // namespace polar
