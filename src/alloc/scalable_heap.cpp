#include "alloc/scalable_heap.h"

#include <cstring>
#include <new>

#include "support/assert.h"

namespace polar {

// ------------------------------------------------------------ process state
//
// The live-heap registry maps heap id -> heap for the thread-exit hook: a
// dying thread must only retire LocalHeaps whose owning heap still exists.
// Leaked (never destroyed) so the hook stays safe during process exit no
// matter how static destruction interleaves with thread teardown.

namespace {
std::mutex& heaps_mu() {
  static std::mutex mu;
  return mu;
}

std::unordered_map<std::uint64_t, ScalableHeap*>& live_heaps() {
  static auto* m = new std::unordered_map<std::uint64_t, ScalableHeap*>();
  return *m;
}

std::uint64_t register_heap(ScalableHeap* heap) {
  static std::uint64_t next_id = 1;  // guarded by heaps_mu
  std::lock_guard<std::mutex> lock(heaps_mu());
  const std::uint64_t id = next_id++;
  live_heaps().emplace(id, heap);
  return id;
}
}  // namespace

/// Per-thread map of heap id -> LocalHeap, whose destructor is the
/// thread-exit hook: each LocalHeap of a still-live heap is retired
/// (remotes drained, quarantine flushed, free lists donated, chunks
/// orphaned) so late cross-thread frees against the dead thread neither
/// leak nor crash.
struct ScalableHeapTls {
  struct Slot {
    ScalableHeap* heap;
    void* local;  // ScalableHeap::LocalHeap*
  };
  std::unordered_map<std::uint64_t, Slot> locals;

  ~ScalableHeapTls() {
    for (auto& [id, slot] : locals) {
      std::lock_guard<std::mutex> lock(heaps_mu());
      if (live_heaps().count(id) != 0) {
        slot.heap->retire(
            *static_cast<ScalableHeap::LocalHeap*>(slot.local));
      }
    }
  }
};

namespace {
thread_local ScalableHeapTls t_heap_tls;
}  // namespace

// ------------------------------------------------------------- size classes

std::size_t ScalableHeap::class_size(std::size_t size) noexcept {
  // Identical geometry to SizeClassHeap::class_size: 16-byte steps to 256,
  // 64-byte steps to 1024, 256-byte steps to 4096.
  if (size == 0) size = 1;
  auto step_round = [](std::size_t s, std::size_t step, std::size_t base) {
    return base + ((s - base + step - 1) / step) * step;
  };
  if (size <= 256) return step_round(size, 16, 0);
  if (size <= 1024) return step_round(size, 64, 256);
  if (size <= kMaxSmall) return step_round(size, 256, 1024);
  return 0;
}

int ScalableHeap::class_index(std::size_t size) noexcept {
  const std::size_t cs = class_size(size);
  if (cs == 0) return -1;
  if (cs <= 256) return static_cast<int>(cs / 16 - 1);                // 0..15
  if (cs <= 1024) return static_cast<int>(16 + (cs - 256) / 64 - 1);  // 16..27
  return static_cast<int>(28 + (cs - 1024) / 256 - 1);                // 28..39
}

// ------------------------------------------------------------------- carves

void* ScalableHeap::carve_randomized(std::byte* begin, std::size_t block_size,
                                     std::size_t count, Rng& rng) {
  POLAR_CHECK(count > 0 && block_size >= sizeof(void*),
              "carve needs link-sized blocks");
  auto slot = [&](std::size_t i) { return begin + i * block_size; };
  auto link = [&](std::byte* b) -> void*& {
    return *reinterpret_cast<void**>(b);
  };
  // Sattolo's inside-out construction (snmalloc's slab randomisation):
  // after the loop the links form exactly one cycle covering every block,
  // uniform over the (count-1)! cyclic permutations of the slab.
  link(slot(0)) = slot(0);
  for (std::size_t i = 1; i < count; ++i) {
    const std::size_t j = rng.below(i);  // j in [0, i-1]
    link(slot(i)) = link(slot(j));
    link(slot(j)) = slot(i);
  }
  // Break the cycle at a random link so the head is uniform too: the free
  // list becomes a random Hamiltonian path over the slab's blocks.
  const std::size_t end = rng.below(count);
  void* head = link(slot(end));
  link(slot(end)) = nullptr;
  return head;
}

void* ScalableHeap::carve_sequential(std::byte* begin, std::size_t block_size,
                                     std::size_t count) {
  POLAR_CHECK(count > 0 && block_size >= sizeof(void*),
              "carve needs link-sized blocks");
  for (std::size_t i = 0; i + 1 < count; ++i) {
    *reinterpret_cast<void**>(begin + i * block_size) =
        begin + (i + 1) * block_size;
  }
  *reinterpret_cast<void**>(begin + (count - 1) * block_size) = nullptr;
  return begin;
}

// ---------------------------------------------------------------- lifecycle

ScalableHeap::ScalableHeap(ScalableHeapConfig config)
    : config_(config),
      heap_id_(register_heap(this)),
      chunk_map_(static_cast<unsigned>(kChunkBits)) {}

ScalableHeap::~ScalableHeap() {
  {
    std::lock_guard<std::mutex> lock(heaps_mu());
    live_heaps().erase(heap_id_);
  }
  for (void* c : chunk_memory_) {
    ::operator delete(c, std::align_val_t{kChunkBytes});
  }
  for (auto& [p, size] : large_allocs_) {
    (void)size;
    ::operator delete(p);
  }
}

ScalableHeap& ScalableHeap::process_heap() {
  static ScalableHeap* heap = new ScalableHeap(ScalableHeapConfig{});
  return *heap;
}

ScalableHeap::LocalHeap& ScalableHeap::local() {
  if (t_last_heap_ == heap_id_ && t_last_local_ != nullptr) {
    return *t_last_local_;
  }
  return local_slow();
}

ScalableHeap::LocalHeap& ScalableHeap::local_slow() {
  auto& slots = t_heap_tls.locals;
  auto it = slots.find(heap_id_);
  if (it == slots.end() ||
      static_cast<LocalHeap*>(it->second.local)
          ->retired.load(std::memory_order_relaxed)) {
    auto fresh = std::make_unique<LocalHeap>();
    LocalHeap* lh = fresh.get();
    {
      std::lock_guard<std::mutex> lock(locals_mu_);
      lh->id = next_local_id_++;
      lh->rng = Rng(config_.seed ^ (lh->id * 0x9e3779b97f4a7c15ULL));
      locals_.push_back(std::move(fresh));
    }
    it = slots.insert_or_assign(heap_id_, ScalableHeapTls::Slot{this, lh})
             .first;
  }
  t_last_heap_ = heap_id_;
  t_last_local_ = static_cast<LocalHeap*>(it->second.local);
  return *t_last_local_;
}

void ScalableHeap::retire_current_thread() {
  auto& slots = t_heap_tls.locals;
  auto it = slots.find(heap_id_);
  if (it == slots.end()) return;
  retire(*static_cast<LocalHeap*>(it->second.local));
  slots.erase(it);
  if (t_last_heap_ == heap_id_) {
    t_last_heap_ = 0;
    t_last_local_ = nullptr;
  }
}

// -------------------------------------------------------------- allocation

void* ScalableHeap::allocate(std::size_t size) {
  const int cls = class_index(size);
  if (cls < 0) return allocate_large(size);
  LocalHeap& lh = local();
  lh.allocations.bump();
  LocalHeap::FreeList& fl = lh.free_lists[cls];
  if (fl.head != nullptr) {
    void* p = fl.head;
    fl.head = *static_cast<void**>(p);
    --fl.count;
    lh.reuse_hits.bump();
    return p;
  }
  return allocate_slow(lh, cls, class_size(size));
}

void* ScalableHeap::allocate_slow(LocalHeap& lh, int cls, std::size_t block) {
  LocalHeap::FreeList& fl = lh.free_lists[cls];
  auto pop = [&]() {
    void* p = fl.head;
    fl.head = *static_cast<void**>(p);
    --fl.count;
    return p;
  };

  // 1. Message-passing first: batch-drain the remote stacks of every chunk
  //    this thread owns in the class.
  if (drain_remote(lh, cls) > 0) return pop();

  // 2. Adopt what dead threads left behind: donated free-list segments
  //    splice in O(1); orphaned chunks change owner so future frees route
  //    here, and their parked remote blocks drain on the spot.
  {
    bool adopted = false;
    {
      std::lock_guard<std::mutex> lock(orphan_mu_);
      auto& segments = orphan_segments_[cls];
      for (OrphanSegment& seg : segments) {
        // Splice the whole segment: walk to its tail once.
        void* tail = seg.head;
        while (*static_cast<void**>(tail) != nullptr) {
          tail = *static_cast<void**>(tail);
        }
        *static_cast<void**>(tail) = fl.head;
        fl.head = seg.head;
        fl.count += seg.count;
        adopted = true;
      }
      segments.clear();
      auto& chunks = orphan_chunks_[cls];
      for (ChunkMeta* m : chunks) {
        m->owner_id.store(lh.id, std::memory_order_relaxed);
        m->next_owned = lh.chunks[cls];
        lh.chunks[cls] = m;
        adopted = true;
      }
      chunks.clear();
    }
    if (adopted) {
      lh.orphan_adoptions.bump();
      drain_remote(lh, cls);
      if (fl.head != nullptr) return pop();
    }
  }

  // 3. Carve a fresh chunk-aligned slab and thread its free list in
  //    Sattolo-randomized order.
  auto* mem = static_cast<std::byte*>(
      ::operator new(kChunkBytes, std::align_val_t{kChunkBytes}));
  auto meta = std::make_unique<ChunkMeta>();
  ChunkMeta* m = meta.get();
  m->begin = mem;
  m->block_size = static_cast<std::uint32_t>(block);
  m->cls = static_cast<std::uint32_t>(cls);
  m->owner_id.store(lh.id, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(chunk_mu_);
    chunk_memory_.push_back(mem);
    chunk_metas_.push_back(std::move(meta));
  }
  // Distinct chunks occupy distinct granules, so concurrent carves never
  // contend on a slot; a collision would mean aligned operator new handed
  // out overlapping memory.
  POLAR_CHECK(chunk_map_.publish(mem, m), "chunk granule collision");
  const std::size_t count = kChunkBytes / block;
  fl.head = config_.randomize_slabs
                ? carve_randomized(mem, block, count, lh.rng)
                : carve_sequential(mem, block, count);
  fl.count = count;
  m->next_owned = lh.chunks[cls];
  lh.chunks[cls] = m;
  lh.slab_carves.bump();
  return pop();
}

void* ScalableHeap::allocate_large(std::size_t size) {
  void* p = ::operator new(size);
  LocalHeap& lh = local();
  lh.large_allocs.bump();
  std::lock_guard<std::mutex> lock(large_mu_);
  large_allocs_.emplace(p, size);
  return p;
}

// -------------------------------------------------------------------- free

void ScalableHeap::deallocate(void* p, std::size_t size_hint) {
  POLAR_CHECK(p != nullptr, "deallocate(null)");
  ChunkMeta* m = chunk_map_.lookup(p);
  if (m == nullptr) {
    POLAR_CHECK(free_large(p), "deallocate of a pointer this heap never "
                               "allocated");
    return;
  }
  LocalHeap& lh = local();
  // Sized-delete decoupling: the slab metadata is authoritative. A caller
  // size that rounds to a different class is a sized-delete bug in the
  // caller — surfaced in the stats, never trusted.
  if (size_hint != 0 && class_size(size_hint) != m->block_size) {
    lh.size_mismatches.bump();
  }
  lh.frees.bump();
  if (config_.quarantine_bytes > 0) {
    if (config_.poison_quarantine) {
      std::memset(p, kQuarantinePoison, m->block_size);
    }
    lh.quarantine.push_back({p, m});
    lh.quarantine_held += m->block_size;
    lh.quarantined_bytes.bump(m->block_size);
    while (lh.quarantine_held > config_.quarantine_bytes &&
           !lh.quarantine.empty()) {
      drain_quarantine(lh);
    }
    return;
  }
  free_block(lh, m, p);
}

void ScalableHeap::free_block(LocalHeap& lh, ChunkMeta* m, void* p) {
  if (m->owner_id.load(std::memory_order_relaxed) == lh.id) {
    LocalHeap::FreeList& fl = lh.free_lists[m->cls];
    *static_cast<void**>(p) = fl.head;
    fl.head = p;
    ++fl.count;
    return;
  }
  // Cross-thread (or orphaned-chunk) free: message-pass the block to the
  // owning chunk's MPSC stack. Push-only CAS — nothing ever pops single
  // nodes, so there is no ABA window; the owner takes the whole stack with
  // one exchange. A stale owner_id read only mis-routes the block onto the
  // remote stack, where the (new) owner's next drain recovers it.
  void* head = m->remote_head.load(std::memory_order_relaxed);
  do {
    *static_cast<void**>(p) = head;
  } while (!m->remote_head.compare_exchange_weak(
      head, p, std::memory_order_release, std::memory_order_relaxed));
  lh.remote_frees.bump();
}

bool ScalableHeap::free_large(void* p) {
  std::size_t size = 0;
  {
    std::lock_guard<std::mutex> lock(large_mu_);
    auto it = large_allocs_.find(p);
    if (it == large_allocs_.end()) return false;
    size = it->second;
    large_allocs_.erase(it);
  }
  (void)size;
  ::operator delete(p);
  local().large_frees.bump();
  return true;
}

std::uint64_t ScalableHeap::drain_remote(LocalHeap& lh, int cls) {
  std::uint64_t got = 0;
  LocalHeap::FreeList& fl = lh.free_lists[cls];
  for (ChunkMeta* m = lh.chunks[cls]; m != nullptr; m = m->next_owned) {
    // The acquire exchange synchronizes with every pusher's release CAS
    // (release sequences extend through the RMW chain), so the link words
    // written by each remote freer are visible before we chase them.
    void* list = m->remote_head.exchange(nullptr, std::memory_order_acquire);
    while (list != nullptr) {
      void* next = *static_cast<void**>(list);
      *static_cast<void**>(list) = fl.head;
      fl.head = list;
      ++fl.count;
      list = next;
      ++got;
    }
  }
  if (got > 0) {
    lh.remote_drains.bump();
    lh.remote_drained_blocks.bump(got);
  }
  return got;
}

void ScalableHeap::drain_quarantine(LocalHeap& lh) {
  const LocalHeap::Quarantined q = lh.quarantine.front();
  lh.quarantine.pop_front();
  const std::size_t bytes = q.meta->block_size;
  POLAR_CHECK(bytes <= lh.quarantine_held,
              "quarantine byte accounting underflow");
  lh.quarantine_held -= bytes;
  lh.quarantined_bytes.drop(bytes);
  // The block was dead the whole time it was parked: any byte that lost
  // the poison fill is a detected write-after-free into quarantined
  // memory (same detector the SizeClassHeap runs).
  if (config_.poison_quarantine) {
    const auto* b = static_cast<const unsigned char*>(q.p);
    for (std::size_t i = 0; i < bytes; ++i) {
      if (b[i] != kQuarantinePoison) {
        lh.quarantine_poison_damage.bump();
        break;
      }
    }
  }
  free_block(lh, q.meta, q.p);
}

// ------------------------------------------------------------- thread exit

void ScalableHeap::retire(LocalHeap& lh) {
  if (lh.retired.load(std::memory_order_relaxed)) return;
  // Quarantine first: parked blocks re-enter the free lists (with their
  // poison verified) before those lists are donated.
  while (!lh.quarantine.empty()) drain_quarantine(lh);
  // Orphan the chunks *before* the final remote drain: from here on, new
  // cross-thread frees route to the remote stacks (owner 0 matches no
  // thread), and the drain below sweeps everything that arrived earlier.
  // A free that lands in the tiny window after the drain parks on the
  // orphaned chunk's stack until an adopter sweeps it — never lost, never
  // dangling (ChunkMeta is immortal while the heap lives).
  std::lock_guard<std::mutex> lock(orphan_mu_);
  for (std::size_t cls = 0; cls < kNumClasses; ++cls) {
    for (ChunkMeta* m = lh.chunks[cls]; m != nullptr; m = m->next_owned) {
      m->owner_id.store(0, std::memory_order_relaxed);
    }
  }
  for (std::size_t cls = 0; cls < kNumClasses; ++cls) {
    drain_remote(lh, static_cast<int>(cls));
    LocalHeap::FreeList& fl = lh.free_lists[cls];
    if (fl.head != nullptr) {
      orphan_segments_[cls].push_back({fl.head, fl.count});
      fl.head = nullptr;
      fl.count = 0;
    }
    ChunkMeta* m = lh.chunks[cls];
    while (m != nullptr) {
      ChunkMeta* next = m->next_owned;
      m->next_owned = nullptr;
      orphan_chunks_[cls].push_back(m);
      m = next;
    }
    lh.chunks[cls] = nullptr;
  }
  lh.retired.store(true, std::memory_order_relaxed);
}

// ------------------------------------------------------------------- stats

ScalableHeapStats ScalableHeap::stats() const {
  ScalableHeapStats s;
  {
    std::lock_guard<std::mutex> lock(locals_mu_);
    for (const auto& lh : locals_) {
      s.allocations += lh->allocations.read();
      s.frees += lh->frees.read();
      s.reuse_hits += lh->reuse_hits.read();
      s.slab_carves += lh->slab_carves.read();
      s.remote_frees += lh->remote_frees.read();
      s.remote_drains += lh->remote_drains.read();
      s.remote_drained_blocks += lh->remote_drained_blocks.read();
      s.orphan_adoptions += lh->orphan_adoptions.read();
      s.large_allocs += lh->large_allocs.read();
      s.large_frees += lh->large_frees.read();
      s.size_mismatches += lh->size_mismatches.read();
      s.quarantine_poison_damage += lh->quarantine_poison_damage.read();
      s.quarantined_bytes += lh->quarantined_bytes.read();
      if (lh->retired.load(std::memory_order_relaxed)) ++s.thread_retires;
    }
  }
  {
    std::lock_guard<std::mutex> lock(chunk_mu_);
    s.live_chunks = chunk_metas_.size();
  }
  return s;
}

std::size_t ScalableHeap::lookup_block_size(const void* p) const noexcept {
  const ChunkMeta* m = chunk_map_.lookup(p);
  return m != nullptr ? m->block_size : 0;
}

}  // namespace polar
