#include "alloc/heap.h"

#include <cstring>
#include <new>

#include "support/assert.h"

namespace polar {

namespace {
// Classes: 16-byte steps up to 256, then 64-byte steps up to 1024, then
// 256-byte steps up to 4096. Requests above kMaxSmall go straight to
// operator new.
constexpr std::size_t step_round(std::size_t size, std::size_t step,
                                 std::size_t base) noexcept {
  return base + ((size - base + step - 1) / step) * step;
}
}  // namespace

std::size_t SizeClassHeap::class_size(std::size_t size) noexcept {
  if (size == 0) size = 1;
  if (size <= 256) return step_round(size, 16, 0);
  if (size <= 1024) return step_round(size, 64, 256);
  if (size <= kMaxSmall) return step_round(size, 256, 1024);
  return 0;
}

int SizeClassHeap::class_index(std::size_t size) noexcept {
  const std::size_t cs = class_size(size);
  if (cs == 0) return -1;
  if (cs <= 256) return static_cast<int>(cs / 16 - 1);         // 0..15
  if (cs <= 1024) return static_cast<int>(16 + (cs - 256) / 64 - 1);  // 16..27
  return static_cast<int>(28 + (cs - 1024) / 256 - 1);         // 28..39
}

SizeClassHeap::SizeClassHeap(HeapConfig config)
    : config_(config), rng_(config.seed), freelists_(kNumClasses) {}

SizeClassHeap::~SizeClassHeap() = default;

void* SizeClassHeap::take_from_freelist(int cls) {
  auto& list = freelists_[static_cast<std::size_t>(cls)];
  if (list.empty()) return nullptr;
  void* p = nullptr;
  if (config_.randomize_reuse) {
    const std::size_t i = rng_.below(list.size());
    p = list[i];
    list.erase(list.begin() + static_cast<std::ptrdiff_t>(i));
  } else if (config_.lifo_reuse) {
    p = list.back();
    list.pop_back();
  } else {
    p = list.front();
    list.pop_front();
  }
  return p;
}

void* SizeClassHeap::allocate(std::size_t size) {
  ++stats_.allocations;
  const int cls = class_index(size);
  if (cls < 0) return ::operator new(size);

  if (void* reused = take_from_freelist(cls)) {
    ++stats_.reuse_hits;
    return reused;
  }

  const std::size_t block = class_size(size);
  if (bump_left_ < block) {
    slabs_.push_back(std::make_unique<std::byte[]>(kSlabBytes));
    bump_ = slabs_.back().get();
    bump_left_ = kSlabBytes;
    ++stats_.slab_refills;
  }
  void* p = bump_;
  bump_ += block;
  bump_left_ -= block;
  return p;
}

void SizeClassHeap::deallocate(void* p, std::size_t size) {
  POLAR_CHECK(p != nullptr, "deallocate(null)");
  ++stats_.frees;
  const int cls = class_index(size);
  if (cls < 0) {
    ::operator delete(p);
    return;
  }
  if (config_.quarantine_bytes > 0) {
    const std::size_t bytes = class_size(size);
    if (config_.poison_quarantine) {
      std::memset(p, kQuarantinePoison, bytes);
    }
    quarantine_.push_back({p, cls, bytes});
    quarantine_held_bytes_ += bytes;
    drain_quarantine();
    return;
  }
  freelists_[static_cast<std::size_t>(cls)].push_back(p);
}

void SizeClassHeap::drain_quarantine() {
  // Oldest-first (pop-front only), against the dedicated running counter.
  // The empty() guard makes a counter/deque disagreement impossible to
  // spin or underflow on — and the CHECK below turns one into a loud bug.
  while (quarantine_held_bytes_ > config_.quarantine_bytes &&
         !quarantine_.empty()) {
    const Quarantined q = quarantine_.front();
    quarantine_.pop_front();
    POLAR_CHECK(q.bytes <= quarantine_held_bytes_,
                "quarantine byte accounting underflow");
    quarantine_held_bytes_ -= q.bytes;
    // The block was dead the entire time it was parked, so any byte that
    // no longer carries the poison fill is a write-after-free landing in
    // quarantined memory — exactly the dangling-pointer write quarantine
    // exists to starve.
    if (config_.poison_quarantine) {
      const auto* bytes = static_cast<const unsigned char*>(q.p);
      for (std::size_t i = 0; i < q.bytes; ++i) {
        if (bytes[i] != kQuarantinePoison) {
          ++stats_.quarantine_poison_damage;
          break;
        }
      }
    }
    freelists_[static_cast<std::size_t>(q.cls)].push_back(q.p);
  }
  POLAR_CHECK(!quarantine_.empty() || quarantine_held_bytes_ == 0,
              "quarantine drained empty but byte counter is nonzero");
  stats_.quarantined_bytes = quarantine_held_bytes_;  // observable mirror
}

const void* SizeClassHeap::peek_next(std::size_t size) const {
  const int cls = class_index(size);
  if (cls < 0) return nullptr;
  const auto& list = freelists_[static_cast<std::size_t>(cls)];
  if (list.empty() || config_.randomize_reuse) return nullptr;
  return config_.lifo_reuse ? list.back() : list.front();
}

}  // namespace polar
