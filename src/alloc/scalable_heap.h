// Scalable slab/chunk allocator — per-thread heaps with message-passing
// remote free (snmalloc's design point, SNIPPETS.md Snippet 2) carrying
// POLaR's randomized-reuse and quarantine semantics.
//
// The SizeClassHeap next door is a *model*: a single-owner heap whose
// reuse order is a knob, built so the UAF case studies can dial allocator
// determinism. This heap is the *substrate*: the thing the runtime
// actually allocates object memory from when nobody installed a hook. Its
// design goals are the opposite of the model's — no lock on either hot
// path, no caller-supplied size on free, and reuse order that is
// randomized by construction rather than by retrofit:
//
//  * Chunks. Memory is carved from 64 KiB chunk-aligned regions. A global
//    RadixPointerMap<ChunkMeta> (the same two-level lazily-committed radix
//    machinery the metadata pagemap uses) maps `addr >> 16` to the chunk's
//    metadata, so deallocate(p) derives the block size and owning thread
//    from the pointer alone — the caller's size is advisory, checked
//    against the metadata and counted in `size_mismatches` when it
//    disagrees (metadata wins; see the sized-delete parity test).
//
//  * LocalHeaps. Each thread owns a LocalHeap: per-size-class intrusive
//    free lists plus the list of chunks it carved. Allocation pops the
//    local list; same-thread free pushes it. Neither takes a lock.
//
//  * Randomized carve. A fresh slab's free list is permuted at carve time
//    with Sattolo's inside-out cyclic construction (one RNG draw per
//    block, a single random cycle broken at a random link), so the reuse
//    order an attacker grooms against is a fresh random walk per slab —
//    snmalloc's Randomisation design, replacing the deque-index shuffling
//    of the model heap.
//
//  * Remote free. Freeing memory another thread's LocalHeap owns CAS-
//    pushes the block onto the owning chunk's MPSC Treiber stack (push
//    only — no ABA), message-passing style. The owner batch-drains its
//    chunks' stacks when a free list runs dry, so cross-thread traffic
//    costs the *freer* one CAS and the *owner* one exchange per batch.
//
//  * Quarantine. Each LocalHeap parks its frees in a FIFO poison-verified
//    quarantine (0xf5, same byte and same write-after-free detection the
//    model heap pioneered) before they re-enter circulation, when a byte
//    budget is configured.
//
//  * Thread exit. A dying thread drains its remote stacks, flushes its
//    quarantine, donates its free lists to a global orphan pool, and marks
//    its chunks ownerless. Late frees against a dead owner CAS onto the
//    orphaned chunk's remote stack (always valid — ChunkMeta is immortal
//    while the heap lives); the next thread that runs dry adopts orphaned
//    lists and chunks wholesale.
//
// Stats are per-LocalHeap relaxed atomics (single writer, any reader) and
// aggregated on demand, mirroring RuntimeStats — safe to read while other
// threads allocate, which is what lets polar_stats export them live.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "support/radix_map.h"
#include "support/rng.h"

namespace polar {

struct ScalableHeapConfig {
  /// Per-thread quarantine byte budget; 0 disables (immediate reuse).
  std::size_t quarantine_bytes = 0;
  /// Fill quarantined blocks with kQuarantinePoison and verify on drain
  /// (write-after-free detection, counted per thread).
  bool poison_quarantine = true;
  /// Sattolo-permute each fresh slab's free list. Off = address order
  /// (ablation; reuse order then leaks carve order exactly like a bump
  /// allocator's).
  bool randomize_slabs = true;
  std::uint64_t seed = 0x5ca1'ab1e'5eedULL;
};

/// Aggregated snapshot across every LocalHeap the heap ever created
/// (retired threads' heaps are kept for accounting until destruction).
struct ScalableHeapStats {
  std::uint64_t allocations = 0;
  std::uint64_t frees = 0;
  std::uint64_t reuse_hits = 0;     ///< served from a local free list
  std::uint64_t slab_carves = 0;    ///< fresh chunk carvings
  std::uint64_t remote_frees = 0;   ///< frees pushed to another owner
  std::uint64_t remote_drains = 0;  ///< batch drains of remote stacks
  std::uint64_t remote_drained_blocks = 0;  ///< blocks received via drains
  std::uint64_t orphan_adoptions = 0;  ///< orphaned lists/chunks adopted
  std::uint64_t large_allocs = 0;   ///< > kMaxSmall, routed to operator new
  std::uint64_t large_frees = 0;
  /// deallocate() calls whose caller-supplied size disagreed with the slab
  /// metadata (the metadata won; each is one sized-delete bug surfaced).
  std::uint64_t size_mismatches = 0;
  std::uint64_t quarantine_poison_damage = 0;  ///< write-after-free hits
  std::uint64_t quarantined_bytes = 0;  ///< currently parked (sum)
  std::uint64_t thread_retires = 0;     ///< LocalHeaps flushed at thread exit
  std::uint64_t live_chunks = 0;        ///< chunks carved and still resident

  friend bool operator==(const ScalableHeapStats&,
                         const ScalableHeapStats&) = default;
};

class ScalableHeap {
 public:
  static constexpr std::size_t kChunkBits = 16;  ///< 64 KiB chunks
  static constexpr std::size_t kChunkBytes = std::size_t{1} << kChunkBits;
  static constexpr std::size_t kMaxSmall = 4096;
  static constexpr std::size_t kNumClasses = 40;
  static constexpr unsigned char kQuarantinePoison = 0xf5;

  explicit ScalableHeap(ScalableHeapConfig config = {});
  ~ScalableHeap();

  ScalableHeap(const ScalableHeap&) = delete;
  ScalableHeap& operator=(const ScalableHeap&) = delete;

  /// Lock-free except on refill (carve/adopt) and for large requests.
  void* allocate(std::size_t size);

  /// Size-oblivious free: the block's class comes from its chunk's
  /// metadata. `size_hint` (0 = unknown) is only *checked*: a hint that
  /// rounds to a different class than the metadata records increments
  /// size_mismatches and is otherwise ignored.
  void deallocate(void* p, std::size_t size_hint = 0);

  /// Runtime::alloc_fn / free_fn adapters (hook-compatible with
  /// SizeClassHeap's, so harnesses can swap substrates).
  static void* alloc_hook(std::size_t size, void* ctx) {
    return static_cast<ScalableHeap*>(ctx)->allocate(size);
  }
  static void free_hook(void* p, std::size_t size, void* ctx) {
    static_cast<ScalableHeap*>(ctx)->deallocate(p, size);
  }

  /// Same class geometry as SizeClassHeap (16-byte steps to 256, 64 to
  /// 1024, 256 to 4096): benches sweep identical classes on both heaps.
  [[nodiscard]] static std::size_t class_size(std::size_t size) noexcept;
  [[nodiscard]] static int class_index(std::size_t size) noexcept;

  /// Aggregates every LocalHeap's relaxed-atomic counters plus heap-level
  /// gauges. Safe to call while other threads allocate (counters may be
  /// mid-flight by a few operations; exact at quiescent points).
  [[nodiscard]] ScalableHeapStats stats() const;

  [[nodiscard]] const ScalableHeapConfig& config() const noexcept {
    return config_;
  }

  /// The block size deallocate() would derive for `p`, or 0 when p is not
  /// a chunk block (large allocation or foreign pointer). Test oracle for
  /// the sized-delete decoupling.
  [[nodiscard]] std::size_t lookup_block_size(const void* p) const noexcept;

  /// Software-prefetches the ChunkMeta line deallocate(p) will consult —
  /// the chunk-map twin of Runtime::prefetch, for loops freeing a chain of
  /// blocks: issue it on the next block while releasing the current one.
  /// No-op for non-chunk pointers.
  void prefetch_block(const void* p) const noexcept {
    ChunkMeta* meta = chunk_map_.lookup(p);
#if defined(__GNUC__) || defined(__clang__)
    if (meta != nullptr) __builtin_prefetch(meta, 0, 3);
#else
    (void)meta;
#endif
  }

  /// Flushes the calling thread's LocalHeap as if the thread were exiting:
  /// drains remote stacks, flushes quarantine, donates free lists, orphans
  /// chunks. The thread may keep allocating — it gets a fresh LocalHeap on
  /// its next call. Regression-test hook for the thread-exit path.
  void retire_current_thread();

  /// Builds a Sattolo-randomized (single random cycle, broken at a random
  /// link) free list over `count` blocks of `block_size` bytes starting at
  /// `begin`: returns the head, null-terminates the tail, threads links
  /// through each block's first word. Exposed for the determinism /
  /// cycle-coverage unit tests; `rng` advances exactly `count` draws.
  [[nodiscard]] static void* carve_randomized(std::byte* begin,
                                              std::size_t block_size,
                                              std::size_t count, Rng& rng);
  /// Address-order carve (randomize_slabs off): head = begin.
  [[nodiscard]] static void* carve_sequential(std::byte* begin,
                                              std::size_t block_size,
                                              std::size_t count);

  /// The process-wide heap the Runtime routes raw_alloc through when no
  /// alloc hook is installed (RuntimeConfig::scalable_heap). Constructed
  /// on first use, never destroyed (teardown-order safety: Runtimes with
  /// static storage duration may free into it during exit).
  [[nodiscard]] static ScalableHeap& process_heap();

 private:
  friend struct ScalableHeapTls;  ///< thread-exit hook (scalable_heap.cpp)

  struct LocalHeap;

  /// Per-chunk metadata, immortal while the heap lives (allocated from a
  /// never-shrinking registry), so a late remote free can always reach the
  /// remote stack of a long-orphaned chunk. Alignment keeps the hot words
  /// of different chunks off each other's cache lines.
  struct alignas(64) ChunkMeta {
    /// MPSC Treiber stack of remotely freed blocks. Push-only CAS from any
    /// thread; the owner (or an adopter) drains with exchange(nullptr).
    /// Push-only means no ABA window: nothing pops single nodes.
    std::atomic<void*> remote_head{nullptr};
    /// Owning LocalHeap's id; 0 = orphaned. Routing hint only — a stale
    /// read routes a block to the remote stack, never corrupts it.
    std::atomic<std::uint64_t> owner_id{0};
    std::byte* begin = nullptr;
    std::uint32_t block_size = 0;
    std::uint32_t cls = 0;
    ChunkMeta* next_owned = nullptr;  ///< owner's per-class chunk list
  };

  /// One thread's view of the heap. Stats are relaxed atomics: the owner
  /// is the only writer, aggregation reads concurrently (TSan-clean).
  struct alignas(64) LocalHeap {
    struct Counter {
      std::atomic<std::uint64_t> v{0};
      void bump(std::uint64_t n = 1) noexcept {
        v.store(v.load(std::memory_order_relaxed) + n,
                std::memory_order_relaxed);
      }
      void drop(std::uint64_t n) noexcept {
        v.store(v.load(std::memory_order_relaxed) - n,
                std::memory_order_relaxed);
      }
      [[nodiscard]] std::uint64_t read() const noexcept {
        return v.load(std::memory_order_relaxed);
      }
    };

    std::uint64_t id = 0;  ///< process-unique, nonzero
    Rng rng{0};
    struct FreeList {
      void* head = nullptr;
      std::uint64_t count = 0;
    };
    FreeList free_lists[kNumClasses] = {};
    ChunkMeta* chunks[kNumClasses] = {};  ///< owned chunks, per class

    struct Quarantined {
      void* p;
      ChunkMeta* meta;
    };
    std::deque<Quarantined> quarantine;
    std::size_t quarantine_held = 0;  ///< bytes parked (drives the drain)

    Counter allocations, frees, reuse_hits, slab_carves, remote_frees,
        remote_drains, remote_drained_blocks, orphan_adoptions, large_allocs,
        large_frees, size_mismatches, quarantine_poison_damage,
        quarantined_bytes;
    // Written by the owning thread at exit, read by any stats() caller
    // (which holds locals_mu_, not the retiring thread's lock) — atomic
    // for the same single-writer/any-reader reason as the counters.
    std::atomic<bool> retired{false};
  };

  /// Free-list segment donated by a retiring thread (whole list, spliced
  /// in O(1) by an adopter).
  struct OrphanSegment {
    void* head = nullptr;
    std::uint64_t count = 0;
  };

  [[nodiscard]] LocalHeap& local();
  [[nodiscard]] LocalHeap& local_slow();
  void* allocate_slow(LocalHeap& lh, int cls, std::size_t block);
  void free_block(LocalHeap& lh, ChunkMeta* m, void* p);
  /// Drains every remote stack of lh's chunks for `cls` into the local
  /// free list; returns the number of blocks received.
  std::uint64_t drain_remote(LocalHeap& lh, int cls);
  /// Pops one quarantined block past the budget and routes it home.
  void drain_quarantine(LocalHeap& lh);
  void retire(LocalHeap& lh);

  void* allocate_large(std::size_t size);
  bool free_large(void* p);

  ScalableHeapConfig config_;
  const std::uint64_t heap_id_;  ///< process-unique; keys the TLS memo

  /// chunk address >> kChunkBits -> ChunkMeta*. Lock-free lookups on the
  /// free path; publications serialized by chunk_mu_.
  RadixPointerMap<ChunkMeta> chunk_map_;

  mutable std::mutex chunk_mu_;
  std::vector<void*> chunk_memory_;  ///< 64 KiB aligned regions (owned)
  std::vector<std::unique_ptr<ChunkMeta>> chunk_metas_;

  mutable std::mutex locals_mu_;
  std::vector<std::unique_ptr<LocalHeap>> locals_;  ///< live + retired
  std::uint64_t next_local_id_ = 1;                 ///< guarded by locals_mu_

  mutable std::mutex orphan_mu_;
  std::vector<OrphanSegment> orphan_segments_[kNumClasses];
  std::vector<ChunkMeta*> orphan_chunks_[kNumClasses];

  mutable std::mutex large_mu_;
  std::unordered_map<void*, std::size_t> large_allocs_;

  /// Last-heap TLS memo (same pattern as Runtime::tls()).
  static thread_local inline std::uint64_t t_last_heap_ = 0;
  static thread_local inline LocalHeap* t_last_local_ = nullptr;
};

}  // namespace polar
