#include "baseline/static_olr.h"

namespace polar {

StaticOlr::StaticOlr(const TypeRegistry& registry, const LayoutPolicy& policy,
                     std::uint64_t binary_seed)
    : registry_(&registry), binary_seed_(binary_seed) {
  Rng rng(binary_seed);
  layouts_.reserve(registry.size());
  for (const TypeInfo& info : registry) {
    layouts_.push_back(randomize_layout(info, policy, rng));
  }
}

}  // namespace polar
