// Static (compile-time) Object Layout Randomization baseline — the
// randstruct / DSLR / RFOR approach the paper compares against (§III,
// §VII-A).
//
// One layout is drawn per type when the "binary" is built (constructor,
// keyed by a binary seed). Every allocation of that type, in every
// "execution" of the same binary, shares that layout — which is exactly
// the weakness POLaR attacks: reverse-engineering the binary or observing
// one crash reveals the layout for good. Rebuilding with a different seed
// models shipping a re-diversified binary.
//
// Like real randstruct there is no per-access runtime cost: offsets are
// fixed constants of the binary.
#pragma once

#include <cstdint>
#include <cstring>
#include <new>
#include <vector>

#include "core/layout.h"
#include "core/type_registry.h"
#include "support/rng.h"

namespace polar {

class StaticOlr {
 public:
  /// "Compiles the binary": draws one layout per registered type from
  /// `binary_seed`. The same (registry, policy, seed) always produces the
  /// same layouts — the reproduction problem of §III-B-2.
  StaticOlr(const TypeRegistry& registry, const LayoutPolicy& policy,
            std::uint64_t binary_seed);

  static constexpr bool kRandomized = true;

  [[nodiscard]] const Layout& layout_of(TypeId type) const {
    return layouts_[type.value];
  }

  void* alloc(TypeId type) {
    const Layout& l = layout_of(type);
    void* p = ::operator new(l.size);
    std::memset(p, 0, l.size);
    return p;
  }

  void free_object(void* base, TypeId /*type*/) { ::operator delete(base); }

  [[nodiscard]] void* field_ptr(void* base, TypeId type,
                                std::uint32_t field) const {
    return static_cast<unsigned char*>(base) + layout_of(type).offsets[field];
  }

  template <class T>
  [[nodiscard]] T load(void* base, TypeId type, std::uint32_t field) const {
    T v;
    std::memcpy(&v, field_ptr(base, type, field), sizeof(T));
    return v;
  }

  template <class T>
  void store(void* base, TypeId type, std::uint32_t field, const T& v) const {
    std::memcpy(field_ptr(base, type, field), &v, sizeof(T));
  }

  /// All instances share the layout, so object copy is a flat memcpy —
  /// the efficiency static OLR keeps and POLaR gives up.
  void copy_object(void* dst, const void* src, TypeId type) {
    std::memcpy(dst, src, layout_of(type).size);
  }

  void* clone_object(const void* src, TypeId type) {
    const Layout& l = layout_of(type);
    void* p = ::operator new(l.size);
    std::memcpy(p, src, l.size);
    return p;
  }

  [[nodiscard]] const TypeRegistry& registry() const { return *registry_; }
  [[nodiscard]] std::uint64_t binary_seed() const { return binary_seed_; }

 private:
  const TypeRegistry* registry_;
  std::uint64_t binary_seed_;
  std::vector<Layout> layouts_;  // indexed by TypeId
};

}  // namespace polar
