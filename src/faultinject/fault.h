// Deterministic fault-injection harness — the robustness counterpart of
// the attack simulator. Where src/attack drives *exploits* against the
// randomization, this harness drives *faults* against the detection and
// response machinery itself: it runs the real workloads (minipng, minijpg,
// the mjs interpreter, the SPEC minis) over a live runtime and, at a
// chosen backing allocation, injects one of seven fault classes — trap
// smashes, linear overflows, stale reads/writes, double frees, bit flips
// in the runtime's own metadata, allocation failure — then asserts the
// detection matrix:
//
//   * every injected fault surfaces as exactly its expected Violation
//     class through the policy engine (no misclassification),
//   * no other class reports anything (zero false positives),
//   * under a non-abort policy the workload still produces its fault-free
//     result (injections are scoped to harness-owned scratch objects, so
//     detection must cost the program nothing),
//   * fault-free control runs report nothing at all,
//   * fault classes the configured randomization backend cannot detect
//     (fault_detectable) are never injected — those rows run fault-free,
//     must come back clean, and are reported as SKIP instead of being
//     silently passed or expected-to-fail.
//
// The injection point is the runtime's alloc_fn hook: backing allocations
// are counted, and when the count reaches FaultPlan::at_alloc the fault is
// performed mid-workload on a scratch object — the same mechanism for all
// four workloads, whether they drive the runtime through SessionSpace or
// the legacy PolarSpace surface.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "core/backend.h"
#include "core/result.h"
#include "core/stats.h"
#include "core/violation_policy.h"

namespace polar::faultinject {

/// The fault classes the harness can inject. Each maps to exactly one
/// expected Violation (see expected_violation) — together they cover every
/// detector the runtime has.
enum class FaultKind : std::uint8_t {
  kNone,            ///< control run: no injection, zero reports expected
  kTrapSmash,       ///< overwrite one booby-trap byte of a live object
  kLinearOverflow,  ///< memset from a field to the end of the allocation
  kUafRead,         ///< read a field through a destroyed handle
  kUafWrite,        ///< write a field through a destroyed handle
  kDoubleFree,      ///< destroy the same handle twice
  kMetadataFlip,    ///< flip bits inside the runtime's own metadata record
  kAllocFail,       ///< backing allocator returns nullptr mid-workload
};
inline constexpr std::size_t kFaultKindCount = 8;

[[nodiscard]] const char* to_string(FaultKind k) noexcept;

/// The Violation class each fault must surface as (the detection matrix's
/// ground truth). kNone for FaultKind::kNone.
[[nodiscard]] Violation expected_violation(FaultKind k) noexcept;

/// Whether `backend` can detect fault class `k` at all — the capability
/// table the matrix consults BEFORE injecting. Undetectable combinations
/// are never injected (a stateless backend would turn an injected stale
/// read into a genuine dangling dereference, since the whole point of
/// that backend is to not consult liveness metadata on the access path);
/// instead the row runs fault-free and must come back clean, and the
/// report labels it SKIP rather than silently passing.
///
///   * kUafRead/kUafWrite   — stored and hybrid gate accesses on liveness
///                            metadata; pure stateless does not.
///   * kMetadataFlip        — only record checksums catch stray writes
///                            into the runtime's own metadata (derived
///                            backends run checksum-free by construction).
///   * everything else      — alloc/free-path detectors (trap check,
///                            double-free, OOM) that every backend routes
///                            through the shared record machinery.
[[nodiscard]] bool fault_detectable(FaultKind k,
                                    const BackendConfig& backend) noexcept;

/// The four real workloads the harness drives.
enum class WorkloadKind : std::uint8_t { kMinipng, kMinijpg, kMjs, kSpec };
inline constexpr std::size_t kWorkloadKindCount = 4;

[[nodiscard]] const char* to_string(WorkloadKind w) noexcept;

/// One deterministic injection: trigger `kind` when the runtime performs
/// its `at_alloc`-th backing allocation on behalf of the workload.
struct FaultPlan {
  FaultKind kind = FaultKind::kNone;
  std::uint64_t at_alloc = 0;  ///< 1-based; 0 never triggers
  std::uint64_t seed = 0xfa17ULL;
};

/// Everything one run produced, plus the matrix predicates over it.
struct FaultOutcome {
  WorkloadKind workload = WorkloadKind::kMinipng;
  FaultPlan plan{};
  bool injected = false;     ///< the trigger point was reached
  /// The configured backend cannot detect this fault class, so the
  /// harness ran the row WITHOUT injecting (see fault_detectable) and
  /// requires cleanliness instead of detection.
  bool skipped = false;
  bool workload_ok = false;  ///< workload matched its fault-free reference
  Violation expected = Violation::kNone;
  std::uint64_t expected_reports = 0;    ///< engine count for `expected`
  std::uint64_t unexpected_reports = 0;  ///< sum over every other class
  std::uint64_t escalations = 0;
  std::size_t leaked_objects = 0;  ///< records still live after the run
  std::size_t quarantined_blocks = 0;
  RuntimeStats stats{};
  /// Trace-ring accounting for the run (zero unless the harness enables
  /// sampling and the runtime was built with POLAR_TRACE=ON).
  std::uint64_t trace_recorded = 0;
  std::uint64_t trace_dropped = 0;

  /// The fault fired and surfaced as exactly its expected class.
  [[nodiscard]] bool detected() const noexcept {
    return injected && expected_reports >= 1 && unexpected_reports == 0;
  }
  /// The fault-free invariant: correct output, zero reports of any class.
  [[nodiscard]] bool clean() const noexcept {
    return workload_ok && expected_reports == 0 && unexpected_reports == 0;
  }
  /// What the matrix requires of this row: detection for injected rows
  /// (plus an unharmed workload, since the harness never runs under an
  /// abort policy), cleanliness for control rows and for rows the backend
  /// cannot detect (which run fault-free — a skipped row that reports
  /// anything is a false positive).
  [[nodiscard]] bool passed() const noexcept {
    if (plan.kind == FaultKind::kNone || skipped) return clean();
    return detected() && workload_ok && leaked_objects == 0;
  }
};

/// Knobs shared by every run of one matrix sweep.
struct HarnessConfig {
  /// Must not abort for any class the matrix injects — the harness asserts
  /// survival. Default (all kReport) is the report-and-refuse posture.
  ViolationPolicy policy{};
  /// The randomization backend every run uses. Fault classes the backend
  /// cannot detect (fault_detectable) become SKIP rows: run fault-free,
  /// required clean. The default stored backend detects everything.
  BackendConfig backend = BackendConfig::stored();
  /// Back the runtime with a SizeClassHeap instead of operator new
  /// (realistic reuse dynamics under injected frees).
  bool use_heap = false;
  std::size_t heap_quarantine_bytes = 0;
  std::uint64_t seed = 0x5eedfa17ULL;
  std::uint32_t spec_scale = 1;
  /// Sample every Nth runtime op into the trace ring (0 = tracing off).
  /// Violations injected by the harness land in the ring regardless of the
  /// sampling phase, so `fault_matrix --stats` can show the full context.
  std::uint32_t trace_sample_interval = 0;
};

/// Runs one workload once with one injection plan and collects the
/// evidence from the policy engine's per-class counters.
[[nodiscard]] FaultOutcome run_one(WorkloadKind workload, const FaultPlan& plan,
                                   const HarnessConfig& cfg);

/// The full detection matrix: every workload crossed with every fault kind
/// including the fault-free control — 4 x 8 rows.
[[nodiscard]] std::vector<FaultOutcome> run_matrix(const HarnessConfig& cfg);

/// Attack-free control rows only: every workload run with a kNone plan —
/// the zero-false-positive gate shared by fault_matrix and polar_redteam.
/// Each row must come back FaultOutcome::clean(); a report of any class on
/// an attack-free run is a false positive regardless of backend.
[[nodiscard]] std::vector<FaultOutcome> run_controls(const HarnessConfig& cfg);

/// True iff every row passed (see FaultOutcome::passed): detectable rows
/// detected, skipped and control rows clean. Skipped rows can no longer
/// fail a matrix silently — they are exercised fault-free and any report
/// they produce is a false positive.
[[nodiscard]] bool matrix_passes(const std::vector<FaultOutcome>& outcomes);

/// Human-readable matrix table (one row per outcome). Rows the backend
/// cannot detect print as "SKIP (undetectable)".
void print_matrix(std::ostream& os, const std::vector<FaultOutcome>& outcomes);

}  // namespace polar::faultinject
