#include "faultinject/fault.h"

#include <algorithm>
#include <cstring>
#include <exception>
#include <iomanip>
#include <new>
#include <ostream>
#include <span>

#include "alloc/heap.h"
#include "core/session.h"
#include "core/space.h"
#include "support/hash.h"
#include "workloads/minijpg.h"
#include "workloads/minipng.h"
#include "workloads/mjs/engine.h"
#include "workloads/spec_suite.h"

namespace polar::faultinject {

const char* to_string(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kNone: return "none";
    case FaultKind::kTrapSmash: return "trap-smash";
    case FaultKind::kLinearOverflow: return "linear-overflow";
    case FaultKind::kUafRead: return "uaf-read";
    case FaultKind::kUafWrite: return "uaf-write";
    case FaultKind::kDoubleFree: return "double-free";
    case FaultKind::kMetadataFlip: return "metadata-flip";
    case FaultKind::kAllocFail: return "alloc-fail";
  }
  return "?";
}

Violation expected_violation(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kNone: return Violation::kNone;
    case FaultKind::kTrapSmash: return Violation::kTrapDamaged;
    case FaultKind::kLinearOverflow: return Violation::kTrapDamaged;
    case FaultKind::kUafRead: return Violation::kUseAfterFree;
    case FaultKind::kUafWrite: return Violation::kUseAfterFree;
    case FaultKind::kDoubleFree: return Violation::kDoubleFree;
    case FaultKind::kMetadataFlip: return Violation::kMetadataDamaged;
    case FaultKind::kAllocFail: return Violation::kOom;
  }
  return Violation::kNone;
}

bool fault_detectable(FaultKind k, const BackendConfig& backend) noexcept {
  switch (k) {
    case FaultKind::kUafRead:
    case FaultKind::kUafWrite:
      // A pure stateless backend derives field addresses from the base
      // pointer alone; a stale handle recomputes a dangling pointer with
      // no metadata consulted, so nothing can fire. (Injecting anyway
      // would be a real use-after-free of heap memory, not a detection
      // test.) Hybrid re-adds the per-access liveness gate; stored always
      // checks the record.
      return backend.kind != BackendKind::kStateless;
    case FaultKind::kMetadataFlip:
      // Only record checksums catch stray writes into the runtime's own
      // metadata. Derived backends run checksum-free by construction
      // (BackendConfig::validate rejects the combination).
      return backend.options.checksum;
    case FaultKind::kNone:
    case FaultKind::kTrapSmash:
    case FaultKind::kLinearOverflow:
    case FaultKind::kDoubleFree:
    case FaultKind::kAllocFail:
      // Alloc/free-path detectors: every backend keeps the shared record
      // machinery for lifecycle operations, so trap checks, double-free
      // detection, and OOM refusal work regardless of kind.
      return true;
  }
  return true;
}

const char* to_string(WorkloadKind w) noexcept {
  switch (w) {
    case WorkloadKind::kMinipng: return "minipng";
    case WorkloadKind::kMinijpg: return "minijpg";
    case WorkloadKind::kMjs: return "mjs";
    case WorkloadKind::kSpec: return "spec";
  }
  return "?";
}

namespace {

/// Counts the runtime's backing allocations through the alloc_fn hook and
/// performs the planned fault when the trigger count is reached. Every
/// injection operates on a scratch object the injector creates itself, so
/// the workload's own objects are never touched — detection must be a
/// side effect the program survives, not a behavior change.
///
/// Reentrancy: the scratch operations run *inside* the workload's
/// raw_alloc (which holds no runtime lock), so `injecting_` keeps the
/// nested backing allocations out of the trigger count, and `fail_next_`
/// is checked before anything else so the one-shot OOM only ever hits the
/// injector's own scratch allocation.
class Injector {
 public:
  Injector(const FaultPlan& plan, SizeClassHeap* heap) noexcept
      : plan_(plan), heap_(heap) {}

  void attach(Runtime& rt, TypeId scratch) noexcept {
    rt_ = &rt;
    scratch_ = scratch;
  }

  [[nodiscard]] bool fired() const noexcept { return fired_; }

  static void* alloc_hook(std::size_t size, void* ctx) {
    auto* in = static_cast<Injector*>(ctx);
    if (in->fail_next_) {
      in->fail_next_ = false;
      return nullptr;
    }
    void* p = in->heap_ != nullptr ? in->heap_->allocate(size)
                                   : ::operator new(size);
    if (!in->injecting_ && in->rt_ != nullptr) {
      ++in->count_;
      if (!in->fired_ && in->plan_.kind != FaultKind::kNone &&
          in->plan_.at_alloc != 0 && in->count_ == in->plan_.at_alloc) {
        in->fired_ = true;
        in->injecting_ = true;
        in->trigger();
        in->injecting_ = false;
      }
    }
    return p;
  }

  static void free_hook(void* p, std::size_t size, void* ctx) {
    auto* in = static_cast<Injector*>(ctx);
    if (in->heap_ != nullptr) {
      in->heap_->deallocate(p, size);
    } else {
      ::operator delete(p);
    }
  }

 private:
  void trigger() {
    Session session(*rt_);
    switch (plan_.kind) {
      case FaultKind::kAllocFail: {
        fail_next_ = true;
        (void)session.create(scratch_);  // consumed by the nested raw_alloc
        fail_next_ = false;
        break;
      }
      case FaultKind::kTrapSmash:
      case FaultKind::kLinearOverflow: {
        const Result<ObjRef> obj = session.create(scratch_);
        if (!obj.ok()) break;
        smash(obj.value().base);
        (void)session.destroy(obj.value());  // trap check fires here
        break;
      }
      case FaultKind::kUafRead:
      case FaultKind::kUafWrite: {
        const Result<ObjRef> obj = session.create(scratch_);
        if (!obj.ok()) break;
        (void)session.destroy(obj.value());
        if (plan_.kind == FaultKind::kUafRead) {
          (void)session.read<std::uint64_t>(obj.value(), 1);
        } else {
          (void)session.write<std::uint64_t>(obj.value(), 1,
                                             std::uint64_t{0x4141414141414141});
        }
        break;
      }
      case FaultKind::kDoubleFree: {
        const Result<ObjRef> obj = session.create(scratch_);
        if (!obj.ok()) break;
        (void)session.destroy(obj.value());
        (void)session.destroy(obj.value());
        break;
      }
      case FaultKind::kMetadataFlip: {
        const Result<ObjRef> obj = session.create(scratch_);
        if (!obj.ok()) break;
        rt_->debug_corrupt_metadata(obj.value().base, 0xdeadbeefULL);
        const Result<std::uint64_t> r =
            session.read<std::uint64_t>(obj.value(), 1);
        // With checksums on the read evicts the record (the runtime
        // deliberately leaks the block). Checksum-free configurations
        // never reach this trigger — fault_detectable turns their
        // metadata-flip rows into fault-free SKIP rows — but stay
        // defensive: if the damage ever went unseen, undo the flip (XOR
        // twice) so the release's trap check doesn't trip over the
        // corrupted trap_value, keeping the run collateral-free.
        if (r.ok()) {
          rt_->debug_corrupt_metadata(obj.value().base, 0xdeadbeefULL);
          (void)session.destroy(obj.value());
        }
        break;
      }
      case FaultKind::kNone:
        break;
    }
  }

  /// Damages the scratch object's booby traps in place.
  void smash(void* base) {
    const ObjectRecord* rec = rt_->inspect(base);
    if (rec == nullptr) return;
    auto* bytes = static_cast<unsigned char*>(base);
    if (plan_.kind == FaultKind::kTrapSmash) {
      // Precision strike: flip one byte of the first trap region.
      if (!rec->layout->traps.empty()) {
        bytes[rec->layout->traps.front().offset] ^= 0xffu;
      }
      return;
    }
    // Linear overflow: run off the lowest-offset declared field to the end
    // of the allocation, the way an unchecked memcpy/loop would. If no
    // trap happens to lie above that field in this draw, start at byte 0
    // so canary damage is guaranteed.
    std::uint32_t start = rec->layout->size;
    for (const std::uint32_t off : rec->layout->offsets) {
      start = std::min(start, off);
    }
    bool hits_trap = false;
    for (const TrapRegion& tr : rec->layout->traps) {
      hits_trap = hits_trap || tr.offset + tr.size > start;
    }
    if (!hits_trap) start = 0;
    std::memset(bytes + start, 0x61, rec->layout->size - start);
  }

  const FaultPlan plan_;
  SizeClassHeap* heap_;
  Runtime* rt_ = nullptr;
  TypeId scratch_{};
  std::uint64_t count_ = 0;
  bool fired_ = false;
  bool injecting_ = false;
  bool fail_next_ = false;
};

// --- workload drivers -------------------------------------------------------
// Each runs the real workload over the injected runtime and compares its
// output against an uninstrumented DirectSpace reference, so "workload_ok"
// means bit-identical results despite the mid-run fault.

bool run_minipng(Runtime& rt, const TypeRegistry& reg,
                 const minipng::PngTypes& t, std::uint64_t seed) {
  const std::vector<std::uint8_t> image =
      minipng::encode_test_image(16, 16, seed);
  const std::span<const std::uint8_t> data(image.data(), image.size());
  DirectSpace direct(reg);
  const minipng::DecodeResult want = minipng::decode(direct, t, data);
  SessionSpace space(rt);
  const minipng::DecodeResult got = minipng::decode(space, t, data);
  return want.ok && got.ok && got.width == want.width &&
         got.height == want.height && got.pixel_hash == want.pixel_hash;
}

bool run_minijpg(Runtime& rt, const TypeRegistry& reg,
                 const minijpg::JpgTypes& t, std::uint64_t seed) {
  const std::vector<std::uint8_t> image =
      minijpg::encode_test_image(16, 16, seed);
  const std::span<const std::uint8_t> data(image.data(), image.size());
  DirectSpace direct(reg);
  const minijpg::DecodeResult want = minijpg::decode(direct, t, data);
  SessionSpace space(rt);
  const minijpg::DecodeResult got = minijpg::decode(space, t, data);
  return want.ok && got.ok && got.width == want.width &&
         got.height == want.height && got.components == want.components &&
         got.sample_hash == want.sample_hash;
}

/// Engine-internal objects, arrays, strings, and property records all
/// churn through the runtime — enough traffic that any trigger point in
/// the first dozen allocations is reached.
constexpr const char* kMjsScript =
    "function mix(o, i) { o.a = o.a + i; o.b = o.b * 2 + o.a;"
    "  return o.a + o.b; }\n"
    "var acc = 0;\n"
    "var i = 0;\n"
    "while (i < 24) {\n"
    "  var o = {a: i, b: 1};\n"
    "  var arr = [i, i + 1, i + 2];\n"
    "  acc = acc + mix(o, i) + arr[1];\n"
    "  i = i + 1;\n"
    "}\n"
    "var result = acc;\n";

bool run_mjs(Runtime& rt, const TypeRegistry& reg, const mjs::MjsTypes& t) {
  double want = 0;
  try {
    DirectSpace direct(reg);
    mjs::Engine<DirectSpace> reference(direct, t);
    want = reference.run(kMjsScript).num;

    SessionSpace space(rt);
    mjs::Engine<SessionSpace> engine(space, t);
    const mjs::Value got = engine.run(kMjsScript);
    return got.t == mjs::Value::T::kNum && got.num == want;
  } catch (const std::exception&) {
    return false;
  }
}

bool run_spec(Runtime& rt, const TypeRegistry& reg,
              const std::vector<spec::SpecEntry>& suite, std::uint32_t scale,
              std::uint64_t seed) {
  // 403.gcc is the suite's allocation/free-dominated entry — the densest
  // stream of backing allocations, so every trigger point is reached.
  const spec::SpecEntry* entry = nullptr;
  for (const spec::SpecEntry& e : suite) {
    if (e.name == "403.gcc") entry = &e;
  }
  if (entry == nullptr) return false;
  DirectSpace direct(reg);
  const std::uint64_t want = entry->run_direct(direct, scale, seed);
  PolarSpace space(rt);
  return entry->run_polar(space, scale, seed) == want;
}

}  // namespace

FaultOutcome run_one(WorkloadKind workload, const FaultPlan& plan,
                     const HarnessConfig& cfg) {
  FaultOutcome out;
  out.workload = workload;
  out.plan = plan;
  out.expected = expected_violation(plan.kind);
  out.skipped = plan.kind != FaultKind::kNone &&
                !fault_detectable(plan.kind, cfg.backend);
  // A skipped row keeps its plan for reporting but never arms the
  // injector: the run is fault-free and must come back clean.
  FaultPlan armed = plan;
  if (out.skipped) {
    armed.kind = FaultKind::kNone;
    armed.at_alloc = 0;
  }

  // Registration must finish before the Runtime takes its registry view.
  TypeRegistry reg;
  minipng::PngTypes png{};
  minijpg::JpgTypes jpg{};
  mjs::MjsTypes mjs_types{};
  std::vector<spec::SpecEntry> suite;
  switch (workload) {
    case WorkloadKind::kMinipng: png = minipng::register_types(reg); break;
    case WorkloadKind::kMinijpg: jpg = minijpg::register_types(reg); break;
    case WorkloadKind::kMjs: mjs_types = mjs::register_types(reg); break;
    case WorkloadKind::kSpec: suite = spec::build_spec_suite(reg); break;
  }
  // The injection target: pointer fields so the randomizer places booby
  // traps, a scalar for the stale reads/writes, bytes for overflow reach.
  const TypeId scratch = TypeBuilder(reg, "fault.scratch")
                             .fn_ptr("vtable")
                             .field<std::uint64_t>("a")
                             .ptr("next")
                             .bytes("buf", 32)
                             .build();

  SizeClassHeap heap(HeapConfig{
      .lifo_reuse = true, .quarantine_bytes = cfg.heap_quarantine_bytes});
  Injector inj(armed, cfg.use_heap ? &heap : nullptr);

  RuntimeConfig rc;
  rc.seed = hash_combine(cfg.seed, plan.seed);
  rc.on_violation = ErrorAction::kReport;
  rc.violation_policy = cfg.policy;
  rc.backend = cfg.backend;
  rc.alloc_fn = &Injector::alloc_hook;
  rc.free_fn = &Injector::free_hook;
  rc.alloc_ctx = &inj;
  rc.trace_sample_interval = cfg.trace_sample_interval;
  Runtime rt(reg, rc);
  inj.attach(rt, scratch);

  switch (workload) {
    case WorkloadKind::kMinipng:
      out.workload_ok = run_minipng(rt, reg, png, plan.seed);
      break;
    case WorkloadKind::kMinijpg:
      out.workload_ok = run_minijpg(rt, reg, jpg, plan.seed);
      break;
    case WorkloadKind::kMjs:
      out.workload_ok = run_mjs(rt, reg, mjs_types);
      break;
    case WorkloadKind::kSpec:
      out.workload_ok = run_spec(rt, reg, suite, cfg.spec_scale, plan.seed);
      break;
  }

  const PolicyEngine& engine = rt.policy_engine();
  for (std::size_t i = 0; i < kViolationClassCount; ++i) {
    const auto v = static_cast<Violation>(i);
    const std::uint64_t n = engine.reports(v);
    if (plan.kind != FaultKind::kNone && v == out.expected) {
      out.expected_reports = n;
    } else {
      out.unexpected_reports += n;
    }
  }
  out.escalations = engine.escalations();
  out.injected = inj.fired();
  out.leaked_objects = rt.live_objects();
  out.quarantined_blocks = rt.quarantined_blocks();
  out.stats = rt.stats();
  const observe::TraceRingStats trace = rt.trace_ring_stats();
  out.trace_recorded = trace.recorded;
  out.trace_dropped = trace.dropped;
  rt.free_all();  // hand quarantined blocks back before the heap dies
  return out;
}

std::vector<FaultOutcome> run_matrix(const HarnessConfig& cfg) {
  std::vector<FaultOutcome> rows;
  constexpr WorkloadKind kWorkloads[] = {
      WorkloadKind::kMinipng, WorkloadKind::kMinijpg, WorkloadKind::kMjs,
      WorkloadKind::kSpec};
  for (const WorkloadKind w : kWorkloads) {
    for (std::size_t k = 0; k < kFaultKindCount; ++k) {
      const auto kind = static_cast<FaultKind>(k);
      FaultPlan plan;
      plan.kind = kind;
      // Allocation #4 is mid-stream for every workload: past its first
      // long-lived objects, well before its last.
      plan.at_alloc = kind == FaultKind::kNone ? 0 : 4;
      plan.seed = hash_combine(
          cfg.seed, static_cast<std::uint64_t>(k * kWorkloadKindCount * 2 +
                                               static_cast<std::size_t>(w)));
      rows.push_back(run_one(w, plan, cfg));
    }
  }
  return rows;
}

std::vector<FaultOutcome> run_controls(const HarnessConfig& cfg) {
  std::vector<FaultOutcome> rows;
  constexpr WorkloadKind kWorkloads[] = {
      WorkloadKind::kMinipng, WorkloadKind::kMinijpg, WorkloadKind::kMjs,
      WorkloadKind::kSpec};
  for (const WorkloadKind w : kWorkloads) {
    FaultPlan plan;  // kNone, at_alloc 0: never triggers
    plan.seed = hash_combine(cfg.seed, static_cast<std::uint64_t>(w));
    rows.push_back(run_one(w, plan, cfg));
  }
  return rows;
}

bool matrix_passes(const std::vector<FaultOutcome>& outcomes) {
  return std::all_of(outcomes.begin(), outcomes.end(),
                     [](const FaultOutcome& o) { return o.passed(); });
}

void print_matrix(std::ostream& os, const std::vector<FaultOutcome>& outcomes) {
  os << std::left << std::setw(9) << "workload" << std::setw(17) << "fault"
     << std::setw(10) << "injected" << std::setw(10) << "workload"
     << std::setw(18) << "expected-class" << std::setw(9) << "reports"
     << std::setw(12) << "unexpected" << std::setw(12) << "quarantined"
     << "result\n";
  for (const FaultOutcome& o : outcomes) {
    // A row the backend cannot detect ran fault-free; label it SKIP so the
    // blind spot is visible in the report instead of silently passing.
    const char* result = o.skipped ? (o.passed() ? "SKIP (undetectable)"
                                                 : "FAIL (skip not clean)")
                                   : (o.passed() ? "PASS" : "FAIL");
    os << std::left << std::setw(9) << to_string(o.workload) << std::setw(17)
       << to_string(o.plan.kind) << std::setw(10)
       << (o.injected ? "yes" : o.skipped ? "skip" : "no") << std::setw(10)
       << (o.workload_ok ? "ok" : "BROKEN") << std::setw(18)
       << to_string(o.expected) << std::setw(9) << o.expected_reports
       << std::setw(12) << o.unexpected_reports << std::setw(12)
       << o.quarantined_blocks << result << "\n";
  }
}

}  // namespace polar::faultinject
