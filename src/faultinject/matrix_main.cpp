// fault_matrix — CLI runner for the fault-injection detection matrix.
//
// Runs the full workload x fault matrix under each non-abort response
// policy (report-and-refuse, quarantine, hook) and exits nonzero if any
// row fails: an injected fault that went undetected or misclassified, a
// false positive, or a workload whose output a fault managed to change.
//
//   fault_matrix [--seed=N] [--backend=stored|stateless|hybrid] [--heap]
//                [--no-checksum] [--quick] [--stats]
//
// --backend selects the randomization backend every run uses; fault
// classes that backend cannot detect are never injected — the matrix runs
// those rows fault-free, requires them to come back clean, and prints them
// as SKIP so the blind spot stays visible. --heap backs the runtime with
// the SizeClassHeap (realistic reuse dynamics); --no-checksum runs the
// metadata-checksum ablation, under which metadata-flip rows become SKIP
// rows. --stats turns on trace-ring sampling inside every run and appends
// a JSON summary of the aggregated runtime counters and trace accounting
// (the observability layer's view of the whole sweep; DESIGN.md §11).
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "faultinject/fault.h"

namespace {

std::atomic<std::uint64_t> g_hook_reports{0};

void counting_hook(const polar::ViolationReport&, void*) {
  g_hook_reports.fetch_add(1, std::memory_order_relaxed);
}

/// Sweep-wide aggregate for --stats: every row of every policy config
/// folds its counters in here.
struct SweepStats {
  polar::RuntimeStats stats{};
  std::uint64_t trace_recorded = 0;
  std::uint64_t trace_dropped = 0;
  std::uint64_t rows = 0;

  void fold(const std::vector<polar::faultinject::FaultOutcome>& outcomes) {
    for (const auto& row : outcomes) {
      stats.add(row.stats);
      trace_recorded += row.trace_recorded;
      trace_dropped += row.trace_dropped;
      ++rows;
    }
  }
};

SweepStats g_sweep;

bool run_config(const char* label,
                const polar::faultinject::HarnessConfig& cfg) {
  const auto rows = polar::faultinject::run_matrix(cfg);
  g_sweep.fold(rows);
  std::cout << "=== policy: " << label << " (backend: "
            << polar::to_string(cfg.backend.kind) << ")"
            << (cfg.use_heap ? " (sizeclass heap)" : "")
            << (cfg.backend.options.checksum ? "" : " (checksums off)")
            << " ===\n";
  polar::faultinject::print_matrix(std::cout, rows);
  const bool ok = polar::faultinject::matrix_passes(rows);
  std::cout << (ok ? "OK" : "FAILED") << "\n\n";
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  polar::faultinject::HarnessConfig base;
  bool quick = false;
  bool stats = false;
  bool no_checksum = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      base.seed = std::strtoull(arg.c_str() + 7, nullptr, 0);
    } else if (arg.rfind("--backend=", 0) == 0) {
      polar::BackendKind kind{};
      if (!polar::parse_backend(arg.c_str() + 10, kind)) {
        std::cerr << "unknown backend: " << arg.c_str() + 10 << "\n";
        return 2;
      }
      base.backend = polar::BackendConfig::of(kind);
    } else if (arg == "--heap") {
      base.use_heap = true;
    } else if (arg == "--no-checksum") {
      no_checksum = true;
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--stats") {
      stats = true;
      base.trace_sample_interval = 64;
    } else {
      std::cerr << "usage: fault_matrix [--seed=N]"
                   " [--backend=stored|stateless|hybrid] [--heap]"
                   " [--no-checksum] [--quick] [--stats]\n";
      return 2;
    }
  }
  // Applied after --backend so the flags compose in either order (derived
  // backends are checksum-free already).
  if (no_checksum) base.backend.options.checksum = false;

  bool ok = true;

  // Report-and-refuse everywhere (the default policy).
  ok = run_config("report", base) && ok;

  if (!quick) {
    // Quarantine trap-damaged objects instead of recycling their memory.
    auto quarantine = base;
    quarantine.policy.set(polar::Violation::kTrapDamaged,
                          polar::ViolationAction::kQuarantine);
    ok = run_config("quarantine", quarantine) && ok;

    // Route every report through a registered hook; the hook must see
    // exactly as many reports as the engine counted.
    auto hooked = base;
    hooked.policy =
        polar::ViolationPolicy::uniform(polar::ViolationAction::kHook)
            .on_report(&counting_hook, nullptr);
    g_hook_reports.store(0, std::memory_order_relaxed);
    const auto rows = polar::faultinject::run_matrix(hooked);
    g_sweep.fold(rows);
    std::uint64_t engine_total = 0;
    for (const auto& row : rows) {
      engine_total += row.expected_reports + row.unexpected_reports;
    }
    std::cout << "=== policy: hook (backend: "
              << polar::to_string(base.backend.kind) << ") ===\n";
    polar::faultinject::print_matrix(std::cout, rows);
    bool hook_ok = polar::faultinject::matrix_passes(rows);
    const std::uint64_t hook_seen =
        g_hook_reports.load(std::memory_order_relaxed);
    if (hook_seen != engine_total) {
      std::cout << "hook saw " << hook_seen << " reports, engine counted "
                << engine_total << "\n";
      hook_ok = false;
    }
    std::cout << (hook_ok ? "OK" : "FAILED") << "\n\n";
    ok = ok && hook_ok;
  }

  std::cout << (ok ? "fault matrix: all rows passed"
                   : "fault matrix: FAILURES above")
            << "\n";

  if (stats) {
    const polar::RuntimeStats& s = g_sweep.stats;
    std::cout << "{\"fault_matrix_stats\": {"
              << "\"rows\": " << g_sweep.rows
              << ", \"allocations\": " << s.allocations
              << ", \"frees\": " << s.frees
              << ", \"clones\": " << s.clones
              << ", \"member_accesses\": " << s.member_accesses
              << ", \"cache_hits\": " << s.cache_hits
              << ", \"uaf_detected\": " << s.uaf_detected
              << ", \"traps_triggered\": " << s.traps_triggered
              << ", \"metadata_faults\": " << s.metadata_faults
              << ", \"oom_refusals\": " << s.oom_refusals
              << ", \"quarantined_objects\": " << s.quarantined_objects
              << ", \"trace\": {\"sample_interval\": "
              << base.trace_sample_interval
              << ", \"recorded\": " << g_sweep.trace_recorded
              << ", \"dropped\": " << g_sweep.trace_dropped << "}}}\n";
  }
  return ok ? 0 : 1;
}
