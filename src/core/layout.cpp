#include "core/layout.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <span>

#include "support/assert.h"
#include "support/hash.h"

namespace polar {

namespace {

using Slot = detail::LayoutSlot;

constexpr std::uint32_t align_up(std::uint32_t x, std::uint32_t a) noexcept {
  return (x + a - 1) & ~(a - 1);
}

/// Shared randomizer core. `order` and `slots` are caller-owned scratch
/// (cleared here) so batched callers can reuse their capacity; the RNG
/// draw order is identical no matter who owns the scratch.
Layout randomize_with_scratch(const TypeInfo& type, const LayoutPolicy& policy,
                              Rng& rng, std::vector<std::uint32_t>& order,
                              std::vector<Slot>& slots) {
  const std::uint32_t n = type.field_count();
  POLAR_CHECK(n > 0, "cannot randomize an empty type");
  if (type.no_randomize) return natural_layout(type);

  // 1. Permute the declared field order — fully, or within
  //    cache-line-sized groups of the natural layout.
  order.resize(n);
  std::iota(order.begin(), order.end(), 0u);
  if (policy.permute && !type.no_randomize) {
    if (policy.cache_line_group == 0) {
      rng.shuffle(std::span<std::uint32_t>(order));
    } else {
      std::size_t group_start = 0;
      std::uint32_t group_bytes = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t field_bytes = type.fields[order[i]].size;
        if (group_bytes + field_bytes > policy.cache_line_group &&
            i > group_start) {
          rng.shuffle(std::span<std::uint32_t>(&order[group_start],
                                               i - group_start));
          group_start = i;
          group_bytes = 0;
        }
        group_bytes += field_bytes;
      }
      rng.shuffle(
          std::span<std::uint32_t>(&order[group_start], n - group_start));
    }
  }

  // 2. Interleave dummies: one booby trap before each sensitive field,
  //    plus [min,max] pure-entropy dummies at random positions.
  slots.clear();
  slots.reserve(n * 2 + policy.max_dummies);
  for (std::uint32_t idx : order) {
    if (policy.booby_traps && is_pointer_kind(type.fields[idx].kind)) {
      slots.push_back({.is_dummy = true,
                       .dummy_size = policy.dummy_granule,
                       .guards_sensitive = true});
    }
    slots.push_back({.index = idx});
  }
  const std::uint32_t extra =
      policy.min_dummies +
      static_cast<std::uint32_t>(
          rng.below(policy.max_dummies - policy.min_dummies + 1));
  for (std::uint32_t d = 0; d < extra; ++d) {
    const std::uint32_t granules =
        1 + static_cast<std::uint32_t>(rng.below(policy.dummy_max_granules));
    Slot dummy{.is_dummy = true, .dummy_size = policy.dummy_granule * granules};
    const std::size_t pos = rng.below(slots.size() + 1);
    slots.insert(slots.begin() + static_cast<std::ptrdiff_t>(pos), dummy);
  }

  // 3. Assign offsets sequentially, honoring per-field alignment. Dummies
  //    are byte-aligned; alignment padding that arises naturally also acts
  //    as slack the attacker cannot rely on.
  Layout layout;
  layout.offsets.resize(n);
  std::uint32_t cursor = 0;
  for (const Slot& s : slots) {
    if (s.is_dummy) {
      layout.traps.push_back({.offset = cursor,
                              .size = s.dummy_size,
                              .guards_sensitive = s.guards_sensitive});
      cursor += s.dummy_size;
    } else {
      const FieldInfo& f = type.fields[s.index];
      cursor = align_up(cursor, f.align);
      layout.offsets[s.index] = cursor;
      cursor += f.size;
    }
  }
  layout.size = align_up(std::max(cursor, 1u), type.natural_align);
  layout.hash = layout.compute_hash();
  return layout;
}

}  // namespace

std::uint64_t Layout::compute_hash() const noexcept {
  std::uint64_t h = fnv1a(std::span<const std::byte>{});
  for (std::uint32_t off : offsets) h = hash_combine(h, off);
  for (const TrapRegion& t : traps) {
    h = hash_combine(h, (static_cast<std::uint64_t>(t.offset) << 32) | t.size);
  }
  return hash_combine(h, size);
}

Layout randomize_layout(const TypeInfo& type, const LayoutPolicy& policy,
                        Rng& rng) {
  std::vector<std::uint32_t> order;
  std::vector<Slot> slots;
  return randomize_with_scratch(type, policy, rng, order, slots);
}

void LayoutBatcher::generate(const TypeInfo& type, const LayoutPolicy& policy,
                             Rng& rng, std::size_t count,
                             std::vector<Layout>& out) {
  out.reserve(out.size() + count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(randomize_with_scratch(type, policy, rng, order_, slots_));
  }
}

Layout natural_layout(const TypeInfo& type) {
  Layout layout;
  layout.offsets = type.natural_offsets;
  layout.size = type.natural_size;
  layout.hash = layout.compute_hash();
  return layout;
}

std::uint64_t permutation_space(const TypeInfo& type,
                                const LayoutPolicy& policy) {
  if (!policy.permute || type.no_randomize) return 1;
  std::uint64_t total = 1;
  for (std::uint32_t i = 2; i <= type.field_count(); ++i) {
    if (total > std::numeric_limits<std::uint64_t>::max() / i) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    total *= i;
  }
  return total;
}

}  // namespace polar
