// Per-allocation layout randomization — paper §IV-A-2/3.
//
// A Layout is one concrete randomized arrangement of a type's fields:
// a permutation of the declared fields plus zero or more dummy fields.
// Dummies serve two purposes the paper calls out: raising permutation
// entropy, and acting as booby traps placed adjacent to sensitive
// (pointer) fields so that a linear overwrite trips a detectable canary
// before reaching the pointer.
#pragma once

#include <cstdint>
#include <vector>

#include "core/type_registry.h"
#include "support/rng.h"

namespace polar {

namespace detail {
/// A slot in the permuted ordering: either declared field `index` or a
/// dummy of `dummy_size` bytes. Exposed here (not an implementation detail
/// of layout.cpp) so LayoutBatcher can keep a reusable scratch vector.
struct LayoutSlot {
  bool is_dummy = false;
  std::uint32_t index = 0;       // valid when !is_dummy
  std::uint32_t dummy_size = 0;  // valid when is_dummy
  bool guards_sensitive = false;
};
}  // namespace detail

/// A dummy/trap region inside a randomized object.
struct TrapRegion {
  std::uint32_t offset = 0;
  std::uint32_t size = 0;
  /// True if this dummy was deliberately placed immediately before a
  /// sensitive field (booby trap), false if it is pure entropy padding.
  bool guards_sensitive = false;
};

/// One randomized in-object layout. Interned and possibly shared by
/// multiple live objects (paper: "remove the duplicate metadata when two
/// objects have the same randomized memory layout").
struct Layout {
  /// offsets[i] = byte offset of declared field i in this layout.
  std::vector<std::uint32_t> offsets;
  std::vector<TrapRegion> traps;
  std::uint32_t size = 0;   ///< total allocation size for this layout
  std::uint64_t hash = 0;   ///< identity for dedup
  /// LayoutInterner backref (its Entry), stamped on the interner-owned
  /// copy only; null on every value copy. Lets retain/release reach the
  /// entry's atomic refcount without a hash lookup or a lock. Not part of
  /// the layout's identity (never hashed or compared).
  void* intern_entry = nullptr;

  [[nodiscard]] std::uint64_t compute_hash() const noexcept;
};

/// Tunables for the randomizer. Defaults follow the paper's described
/// behaviour (permutation + dummies + booby traps, alignment respected).
struct LayoutPolicy {
  /// Number of pure-entropy dummy fields inserted, drawn uniformly from
  /// [min_dummies, max_dummies].
  std::uint32_t min_dummies = 1;
  std::uint32_t max_dummies = 3;
  /// Dummy field size is dummy_granule * (1..dummy_max_granules) bytes.
  std::uint32_t dummy_granule = 8;
  std::uint32_t dummy_max_granules = 2;
  /// Place a trap word immediately before every pointer-kind field.
  bool booby_traps = true;
  /// Permute fields at all (disabling leaves only dummy insertion; used by
  /// ablation benches).
  bool permute = true;
  /// Cache-line-aware partial randomization (paper §II-C: randstruct's
  /// layout is "fully randomized or partially randomized considering the
  /// cache line"): when nonzero, fields are only shuffled within
  /// consecutive groups of at most this many natural-layout bytes, keeping
  /// hot fields on their original line. 0 = full shuffle.
  std::uint32_t cache_line_group = 0;

  [[nodiscard]] bool operator==(const LayoutPolicy&) const = default;
};

/// Draws a fresh randomized layout for `type`. Guarantees:
///  - offsets form a non-overlapping arrangement covering every field,
///  - every field offset satisfies the field's alignment,
///  - traps do not overlap fields,
///  - size >= natural size and is a multiple of the natural alignment.
Layout randomize_layout(const TypeInfo& type, const LayoutPolicy& policy,
                        Rng& rng);

/// The degenerate identity layout (natural offsets, no traps). Used by the
/// static-OLR baseline's "no randomization" configuration and by tests.
Layout natural_layout(const TypeInfo& type);

/// Batched layout generation. Produces the exact same layout sequence as
/// the equivalent series of randomize_layout() calls on the same Rng (the
/// RNG draw order is shared with the single-shot path), but amortizes the
/// per-call scratch allocations — the permutation order and slot vectors
/// are reused across every layout the batcher ever generates. One batcher
/// per thread; not synchronized.
class LayoutBatcher {
 public:
  /// Appends `count` fresh layouts for `type` to `out`.
  void generate(const TypeInfo& type, const LayoutPolicy& policy, Rng& rng,
                std::size_t count, std::vector<Layout>& out);

 private:
  std::vector<std::uint32_t> order_;
  std::vector<detail::LayoutSlot> slots_;
};

/// Number of distinct layouts reachable for `type` under `policy`
/// considering permutations only (dummies multiply this further). Saturates
/// at uint64 max. This is the log2-entropy source reported by the entropy
/// example/bench.
std::uint64_t permutation_space(const TypeInfo& type, const LayoutPolicy& policy);

}  // namespace polar
