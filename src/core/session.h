// polar::Session — the redesigned public API of the POLaR runtime.
//
// The legacy surface (Runtime::olr_*) hands out raw void* base addresses,
// signals failure with nullptr/false, and parks the reason in a mutable
// last_violation() the caller must poll before the next operation clobbers
// it. That contract cannot express concurrent use, and it lets a stale
// pointer silently alias whatever object now lives at a reused address.
//
// Session replaces it with:
//   * ObjRef handles — base address plus the allocation id, so every
//     checked operation detects stale handles (freed, or freed-and-reused)
//     as kUseAfterFree instead of corrupting the new tenant;
//   * Result<T> returns — the violation that refused an operation travels
//     with the call, so concurrent callers never race over shared error
//     state;
//   * no hidden globals — a Session is just a view over a Runtime engine,
//     cheap to create per subsystem or per thread.
//
// Runtime's olr_* methods remain as thin wrappers over the same obj_*
// engine during migration; new code should use Session.
#pragma once

#include <cstring>
#include <unordered_map>

#include "core/result.h"
#include "core/runtime.h"
#include "core/space.h"

namespace polar {

class Session {
 public:
  /// Borrows an existing engine; the Runtime must outlive the Session.
  /// Sessions are cheap value-like views: copy freely, share across
  /// threads (thread-affine state lives inside the Runtime).
  explicit Session(Runtime& rt) : rt_(&rt) {}

  // --- object lifecycle ----------------------------------------------------

  /// Allocates a tracked object of `type` with its own randomized layout.
  [[nodiscard]] Result<ObjRef> create(TypeId type) {
    return rt_->obj_alloc(type);
  }

  /// Trap-checks and releases the object. kDoubleFree for stale handles;
  /// kTrapDamaged if a booby trap was overwritten (object still released).
  Result<void> destroy(ObjRef ref) { return rt_->obj_free(ref); }

  /// Clones into a fresh object with its own (re-)randomized layout.
  [[nodiscard]] Result<ObjRef> clone(ObjRef src) { return rt_->obj_clone(src); }

  /// Field-wise assignment between two same-type objects.
  Result<void> copy(ObjRef dst, ObjRef src) { return rt_->obj_copy(dst, src); }

  // --- member access -------------------------------------------------------

  /// Address of declared field `field` under the object's current layout.
  [[nodiscard]] Result<void*> field(ObjRef ref, std::uint32_t field) {
    return rt_->obj_field(ref, field);
  }

  /// Strict variant verifying the object's class first (detected type
  /// confusion instead of garbage offsets).
  [[nodiscard]] Result<void*> field_typed(ObjRef ref, TypeId expected,
                                          std::uint32_t field) {
    return rt_->obj_field_typed(ref, expected, field);
  }

  template <class T>
  [[nodiscard]] Result<T> read(ObjRef ref, std::uint32_t field) {
    const Result<void*> p = rt_->obj_field(ref, field);
    if (!p.ok()) return Result<T>::failure(p.error());
    T value{};
    std::memcpy(&value, p.value(), sizeof(T));
    return value;
  }

  template <class T>
  Result<void> write(ObjRef ref, std::uint32_t field, const T& value) {
    const Result<void*> p = rt_->obj_field(ref, field);
    if (!p.ok()) return Result<void>::failure(p.error());
    std::memcpy(p.value(), &value, sizeof(T));
    return Result<void>{};
  }

  /// Batched member access: all n field addresses under one metadata
  /// consultation (see Runtime::obj_fields_multi for the contract).
  Result<void> fields(ObjRef ref, const std::uint32_t* field_idx, void** out,
                      std::size_t n) {
    return rt_->obj_fields_multi(ref, field_idx, out, n);
  }

  /// Batched-access handle over a checked ObjRef (core/field_cursor.h).
  [[nodiscard]] FieldCursor cursor(ObjRef ref) {
    return FieldCursor(*rt_, ref);
  }

  /// MetaCell/pagemap prefetch for pointer-chasing traversals.
  void prefetch(const void* base) const noexcept { rt_->prefetch(base); }

  // --- detection & introspection -------------------------------------------

  /// Verifies every booby-trap canary of the object.
  Result<void> verify_traps(ObjRef ref) { return rt_->obj_check_traps(ref); }

  /// Snapshot of the live record behind a handle.
  [[nodiscard]] Result<ObjectRecord> describe(ObjRef ref) const {
    return rt_->describe(ref);
  }

  [[nodiscard]] RuntimeStats stats() const { return rt_->stats(); }

  /// Reports the engine has seen for one violation class (all threads).
  /// Complements the per-call Result errors with an aggregate view — e.g.
  /// "zero reports" is the fault-free assertion of the injection harness.
  [[nodiscard]] std::uint64_t violation_reports(Violation v) const {
    return rt_->policy_engine().reports(v);
  }
  /// The effective per-class response policy of the underlying runtime.
  [[nodiscard]] const ViolationPolicy& violation_policy() const {
    return rt_->policy_engine().policy();
  }

  [[nodiscard]] const TypeRegistry& registry() const {
    return rt_->registry();
  }
  [[nodiscard]] Runtime& runtime() noexcept { return *rt_; }

 private:
  Runtime* rt_;
};

/// ObjectSpace adapter over the Session API: lets every existing workload
/// template (minipng/minijpg/spec/mjs decoders) run against the redesigned
/// surface with full stale-handle checking, unchanged. Single-threaded by
/// design, like the workload templates themselves — it keeps a base->id
/// side table to upgrade the concept's raw void* bases into checked
/// ObjRef handles.
class SessionSpace {
 public:
  explicit SessionSpace(Session session) : session_(session) {}
  explicit SessionSpace(Runtime& rt) : session_(rt) {}

  static constexpr bool kRandomized = true;

  void* alloc(TypeId type) {
    const Result<ObjRef> r = session_.create(type);
    if (!r.ok()) return nullptr;
    live_.emplace(r.value().base, r.value());
    return r.value().base;
  }

  void free_object(void* base, TypeId type) {
    (void)session_.destroy(ref_of(base, type));
    live_.erase(base);
  }

  [[nodiscard]] void* field_ptr(void* base, TypeId type, std::uint32_t field) {
    return session_.field(ref_of(base, type), field).value_or(nullptr);
  }

  template <class T>
  [[nodiscard]] T load(void* base, TypeId type, std::uint32_t field) {
    return session_.read<T>(ref_of(base, type), field).value_or(T{});
  }

  template <class T>
  void store(void* base, TypeId type, std::uint32_t field, const T& v) {
    (void)session_.write(ref_of(base, type), field, v);
  }

  [[nodiscard]] std::size_t object_bytes(const void* base, TypeId type) {
    const Result<ObjectRecord> rec =
        session_.describe(ref_of(const_cast<void*>(base), type));
    return rec.ok() ? rec.value().layout->size : 0;
  }

  void copy_object(void* dst, const void* src, TypeId type) {
    (void)session_.copy(ref_of(dst, type),
                        ref_of(const_cast<void*>(src), type));
  }

  void* clone_object(const void* src, TypeId type) {
    const Result<ObjRef> r =
        session_.clone(ref_of(const_cast<void*>(src), type));
    if (!r.ok()) return nullptr;
    live_.emplace(r.value().base, r.value());
    return r.value().base;
  }

  [[nodiscard]] const TypeRegistry& registry() const {
    return session_.registry();
  }
  [[nodiscard]] Session& session() noexcept { return session_; }

  /// Batched access with the adapter's full stale-handle checking: the
  /// cursor carries the recorded allocation id, so a cursor outliving its
  /// object degrades to the checked path and reports kUseAfterFree.
  using Cursor = FieldCursor;
  [[nodiscard]] FieldCursor cursor(void* base, TypeId type) {
    return session_.cursor(ref_of(base, type));
  }

  void prefetch(const void* base) noexcept { session_.prefetch(base); }

 private:
  [[nodiscard]] ObjRef ref_of(void* base, TypeId type) const {
    const auto it = live_.find(base);
    // Unknown base: hand the runtime an unchecked ref so it reports the
    // violation (instead of this adapter inventing policy).
    return it != live_.end() ? it->second : ObjRef{base, 0, type};
  }

  Session session_;
  std::unordered_map<void*, ObjRef> live_;
};

static_assert(ObjectSpace<SessionSpace>);

}  // namespace polar
