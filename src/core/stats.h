// Runtime operation counters — the raw numbers behind Table III of the
// paper (# of allocation / free / memcpy / member access / cache hit per
// application) plus internal health metrics.
#pragma once

#include <cstdint>

namespace polar {

struct RuntimeStats {
  std::uint64_t allocations = 0;
  std::uint64_t frees = 0;
  std::uint64_t memcpys = 0;  ///< obj_clone + obj_copy (paper Table III)
  /// obj_clone successes. Clones create tracked objects without counting
  /// as `allocations` (a pinned historical choice), so accounting-style
  /// invariants need: allocations + clones >= frees.
  std::uint64_t clones = 0;
  std::uint64_t member_accesses = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t fastpath_hits = 0;  ///< accesses resolved by the lock-free
                                    ///< pagemap+seqlock path (no shard lock)
  std::uint64_t stateless_accesses = 0;  ///< accesses resolved by a derived
                                         ///< schedule with no metadata touch
  std::uint64_t hybrid_accesses = 0;  ///< derived-offset accesses that also
                                      ///< passed the seqlock liveness gate

  std::uint64_t layouts_created = 0;  ///< fresh randomized layouts drawn
  std::uint64_t layouts_deduped = 0;  ///< allocations that reused a layout
  std::uint64_t layout_pool_refills = 0;  ///< batched layout-pool refill runs
  std::uint64_t uaf_detected = 0;     ///< accesses to freed/unknown objects
  std::uint64_t traps_triggered = 0;  ///< booby-trap canaries found damaged
  std::uint64_t metadata_faults = 0;  ///< records that failed their checksum
  std::uint64_t oom_refusals = 0;     ///< allocations refused with kOom
  std::uint64_t quarantined_objects = 0;  ///< blocks parked by kQuarantine
  std::uint64_t bytes_requested = 0;  ///< sum of natural sizes
  std::uint64_t bytes_allocated = 0;  ///< sum of randomized sizes

  void reset() { *this = RuntimeStats{}; }

  /// Field-wise equality; the exporter round-trip tests rely on it.
  friend bool operator==(const RuntimeStats&, const RuntimeStats&) = default;

  /// Accumulates another counter set (used to aggregate the concurrent
  /// runtime's per-thread stats into one process-wide view).
  void add(const RuntimeStats& o) noexcept {
    allocations += o.allocations;
    frees += o.frees;
    memcpys += o.memcpys;
    clones += o.clones;
    member_accesses += o.member_accesses;
    cache_hits += o.cache_hits;
    fastpath_hits += o.fastpath_hits;
    stateless_accesses += o.stateless_accesses;
    hybrid_accesses += o.hybrid_accesses;
    layouts_created += o.layouts_created;
    layouts_deduped += o.layouts_deduped;
    layout_pool_refills += o.layout_pool_refills;
    uaf_detected += o.uaf_detected;
    traps_triggered += o.traps_triggered;
    metadata_faults += o.metadata_faults;
    oom_refusals += o.oom_refusals;
    quarantined_objects += o.quarantined_objects;
    bytes_requested += o.bytes_requested;
    bytes_allocated += o.bytes_allocated;
  }

  [[nodiscard]] double cache_hit_rate() const noexcept {
    return member_accesses == 0
               ? 0.0
               : static_cast<double>(cache_hits) /
                     static_cast<double>(member_accesses);
  }

  /// Memory inflation factor from dummies/padding (>= 1.0).
  [[nodiscard]] double inflation() const noexcept {
    return bytes_requested == 0
               ? 1.0
               : static_cast<double>(bytes_allocated) /
                     static_cast<double>(bytes_requested);
  }
};

}  // namespace polar
