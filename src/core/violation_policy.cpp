#include "core/violation_policy.h"

namespace polar {

const char* to_string(ViolationAction a) noexcept {
  switch (a) {
    case ViolationAction::kAbort: return "abort";
    case ViolationAction::kReport: return "report";
    case ViolationAction::kQuarantine: return "quarantine";
    case ViolationAction::kHook: return "hook";
  }
  return "unknown";
}

const char* to_string(RuntimeOp op) noexcept {
  switch (op) {
    case RuntimeOp::kAlloc: return "alloc";
    case RuntimeOp::kFree: return "free";
    case RuntimeOp::kFieldAccess: return "field-access";
    case RuntimeOp::kTypedAccess: return "typed-access";
    case RuntimeOp::kClone: return "clone";
    case RuntimeOp::kCopy: return "copy";
    case RuntimeOp::kCheckTraps: return "check-traps";
  }
  return "unknown";
}

ViolationPolicy ViolationPolicy::uniform(ViolationAction a) noexcept {
  ViolationPolicy p;
  p.actions.fill(a);
  return p;
}

ViolationPolicy ViolationPolicy::from_legacy(bool abort_on_violation) noexcept {
  return abort_on_violation ? uniform(ViolationAction::kAbort)
                            : ViolationPolicy{};
}

ViolationAction PolicyEngine::apply(const ViolationReport& report) noexcept {
  const auto cls = static_cast<std::size_t>(report.violation);
  const std::uint64_t nth =
      counts_[cls].fetch_add(1, std::memory_order_relaxed) + 1;

  ViolationAction action = policy_.action_for(report.violation);
  if (action == ViolationAction::kHook && policy_.hook != nullptr) {
    policy_.hook(report, policy_.hook_ctx);
  }
  // Escalation outranks any continue-style action: the N-th report of one
  // class means the detectors are absorbing a sustained attack, not a bug.
  if (policy_.escalate_after != 0 && nth >= policy_.escalate_after &&
      action != ViolationAction::kAbort) {
    escalations_.fetch_add(1, std::memory_order_relaxed);
    return ViolationAction::kAbort;
  }
  return action;
}

std::uint64_t PolicyEngine::total_reports() const noexcept {
  std::uint64_t n = 0;
  for (const auto& c : counts_) n += c.load(std::memory_order_relaxed);
  return n;
}

}  // namespace polar
