#include "core/backend.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_set>

#include "support/rng.h"

namespace polar {

const char* to_string(BackendKind k) noexcept {
  switch (k) {
    case BackendKind::kStored: return "stored";
    case BackendKind::kStateless: return "stateless";
    case BackendKind::kHybrid: return "hybrid";
  }
  return "?";
}

bool parse_backend(std::string_view name, BackendKind& out) noexcept {
  if (name == "stored") {
    out = BackendKind::kStored;
  } else if (name == "stateless") {
    out = BackendKind::kStateless;
  } else if (name == "hybrid") {
    out = BackendKind::kHybrid;
  } else {
    return false;
  }
  return true;
}

BackendKind env_backend_kind() noexcept {
  static const BackendKind kind = [] {
    const char* e = std::getenv("POLAR_BACKEND");
    BackendKind k = BackendKind::kStored;
    if (e != nullptr) (void)parse_backend(e, k);
    return k;
  }();
  return kind;
}

Result<void> BackendConfig::validate() const noexcept {
  if (options.layout_pool_chunk == 0 || options.layout_pool_chunk > 1024) {
    return Result<void>::failure(Violation::kBadConfig);
  }
  if (options.layout_reuse_window > 4096) {
    return Result<void>::failure(Violation::kBadConfig);
  }
  if (kind == BackendKind::kStored) return Result<void>{};
  // Derived (stateless/hybrid) kinds. Checksumming is incoherent — there
  // is no per-object stored layout the checksum could protect — and the
  // pagemap is mandatory: liveness registration (free, legacy handles,
  // enumeration) lives there.
  if (options.checksum || !options.pagemap) {
    return Result<void>::failure(Violation::kBadConfig);
  }
  if (options.schedule_bits == 0 || options.schedule_bits > 16) {
    return Result<void>::failure(Violation::kBadConfig);
  }
  return Result<void>{};
}

StatelessSchedule::StatelessSchedule(const TypeInfo& info,
                                     const LayoutPolicy& policy,
                                     std::uint64_t type_seed,
                                     std::uint32_t schedule_bits)
    : type_seed_(type_seed),
      field_count_(info.field_count()),
      stride_(std::max<std::uint32_t>(1, info.field_count())) {
  const std::size_t n = std::size_t{1} << schedule_bits;
  mask_ = n - 1;
  // The schedule's RNG stream is its own domain, keyed only by the type
  // seed: layouts here are independent of (and do not perturb) the
  // per-thread draw sequences the stored backend consumes.
  Rng rng(mix64(type_seed ^ 0x5c4e'd01e'0f75'ee1dULL));
  layouts_.reserve(n);
  LayoutBatcher batcher;
  batcher.generate(info, policy, rng, n, layouts_);
  // Pad every entry to the schedule-wide maximum size so the allocation
  // size of an object is independent of which entry its base selects.
  std::uint32_t max_size = 1;
  for (const Layout& l : layouts_) max_size = std::max(max_size, l.size);
  alloc_size_ = max_size;
  offsets_ = std::make_unique<StableOffsetsPool::Word[]>(n * stride_);
  for (std::size_t i = 0; i < n; ++i) {
    Layout& l = layouts_[i];
    l.size = max_size;
    l.hash = l.compute_hash();
    for (std::uint32_t f = 0; f < field_count_; ++f) {
      offsets_[i * stride_ + f].store(l.offsets[f],
                                      std::memory_order_relaxed);
    }
  }
}

std::size_t StatelessSchedule::distinct_layouts() const noexcept {
  std::unordered_set<std::uint64_t> hashes;
  for (const Layout& l : layouts_) hashes.insert(l.hash);
  return hashes.size();
}

}  // namespace polar
