// POLaR object-tracking metadata — paper §IV-A-3 and Fig. 4.
//
// Two structures:
//  * LayoutInterner: content-addressed store of Layout records with
//    reference counts, implementing the paper's duplicate-metadata
//    elimination ("Polar remove the duplicate metadata when two objects
//    have the same randomized memory layout").
//  * MetadataTable: open-addressing hash table from object base address to
//    its ObjectRecord (type, interned layout, trap canary value). This is
//    the "POLaR Metadata" table of Fig. 4 (base addr -> layout ptr).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/layout.h"
#include "core/type_registry.h"

namespace polar {

/// Live-object record. Everything olr_getptr/olr_free/olr_memcpy need.
struct ObjectRecord {
  void* base = nullptr;
  TypeId type;
  const Layout* layout = nullptr;
  /// Per-object canary pattern written into every trap region; checked on
  /// free and on demand (check_traps).
  std::uint64_t trap_value = 0;
  /// Monotonic allocation id; lets tooling distinguish reuse of the same
  /// address across allocations.
  std::uint64_t object_id = 0;
};

/// Content-addressed layout store with refcounts.
class LayoutInterner {
 public:
  explicit LayoutInterner(bool dedup_enabled) : dedup_(dedup_enabled) {}

  /// Interns `layout`, returning a stable pointer. If an identical layout
  /// is already live and dedup is on, bumps its refcount instead; `reused`
  /// reports which happened.
  const Layout* intern(Layout layout, bool& reused);

  /// Drops one reference; destroys the record at zero.
  void release(const Layout* layout);

  [[nodiscard]] std::size_t live_layouts() const noexcept {
    return entries_.size();
  }

 private:
  struct Entry {
    std::unique_ptr<Layout> layout;
    std::uint64_t refs = 0;
  };
  bool dedup_;
  // Keyed by layout hash; collisions resolved by full comparison within
  // the bucket vector.
  std::unordered_map<std::uint64_t, std::vector<Entry>> entries_;
};

/// Open-addressing (linear probing, power-of-two capacity) map from base
/// address to ObjectRecord. Tombstone-free: deletions use backward-shift.
class MetadataTable {
 public:
  explicit MetadataTable(std::size_t initial_capacity = 1024);

  /// Inserts a record for record.base. Overwrites silently is forbidden:
  /// the caller must have removed any prior record for that address.
  void insert(const ObjectRecord& record);

  /// Removes the record for `base`; returns false if absent.
  bool remove(const void* base);

  /// nullptr when `base` is not a live tracked object (freed or foreign):
  /// the runtime treats that as a potential use-after-free.
  [[nodiscard]] const ObjectRecord* find(const void* base) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Visits every live record (order unspecified).
  template <class F>
  void for_each(F&& fn) const {
    for (const auto& slot : slots_) {
      if (slot.state == SlotState::kFull) fn(slot.record);
    }
  }

 private:
  enum class SlotState : std::uint8_t { kEmpty, kFull };
  struct Slot {
    SlotState state = SlotState::kEmpty;
    ObjectRecord record;
  };

  [[nodiscard]] std::size_t probe_start(const void* base) const noexcept;
  void grow();

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace polar
