// POLaR object-tracking metadata — paper §IV-A-3 and Fig. 4.
//
// Three structures:
//  * LayoutInterner: content-addressed store of Layout records with
//    reference counts, implementing the paper's duplicate-metadata
//    elimination ("Polar remove the duplicate metadata when two objects
//    have the same randomized memory layout"). Internally synchronized.
//  * MetadataTable: open-addressing hash table from object base address to
//    its ObjectRecord (type, interned layout, trap canary value). This is
//    the "POLaR Metadata" table of Fig. 4 (base addr -> layout ptr).
//    Unsynchronized; used directly in single-threaded contexts and as the
//    per-shard table below.
//  * ShardedMetadataTable: 2^k MetadataTable shards selected by address
//    hash, each guarded by its own mutex (the snmalloc-style recipe for
//    metadata that is written on every alloc/free), plus a per-shard
//    epoch counter that thread-local offset caches validate hits against.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/layout.h"
#include "core/type_registry.h"
#include "support/hash.h"

namespace polar {

/// Live-object record. Everything olr_getptr/olr_free/olr_memcpy need.
struct ObjectRecord {
  void* base = nullptr;
  TypeId type;
  const Layout* layout = nullptr;
  /// Per-object canary pattern written into every trap region; checked on
  /// free and on demand (check_traps).
  std::uint64_t trap_value = 0;
  /// Monotonic allocation id; lets tooling distinguish reuse of the same
  /// address across allocations.
  std::uint64_t object_id = 0;
  /// Self-check word over every other field (seal()/verify()). The runtime
  /// verifies it on each lookup, so corruption of the metadata table itself
  /// is detected as Violation::kMetadataDamaged instead of being trusted —
  /// a damaged layout pointer or trap value would otherwise silently
  /// misdirect accesses or disarm the canary check.
  std::uint64_t checksum = 0;

  /// Checksum over the payload fields (excluding `checksum` itself).
  [[nodiscard]] std::uint64_t compute_checksum() const noexcept {
    std::uint64_t h = mix64(reinterpret_cast<std::uintptr_t>(base));
    h = hash_combine(h, static_cast<std::uint64_t>(type.value));
    h = hash_combine(h, reinterpret_cast<std::uintptr_t>(layout));
    h = hash_combine(h, trap_value);
    h = hash_combine(h, object_id);
    return h | 1;  // never the zero a fresh record carries
  }
  void seal() noexcept { checksum = compute_checksum(); }
  [[nodiscard]] bool verify() const noexcept {
    return checksum == compute_checksum();
  }
};

/// Type-stable recycling store for the offsets blobs the lock-free read
/// fast path dereferences (see core/pagemap.h). A blob is an array of
/// relaxed-atomic u32 offsets, one per declared field of an interned
/// layout. Blobs are recycled by capacity class when their layout dies,
/// but their memory is never returned to the OS while the pool lives: a
/// seqlock reader that loses the race with a free may read a recycled
/// blob's (atomic, hence race-free) contents, discover the sequence moved,
/// and discard the read — it can never touch an unmapped page.
class StableOffsetsPool {
 public:
  using Word = std::atomic<std::uint32_t>;

  StableOffsetsPool() = default;
  StableOffsetsPool(const StableOffsetsPool&) = delete;
  StableOffsetsPool& operator=(const StableOffsetsPool&) = delete;

  /// A blob holding a copy of `offsets` (relaxed stores; publication
  /// ordering is the caller's seqlock's business).
  const Word* acquire(const std::vector<std::uint32_t>& offsets);

  /// Recycles a blob previously acquired for `count` offsets.
  void release(const Word* blob, std::size_t count) noexcept;

 private:
  static constexpr std::size_t kCapClasses = 32;  // capacities 2^0..2^31

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Word[]>> all_;  ///< owns every blob for life
  std::vector<Word*> free_[kCapClasses];      ///< recycled, by log2 capacity
};

/// Content-addressed layout store with refcounts. Thread-safe with
/// lock-free retain/release: each entry's refcount is an atomic reached
/// through the layout's `intern_entry` backref, so the alloc/free hot
/// paths never take the interner mutex. The mutex serializes only
/// structural changes — the dedup scan in intern() and the erase when the
/// unique last release drops a count to zero (the scan skips refs==0
/// entries, so a 1 -> 0 transition is final and exactly one releaser
/// erases).
class LayoutInterner {
 public:
  explicit LayoutInterner(bool dedup_enabled) : dedup_(dedup_enabled) {}

  /// Interns `layout`, returning a stable pointer. If an identical layout
  /// is already live and dedup is on, bumps its refcount instead; `reused`
  /// reports which happened. When `fast_offsets` is non-null it receives
  /// the entry's stable offsets blob (StableOffsetsPool) for seqlock
  /// publication; the blob lives exactly as long as the interned entry.
  const Layout* intern(Layout layout, bool& reused,
                       const StableOffsetsPool::Word** fast_offsets = nullptr);

  /// Bumps the refcount of an already-interned layout. Used to keep a
  /// layout alive while an operation (clone/copy) works on a record copy
  /// outside its shard lock. Lock-free; the caller must itself hold a
  /// reference (which every call site does — the layout came from a live
  /// record or a pool slot).
  void retain(const Layout* layout);

  /// Drops one reference; destroys the record at zero. Lock-free except
  /// for the final release of an entry, which takes the mutex to unlink
  /// it from the store.
  void release(const Layout* layout);

  /// The stable offsets blob of an already-interned layout (nullptr if the
  /// pointer is not a live entry). Used to re-publish a seqlock mirror
  /// whose contents failed the digest check — the blob is the
  /// authoritative copy, independent of anything the damaged mirror held.
  [[nodiscard]] const StableOffsetsPool::Word* fast_offsets_of(
      const Layout* layout) const;

  [[nodiscard]] std::size_t live_layouts() const noexcept {
    std::lock_guard<std::mutex> lock(mu_);
    return live_entries_;
  }

 private:
  struct Entry {
    std::unique_ptr<Layout> layout;
    /// Atomic so retain/release run lock-free. 0 means the entry is dying:
    /// its last releaser is on the way to erase it, and the dedup scan
    /// must not hand it out (no resurrection — that is what makes the
    /// 1 -> 0 transition unique).
    std::atomic<std::uint64_t> refs{0};
    /// Stable blob mirroring layout->offsets, recycled when refs hits 0.
    const StableOffsetsPool::Word* fast_offsets = nullptr;
  };
  /// The entry a layout's backref points to. Valid only while the caller
  /// holds a reference.
  [[nodiscard]] static Entry* entry_of(const Layout* layout) noexcept {
    return static_cast<Entry*>(layout->intern_entry);
  }
  bool dedup_;
  StableOffsetsPool offsets_pool_;
  mutable std::mutex mu_;
  // Keyed by layout hash; collisions resolved by full comparison within
  // the bucket vector. Entries are heap-allocated so their atomic
  // refcounts (and the backrefs pointing at them) survive bucket
  // reallocation.
  std::unordered_map<std::uint64_t, std::vector<std::unique_ptr<Entry>>>
      entries_;
  std::size_t live_entries_ = 0;  ///< exact entry count, guarded by mu_
};

/// Open-addressing (linear probing, power-of-two capacity) map from base
/// address to ObjectRecord. Tombstone-free: deletions use backward-shift.
class MetadataTable {
 public:
  explicit MetadataTable(std::size_t initial_capacity = 1024);

  /// Inserts a record for record.base. Overwrites silently is forbidden:
  /// the caller must have removed any prior record for that address.
  void insert(const ObjectRecord& record);

  /// Removes the record for `base`; returns false if absent.
  bool remove(const void* base);

  /// nullptr when `base` is not a live tracked object (freed or foreign):
  /// the runtime treats that as a potential use-after-free.
  [[nodiscard]] const ObjectRecord* find(const void* base) const noexcept;

  /// Mutable lookup for the runtime's fault-injection backdoor
  /// (Runtime::debug_corrupt_metadata). Same contract as find().
  [[nodiscard]] ObjectRecord* find_mutable(const void* base) noexcept {
    return const_cast<ObjectRecord*>(find(base));
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Visits every live record (order unspecified).
  template <class F>
  void for_each(F&& fn) const {
    for (const auto& slot : slots_) {
      if (slot.state == SlotState::kFull) fn(slot.record);
    }
  }

 private:
  enum class SlotState : std::uint8_t { kEmpty, kFull };
  struct Slot {
    SlotState state = SlotState::kEmpty;
    ObjectRecord record;
  };

  [[nodiscard]] std::size_t probe_start(const void* base) const noexcept;
  void grow();

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
};

/// 2^k-way sharded metadata store. Each shard owns an independent
/// MetadataTable and mutex; the shard for an address is picked by hashing
/// the address, so unrelated objects contend only 1/2^k of the time.
///
/// The per-shard `epoch` is the invalidation protocol for the thread-local
/// offset caches: it is bumped (under the shard mutex) every time a record
/// leaves the shard, and a cached (base, field, offset) entry is only
/// honored while the epoch it was stored under is still current. A free on
/// any thread therefore invalidates every other thread's cached entries
/// for that shard without touching their caches.
class ShardedMetadataTable {
 public:
  /// Padded to a cache line so shard mutexes don't false-share.
  struct alignas(64) Shard {
    mutable std::mutex mu;
    MetadataTable table{64};
    std::atomic<std::uint64_t> epoch{0};
    /// Contention telemetry, written under `mu` by ShardLockGuard.
    mutable std::uint64_t lock_acquisitions = 0;
    mutable std::uint64_t lock_contended = 0;
  };

  /// Lock acquisition totals across every shard (see lock_stats()).
  struct LockStats {
    std::uint64_t acquisitions = 0;  ///< shard locks taken
    std::uint64_t contended = 0;     ///< acquisitions that had to block
  };

  /// RAII shard lock that records whether the acquisition contended. The
  /// try_lock probe may spuriously fail even on a free mutex, so
  /// `lock_contended` is telemetry (an upper bound on real contention),
  /// never a semantic signal. Counter writes happen after the lock is
  /// held, so they race nothing.
  class ShardLockGuard {
   public:
    explicit ShardLockGuard(const Shard& shard) : shard_(shard) {
      bool contended = false;
      if (!shard_.mu.try_lock()) {
        shard_.mu.lock();
        contended = true;
      }
      ++shard_.lock_acquisitions;
      if (contended) ++shard_.lock_contended;
    }
    ~ShardLockGuard() { shard_.mu.unlock(); }
    ShardLockGuard(const ShardLockGuard&) = delete;
    ShardLockGuard& operator=(const ShardLockGuard&) = delete;

   private:
    const Shard& shard_;
  };

  explicit ShardedMetadataTable(std::uint32_t shard_bits = 6)
      : shards_(std::size_t{1} << shard_bits),
        mask_((std::size_t{1} << shard_bits) - 1) {}

  [[nodiscard]] Shard& shard_of(const void* base) noexcept {
    return shards_[shard_index(base)];
  }
  [[nodiscard]] const Shard& shard_of(const void* base) const noexcept {
    return shards_[shard_index(base)];
  }

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  /// Total live records (locks each shard in turn; the result is exact
  /// only at quiescent points).
  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      n += s.table.size();
    }
    return n;
  }

  /// Visits every live record, one shard lock at a time. The callback must
  /// not re-enter the table (it runs under a shard mutex).
  template <class F>
  void for_each(F&& fn) const {
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      s.table.for_each(fn);
    }
  }

  /// Sums the per-shard lock telemetry. Exact only at quiescent points.
  /// Uses a plain lock (not ShardLockGuard) so taking the snapshot does
  /// not itself inflate the counters.
  [[nodiscard]] LockStats lock_stats() const {
    LockStats out;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      out.acquisitions += s.lock_acquisitions;
      out.contended += s.lock_contended;
    }
    return out;
  }

 private:
  // Uses the high half of the mixed address so shard selection stays
  // decorrelated from the low bits MetadataTable probes with.
  [[nodiscard]] std::size_t shard_index(const void* base) const noexcept {
    return static_cast<std::size_t>(
               mix64(reinterpret_cast<std::uintptr_t>(base)) >> 32) &
           mask_;
  }

  std::vector<Shard> shards_;
  std::size_t mask_;
};

}  // namespace polar
