#include "core/type_registry.h"

#include "support/assert.h"

namespace polar {

namespace {

constexpr std::uint32_t align_up(std::uint32_t x, std::uint32_t a) noexcept {
  return (x + a - 1) & ~(a - 1);
}

std::uint64_t compute_class_hash(const TypeInfo& info) {
  std::uint64_t h = fnv1a(info.name);
  for (const FieldInfo& f : info.fields) {
    h = hash_combine(h, fnv1a(f.name));
    h = hash_combine(h, (static_cast<std::uint64_t>(f.size) << 16) |
                            (static_cast<std::uint64_t>(f.align) << 4) |
                            static_cast<std::uint64_t>(f.kind));
  }
  return hash_combine(h, info.no_randomize ? 1u : 0u);
}

}  // namespace

void compute_natural_layout(TypeInfo& info) {
  info.natural_offsets.clear();
  info.natural_offsets.reserve(info.fields.size());
  std::uint32_t offset = 0;
  std::uint32_t max_align = 1;
  for (const FieldInfo& f : info.fields) {
    POLAR_CHECK(f.size > 0, "field size must be nonzero");
    POLAR_CHECK(f.align > 0 && (f.align & (f.align - 1)) == 0,
                "field alignment must be a power of two");
    offset = align_up(offset, f.align);
    info.natural_offsets.push_back(offset);
    offset += f.size;
    if (f.align > max_align) max_align = f.align;
  }
  info.natural_align = max_align;
  info.natural_size = info.fields.empty() ? 0 : align_up(offset, max_align);
}

TypeId TypeRegistry::register_type(TypeInfo info) {
  POLAR_CHECK(!info.name.empty(), "type name required");
  POLAR_CHECK(!info.fields.empty(), "type must have at least one field");
  POLAR_CHECK(!by_name_.contains(info.name), "duplicate type name");
  compute_natural_layout(info);
  info.class_hash = compute_class_hash(info);
  POLAR_CHECK(!by_hash_.contains(info.class_hash), "class hash collision");

  const auto idx = static_cast<std::uint32_t>(types_.size());
  by_name_.emplace(info.name, idx);
  by_hash_.emplace(info.class_hash, idx);
  types_.push_back(std::move(info));
  return TypeId{idx};
}

const TypeInfo& TypeRegistry::info(TypeId id) const {
  POLAR_CHECK(id.value < types_.size(), "invalid TypeId");
  return types_[id.value];
}

std::optional<TypeId> TypeRegistry::find(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return std::nullopt;
  return TypeId{it->second};
}

std::optional<TypeId> TypeRegistry::find_by_hash(std::uint64_t class_hash) const {
  auto it = by_hash_.find(class_hash);
  if (it == by_hash_.end()) return std::nullopt;
  return TypeId{it->second};
}

}  // namespace polar
