// Violation-response policy engine.
//
// The original runtime had one binary knob — ErrorAction::kAbort|kReport —
// applied uniformly to every detection. Hardened allocators treat fault
// response as a first-class subsystem (quarantine, checked metadata,
// graceful OOM), and so does this engine:
//
//   * Each Violation class maps to its own ViolationAction: abort the
//     process, report-and-refuse the operation, quarantine the object and
//     continue, or invoke a registered hook with a structured
//     ViolationReport.
//   * A rate-limited escalation rule turns a drip of same-class reports
//     into an abort: `escalate_after = N` means the N-th report of one
//     class aborts even if that class is configured to continue. This is
//     the "tolerate a glitch, refuse a campaign" posture — one damaged
//     trap may be a bug, fifty is an attack.
//
// The engine is shared by every thread of a Runtime: per-class counters
// are atomic, and the policy table itself is immutable after construction,
// so apply() is lock-free. Hooks must be thread-safe when the runtime is
// shared.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "core/result.h"

namespace polar {

/// What the engine does with one detected violation.
enum class ViolationAction : std::uint8_t {
  kAbort,       ///< kill the process (production hardening)
  kReport,      ///< record, refuse the operation, continue
  kQuarantine,  ///< like kReport, but the object's memory is withheld from
                ///< reuse (poisoned + parked) where the site supports it
  kHook,        ///< invoke the registered hook, then refuse like kReport
};

[[nodiscard]] const char* to_string(ViolationAction a) noexcept;

/// Which runtime entry point detected the violation. Carried in the report
/// so hooks and logs can tell a refused free from a refused access.
enum class RuntimeOp : std::uint8_t {
  kAlloc,
  kFree,
  kFieldAccess,
  kTypedAccess,
  kClone,
  kCopy,
  kCheckTraps,
};

[[nodiscard]] const char* to_string(RuntimeOp op) noexcept;

/// Everything the runtime knows about one detection, delivered to hooks
/// and usable for structured logging. `address`/`type`/`object_id` are
/// best-effort: an OOM has no address yet, a foreign pointer no type.
struct ViolationReport {
  Violation violation = Violation::kNone;
  const void* address = nullptr;
  TypeId type{};
  std::uint64_t object_id = 0;
  std::uint64_t thread = 0;  ///< numeric id of the reporting thread
  RuntimeOp op = RuntimeOp::kAlloc;
};

/// Called on kHook-class violations. Must be thread-safe if the runtime is
/// shared; must not re-enter the runtime that reported.
using ViolationHook = void (*)(const ViolationReport& report, void* ctx);

/// Per-violation-class response table plus escalation rule. A value type:
/// set it on RuntimeConfig before constructing the Runtime.
///
/// A default-constructed policy (all kReport, no escalation, no hook)
/// defers to the legacy RuntimeConfig::on_violation knob; any customized
/// policy takes precedence over it.
struct ViolationPolicy {
  std::array<ViolationAction, kViolationClassCount> actions{
      ViolationAction::kReport, ViolationAction::kReport,
      ViolationAction::kReport, ViolationAction::kReport,
      ViolationAction::kReport, ViolationAction::kReport,
      ViolationAction::kReport, ViolationAction::kReport,
      ViolationAction::kReport};
  /// N-th report of one class escalates to abort; 0 disables escalation.
  std::uint32_t escalate_after = 0;
  ViolationHook hook = nullptr;
  void* hook_ctx = nullptr;

  /// Same action for every class.
  [[nodiscard]] static ViolationPolicy uniform(ViolationAction a) noexcept;
  /// The policy the legacy ErrorAction knob implies (kAbort -> all abort,
  /// kReport -> all report).
  [[nodiscard]] static ViolationPolicy from_legacy(bool abort_on_violation) noexcept;

  [[nodiscard]] ViolationAction action_for(Violation v) const noexcept {
    return actions[static_cast<std::size_t>(v)];
  }
  /// Builder-style per-class override: `p.set(kTrapDamaged, kQuarantine)`.
  ViolationPolicy& set(Violation v, ViolationAction a) noexcept {
    actions[static_cast<std::size_t>(v)] = a;
    return *this;
  }
  ViolationPolicy& on_report(ViolationHook h, void* ctx) noexcept {
    hook = h;
    hook_ctx = ctx;
    return *this;
  }

  friend bool operator==(const ViolationPolicy&,
                         const ViolationPolicy&) = default;
};

/// The live decision maker inside a Runtime: counts reports per class,
/// applies the escalation rule, invokes hooks. Lock-free; shared by all
/// threads of the owning runtime.
class PolicyEngine {
 public:
  explicit PolicyEngine(ViolationPolicy policy) noexcept : policy_(policy) {}

  PolicyEngine(const PolicyEngine&) = delete;
  PolicyEngine& operator=(const PolicyEngine&) = delete;

  /// Records the report, fires the hook when configured, and returns the
  /// action the caller must honor. Never aborts itself: a returned kAbort
  /// is the caller's order to die (so the caller can attach context to the
  /// fatal message).
  ViolationAction apply(const ViolationReport& report) noexcept;

  /// Reports seen for one class since construction (kNone is always 0).
  [[nodiscard]] std::uint64_t reports(Violation v) const noexcept {
    return counts_[static_cast<std::size_t>(v)].load(
        std::memory_order_relaxed);
  }
  /// Reports across every class.
  [[nodiscard]] std::uint64_t total_reports() const noexcept;
  /// How many reports were escalated to abort by the rate rule. (Observable
  /// only by a hook or a death test: the process dies honoring the first.)
  [[nodiscard]] std::uint64_t escalations() const noexcept {
    return escalations_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const ViolationPolicy& policy() const noexcept {
    return policy_;
  }

 private:
  ViolationPolicy policy_;
  std::array<std::atomic<std::uint64_t>, kViolationClassCount> counts_{};
  std::atomic<std::uint64_t> escalations_{0};
};

}  // namespace polar
