// Typed error surface of the redesigned runtime API.
//
// The legacy olr_* surface signals failure with sentinel returns (nullptr /
// false) plus a mutable last_violation() the caller must remember to poll —
// workable single-threaded, meaningless once two threads share a runtime.
// The concurrent API instead returns Result<T>: either a value or the
// Violation that refused the operation, and ObjRef handles that carry the
// allocation id so stale handles are detected even after address reuse.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/type_registry.h"
#include "support/assert.h"

namespace polar {

/// What the runtime detected when it refused an operation.
enum class Violation : std::uint8_t {
  kNone,
  kUseAfterFree,  ///< access/copy/free of an untracked or stale base address
  kDoubleFree,
  kTrapDamaged,   ///< booby-trap canary overwritten
  kBadField,      ///< field index out of range for the object's type
  kTypeMismatch,  ///< typed access found an object of a different class
  kMetadataDamaged,  ///< the runtime's own record failed its checksum
  kOom,              ///< backing allocator returned nullptr
  kBadConfig,        ///< RuntimeConfig::validate() rejected the settings
};

/// Number of Violation enumerators including kNone. Sizes the per-class
/// tables of the violation-policy engine.
inline constexpr std::size_t kViolationClassCount = 9;

/// Human-readable violation name (diagnostics and test failure messages).
[[nodiscard]] const char* to_string(Violation v) noexcept;

/// Handle to a tracked object. `id` is the runtime's monotonically
/// increasing allocation id: operations that receive a nonzero id verify it
/// against the live record, so a handle to a freed-and-reused address is
/// reported as kUseAfterFree instead of silently aliasing the new tenant.
/// id 0 marks a legacy (unchecked) handle, used by the olr_* wrappers.
struct ObjRef {
  void* base = nullptr;
  std::uint64_t id = 0;
  TypeId type{};

  [[nodiscard]] constexpr explicit operator bool() const noexcept {
    return base != nullptr;
  }
  friend constexpr bool operator==(const ObjRef&, const ObjRef&) = default;
};

/// Value-or-Violation. Accessing value() on a failed result is a checked
/// program error, never UB.
template <class T>
class [[nodiscard]] Result {
 public:
  constexpr Result(T value) : value_(static_cast<T&&>(value)) {}  // NOLINT
  [[nodiscard]] static constexpr Result failure(Violation v) noexcept {
    Result r;
    r.error_ = v;
    return r;
  }

  [[nodiscard]] constexpr bool ok() const noexcept {
    return error_ == Violation::kNone;
  }
  constexpr explicit operator bool() const noexcept { return ok(); }
  [[nodiscard]] constexpr Violation error() const noexcept { return error_; }

  [[nodiscard]] constexpr T& value() {
    POLAR_CHECK(ok(), to_string(error_));
    return value_;
  }
  [[nodiscard]] constexpr const T& value() const {
    POLAR_CHECK(ok(), to_string(error_));
    return value_;
  }
  [[nodiscard]] constexpr T value_or(T fallback) const {
    return ok() ? value_ : fallback;
  }

 private:
  constexpr Result() = default;
  T value_{};
  Violation error_ = Violation::kNone;
};

template <>
class [[nodiscard]] Result<void> {
 public:
  constexpr Result() = default;
  [[nodiscard]] static constexpr Result failure(Violation v) noexcept {
    Result r;
    r.error_ = v;
    return r;
  }

  [[nodiscard]] constexpr bool ok() const noexcept {
    return error_ == Violation::kNone;
  }
  constexpr explicit operator bool() const noexcept { return ok(); }
  [[nodiscard]] constexpr Violation error() const noexcept { return error_; }

 private:
  Violation error_ = Violation::kNone;
};

}  // namespace polar
