#include "core/runtime.h"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <functional>
#include <new>
#include <thread>
#include <unordered_map>

#include "alloc/scalable_heap.h"
#include "support/assert.h"
#include "support/hash.h"

namespace polar {

const char* to_string(Violation v) noexcept {
  switch (v) {
    case Violation::kNone: return "none";
    case Violation::kUseAfterFree: return "use-after-free";
    case Violation::kDoubleFree: return "double-free";
    case Violation::kTrapDamaged: return "trap-damaged";
    case Violation::kBadField: return "bad-field-index";
    case Violation::kTypeMismatch: return "type-mismatch";
    case Violation::kMetadataDamaged: return "metadata-damaged";
    case Violation::kOom: return "out-of-memory";
    case Violation::kBadConfig: return "bad-config";
  }
  return "unknown";
}

namespace {

std::uint64_t next_runtime_id() noexcept {
  // Never reused across a process, so a thread's TLS entry for a destroyed
  // runtime can never be mistaken for a new runtime at the same address.
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// A default-constructed violation_policy defers to the legacy one-knob
/// ErrorAction; any customized policy wins.
ViolationPolicy effective_policy(const RuntimeConfig& config) noexcept {
  if (config.violation_policy == ViolationPolicy{}) {
    return ViolationPolicy::from_legacy(config.on_violation ==
                                        ErrorAction::kAbort);
  }
  return config.violation_policy;
}

/// Byte written over quarantined blocks so a write-after-free into parked
/// memory is visible (and stale secrets don't linger).
constexpr unsigned char kRuntimeQuarantinePoison = 0xd1;

std::uint64_t this_thread_numeric_id() noexcept {
  return static_cast<std::uint64_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

}  // namespace

Result<void> RuntimeConfig::validate() const noexcept {
  // Shard count and cache size are powers of two by construction (both are
  // log2 knobs), so validation bounds the exponents; the pagemap granule
  // is a byte count and must itself be a power of two.
  if (shard_bits > 10) return Result<void>::failure(Violation::kBadConfig);
  if (cache_bits > 24) return Result<void>::failure(Violation::kBadConfig);
  if (!std::has_single_bit(pagemap_granule) || pagemap_granule < 8 ||
      pagemap_granule > 4096) {
    return Result<void>::failure(Violation::kBadConfig);
  }
  // Backend choices validate themselves (pool chunk, schedule bits, and
  // the incoherent combos like stateless + checksum); per-type derived
  // overrides additionally require the default backend's pagemap, since
  // that is the pagemap their liveness registration shares.
  if (!backend.validate().ok()) {
    return Result<void>::failure(Violation::kBadConfig);
  }
  for (const auto& [name, override_cfg] : type_backends) {
    if (name.empty() || !override_cfg.validate().ok()) {
      return Result<void>::failure(Violation::kBadConfig);
    }
    if (override_cfg.kind != BackendKind::kStored && !backend.options.pagemap) {
      return Result<void>::failure(Violation::kBadConfig);
    }
  }
  // Ring capacity is validated even when tracing is off so a config that
  // later flips tracing on can't smuggle in a non-power-of-two ring.
  if (!std::has_single_bit(trace_ring_capacity) || trace_ring_capacity < 16 ||
      trace_ring_capacity > (1u << 20)) {
    return Result<void>::failure(Violation::kBadConfig);
  }
  if (policy.dummy_granule == 0 || policy.dummy_max_granules == 0 ||
      policy.max_dummies < policy.min_dummies) {
    return Result<void>::failure(Violation::kBadConfig);
  }
  return Result<void>{};
}

namespace {
/// Refuses an invalid config before any member that consumes it is
/// constructed (an unchecked shard_bits of 40 would otherwise size the
/// shard vector before the constructor body could object).
RuntimeConfig checked_config(RuntimeConfig config) {
  POLAR_CHECK(config.validate().ok(),
              "bad-config: RuntimeConfig::validate() rejected these settings "
              "(shard_bits<=10, cache_bits<=24, pagemap_granule a power of "
              "two in [8,4096], trace_ring_capacity a power of two in "
              "[16,2^20], backend/type_backends must each pass "
              "BackendConfig::validate() and derived per-type overrides "
              "require the default backend's pagemap)");
  return config;
}

/// Whether any type class — default or override — checksums its records.
/// One runtime-wide bool: records are always sealed, so verifying a
/// checksum-off type's record is merely redundant, never wrong.
bool any_checksum(const RuntimeConfig& config) noexcept {
  if (config.backend.options.checksum) return true;
  for (const auto& entry : config.type_backends) {
    if (entry.second.options.checksum) return true;
  }
  return false;
}
}  // namespace

Runtime::Runtime(const TypeRegistry& registry, RuntimeConfig config)
    : registry_(registry),
      config_(checked_config(config)),
      substrate_(config.alloc_fn == nullptr && config.scalable_heap
                     ? &ScalableHeap::process_heap()
                     : nullptr),
      engine_(effective_policy(config_)),
      table_(config_.shard_bits),
      pagemap_(config_.backend.options.pagemap
                   ? std::make_unique<AddressPagemap>(config_.pagemap_granule)
                   : nullptr),
      fast_reads_(config_.backend.options.pagemap &&
                  config_.backend.options.lockfree_reads),
      checksum_records_(any_checksum(config_)),
      verify_mirror_(checksum_records_),
      pm_hint_(pagemap_ != nullptr ? pagemap_->lookup_hint()
                                   : AddressPagemap::LookupHint{}),
#if defined(POLAR_TRACE_ENABLED)
      trace_interval_(config_.trace_sample_interval),
#endif
      interner_(config_.dedup_layouts),
      runtime_id_(next_runtime_id()) {
  // Resolve the backend of every type class known right now. Types
  // registered later fall back to kStored via the n_types_ bounds check —
  // schedules are built eagerly here, so a late registration cannot
  // retroactively become stateless.
  const auto n = static_cast<std::uint32_t>(registry_.size());
  type_configs_.assign(n, config_.backend);
  for (const auto& [name, override_cfg] : config_.type_backends) {
    const std::optional<TypeId> t = registry_.find(name);
    POLAR_CHECK(t.has_value(),
                "bad-config: type_backends names a type the registry does "
                "not know");
    type_configs_[t->value] = override_cfg;
  }
  type_kinds_.resize(n);
  schedules_.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const BackendConfig& bc = type_configs_[i];
    type_kinds_[i] = bc.kind;
    if (bc.kind == BackendKind::kStored) continue;
    any_derived_ = true;
    const TypeInfo& info = registry_.info(TypeId{i});
    const std::uint64_t seed =
        bc.options.type_seed != 0
            ? bc.options.type_seed
            : derive_type_seed(config_.seed, info.class_hash);
    schedules_[i] = std::make_unique<StatelessSchedule>(
        info, config_.policy, seed, bc.options.schedule_bits);
  }
  type_kinds_p_ = type_kinds_.data();
  schedules_p_ = schedules_.data();
  n_types_ = n;
}

Runtime::~Runtime() { free_all(); }

Runtime::ThreadState& Runtime::tls_slow() const {
  // Keyed by runtime id, not address: ids are process-unique, so stale
  // entries left by destroyed runtimes are dead weight, never aliases.
  // The inline tls() memo (t_last_id_/t_last_) short-circuits this lookup
  // for every call after a thread's first against a given runtime.
  thread_local std::unordered_map<std::uint64_t, ThreadState*> t_states;
  auto it = t_states.find(runtime_id_);
  if (it == t_states.end()) {
    std::lock_guard<std::mutex> lock(tls_mu_);
    auto state = std::make_unique<ThreadState>(config_, next_rng_stream(),
                                               this_thread_numeric_id());
    it = t_states.emplace(runtime_id_, state.get()).first;
    thread_states_.push_back(std::move(state));
  }
  t_last_id_ = runtime_id_;
  t_last_ = it->second;
  return *t_last_;
}

Rng Runtime::next_rng_stream() const {
  // Stream 0 — the first thread to touch the runtime — reproduces exactly
  // the sequence the single-threaded runtime drew from config.seed, so
  // every seeded workload and test keeps its pre-concurrency behaviour.
  // Later threads get independent streams split off the same seed.
  const std::uint64_t n = rng_streams_issued_++;
  if (n == 0) return Rng(config_.seed);
  return Rng(mix64(config_.seed + 0x9e3779b97f4a7c15ULL * n));
}

void* Runtime::raw_alloc(std::size_t size) {
  if (substrate_ != nullptr) return substrate_->allocate(size);
  if (config_.alloc_fn != nullptr) {
    return config_.alloc_fn(size, config_.alloc_ctx);
  }
  return ::operator new(size);
}

void Runtime::raw_free(void* p, std::size_t size) {
  if (substrate_ != nullptr) {
    // size is a hint only: the heap derives the true block size from slab
    // metadata and counts any disagreement as a sized-delete bug.
    substrate_->deallocate(p, size);
    return;
  }
  if (config_.free_fn != nullptr) {
    config_.free_fn(p, size, config_.alloc_ctx);
    return;
  }
  ::operator delete(p);
}

ViolationAction Runtime::violation(ThreadState& ts, Violation v,
                                   const void* address, TypeId type,
                                   std::uint64_t object_id, RuntimeOp op) {
  ts.last_violation = v;
  if (v == Violation::kUseAfterFree || v == Violation::kDoubleFree) {
    ++ts.stats.uaf_detected;
  } else if (v == Violation::kTrapDamaged) {
    ++ts.stats.traps_triggered;
  } else if (v == Violation::kMetadataDamaged) {
    ++ts.stats.metadata_faults;
  } else if (v == Violation::kOom) {
    ++ts.stats.oom_refusals;
  }
  const ViolationReport report{.violation = v,
                               .address = address,
                               .type = type,
                               .object_id = object_id,
                               .thread = ts.thread_tag,
                               .op = op};
#if defined(POLAR_TRACE_ENABLED)
  // Violation sink: violations are rare and load-bearing, so when tracing
  // is on every one enters the ring — never sampled — and it is pushed
  // before the policy engine runs so even an abort leaves the event behind
  // for a post-mortem ring dump.
  if (trace_interval_ != 0) {
    observe::TraceEvent e;
    e.timestamp = observe::trace_clock();
    e.thread = ts.thread_tag;
    e.object_id = object_id;
    e.type = type.value;
    e.kind = observe::TraceEventKind::kViolation;
    e.detail = static_cast<std::uint8_t>(v);
    ts.trace.push(e);
  }
#endif
  const ViolationAction action = engine_.apply(report);
  if (action == ViolationAction::kAbort) {
    POLAR_CHECK(false, to_string(v));
  }
  return action;
}

const ObjectRecord* Runtime::find_checked(ShardedMetadataTable::Shard& sh,
                                          const void* base,
                                          bool& damaged) const {
  damaged = false;
  if (pagemap_ != nullptr) {
    MetaCell* cell = pagemap_->lookup(base);
    // A granule hit is not an object hit: an interior pointer within 16
    // bytes of a base lands in the same granule, so the base must match.
    if (cell == nullptr || cell->rec.base != base) return nullptr;
    if (checksum_records_ && !cell->rec.verify()) {
      // The record lied about itself; nothing in it — layout pointer,
      // size, canary — can be trusted. Evict it so it can't be consulted
      // again. The block is deliberately leaked (its size lives behind the
      // untrusted layout pointer) and the interner reference with it; the
      // cell itself is recycled once its mirror is invalidated.
      damaged = true;
      pagemap_->unpublish(base);
      cell->invalidate();
      cell->rec = ObjectRecord{};
      sh.epoch.fetch_add(1, std::memory_order_release);
      live_count_.fetch_sub(1, std::memory_order_release);
      cells_.release(cell);
      return nullptr;
    }
    return &cell->rec;
  }
  const ObjectRecord* rec = sh.table.find(base);
  if (rec == nullptr) return nullptr;
  if (checksum_records_ && !rec->verify()) {
    damaged = true;
    sh.table.remove(base);
    sh.epoch.fetch_add(1, std::memory_order_release);
    live_count_.fetch_sub(1, std::memory_order_release);
    return nullptr;
  }
  return rec;
}

void Runtime::quarantine_block(void* base, std::size_t size) {
  std::memset(base, kRuntimeQuarantinePoison, size);
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  quarantine_.emplace_back(base, size);
}

std::size_t Runtime::quarantined_blocks() const noexcept {
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  return quarantine_.size();
}

bool Runtime::debug_corrupt_metadata(const void* base, std::uint64_t mask) {
  ShardedMetadataTable::Shard& sh = table_.shard_of(base);
  std::lock_guard<std::mutex> lock(sh.mu);
  ObjectRecord* rec = nullptr;
  if (pagemap_ != nullptr) {
    MetaCell* cell = pagemap_->lookup(base);
    if (cell != nullptr && cell->rec.base == base) {
      rec = &cell->rec;
      // The simulated stray write hits both copies of the metadata: the
      // authoritative record (trap_value below) and the seqlock mirror's
      // base word, so lock-free readers are forced off the fast path onto
      // the locked lookup that verifies the record. XORing the same mask
      // twice restores both.
      cell->debug_corrupt_mirror(mask == 0 ? 1 : mask, 0);
    }
  } else {
    rec = sh.table.find_mutable(base);
  }
  if (rec == nullptr) return false;
  rec->trap_value ^= mask == 0 ? 1 : mask;
  return true;
}

bool Runtime::debug_corrupt_mirror(const void* base, std::uint32_t mask) {
  if (pagemap_ == nullptr) return false;
  ShardedMetadataTable::Shard& sh = table_.shard_of(base);
  std::lock_guard<std::mutex> lock(sh.mu);
  MetaCell* cell = pagemap_->lookup(base);
  if (cell == nullptr || cell->rec.base != base) return false;
  cell->debug_corrupt_mirror(0, mask == 0 ? 1 : mask);
  return true;
}

// Each trap region holds trap_value repeated as a little-endian 8-byte
// pattern restarting at the region's start (byte i of a region is
// trap_value >> ((i % 8) * 8)). Both walkers go a word at a time —
// regions are written and checked on every alloc/free pair, so the byte
// loops showed up in the churn profile.

void Runtime::fill_traps(const ObjectRecord& rec) {
  auto* bytes = static_cast<unsigned char*>(rec.base);
  const std::uint64_t v = rec.trap_value;
  for (const TrapRegion& t : rec.layout->traps) {
    unsigned char* p = bytes + t.offset;
    std::uint32_t n = t.size;
    while (n >= 8) {
      std::memcpy(p, &v, 8);
      p += 8;
      n -= 8;
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      p[i] = static_cast<unsigned char>(v >> (i * 8));
    }
  }
}

bool Runtime::traps_intact(const ObjectRecord& rec) const noexcept {
  const auto* bytes = static_cast<const unsigned char*>(rec.base);
  const std::uint64_t v = rec.trap_value;
  for (const TrapRegion& t : rec.layout->traps) {
    const unsigned char* p = bytes + t.offset;
    std::uint32_t n = t.size;
    while (n >= 8) {
      std::uint64_t got;
      std::memcpy(&got, p, 8);
      if (got != v) return false;
      p += 8;
      n -= 8;
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      if (p[i] != static_cast<unsigned char>(v >> (i * 8))) return false;
    }
  }
  return true;
}

Layout Runtime::next_layout(ThreadState& ts, TypeId type,
                            const TypeInfo& info) {
  const std::uint32_t chunk = backend_config(type).options.layout_pool_chunk;
  if (chunk <= 1) return randomize_layout(info, config_.policy, ts.rng);
  if (ts.layout_pools.size() <= type.value) {
    ts.layout_pools.resize(type.value + 1);
  }
  ThreadState::TypeLayoutPool& pool = ts.layout_pools[type.value];
  if (pool.cursor == pool.ready.size()) {
    pool.ready.clear();
    pool.cursor = 0;
#if defined(POLAR_TRACE_ENABLED)
    const std::uint64_t t0 = trace_interval_ != 0 ? observe::trace_clock() : 0;
#endif
    ts.batcher.generate(info, config_.policy, ts.rng, chunk, pool.ready);
    ++ts.stats.layout_pool_refills;
#if defined(POLAR_TRACE_ENABLED)
    // Refills happen once per chunk of allocations — rare enough to record
    // unsampled whenever tracing is on. object_id carries the chunk size.
    if (trace_interval_ != 0) {
      const std::uint64_t dt = observe::trace_clock() - t0;
      observe::TraceEvent e;
      e.timestamp = t0;
      e.thread = ts.thread_tag;
      e.object_id = chunk;
      e.type = type.value;
      e.duration = dt > 0xffffffffULL ? 0xffffffffu
                                      : static_cast<std::uint32_t>(dt);
      e.kind = observe::TraceEventKind::kLayoutRefill;
      ts.trace.push(e);
    }
#endif
  }
  return std::move(pool.ready[pool.cursor++]);
}

Result<ObjectRecord> Runtime::create_object(ThreadState& ts, TypeId type,
                                            const Layout* share_layout) {
  const TypeInfo& info = registry_.info(type);
  if (kind_of(type) != BackendKind::kStored) {
    // Derived backends: the layout is a pure function of the base address
    // via the type's schedule — no per-allocation draw, no interner
    // traffic, and share_layout cannot be honored (a clone's layout is
    // whatever its own address selects). Liveness registration (cell +
    // record + mirror) is identical to the stored path: free, legacy
    // untyped handles and enumeration all rely on it.
    const StatelessSchedule& sch = *schedules_p_[type.value];
    void* base = raw_alloc(sch.alloc_size());
    if (base == nullptr) return Result<ObjectRecord>::failure(Violation::kOom);
    // Counted as a dedup: the allocation bound an existing (immortal)
    // schedule entry rather than creating a layout, which keeps the
    // exporter invariant layouts_created + layouts_deduped >= allocations.
    ++ts.stats.layouts_deduped;
    const Layout& layout = sch.layout_for(base);
    std::memset(base, 0, layout.size);
    ObjectRecord rec{.base = base,
                     .type = type,
                     .layout = &layout,
                     .trap_value = ts.rng.next() | 1,
                     .object_id = next_object_id_.fetch_add(
                         1, std::memory_order_relaxed)};
    rec.seal();
    fill_traps(rec);
    MetaCell* cell = acquire_cell(ts);  // pagemap is mandatory for derived
    ShardedMetadataTable::Shard& sh = table_.shard_of(base);
    ShardedMetadataTable::ShardLockGuard lock(sh);
    cell->rec = rec;
    cell->publish(rec, sch.blob_for(base), info.field_count());
    pagemap_->publish(base, cell);
    live_count_.fetch_add(1, std::memory_order_release);
    ts.stats.bytes_requested += info.natural_size;
    ts.stats.bytes_allocated += layout.size;
    return rec;
  }
  bool reused = false;
  const Layout* layout = nullptr;
  const StableOffsetsPool::Word* fast_offsets = nullptr;
  ThreadState::TypeLayoutPool* reuse_pool = nullptr;
  if (share_layout == nullptr) {
    // Layout-reuse window (BackendOptions::layout_reuse_window): once a
    // thread has drawn `window` fresh layouts for a type, allocations
    // sample that window uniformly — a lock-free retain instead of a
    // generate + intern, which is the dominant alloc-time cost — with one
    // fresh draw per `window` allocations replacing a random slot. The
    // grow phase means short-lived bursts keep full per-allocation
    // diversity; only sustained churn amortizes. Sampling uses the
    // dedicated reuse_rng, so the layout-draw stream (ts.rng) advances
    // exactly as it would with the window off. The window is a form of
    // layout dedup, so dedup_layouts=false disables it.
    const std::uint32_t window =
        config_.dedup_layouts
            ? backend_config(type).options.layout_reuse_window
            : 0;
    if (window > 1) {
      if (ts.layout_pools.size() <= type.value) {
        ts.layout_pools.resize(type.value + 1);
      }
      ThreadState::TypeLayoutPool& pool = ts.layout_pools[type.value];
      reuse_pool = &pool;
      if (pool.reuse.size() >= window && pool.reuse_left > 0) {
        --pool.reuse_left;
        const auto& slot =
            pool.reuse[ts.reuse_rng.below(pool.reuse.size())];
        interner_.retain(slot.layout);
        layout = slot.layout;
        fast_offsets = slot.fast_offsets;
        reused = true;
      } else {
        layout = interner_.intern(next_layout(ts, type, info), reused,
                                  &fast_offsets);
        // The window holds its own reference per slot.
        interner_.retain(layout);
        if (pool.reuse.size() < window) {
          pool.reuse.push_back({layout, fast_offsets});
        } else {
          auto& slot = pool.reuse[ts.reuse_rng.below(window)];
          interner_.release(slot.layout);
          slot = {layout, fast_offsets};
        }
        if (pool.reuse.size() >= window) pool.reuse_left = window - 1;
      }
    } else {
      layout = interner_.intern(next_layout(ts, type, info), reused,
                                &fast_offsets);
    }
  } else {
    Layout same = *share_layout;
    layout = interner_.intern(std::move(same), reused, &fast_offsets);
  }
  void* base = raw_alloc(layout->size);
  if (base == nullptr) {
    // A refused backing allocation is a value, not a crash: undo the
    // layout reference and let the caller surface kOom. The reuse window
    // is flushed too (OOM is rare; holding layouts past a refused
    // allocation would make live_layouts() nonzero with nothing live).
    interner_.release(layout);
    if (reuse_pool != nullptr) {
      for (auto& slot : reuse_pool->reuse) interner_.release(slot.layout);
      reuse_pool->reuse.clear();
      reuse_pool->reuse_left = 0;
    }
    return Result<ObjectRecord>::failure(Violation::kOom);
  }
  if (reused) {
    ++ts.stats.layouts_deduped;
  } else {
    ++ts.stats.layouts_created;
  }
  std::memset(base, 0, layout->size);

  ObjectRecord rec{.base = base,
                   .type = type,
                   .layout = layout,
                   .trap_value = ts.rng.next() | 1,  // never all-zero
                   .object_id = next_object_id_.fetch_add(
                       1, std::memory_order_relaxed)};
  rec.seal();
  fill_traps(rec);  // before publication: no lock needed
  if (pagemap_ != nullptr) {
    MetaCell* cell = acquire_cell(ts);
    ShardedMetadataTable::Shard& sh = table_.shard_of(base);
    ShardedMetadataTable::ShardLockGuard lock(sh);
    cell->rec = rec;
    // Mirror before pagemap entry: a reader that wins the race to the
    // fresh cell must already see a consistent (or odd-sequence) mirror.
    cell->publish(rec, fast_offsets, info.field_count());
    pagemap_->publish(base, cell);
  } else {
    ShardedMetadataTable::Shard& sh = table_.shard_of(base);
    ShardedMetadataTable::ShardLockGuard lock(sh);
    sh.table.insert(rec);
  }
  live_count_.fetch_add(1, std::memory_order_release);
  ts.stats.bytes_requested += info.natural_size;
  ts.stats.bytes_allocated += layout->size;
  return rec;
}

Result<ObjectRecord> Runtime::pin_record(ObjRef ref) const {
  ShardedMetadataTable::Shard& sh = table_.shard_of(ref.base);
  ShardedMetadataTable::ShardLockGuard lock(sh);
  bool damaged = false;
  const ObjectRecord* rec = find_checked(sh, ref.base, damaged);
  if (damaged) {
    return Result<ObjectRecord>::failure(Violation::kMetadataDamaged);
  }
  if (rec == nullptr || (ref.id != 0 && rec->object_id != ref.id)) {
    return Result<ObjectRecord>::failure(Violation::kUseAfterFree);
  }
  // Lock order is always shard -> interner (intern/release are never
  // called with a shard mutex held in the other direction), so retaining
  // here cannot deadlock. Derived-backend layouts are schedule-owned and
  // immortal; retain_layout skips them.
  retain_layout(*rec);
  return *rec;
}

Result<ObjRef> Runtime::obj_alloc(TypeId type) {
  ThreadState& ts = tls();
#if defined(POLAR_TRACE_ENABLED)
  // Allocation shares the thread's sampling countdown with member access,
  // so "every Nth operation" means Nth traceable op, not Nth of each kind.
  const bool sampled = trace_interval_ != 0 && --ts.trace_countdown == 0;
  std::uint64_t t0 = 0;
  if (sampled) {
    ts.trace_countdown = trace_interval_;
    t0 = observe::trace_clock();
  }
#endif
  const Result<ObjectRecord> rec = create_object(ts, type, nullptr);
  if (!rec.ok()) {
    // A sampled failed allocation reaches the ring as the kViolation event
    // the sink below records — no separate kAlloc event for it.
    violation(ts, rec.error(), nullptr, type, 0, RuntimeOp::kAlloc);
    return Result<ObjRef>::failure(rec.error());
  }
  ++ts.stats.allocations;
#if defined(POLAR_TRACE_ENABLED)
  if (sampled) {
    const std::uint64_t dt = observe::trace_clock() - t0;
    ts.latency.alloc_ns.record(dt);
    observe::TraceEvent e;
    e.timestamp = t0;
    e.thread = ts.thread_tag;
    e.object_id = rec.value().object_id;
    e.type = type.value;
    e.duration =
        dt > 0xffffffffULL ? 0xffffffffu : static_cast<std::uint32_t>(dt);
    e.kind = observe::TraceEventKind::kAlloc;
    ts.trace.push(e);
  }
#endif
  return ObjRef{rec.value().base, rec.value().object_id, type};
}

Result<void> Runtime::obj_free(ObjRef ref) {
  ThreadState& ts = tls();
#if defined(POLAR_TRACE_ENABLED)
  const bool sampled = trace_interval_ != 0 && --ts.trace_countdown == 0;
  std::uint64_t t0 = 0;
  if (sampled) {
    ts.trace_countdown = trace_interval_;
    t0 = observe::trace_clock();
  }
  // Pushed on every path that releases the object (including a
  // trap-damaged or quarantined free); pure failures surface through the
  // violation sink instead.
  auto record_free = [&](const ObjectRecord& rec) {
    if (!sampled) return;
    const std::uint64_t dt = observe::trace_clock() - t0;
    observe::TraceEvent e;
    e.timestamp = t0;
    e.thread = ts.thread_tag;
    e.object_id = rec.object_id;
    e.type = rec.type.value;
    e.duration =
        dt > 0xffffffffULL ? 0xffffffffu : static_cast<std::uint32_t>(dt);
    e.kind = observe::TraceEventKind::kFree;
    ts.trace.push(e);
  };
#endif
  ObjectRecord copy{};
  std::uint32_t alloc_size = 0;
  bool trap_damaged = false;
  bool meta_damaged = false;
  bool found = false;
  MetaCell* freed_cell = nullptr;
  {
    ShardedMetadataTable::Shard& sh = table_.shard_of(ref.base);
    ShardedMetadataTable::ShardLockGuard lock(sh);
    const ObjectRecord* rec = find_checked(sh, ref.base, meta_damaged);
    if (rec != nullptr && (ref.id == 0 || rec->object_id == ref.id)) {
      found = true;
      copy = *rec;
      alloc_size = copy.layout->size;
      trap_damaged = !traps_intact(copy);
      if (pagemap_ != nullptr) {
        // Unmap-then-invalidate: a reader that raced past the pagemap
        // entry still fails the seqlock validation, and the cell's memory
        // stays mapped (type-stable arena) until quiescence.
        freed_cell = pagemap_->lookup(ref.base);
        POLAR_CHECK(freed_cell != nullptr,
                    "live record has no pagemap cell");
        pagemap_->unpublish(ref.base);
        freed_cell->invalidate();
        freed_cell->rec = ObjectRecord{};
      } else {
        sh.table.remove(ref.base);
      }
      // Publish the removal to every thread's offset cache: any entry for
      // this shard stored under an older epoch is now a guaranteed miss.
      sh.epoch.fetch_add(1, std::memory_order_release);
      live_count_.fetch_sub(1, std::memory_order_release);
    }
  }
  if (freed_cell != nullptr) release_cell(ts, freed_cell);
  if (meta_damaged) {
    violation(ts, Violation::kMetadataDamaged, ref.base, ref.type, ref.id,
              RuntimeOp::kFree);
    return Result<void>::failure(Violation::kMetadataDamaged);
  }
  if (!found) {
    violation(ts, Violation::kDoubleFree, ref.base, ref.type, ref.id,
              RuntimeOp::kFree);
    return Result<void>::failure(Violation::kDoubleFree);
  }
  if (trap_damaged) {
    // Report the damage but still release the object: the paper's traps
    // are a detection mechanism, and tests want to continue afterwards.
    // Under kQuarantine the block is poisoned and withheld from the
    // backing allocator instead of being handed back for reuse.
    const ViolationAction action =
        violation(ts, Violation::kTrapDamaged, copy.base, copy.type,
                  copy.object_id, RuntimeOp::kFree);
    if (action == ViolationAction::kQuarantine) {
      release_layout(copy);
      quarantine_block(copy.base, alloc_size);
      ++ts.stats.quarantined_objects;
      ++ts.stats.frees;
#if defined(POLAR_TRACE_ENABLED)
      record_free(copy);
#endif
      return Result<void>::failure(Violation::kTrapDamaged);
    }
  }
  release_layout(copy);
  raw_free(copy.base, alloc_size);
  ++ts.stats.frees;
#if defined(POLAR_TRACE_ENABLED)
  record_free(copy);
#endif
  return trap_damaged ? Result<void>::failure(Violation::kTrapDamaged)
                      : Result<void>{};
}

Result<void*> Runtime::obj_field_slow(ThreadState& ts, ObjRef ref,
                                      std::uint32_t field) {
  std::uint32_t offset = 0;
  Violation v = Violation::kNone;
  {
    ShardedMetadataTable::Shard& sh = table_.shard_of(ref.base);
    ShardedMetadataTable::ShardLockGuard lock(sh);
    bool damaged = false;
    const ObjectRecord* rec = find_checked(sh, ref.base, damaged);
    if (damaged) {
      v = Violation::kMetadataDamaged;
    } else if (rec == nullptr || (ref.id != 0 && rec->object_id != ref.id)) {
      v = Violation::kUseAfterFree;
    } else if (field >= rec->layout->offsets.size()) {
      v = Violation::kBadField;
    } else {
      offset = rec->layout->offsets[field];
      if (config_.enable_cache) {
        ts.cache.store(ref.base, field, offset,
                       sh.epoch.load(std::memory_order_relaxed),
                       rec->object_id);
      }
    }
  }
  if (v != Violation::kNone) {
    violation(ts, v, ref.base, ref.type, ref.id, RuntimeOp::kFieldAccess);
    return Result<void*>::failure(v);
  }
  return static_cast<unsigned char*>(ref.base) + offset;
}

Result<void*> Runtime::obj_field_mirror_damaged(ThreadState& ts, ObjRef ref,
                                                std::uint32_t field) {
  // The mirror was stable under its sequence but failed the digest — a
  // stray write into the runtime's own fast-path metadata. When the
  // authoritative record still verifies, heal the cell by re-publishing
  // the mirror from it (the blob comes from the interner or the schedule,
  // never from the damaged mirror), then report. When the record is also
  // damaged, the locked path owns classification and eviction.
  bool healed = false;
  {
    ShardedMetadataTable::Shard& sh = table_.shard_of(ref.base);
    ShardedMetadataTable::ShardLockGuard lock(sh);
    MetaCell* cell = pagemap_->lookup(ref.base);
    if (cell != nullptr && cell->rec.base == ref.base && cell->rec.verify()) {
      const ObjectRecord& rec = cell->rec;
      const StableOffsetsPool::Word* blob =
          kind_of(rec.type) != BackendKind::kStored
              ? schedules_p_[rec.type.value]->blob_for(ref.base)
              : interner_.fast_offsets_of(rec.layout);
      cell->publish(rec, blob, registry_.info(rec.type).field_count());
      healed = true;
    }
  }
  if (!healed) return obj_field_slow(ts, ref, field);
  violation(ts, Violation::kMetadataDamaged, ref.base, ref.type, ref.id,
            RuntimeOp::kFieldAccess);
  return Result<void*>::failure(Violation::kMetadataDamaged);
}

#if defined(POLAR_TRACE_ENABLED)
Result<void*> Runtime::obj_field_traced(ThreadState& ts, ObjRef ref,
                                        std::uint32_t field) {
  ts.trace_countdown = trace_interval_;
  ++ts.stats.member_accesses;
  const std::uint64_t t0 = observe::trace_clock();
  // Mirrors the inline obj_field body exactly (cache, then seqlock fast
  // path, then the locked tail) so a sampled access measures the same
  // resolution it replaces — only the timing brackets differ.
  bool slow = false;
  Result<void*> out = [&]() -> Result<void*> {
    if (any_derived_ && ref.type.value < n_types_) {
      const BackendKind k = type_kinds_p_[ref.type.value];
      if (k != BackendKind::kStored) return derived_field(ts, ref, field, k);
    }
    if (config_.enable_cache) {
      const std::uint64_t epoch =
          table_.shard_of(ref.base).epoch.load(std::memory_order_acquire);
      std::uint32_t offset = 0;
      if (ts.cache.lookup(ref.base, field, epoch, ref.id, offset)) {
        ++ts.stats.cache_hits;
        return static_cast<unsigned char*>(ref.base) + offset;
      }
    }
    if (fast_reads_) {
      std::uint32_t offset = 0;
      const FastField r = fast_field(ts, ref, field, TypeId{}, offset);
      if (r == FastField::kHit) {
        return static_cast<unsigned char*>(ref.base) + offset;
      }
      if (r == FastField::kDamaged) {
        slow = true;
        return obj_field_mirror_damaged(ts, ref, field);
      }
    }
    slow = true;
    return obj_field_slow(ts, ref, field);
  }();
  const std::uint64_t dt = observe::trace_clock() - t0;
  ts.latency.getptr_ns.record(dt);
  observe::TraceEvent e;
  e.timestamp = t0;
  e.thread = ts.thread_tag;
  e.object_id = ref.id;
  e.type = ref.type.value;
  e.duration =
      dt > 0xffffffffULL ? 0xffffffffu : static_cast<std::uint32_t>(dt);
  e.kind = slow ? observe::TraceEventKind::kGetptrSlow
                : observe::TraceEventKind::kGetptrFast;
  ts.trace.push(e);
  return out;
}
#endif

Result<void*> Runtime::obj_field_typed(ObjRef ref, TypeId expected,
                                       std::uint32_t field) {
  // The cache cannot carry the class of the cached object, and a hit would
  // skip the type check, so the strict path always consults metadata —
  // except the seqlock mirror, which does carry the type and so supports
  // the strict check lock-free.
  ThreadState& ts = tls();
  ++ts.stats.member_accesses;
  if (any_derived_ && expected.valid() && expected.value < n_types_ &&
      type_kinds_p_[expected.value] != BackendKind::kStored) {
    // Derived backends under the strict check: offsets come from the
    // schedule, but strictness is the whole point here, so even the
    // stateless kind consults the liveness mirror (every backend keeps it
    // populated) to verify the object is live and of the claimed class.
    const StatelessSchedule& sch = *schedules_p_[expected.value];
    if (field < sch.field_count()) {
      MetaCell* cell = pm_hint_.lookup(ref.base);
      if (cell != nullptr) {
        MetaCell::FastView view;
        const std::uint64_t s1 = cell->read_begin(view);
        if ((s1 & 1) == 0 &&
            view.base == reinterpret_cast<std::uintptr_t>(ref.base) &&
            (ref.id == 0 || view.object_id == ref.id) &&
            view.type() == expected.value && cell->read_validate(s1)) {
          if (type_kinds_p_[expected.value] == BackendKind::kHybrid) {
            ++ts.stats.hybrid_accesses;
          } else {
            ++ts.stats.stateless_accesses;
          }
          return static_cast<unsigned char*>(ref.base) +
                 sch.offset_of(ref.base, field);
        }
      }
    }
    // Any mismatch falls through to the locked tail below, which owns
    // classification (UAF vs type mismatch vs bad field) for every backend.
  } else if (fast_reads_ && expected.valid()) {
    std::uint32_t offset = 0;
    const FastField r = fast_field(ts, ref, field, expected, offset);
    if (r == FastField::kHit) {
      return static_cast<unsigned char*>(ref.base) + offset;
    }
    if (r == FastField::kDamaged) [[unlikely]] {
      return obj_field_mirror_damaged(ts, ref, field);
    }
  }
  std::uint32_t offset = 0;
  Violation v = Violation::kNone;
  {
    ShardedMetadataTable::Shard& sh = table_.shard_of(ref.base);
    ShardedMetadataTable::ShardLockGuard lock(sh);
    bool damaged = false;
    const ObjectRecord* rec = find_checked(sh, ref.base, damaged);
    if (damaged) {
      v = Violation::kMetadataDamaged;
    } else if (rec == nullptr || (ref.id != 0 && rec->object_id != ref.id)) {
      v = Violation::kUseAfterFree;
    } else if (!(rec->type == expected)) {
      v = Violation::kTypeMismatch;
    } else if (field >= rec->layout->offsets.size()) {
      v = Violation::kBadField;
    } else {
      offset = rec->layout->offsets[field];
    }
  }
  if (v != Violation::kNone) {
    violation(ts, v, ref.base, ref.type, ref.id, RuntimeOp::kTypedAccess);
    return Result<void*>::failure(v);
  }
  return static_cast<unsigned char*>(ref.base) + offset;
}

Result<ObjRef> Runtime::obj_clone(ObjRef src) {
  ThreadState& ts = tls();
  const Result<ObjectRecord> pinned = pin_record(src);
  if (!pinned.ok()) {
    violation(ts, pinned.error(), src.base, src.type, src.id,
              RuntimeOp::kClone);
    return Result<ObjRef>::failure(pinned.error());
  }
  const ObjectRecord& src_rec = pinned.value();
  // Re-randomize by default; otherwise share the source layout so the
  // clone is byte-copyable (perf ablation mode). Derived backends always
  // re-derive: the clone's layout is a function of its own address.
  const Layout* share =
      !config_.rerandomize_on_copy &&
              kind_of(src_rec.type) == BackendKind::kStored
          ? src_rec.layout
          : nullptr;
  const Result<ObjectRecord> created = create_object(ts, src_rec.type, share);
  if (!created.ok()) {
    release_layout(src_rec);
    violation(ts, created.error(), src.base, src_rec.type, src_rec.object_id,
              RuntimeOp::kClone);
    return Result<ObjRef>::failure(created.error());
  }
  const ObjectRecord& dst_rec = created.value();
  const TypeInfo& info = registry_.info(src_rec.type);
  for (std::uint32_t f = 0; f < info.field_count(); ++f) {
    std::memcpy(static_cast<unsigned char*>(dst_rec.base) +
                    dst_rec.layout->offsets[f],
                static_cast<const unsigned char*>(src_rec.base) +
                    src_rec.layout->offsets[f],
                info.fields[f].size);
  }
  release_layout(src_rec);
  ++ts.stats.memcpys;  // clone counts as memcpy, not allocation (Table III)
  ++ts.stats.clones;
  return ObjRef{dst_rec.base, dst_rec.object_id, src_rec.type};
}

Result<void> Runtime::obj_copy(ObjRef dst, ObjRef src) {
  ThreadState& ts = tls();
  const Result<ObjectRecord> src_pin = pin_record(src);
  if (!src_pin.ok()) {
    violation(ts, src_pin.error(), src.base, src.type, src.id,
              RuntimeOp::kCopy);
    return Result<void>::failure(src_pin.error());
  }
  const Result<ObjectRecord> dst_pin = pin_record(dst);
  if (!dst_pin.ok()) {
    release_layout(src_pin.value());
    violation(ts, dst_pin.error(), dst.base, dst.type, dst.id,
              RuntimeOp::kCopy);
    return Result<void>::failure(dst_pin.error());
  }
  const ObjectRecord& src_rec = src_pin.value();
  const ObjectRecord& dst_rec = dst_pin.value();
  Result<void> result{};
  if (!(src_rec.type == dst_rec.type)) {
    // Historically reported as kBadField (the copy addresses fields that
    // don't exist on the destination type); kept for API stability.
    violation(ts, Violation::kBadField, dst.base, dst_rec.type,
              dst_rec.object_id, RuntimeOp::kCopy);
    result = Result<void>::failure(Violation::kBadField);
  } else {
    const TypeInfo& info = registry_.info(src_rec.type);
    for (std::uint32_t f = 0; f < info.field_count(); ++f) {
      std::memmove(static_cast<unsigned char*>(dst_rec.base) +
                       dst_rec.layout->offsets[f],
                   static_cast<const unsigned char*>(src_rec.base) +
                       src_rec.layout->offsets[f],
                   info.fields[f].size);
    }
    ++ts.stats.memcpys;
  }
  release_layout(dst_rec);
  release_layout(src_rec);
  return result;
}

Result<void> Runtime::obj_check_traps(ObjRef ref) {
  ThreadState& ts = tls();
  Violation v = Violation::kNone;
  {
    ShardedMetadataTable::Shard& sh = table_.shard_of(ref.base);
    ShardedMetadataTable::ShardLockGuard lock(sh);
    bool damaged = false;
    const ObjectRecord* rec = find_checked(sh, ref.base, damaged);
    if (damaged) {
      v = Violation::kMetadataDamaged;
    } else if (rec == nullptr || (ref.id != 0 && rec->object_id != ref.id)) {
      v = Violation::kUseAfterFree;
    } else if (!traps_intact(*rec)) {
      v = Violation::kTrapDamaged;
    }
  }
  if (v != Violation::kNone) {
    violation(ts, v, ref.base, ref.type, ref.id, RuntimeOp::kCheckTraps);
    return Result<void>::failure(v);
  }
  return Result<void>{};
}

const ObjectRecord* Runtime::inspect(const void* base) const noexcept {
  ShardedMetadataTable::Shard& sh = table_.shard_of(base);
  std::lock_guard<std::mutex> lock(sh.mu);
  bool damaged = false;
  return find_checked(sh, base, damaged);
}

Result<ObjectRecord> Runtime::describe(ObjRef ref) const {
  ShardedMetadataTable::Shard& sh = table_.shard_of(ref.base);
  std::lock_guard<std::mutex> lock(sh.mu);
  bool damaged = false;
  const ObjectRecord* rec = find_checked(sh, ref.base, damaged);
  if (damaged) {
    return Result<ObjectRecord>::failure(Violation::kMetadataDamaged);
  }
  if (rec == nullptr || (ref.id != 0 && rec->object_id != ref.id)) {
    return Result<ObjectRecord>::failure(Violation::kUseAfterFree);
  }
  return *rec;
}

RuntimeStats Runtime::stats() const noexcept {
  std::lock_guard<std::mutex> lock(tls_mu_);
  RuntimeStats total;
  for (const auto& st : thread_states_) total.add(st->stats);
  return total;
}

void Runtime::reset_stats() noexcept {
  std::lock_guard<std::mutex> lock(tls_mu_);
  for (const auto& st : thread_states_) st->stats.reset();
}

std::vector<observe::TraceEvent> Runtime::trace_events() const {
  std::vector<observe::TraceEvent> out;
#if defined(POLAR_TRACE_ENABLED)
  std::lock_guard<std::mutex> lock(tls_mu_);
  for (const auto& st : thread_states_) st->trace.snapshot(out);
#endif
  return out;
}

observe::TraceRingStats Runtime::trace_ring_stats() const noexcept {
  observe::TraceRingStats total;
#if defined(POLAR_TRACE_ENABLED)
  std::lock_guard<std::mutex> lock(tls_mu_);
  for (const auto& st : thread_states_) total.add(st->trace.stats());
#endif
  return total;
}

observe::LatencyHistograms Runtime::latency_histograms() const noexcept {
  observe::LatencyHistograms total;
#if defined(POLAR_TRACE_ENABLED)
  std::lock_guard<std::mutex> lock(tls_mu_);
  for (const auto& st : thread_states_) total.add(st->latency);
#endif
  return total;
}

Violation Runtime::last_violation() const noexcept {
  return tls().last_violation;
}

void Runtime::clear_violation() noexcept {
  tls().last_violation = Violation::kNone;
}

void Runtime::free_all() {
  std::vector<void*> bases;
  if (pagemap_ != nullptr) {
    cells_.for_each_live(
        [&](const ObjectRecord& rec) { bases.push_back(rec.base); });
  } else {
    table_.for_each(
        [&](const ObjectRecord& rec) { bases.push_back(rec.base); });
  }
  for (void* b : bases) olr_free(b);
  // Flush every thread's layout-reuse windows (free_all must not race
  // other operations, so touching foreign ThreadStates is safe here).
  // With no objects left, this leaves the interner empty — the invariant
  // tests and the stats exporter's consistency checks rely on.
  for (auto& st : thread_states_) {
    for (auto& pool : st->layout_pools) {
      for (auto& slot : pool.reuse) interner_.release(slot.layout);
      pool.reuse.clear();
      pool.reuse_left = 0;
    }
  }
  // Quarantined blocks have no metadata record anymore; hand their memory
  // back to the backing allocator now that the reset/teardown point makes
  // delayed reuse moot.
  std::vector<std::pair<void*, std::size_t>> parked;
  {
    std::lock_guard<std::mutex> lock(quarantine_mu_);
    parked.swap(quarantine_);
  }
#if defined(POLAR_TRACE_ENABLED)
  const std::uint64_t t0 =
      trace_interval_ != 0 && !parked.empty() ? observe::trace_clock() : 0;
#endif
  for (const auto& [p, size] : parked) raw_free(p, size);
#if defined(POLAR_TRACE_ENABLED)
  // Drains are teardown-rare: recorded unsampled whenever tracing is on
  // and any blocks were actually parked. object_id carries the count.
  if (trace_interval_ != 0 && !parked.empty()) {
    ThreadState& ts = tls();
    const std::uint64_t dt = observe::trace_clock() - t0;
    observe::TraceEvent e;
    e.timestamp = t0;
    e.thread = ts.thread_tag;
    e.object_id = parked.size();
    e.duration =
        dt > 0xffffffffULL ? 0xffffffffu : static_cast<std::uint32_t>(dt);
    e.kind = observe::TraceEventKind::kQuarantineDrain;
    ts.trace.push(e);
  }
#endif
}

}  // namespace polar
