#include "core/runtime.h"

#include <cstdlib>
#include <new>

#include "support/assert.h"

namespace polar {

const char* to_string(Violation v) noexcept {
  switch (v) {
    case Violation::kNone: return "none";
    case Violation::kUseAfterFree: return "use-after-free";
    case Violation::kDoubleFree: return "double-free";
    case Violation::kTrapDamaged: return "trap-damaged";
    case Violation::kBadField: return "bad-field-index";
    case Violation::kTypeMismatch: return "type-mismatch";
  }
  return "unknown";
}

Runtime::Runtime(const TypeRegistry& registry, RuntimeConfig config)
    : registry_(registry),
      config_(config),
      interner_(config.dedup_layouts),
      cache_(config.cache_bits),
      rng_(config.seed) {}

Runtime::~Runtime() { free_all(); }

void* Runtime::raw_alloc(std::size_t size) {
  if (config_.alloc_fn != nullptr) {
    return config_.alloc_fn(size, config_.alloc_ctx);
  }
  return ::operator new(size);
}

void Runtime::raw_free(void* p, std::size_t size) {
  if (config_.free_fn != nullptr) {
    config_.free_fn(p, size, config_.alloc_ctx);
    return;
  }
  ::operator delete(p);
}

void Runtime::violation(Violation v) {
  last_violation_ = v;
  if (v == Violation::kUseAfterFree || v == Violation::kDoubleFree) {
    ++stats_.uaf_detected;
  } else if (v == Violation::kTrapDamaged) {
    ++stats_.traps_triggered;
  }
  if (config_.on_violation == ErrorAction::kAbort) {
    POLAR_CHECK(false, to_string(v));
  }
}

const ObjectRecord* Runtime::require(const void* base, Violation on_missing) {
  const ObjectRecord* rec = table_.find(base);
  if (rec == nullptr) violation(on_missing);
  return rec;
}

void Runtime::fill_traps(const ObjectRecord& rec) {
  auto* bytes = static_cast<unsigned char*>(rec.base);
  for (const TrapRegion& t : rec.layout->traps) {
    for (std::uint32_t i = 0; i < t.size; ++i) {
      bytes[t.offset + i] =
          static_cast<unsigned char>(rec.trap_value >> ((i % 8) * 8));
    }
  }
}

bool Runtime::traps_intact(const ObjectRecord& rec) const noexcept {
  const auto* bytes = static_cast<const unsigned char*>(rec.base);
  for (const TrapRegion& t : rec.layout->traps) {
    for (std::uint32_t i = 0; i < t.size; ++i) {
      if (bytes[t.offset + i] !=
          static_cast<unsigned char>(rec.trap_value >> ((i % 8) * 8))) {
        return false;
      }
    }
  }
  return true;
}

void* Runtime::olr_malloc(TypeId type) {
  const TypeInfo& info = registry_.info(type);
  bool reused = false;
  const Layout* layout =
      interner_.intern(randomize_layout(info, config_.policy, rng_), reused);
  if (reused) {
    ++stats_.layouts_deduped;
  } else {
    ++stats_.layouts_created;
  }

  void* base = raw_alloc(layout->size);
  std::memset(base, 0, layout->size);

  ObjectRecord rec{.base = base,
                   .type = type,
                   .layout = layout,
                   .trap_value = rng_.next() | 1,  // never all-zero
                   .object_id = next_object_id_++};
  fill_traps(rec);
  table_.insert(rec);

  ++stats_.allocations;
  stats_.bytes_requested += info.natural_size;
  stats_.bytes_allocated += layout->size;
  return base;
}

bool Runtime::olr_free(void* base) {
  const ObjectRecord* rec = require(base, Violation::kDoubleFree);
  if (rec == nullptr) return false;
  if (!traps_intact(*rec)) {
    // Report the damage but still release the object: the paper's traps
    // are a detection mechanism, and tests want to continue afterwards.
    violation(Violation::kTrapDamaged);
  }
  const ObjectRecord copy = *rec;
  const TypeInfo& info = registry_.info(copy.type);
  if (config_.enable_cache) cache_.invalidate_object(base, info.field_count());
  table_.remove(base);
  interner_.release(copy.layout);
  raw_free(copy.base, copy.layout->size);
  ++stats_.frees;
  return true;
}

void* Runtime::olr_getptr(void* base, std::uint32_t field) {
  ++stats_.member_accesses;
  if (config_.enable_cache) {
    std::uint32_t offset = 0;
    if (cache_.lookup(base, field, offset)) {
      ++stats_.cache_hits;
      return static_cast<unsigned char*>(base) + offset;
    }
  }
  const ObjectRecord* rec = require(base, Violation::kUseAfterFree);
  if (rec == nullptr) return nullptr;
  if (field >= rec->layout->offsets.size()) {
    violation(Violation::kBadField);
    return nullptr;
  }
  const std::uint32_t offset = rec->layout->offsets[field];
  if (config_.enable_cache) cache_.store(base, field, offset);
  return static_cast<unsigned char*>(base) + offset;
}

void* Runtime::olr_getptr_typed(void* base, TypeId expected,
                                std::uint32_t field) {
  // The cache is keyed by (base, field) only; a hit would skip the type
  // check, so the strict path consults metadata first.
  ++stats_.member_accesses;
  const ObjectRecord* rec = require(base, Violation::kUseAfterFree);
  if (rec == nullptr) return nullptr;
  if (!(rec->type == expected)) {
    violation(Violation::kTypeMismatch);
    return nullptr;
  }
  if (field >= rec->layout->offsets.size()) {
    violation(Violation::kBadField);
    return nullptr;
  }
  return static_cast<unsigned char*>(base) + rec->layout->offsets[field];
}

void* Runtime::olr_clone(const void* src) {
  const ObjectRecord* src_rec = require(src, Violation::kUseAfterFree);
  if (src_rec == nullptr) return nullptr;
  // Re-randomize by default; otherwise share the source layout so the
  // clone is byte-copyable (perf ablation mode).
  const ObjectRecord src_copy = *src_rec;  // olr_malloc may rehash the table
  void* dst = nullptr;
  if (config_.rerandomize_on_copy) {
    dst = olr_malloc(src_copy.type);
    --stats_.allocations;  // counted as a memcpy, not an allocation site
  } else {
    const TypeInfo& info = registry_.info(src_copy.type);
    bool reused = false;
    Layout same = *src_copy.layout;
    const Layout* layout = interner_.intern(std::move(same), reused);
    if (reused) {
      ++stats_.layouts_deduped;
    } else {
      ++stats_.layouts_created;  // dedup disabled: a fresh copy record
    }
    dst = raw_alloc(layout->size);
    std::memset(dst, 0, layout->size);
    ObjectRecord rec{.base = dst,
                     .type = src_copy.type,
                     .layout = layout,
                     .trap_value = rng_.next() | 1,
                     .object_id = next_object_id_++};
    fill_traps(rec);
    table_.insert(rec);
    stats_.bytes_requested += info.natural_size;
    stats_.bytes_allocated += layout->size;
  }
  const ObjectRecord* dst_rec = table_.find(dst);
  const TypeInfo& info = registry_.info(src_copy.type);
  for (std::uint32_t f = 0; f < info.field_count(); ++f) {
    std::memcpy(
        static_cast<unsigned char*>(dst) + dst_rec->layout->offsets[f],
        static_cast<const unsigned char*>(src) + src_copy.layout->offsets[f],
        info.fields[f].size);
  }
  ++stats_.memcpys;
  return dst;
}

bool Runtime::olr_memcpy(void* dst, const void* src) {
  const ObjectRecord* src_rec = require(src, Violation::kUseAfterFree);
  if (src_rec == nullptr) return false;
  const ObjectRecord* dst_rec = require(dst, Violation::kUseAfterFree);
  if (dst_rec == nullptr) return false;
  if (!(src_rec->type == dst_rec->type)) {
    violation(Violation::kBadField);
    return false;
  }
  const TypeInfo& info = registry_.info(src_rec->type);
  for (std::uint32_t f = 0; f < info.field_count(); ++f) {
    std::memmove(
        static_cast<unsigned char*>(dst) + dst_rec->layout->offsets[f],
        static_cast<const unsigned char*>(src) + src_rec->layout->offsets[f],
        info.fields[f].size);
  }
  ++stats_.memcpys;
  return true;
}

bool Runtime::check_traps(const void* base) {
  const ObjectRecord* rec = require(base, Violation::kUseAfterFree);
  if (rec == nullptr) return false;
  if (!traps_intact(*rec)) {
    violation(Violation::kTrapDamaged);
    return false;
  }
  return true;
}

const ObjectRecord* Runtime::inspect(const void* base) const noexcept {
  return table_.find(base);
}

void Runtime::free_all() {
  std::vector<void*> bases;
  bases.reserve(table_.size());
  table_.for_each([&](const ObjectRecord& rec) { bases.push_back(rec.base); });
  for (void* b : bases) olr_free(b);
}

}  // namespace polar
