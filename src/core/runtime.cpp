#include "core/runtime.h"

#include <atomic>
#include <cstdlib>
#include <functional>
#include <new>
#include <thread>
#include <unordered_map>

#include "support/assert.h"
#include "support/hash.h"

namespace polar {

const char* to_string(Violation v) noexcept {
  switch (v) {
    case Violation::kNone: return "none";
    case Violation::kUseAfterFree: return "use-after-free";
    case Violation::kDoubleFree: return "double-free";
    case Violation::kTrapDamaged: return "trap-damaged";
    case Violation::kBadField: return "bad-field-index";
    case Violation::kTypeMismatch: return "type-mismatch";
    case Violation::kMetadataDamaged: return "metadata-damaged";
    case Violation::kOom: return "out-of-memory";
  }
  return "unknown";
}

namespace {

std::uint64_t next_runtime_id() noexcept {
  // Never reused across a process, so a thread's TLS entry for a destroyed
  // runtime can never be mistaken for a new runtime at the same address.
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

constexpr std::uint32_t clamp_shard_bits(std::uint32_t bits) noexcept {
  return bits > 10 ? 10 : bits;
}

/// A default-constructed violation_policy defers to the legacy one-knob
/// ErrorAction; any customized policy wins.
ViolationPolicy effective_policy(const RuntimeConfig& config) noexcept {
  if (config.violation_policy == ViolationPolicy{}) {
    return ViolationPolicy::from_legacy(config.on_violation ==
                                        ErrorAction::kAbort);
  }
  return config.violation_policy;
}

/// Byte written over quarantined blocks so a write-after-free into parked
/// memory is visible (and stale secrets don't linger).
constexpr unsigned char kRuntimeQuarantinePoison = 0xd1;

std::uint64_t this_thread_numeric_id() noexcept {
  return static_cast<std::uint64_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

}  // namespace

Runtime::Runtime(const TypeRegistry& registry, RuntimeConfig config)
    : registry_(registry),
      config_(config),
      engine_(effective_policy(config)),
      table_(clamp_shard_bits(config.shard_bits)),
      interner_(config.dedup_layouts),
      runtime_id_(next_runtime_id()) {}

Runtime::~Runtime() { free_all(); }

Runtime::ThreadState& Runtime::tls() const {
  // Keyed by runtime id, not address: ids are process-unique, so stale
  // entries left by destroyed runtimes are dead weight, never aliases.
  thread_local std::unordered_map<std::uint64_t, ThreadState*> t_states;
  thread_local std::uint64_t t_last_id = 0;
  thread_local ThreadState* t_last = nullptr;
  if (t_last_id == runtime_id_ && t_last != nullptr) return *t_last;
  auto it = t_states.find(runtime_id_);
  if (it == t_states.end()) {
    std::lock_guard<std::mutex> lock(tls_mu_);
    auto state =
        std::make_unique<ThreadState>(config_.cache_bits, next_rng_stream());
    it = t_states.emplace(runtime_id_, state.get()).first;
    thread_states_.push_back(std::move(state));
  }
  t_last_id = runtime_id_;
  t_last = it->second;
  return *t_last;
}

Rng Runtime::next_rng_stream() const {
  // Stream 0 — the first thread to touch the runtime — reproduces exactly
  // the sequence the single-threaded runtime drew from config.seed, so
  // every seeded workload and test keeps its pre-concurrency behaviour.
  // Later threads get independent streams split off the same seed.
  const std::uint64_t n = rng_streams_issued_++;
  if (n == 0) return Rng(config_.seed);
  return Rng(mix64(config_.seed + 0x9e3779b97f4a7c15ULL * n));
}

void* Runtime::raw_alloc(std::size_t size) {
  if (config_.alloc_fn != nullptr) {
    return config_.alloc_fn(size, config_.alloc_ctx);
  }
  return ::operator new(size);
}

void Runtime::raw_free(void* p, std::size_t size) {
  if (config_.free_fn != nullptr) {
    config_.free_fn(p, size, config_.alloc_ctx);
    return;
  }
  ::operator delete(p);
}

ViolationAction Runtime::violation(ThreadState& ts, Violation v,
                                   const void* address, TypeId type,
                                   std::uint64_t object_id, RuntimeOp op) {
  ts.last_violation = v;
  if (v == Violation::kUseAfterFree || v == Violation::kDoubleFree) {
    ++ts.stats.uaf_detected;
  } else if (v == Violation::kTrapDamaged) {
    ++ts.stats.traps_triggered;
  } else if (v == Violation::kMetadataDamaged) {
    ++ts.stats.metadata_faults;
  } else if (v == Violation::kOom) {
    ++ts.stats.oom_refusals;
  }
  const ViolationReport report{.violation = v,
                               .address = address,
                               .type = type,
                               .object_id = object_id,
                               .thread = this_thread_numeric_id(),
                               .op = op};
  const ViolationAction action = engine_.apply(report);
  if (action == ViolationAction::kAbort) {
    POLAR_CHECK(false, to_string(v));
  }
  return action;
}

const ObjectRecord* Runtime::find_checked(ShardedMetadataTable::Shard& sh,
                                          const void* base,
                                          bool& damaged) const {
  damaged = false;
  const ObjectRecord* rec = sh.table.find(base);
  if (rec == nullptr) return nullptr;
  if (config_.checksum_metadata && !rec->verify()) {
    // The record lied about itself; nothing in it — layout pointer, size,
    // canary — can be trusted. Evict it so it can't be consulted again.
    // The block is deliberately leaked (its size lives behind the
    // untrusted layout pointer) and the interner reference with it.
    damaged = true;
    sh.table.remove(base);
    sh.epoch.fetch_add(1, std::memory_order_release);
    return nullptr;
  }
  return rec;
}

void Runtime::quarantine_block(void* base, std::size_t size) {
  std::memset(base, kRuntimeQuarantinePoison, size);
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  quarantine_.emplace_back(base, size);
}

std::size_t Runtime::quarantined_blocks() const noexcept {
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  return quarantine_.size();
}

bool Runtime::debug_corrupt_metadata(const void* base, std::uint64_t mask) {
  ShardedMetadataTable::Shard& sh = table_.shard_of(base);
  std::lock_guard<std::mutex> lock(sh.mu);
  ObjectRecord* rec = sh.table.find_mutable(base);
  if (rec == nullptr) return false;
  rec->trap_value ^= mask == 0 ? 1 : mask;
  return true;
}

void Runtime::fill_traps(const ObjectRecord& rec) {
  auto* bytes = static_cast<unsigned char*>(rec.base);
  for (const TrapRegion& t : rec.layout->traps) {
    for (std::uint32_t i = 0; i < t.size; ++i) {
      bytes[t.offset + i] =
          static_cast<unsigned char>(rec.trap_value >> ((i % 8) * 8));
    }
  }
}

bool Runtime::traps_intact(const ObjectRecord& rec) const noexcept {
  const auto* bytes = static_cast<const unsigned char*>(rec.base);
  for (const TrapRegion& t : rec.layout->traps) {
    for (std::uint32_t i = 0; i < t.size; ++i) {
      if (bytes[t.offset + i] !=
          static_cast<unsigned char>(rec.trap_value >> ((i % 8) * 8))) {
        return false;
      }
    }
  }
  return true;
}

Result<ObjectRecord> Runtime::create_object(ThreadState& ts, TypeId type,
                                            const Layout* share_layout) {
  const TypeInfo& info = registry_.info(type);
  bool reused = false;
  const Layout* layout;
  if (share_layout == nullptr) {
    layout = interner_.intern(randomize_layout(info, config_.policy, ts.rng),
                              reused);
  } else {
    Layout same = *share_layout;
    layout = interner_.intern(std::move(same), reused);
  }
  void* base = raw_alloc(layout->size);
  if (base == nullptr) {
    // A refused backing allocation is a value, not a crash: undo the
    // layout reference and let the caller surface kOom.
    interner_.release(layout);
    return Result<ObjectRecord>::failure(Violation::kOom);
  }
  if (reused) {
    ++ts.stats.layouts_deduped;
  } else {
    ++ts.stats.layouts_created;
  }
  std::memset(base, 0, layout->size);

  ObjectRecord rec{.base = base,
                   .type = type,
                   .layout = layout,
                   .trap_value = ts.rng.next() | 1,  // never all-zero
                   .object_id = next_object_id_.fetch_add(
                       1, std::memory_order_relaxed)};
  rec.seal();
  fill_traps(rec);  // before publication: no lock needed
  {
    ShardedMetadataTable::Shard& sh = table_.shard_of(base);
    std::lock_guard<std::mutex> lock(sh.mu);
    sh.table.insert(rec);
  }
  ts.stats.bytes_requested += info.natural_size;
  ts.stats.bytes_allocated += layout->size;
  return rec;
}

Result<ObjectRecord> Runtime::pin_record(ObjRef ref) const {
  ShardedMetadataTable::Shard& sh = table_.shard_of(ref.base);
  std::lock_guard<std::mutex> lock(sh.mu);
  bool damaged = false;
  const ObjectRecord* rec = find_checked(sh, ref.base, damaged);
  if (damaged) {
    return Result<ObjectRecord>::failure(Violation::kMetadataDamaged);
  }
  if (rec == nullptr || (ref.id != 0 && rec->object_id != ref.id)) {
    return Result<ObjectRecord>::failure(Violation::kUseAfterFree);
  }
  // Lock order is always shard -> interner (intern/release are never
  // called with a shard mutex held in the other direction), so retaining
  // here cannot deadlock.
  interner_.retain(rec->layout);
  return *rec;
}

Result<ObjRef> Runtime::obj_alloc(TypeId type) {
  ThreadState& ts = tls();
  const Result<ObjectRecord> rec = create_object(ts, type, nullptr);
  if (!rec.ok()) {
    violation(ts, rec.error(), nullptr, type, 0, RuntimeOp::kAlloc);
    return Result<ObjRef>::failure(rec.error());
  }
  ++ts.stats.allocations;
  return ObjRef{rec.value().base, rec.value().object_id, type};
}

Result<void> Runtime::obj_free(ObjRef ref) {
  ThreadState& ts = tls();
  ObjectRecord copy{};
  std::uint32_t alloc_size = 0;
  bool trap_damaged = false;
  bool meta_damaged = false;
  bool found = false;
  {
    ShardedMetadataTable::Shard& sh = table_.shard_of(ref.base);
    std::lock_guard<std::mutex> lock(sh.mu);
    const ObjectRecord* rec = find_checked(sh, ref.base, meta_damaged);
    if (rec != nullptr && (ref.id == 0 || rec->object_id == ref.id)) {
      found = true;
      copy = *rec;
      alloc_size = copy.layout->size;
      trap_damaged = !traps_intact(copy);
      sh.table.remove(ref.base);
      // Publish the removal to every thread's offset cache: any entry for
      // this shard stored under an older epoch is now a guaranteed miss.
      sh.epoch.fetch_add(1, std::memory_order_release);
    }
  }
  if (meta_damaged) {
    violation(ts, Violation::kMetadataDamaged, ref.base, ref.type, ref.id,
              RuntimeOp::kFree);
    return Result<void>::failure(Violation::kMetadataDamaged);
  }
  if (!found) {
    violation(ts, Violation::kDoubleFree, ref.base, ref.type, ref.id,
              RuntimeOp::kFree);
    return Result<void>::failure(Violation::kDoubleFree);
  }
  if (trap_damaged) {
    // Report the damage but still release the object: the paper's traps
    // are a detection mechanism, and tests want to continue afterwards.
    // Under kQuarantine the block is poisoned and withheld from the
    // backing allocator instead of being handed back for reuse.
    const ViolationAction action =
        violation(ts, Violation::kTrapDamaged, copy.base, copy.type,
                  copy.object_id, RuntimeOp::kFree);
    if (action == ViolationAction::kQuarantine) {
      interner_.release(copy.layout);
      quarantine_block(copy.base, alloc_size);
      ++ts.stats.quarantined_objects;
      ++ts.stats.frees;
      return Result<void>::failure(Violation::kTrapDamaged);
    }
  }
  interner_.release(copy.layout);
  raw_free(copy.base, alloc_size);
  ++ts.stats.frees;
  return trap_damaged ? Result<void>::failure(Violation::kTrapDamaged)
                      : Result<void>{};
}

Result<void*> Runtime::obj_field(ObjRef ref, std::uint32_t field) {
  ThreadState& ts = tls();
  ++ts.stats.member_accesses;
  ShardedMetadataTable::Shard& sh = table_.shard_of(ref.base);
  if (config_.enable_cache) {
    const std::uint64_t epoch = sh.epoch.load(std::memory_order_acquire);
    std::uint32_t offset = 0;
    if (ts.cache.lookup(ref.base, field, epoch, ref.id, offset)) {
      ++ts.stats.cache_hits;
      return static_cast<unsigned char*>(ref.base) + offset;
    }
  }
  std::uint32_t offset = 0;
  Violation v = Violation::kNone;
  {
    std::lock_guard<std::mutex> lock(sh.mu);
    bool damaged = false;
    const ObjectRecord* rec = find_checked(sh, ref.base, damaged);
    if (damaged) {
      v = Violation::kMetadataDamaged;
    } else if (rec == nullptr || (ref.id != 0 && rec->object_id != ref.id)) {
      v = Violation::kUseAfterFree;
    } else if (field >= rec->layout->offsets.size()) {
      v = Violation::kBadField;
    } else {
      offset = rec->layout->offsets[field];
      if (config_.enable_cache) {
        ts.cache.store(ref.base, field, offset,
                       sh.epoch.load(std::memory_order_relaxed),
                       rec->object_id);
      }
    }
  }
  if (v != Violation::kNone) {
    violation(ts, v, ref.base, ref.type, ref.id, RuntimeOp::kFieldAccess);
    return Result<void*>::failure(v);
  }
  return static_cast<unsigned char*>(ref.base) + offset;
}

Result<void*> Runtime::obj_field_typed(ObjRef ref, TypeId expected,
                                       std::uint32_t field) {
  // The cache cannot carry the class of the cached object, and a hit would
  // skip the type check, so the strict path always consults metadata.
  ThreadState& ts = tls();
  ++ts.stats.member_accesses;
  std::uint32_t offset = 0;
  Violation v = Violation::kNone;
  {
    ShardedMetadataTable::Shard& sh = table_.shard_of(ref.base);
    std::lock_guard<std::mutex> lock(sh.mu);
    bool damaged = false;
    const ObjectRecord* rec = find_checked(sh, ref.base, damaged);
    if (damaged) {
      v = Violation::kMetadataDamaged;
    } else if (rec == nullptr || (ref.id != 0 && rec->object_id != ref.id)) {
      v = Violation::kUseAfterFree;
    } else if (!(rec->type == expected)) {
      v = Violation::kTypeMismatch;
    } else if (field >= rec->layout->offsets.size()) {
      v = Violation::kBadField;
    } else {
      offset = rec->layout->offsets[field];
    }
  }
  if (v != Violation::kNone) {
    violation(ts, v, ref.base, ref.type, ref.id, RuntimeOp::kTypedAccess);
    return Result<void*>::failure(v);
  }
  return static_cast<unsigned char*>(ref.base) + offset;
}

Result<ObjRef> Runtime::obj_clone(ObjRef src) {
  ThreadState& ts = tls();
  const Result<ObjectRecord> pinned = pin_record(src);
  if (!pinned.ok()) {
    violation(ts, pinned.error(), src.base, src.type, src.id,
              RuntimeOp::kClone);
    return Result<ObjRef>::failure(pinned.error());
  }
  const ObjectRecord& src_rec = pinned.value();
  // Re-randomize by default; otherwise share the source layout so the
  // clone is byte-copyable (perf ablation mode).
  const Result<ObjectRecord> created = create_object(
      ts, src_rec.type,
      config_.rerandomize_on_copy ? nullptr : src_rec.layout);
  if (!created.ok()) {
    interner_.release(src_rec.layout);
    violation(ts, created.error(), src.base, src_rec.type, src_rec.object_id,
              RuntimeOp::kClone);
    return Result<ObjRef>::failure(created.error());
  }
  const ObjectRecord& dst_rec = created.value();
  const TypeInfo& info = registry_.info(src_rec.type);
  for (std::uint32_t f = 0; f < info.field_count(); ++f) {
    std::memcpy(static_cast<unsigned char*>(dst_rec.base) +
                    dst_rec.layout->offsets[f],
                static_cast<const unsigned char*>(src_rec.base) +
                    src_rec.layout->offsets[f],
                info.fields[f].size);
  }
  interner_.release(src_rec.layout);
  ++ts.stats.memcpys;
  return ObjRef{dst_rec.base, dst_rec.object_id, src_rec.type};
}

Result<void> Runtime::obj_copy(ObjRef dst, ObjRef src) {
  ThreadState& ts = tls();
  const Result<ObjectRecord> src_pin = pin_record(src);
  if (!src_pin.ok()) {
    violation(ts, src_pin.error(), src.base, src.type, src.id,
              RuntimeOp::kCopy);
    return Result<void>::failure(src_pin.error());
  }
  const Result<ObjectRecord> dst_pin = pin_record(dst);
  if (!dst_pin.ok()) {
    interner_.release(src_pin.value().layout);
    violation(ts, dst_pin.error(), dst.base, dst.type, dst.id,
              RuntimeOp::kCopy);
    return Result<void>::failure(dst_pin.error());
  }
  const ObjectRecord& src_rec = src_pin.value();
  const ObjectRecord& dst_rec = dst_pin.value();
  Result<void> result{};
  if (!(src_rec.type == dst_rec.type)) {
    // Historically reported as kBadField (the copy addresses fields that
    // don't exist on the destination type); kept for API stability.
    violation(ts, Violation::kBadField, dst.base, dst_rec.type,
              dst_rec.object_id, RuntimeOp::kCopy);
    result = Result<void>::failure(Violation::kBadField);
  } else {
    const TypeInfo& info = registry_.info(src_rec.type);
    for (std::uint32_t f = 0; f < info.field_count(); ++f) {
      std::memmove(static_cast<unsigned char*>(dst_rec.base) +
                       dst_rec.layout->offsets[f],
                   static_cast<const unsigned char*>(src_rec.base) +
                       src_rec.layout->offsets[f],
                   info.fields[f].size);
    }
    ++ts.stats.memcpys;
  }
  interner_.release(dst_rec.layout);
  interner_.release(src_rec.layout);
  return result;
}

Result<void> Runtime::obj_check_traps(ObjRef ref) {
  ThreadState& ts = tls();
  Violation v = Violation::kNone;
  {
    ShardedMetadataTable::Shard& sh = table_.shard_of(ref.base);
    std::lock_guard<std::mutex> lock(sh.mu);
    bool damaged = false;
    const ObjectRecord* rec = find_checked(sh, ref.base, damaged);
    if (damaged) {
      v = Violation::kMetadataDamaged;
    } else if (rec == nullptr || (ref.id != 0 && rec->object_id != ref.id)) {
      v = Violation::kUseAfterFree;
    } else if (!traps_intact(*rec)) {
      v = Violation::kTrapDamaged;
    }
  }
  if (v != Violation::kNone) {
    violation(ts, v, ref.base, ref.type, ref.id, RuntimeOp::kCheckTraps);
    return Result<void>::failure(v);
  }
  return Result<void>{};
}

const ObjectRecord* Runtime::inspect(const void* base) const noexcept {
  ShardedMetadataTable::Shard& sh = table_.shard_of(base);
  std::lock_guard<std::mutex> lock(sh.mu);
  bool damaged = false;
  return find_checked(sh, base, damaged);
}

Result<ObjectRecord> Runtime::describe(ObjRef ref) const {
  ShardedMetadataTable::Shard& sh = table_.shard_of(ref.base);
  std::lock_guard<std::mutex> lock(sh.mu);
  bool damaged = false;
  const ObjectRecord* rec = find_checked(sh, ref.base, damaged);
  if (damaged) {
    return Result<ObjectRecord>::failure(Violation::kMetadataDamaged);
  }
  if (rec == nullptr || (ref.id != 0 && rec->object_id != ref.id)) {
    return Result<ObjectRecord>::failure(Violation::kUseAfterFree);
  }
  return *rec;
}

RuntimeStats Runtime::stats() const noexcept {
  std::lock_guard<std::mutex> lock(tls_mu_);
  RuntimeStats total;
  for (const auto& st : thread_states_) total.add(st->stats);
  return total;
}

void Runtime::reset_stats() noexcept {
  std::lock_guard<std::mutex> lock(tls_mu_);
  for (const auto& st : thread_states_) st->stats.reset();
}

Violation Runtime::last_violation() const noexcept {
  return tls().last_violation;
}

void Runtime::clear_violation() noexcept {
  tls().last_violation = Violation::kNone;
}

void Runtime::free_all() {
  std::vector<void*> bases;
  table_.for_each([&](const ObjectRecord& rec) { bases.push_back(rec.base); });
  for (void* b : bases) olr_free(b);
  // Quarantined blocks have no metadata record anymore; hand their memory
  // back to the backing allocator now that the reset/teardown point makes
  // delayed reuse moot.
  std::vector<std::pair<void*, std::size_t>> parked;
  {
    std::lock_guard<std::mutex> lock(quarantine_mu_);
    parked.swap(quarantine_);
  }
  for (const auto& [p, size] : parked) raw_free(p, size);
}

}  // namespace polar
